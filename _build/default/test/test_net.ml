open Farm_sim
open Farm_net

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type msg = Ping of int | Pong of int

let mk_fabric ?(machines = 3) ?(params = Params.default) () =
  let e = Engine.create () in
  let rng = Rng.create 11 in
  let fab = Fabric.create e ~params ~rng in
  let cpus =
    Array.init machines (fun id ->
        let cpu = Cpu.create e ~threads:4 in
        Fabric.add_machine fab ~id ~cpu;
        cpu)
  in
  (e, fab, cpus)

let one_sided_read_works () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  let cell = ref 17 in
  let got = ref 0 in
  Proc.spawn e (fun () ->
      match Fabric.one_sided_read fab ~src:0 ~dst:1 ~bytes:8 (fun () -> !cell) with
      | Ok v -> got := v
      | Error _ -> Alcotest.fail "read failed");
  Engine.run e;
  check_int "read value" 17 !got

let one_sided_read_linearizes_at_target () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  let cell = ref 1 in
  (* mutate the cell just after the read is issued but before the target
     DMA happens: the read must see the new value *)
  Engine.schedule e ~at:(Time.ns 500) (fun () -> cell := 2);
  let got = ref 0 in
  Proc.spawn e (fun () ->
      match Fabric.one_sided_read fab ~src:0 ~dst:1 ~bytes:8 (fun () -> !cell) with
      | Ok v -> got := v
      | Error _ -> ());
  Engine.run e;
  check_int "sees post-issue write" 2 !got

let one_sided_write_applies_and_acks () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  let cell = ref 0 in
  let acked_at = ref Time.zero in
  Proc.spawn e (fun () ->
      (match Fabric.one_sided_write fab ~src:0 ~dst:2 ~bytes:64 (fun () -> cell := 9) with
      | Ok () -> acked_at := Proc.now ()
      | Error _ -> Alcotest.fail "write failed");
      check_int "applied" 9 !cell);
  Engine.run e;
  check_bool "hardware ack costs a round trip" true Time.(acked_at.contents > Time.us 1)

let dead_target_fails () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Fabric.set_alive fab 1 false;
  let result = ref None in
  Proc.spawn e (fun () ->
      result := Some (Fabric.one_sided_read fab ~src:0 ~dst:1 ~bytes:8 (fun () -> 0)));
  Engine.run e;
  match !result with
  | Some (Error `Unreachable) -> ()
  | Some (Ok _) -> Alcotest.fail "read from dead machine succeeded"
  | Some (Error `Timeout) | None -> Alcotest.fail "unexpected result"

let mid_flight_death () =
  (* the target dies while the request is in flight: error, no value *)
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Engine.schedule e ~at:(Time.ns 100) (fun () -> Fabric.set_alive fab 1 false);
  let result = ref None in
  Proc.spawn e (fun () ->
      result := Some (Fabric.one_sided_read fab ~src:0 ~dst:1 ~bytes:8 (fun () -> 1)));
  Engine.run e;
  check_bool "errored" true (match !result with Some (Error _) -> true | _ -> false)

let local_ops_skip_nic () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Proc.spawn e (fun () ->
      match Fabric.one_sided_read fab ~src:0 ~dst:0 ~bytes:8 (fun () -> 5) with
      | Ok v -> check_int "local read" 5 v
      | Error _ -> Alcotest.fail "local read failed");
  Engine.run e;
  check_int "no NIC messages for local access" 0 (Nic.ops (Fabric.nic fab 0))

let send_delivers () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  let got = ref None in
  Fabric.set_handler fab 1 (fun ~src ~reply:_ m -> got := Some (src, m));
  Proc.spawn e (fun () -> Fabric.send fab ~src:0 ~dst:1 ~bytes:32 (Ping 3));
  Engine.run e;
  check_bool "delivered" true (!got = Some (0, Ping 3))

let call_round_trip () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Fabric.set_handler fab 2 (fun ~src:_ ~reply m ->
      match m with Ping n -> reply ~bytes:16 (Pong (n * 2)) | Pong _ -> ());
  let got = ref None in
  Proc.spawn e (fun () -> got := Some (Fabric.call fab ~src:0 ~dst:2 ~bytes:32 (Ping 21)));
  Engine.run e;
  check_bool "rpc response" true (!got = Some (Ok (Pong 42)))

let call_timeout () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  (* machine 1 never replies *)
  Fabric.set_handler fab 1 (fun ~src:_ ~reply:_ _ -> ());
  let got = ref None in
  Proc.spawn e (fun () ->
      got := Some (Fabric.call ~timeout:(Time.ms 1) fab ~src:0 ~dst:1 ~bytes:32 (Ping 0)));
  Engine.run e;
  check_bool "timed out" true (!got = Some (Error `Timeout))

let partition_blocks () =
  let e, (fab : msg Fabric.t), _ = mk_fabric () in
  Fabric.set_partition fab 1 7;
  check_bool "not reachable" false (Fabric.reachable fab 0 1);
  let result = ref None in
  Proc.spawn e (fun () ->
      result := Some (Fabric.one_sided_read fab ~src:0 ~dst:1 ~bytes:8 (fun () -> 0)));
  Engine.run e;
  check_bool "partitioned read errors" true
    (match !result with Some (Error _) -> true | _ -> false);
  Fabric.set_partition fab 1 0;
  check_bool "healed" true (Fabric.reachable fab 0 1)

let nic_pipelines_saturate () =
  let e = Engine.create () in
  let nic = Nic.create e ~params:Params.default in
  (* one small message's service time *)
  let t1 = Nic.occupy nic ~bytes:16 in
  let t2 = Nic.occupy nic ~bytes:16 in
  (* two NICs: both process in parallel *)
  check_int "two pipes parallel" (Time.to_ns t1) (Time.to_ns t2);
  let t3 = Nic.occupy nic ~bytes:16 in
  check_bool "third queues" true Time.(t3 > t1)

let nic_priority_no_queueing () =
  let e = Engine.create () in
  let nic = Nic.create e ~params:Params.default in
  (* saturate both pipes with large transfers *)
  ignore (Nic.occupy nic ~bytes:1_000_000);
  ignore (Nic.occupy nic ~bytes:1_000_000);
  let tp = Nic.occupy_priority nic ~bytes:16 in
  check_bool "priority skips queue" true Time.(tp < Time.us 10)

(* Figure 2 mechanism check: on a symmetric random-read workload, one-sided
   reads sustain several times the per-machine rate of RPC reads. *)
let rdma_vs_rpc_gap () =
  let machines = 4 in
  let e, (fab : msg Fabric.t), cpus = mk_fabric ~machines () in
  let rdma_ops = ref 0 and rpc_ops = ref 0 in
  let run_phase ~rdma ~count =
    let stop = ref false in
    for m = 0 to machines - 1 do
      for _ = 0 to 7 do
        Proc.spawn e (fun () ->
            let rng = Rng.create (m + 99) in
            while not !stop do
              let dst = (m + 1 + Rng.int rng (machines - 1)) mod machines in
              if rdma then begin
                match Fabric.one_sided_read fab ~src:m ~dst ~bytes:64 (fun () -> 0) with
                | Ok _ -> incr count
                | Error _ -> ()
              end
              else begin
                match Fabric.call fab ~src:m ~dst ~bytes:64 (Ping 1) with
                | Ok _ -> incr count
                | Error _ -> ()
              end
            done)
      done
    done;
    Engine.run ~until:(Time.add (Engine.now e) (Time.ms 2)) e;
    stop := true;
    Engine.run ~until:(Time.add (Engine.now e) (Time.ms 1)) e
  in
  (* RPC needs server-side dispatch: echo handler paying receive CPU *)
  for m = 0 to machines - 1 do
    Fabric.set_handler fab m (fun ~src:_ ~reply msg ->
        Cpu.exec_bg cpus.(m) ~cost:(Params.default.Params.cpu_rpc_recv) (fun () ->
            Proc.spawn e (fun () ->
                match msg with Ping n -> reply ~bytes:64 (Pong n) | Pong _ -> ())))
  done;
  run_phase ~rdma:true ~count:rdma_ops;
  run_phase ~rdma:false ~count:rpc_ops;
  let ratio = float_of_int !rdma_ops /. float_of_int (max 1 !rpc_ops) in
  check_bool
    (Printf.sprintf "one-sided >= 2x RPC (got %.2fx, %d vs %d)" ratio !rdma_ops !rpc_ops)
    true (ratio >= 2.0)

let suites =
  [
    ( "net.one_sided",
      [
        test "read" one_sided_read_works;
        test "read linearizes at target" one_sided_read_linearizes_at_target;
        test "write applies and acks" one_sided_write_applies_and_acks;
        test "dead target fails" dead_target_fails;
        test "mid-flight death" mid_flight_death;
        test "local ops skip NIC" local_ops_skip_nic;
      ] );
    ( "net.messaging",
      [
        test "send delivers" send_delivers;
        test "call round trip" call_round_trip;
        test "call timeout" call_timeout;
        test "partition blocks" partition_blocks;
      ] );
    ( "net.nic",
      [
        test "pipelines saturate" nic_pipelines_saturate;
        test "priority skips queueing" nic_priority_no_queueing;
        test "rdma vs rpc gap" rdma_vs_rpc_gap;
      ] );
  ]
