open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Basic transaction semantics} *)

let read_own_writes () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:5).(0) in
  let v =
    Cluster.run_on c ~machine:1 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              write_int tx cell 9;
              read_int tx cell)
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "reads own write" 9 v;
  check_int "committed value" 9 (read_cell c ~machine:2 cell)

let repeatable_reads () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:1).(0) in
  let same =
    Cluster.run_on c ~machine:1 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = read_int tx cell in
              Proc.sleep (Time.us 100);
              let b = read_int tx cell in
              a = b)
        with
        | Ok v -> v
        | Error _ -> false)
  in
  check_bool "successive reads identical" true same

let conflicting_writers_abort () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  (* two coordinators increment concurrently without retry: at most one of
     any conflicting pair commits, and the final value equals the number of
     successful commits *)
  let commits = ref 0 in
  let done_ = ref 0 in
  for m = 1 to 4 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        (match
           Api.run st ~thread:0 (fun tx ->
               let v = read_int tx cell in
               Proc.sleep (Time.us 20);
               write_int tx cell (v + 1))
         with
        | Ok () -> incr commits
        | Error Txn.Conflict -> ()
        | Error e -> Fmt.failwith "unexpected: %a" Txn.pp_abort e);
        incr done_)
  done;
  Cluster.run_for c ~d:(Time.ms 50);
  check_int "all finished" 4 !done_;
  check_int "value = commits" !commits (read_cell c ~machine:0 cell);
  check_bool "at least one committed" true (!commits >= 1)

let validation_catches_stale_read () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:2 ~init:0 in
  (* T1 reads both cells with a pause; T2 writes cell 1 during the pause;
     T1 writes cell 0 only, so cell 1 is read-validated and must fail *)
  let t1 = ref None in
  let st1 = Cluster.machine c 1 and st2 = Cluster.machine c 2 in
  Proc.spawn ~ctx:st1.State.ctx c.Cluster.engine (fun () ->
      t1 :=
        Some
          (Api.run st1 ~thread:0 (fun tx ->
               let a = read_int tx cells.(0) in
               let b = read_int tx cells.(1) in
               Proc.sleep (Time.ms 2);
               write_int tx cells.(0) (a + b + 1))));
  Proc.spawn ~ctx:st2.State.ctx c.Cluster.engine (fun () ->
      Proc.sleep (Time.us 500);
      match Api.run_retry st2 ~thread:0 (fun tx -> write_int tx cells.(1) 42) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "t2 failed: %a" Txn.pp_abort e);
  Cluster.run_for c ~d:(Time.ms 50);
  check_bool "t1 aborted by validation" true (!t1 = Some (Error Txn.Conflict))

let read_only_multi_validates () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:2 ~init:50 in
  (* invariant: the two cells always sum to 100; a writer moves value
     between them while readers snapshot both *)
  let violations = ref 0 and reads = ref 0 in
  let stop = ref false in
  let writer = Cluster.machine c 1 in
  Proc.spawn ~ctx:writer.State.ctx c.Cluster.engine (fun () ->
      while not !stop do
        (match
           Api.run_retry writer ~thread:0 (fun tx ->
               let a = read_int tx cells.(0) in
               let b = read_int tx cells.(1) in
               write_int tx cells.(0) (a - 1);
               write_int tx cells.(1) (b + 1))
         with
        | Ok () -> ()
        | Error _ -> ());
        Proc.sleep (Time.us 50)
      done);
  for m = 2 to 4 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        while not !stop do
          (match
             Api.run st ~thread:0 (fun tx ->
                 let a = read_int tx cells.(0) in
                 let b = read_int tx cells.(1) in
                 (a, b))
           with
          | Ok (a, b) ->
              incr reads;
              if a + b <> 100 then incr violations
          | Error _ -> ());
          Proc.sleep (Time.us 30)
        done)
  done;
  Cluster.run_for c ~d:(Time.ms 40);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "collected reads" true (!reads > 100);
  check_int "no snapshot violations" 0 !violations

let lockfree_read_never_torn () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  (* a 16-byte object holding (v, -v): lock-free reads must never observe
     a half-written pair *)
  let addr =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:16 ~region:r.Wire.rid () in
              let b = Bytes.create 16 in
              Bytes.set_int64_le b 0 0L;
              Bytes.set_int64_le b 8 0L;
              Txn.write tx a b;
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  let stop = ref false in
  let torn = ref 0 and reads = ref 0 in
  let wst = Cluster.machine c 1 in
  Proc.spawn ~ctx:wst.State.ctx c.Cluster.engine (fun () ->
      let v = ref 0 in
      while not !stop do
        incr v;
        let b = Bytes.create 16 in
        Bytes.set_int64_le b 0 (Int64.of_int !v);
        Bytes.set_int64_le b 8 (Int64.of_int (- !v));
        (match Api.run_retry wst ~thread:0 (fun tx -> Txn.write tx addr b) with
        | Ok () -> ()
        | Error _ -> ());
        Proc.sleep (Time.us 20)
      done);
  for m = 2 to 4 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        while not !stop do
          (match Api.read_lockfree st addr ~len:16 with
          | Some b ->
              incr reads;
              let x = Int64.to_int (Bytes.get_int64_le b 0) in
              let y = Int64.to_int (Bytes.get_int64_le b 8) in
              if x <> -y then incr torn
          | None -> ());
          Proc.sleep (Time.us 10)
        done)
  done;
  Cluster.run_for c ~d:(Time.ms 30);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "many reads" true (!reads > 200);
  check_int "no torn reads" 0 !torn

let alloc_free_lifecycle () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let addr =
    Cluster.run_on c ~machine:1 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx a 3;
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "alive" 3 (read_cell c ~machine:2 addr);
  (* free it *)
  Cluster.run_on c ~machine:1 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> Txn.free tx addr) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "free: %a" Txn.pp_abort e);
  (* reading a freed object must fail *)
  let result =
    Cluster.run_on c ~machine:2 (fun st ->
        Api.run st ~thread:0 (fun tx -> read_int tx addr))
  in
  check_bool "freed object unreadable" true (result = Error Txn.Not_allocated)

let aborted_alloc_returns_slot () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let slot_addr = ref None in
  (* allocate then explicitly abort: the slot must be reusable *)
  let res =
    Cluster.run_on c ~machine:1 (fun st ->
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            slot_addr := Some a;
            Api.abort ()))
  in
  check_bool "explicit abort" true (res = Error Txn.Explicit);
  Cluster.run_for c ~d:(Time.ms 2);
  (* the same slot comes back on the next allocation (LIFO free list) *)
  let again =
    Cluster.run_on c ~machine:1 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx a 1;
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_bool "slot reused" true (Some again = !slot_addr)

let backups_apply_at_truncation () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:7).(0) in
  (* run long enough for lazy truncation to flush *)
  Cluster.run_for c ~d:(Time.ms 20);
  let primary_mem = Option.get (replica_bytes c ~machine:r.Wire.primary r.Wire.rid) in
  List.iter
    (fun b ->
      let backup_mem = Option.get (replica_bytes c ~machine:b r.Wire.rid) in
      let off = cell.Addr.offset in
      check_bool
        (Printf.sprintf "backup %d byte-identical at object" b)
        true
        (Bytes.sub primary_mem off 16 = Bytes.sub backup_mem off 16))
    r.Wire.backups

let remote_alloc () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  (* allocate from a machine that is not the region's primary *)
  let m = surviving_machine c ~not_in:[ r.Wire.primary ] in
  let addr =
    Cluster.run_on c ~machine:m (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:32 ~region:r.Wire.rid () in
              Txn.write tx a (Bytes.make 32 'z');
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "in requested region" r.Wire.rid addr.Addr.region;
  check_bool "readable" true (read_cell c ~machine:0 addr <> 0)

let multi_region_transaction () =
  let c = mk_cluster () in
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  let a = (alloc_cells c ~region:r1.Wire.rid ~n:1 ~init:10).(0) in
  let b = (alloc_cells c ~region:r2.Wire.rid ~n:1 ~init:20).(0) in
  Cluster.run_on c ~machine:3 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            let va = read_int tx a and vb = read_int tx b in
            write_int tx a (va + 5);
            write_int tx b (vb - 5))
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  check_int "region 1 updated" 15 (read_cell c ~machine:1 a);
  check_int "region 2 updated" 15 (read_cell c ~machine:2 b)

(* Serializability under contention: counter incremented by racing
   transactions from every machine; final value must equal commit count. *)
let counter_serializability () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  let commits = ref 0 in
  let per_machine = 30 in
  let finished = ref 0 in
  for m = 0 to 5 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        for _ = 1 to per_machine do
          match
            Api.run_retry ~attempts:200 st ~thread:0 (fun tx ->
                let v = read_int tx cell in
                write_int tx cell (v + 1))
          with
          | Ok () -> incr commits
          | Error e -> Fmt.failwith "increment failed: %a" Txn.pp_abort e
        done;
        incr finished)
  done;
  let guard = ref 0 in
  while !finished < 6 && !guard < 3000 do
    incr guard;
    Cluster.run_for c ~d:(Time.ms 5)
  done;
  check_int "all workers done" 6 !finished;
  check_int "every commit visible exactly once" (6 * per_machine) (read_cell c ~machine:0 cell);
  check_int "all committed" (6 * per_machine) !commits

(* Freeing an object allocated in the same transaction cancels both
   operations and returns the tentative slot to the (possibly remote)
   primary. *)
let alloc_free_same_tx () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let m = surviving_machine c ~not_in:[ r.Wire.primary ] in
  let committed_addr =
    Cluster.run_on c ~machine:m (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx a 1;
              Txn.free tx a;
              (* the transaction still commits (with no writes for a) *)
              let b = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx b 2;
              b)
        with
        | Ok b -> b
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "second alloc committed" 2 (read_cell c ~machine:0 committed_addr);
  Cluster.run_for c ~d:(Time.ms 5);
  (* the cancelled slot is available again at the primary *)
  let again =
    Cluster.run_on c ~machine:m (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx a 3;
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "slot reusable" 3 (read_cell c ~machine:0 again)

let suites =
  [
    ( "txn.semantics",
      [
        test "read own writes" read_own_writes;
        test "repeatable reads" repeatable_reads;
        test "conflicting writers" conflicting_writers_abort;
        test "validation catches stale read" validation_catches_stale_read;
        test "read-only snapshot" read_only_multi_validates;
        test "lock-free reads never torn" lockfree_read_never_torn;
        test "multi-region" multi_region_transaction;
        test "counter serializability" counter_serializability;
      ] );
    ( "txn.alloc",
      [
        test "alloc/free lifecycle" alloc_free_lifecycle;
        test "aborted alloc returns slot" aborted_alloc_returns_slot;
        test "remote alloc" remote_alloc;
        test "alloc+free in one tx" alloc_free_same_tx;
      ] );
    ("txn.replication", [ test "backups apply at truncation" backups_apply_at_truncation ]);
  ]
