open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Full-cluster power failure under load (§5): every committed transaction
   survives the restart, in-flight transactions resolve atomically via the
   standard vote/decide rules, and the cluster is fully live afterwards. *)
let power_cycle_under_load () =
  let c = mk_cluster ~machines:6 ~seed:21 () in
  let r = Cluster.alloc_region_exn c in
  let n = 16 in
  let cells = alloc_cells c ~region:r.Wire.rid ~n ~init:100 in
  (* transfer load so the power failure catches transactions mid-commit *)
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      for _ = 0 to 2 do
        Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
            let rng = Rng.split st.State.rng in
            while not !stop do
              let a = Rng.int rng n in
              let b = (a + 1 + Rng.int rng (n - 1)) mod n in
              (match
                 Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                     let va = read_int tx cells.(a) in
                     let vb = read_int tx cells.(b) in
                     write_int tx cells.(a) (va - 3);
                     write_int tx cells.(b) (vb + 3))
               with
              | Ok () | Error _ -> ());
              Proc.sleep (Time.us 120)
            done)
      done)
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 25);
  stop := true;
  (* pull the plug on the whole cluster, mid-flight *)
  Cluster.power_cycle c;
  Cluster.run_for c ~d:(Time.ms 120);
  (* the new configuration is in force everywhere *)
  Array.iter
    (fun (st : State.t) ->
      check_bool "machine alive after restart" true st.State.alive;
      check_int "boot configuration" 2 st.State.config.Config.id)
    c.Cluster.machines;
  (* conservation: committed transfers survived; in-flight ones resolved
     atomically *)
  check_int "money conserved across power failure" (n * 100)
    (sum_cells c ~machine:1 cells);
  (* liveness: new transactions commit on the rebooted cluster *)
  Cluster.run_on c ~machine:2 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            Array.iter (fun a -> write_int tx a 5) cells)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "not live after restart: %a" Txn.pp_abort e);
  check_int "fresh writes applied" (n * 5) (sum_cells c ~machine:3 cells);
  (* and new regions can still be allocated *)
  check_bool "region allocation works after restart" true
    (Cluster.alloc_region c <> None)

(* A committed value written right before the power failure must be
   readable afterwards — even when truncation had not yet propagated it to
   the backups (recovery replays it from the logs). *)
let committed_right_before_failure () =
  let c = mk_cluster ~machines:5 ~seed:9 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  Cluster.run_on c ~machine:1 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> write_int tx cell 424242) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  (* no settling time: kill immediately, before lazy truncation *)
  Cluster.power_cycle c;
  Cluster.run_for c ~d:(Time.ms 120);
  check_int "reported-committed write survives" 424242 (read_cell c ~machine:2 cell)

(* Restarting a single machine (not the whole cluster) brings it back as a
   member able to serve again. *)
let single_machine_restart () =
  let c = mk_cluster ~machines:5 ~seed:4 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:1).(0) in
  Cluster.run_for c ~d:(Time.ms 5);
  let victim = surviving_machine c ~not_in:[ 0 ] in
  Cluster.kill c victim;
  Cluster.run_for c ~d:(Time.ms 120);
  (* the cluster reconfigured without it *)
  check_bool "evicted" false
    (Config.is_member (Cluster.machine c 0).State.config victim);
  (* reboot it with the current configuration: it does not rejoin (the
     paper never re-admits machines mid-run) but must not disturb anyone *)
  let cfg = (Cluster.machine c 0).State.config in
  ignore (Cluster.restart_machine c victim ~config:cfg);
  Cluster.run_for c ~d:(Time.ms 60);
  check_int "data still correct" 1 (read_cell c ~machine:0 cell);
  check_int "no spurious reconfiguration" cfg.Config.id
    (Cluster.machine c 0).State.config.Config.id

let suites =
  [
    ( "powerfail",
      [
        test "power cycle under load" power_cycle_under_load;
        test "committed right before failure" committed_right_before_failure;
        test "single machine restart" single_machine_restart;
      ] );
  ]
