open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Wait until reconfiguration and transaction-state recovery settle. *)
let settle c = Cluster.run_for c ~d:(Time.ms 120)

(* {1 Kill a machine at a precise commit-protocol point and verify the
   failure-atomicity contract: a transaction reported committed stays
   committed; one reported aborted/failed leaves no trace; an in-doubt
   transaction is decided consistently by the vote rules of §5.3.} *)

type who = Primary | Backup0 | Coordinator

let phase_kill_scenario ~phase ~who ~expect_commit () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let coord_machine = surviving_machine c ~not_in:(r.Wire.primary :: r.Wire.backups) in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:2 ~init:100 in
  Cluster.run_for c ~d:(Time.ms 5);
  let victim =
    match who with
    | Primary -> r.Wire.primary
    | Backup0 -> List.hd r.Wire.backups
    | Coordinator -> coord_machine
  in
  let st = Cluster.machine c coord_machine in
  let fired = ref false in
  st.State.phase_hook <-
    Some
      (fun p _txid ->
        if p = phase && not !fired then begin
          fired := true;
          Cluster.kill c victim
        end);
  let result = ref None in
  Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
      result :=
        Some
          (Api.run st ~thread:0 (fun tx ->
               let a = read_int tx cells.(0) in
               let b = read_int tx cells.(1) in
               write_int tx cells.(0) (a + 1);
               write_int tx cells.(1) (b + 1))));
  settle c;
  check_bool "kill hook fired" true !fired;
  (* read the cells from a surviving machine *)
  let reader = surviving_machine c ~not_in:[ victim ] in
  let va = read_cell c ~machine:reader cells.(0) in
  let vb = read_cell c ~machine:reader cells.(1) in
  check_int "atomic: both cells agree" va vb;
  (match (who, !result) with
  | Coordinator, _ -> ()  (* the coordinator died; no report to check *)
  | _, Some (Ok ()) ->
      check_int "reported committed => state committed" 101 va
  | _, Some (Error _) ->
      check_bool "reported aborted => no partial state" true (va = 100 || va = 101)
  | _, None -> Alcotest.fail "transaction neither returned nor machine died");
  (match expect_commit with
  | Some true -> check_int "vote rules decide commit" 101 va
  | Some false -> check_int "vote rules decide abort" 100 va
  | None -> ());
  (* locks must be released: the cells are writable again *)
  Cluster.run_on c ~machine:reader (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            write_int tx cells.(0) 500;
            write_int tx cells.(1) 500)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "cells still locked: %a" Txn.pp_abort e);
  check_int "writable after recovery" 500 (read_cell c ~machine:reader cells.(0))

let kill_primary_before_lock =
  phase_kill_scenario ~phase:State.Before_lock ~who:Primary ~expect_commit:(Some false)

let kill_primary_after_lock =
  (* locks are held and validation needs no primary reads here, so the
     coordinator still writes COMMIT-BACKUP records to the (alive) backups;
     those records attest validation and the vote rules commit *)
  phase_kill_scenario ~phase:State.After_lock ~who:Primary ~expect_commit:(Some true)

let kill_backup_after_lock =
  (* the COMMIT-BACKUP write to the dead backup fails, but the one to the
     surviving backup lands; that surviving record is enough for the vote
     rules to commit (recovery re-replicates it to the new backup) *)
  phase_kill_scenario ~phase:State.After_lock ~who:Backup0 ~expect_commit:(Some true)

let kill_primary_after_commit_backup =
  (* every backup holds COMMIT-BACKUP; the promoted primary votes
     commit-backup -> commit, even though no primary processed the commit *)
  phase_kill_scenario ~phase:State.After_commit_backup ~who:Primary
    ~expect_commit:(Some true)

let kill_backup_after_commit_backup =
  (* all acks are in; commit proceeds at the primaries *)
  phase_kill_scenario ~phase:State.After_commit_backup ~who:Backup0
    ~expect_commit:(Some true)

let kill_primary_after_commit_primary =
  phase_kill_scenario ~phase:State.After_commit_primary ~who:Primary
    ~expect_commit:(Some true)

let kill_coordinator_after_lock =
  (* coordinator dies before validation completes: consistent-hash recovery
     coordinators collect lock votes only -> abort *)
  phase_kill_scenario ~phase:State.After_lock ~who:Coordinator ~expect_commit:(Some false)

let kill_coordinator_after_commit_backup =
  (* COMMIT-BACKUP records attest validation succeeded -> recovery commits
     a transaction whose coordinator never reported *)
  phase_kill_scenario ~phase:State.After_commit_backup ~who:Coordinator
    ~expect_commit:(Some true)

let kill_coordinator_after_commit_primary =
  phase_kill_scenario ~phase:State.After_commit_primary ~who:Coordinator
    ~expect_commit:(Some true)

(* {1 Reconfiguration and membership} *)

let reconfiguration_basics () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_for c ~d:(Time.ms 5);
  Cluster.kill c r.Wire.primary;
  settle c;
  let survivor = surviving_machine c ~not_in:[ r.Wire.primary ] in
  let st = Cluster.machine c survivor in
  check_int "configuration advanced" 2 st.State.config.Config.id;
  check_bool "dead machine evicted" false
    (Config.is_member st.State.config r.Wire.primary);
  (* a backup was promoted *)
  (match State.region_info st r.Wire.rid with
  | Some info ->
      check_bool "new primary is an old backup" true
        (List.mem info.Wire.primary r.Wire.backups);
      check_int "change ids updated" 2 info.Wire.last_primary_change
  | None -> Alcotest.fail "mapping lost");
  check_bool "milestones recorded" true
    (Cluster.milestone_time c "config-commit" <> None);
  check_bool "not blocked" false st.State.blocked

let data_recovery_restores_replication () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:32 ~init:11 in
  Cluster.run_for c ~d:(Time.ms 10);
  Cluster.kill c r.Wire.primary;
  (* wait for reconfiguration + paced data recovery *)
  let guard = ref 0 in
  while Cluster.milestone_time c "data-rec-done" = None && !guard < 100 do
    incr guard;
    Cluster.run_for c ~d:(Time.ms 20)
  done;
  check_bool "data recovery completed" true (Cluster.milestone_time c "data-rec-done" <> None);
  let reps = Cluster.replicas_of c r.Wire.rid in
  let alive_reps =
    List.filter (fun (m, _) -> (Cluster.machine c m).State.alive) reps
  in
  check_int "f+1 replicas restored" 3 (List.length alive_reps);
  (* all alive replicas byte-identical on the object area *)
  let datas = List.map (fun (_, (rep : State.replica)) -> rep.State.mem) alive_reps in
  (match datas with
  | first :: rest ->
      List.iter
        (fun mem ->
          Array.iter
            (fun (cell : Addr.t) ->
              check_bool "replica bytes identical" true
                (Bytes.sub first cell.Addr.offset 16 = Bytes.sub mem cell.Addr.offset 16))
            cells)
        rest
  | [] -> Alcotest.fail "no replicas");
  check_int "values survive" 11 (read_cell c ~machine:(fst (List.hd alive_reps)) cells.(0))

let allocator_recovery_after_promotion () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:1 in
  Cluster.run_for c ~d:(Time.ms 10);
  Cluster.kill c r.Wire.primary;
  settle c;
  settle c;
  (* allocating from the promoted primary must work and not overlap live
     objects *)
  let survivor = surviving_machine c ~not_in:[ r.Wire.primary ] in
  let fresh =
    Cluster.run_on c ~machine:survivor (fun st ->
        match
          Api.run_retry ~attempts:200 st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
              write_int tx a 999;
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "alloc after promotion: %a" Txn.pp_abort e)
  in
  Array.iter
    (fun (cell : Addr.t) ->
      check_bool "no overlap with live objects" true (not (Addr.equal cell fresh)))
    cells;
  check_int "old objects intact" 1 (read_cell c ~machine:survivor cells.(0));
  check_int "new object visible" 999 (read_cell c ~machine:survivor fresh)

let cm_failure_recovers () =
  let c = mk_cluster ~machines:6 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:4 ~init:42 in
  Cluster.run_for c ~d:(Time.ms 5);
  let cm = (Cluster.machine c 1).State.config.Config.cm in
  Cluster.kill c cm;
  settle c;
  settle c;
  let survivor = surviving_machine c ~not_in:[ cm ] in
  let st = Cluster.machine c survivor in
  check_bool "new CM elected" true (st.State.config.Config.cm <> cm);
  check_int "data survives CM failure" 42 (read_cell c ~machine:survivor cells.(0));
  (* the new CM can still allocate regions *)
  let r2 = Cluster.alloc_region ~from:survivor c in
  check_bool "region allocation works under new CM" true (r2 <> None)

let correlated_domain_failure () =
  (* 9 machines in 3 failure domains; replicas land in distinct domains, so
     killing one whole domain leaves >= 2 replicas of everything *)
  let c = mk_cluster ~machines:9 ~domains:(fun m -> m / 3) () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:77 in
  Cluster.run_for c ~d:(Time.ms 5);
  Cluster.kill_domain c 0;
  settle c;
  settle c;
  check_bool "no region lost" true (c.Cluster.lost_regions = []);
  let survivor = 3 in
  check_int "data survives domain failure" 77 (read_cell c ~machine:survivor cells.(0));
  let st = Cluster.machine c survivor in
  check_int "six members remain" 6 (Config.size st.State.config)

let region_lost_detection () =
  let c = mk_cluster ~machines:7 () in
  (* the first region takes the least-loaded machines (including the CM);
     the second lands on three others — kill those, so the CM survives to
     detect the loss *)
  let _r1 = Cluster.alloc_region_exn c in
  let r = Cluster.alloc_region_exn c in
  ignore (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:1);
  Cluster.run_for c ~d:(Time.ms 5);
  let holders = r.Wire.primary :: r.Wire.backups in
  check_bool "CM not a holder" false (List.mem 0 holders);
  List.iter (fun m -> Cluster.kill c m) holders;
  settle c;
  settle c;
  check_bool "region loss detected" true (List.mem r.Wire.rid c.Cluster.lost_regions)

let unaffected_transactions_continue () =
  (* transactions touching only unaffected regions keep committing during
     recovery of a failed machine *)
  let c = mk_cluster ~machines:8 () in
  let r1 = Cluster.alloc_region_exn c in
  (* find a region whose replicas avoid r1's primary *)
  let rec pick_other tries =
    if tries > 20 then None
    else
      let r2 = Cluster.alloc_region_exn c in
      if
        r2.Wire.primary <> r1.Wire.primary
        && not (List.mem r1.Wire.primary r2.Wire.backups)
      then Some r2
      else pick_other (tries + 1)
  in
  match pick_other 0 with
  | None -> Alcotest.skip ()
  | Some r2 ->
      let cell = (alloc_cells c ~region:r2.Wire.rid ~n:1 ~init:0).(0) in
      let coord =
        surviving_machine c
          ~not_in:(r1.Wire.primary :: (r2.Wire.primary :: r2.Wire.backups))
      in
      let st = Cluster.machine c coord in
      let commits_during_recovery = ref 0 in
      let stop = ref false in
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          while not !stop do
            (match
               Api.run_retry st ~thread:0 (fun tx ->
                   let v = read_int tx cell in
                   write_int tx cell (v + 1))
             with
            | Ok () -> incr commits_during_recovery
            | Error _ -> ());
            Proc.sleep (Time.us 300)
          done);
      Cluster.run_for c ~d:(Time.ms 10);
      Cluster.kill c r1.Wire.primary;
      let before = !commits_during_recovery in
      (* the recovery window: suspect + reconfig takes several ms *)
      Cluster.run_for c ~d:(Time.ms 15);
      let during = !commits_during_recovery - before in
      stop := true;
      Cluster.run_for c ~d:(Time.ms 2);
      check_bool
        (Printf.sprintf "unaffected region kept committing (%d commits)" during)
        true (during > 10)

let committed_state_in_nvram () =
  (* even if every machine dies, committed data persists in the NVRAM of
     f+1 replicas (the durability basis for whole-cluster recovery) *)
  let c = mk_cluster ~machines:5 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:0).(0) in
  Cluster.run_on c ~machine:1 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> write_int tx cell 123_456) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  (* let truncation propagate the update to the backups *)
  Cluster.run_for c ~d:(Time.ms 30);
  for m = 0 to 4 do
    Cluster.kill c m
  done;
  let holders =
    List.filter_map
      (fun m -> replica_bytes c ~machine:m r.Wire.rid)
      (r.Wire.primary :: r.Wire.backups)
  in
  check_int "f+1 NVRAM copies survive" 3 (List.length holders);
  List.iter
    (fun mem ->
      let v =
        Int64.to_int
          (Bytes.get_int64_le mem (cell.Addr.offset + Obj_layout.header_size))
      in
      check_int "committed value durable in NVRAM" 123_456 v)
    holders

(* Regression: duplicate free hints (or an abort-return racing the
   allocator-recovery scan) must never hand one slot to two transactions —
   that corrupts whichever commits second. *)
let no_double_allocation () =
  let c = mk_cluster ~machines:5 () in
  let r = Cluster.alloc_region_exn c in
  let m = surviving_machine c ~not_in:[ r.Wire.primary ] in
  (* a remote allocation that aborts: the slot returns via FREE-SLOT hint *)
  let res =
    Cluster.run_on c ~machine:m (fun st ->
        Api.run st ~thread:0 (fun tx ->
            let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
            ignore a;
            Api.abort ()))
  in
  check_bool "aborted" true (res = Error Txn.Explicit);
  (* duplicate hints for slots already on the free list *)
  Cluster.run_on c ~machine:m (fun st ->
      for off = 0 to 4 do
        Comms.send st ~dst:r.Wire.primary
          (Wire.Free_slot_hint { addr = Addr.make ~region:r.Wire.rid ~offset:(off * 16) })
      done);
  Cluster.run_for c ~d:(Time.ms 5);
  (* now allocate many objects in one transaction: all must be distinct *)
  let addrs =
    Cluster.run_on c ~machine:m (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              List.init 64 (fun i ->
                  let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                  write_int tx a i;
                  a))
        with
        | Ok l -> l
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  let uniq = List.sort_uniq Addr.compare addrs in
  check_int "all allocations distinct" (List.length addrs) (List.length uniq)

(* The B-tree keeps its invariants across a primary failure: structure
   modifications in flight either commit or vanish, and post-recovery
   inserts and scans behave. *)
let btree_across_failure () =
  let c = mk_cluster ~machines:6 ~seed:11 () in
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  let tree =
    Cluster.run_on c ~machine:0 (fun st ->
        Farm_kv.Btree.create st ~thread:0 ~regions:[| r1.Wire.rid; r2.Wire.rid |] ~fanout:6 ())
  in
  let committed = Hashtbl.create 256 in
  let stop = ref false in
  let writers = List.filter (fun m -> m <> r1.Wire.primary) [ 1; 2; 3; 4; 5 ] in
  List.iteri
    (fun i m ->
      let st = Cluster.machine c m in
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          let k = ref i in
          while not !stop do
            (match
               Api.run_retry ~attempts:6 st ~thread:0 (fun tx ->
                   Farm_kv.Btree.insert tx tree !k (!k * 2))
             with
            | Ok () ->
                Hashtbl.replace committed !k (!k * 2);
                k := !k + List.length writers
            | Error _ -> ());
            Proc.sleep (Time.us 150)
          done))
    writers;
  Cluster.run_for c ~d:(Time.ms 15);
  Cluster.kill c r1.Wire.primary;
  Cluster.run_for c ~d:(Time.ms 150);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 5);
  let reader = surviving_machine c ~not_in:[ r1.Wire.primary ] in
  let found =
    Cluster.run_on c ~machine:reader (fun st ->
        match
          Api.run_retry ~attempts:100 st ~thread:0 (fun tx ->
              Farm_kv.Btree.range tx tree ~lo:0 ~hi:1_000_000)
        with
        | Ok l -> l
        | Error e -> Fmt.failwith "scan: %a" Txn.pp_abort e)
  in
  check_bool "inserted a meaningful number" true (Hashtbl.length committed > 50);
  (* every key reported committed must be present with the right value *)
  Hashtbl.iter
    (fun k v ->
      match List.assoc_opt k found with
      | Some v' -> check_bool (Printf.sprintf "key %d survives" k) true (v = v')
      | None -> Alcotest.failf "committed key %d lost" k)
    committed;
  (* keys in the tree but not in our table are in-flight casualties that
     recovery committed; they must at least be self-consistent *)
  List.iter (fun (k, v) -> check_bool "value consistent" true (v = k * 2)) found

(* Regression: a machine that is primary of one written region and backup
   of another holds two different lock payloads for the same transaction;
   recovery evidence must merge them, or commit-recovery at that machine
   skips the items of one region — leaking locks and losing writes. *)
let multi_region_mixed_role_recovery () =
  (* on 5 machines, placement gives r1 replicas [0,1,2] and r2 [3,4,0]:
     machine 0 is r1's primary and r2's backup *)
  let c = mk_cluster ~machines:5 ~seed:3 () in
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  let mixed =
    List.filter (fun m -> List.mem m r2.Wire.backups) (r1.Wire.primary :: r1.Wire.backups)
  in
  if mixed = [] || r1.Wire.primary = r2.Wire.primary then Alcotest.skip ();
  let a = (alloc_cells c ~region:r1.Wire.rid ~n:1 ~init:10).(0) in
  let b = (alloc_cells c ~region:r2.Wire.rid ~n:1 ~init:20).(0) in
  Cluster.run_for c ~d:(Time.ms 5);
  (* any machine outside r2's replicas and not r1's primary can coordinate
     (it may back r1; that only adds traffic) *)
  let coord =
    surviving_machine c
      ~not_in:(r1.Wire.primary :: r2.Wire.primary :: r2.Wire.backups)
  in
  let st = Cluster.machine c coord in
  let fired = ref false in
  st.State.phase_hook <-
    Some
      (fun p _ ->
        if p = State.After_commit_backup && not !fired then begin
          fired := true;
          Cluster.kill c r2.Wire.primary
        end);
  let result = ref None in
  Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
      result :=
        Some
          (Api.run st ~thread:0 (fun tx ->
               let va = read_int tx a and vb = read_int tx b in
               write_int tx a (va + 1);
               write_int tx b (vb + 1))));
  settle c;
  check_bool "hook fired" true !fired;
  let reader = surviving_machine c ~not_in:[ r2.Wire.primary ] in
  (* COMMIT-BACKUP records existed at every backup: recovery must commit *)
  check_int "region-1 write applied at its unchanged primary" 11
    (read_cell c ~machine:reader a);
  check_int "region-2 write applied via promotion" 21 (read_cell c ~machine:reader b);
  (* and the mixed-role machine released the lock *)
  Cluster.run_on c ~machine:reader (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            write_int tx a 777;
            write_int tx b 777)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "still locked: %a" Txn.pp_abort e)

(* §6.4: a region that loses all but one replica is re-replicated with the
   aggressive settings regardless of the configured pacing. *)
let critical_region_recovers_aggressively () =
  let params =
    { quick_params with Params.recovery_interval = Time.ms 4; region_size = 1 lsl 18 }
  in
  let c = mk_cluster ~machines:8 ~params () in
  let _r0 = Cluster.alloc_region_exn c in
  let r = Cluster.alloc_region_exn c in
  ignore (alloc_cells c ~region:r.Wire.rid ~n:8 ~init:5);
  Cluster.run_for c ~d:(Time.ms 10);
  let rec_time kill_list =
    List.iter (fun m -> Cluster.kill c m) kill_list;
    let guard = ref 0 in
    while Cluster.milestone_time c "data-rec-done" = None && !guard < 400 do
      incr guard;
      Cluster.run_for c ~d:(Time.ms 10)
    done;
    match
      (Cluster.milestone_time c "data-rec-start", Cluster.milestone_time c "data-rec-done")
    with
    | Some t0, Some t1 -> Time.sub t1 t0
    | _ -> Fmt.failwith "data recovery did not finish"
  in
  (* kill the primary AND one backup: one survivor -> critical *)
  let t_critical = rec_time [ r.Wire.primary; List.hd r.Wire.backups ] in
  (* the CM marked it critical *)
  let st = Cluster.machine c (surviving_machine c ~not_in:(r.Wire.primary :: r.Wire.backups)) in
  (match State.region_info st r.Wire.rid with
  | Some info -> check_bool "marked critical" true info.Wire.critical
  | None -> Alcotest.fail "mapping lost");
  (* compare against a single-replica loss of the same region shape *)
  let c2 = mk_cluster ~machines:8 ~params () in
  let _r0 = Cluster.alloc_region_exn c2 in
  let r2 = Cluster.alloc_region_exn c2 in
  ignore (alloc_cells c2 ~region:r2.Wire.rid ~n:8 ~init:5);
  Cluster.run_for c2 ~d:(Time.ms 10);
  Cluster.kill c2 r2.Wire.primary;
  let guard = ref 0 in
  while Cluster.milestone_time c2 "data-rec-done" = None && !guard < 400 do
    incr guard;
    Cluster.run_for c2 ~d:(Time.ms 10)
  done;
  let t_paced =
    match
      (Cluster.milestone_time c2 "data-rec-start", Cluster.milestone_time c2 "data-rec-done")
    with
    | Some t0, Some t1 -> Time.sub t1 t0
    | _ -> Fmt.failwith "paced recovery did not finish"
  in
  check_bool
    (Printf.sprintf "critical re-replication much faster (%a vs %a)"
       (fun () t -> Fmt.str "%a" Time.pp t) t_critical
       (fun () t -> Fmt.str "%a" Time.pp t) t_paced)
    true
    Time.(Time.mul_int t_critical 3 < t_paced)

(* Regression (found via Figure 11): every recovering transaction must be
   decided and its locks released even when (a) its votes land while the
   recipient is still committing the new configuration, and (b) the
   decision fan-out races a mapping-cache invalidation. We kill the CM
   under load — the scenario that exposed both — and then scan every
   primary replica for leaked locks. *)
let no_leaked_locks_after_cm_failure () =
  let c = mk_cluster ~machines:8 ~seed:42 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:24 ~init:50 in
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      if st.State.id <> 0 then
        for _ = 0 to 3 do
          Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
              let rng = Rng.split st.State.rng in
              while not !stop do
                let a = Rng.int rng 24 and b = Rng.int rng 24 in
                (match
                   Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                       let va = read_int tx cells.(a) in
                       let vb = read_int tx cells.(b) in
                       write_int tx cells.(a) (va + 1);
                       if a <> b then write_int tx cells.(b) (vb - 1))
                 with
                | Ok () | Error _ -> ());
                Proc.sleep (Time.us 120)
              done)
        done)
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 20);
  Cluster.kill_cm c;
  Cluster.run_for c ~d:(Time.ms 200);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 30);
  (* no locks left on any primary replica *)
  Array.iter
    (fun (st : State.t) ->
      if st.State.alive then
        Hashtbl.iter
          (fun rid (rep : State.replica) ->
            if rep.State.role = State.Primary then
              Hashtbl.iter
                (fun block slot ->
                  let base = block * st.State.params.Params.block_size in
                  for i = 0 to (st.State.params.Params.block_size / slot) - 1 do
                    let off = base + (i * slot) in
                    if Obj_layout.is_locked (Obj_layout.get rep.State.mem ~off) then
                      Alcotest.failf "leaked lock at m%d r%d+%d" st.State.id rid off
                  done)
                rep.State.block_headers)
          st.State.nv.replicas)
    c.Cluster.machines;
  (* every recovery coordination was decided *)
  Array.iter
    (fun (st : State.t) ->
      if st.State.alive then
        Txid.Tbl.iter
          (fun txid rc ->
            if not rc.State.rc_decided then
              Alcotest.failf "undecided recovering tx %a at m%d" Txid.pp txid st.State.id)
          st.State.rec_coords)
    c.Cluster.machines

(* Bank conservation across a failure, with transfers racing recovery. *)
let conservation_across_failure () =
  let c = mk_cluster ~machines:6 ~seed:7 () in
  let r = Cluster.alloc_region_exn c in
  let n = 24 in
  let cells = alloc_cells c ~region:r.Wire.rid ~n ~init:100 in
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      if st.State.id <> r.Wire.primary then
        for w = 0 to 2 do
          Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
              let rng = Rng.split st.State.rng in
              ignore w;
              while not !stop do
                let a = Rng.int rng n in
                let b = (a + 1 + Rng.int rng (n - 1)) mod n in
                (match
                   Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                       let va = read_int tx cells.(a) in
                       let vb = read_int tx cells.(b) in
                       if va > 0 then begin
                         write_int tx cells.(a) (va - 1);
                         write_int tx cells.(b) (vb + 1)
                       end)
                 with
                | Ok () | Error _ -> ());
                Proc.sleep (Time.us 200)
              done)
        done)
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 20);
  Cluster.kill c r.Wire.primary;
  Cluster.run_for c ~d:(Time.ms 150);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 5);
  let survivor = surviving_machine c ~not_in:[ r.Wire.primary ] in
  check_int "money conserved across failure" (n * 100) (sum_cells c ~machine:survivor cells)

let suites =
  [
    ( "recovery.phase_kills",
      [
        test "primary @ before-lock -> abort" kill_primary_before_lock;
        test "primary @ after-lock -> abort" kill_primary_after_lock;
        test "backup @ after-lock -> abort" kill_backup_after_lock;
        test "primary @ after-commit-backup -> commit" kill_primary_after_commit_backup;
        test "backup @ after-commit-backup -> commit" kill_backup_after_commit_backup;
        test "primary @ after-commit-primary -> commit" kill_primary_after_commit_primary;
        test "coordinator @ after-lock -> abort" kill_coordinator_after_lock;
        test "coordinator @ after-commit-backup -> commit"
          kill_coordinator_after_commit_backup;
        test "coordinator @ after-commit-primary -> commit"
          kill_coordinator_after_commit_primary;
      ] );
    ( "recovery.reconfiguration",
      [
        test "basics" reconfiguration_basics;
        test "data recovery restores f+1" data_recovery_restores_replication;
        test "allocator recovery after promotion" allocator_recovery_after_promotion;
        test "CM failure" cm_failure_recovers;
        test "correlated domain failure" correlated_domain_failure;
        test "region loss detection" region_lost_detection;
        test "unaffected transactions continue" unaffected_transactions_continue;
      ] );
    ( "recovery.regressions",
      [
        test "no double allocation" no_double_allocation;
        test "multi-region mixed-role recovery" multi_region_mixed_role_recovery;
        test "critical region recovers aggressively" critical_region_recovers_aggressively;
        test "no leaked locks after CM failure" no_leaked_locks_after_cm_failure;
        test "btree across failure" btree_across_failure;
      ] );
    ( "recovery.durability",
      [
        test "committed state in NVRAM" committed_state_in_nvram;
        test "conservation across failure" conservation_across_failure;
      ] );
  ]
