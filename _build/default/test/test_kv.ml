open Farm_sim
open Farm_core
open Farm_kv
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let mk_table ?(buckets = 32) ?(slots = 4) c ~vsize =
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      Hashtable.create st ~thread:0
        ~regions:[| r1.Wire.rid; r2.Wire.rid |]
        ~buckets ~ksize:8 ~vsize ~slots ())

(* {1 Codec} *)

let codec_addr_roundtrip =
  QCheck.Test.make ~name:"address encoding roundtrips" ~count:500
    QCheck.(pair (int_range 1 1000) (int_range 0 0xFFFFFF))
    (fun (region, offset) ->
      let a = Addr.make ~region ~offset in
      Codec.decode_addr (Codec.encode_addr a) = Some a)

let codec_null () =
  check_bool "null decodes to None" true (Codec.decode_addr 0 = None)

let fnv_positive =
  QCheck.Test.make ~name:"fnv1a non-negative" ~count:200 QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s -> Codec.fnv1a (Bytes.of_string s) >= 0)

(* {1 Hash table: model-based random testing} *)

let hashtable_model () =
  let c = mk_cluster () in
  let t = mk_table c ~vsize:16 in
  let model : (int, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  let rng = Rng.create 2024 in
  let value v =
    let b = Bytes.make 16 '\000' in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    b
  in
  for step = 1 to 400 do
    let k = Rng.int rng 60 in
    let roll = Rng.int rng 100 in
    Cluster.run_on c ~machine:(Rng.int rng (Cluster.n_machines c)) (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              if roll < 50 then begin
                let v = value step in
                Hashtable.insert tx t (key8 k) v;
                Hashtbl.replace model k v
              end
              else if roll < 70 then begin
                let deleted = Hashtable.delete tx t (key8 k) in
                let expected = Hashtbl.mem model k in
                if deleted <> expected then
                  Fmt.failwith "delete mismatch at step %d (key %d)" step k;
                Hashtbl.remove model k
              end
              else begin
                let got = Hashtable.lookup tx t (key8 k) in
                let expected = Hashtbl.find_opt model k in
                match (got, expected) with
                | None, None -> ()
                | Some g, Some e when Bytes.equal g e -> ()
                | _ -> Fmt.failwith "lookup mismatch at step %d (key %d)" step k
              end)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "op failed: %a" Txn.pp_abort e)
  done;
  (* final sweep *)
  for k = 0 to 59 do
    let got =
      Cluster.run_on c ~machine:0 (fun st ->
          match Api.run_retry st ~thread:0 (fun tx -> Hashtable.lookup tx t (key8 k)) with
          | Ok v -> v
          | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
    in
    check_bool
      (Printf.sprintf "final state key %d" k)
      true
      (match (got, Hashtbl.find_opt model k) with
      | None, None -> true
      | Some g, Some e -> Bytes.equal g e
      | _ -> false)
  done

let hashtable_overflow_chains () =
  (* a single bucket with 2 slots forces overflow chaining *)
  let c = mk_cluster () in
  let t = mk_table c ~buckets:1 ~slots:2 ~vsize:8 in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            for k = 0 to 9 do
              Hashtable.insert tx t (key8 k) (key8 (k * 7))
            done)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  for k = 0 to 9 do
    let got =
      Cluster.run_on c ~machine:1 (fun st ->
          match Api.run_retry st ~thread:0 (fun tx -> Hashtable.lookup tx t (key8 k)) with
          | Ok v -> v
          | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
    in
    check_bool (Printf.sprintf "chained key %d" k) true
      (got = Some (key8 (k * 7)))
  done;
  (* delete from the middle of a chain *)
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            check_bool "delete chained" true (Hashtable.delete tx t (key8 5)))
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  let got =
    Cluster.run_on c ~machine:0 (fun st ->
        match Api.run_retry st ~thread:0 (fun tx -> Hashtable.lookup tx t (key8 5)) with
        | Ok v -> v
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_bool "deleted from chain" true (got = None)

let hashtable_lockfree_consistent () =
  (* lock-free lookups racing transactional updates only ever see values
     that were actually written *)
  let c = mk_cluster () in
  let t = mk_table c ~vsize:8 in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx -> Hashtable.insert tx t (key8 1) (key8 1000))
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  let stop = ref false in
  let bogus = ref 0 and reads = ref 0 in
  let writer = Cluster.machine c 1 in
  Proc.spawn ~ctx:writer.State.ctx c.Cluster.engine (fun () ->
      let v = ref 1000 in
      while not !stop do
        incr v;
        (match
           Api.run_retry writer ~thread:0 (fun tx ->
               Hashtable.insert tx t (key8 1) (key8 !v))
         with
        | Ok () -> ()
        | Error _ -> ());
        Proc.sleep (Time.us 40)
      done);
  for m = 2 to 4 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        while not !stop do
          (match Hashtable.lookup_lockfree st t (key8 1) with
          | Some b ->
              incr reads;
              let v = Int64.to_int (Bytes.get_int64_le b 0) in
              if v < 1000 || v > 100_000 then incr bogus
          | None -> incr bogus);
          Proc.sleep (Time.us 20)
        done)
  done;
  Cluster.run_for c ~d:(Time.ms 30);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "many lock-free reads" true (!reads > 200);
  check_int "no bogus values" 0 !bogus

(* {1 B-tree} *)

let mk_btree c =
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  Cluster.run_on c ~machine:0 (fun st ->
      Btree.create st ~thread:0 ~regions:[| r1.Wire.rid; r2.Wire.rid |] ~fanout:6 ())

let btree_model () =
  let c = mk_cluster () in
  let t = mk_btree c in
  let module M = Map.Make (Int) in
  let model : int M.t ref = ref M.empty in
  let rng = Rng.create 99 in
  for step = 1 to 400 do
    let k = Rng.int rng 200 in
    let roll = Rng.int rng 100 in
    Cluster.run_on c ~machine:(Rng.int rng (Cluster.n_machines c)) (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              if roll < 55 then begin
                Btree.insert tx t k step;
                model := M.add k step !model
              end
              else if roll < 70 then begin
                let deleted = Btree.delete tx t k in
                if deleted <> M.mem k !model then
                  Fmt.failwith "btree delete mismatch at step %d" step;
                model := M.remove k !model
              end
              else if roll < 90 then begin
                let got = Btree.find tx t k in
                if got <> M.find_opt k !model then
                  Fmt.failwith "btree find mismatch at step %d (key %d)" step k
              end
              else begin
                let lo = Rng.int rng 150 in
                let hi = lo + Rng.int rng 50 in
                let got = Btree.range tx t ~lo ~hi in
                let expected =
                  M.bindings (M.filter (fun k _ -> k >= lo && k <= hi) !model)
                in
                if got <> expected then
                  Fmt.failwith "btree range mismatch at step %d [%d,%d]: %d vs %d" step lo
                    hi (List.length got) (List.length expected)
              end)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "btree op failed: %a" Txn.pp_abort e)
  done

let btree_sorted_bulk () =
  (* enough keys to force multi-level splits at fanout 6 *)
  let c = mk_cluster () in
  let t = mk_btree c in
  let n = 300 in
  let i = ref 0 in
  while !i < n do
    let lo = !i and hi = min n (!i + 25) in
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              for k = lo to hi - 1 do
                Btree.insert tx t k (k * 3)
              done)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
    i := hi
  done;
  let all =
    Cluster.run_on c ~machine:1 (fun st ->
        match Api.run_retry st ~thread:0 (fun tx -> Btree.range tx t ~lo:0 ~hi:n) with
        | Ok l -> l
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  check_int "all keys present" n (List.length all);
  List.iteri (fun i (k, v) -> check_bool "sorted and correct" true (k = i && v = i * 3)) all

let btree_lockfree_lookup () =
  let c = mk_cluster () in
  let t = mk_btree c in
  Cluster.run_on c ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            for k = 0 to 100 do
              Btree.insert tx t k (k + 7)
            done)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  let st = Cluster.machine c 2 in
  let checks = ref 0 in
  Cluster.run_on c ~machine:2 (fun _ ->
      for k = 0 to 100 do
        (match Btree.lookup_lockfree st t k with
        | Some v -> check_int "lock-free value" (k + 7) v
        | None -> Alcotest.fail "lock-free miss");
        incr checks
      done;
      check_bool "missing key" true (Btree.lookup_lockfree st t 5000 = None));
  check_int "all checked" 101 !checks

let btree_lockfree_with_concurrent_splits () =
  (* a writer keeps inserting (forcing splits); lock-free readers must
     always return correct values for already-inserted keys, falling back
     through fence-key checks when their cache goes stale *)
  let c = mk_cluster () in
  let t = mk_btree c in
  let inserted = ref (-1) in
  let stop = ref false in
  let writer = Cluster.machine c 1 in
  Proc.spawn ~ctx:writer.State.ctx c.Cluster.engine (fun () ->
      let k = ref 0 in
      while not !stop && !k < 400 do
        (match
           Api.run_retry writer ~thread:0 (fun tx -> Btree.insert tx t !k (!k * 2))
         with
        | Ok () ->
            inserted := !k;
            incr k
        | Error _ -> ());
        Proc.sleep (Time.us 30)
      done);
  let wrong = ref 0 and reads = ref 0 in
  for m = 2 to 4 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        let rng = Rng.split st.State.rng in
        while not !stop do
          let upper = !inserted in
          if upper >= 0 then begin
            let k = Rng.int rng (upper + 1) in
            incr reads;
            match Btree.lookup_lockfree st t k with
            | Some v -> if v <> k * 2 then incr wrong
            | None -> incr wrong
          end;
          Proc.sleep (Time.us 25)
        done)
  done;
  Cluster.run_for c ~d:(Time.ms 25);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  check_bool "many racing reads" true (!reads > 100);
  check_int "no wrong lock-free results" 0 !wrong

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ("kv.codec", [ qtest codec_addr_roundtrip; test "null" codec_null; qtest fnv_positive ]);
    ( "kv.hashtable",
      [
        test "model-based random ops" hashtable_model;
        test "overflow chains" hashtable_overflow_chains;
        test "lock-free consistent" hashtable_lockfree_consistent;
      ] );
    ( "kv.btree",
      [
        test "model-based random ops" btree_model;
        test "sorted bulk + splits" btree_sorted_bulk;
        test "lock-free lookup" btree_lockfree_lookup;
        test "lock-free vs concurrent splits" btree_lockfree_with_concurrent_splits;
      ] );
  ]
