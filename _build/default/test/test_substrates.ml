open Farm_sim

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 NVRAM bank} *)

let bank_basic () =
  let b = Farm_nvram.Bank.create ~machine:3 in
  let buf = Farm_nvram.Bank.alloc b ~key:1 ~size:64 in
  check_int "zeroed" 0 (Char.code (Bytes.get buf 10));
  Bytes.set buf 10 'x';
  (match Farm_nvram.Bank.find b ~key:1 with
  | Some buf' -> check_bool "same buffer" true (buf == buf')
  | None -> Alcotest.fail "lost region");
  check_int "total bytes" 64 (Farm_nvram.Bank.total_bytes b);
  Alcotest.check_raises "double alloc"
    (Invalid_argument "Bank.alloc: region 1 already present") (fun () ->
      ignore (Farm_nvram.Bank.alloc b ~key:1 ~size:8))

let bank_wipe () =
  let b = Farm_nvram.Bank.create ~machine:0 in
  ignore (Farm_nvram.Bank.alloc b ~key:1 ~size:8);
  Farm_nvram.Bank.wipe b;
  check_bool "wiped" true (Farm_nvram.Bank.is_wiped b);
  check_bool "contents gone" true (Farm_nvram.Bank.find b ~key:1 = None)

(* {1 Energy model (§2.1, Figure 1)} *)

let energy_matches_paper () =
  let m = Farm_nvram.Energy.default in
  let e1 = Farm_nvram.Energy.joules_per_gb m ~ssds:1 in
  check_bool "1 SSD ~110 J/GB" true (e1 > 100. && e1 < 120.);
  let e4 = Farm_nvram.Energy.joules_per_gb m ~ssds:4 in
  check_bool "4 SSDs much cheaper" true (e4 < e1 /. 2.);
  (* monotonically decreasing *)
  let prev = ref infinity in
  for s = 1 to 4 do
    let e = Farm_nvram.Energy.joules_per_gb m ~ssds:s in
    check_bool "decreasing" true (e < !prev);
    prev := e
  done

let energy_cost_under_15_percent () =
  let m = Farm_nvram.Energy.default in
  (* worst case: single SSD, no optimization *)
  let frac = Farm_nvram.Energy.overhead_fraction m ~ssds:1 in
  check_bool "non-volatility under 15% of DRAM cost" true (frac < 0.15);
  let cost = Farm_nvram.Energy.energy_cost_per_gb m ~ssds:1 in
  check_bool "energy cost ~$0.55/GB" true (cost > 0.4 && cost < 0.7)

(* {1 Zookeeper-equivalent} *)

let zk_run fn =
  let e = Engine.create () in
  let zk = Farm_coord.Zk.create e ~rng:(Rng.create 3) ~replicas:5 in
  let result = ref None in
  Proc.spawn e (fun () -> result := Some (fn zk));
  Engine.run e;
  Option.get !result

let zk_cas_basic () =
  let ok =
    zk_run (fun zk ->
        match Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 "a" with
        | Ok 1 -> (
            match Farm_coord.Zk.read zk with
            | Some (1, "a") -> (
                match Farm_coord.Zk.compare_and_swap zk ~expected_seq:1 "b" with
                | Ok 2 -> Farm_coord.Zk.read zk = Some (2, "b")
                | _ -> false)
            | _ -> false)
        | _ -> false)
  in
  check_bool "cas sequence" true ok

let zk_cas_conflict () =
  let ok =
    zk_run (fun zk ->
        ignore (Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 "a");
        match Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 "b" with
        | Error (`Conflict 1) -> Farm_coord.Zk.read zk = Some (1, "a")
        | _ -> false)
  in
  check_bool "stale cas rejected" true ok

let zk_concurrent_single_winner () =
  let e = Engine.create () in
  let zk = Farm_coord.Zk.create e ~rng:(Rng.create 4) ~replicas:5 in
  let wins = ref 0 and losses = ref 0 in
  for i = 0 to 9 do
    Proc.spawn e (fun () ->
        match Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 (string_of_int i) with
        | Ok _ -> incr wins
        | Error _ -> incr losses)
  done;
  Engine.run e;
  check_int "exactly one winner" 1 !wins;
  check_int "nine losers" 9 !losses

let zk_quorum_loss () =
  let e = Engine.create () in
  let zk = Farm_coord.Zk.create e ~rng:(Rng.create 5) ~replicas:5 in
  Farm_coord.Zk.kill_replica zk 0;
  Farm_coord.Zk.kill_replica zk 1;
  check_bool "still quorate with 3/5" true (Farm_coord.Zk.has_quorum zk);
  Farm_coord.Zk.kill_replica zk 2;
  check_bool "no quorum with 2/5" false (Farm_coord.Zk.has_quorum zk);
  let result = ref None in
  Proc.spawn e (fun () ->
      result := Some (Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 "x"));
  Engine.run e;
  check_bool "cas refused without quorum" true (!result = Some (Error `No_quorum));
  Farm_coord.Zk.revive_replica zk 2;
  let result2 = ref None in
  Proc.spawn e (fun () ->
      result2 := Some (Farm_coord.Zk.compare_and_swap zk ~expected_seq:0 "y"));
  Engine.run e;
  check_bool "works after revive" true (!result2 = Some (Ok 1))

let zk_bootstrap () =
  let e = Engine.create () in
  let zk = Farm_coord.Zk.create e ~rng:(Rng.create 6) ~replicas:3 in
  check_int "bootstrap seq" 1 (Farm_coord.Zk.bootstrap zk "init");
  let r = ref None in
  Proc.spawn e (fun () -> r := Some (Farm_coord.Zk.read zk));
  Engine.run e;
  check_bool "bootstrapped value" true (!r = Some (Some (1, "init")))

let suites =
  [
    ("nvram.bank", [ test "basic" bank_basic; test "wipe" bank_wipe ]);
    ( "nvram.energy",
      [
        test "figure 1 shape" energy_matches_paper;
        test "cost under 15%" energy_cost_under_15_percent;
      ] );
    ( "coord.zk",
      [
        test "cas basic" zk_cas_basic;
        test "cas conflict" zk_cas_conflict;
        test "single winner" zk_concurrent_single_winner;
        test "quorum loss" zk_quorum_loss;
        test "bootstrap" zk_bootstrap;
      ] );
  ]
