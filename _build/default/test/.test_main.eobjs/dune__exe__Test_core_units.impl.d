test/test_core_units.ml: Addr Alcotest Array Bytes Config Engine Farm_core Farm_sim Fun Gen List Obj_layout Option Placement QCheck QCheck_alcotest Ringlog Rng Txid Wire
