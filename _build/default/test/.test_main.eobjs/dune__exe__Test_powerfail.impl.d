test/test_powerfail.ml: Alcotest Api Array Cluster Config Farm_core Farm_sim Fmt Proc Rng State Test_util Time Txn Wire
