test/test_txn.ml: Addr Alcotest Api Array Bytes Cluster Farm_core Farm_sim Fmt Int64 List Option Printf Proc State Test_util Time Txn Wire
