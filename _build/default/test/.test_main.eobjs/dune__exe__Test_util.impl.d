test/test_util.ml: Api Array Bytes Cluster Farm_core Farm_sim Fmt Int64 List Params Proc State Time Txn
