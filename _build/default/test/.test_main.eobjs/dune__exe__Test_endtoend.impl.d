test/test_endtoend.ml: Addr Alcotest Array Cluster Config Driver Engine Farm_coord Farm_core Farm_kv Farm_sim Farm_workloads State Stats Tatp Test_util Time Tpcc Txn Wire
