test/test_recovery.ml: Addr Alcotest Api Array Bytes Cluster Comms Config Farm_core Farm_kv Farm_sim Fmt Hashtbl Int64 List Obj_layout Params Printf Proc Rng State Test_util Time Txid Txn Wire
