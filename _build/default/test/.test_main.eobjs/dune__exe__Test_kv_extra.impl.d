test/test_kv_extra.ml: Addr Alcotest Api Array Btree Bytes Cluster Farm_core Farm_kv Farm_net Farm_sim Fmt Hashtable Hashtbl Int64 List Params Printf Proc Rng State Test_util Time Txn Wire
