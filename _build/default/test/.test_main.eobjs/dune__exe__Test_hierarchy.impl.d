test/test_hierarchy.ml: Alcotest Api Array Cluster Config Farm_core Farm_sim Fmt Lease List Params Printf State Test_util Time Txn Wire
