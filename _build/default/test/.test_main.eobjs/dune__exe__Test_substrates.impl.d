test/test_substrates.ml: Alcotest Bytes Char Engine Farm_coord Farm_nvram Farm_sim Option Proc Rng
