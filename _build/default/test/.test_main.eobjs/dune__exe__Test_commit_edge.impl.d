test/test_commit_edge.ml: Addr Alcotest Api Array Cluster Farm_core Farm_sim Fmt Hashtbl List Params Proc State Test_util Time Txn Wire
