test/test_sim.ml: Alcotest Array Cpu Engine Farm_sim Gen Heap Ivar List Mailbox Option Proc QCheck QCheck_alcotest Rng Stats Time
