test/test_serializability.ml: Addr Alcotest Array Bytes Cluster Commit Engine Farm_core Farm_sim Farm_workloads History List Obj Proc Rng State Test_util Time Txn Wire
