test/test_net.ml: Alcotest Array Cpu Engine Fabric Farm_net Farm_sim Nic Params Printf Proc Rng Time
