test/test_lease.ml: Alcotest Api Array Cluster Config Cpu Farm_core Farm_sim Hashtbl Lease Params Printf Proc Rng State Test_util Time Wire
