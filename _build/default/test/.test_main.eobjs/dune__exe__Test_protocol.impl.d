test/test_protocol.ml: Alcotest Api Array Cluster Config Engine Farm_core Farm_sim Fmt Hashtbl List Printf Proc Ringlog Rng State Test_util Time Txn Wire
