open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Failure detection latency: a dead machine is suspected within roughly
   one lease duration (5 ms here), not seconds (§5.1). *)
let detection_latency () =
  let c = mk_cluster ~machines:5 () in
  ignore (Cluster.alloc_region_exn c);
  Cluster.run_for c ~d:(Time.ms 20);
  let kill_at = Cluster.now c in
  Cluster.kill c 3;
  Cluster.run_for c ~d:(Time.ms 30);
  match Cluster.milestone_time c "suspect" with
  | Some at ->
      let latency = Time.to_ms_float (Time.sub at kill_at) in
      check_bool
        (Printf.sprintf "suspected within 1-2 lease durations (%.1f ms)" latency)
        true
        (latency >= 4.0 && latency <= 12.0)
  | None -> Alcotest.fail "no suspicion recorded"

(* No false positives with the interrupt-driven priority lease manager,
   even with the cluster under transaction load. *)
let no_false_positives_under_load () =
  let c = mk_cluster ~machines:5 () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:16 ~init:0 in
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      for _ = 0 to 5 do
        Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
            let rng = Rng.split st.State.rng in
            while not !stop do
              let i = Rng.int rng 16 in
              (match
                 Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                     let v = read_int tx cells.(i) in
                     write_int tx cells.(i) (v + 1))
               with
              | Ok () | Error _ -> ());
              Proc.sleep (Time.us 100)
            done)
      done)
    c.Cluster.machines;
  Cluster.run_for c ~d:(Time.ms 300);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 2);
  let expiries =
    Array.fold_left
      (fun acc (st : State.t) -> acc + st.State.lease.State.expiry_events)
      0 c.Cluster.machines
  in
  check_int "zero false positives over 300ms under load" 0 expiries;
  check_int "no spurious reconfiguration" 1
    (Cluster.machine c 0).State.config.Config.id

(* Figure 16 mechanism: under load, the shared-thread lease managers see
   renewal delays that the dedicated-priority one does not. *)
let shared_vs_priority_delay () =
  let c = mk_cluster ~machines:3 () in
  let st = Cluster.machine c 1 in
  (* make the machine CPU very busy *)
  for _ = 0 to 63 do
    Cpu.exec_bg st.State.cpu ~cost:(Time.ms 5) (fun () -> ())
  done;
  st.State.lease.State.impl <- State.Ud_shared;
  let d_shared = Lease.scheduling_delay st in
  st.State.lease.State.impl <- State.Ud_thread_pri;
  let d_pri = Lease.scheduling_delay st in
  check_bool "shared thread delayed by CPU queue" true Time.(d_shared > Time.ms 1);
  check_bool "priority thread unaffected" true Time.(d_pri < Time.us 10)

(* Preemption spikes suspend the dedicated (non-priority) lease thread. *)
let ud_thread_spikes () =
  let c = mk_cluster ~machines:3 () in
  let st = Cluster.machine c 1 in
  st.State.lease.State.impl <- State.Ud_thread;
  st.State.lease.State.suspended_until <- Time.add (Cluster.now c) (Time.ms 7);
  let d = Lease.scheduling_delay st in
  check_bool "delayed until spike ends" true Time.(d >= Time.ms 6);
  (* after the spike passes, the delay is small again *)
  Cluster.run_for c ~d:(Time.ms 8);
  let d2 = Lease.scheduling_delay st in
  check_bool "small after spike" true Time.(d2 < Time.us 100)

(* The renewal protocol keeps both lease directions fresh. *)
let renewals_flow () =
  let c = mk_cluster ~machines:4 () in
  Cluster.run_for c ~d:(Time.ms 50);
  let now = Cluster.now c in
  Array.iter
    (fun (st : State.t) ->
      if not (State.is_cm st) then begin
        let age = Time.sub now st.State.lease.State.last_grant_from_cm in
        check_bool
          (Printf.sprintf "machine %d lease fresh (%.1f ms old)" st.State.id
             (Time.to_ms_float age))
          true
          Time.(age <= quick_params.Params.lease_duration)
      end)
    c.Cluster.machines;
  (* and the CM's view of every machine *)
  (match (Cluster.machine c 0).State.cm with
  | Some cm ->
      Array.iter
        (fun (st : State.t) ->
          if st.State.id <> 0 then begin
            match Hashtbl.find_opt cm.State.cm_leases st.State.id with
            | Some last ->
                check_bool "CM holds fresh lease" true
                  Time.(Time.sub now last <= quick_params.Params.lease_duration)
            | None -> Alcotest.fail "CM lost a lease entry"
          end)
        c.Cluster.machines
  | None -> Alcotest.fail "machine 0 should be CM")

(* Quantization: the priority lease manager wakes on system-timer
   boundaries (0.5 ms). *)
let timer_quantization () =
  let c = mk_cluster ~machines:3 () in
  let st = Cluster.machine c 1 in
  let q = Lease.quantize st (Time.us 1_100) in
  check_int "rounded up to timer resolution" (Time.to_ns (Time.us 1_500)) (Time.to_ns q);
  st.State.lease.State.impl <- State.Rpc_shared;
  let q2 = Lease.quantize st (Time.us 1_100) in
  check_int "no quantization for polling impls" (Time.to_ns (Time.us 1_100)) (Time.to_ns q2)

let suites =
  [
    ( "lease",
      [
        test "detection latency" detection_latency;
        test "no false positives under load" no_false_positives_under_load;
        test "shared vs priority delay" shared_vs_priority_delay;
        test "ud+thread spikes" ud_thread_spikes;
        test "renewals flow" renewals_flow;
        test "timer quantization" timer_quantization;
      ] );
  ]
