open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let hier_params = { quick_params with Params.lease_group_size = 3 }

(* Topology: with groups of 3 over members {1..n-1} (machine 0 is CM),
   the lowest member of each group leads and renews with the CM. *)
let topology () =
  let c = mk_cluster ~machines:10 ~params:hier_params () in
  (* members in id order: 1..9; groups {1,2,3} {4,5,6} {7,8,9} *)
  List.iter
    (fun (m, expected) ->
      check_int
        (Printf.sprintf "machine %d renews with %d" m expected)
        expected
        (Lease.renew_target (Cluster.machine c m)))
    [ (1, 0); (2, 1); (3, 1); (4, 0); (5, 4); (6, 4); (7, 0); (8, 7); (9, 7) ];
  check_bool "1 leads" true (Lease.is_leader (Cluster.machine c 1));
  check_bool "2 does not" false (Lease.is_leader (Cluster.machine c 2));
  Alcotest.(check (list int))
    "leader watches its members" [ 2; 3 ]
    (List.sort compare (Lease.watched_members (Cluster.machine c 1)));
  Alcotest.(check (list int))
    "CM watches the leaders" [ 1; 4; 7 ]
    (List.sort compare (Lease.watched_members (Cluster.machine c 0)))

(* The CM's lease traffic shrinks from O(n) to O(n / group). *)
let cm_traffic_reduced () =
  let run params =
    let c = mk_cluster ~machines:10 ~params () in
    Cluster.run_for c ~d:(Time.ms 100);
    (Cluster.machine c 0).State.lease.State.grantor_messages
  in
  let flat = run quick_params in
  let hier = run hier_params in
  check_bool
    (Printf.sprintf "hierarchy cuts CM lease load (%d vs %d messages)" hier flat)
    true
    (hier * 2 < flat)

(* A member failure is still detected and evicted — via its group leader —
   within roughly two lease periods (the paper's "worst case would double
   failure detection time"). *)
let member_failure_detected_via_leader () =
  let c = mk_cluster ~machines:10 ~params:hier_params () in
  ignore (Cluster.alloc_region_exn c);
  Cluster.run_for c ~d:(Time.ms 20);
  let victim = 5 (* a non-leader member of group {4,5,6} *) in
  let killed_at = Cluster.now c in
  Cluster.kill c victim;
  Cluster.run_for c ~d:(Time.ms 150);
  let st = Cluster.machine c 0 in
  check_bool "victim evicted" false (Config.is_member st.State.config victim);
  (match Cluster.milestone_time c "suspect" with
  | Some at ->
      let d = Time.to_ms_float (Time.sub at killed_at) in
      check_bool
        (Printf.sprintf "detected within ~2 leases (%.1f ms, lease 5 ms)" d)
        true (d <= 15.0)
  | None -> Alcotest.fail "no suspicion");
  check_int "one reconfiguration" 2 st.State.config.Config.id

(* A leader failure is detected by both its members and the CM. *)
let leader_failure_detected () =
  let c = mk_cluster ~machines:10 ~params:hier_params () in
  ignore (Cluster.alloc_region_exn c);
  Cluster.run_for c ~d:(Time.ms 20);
  let victim = 4 (* leader of {4,5,6} *) in
  Cluster.kill c victim;
  Cluster.run_for c ~d:(Time.ms 200);
  let st = Cluster.machine c 0 in
  check_bool "leader evicted" false (Config.is_member st.State.config victim);
  (* the survivors regrouped under the new configuration and stay quiet *)
  let expiries_before =
    Array.fold_left
      (fun acc (s : State.t) -> acc + s.State.lease.State.expiry_events)
      0 c.Cluster.machines
  in
  Cluster.run_for c ~d:(Time.ms 100);
  let expiries_after =
    Array.fold_left
      (fun acc (s : State.t) -> acc + s.State.lease.State.expiry_events)
      0 c.Cluster.machines
  in
  check_int "no false positives after regrouping" expiries_before expiries_after

(* Transactions behave identically under the hierarchy. *)
let transactions_unaffected () =
  let c = mk_cluster ~machines:10 ~params:hier_params () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:100 in
  Cluster.run_on c ~machine:9 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            let v = read_int tx cells.(0) in
            write_int tx cells.(0) (v + 1))
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  check_int "commit works" 101 (read_cell c ~machine:3 cells.(0))

let suites =
  [
    ( "lease.hierarchy",
      [
        test "topology" topology;
        test "CM traffic reduced" cm_traffic_reduced;
        test "member failure via leader" member_failure_detected_via_leader;
        test "leader failure" leader_failure_detected;
        test "transactions unaffected" transactions_unaffected;
      ] );
  ]
