open Farm_sim
open Farm_core

(* Shared helpers for cluster-level tests. *)

let quick_params =
  { Params.default with Params.lease_duration = Time.ms 5; region_size = 1 lsl 18 }

let mk_cluster ?(seed = 42) ?(machines = 5) ?(params = quick_params) ?domains () =
  Cluster.create ~seed ~params ?domains ~machines ()

(* An integer cell stored in a FaRM object. *)
let read_int tx addr = Int64.to_int (Bytes.get_int64_le (Txn.read tx addr ~len:8) 0)

let write_int tx addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Txn.write tx addr b

(* Allocate [n] cells initialized to [init] in [region], from machine 0. *)
let alloc_cells cluster ~region ~n ~init =
  Cluster.run_on cluster ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            Array.init n (fun _ ->
                let a = Txn.alloc tx ~size:8 ~region () in
                write_int tx a init;
                a))
      with
      | Ok addrs -> addrs
      | Error e -> Fmt.failwith "alloc_cells: %a" Txn.pp_abort e)

let read_cell cluster ~machine addr =
  Cluster.run_on cluster ~machine (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> read_int tx addr) with
      | Ok v -> v
      | Error e -> Fmt.failwith "read_cell: %a" Txn.pp_abort e)

let sum_cells cluster ~machine addrs =
  Cluster.run_on cluster ~machine (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            Array.fold_left (fun acc a -> acc + read_int tx a) 0 addrs)
      with
      | Ok v -> v
      | Error e -> Fmt.failwith "sum_cells: %a" Txn.pp_abort e)

(* Spawn [fn] on a machine and return a getter to its eventual result;
   unlike [Cluster.run_on] this does not drive the engine. *)
let background cluster ~machine fn =
  let st = Cluster.machine cluster machine in
  let result = ref None in
  Proc.spawn ~ctx:st.State.ctx cluster.Cluster.engine (fun () -> result := Some (fn st));
  fun () -> !result

(* Replica bytes of a region on a machine, for byte-identity checks. *)
let replica_bytes cluster ~machine rid =
  match State.replica (Cluster.machine cluster machine) rid with
  | Some rep -> Some rep.State.mem
  | None -> None

let surviving_machine _cluster ~not_in =
  let rec go m = if List.mem m not_in then go (m + 1) else m in
  go 0
