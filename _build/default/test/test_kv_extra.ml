open Farm_sim
open Farm_core
open Farm_kv
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let key8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

(* {1 B-tree structural invariants after heavy churn} *)

let btree_invariants_after_churn () =
  let c = mk_cluster () in
  let r1 = Cluster.alloc_region_exn c in
  let tree =
    Cluster.run_on c ~machine:0 (fun st ->
        Btree.create st ~thread:0 ~regions:[| r1.Wire.rid |] ~fanout:5 ())
  in
  let rng = Rng.create 31 in
  let live = Hashtbl.create 128 in
  for _step = 1 to 600 do
    let k = Rng.int rng 500 in
    let insert = Rng.int rng 100 < 70 in
    Cluster.run_on c ~machine:(Rng.int rng (Cluster.n_machines c)) (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              if insert then begin
                Btree.insert tx tree k (k * 11);
                Hashtbl.replace live k ()
              end
              else begin
                ignore (Btree.delete tx tree k);
                Hashtbl.remove live k
              end)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  done;
  let violations, total =
    Cluster.run_on c ~machine:1 (fun st ->
        match Api.run_retry st ~thread:0 (fun tx -> Btree.check_invariants tx tree) with
        | Ok v -> v
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  List.iter (fun v -> Alcotest.failf "invariant violation: %s" v) violations;
  check_int "leaf chain covers all live keys" (Hashtbl.length live) total

(* {1 Partitioned hash tables (the TPC-C co-partitioning mechanism)} *)

let partitioned_table_locality () =
  let c = mk_cluster ~machines:6 () in
  let r0 = Cluster.alloc_region_exn c in
  let r1 = Cluster.alloc_region_exn c in
  let partition_of key = Int64.to_int (Bytes.get_int64_le key 0) mod 2 in
  let t =
    Cluster.run_on c ~machine:0 (fun st ->
        Hashtable.create st ~thread:0
          ~regions:[| r0.Wire.rid; r1.Wire.rid |]
          ~buckets:32 ~ksize:8 ~vsize:8 ~partitions:2 ~partition_of ())
  in
  (* every key's bucket must live in its partition's region *)
  for k = 0 to 63 do
    let b = t.Hashtable.buckets.(Hashtable.bucket_of t (key8 k)) in
    let expected = if k mod 2 = 0 then r0.Wire.rid else r1.Wire.rid in
    check_int (Printf.sprintf "key %d in partition region" k) expected b.Addr.region
  done;
  (* and the table still behaves *)
  Cluster.run_on c ~machine:1 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            for k = 0 to 63 do
              Hashtable.insert tx t (key8 k) (key8 (k + 1))
            done)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  for k = 0 to 63 do
    let got =
      Cluster.run_on c ~machine:2 (fun st -> Hashtable.lookup_lockfree st t (key8 k))
    in
    check_bool "lookup after partitioned insert" true (got = Some (key8 (k + 1)))
  done

(* {1 Region locality hints (§3): co-located replica sets} *)

let region_locality_hint () =
  let c = mk_cluster ~machines:6 () in
  let target = Cluster.alloc_region_exn c in
  let near = Cluster.alloc_region_exn ~locality:target.Wire.rid c in
  check_int "primary co-located" target.Wire.primary near.Wire.primary;
  Alcotest.(check (list int))
    "backups co-located" (List.sort compare target.Wire.backups)
    (List.sort compare near.Wire.backups)

(* {1 Data recovery pacing (§5.4)}: recovery reads are spaced by the
   pacing interval, so re-replication takes much longer than the raw
   transfer would. *)

let data_recovery_is_paced () =
  let run ~interval =
    let params =
      { quick_params with Params.recovery_interval = interval; region_size = 1 lsl 18 }
    in
    let c = mk_cluster ~machines:8 ~params () in
    (* keep the CM out of the victim region so reconfiguration stays fast *)
    let _r0 = Cluster.alloc_region_exn c in
    let r = Cluster.alloc_region_exn c in
    ignore (alloc_cells c ~region:r.Wire.rid ~n:8 ~init:3);
    Cluster.run_for c ~d:(Time.ms 10);
    Cluster.kill c r.Wire.primary;
    let guard = ref 0 in
    while Cluster.milestone_time c "data-rec-done" = None && !guard < 400 do
      incr guard;
      Cluster.run_for c ~d:(Time.ms 10)
    done;
    (* measure the re-replication itself, not failure detection *)
    match
      (Cluster.milestone_time c "data-rec-start", Cluster.milestone_time c "data-rec-done")
    with
    | Some t0, Some t1 -> Time.sub t1 t0
    | _ -> Fmt.failwith "data recovery did not finish"
  in
  let paced = run ~interval:(Time.ms 2) in
  let fast = run ~interval:(Time.us 50) in
  check_bool
    (Printf.sprintf "pacing slows re-replication (%a vs %a)"
       (fun () -> Fmt.str "%a" Time.pp) paced
       (fun () -> Fmt.str "%a" Time.pp) fast)
    true
    Time.(paced > Time.mul_int fast 3)

(* {1 Bandwidth model}: larger transfers take proportionally longer. *)

let bandwidth_matters () =
  let c = mk_cluster ~machines:3 () in
  let st = Cluster.machine c 1 in
  let time_read bytes =
    Cluster.run_on c ~machine:1 (fun _ ->
        let t0 = Proc.now () in
        ignore
          (Farm_net.Fabric.one_sided_read st.State.fabric ~src:1 ~dst:2 ~bytes
             (fun () -> ()));
        Time.to_ns (Time.sub (Proc.now ()) t0))
  in
  let small = time_read 64 and big = time_read 262_144 in
  check_bool
    (Printf.sprintf "256KB read much slower than 64B (%d vs %d ns)" big small)
    true
    (big > small * 5)

let suites =
  [
    ( "kv.extra",
      [
        test "btree invariants after churn" btree_invariants_after_churn;
        test "partitioned table locality" partitioned_table_locality;
        test "region locality hint" region_locality_hint;
        test "data recovery pacing" data_recovery_is_paced;
        test "bandwidth model" bandwidth_matters;
      ] );
  ]
