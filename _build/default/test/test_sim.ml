open Farm_sim

let test name fn = Alcotest.test_case name `Quick fn
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Heap} *)

let heap_sorted () =
  let h = Heap.create () in
  let rng = Rng.create 7 in
  let n = 1000 in
  for i = 0 to n - 1 do
    Heap.push h ~key:(Rng.int rng 100) ~seq:i i
  done;
  let prev = ref min_int in
  for _ = 1 to n do
    match Heap.pop h with
    | Some (k, _) ->
        check_bool "keys non-decreasing" true (k >= !prev);
        prev := k
    | None -> Alcotest.fail "heap empty too early"
  done;
  check_bool "empty at end" true (Heap.is_empty h)

let heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key:5 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, v) -> check_int "FIFO among equal keys" i v
    | None -> Alcotest.fail "missing entry"
  done

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* {1 Engine} *)

let engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule e ~at:(Time.us 3) (fun () -> order := 3 :: !order);
  Engine.schedule e ~at:(Time.us 1) (fun () -> order := 1 :: !order);
  Engine.schedule e ~at:(Time.us 2) (fun () -> order := 2 :: !order);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~at:(Time.ms 10) (fun () -> fired := true);
  Engine.run ~until:(Time.ms 5) e;
  check_bool "not yet fired" false !fired;
  check_int "clock at until" (Time.to_ns (Time.ms 5)) (Time.to_ns (Engine.now e));
  Engine.run ~until:(Time.ms 20) e;
  check_bool "fired in second run" true !fired

let engine_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:(Time.us 1) (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !order)

let engine_past_clamped () =
  let e = Engine.create () in
  Engine.schedule e ~at:(Time.ms 1) (fun () ->
      Engine.schedule e ~at:Time.zero (fun () ->
          check_int "clamped to now" (Time.to_ns (Time.ms 1)) (Time.to_ns (Engine.now e))));
  Engine.run e

(* {1 Processes} *)

let proc_sleep () =
  let e = Engine.create () in
  let woke = ref Time.zero in
  Proc.spawn e (fun () ->
      Proc.sleep (Time.us 100);
      woke := Proc.now ());
  Engine.run e;
  check_int "slept 100us" (Time.to_ns (Time.us 100)) (Time.to_ns !woke)

let proc_cancellation () =
  let e = Engine.create () in
  let ctx = Proc.Ctx.create () in
  let reached = ref false in
  Proc.spawn ~ctx e (fun () ->
      Proc.sleep (Time.ms 10);
      reached := true);
  Engine.schedule e ~at:(Time.ms 1) (fun () -> Proc.Ctx.cancel ctx);
  Engine.run e;
  check_bool "cancelled before wake" false !reached

let proc_cancel_before_start () =
  let e = Engine.create () in
  let ctx = Proc.Ctx.create () in
  Proc.Ctx.cancel ctx;
  let ran = ref false in
  Proc.spawn ~ctx e (fun () -> ran := true);
  Engine.run e;
  check_bool "never ran" false !ran

let ivar_basic () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Proc.spawn e (fun () -> got := Ivar.read iv);
  Proc.spawn e (fun () ->
      Proc.sleep (Time.us 50);
      Ivar.fill iv 42);
  Engine.run e;
  check_int "ivar value" 42 !got

let ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 5 do
    Proc.spawn e (fun () -> sum := !sum + Ivar.read iv)
  done;
  Engine.schedule e ~at:(Time.us 10) (fun () -> Ivar.fill iv 7);
  Engine.run e;
  check_int "all readers woke" 35 !sum

let ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "second fill rejected" (Invalid_argument "Ivar.fill: already full")
    (fun () -> Ivar.fill iv 2);
  Ivar.fill_if_empty iv 3;
  check_int "fill_if_empty keeps first" 1 (Option.get (Ivar.peek iv))

let ivar_on_fill () =
  let iv = Ivar.create () in
  let seen = ref [] in
  Ivar.on_fill iv (fun v -> seen := v :: !seen);
  Ivar.fill iv 9;
  Ivar.on_fill iv (fun v -> seen := (v * 10) :: !seen);
  Alcotest.(check (list int)) "callbacks" [ 90; 9 ] !seen

let mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Proc.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.schedule e ~at:(Time.us 1) (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run e;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !got)

(* {1 CPU} *)

let cpu_parallelism () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~threads:2 in
  let finish = ref [] in
  for _ = 1 to 4 do
    Proc.spawn e (fun () ->
        Cpu.exec cpu ~cost:(Time.us 10);
        finish := Time.to_us_float (Proc.now ()) :: !finish)
  done;
  Engine.run e;
  (* 4 jobs of 10us on 2 threads: two finish at 10us, two at 20us *)
  let sorted = List.sort compare !finish in
  Alcotest.(check (list (float 0.01))) "G/G/2 completion times" [ 10.; 10.; 20.; 20. ] sorted

let cpu_queue_delay () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~threads:1 in
  Proc.spawn e (fun () -> Cpu.exec cpu ~cost:(Time.us 100));
  Engine.run ~until:(Time.us 1) e;
  let d = Time.to_us_float (Cpu.queue_delay cpu) in
  Alcotest.(check (float 0.01)) "queue delay" 99. d

let cpu_busy_accounting () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~threads:4 in
  for _ = 1 to 10 do
    Cpu.exec_bg cpu ~cost:(Time.us 5) (fun () -> ())
  done;
  Engine.run e;
  check_int "busy total" (Time.to_ns (Time.us 50)) (Time.to_ns (Cpu.busy_total cpu))

(* {1 RNG} *)

let rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.int a 1000 = Rng.int b 1000)
  done

let rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1_000_000) in
  check_bool "split streams differ" true (xs <> ys)

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair (int_bound 1000) small_nat)
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let rng_float_unit =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Rng.float rng in
      f >= 0. && f < 1.)

(* {1 Stats} *)

let hist_percentiles () =
  let h = Stats.Hist.create () in
  for i = 1 to 1000 do
    Stats.Hist.record h i
  done;
  check_int "count" 1000 (Stats.Hist.count h);
  let p50 = Stats.Hist.percentile h 50. in
  check_bool "p50 near 500" true (p50 >= 480 && p50 <= 530);
  let p99 = Stats.Hist.percentile h 99. in
  check_bool "p99 near 990" true (p99 >= 960 && p99 <= 1030);
  check_int "max exact" 1000 (Stats.Hist.max_value h)

let hist_empty () =
  let h = Stats.Hist.create () in
  check_int "empty percentile" 0 (Stats.Hist.percentile h 99.);
  check_int "empty count" 0 (Stats.Hist.count h)

let hist_merge () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  Stats.Hist.record a 10;
  Stats.Hist.record b 1_000_000;
  Stats.Hist.merge ~into:a b;
  check_int "merged count" 2 (Stats.Hist.count a);
  check_bool "merged max" true (Stats.Hist.max_value a = 1_000_000)

let hist_accuracy =
  QCheck.Test.make ~name:"histogram percentile within 5%" ~count:100
    QCheck.(list_of_size (Gen.int_range 10 500) (int_range 1 1_000_000))
    (fun samples ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.record h) samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      let exact = sorted.((n * 9 / 10) - 1 + (if n * 9 mod 10 = 0 then 0 else 1)) in
      let approx = Stats.Hist.percentile h 90. in
      (* log-bucketed: allow 5% relative error plus small absolute slack *)
      abs (approx - exact) <= (exact / 20) + 2 || approx >= exact)

let series_binning () =
  let s = Stats.Series.create ~bin:(Time.ms 1) in
  Stats.Series.add s ~at:(Time.us 500) 1;
  Stats.Series.add s ~at:(Time.us 999) 2;
  Stats.Series.add s ~at:(Time.us 1001) 5;
  check_int "bin 0" 3 (Stats.Series.get s 0);
  check_int "bin 1" 5 (Stats.Series.get s 1);
  check_int "bin 2 empty" 0 (Stats.Series.get s 2)

let series_growth () =
  let s = Stats.Series.create ~bin:(Time.us 1) in
  Stats.Series.add s ~at:(Time.ms 100) 7;
  check_int "late bin" 7 (Stats.Series.get s 100_000)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "sim.heap",
      [ test "sorted pops" heap_sorted; test "fifo ties" heap_fifo_ties; qtest heap_qcheck ] );
    ( "sim.engine",
      [
        test "time ordering" engine_ordering;
        test "run until" engine_until;
        test "same-time fifo" engine_same_time_fifo;
        test "past clamped" engine_past_clamped;
      ] );
    ( "sim.proc",
      [
        test "sleep" proc_sleep;
        test "cancellation" proc_cancellation;
        test "cancel before start" proc_cancel_before_start;
      ] );
    ( "sim.ivar",
      [
        test "basic" ivar_basic;
        test "multiple readers" ivar_multiple_readers;
        test "double fill" ivar_double_fill;
        test "on_fill" ivar_on_fill;
      ] );
    ("sim.mailbox", [ test "fifo" mailbox_fifo ]);
    ( "sim.cpu",
      [
        test "G/G/k parallelism" cpu_parallelism;
        test "queue delay" cpu_queue_delay;
        test "busy accounting" cpu_busy_accounting;
      ] );
    ( "sim.rng",
      [
        test "deterministic" rng_deterministic;
        test "split independent" rng_split_independent;
        qtest rng_bounds;
        qtest rng_float_unit;
      ] );
    ( "sim.stats",
      [
        test "percentiles" hist_percentiles;
        test "empty" hist_empty;
        test "merge" hist_merge;
        qtest hist_accuracy;
        test "series binning" series_binning;
        test "series growth" series_growth;
      ] );
  ]
