open Farm_sim
open Farm_core
open Farm_workloads
open Test_util

let slow name fn = Alcotest.test_case name `Slow fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* TPC-C keeps its consistency conditions across a machine failure: the
   W_YTD/D_YTD equality and order density must hold after recovery. *)
let tpcc_consistent_across_failure () =
  let c = mk_cluster ~machines:6 ~seed:13 () in
  let scale = { Tpcc.warehouses = 3; districts = 3; customers = 8; items = 40 } in
  let t = Tpcc.create c ~scale () in
  Tpcc.load c t;
  let victim =
    (* a machine that holds data but is not the CM *)
    let bucket = t.Tpcc.warehouse.Farm_kv.Hashtable.buckets.(0) in
    Cluster.run_on c ~machine:1 (fun st ->
        match Txn.ensure_mapping st bucket.Addr.region ~retries:5 with
        | Some info when info.Wire.primary <> 0 -> info.Wire.primary
        | _ -> 1)
  in
  Engine.schedule c.Cluster.engine
    ~at:(Time.add (Cluster.now c) (Time.ms 25))
    (fun () -> Cluster.kill c victim);
  ignore (Driver.run c ~workers:3 ~duration:(Time.ms 120) ~op:(Tpcc.op t));
  Cluster.run_for c ~d:(Time.ms 100);
  check_bool "W_YTD = sum(D_YTD) after failure + recovery" true (Tpcc.check_ytd c t);
  check_bool "orders dense after failure + recovery" true (Tpcc.check_orders c t);
  check_bool "new orders committed" true (Stats.Counter.get t.Tpcc.new_orders > 50)

(* TATP under a power cycle: the database survives whole-cluster loss. *)
let tatp_across_power_cycle () =
  let c = mk_cluster ~machines:5 ~seed:6 () in
  let t = Tatp.create c ~subscribers:200 ~regions_per_table:1 in
  Tatp.load c t;
  ignore (Driver.run c ~workers:3 ~duration:(Time.ms 30) ~op:(Tatp.op t));
  Cluster.power_cycle c;
  Cluster.run_for c ~d:(Time.ms 120);
  (* every subscriber row is still there and the mix still runs *)
  let missing = ref 0 in
  Cluster.run_on c ~machine:1 (fun st ->
      for s = 1 to 200 do
        if Farm_kv.Hashtable.lookup_lockfree st t.Tatp.sub (Tatp.key8 s) = None then
          incr missing
      done);
  check_int "all subscribers survive the power cycle" 0 !missing;
  let stats = Driver.run c ~workers:3 ~duration:(Time.ms 20) ~op:(Tatp.op t) in
  check_bool "TATP live after power cycle" true (Stats.Counter.get stats.Driver.ops > 200)

(* Reconfiguration requires the coordination service: with the Zookeeper
   quorum down, a failure cannot evict anyone (the CAS is refused); when
   quorum returns, reconfiguration completes. *)
let reconfig_needs_zk_quorum () =
  let c = mk_cluster ~machines:5 ~seed:2 () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:9).(0) in
  Cluster.run_for c ~d:(Time.ms 5);
  (* take down the ZK quorum, then kill a machine *)
  Farm_coord.Zk.kill_replica c.Cluster.zk 0;
  Farm_coord.Zk.kill_replica c.Cluster.zk 1;
  Farm_coord.Zk.kill_replica c.Cluster.zk 2;
  let victim = surviving_machine c ~not_in:[ 0 ] in
  Cluster.kill c victim;
  Cluster.run_for c ~d:(Time.ms 100);
  check_int "no reconfiguration without ZK quorum" 1
    (Cluster.machine c 0).State.config.Config.id;
  (* quorum heals: the pending suspicion drives the change through *)
  Farm_coord.Zk.revive_replica c.Cluster.zk 0;
  Farm_coord.Zk.revive_replica c.Cluster.zk 1;
  Cluster.run_for c ~d:(Time.ms 200);
  check_int "reconfiguration completed after quorum returned" 2
    (Cluster.machine c 0).State.config.Config.id;
  check_bool "victim evicted" false
    (Config.is_member (Cluster.machine c 0).State.config victim);
  check_int "data intact" 9 (read_cell c ~machine:0 cell)

let suites =
  [
    ( "endtoend",
      [
        slow "tpcc consistent across failure" tpcc_consistent_across_failure;
        slow "tatp across power cycle" tatp_across_power_cycle;
        slow "reconfig needs zk quorum" reconfig_needs_zk_quorum;
      ] );
  ]
