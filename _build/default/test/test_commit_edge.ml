open Farm_sim
open Farm_core
open Test_util

let test name fn = Alcotest.test_case name `Quick fn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Validation switches to RPC above the tr threshold (4 reads per primary,
   §4 step 2); both paths must accept unchanged reads and reject changed
   ones. *)
let rpc_validation_threshold () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:5 in
  (* read 6 objects from one primary -> RPC validation; unchanged -> commit *)
  let ok =
    Cluster.run_on c ~machine:3 (fun st ->
        Api.run st ~thread:0 (fun tx ->
            Array.fold_left (fun acc a -> acc + read_int tx a) 0 cells))
  in
  check_bool "rpc-validated read-only commit" true (ok = Ok 40);
  (* now race a write between the reads and commit: must abort *)
  let st = Cluster.machine c 3 in
  let result = ref None in
  Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
      result :=
        Some
          (Api.run st ~thread:0 (fun tx ->
               let v = Array.fold_left (fun acc a -> acc + read_int tx a) 0 cells in
               Proc.sleep (Time.ms 2);
               v)));
  let w = Cluster.machine c 2 in
  Proc.spawn ~ctx:w.State.ctx c.Cluster.engine (fun () ->
      Proc.sleep (Time.us 500);
      match Api.run_retry w ~thread:0 (fun tx -> write_int tx cells.(0) 99) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  Cluster.run_for c ~d:(Time.ms 20);
  check_bool "rpc validation rejects changed read" true (!result = Some (Error Txn.Conflict))

(* Liveness with tiny logs: reservations force explicit truncation and
   commits keep flowing (§4). *)
let tiny_log_liveness () =
  let params = { quick_params with Params.log_size = 4096 } in
  let c = mk_cluster ~machines:4 ~params () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:4 ~init:0 in
  let committed = ref 0 in
  for m = 1 to 3 do
    let st = Cluster.machine c m in
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        for i = 1 to 120 do
          match
            Api.run_retry st ~thread:0 (fun tx ->
                let v = read_int tx cells.(i mod 4) in
                write_int tx cells.(i mod 4) (v + 1))
          with
          | Ok () -> incr committed
          | Error e -> Fmt.failwith "tiny log stalled: %a" Txn.pp_abort e
        done)
  done;
  let guard = ref 0 in
  while !committed < 360 && !guard < 2000 do
    incr guard;
    Cluster.run_for c ~d:(Time.ms 5)
  done;
  check_int "all transactions committed through a 4KB log" 360 !committed;
  check_int "sum correct" 360 (sum_cells c ~machine:0 cells)

(* Wide transactions: hundreds of written objects in one commit. *)
let wide_write_set () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let n = 200 in
  let cells = alloc_cells c ~region:r.Wire.rid ~n ~init:0 in
  Cluster.run_on c ~machine:2 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            Array.iteri (fun i a -> write_int tx a i) cells)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  check_int "first" 0 (read_cell c ~machine:1 cells.(0));
  check_int "last" (n - 1) (read_cell c ~machine:1 cells.(n - 1))

(* A transaction spanning several regions with distinct primaries uses the
   full multi-participant protocol. *)
let many_region_commit () =
  let c = mk_cluster ~machines:8 () in
  let regions = List.init 4 (fun _ -> Cluster.alloc_region_exn c) in
  let cells =
    List.map (fun (r : Wire.region_info) -> (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:1).(0)) regions
  in
  let primaries =
    List.sort_uniq compare (List.map (fun (r : Wire.region_info) -> r.Wire.primary) regions)
  in
  check_bool "multiple distinct primaries" true (List.length primaries >= 2);
  Cluster.run_on c ~machine:7 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            List.iter (fun a -> write_int tx a (read_int tx a * 10)) cells)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  List.iter (fun a -> check_int "all regions updated" 10 (read_cell c ~machine:0 a)) cells

(* Write-only transactions (no reads) fetch versions on demand. *)
let blind_write () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cell = (alloc_cells c ~region:r.Wire.rid ~n:1 ~init:7).(0) in
  Cluster.run_on c ~machine:1 (fun st ->
      match Api.run st ~thread:0 (fun tx -> write_int tx cell 8) with
      | Ok () -> ()
      | Error e -> Fmt.failwith "%a" Txn.pp_abort e);
  check_int "blind write applied" 8 (read_cell c ~machine:2 cell)

(* The empty transaction commits without any protocol traffic. *)
let empty_transaction () =
  let c = mk_cluster () in
  let before = Cluster.total_committed c in
  let res = Cluster.run_on c ~machine:1 (fun st -> Api.run st ~thread:0 (fun _ -> 42)) in
  check_bool "empty tx ok" true (res = Ok 42);
  check_int "counted" (before + 1) (Cluster.total_committed c)

(* Per-thread transaction ids stay unique and monotone under concurrency. *)
let txid_uniqueness () =
  let c = mk_cluster () in
  let r = Cluster.alloc_region_exn c in
  let cells = alloc_cells c ~region:r.Wire.rid ~n:8 ~init:0 in
  let st = Cluster.machine c 1 in
  let done_ = ref 0 in
  for w = 0 to 7 do
    Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
        for _ = 1 to 20 do
          (match
             Api.run_retry st ~thread:(w mod st.State.params.Params.threads_per_machine)
               (fun tx ->
                 let i = w in
                 let v = read_int tx cells.(i) in
                 write_int tx cells.(i) (v + 1))
           with
          | Ok () -> ()
          | Error _ -> ());
          Proc.sleep (Time.us 50)
        done;
        incr done_)
  done;
  let guard = ref 0 in
  while !done_ < 8 && !guard < 1000 do
    incr guard;
    Cluster.run_for c ~d:(Time.ms 5)
  done;
  check_int "all workers finished" 8 !done_;
  (* low bounds advanced: truncation tracking saw unique monotone ids *)
  Array.iter
    (fun (st' : State.t) ->
      Hashtbl.iter
        (fun _ (t : State.trunc_track) ->
          check_bool "low bound sane" true (t.State.low >= 0))
        st'.State.truncated)
    c.Cluster.machines

(* Allocation spill: when a region fills up, the allocator transparently
   allocates a co-located overflow region via the CM (§3). *)
let allocation_spills_to_new_region () =
  let params = { quick_params with Params.region_size = 1 lsl 16 (* 64 KB *) } in
  let c = mk_cluster ~machines:5 ~params () in
  let r = Cluster.alloc_region_exn c in
  let before =
    Cluster.run_on c ~machine:0 (fun st -> Hashtbl.length st.State.region_map)
  in
  (* allocate far more than one region holds: 64 KB / 4 KB slots = 16 per
     region at most *)
  let addrs =
    Cluster.run_on c ~machine:1 (fun st ->
        List.init 60 (fun i ->
            match
              Api.run_retry st ~thread:0 (fun tx ->
                  let a = Txn.alloc tx ~size:2048 ~region:r.Wire.rid () in
                  write_int tx a i;
                  a)
            with
            | Ok a -> a
            | Error e -> Fmt.failwith "spill alloc %d: %a" i Txn.pp_abort e))
  in
  let regions_used =
    List.sort_uniq compare (List.map (fun (a : Addr.t) -> a.Addr.region) addrs)
  in
  check_bool "spilled into overflow regions" true (List.length regions_used > 1);
  let after = Cluster.run_on c ~machine:0 (fun st -> Hashtbl.length st.State.region_map) in
  check_bool "CM allocated new regions" true (after > before);
  (* every object is intact *)
  List.iteri (fun i a -> check_int "spilled object" i (read_cell c ~machine:2 a)) addrs

let suites =
  [
    ( "commit.edge",
      [
        test "rpc validation threshold" rpc_validation_threshold;
        test "tiny log liveness" tiny_log_liveness;
        test "wide write set" wide_write_set;
        test "many-region commit" many_region_commit;
        test "blind write" blind_write;
        test "empty transaction" empty_transaction;
        test "txid uniqueness" txid_uniqueness;
        test "allocation spills to new region" allocation_spills_to_new_region;
      ] );
  ]
