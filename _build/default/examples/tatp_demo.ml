(* TATP demo: a scaled-down run of the paper's headline benchmark.

   Builds a FaRM cluster, loads a TATP database, runs the standard
   transaction mix from every machine, and prints throughput and latency
   percentiles — a miniature of Figure 7.

   Run with: dune exec examples/tatp_demo.exe *)

open Farm_sim
open Farm_core
open Farm_workloads

let () =
  let machines = 6 and subscribers = 4_000 in
  let cluster = Cluster.create ~machines () in
  Fmt.pr "building TATP database (%d subscribers on %d machines)...@." subscribers machines;
  let t = Tatp.create cluster ~subscribers ~regions_per_table:2 in
  Tatp.load cluster t;
  Fmt.pr "loaded at t=%a; running the standard mix...@." Time.pp (Cluster.now cluster);
  let stats =
    Driver.run cluster ~workers:8 ~warmup:(Time.ms 10) ~duration:(Time.ms 200)
      ~op:(Tatp.op t)
  in
  let duration = Time.ms 200 in
  Fmt.pr "@.TATP results:@.";
  Fmt.pr "  throughput      %.3f tx/us (%d tx in %a)@."
    (Driver.throughput_per_us stats ~duration)
    (Stats.Counter.get stats.Driver.ops)
    Time.pp duration;
  Fmt.pr "  failures        %d@." (Stats.Counter.get stats.Driver.failures);
  Fmt.pr "  median latency  %.1f us@."
    (float_of_int (Stats.Hist.percentile stats.Driver.latency 50.) /. 1e3);
  Fmt.pr "  99th latency     %.1f us@."
    (float_of_int (Stats.Hist.percentile stats.Driver.latency 99.) /. 1e3);
  Fmt.pr "  committed=%d aborted=%d@." (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster)
