(* Recovery demo: kill a machine under load and watch FaRM recover.

   Builds a 6-machine cluster with a bank workload, kills the primary of
   the accounts' region mid-run, and shows:
   - the recovery milestones (suspect -> probe -> zookeeper -> config
     commit -> all regions active -> data recovery),
   - that committed transactions survive the failure (money conserved),
   - the throughput timeline around the failure.

   Run with: dune exec examples/recovery_demo.exe *)

open Farm_sim
open Farm_core

let n_machines = 6
let n_accounts = 48
let initial_balance = 1_000
let kill_at = Time.ms 80
let run_until = Time.ms 400

let read_balance tx addr =
  Int64.to_int (Bytes.get_int64_le (Txn.read tx addr ~len:8) 0)

let write_balance tx addr v =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 (Int64.of_int v);
  Txn.write tx addr data

let () =
  let params = { Params.default with Params.lease_duration = Time.ms 5 } in
  let cluster = Cluster.create ~machines:n_machines ~params () in
  let region = Cluster.alloc_region_exn ~from:1 cluster in
  let victim = region.Wire.primary in
  Fmt.pr "region %d: primary m%d backups %a — will kill m%d at %a@." region.Wire.rid
    victim
    Fmt.(list ~sep:(any ",") int)
    region.Wire.backups victim Time.pp kill_at;

  let accounts =
    Cluster.run_on cluster ~machine:1 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              List.init n_accounts (fun _ ->
                  let addr = Txn.alloc tx ~size:8 ~region:region.Wire.rid () in
                  write_balance tx addr initial_balance;
                  addr))
        with
        | Ok addrs -> Array.of_list addrs
        | Error e -> Fmt.failwith "setup failed: %a" Txn.pp_abort e)
  in

  (* open-ended transfer workers on the machines that survive *)
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      if st.State.id <> victim then
        for w = 0 to 3 do
          Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
              let thread = w mod st.State.params.Params.threads_per_machine in
              while not !stop do
                let a = Rng.int st.State.rng n_accounts in
                let b = (a + 1 + Rng.int st.State.rng (n_accounts - 1)) mod n_accounts in
                (match
                   Api.run_retry ~attempts:8 st ~thread (fun tx ->
                       let va = read_balance tx accounts.(a) in
                       let vb = read_balance tx accounts.(b) in
                       if va > 0 then begin
                         write_balance tx accounts.(a) (va - 1);
                         write_balance tx accounts.(b) (vb + 1)
                       end)
                 with
                | Ok () | Error _ -> ());
                Proc.sleep (Time.us 200)
              done)
        done)
    cluster.Cluster.machines;

  (* schedule the kill *)
  Engine.schedule cluster.Cluster.engine ~at:kill_at (fun () -> Cluster.kill cluster victim);
  Cluster.run_until cluster ~at:run_until;
  stop := true;
  Cluster.run_for cluster ~d:(Time.ms 10);

  Fmt.pr "@.milestones:@.";
  List.iter
    (fun (tag, m, at) ->
      if tag <> "region-recovered" then Fmt.pr "  %-16s m%d  %a@." tag m Time.pp at)
    (Cluster.milestones cluster);

  (* audit from a surviving machine *)
  let total =
    Cluster.run_on cluster ~machine:(if victim = 1 then 2 else 1) (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.fold_left (fun acc a -> acc + read_balance tx a) 0 accounts)
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "audit failed: %a" Txn.pp_abort e)
  in
  Fmt.pr "@.audit after failure: total=%d expected=%d — %s@." total
    (n_accounts * initial_balance)
    (if total = n_accounts * initial_balance then "OK" else "MONEY NOT CONSERVED");

  (* throughput timeline around the failure *)
  let bins = Cluster.throughput_series cluster ~until:run_until in
  Fmt.pr "@.throughput (committed tx / ms):@.";
  let step = 10 in
  let i = ref 0 in
  while !i < Array.length bins - step do
    let s = ref 0 in
    for j = !i to !i + step - 1 do
      s := !s + bins.(j)
    done;
    Fmt.pr "  t=%3dms  %4d tx  %s@." !i (!s)
      (String.make (min 60 (!s / 4)) '#');
    i := !i + step
  done;
  Fmt.pr "committed=%d aborted=%d@." (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster);
  if total <> n_accounts * initial_balance then exit 1
