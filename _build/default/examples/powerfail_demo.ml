(* Power-failure demo: pull the plug on the whole cluster (§5).

   FaRM treats DRAM as non-volatile (distributed UPS, §2.1): even if every
   machine loses power at once, committed state survives in the regions and
   logs stored in NVRAM. This demo runs bank transfers, power-cycles the
   entire cluster mid-flight, and shows that the rebooted cluster conserves
   every committed transfer and keeps serving.

   Run with: dune exec examples/powerfail_demo.exe *)

open Farm_sim
open Farm_core

let n_machines = 5
let n_accounts = 32

let read_balance tx a = Int64.to_int (Bytes.get_int64_le (Txn.read tx a ~len:8) 0)

let write_balance tx a v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Txn.write tx a b

let () =
  let cluster = Cluster.create ~machines:n_machines () in
  let region = Cluster.alloc_region_exn cluster in
  let accounts =
    Cluster.run_on cluster ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              Array.init n_accounts (fun _ ->
                  let a = Txn.alloc tx ~size:8 ~region:region.Wire.rid () in
                  write_balance tx a 1000;
                  a))
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "setup: %a" Txn.pp_abort e)
  in
  Fmt.pr "%d accounts x 1000 on %d machines@." n_accounts n_machines;

  (* transfers on every machine, so the power failure catches transactions
     in every commit phase *)
  let stop = ref false in
  Array.iter
    (fun (st : State.t) ->
      for _ = 0 to 2 do
        Proc.spawn ~ctx:st.State.ctx cluster.Cluster.engine (fun () ->
            let rng = Rng.split st.State.rng in
            while not !stop do
              let a = Rng.int rng n_accounts in
              let b = (a + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
              (match
                 Api.run_retry ~attempts:4 st ~thread:0 (fun tx ->
                     let va = read_balance tx accounts.(a) in
                     let vb = read_balance tx accounts.(b) in
                     write_balance tx accounts.(a) (va - 7);
                     write_balance tx accounts.(b) (vb + 7))
               with
              | Ok () | Error _ -> ());
              Proc.sleep (Time.us 150)
            done)
      done)
    cluster.Cluster.machines;
  Cluster.run_for cluster ~d:(Time.ms 30);
  stop := true;
  Fmt.pr "committed so far: %d — pulling the plug on all %d machines...@."
    (Cluster.total_committed cluster) n_machines;

  Cluster.power_cycle cluster;
  Cluster.run_for cluster ~d:(Time.ms 150);
  Fmt.pr "rebooted from NVRAM; configuration %d@."
    (Cluster.machine cluster 0).State.config.Config.id;

  let total =
    Cluster.run_on cluster ~machine:1 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.fold_left (fun acc a -> acc + read_balance tx a) 0 accounts)
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "audit: %a" Txn.pp_abort e)
  in
  Fmt.pr "audit: total=%d expected=%d — %s@." total (n_accounts * 1000)
    (if total = n_accounts * 1000 then "every committed transfer survived"
     else "MONEY NOT CONSERVED");
  (* and the cluster keeps working *)
  Cluster.run_on cluster ~machine:2 (fun st ->
      match Api.run_retry st ~thread:0 (fun tx -> write_balance tx accounts.(0) 9999) with
      | Ok () -> Fmt.pr "post-restart transactions commit: OK@."
      | Error e -> Fmt.failwith "not live: %a" Txn.pp_abort e);
  if total <> n_accounts * 1000 then exit 1
