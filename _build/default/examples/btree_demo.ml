(* B-tree demo: the ordered index behind TPC-C's range queries (§6.2).

   Builds a FaRM B-tree with fence keys, fills it from several machines
   concurrently, runs range scans while inserts are still splitting nodes,
   and shows the lock-free lookup path with its cached internal nodes.

   Run with: dune exec examples/btree_demo.exe *)

open Farm_sim
open Farm_core
open Farm_kv

let () =
  let cluster = Cluster.create ~machines:5 () in
  let r1 = Cluster.alloc_region_exn cluster in
  let r2 = Cluster.alloc_region_exn cluster in
  let tree =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Btree.create st ~thread:0 ~regions:[| r1.Wire.rid; r2.Wire.rid |] ~fanout:8 ())
  in
  Fmt.pr "B-tree over regions %d and %d (fanout 8)@." r1.Wire.rid r2.Wire.rid;

  (* concurrent inserters on four machines, interleaved key ranges *)
  let n = 800 in
  let finished = ref 0 in
  for m = 1 to 4 do
    let st = Cluster.machine cluster m in
    Proc.spawn ~ctx:st.State.ctx cluster.Cluster.engine (fun () ->
        let k = ref (m - 1) in
        while !k < n do
          (match
             Api.run_retry st ~thread:0 (fun tx -> Btree.insert tx tree !k (!k * 10))
           with
          | Ok () -> k := !k + 4
          | Error _ -> ());
          Proc.sleep (Time.us 20)
        done;
        incr finished)
  done;
  let guard = ref 0 in
  while !finished < 4 && !guard < 2000 do
    incr guard;
    Cluster.run_for cluster ~d:(Time.ms 5)
  done;
  Fmt.pr "inserted %d keys from 4 machines concurrently@." n;

  (* a consistent range scan inside one transaction *)
  let slice =
    Cluster.run_on cluster ~machine:0 (fun st ->
        match Api.run_retry st ~thread:0 (fun tx -> Btree.range tx tree ~lo:100 ~hi:120) with
        | Ok l -> l
        | Error e -> Fmt.failwith "range: %a" Txn.pp_abort e)
  in
  Fmt.pr "range [100,120]: %a@."
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") int int))
    slice;
  assert (List.length slice = 21);
  assert (List.for_all (fun (k, v) -> v = k * 10) slice);

  (* lock-free point lookups: a single RDMA read once internal nodes are
     cached *)
  let st = Cluster.machine cluster 3 in
  let hits = ref 0 in
  Cluster.run_on cluster ~machine:3 (fun _ ->
      for k = 0 to n - 1 do
        match Btree.lookup_lockfree st tree k with
        | Some v when v = k * 10 -> incr hits
        | Some _ | None -> ()
      done);
  Fmt.pr "lock-free lookups: %d/%d correct@." !hits n;

  (* deletes leave the rest intact *)
  Cluster.run_on cluster ~machine:2 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            for k = 0 to 99 do
              ignore (Btree.delete tx tree k)
            done)
      with
      | Ok () -> ()
      | Error e -> Fmt.failwith "delete: %a" Txn.pp_abort e);
  let remaining =
    Cluster.run_on cluster ~machine:1 (fun st ->
        match Api.run_retry st ~thread:0 (fun tx -> Btree.range tx tree ~lo:0 ~hi:n) with
        | Ok l -> List.length l
        | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
  in
  Fmt.pr "after deleting keys 0-99: %d keys remain (expected %d)@." remaining (n - 100);
  if !hits <> n || remaining <> n - 100 then exit 1;
  Fmt.pr "OK@."
