(* Quickstart: a bank on FaRM.

   Builds a 4-machine FaRM cluster, allocates a region and a set of
   account objects, runs concurrent transfer transactions from every
   machine, and checks that money is conserved — the classic strict
   serializability smoke test.

   Run with: dune exec examples/quickstart.exe *)

open Farm_sim
open Farm_core

let n_machines = 4
let n_accounts = 64
let initial_balance = 1_000
let transfers_per_worker = 50
let workers_per_machine = 4

let read_balance tx addr =
  let data = Txn.read tx addr ~len:8 in
  Int64.to_int (Bytes.get_int64_le data 0)

let write_balance tx addr v =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 (Int64.of_int v);
  Txn.write tx addr data

let () =
  let cluster = Cluster.create ~machines:n_machines () in
  let region = Cluster.alloc_region_exn cluster in
  Fmt.pr "region %d: primary m%d, backups %a@."
    region.Wire.rid region.Wire.primary
    Fmt.(list ~sep:(any ",") int)
    region.Wire.backups;

  (* create the accounts in one transaction from machine 0 *)
  let accounts =
    Cluster.run_on cluster ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              List.init n_accounts (fun _ ->
                  let addr = Txn.alloc tx ~size:8 ~region:region.Wire.rid () in
                  write_balance tx addr initial_balance;
                  addr))
        with
        | Ok addrs -> addrs
        | Error e -> Fmt.failwith "setup failed: %a" Txn.pp_abort e)
  in
  Fmt.pr "created %d accounts with balance %d@." n_accounts initial_balance;

  (* run transfer workers on every machine *)
  let finished = ref 0 in
  let total_workers = n_machines * workers_per_machine in
  let accounts = Array.of_list accounts in
  for m = 0 to n_machines - 1 do
    let st = Cluster.machine cluster m in
    for w = 0 to workers_per_machine - 1 do
      Proc.spawn ~ctx:st.State.ctx (Cluster.machine cluster m).State.engine (fun () ->
          let thread = w mod st.State.params.Params.threads_per_machine in
          for _ = 1 to transfers_per_worker do
            let a = Rng.int st.State.rng n_accounts in
            let b = (a + 1 + Rng.int st.State.rng (n_accounts - 1)) mod n_accounts in
            let amount = 1 + Rng.int st.State.rng 10 in
            let result =
              Api.run_retry st ~thread (fun tx ->
                  let va = read_balance tx accounts.(a) in
                  let vb = read_balance tx accounts.(b) in
                  if va >= amount then begin
                    write_balance tx accounts.(a) (va - amount);
                    write_balance tx accounts.(b) (vb + amount)
                  end)
            in
            match result with
            | Ok () -> ()
            | Error e -> Fmt.epr "transfer failed: %a@." Txn.pp_abort e
          done;
          incr finished)
    done
  done;
  let guard = ref 0 in
  while !finished < total_workers && !guard < 100_000 do
    incr guard;
    Cluster.run_for cluster ~d:(Time.ms 10)
  done;
  Fmt.pr "workers done: %d/%d at t=%a@." !finished total_workers Time.pp
    (Cluster.now cluster);

  (* audit: total money must be conserved *)
  let total =
    Cluster.run_on cluster ~machine:1 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.fold_left (fun acc addr -> acc + read_balance tx addr) 0 accounts)
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "audit failed: %a" Txn.pp_abort e)
  in
  Fmt.pr "audit: total=%d expected=%d — %s@." total
    (n_accounts * initial_balance)
    (if total = n_accounts * initial_balance then "OK" else "MONEY NOT CONSERVED");
  Fmt.pr "committed=%d aborted=%d@." (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster);
  if total <> n_accounts * initial_balance then exit 1
