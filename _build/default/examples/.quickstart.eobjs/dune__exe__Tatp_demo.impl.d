examples/tatp_demo.ml: Cluster Driver Farm_core Farm_sim Farm_workloads Fmt Stats Tatp Time
