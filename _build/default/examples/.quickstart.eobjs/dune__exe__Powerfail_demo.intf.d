examples/powerfail_demo.mli:
