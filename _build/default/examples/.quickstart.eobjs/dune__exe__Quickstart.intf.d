examples/quickstart.mli:
