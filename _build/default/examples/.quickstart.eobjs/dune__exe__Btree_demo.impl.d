examples/btree_demo.ml: Api Btree Cluster Farm_core Farm_kv Farm_sim Fmt List Proc State Time Txn Wire
