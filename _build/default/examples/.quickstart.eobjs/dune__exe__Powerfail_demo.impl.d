examples/powerfail_demo.ml: Api Array Bytes Cluster Config Farm_core Farm_sim Fmt Int64 Proc Rng State Time Txn Wire
