examples/recovery_demo.ml: Api Array Bytes Cluster Engine Farm_core Farm_sim Fmt Int64 List Params Proc Rng State String Time Txn Wire
