examples/quickstart.ml: Api Array Bytes Cluster Farm_core Farm_sim Fmt Int64 List Params Proc Rng State Time Txn Wire
