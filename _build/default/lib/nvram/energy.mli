(** Energy/cost model of the distributed UPS (§2.1, Figure 1).

    Reproduces the paper's measurement that saving DRAM to one SSD costs
    ~110 J/GB (≈90 J of which is CPU-socket power during the save) and that
    additional SSDs reduce the energy, and its conclusion that total
    non-volatility cost stays under 15% of the base DRAM cost. *)

type t = {
  cpu_power_w : float;
  ssd_bandwidth_gbps : float;
  fixed_j_per_gb : float;
}

val default : t

val save_seconds_per_gb : t -> ssds:int -> float
val joules_per_gb : t -> ssds:int -> float

val dollars_per_joule : float
val ssd_reserve_per_gb : float
val dram_per_gb : float

val energy_cost_per_gb : t -> ssds:int -> float
val total_nonvolatility_cost_per_gb : t -> ssds:int -> float

val overhead_fraction : t -> ssds:int -> float
(** Non-volatility cost as a fraction of DRAM cost; < 0.15 per the paper. *)
