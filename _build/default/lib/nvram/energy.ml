(* Distributed-UPS energy and cost model of paper §2.1 and Figure 1.

   Measured data point from the paper: saving 1 GB to a single M.2 SSD
   consumes ~110 J, of which ~90 J powers the two CPU sockets for the
   duration of the save. Extra SSDs shorten the save and hence the CPU-time
   energy; the non-CPU component (SSD program energy, DRAM refresh) is
   per-byte and constant. *)

type t = {
  cpu_power_w : float;  (* both sockets during the save *)
  ssd_bandwidth_gbps : float;  (* sequential write bandwidth per SSD *)
  fixed_j_per_gb : float;  (* SSD program + DRAM energy per GB *)
}

let default = { cpu_power_w = 90.0; ssd_bandwidth_gbps = 1.0; fixed_j_per_gb = 20.0 }

let save_seconds_per_gb t ~ssds =
  if ssds <= 0 then invalid_arg "Energy.save_seconds_per_gb";
  1.0 /. (t.ssd_bandwidth_gbps *. float_of_int ssds)

let joules_per_gb t ~ssds =
  (t.cpu_power_w *. save_seconds_per_gb t ~ssds) +. t.fixed_j_per_gb

(* Cost model (§2.1): LES batteries at < $0.005 per Joule; SSD capacity
   reservation at $0.90/GB; DRAM at $12/GB. *)

let dollars_per_joule = 0.005
let ssd_reserve_per_gb = 0.90
let dram_per_gb = 12.0

let energy_cost_per_gb t ~ssds = joules_per_gb t ~ssds *. dollars_per_joule

let total_nonvolatility_cost_per_gb t ~ssds =
  energy_cost_per_gb t ~ssds +. ssd_reserve_per_gb

let overhead_fraction t ~ssds = total_nonvolatility_cost_per_gb t ~ssds /. dram_per_gb
