type t = {
  machine : int;
  mutable regions : (int, Bytes.t) Hashtbl.t;
  mutable wiped : bool;
}

let create ~machine = { machine; regions = Hashtbl.create 16; wiped = false }

let machine t = t.machine

let alloc t ~key ~size =
  if Hashtbl.mem t.regions key then
    invalid_arg (Printf.sprintf "Bank.alloc: region %d already present" key);
  let b = Bytes.make size '\000' in
  Hashtbl.replace t.regions key b;
  b

let find t ~key = Hashtbl.find_opt t.regions key

let remove t ~key = Hashtbl.remove t.regions key

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.regions [] |> List.sort compare

let total_bytes t = Hashtbl.fold (fun _ b acc -> acc + Bytes.length b) t.regions 0

let wipe t =
  Hashtbl.reset t.regions;
  t.wiped <- true

let is_wiped t = t.wiped
