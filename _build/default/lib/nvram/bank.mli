(** A machine's non-volatile DRAM.

    Banks are owned by the cluster harness, not by the machine's process
    context: killing a machine's FaRM process leaves its bank intact, which
    is exactly the guarantee the distributed-UPS design of §2.1 provides.
    {!wipe} models losing the NVRAM contents too (battery failure), used by
    the f-failure durability tests. *)

type t

val create : machine:int -> t
val machine : t -> int

val alloc : t -> key:int -> size:int -> Bytes.t
(** Allocate a zeroed buffer for region [key]. Raises if present. *)

val find : t -> key:int -> Bytes.t option
val remove : t -> key:int -> unit
val keys : t -> int list
val total_bytes : t -> int

val wipe : t -> unit
(** Lose all contents (power failure without a successful SSD save). *)

val is_wiped : t -> bool
