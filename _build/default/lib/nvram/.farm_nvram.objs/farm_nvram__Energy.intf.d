lib/nvram/energy.mli:
