lib/nvram/bank.mli: Bytes
