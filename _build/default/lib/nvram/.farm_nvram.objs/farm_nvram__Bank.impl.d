lib/nvram/bank.ml: Bytes Hashtbl List Printf
