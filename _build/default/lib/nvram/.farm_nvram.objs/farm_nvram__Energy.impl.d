lib/nvram/energy.ml:
