open Farm_sim
open Farm_core

(** Closed-loop load generation and measurement (the methodology of §6.3:
    each machine both stores data and runs benchmark workers; load varies
    with the number of workers per machine). *)

type worker_ctx = {
  st : State.t;
  thread : int;  (** coordinator thread id for this worker *)
  rng : Rng.t;
  worker : int;
}

type stats = {
  ops : Stats.Counter.t;  (** successful operations *)
  failures : Stats.Counter.t;
  latency : Stats.Hist.t;  (** successful-op latency, ns *)
  series : Stats.Series.t;  (** successful ops per 1 ms bin *)
}

val create_stats : unit -> stats

val run :
  ?machines:int list ->
  ?warmup:Time.t ->
  ?stats:stats ->
  Cluster.t ->
  workers:int ->
  duration:Time.t ->
  op:(worker_ctx -> bool) ->
  stats
(** Run [op] in a closed loop on [workers] workers per machine for
    [duration] after [warmup]; [op] returns whether the operation
    succeeded. Drives the engine; returns aggregate statistics. *)

val throughput_per_us : stats -> duration:Time.t -> float

val recovery_time : stats -> failure_at:Time.t -> fraction:float -> Time.t option
(** Time from the failure until aggregate throughput regains [fraction] of
    its pre-failure 30 ms average (the Figure 12 methodology). *)
