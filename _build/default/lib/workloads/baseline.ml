open Farm_core

(* Single-machine baseline (the Hekaton/Silo comparison of §6.3).

   The paper's claims against single-machine in-memory engines are scaling
   claims: FaRM with 3 machines already beats them. Under our simulator's
   cost model the fairest stand-in is FaRM itself confined to one machine
   with replication 1 — no network, no replication, local commits — which
   over-approximates a single-machine engine's throughput per core. The
   scaling benchmark compares an n-machine FaRM cluster against this
   baseline under the identical workload. *)

let params ?(base = Params.default) () =
  { base with Params.replication = 1 }

let cluster ?seed ?base () =
  Cluster.create ?seed ~params:(params ?base ()) ~machines:1 ()
