open Farm_sim
open Farm_core
open Farm_kv

(** TPC-C (§6.2): five transactions over a 16-index schema — twelve
    unordered indexes as FaRM hash tables and four ordered indexes as FaRM
    B-trees — hash tables and clients co-partitioned by warehouse (~90% of
    transactions stay local; recovery parallelism drops accordingly,
    Figure 10). Scale is configurable; mix ratios keep their spec values
    (45% new-order, 43% payment, 4% each of the rest; 1% remote items, 15%
    remote payments, 1% intentional new-order rollbacks). *)

type scale = {
  warehouses : int;
  districts : int;  (** per warehouse (spec: 10) *)
  customers : int;  (** per district (spec: 3000) *)
  items : int;  (** global (spec: 100k) *)
}

val default_scale : scale

type t = {
  scale : scale;
  groups : int;
  warehouse : Hashtable.t;
  district : Hashtable.t;
  customer : Hashtable.t;
  item : Hashtable.t;
  stock : Hashtable.t;
  order : Hashtable.t;
  new_order : Hashtable.t;
  order_line : Hashtable.t;
  history : Hashtable.t;
  last_order : Hashtable.t;
  order_tree : Btree.t array;  (** ordered indexes, per co-partition group *)
  no_tree : Btree.t array;
  ol_tree : Btree.t array;
  cust_name_tree : Btree.t array;
  new_orders : Stats.Counter.t;  (** the reported metric of Figures 8/10 *)
  no_latency : Stats.Hist.t;
  no_series : Stats.Series.t;
  mutable history_seq : int;
}

val create : Cluster.t -> scale:scale -> ?regions_per_group:int -> unit -> t
val load : Cluster.t -> t -> unit

(** {1 The five transactions} — [w] is the client's home warehouse. *)

val new_order : t -> Driver.worker_ctx -> w:int -> bool
val payment : t -> Driver.worker_ctx -> w:int -> bool
val order_status : t -> Driver.worker_ctx -> w:int -> bool
val delivery : t -> Driver.worker_ctx -> w:int -> bool
val stock_level : t -> Driver.worker_ctx -> w:int -> bool

val home_warehouse : t -> Driver.worker_ctx -> int
(** Client co-partitioning: a warehouse whose home region's primary is this
    machine. *)

val op : t -> Driver.worker_ctx -> bool
(** One operation of the standard mix. *)

(** {1 Consistency checks (TPC-C consistency conditions)} *)

val check_ytd : Cluster.t -> t -> bool
(** W_YTD = sum of the warehouse's D_YTD. *)

val check_orders : Cluster.t -> t -> bool
(** Orders are dense per district up to d_next_o_id. *)
