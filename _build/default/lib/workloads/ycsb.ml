open Farm_sim
open Farm_core
open Farm_kv

(* YCSB — the key-value benchmark the original FaRM paper [16] evaluated
   and that this paper's §6.3 read-performance experiment derives from.
   Implemented over the FaRM hash table with the standard core workloads:

     A  update heavy   50% read / 50% update
     B  read mostly    95% read /  5% update
     C  read only     100% read
     D  read latest    95% read /  5% insert, reads skewed to recent keys
     F  read-modify-write  50% read / 50% RMW

   (E, scan-heavy, runs over the FaRM B-tree.) Reads use the lock-free
   path; updates/RMWs run transactions. Key popularity follows a zipfian
   approximation as in the YCSB reference implementation. *)

type profile = A | B | C | D | E | F

let profile_name = function
  | A -> "A (update heavy)"
  | B -> "B (read mostly)"
  | C -> "C (read only)"
  | D -> "D (read latest)"
  | E -> "E (short scans)"
  | F -> "F (read-modify-write)"

type t = {
  table : Hashtable.t;
  tree : Btree.t;  (* ordered view for workload E *)
  mutable keys : int;  (* current key count (D inserts grow it) *)
  vsize : int;
}

let key16 v =
  let b = Bytes.make 16 '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let create cluster ~keys ~regions =
  let rids = Array.init regions (fun _ -> (Cluster.alloc_region_exn cluster).Wire.rid) in
  let table =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Hashtable.create st ~thread:0 ~regions:rids ~buckets:(max 64 (keys / 4))
          ~ksize:16 ~vsize:32 ())
  in
  let tree =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Btree.create st ~thread:0 ~regions:rids ())
  in
  { table; tree; keys; vsize = 32 }

let load cluster t =
  let i = ref 0 in
  while !i < t.keys do
    let lo = !i and hi = min t.keys (!i + 50) in
    Cluster.run_on cluster ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              for k = lo to hi - 1 do
                Hashtable.insert tx t.table (key16 k) (Bytes.make t.vsize 'v');
                Btree.insert tx t.tree k k
              done)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "Ycsb.load: %a" Txn.pp_abort e);
    i := hi
  done

(* Zipfian-ish popularity: repeated halving picks hot keys exponentially
   more often (the standard cheap approximation). *)
let zipf rng n =
  let rec go span =
    if span <= 1 then 0
    else if Rng.int rng 100 < 40 then Rng.int rng (max 1 (span / 8))
    else go (span / 8) + Rng.int rng (max 1 (span - (span / 8)))
  in
  min (n - 1) (go n)

let read_op st t k = Hashtable.lookup_lockfree st t.table (key16 k) <> None

let update_op (ctx : Driver.worker_ctx) t k =
  match
    Api.run_retry ~attempts:8 ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
        Hashtable.insert tx t.table (key16 k) (Bytes.make t.vsize 'u'))
  with
  | Ok () -> true
  | Error _ -> false

let rmw_op (ctx : Driver.worker_ctx) t k =
  match
    Api.run_retry ~attempts:8 ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
        match Hashtable.lookup tx t.table (key16 k) with
        | Some v ->
            let v = Bytes.copy v in
            Bytes.set v 0 (Char.chr ((Char.code (Bytes.get v 0) + 1) land 0xff));
            Hashtable.insert tx t.table (key16 k) v
        | None -> Hashtable.insert tx t.table (key16 k) (Bytes.make t.vsize 'r'))
  with
  | Ok () -> true
  | Error _ -> false

let insert_op (ctx : Driver.worker_ctx) t =
  let k = t.keys in
  t.keys <- t.keys + 1;
  match
    Api.run_retry ~attempts:8 ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
        Hashtable.insert tx t.table (key16 k) (Bytes.make t.vsize 'i');
        Btree.insert tx t.tree k k)
  with
  | Ok () -> true
  | Error _ -> false

let scan_op (ctx : Driver.worker_ctx) t k =
  match
    Api.run ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
        Btree.range tx t.tree ~lo:k ~hi:(k + 20))
  with
  | Ok _ -> true
  | Error _ -> false

let op profile t (ctx : Driver.worker_ctx) =
  let st = ctx.Driver.st and rng = ctx.Driver.rng in
  let roll = Rng.int rng 100 in
  match profile with
  | A -> if roll < 50 then read_op st t (zipf rng t.keys) else update_op ctx t (zipf rng t.keys)
  | B -> if roll < 95 then read_op st t (zipf rng t.keys) else update_op ctx t (zipf rng t.keys)
  | C -> read_op st t (zipf rng t.keys)
  | D ->
      if roll < 95 then
        (* read latest: skew toward the most recently inserted keys *)
        read_op st t (t.keys - 1 - zipf rng (min t.keys 64))
      else insert_op ctx t
  | E -> if roll < 95 then scan_op ctx t (zipf rng (max 1 (t.keys - 21))) else insert_op ctx t
  | F -> if roll < 50 then read_op st t (zipf rng t.keys) else rmw_op ctx t (zipf rng t.keys)
