open Farm_core

(** Single-machine baseline for the §6.3 Hekaton/Silo comparisons: FaRM
    confined to one machine with replication 1 (no network, no
    replication), an over-approximation of a single-machine in-memory
    engine under the same cost model. *)

val params : ?base:Params.t -> unit -> Params.t
val cluster : ?seed:int -> ?base:Params.t -> unit -> Cluster.t
