open Farm_sim
open Farm_core

(* Closed-loop load generation and measurement for the evaluation figures.

   Each machine both stores data and runs benchmark workers (FaRM's
   symmetric model, §6.2). A worker is a green process pinned to a
   coordinator thread id; load is varied by the number of workers per
   machine, exactly like the paper varies threads x concurrency. *)

type worker_ctx = {
  st : State.t;
  thread : int;
  rng : Rng.t;
  worker : int;
}

type stats = {
  ops : Stats.Counter.t;
  failures : Stats.Counter.t;
  latency : Stats.Hist.t;  (* successful-op latency, ns *)
  series : Stats.Series.t;  (* successful ops per 1 ms bin (all time) *)
}

let create_stats () =
  {
    ops = Stats.Counter.create ();
    failures = Stats.Counter.create ();
    latency = Stats.Hist.create ();
    series = Stats.Series.create ~bin:(Time.ms 1);
  }

(* Run [op] in a closed loop on [workers] workers per machine for
   [duration] (after [warmup], during which nothing is recorded). [op]
   returns whether the operation succeeded. Returns aggregate stats. *)
let run ?machines ?(warmup = Time.zero) ?stats cluster ~workers ~duration ~op =
  let stats = match stats with Some s -> s | None -> create_stats () in
  let stop = ref false in
  let engine = cluster.Cluster.engine in
  let measure_from = Time.add (Engine.now engine) warmup in
  let targets =
    match machines with
    | Some l -> l
    | None -> List.init (Cluster.n_machines cluster) Fun.id
  in
  List.iter
    (fun m ->
      let st = Cluster.machine cluster m in
      for w = 0 to workers - 1 do
        let ctx =
          {
            st;
            thread = w mod st.State.params.Params.threads_per_machine;
            rng = Rng.split st.State.rng;
            worker = w;
          }
        in
        Proc.spawn ~ctx:st.State.ctx engine (fun () ->
            while not !stop do
              Proc.check_cancelled ();
              let t0 = Proc.now () in
              let ok = op ctx in
              let t1 = Proc.now () in
              if Time.( >= ) t1 measure_from then begin
                if ok then begin
                  Stats.Counter.incr stats.ops;
                  Stats.Hist.record stats.latency (Time.to_ns (Time.sub t1 t0));
                  Stats.Series.add stats.series ~at:t1 1
                end
                else Stats.Counter.incr stats.failures
              end;
              (* stay cooperative even if the op completed locally *)
              if Time.( <= ) (Time.sub t1 t0) Time.zero then Proc.sleep (Time.us 1)
            done)
      done)
    targets;
  Engine.run ~until:(Time.add measure_from duration) engine;
  stop := true;
  Engine.run ~until:(Time.add (Engine.now engine) (Time.ms 2)) engine;
  stats

(* Derived measurements *)

let throughput_per_us stats ~duration =
  float_of_int (Stats.Counter.get stats.ops) /. Time.to_us_float duration

(* Time from the failure until aggregate throughput is back to [fraction]
   of its pre-failure average, computed over 1 ms bins (§6.4, Figure 12
   methodology). *)
let recovery_time stats ~failure_at ~fraction =
  let bin = Time.to_ns (Stats.Series.bin stats.series) in
  let fail_bin = Time.to_ns failure_at / bin in
  let pre_from = max 0 (fail_bin - 30) in
  let pre_bins = max 1 (fail_bin - pre_from) in
  let pre_total = ref 0 in
  for i = pre_from to fail_bin - 1 do
    pre_total := !pre_total + Stats.Series.get stats.series i
  done;
  let target =
    int_of_float (fraction *. float_of_int !pre_total /. float_of_int pre_bins)
  in
  let rec find i limit =
    if i > limit then None
    else if Stats.Series.get stats.series i >= target then
      Some (Time.ns ((i * bin) - Time.to_ns failure_at))
    else find (i + 1) limit
  in
  find (fail_bin + 1) (fail_bin + 100_000)
