open Farm_sim
open Farm_core
open Farm_kv

(** TATP — Telecommunication Application Transaction Processing (§6.2/6.3):
    four hash-table-backed tables and the standard seven-transaction mix
    (70% single-row lock-free lookups, 10% multi-row validated reads, 20%
    updates, with UPDATE_LOCATION function-shipped to the row's primary). *)

type t = {
  subscribers : int;
  sub : Hashtable.t;
  access : Hashtable.t;
  special : Hashtable.t;
  callfwd : Hashtable.t;
}

val key8 : int -> Bytes.t
val update_location_tag : int

val create : Cluster.t -> subscribers:int -> regions_per_table:int -> t
(** Allocate regions and tables and register the function-shipping handler
    on every machine. *)

val load : Cluster.t -> t -> unit
(** Populate per the TATP population rules (1-4 access/special rows per
    subscriber, half the special facilities with a call-forwarding row). *)

val random_sid : t -> Rng.t -> int
(** TATP's non-uniform (OR-based) subscriber-id generator — the skew behind
    the paper's throughput dips. *)

(** {1 The seven transactions} — each returns whether the transaction
    completed (application-level misses still count as completed). *)

val get_subscriber_data : State.t -> t -> Rng.t -> bool
val get_access_data : State.t -> t -> Rng.t -> bool
val get_new_destination : State.t -> thread:int -> t -> Rng.t -> bool
val update_subscriber_data : State.t -> thread:int -> t -> Rng.t -> bool
val update_location : State.t -> thread:int -> t -> Rng.t -> bool
val insert_call_forwarding : State.t -> thread:int -> t -> Rng.t -> bool
val delete_call_forwarding : State.t -> thread:int -> t -> Rng.t -> bool

val do_update_location :
  State.t -> t -> thread:int -> s:int -> vlr:int -> (unit, Txn.abort_reason) result
(** The locally-executed UPDATE_LOCATION body (the function-shipping
    target). *)

val install : State.t -> t -> unit

val op : t -> Driver.worker_ctx -> bool
(** One operation of the standard mix. *)
