open Farm_core
open Farm_kv

(** YCSB — the key-value benchmark family the original FaRM paper [16]
    evaluated; this paper's §6.3 read-performance experiment is its
    read-only point. Core workloads A (update heavy), B (read mostly),
    C (read only), D (read latest, with inserts), E (short B-tree scans),
    F (read-modify-write); reads ride the lock-free path. *)

type profile = A | B | C | D | E | F

val profile_name : profile -> string

type t = {
  table : Hashtable.t;
  tree : Btree.t;
  mutable keys : int;
  vsize : int;
}

val create : Cluster.t -> keys:int -> regions:int -> t
val load : Cluster.t -> t -> unit

val zipf : Farm_sim.Rng.t -> int -> int
(** Zipfian-approximate key popularity (repeated-halving hot-spot). *)

val op : profile -> t -> Driver.worker_ctx -> bool
