lib/workloads/tatp.mli: Bytes Cluster Driver Farm_core Farm_kv Farm_sim Hashtable Rng State Txn
