lib/workloads/kvlookup.mli: Cluster Driver Farm_core Farm_kv Hashtable
