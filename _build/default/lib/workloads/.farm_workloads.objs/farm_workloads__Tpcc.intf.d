lib/workloads/tpcc.mli: Btree Cluster Driver Farm_core Farm_kv Farm_sim Hashtable Stats
