lib/workloads/baseline.ml: Cluster Farm_core Params
