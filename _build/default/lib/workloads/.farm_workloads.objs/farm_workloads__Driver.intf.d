lib/workloads/driver.mli: Cluster Farm_core Farm_sim Rng State Stats Time
