lib/workloads/ycsb.ml: Api Array Btree Bytes Char Cluster Driver Farm_core Farm_kv Farm_sim Fmt Hashtable Int64 Rng Txn Wire
