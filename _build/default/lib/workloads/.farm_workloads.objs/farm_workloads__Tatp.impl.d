lib/workloads/tatp.ml: Addr Api Array Bytes Char Cluster Comms Driver Farm_core Farm_kv Farm_sim Fmt Hashtable Int64 Rng State Time Txn Wire
