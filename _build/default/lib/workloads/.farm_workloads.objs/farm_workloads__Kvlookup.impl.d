lib/workloads/kvlookup.ml: Api Array Bytes Cluster Driver Farm_core Farm_kv Farm_sim Fmt Hashtable Int64 Rng Txn Wire
