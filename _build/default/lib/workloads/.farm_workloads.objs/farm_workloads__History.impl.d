lib/workloads/history.ml: Addr Array Farm_core Fmt Hashtbl List Txn
