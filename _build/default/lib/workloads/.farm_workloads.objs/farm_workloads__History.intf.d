lib/workloads/history.mli: Addr Farm_core Format Txn
