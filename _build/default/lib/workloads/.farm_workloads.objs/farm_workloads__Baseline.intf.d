lib/workloads/baseline.mli: Cluster Farm_core Params
