lib/workloads/driver.ml: Cluster Engine Farm_core Farm_sim Fun List Params Proc Rng State Stats Time
