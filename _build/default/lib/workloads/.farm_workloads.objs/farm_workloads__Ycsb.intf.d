lib/workloads/ycsb.mli: Btree Cluster Driver Farm_core Farm_kv Farm_sim Hashtable
