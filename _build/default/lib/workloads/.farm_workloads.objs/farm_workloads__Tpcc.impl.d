lib/workloads/tpcc.ml: Addr Api Array Btree Bytes Cluster Driver Farm_core Farm_kv Farm_sim Fmt Hashtable Hashtbl Int64 List Proc Rng State Stats Time Txn Wire
