open Farm_sim
open Farm_core
open Farm_kv

(* TPC-C (§6.2): the full five-transaction mix over a 16-index schema —
   twelve unordered indexes as FaRM hash tables plus four ordered indexes
   as FaRM B-trees (orders, new-orders, order-lines, customers-by-name),
   with hash tables and clients co-partitioned by warehouse, which keeps
   ~90% of transactions local (and, as Figure 10 shows, reduces data
   recovery parallelism after a failure).

   The scale is configurable and defaults well below the paper's 21,600
   warehouses; ratios (10 districts/warehouse, 1% remote items, 15% remote
   payments, 45% new-order share) keep their spec values.

   Integer key encodings:
     warehouse   w
     district    w*10 + d
     customer    dkey*100000 + c
     stock       w*1000000 + i
     order       dkey*10000000 + o                (also the order B-tree key)
     order line  okey*16 + ol                     (also the OL B-tree key)
     cust-name   dkey*(2^24) + name_bucket*(2^14) + c                     *)

type scale = {
  warehouses : int;
  districts : int;
  customers : int;  (* per district *)
  items : int;
}

let default_scale = { warehouses = 4; districts = 10; customers = 40; items = 200 }

type t = {
  scale : scale;
  groups : int;  (* co-partition groups (one region set each) *)
  (* hash indexes *)
  warehouse : Hashtable.t;
  district : Hashtable.t;
  customer : Hashtable.t;
  item : Hashtable.t;
  stock : Hashtable.t;
  order : Hashtable.t;
  new_order : Hashtable.t;
  order_line : Hashtable.t;
  history : Hashtable.t;
  last_order : Hashtable.t;  (* customer -> latest o_id *)
  (* ordered indexes, per co-partition group *)
  order_tree : Btree.t array;
  no_tree : Btree.t array;
  ol_tree : Btree.t array;
  cust_name_tree : Btree.t array;
  (* measurement: successful "new order" transactions *)
  new_orders : Stats.Counter.t;
  no_latency : Stats.Hist.t;
  no_series : Stats.Series.t;
  mutable history_seq : int;
}

let dkey t ~w ~d = (w * t.scale.districts) + d
let ckey t ~w ~d ~c = (dkey t ~w ~d * 100_000) + c
let skey ~w ~i = (w * 1_000_000) + i
let okey t ~w ~d ~o = (dkey t ~w ~d * 10_000_000) + o
let olkey ~okey ~ol = (okey * 16) + ol
let namekey t ~w ~d ~bucket ~c = (dkey t ~w ~d * (1 lsl 24)) + (bucket lsl 14) + c

let key8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let group_of t w = w mod t.groups

(* {1 Record codecs} *)

let get_i b off = Int64.to_int (Bytes.get_int64_le b off)
let set_i b off v = Bytes.set_int64_le b off (Int64.of_int v)

let mk_record n fields =
  let b = Bytes.make n '\000' in
  List.iteri (fun i v -> set_i b (i * 8) v) fields;
  b

(* {1 Creation and population} *)

let create cluster ~scale ?(regions_per_group = 2) () =
  let n_machines = Cluster.n_machines cluster in
  let groups = min scale.warehouses n_machines in
  (* one co-located region set per group *)
  let group_regions =
    Array.init groups (fun _ ->
        let first = Cluster.alloc_region_exn cluster in
        let rest =
          List.init (regions_per_group - 1) (fun _ ->
              (Cluster.alloc_region_exn ~locality:first.Wire.rid cluster).Wire.rid)
        in
        Array.of_list (first.Wire.rid :: rest))
  in
  let flat = Array.init groups (fun g -> group_regions.(g).(0)) in
  let part_w extract key = extract (get_i key 0) mod groups in
  let d_of t = t / scale.districts in
  ignore d_of;
  let st0 = Cluster.machine cluster 0 in
  ignore st0;
  let mk ~rows ~vsize ~extract =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Hashtable.create st ~thread:0 ~regions:flat
          ~buckets:(max (4 * groups) (rows / 3))
          ~ksize:8 ~vsize ~partitions:groups ~partition_of:(part_w extract) ())
  in
  let w_of_w w = w in
  let w_of_d dk = dk / scale.districts in
  let w_of_c ck = w_of_d (ck / 100_000) in
  let w_of_s sk = sk / 1_000_000 in
  let w_of_o ok = w_of_d (ok / 10_000_000) in
  let w_of_ol olk = w_of_o (olk / 16) in
  let n_w = scale.warehouses in
  let n_d = n_w * scale.districts in
  let n_c = n_d * scale.customers in
  let warehouse = mk ~rows:n_w ~vsize:16 ~extract:w_of_w in
  let district = mk ~rows:n_d ~vsize:24 ~extract:w_of_d in
  let customer = mk ~rows:n_c ~vsize:48 ~extract:w_of_c in
  let item = mk ~rows:scale.items ~vsize:16 ~extract:(fun _ -> 0) in
  let stock = mk ~rows:(n_w * scale.items) ~vsize:24 ~extract:w_of_s in
  let order = mk ~rows:(n_c * 3) ~vsize:24 ~extract:w_of_o in
  let new_order = mk ~rows:n_c ~vsize:8 ~extract:w_of_o in
  let order_line = mk ~rows:(n_c * 12) ~vsize:32 ~extract:w_of_ol in
  let history = mk ~rows:(n_c * 2) ~vsize:24 ~extract:(fun _ -> 0) in
  let last_order = mk ~rows:n_c ~vsize:8 ~extract:w_of_c in
  let mk_tree g =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Btree.create st ~thread:0 ~regions:group_regions.(g) ())
  in
  let t =
    {
      scale;
      groups;
      warehouse;
      district;
      customer;
      item;
      stock;
      order;
      new_order;
      order_line;
      history;
      last_order;
      order_tree = Array.init groups mk_tree;
      no_tree = Array.init groups mk_tree;
      ol_tree = Array.init groups mk_tree;
      cust_name_tree = Array.init groups mk_tree;
      new_orders = Stats.Counter.create ();
      no_latency = Stats.Hist.create ();
      no_series = Stats.Series.create ~bin:(Time.ms 1);
      history_seq = 0;
    }
  in
  t

let name_bucket c = c mod 97

let load cluster t =
  let s = t.scale in
  (* items (global, read-only) *)
  let batch_run f =
    Cluster.run_on cluster ~machine:0 (fun st ->
        match Api.run_retry st ~thread:0 f with
        | Ok () -> ()
        | Error e -> Fmt.failwith "Tpcc.load: %a" Txn.pp_abort e)
  in
  let i = ref 0 in
  while !i < s.items do
    let lo = !i and hi = min s.items (!i + 50) in
    batch_run (fun tx ->
        for it = lo to hi - 1 do
          Hashtable.insert tx t.item (key8 it) (mk_record 16 [ 100 + (it mod 900); it ])
        done);
    i := hi
  done;
  for w = 0 to s.warehouses - 1 do
    batch_run (fun tx ->
        Hashtable.insert tx t.warehouse (key8 w) (mk_record 16 [ 0; 10 + (w mod 10) ]));
    (* stock *)
    let i = ref 0 in
    while !i < s.items do
      let lo = !i and hi = min s.items (!i + 40) in
      batch_run (fun tx ->
          for it = lo to hi - 1 do
            Hashtable.insert tx t.stock (key8 (skey ~w ~i:it)) (mk_record 24 [ 50 + (it mod 50); 0; 0 ])
          done);
      i := hi
    done;
    for d = 0 to s.districts - 1 do
      batch_run (fun tx ->
          Hashtable.insert tx t.district (key8 (dkey t ~w ~d)) (mk_record 24 [ 0; 1; 5 + (d mod 10) ]));
      let c = ref 0 in
      while !c < s.customers do
        let lo = !c and hi = min s.customers (!c + 25) in
        batch_run (fun tx ->
            for c = lo to hi - 1 do
              let ck = ckey t ~w ~d ~c in
              Hashtable.insert tx t.customer (key8 ck) (mk_record 48 [ -10; 10; 1; 0 ]);
              Btree.insert tx
                t.cust_name_tree.(group_of t w)
                (namekey t ~w ~d ~bucket:(name_bucket c) ~c)
                ck
            done);
        c := hi
      done
    done
  done

(* {1 Helpers inside transactions} *)

let read_row tx table key =
  match Hashtable.lookup tx table (key8 key) with
  | Some row -> row
  | None -> raise (Txn.Abort Txn.Not_allocated)

let update_row tx table key f =
  let row = Bytes.copy (read_row tx table key) in
  f row;
  Hashtable.insert tx table (key8 key) row

(* {1 The five transactions} *)

let new_order t (ctx : Driver.worker_ctx) ~w =
  let s = t.scale in
  let st = ctx.Driver.st and rng = ctx.Driver.rng in
  let d = Rng.int rng s.districts in
  let c = Rng.int rng s.customers in
  let n_items = 5 + Rng.int rng 11 in
  let lines =
    List.init n_items (fun _ ->
        let item = Rng.int rng s.items in
        (* 1% of items come from a remote warehouse *)
        let supply_w =
          if s.warehouses > 1 && Rng.int rng 100 = 0 then Rng.int rng s.warehouses else w
        in
        let qty = 1 + Rng.int rng 10 in
        (item, supply_w, qty))
  in
  let rollback = Rng.int rng 100 = 0 in
  let t0 = Proc.now () in
  match
    Api.run_retry ~attempts:24 st ~thread:ctx.Driver.thread (fun tx ->
        let wrow = read_row tx t.warehouse w in
        let _w_tax = get_i wrow 8 in
        let dk = dkey t ~w ~d in
        let o = ref 0 in
        update_row tx t.district dk (fun row ->
            o := get_i row 8;
            set_i row 8 (!o + 1));
        let ck = ckey t ~w ~d ~c in
        let _crow = read_row tx t.customer ck in
        let ok = okey t ~w ~d ~o:!o in
        Hashtable.insert tx t.order (key8 ok) (mk_record 24 [ ck; n_items; 0 ]);
        Btree.insert tx t.order_tree.(group_of t w) ok ck;
        Hashtable.insert tx t.new_order (key8 ok) (mk_record 8 [ 1 ]);
        Btree.insert tx t.no_tree.(group_of t w) ok 1;
        Hashtable.insert tx t.last_order (key8 ck) (mk_record 8 [ !o ]);
        List.iteri
          (fun ol (item, supply_w, qty) ->
            let irow = read_row tx t.item item in
            let price = get_i irow 0 in
            update_row tx t.stock (skey ~w:supply_w ~i:item) (fun row ->
                let q = get_i row 0 in
                set_i row 0 (if q - qty >= 10 then q - qty else q - qty + 91);
                set_i row 8 (get_i row 8 + qty);
                set_i row 16 (get_i row 16 + 1));
            let olk = olkey ~okey:ok ~ol in
            Hashtable.insert tx t.order_line (key8 olk)
              (mk_record 32 [ item; qty; price * qty; supply_w ]);
            Btree.insert tx t.ol_tree.(group_of t w) olk (price * qty))
          lines;
        (* the spec's 1% new-orders hit an invalid item (discovered after
           the line items were processed) and roll back *)
        if rollback then Api.abort ())
  with
  | Ok () ->
      let t1 = Proc.now () in
      Stats.Counter.incr t.new_orders;
      Stats.Hist.record t.no_latency (Time.to_ns (Time.sub t1 t0));
      Stats.Series.add t.no_series ~at:t1 1;
      true
  | Error _ -> false

let payment t (ctx : Driver.worker_ctx) ~w =
  let s = t.scale in
  let st = ctx.Driver.st and rng = ctx.Driver.rng in
  let d = Rng.int rng s.districts in
  (* 15% of payments are for a customer of a remote warehouse *)
  let cw, cd =
    if s.warehouses > 1 && Rng.int rng 100 < 15 then
      (Rng.int rng s.warehouses, Rng.int rng s.districts)
    else (w, d)
  in
  let amount = 1 + Rng.int rng 5000 in
  let by_name = Rng.int rng 100 < 60 in
  let c = Rng.int rng s.customers in
  t.history_seq <- t.history_seq + 1;
  let hkey = (st.State.id * (1 lsl 40)) + t.history_seq in
  match
    Api.run_retry ~attempts:24 st ~thread:ctx.Driver.thread (fun tx ->
        update_row tx t.warehouse w (fun row -> set_i row 0 (get_i row 0 + amount));
        update_row tx t.district (dkey t ~w ~d) (fun row ->
            set_i row 0 (get_i row 0 + amount));
        let ck =
          if by_name then begin
            (* select the middle match by last name via the ordered index *)
            let bucket = name_bucket c in
            let lo = namekey t ~w:cw ~d:cd ~bucket ~c:0 in
            let hi = namekey t ~w:cw ~d:cd ~bucket ~c:((1 lsl 14) - 1) in
            match Btree.range tx t.cust_name_tree.(group_of t cw) ~lo ~hi with
            | [] -> ckey t ~w:cw ~d:cd ~c
            | matches -> snd (List.nth matches (List.length matches / 2))
          end
          else ckey t ~w:cw ~d:cd ~c
        in
        update_row tx t.customer ck (fun row ->
            set_i row 0 (get_i row 0 - amount);
            set_i row 8 (get_i row 8 + amount);
            set_i row 16 (get_i row 16 + 1));
        Hashtable.insert tx t.history (key8 hkey) (mk_record 24 [ ck; amount; 0 ]))
  with
  | Ok () -> true
  | Error _ -> false

let order_status t (ctx : Driver.worker_ctx) ~w =
  let s = t.scale in
  let st = ctx.Driver.st and rng = ctx.Driver.rng in
  let d = Rng.int rng s.districts in
  let c = Rng.int rng s.customers in
  match
    Api.run st ~thread:ctx.Driver.thread (fun tx ->
        let ck = ckey t ~w ~d ~c in
        let _crow = read_row tx t.customer ck in
        match Hashtable.lookup tx t.last_order (key8 ck) with
        | None -> 0
        | Some lo ->
            let o = get_i lo 0 in
            let ok = okey t ~w ~d ~o in
            let orow = read_row tx t.order ok in
            let ol_cnt = get_i orow 8 in
            let lines =
              Btree.range tx t.ol_tree.(group_of t w) ~lo:(olkey ~okey:ok ~ol:0)
                ~hi:(olkey ~okey:ok ~ol:15)
            in
            ignore ol_cnt;
            List.length lines)
  with
  | Ok _ -> true
  | Error _ -> false

let delivery t (ctx : Driver.worker_ctx) ~w =
  let s = t.scale in
  let st = ctx.Driver.st in
  let carrier = 1 + Rng.int ctx.Driver.rng 10 in
  match
    Api.run_retry ~attempts:8 st ~thread:ctx.Driver.thread (fun tx ->
        for d = 0 to s.districts - 1 do
          let base = okey t ~w ~d ~o:0 in
          let limit = okey t ~w ~d ~o:9_999_999 in
          match Btree.range tx t.no_tree.(group_of t w) ~lo:base ~hi:limit with
          | [] -> ()
          | (ok, _) :: _ ->
              ignore (Hashtable.delete tx t.new_order (key8 ok));
              ignore (Btree.delete tx t.no_tree.(group_of t w) ok);
              let orow = read_row tx t.order ok in
              let ck = get_i orow 0 in
              update_row tx t.order ok (fun row -> set_i row 16 carrier);
              let lines =
                Btree.range tx t.ol_tree.(group_of t w) ~lo:(olkey ~okey:ok ~ol:0)
                  ~hi:(olkey ~okey:ok ~ol:15)
              in
              let total = List.fold_left (fun acc (_, amt) -> acc + amt) 0 lines in
              update_row tx t.customer ck (fun row ->
                  set_i row 0 (get_i row 0 + total);
                  set_i row 24 (get_i row 24 + 1))
        done)
  with
  | Ok () -> true
  | Error _ -> false

let stock_level t (ctx : Driver.worker_ctx) ~w =
  let s = t.scale in
  let st = ctx.Driver.st and rng = ctx.Driver.rng in
  let d = Rng.int rng s.districts in
  let threshold = 10 + Rng.int rng 10 in
  match
    (* a ~100-object read-only snapshot: at this reduced scale it races the
       writers often, so retry validation failures a few times *)
    Api.run_retry ~attempts:8 st ~thread:ctx.Driver.thread (fun tx ->
        let drow = read_row tx t.district (dkey t ~w ~d) in
        let next_o = get_i drow 8 in
        let from_o = max 1 (next_o - 20) in
        let low = ref 0 in
        let seen = Hashtbl.create 64 in
        for o = from_o to next_o - 1 do
          let ok = okey t ~w ~d ~o in
          let lines =
            Btree.range tx t.ol_tree.(group_of t w) ~lo:(olkey ~okey:ok ~ol:0)
              ~hi:(olkey ~okey:ok ~ol:15)
          in
          List.iter
            (fun (olk, _) ->
              match Hashtable.lookup tx t.order_line (key8 olk) with
              | Some row ->
                  let item = get_i row 0 in
                  if not (Hashtbl.mem seen item) then begin
                    Hashtbl.replace seen item ();
                    match Hashtable.lookup tx t.stock (key8 (skey ~w ~i:item)) with
                    | Some srow -> if get_i srow 0 < threshold then incr low
                    | None -> ()
                  end
              | None -> ())
            lines
        done;
        !low)
  with
  | Ok _ -> true
  | Error _ -> false

(* {1 Client co-partitioning}: each machine serves the warehouses whose
   home region lives on it; fall back to round-robin before placement is
   known. *)
let home_warehouse t (ctx : Driver.worker_ctx) =
  let st = ctx.Driver.st in
  let candidates = ref [] in
  for w = 0 to t.scale.warehouses - 1 do
    let key = key8 w in
    let bucket = t.warehouse.Hashtable.buckets.(Hashtable.bucket_of t.warehouse key) in
    match State.region_info st bucket.Addr.region with
    | Some info when info.Wire.primary = st.State.id -> candidates := w :: !candidates
    | _ -> ()
  done;
  match !candidates with
  | [] -> (ctx.Driver.worker + st.State.id) mod t.scale.warehouses
  | l -> List.nth l (Rng.int ctx.Driver.rng (List.length l))

(* One operation of the standard mix. *)
let op t (ctx : Driver.worker_ctx) =
  let w = home_warehouse t ctx in
  let roll = Rng.int ctx.Driver.rng 100 in
  if roll < 45 then new_order t ctx ~w
  else if roll < 88 then payment t ctx ~w
  else if roll < 92 then order_status t ctx ~w
  else if roll < 96 then delivery t ctx ~w
  else stock_level t ctx ~w

(* {1 Consistency checks (used by the test-suite)} *)

(* TPC-C consistency condition 1: W_YTD = sum(D_YTD). *)
let check_ytd cluster t =
  Cluster.run_on cluster ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            let ok = ref true in
            for w = 0 to t.scale.warehouses - 1 do
              let wrow = read_row tx t.warehouse w in
              let sum = ref 0 in
              for d = 0 to t.scale.districts - 1 do
                let drow = read_row tx t.district (dkey t ~w ~d) in
                sum := !sum + get_i drow 0
              done;
              if get_i wrow 0 <> !sum then ok := false
            done;
            !ok)
      with
      | Ok ok -> ok
      | Error _ -> false)

(* Orders are dense per district: next_o_id - 1 orders exist. *)
let check_orders cluster t =
  Cluster.run_on cluster ~machine:0 (fun st ->
      match
        Api.run_retry st ~thread:0 (fun tx ->
            let ok = ref true in
            for w = 0 to t.scale.warehouses - 1 do
              for d = 0 to t.scale.districts - 1 do
                let drow = read_row tx t.district (dkey t ~w ~d) in
                let next_o = get_i drow 8 in
                for o = 1 to next_o - 1 do
                  if Hashtable.lookup tx t.order (key8 (okey t ~w ~d ~o)) = None then
                    ok := false
                done
              done
            done;
            !ok)
      with
      | Ok ok -> ok
      | Error _ -> false)
