open Farm_sim
open Farm_core
open Farm_kv

(* TATP — Telecommunication Application Transaction Processing (§6.2/6.3).

   Four tables, each a FaRM hash table; the standard transaction mix:
     35% GET_SUBSCRIBER_DATA    single-row, lock-free read
     35% GET_ACCESS_DATA        single-row, lock-free read
     10% GET_NEW_DESTINATION    2-4 row read, validated at commit
      2% UPDATE_SUBSCRIBER_DATA full commit protocol
     14% UPDATE_LOCATION        single-field update, function-shipped to
                                the subscriber row's primary (§6.2)
      2% INSERT_CALL_FORWARDING
      2% DELETE_CALL_FORWARDING
   i.e. 70% single-row lookups, 10% multi-row reads, 20% updates, as the
   paper describes. Subscriber ids use TATP's non-uniform generator, the
   source of the throughput dips the paper mentions. *)

type t = {
  subscribers : int;
  sub : Hashtable.t;  (* s_id -> 40 B record; vlr_location at offset 0 *)
  access : Hashtable.t;  (* s_id*4 + (ai-1) -> 16 B *)
  special : Hashtable.t;  (* s_id*4 + (sf-1) -> 16 B; is_active at 0, data_a at 1 *)
  callfwd : Hashtable.t;  (* (s_id*4 + (sf-1))*3 + slot -> 16 B *)
}

let key8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

(* deterministic per-subscriber row counts (1-4, as the TATP population
   rules require) *)
let n_access s = 1 + (s mod 4)
let n_special s = 1 + ((s / 4) mod 4)

let update_location_tag = 7001

(* One local UPDATE_LOCATION transaction: overwrite vlr_location. *)
let do_update_location st t ~thread ~s ~vlr =
  Api.run_retry ~attempts:16 st ~thread (fun tx ->
      match Hashtable.lookup tx t.sub (key8 s) with
      | Some row ->
          let row = Bytes.copy row in
          Bytes.set_int64_le row 0 (Int64.of_int vlr);
          Hashtable.insert tx t.sub (key8 s) row
      | None -> ())

(* Register the function-shipping handler on one machine. *)
let install st t =
  st.State.app_handler <-
    Some
      (fun ~tag ~args ->
        if tag = update_location_tag && Array.length args = 2 then
          match do_update_location st t ~thread:0 ~s:args.(0) ~vlr:args.(1) with
          | Ok () -> true
          | Error _ -> false
        else false)

(* Build the database and register handlers cluster-wide. *)
let create cluster ~subscribers ~regions_per_table =
  let alloc_regions n =
    Array.init n (fun _ -> (Cluster.alloc_region_exn cluster).Wire.rid)
  in
  let r_sub = alloc_regions regions_per_table in
  let r_access = alloc_regions regions_per_table in
  let r_special = alloc_regions regions_per_table in
  let r_callfwd = alloc_regions regions_per_table in
  let buckets_for rows = max 64 (rows / 4) in
  let mk st ~regions ~rows ~vsize =
    Hashtable.create st ~thread:0 ~regions ~buckets:(buckets_for rows) ~ksize:8 ~vsize ()
  in
  let t =
    Cluster.run_on cluster ~machine:0 (fun st ->
        {
          subscribers;
          sub = mk st ~regions:r_sub ~rows:subscribers ~vsize:40;
          access = mk st ~regions:r_access ~rows:(subscribers * 5 / 2) ~vsize:16;
          special = mk st ~regions:r_special ~rows:(subscribers * 5 / 2) ~vsize:16;
          callfwd = mk st ~regions:r_callfwd ~rows:(subscribers * 3) ~vsize:16;
        })
  in
  Array.iter (fun st -> install st t) cluster.Cluster.machines;
  t

(* Populate in batches of subscribers, one transaction per batch. *)
let load cluster t =
  let batch = 16 in
  let s = ref 1 in
  while !s <= t.subscribers do
    let lo = !s and hi = min t.subscribers (!s + batch - 1) in
    Cluster.run_on cluster ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              for s = lo to hi do
                let sub_row = Bytes.make 40 '\000' in
                Bytes.set_int64_le sub_row 0 (Int64.of_int s);
                Hashtable.insert tx t.sub (key8 s) sub_row;
                for ai = 0 to n_access s - 1 do
                  let row = Bytes.make 16 '\001' in
                  Hashtable.insert tx t.access (key8 ((s * 4) + ai)) row
                done;
                for sf = 0 to n_special s - 1 do
                  let row = Bytes.make 16 '\000' in
                  Bytes.set row 0 (if (s + sf) mod 6 < 5 then '\001' else '\000');
                  Hashtable.insert tx t.special (key8 ((s * 4) + sf)) row;
                  (* half the special facilities start with one call
                     forwarding row *)
                  if (s + sf) mod 2 = 0 then begin
                    let cf = Bytes.make 16 '\002' in
                    Hashtable.insert tx t.callfwd (key8 ((((s * 4) + sf) * 3) + 0)) cf
                  end
                done
              done)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "Tatp.load: %a" Txn.pp_abort e);
    s := hi + 1
  done

(* TATP's non-uniform subscriber id generator. *)
let random_sid t rng =
  let n = t.subscribers in
  let a =
    let rec pow2 p = if p * 2 > n then p else pow2 (p * 2) in
    pow2 1 - 1
  in
  (((Rng.int rng (a + 1)) lor (1 + Rng.int rng n)) mod n) + 1

(* {1 The seven transactions} *)

let get_subscriber_data st t rng =
  let s = random_sid t rng in
  ignore (Hashtable.lookup_lockfree st t.sub (key8 s));
  true

let get_access_data st t rng =
  let s = random_sid t rng in
  let ai = Rng.int rng 4 in
  ignore (Hashtable.lookup_lockfree st t.access (key8 ((s * 4) + ai)));
  true

let get_new_destination st ~thread t rng =
  let s = random_sid t rng in
  let sf = Rng.int rng 4 in
  match
    Api.run st ~thread (fun tx ->
        match Hashtable.lookup tx t.special (key8 ((s * 4) + sf)) with
        | Some row when Bytes.get row 0 = '\001' ->
            let slot = Rng.int rng 3 in
            Hashtable.lookup tx t.callfwd (key8 ((((s * 4) + sf) * 3) + slot)) <> None
        | Some _ | None -> false)
  with
  | Ok _found -> true
  | Error _ -> false

let update_subscriber_data st ~thread t rng =
  let s = random_sid t rng in
  let sf = Rng.int rng 4 in
  match
    Api.run_retry ~attempts:16 st ~thread (fun tx ->
        (match Hashtable.lookup tx t.sub (key8 s) with
        | Some row ->
            let row = Bytes.copy row in
            Bytes.set row 8 (Char.chr (Rng.int rng 2));
            Hashtable.insert tx t.sub (key8 s) row
        | None -> ());
        match Hashtable.lookup tx t.special (key8 ((s * 4) + sf)) with
        | Some row ->
            let row = Bytes.copy row in
            Bytes.set row 1 (Char.chr (Rng.int rng 256));
            Hashtable.insert tx t.special (key8 ((s * 4) + sf)) row
        | None -> ())
  with
  | Ok () -> true
  | Error _ -> false

(* Single-field update: function-shipped to the subscriber row's primary
   when remote (§6.2). *)
let update_location st ~thread t rng =
  let s = random_sid t rng in
  let vlr = Rng.int rng 1_000_000 in
  let bucket = t.sub.Hashtable.buckets.(Hashtable.bucket_of t.sub (key8 s)) in
  let primary =
    match State.region_info st bucket.Addr.region with
    | Some info -> info.Wire.primary
    | None -> st.State.id
  in
  if primary = st.State.id then
    match do_update_location st t ~thread ~s ~vlr with Ok () -> true | Error _ -> false
  else begin
    match
      Comms.call st ~dst:primary ~timeout:(Time.ms 50)
        (Wire.App_call { tag = update_location_tag; args = [| s; vlr |] })
    with
    | Ok (Wire.App_reply { ok }) -> ok
    | Ok _ | Error _ -> false
  end

let insert_call_forwarding st ~thread t rng =
  let s = random_sid t rng in
  let sf = Rng.int rng 4 in
  let slot = Rng.int rng 3 in
  match
    Api.run_retry ~attempts:16 st ~thread (fun tx ->
        match Hashtable.lookup tx t.special (key8 ((s * 4) + sf)) with
        | Some _ ->
            let row = Bytes.make 16 '\003' in
            Hashtable.insert tx t.callfwd (key8 ((((s * 4) + sf) * 3) + slot)) row
        | None -> ())
  with
  | Ok () -> true
  | Error _ -> false

let delete_call_forwarding st ~thread t rng =
  let s = random_sid t rng in
  let sf = Rng.int rng 4 in
  let slot = Rng.int rng 3 in
  match
    Api.run_retry ~attempts:16 st ~thread (fun tx ->
        ignore (Hashtable.delete tx t.callfwd (key8 ((((s * 4) + sf) * 3) + slot))))
  with
  | Ok () -> true
  | Error _ -> false

(* One operation of the standard mix; returns success. *)
let op t (ctx : Driver.worker_ctx) =
  let st = ctx.Driver.st and rng = ctx.Driver.rng and thread = ctx.Driver.thread in
  let roll = Rng.int rng 100 in
  if roll < 35 then get_subscriber_data st t rng
  else if roll < 70 then get_access_data st t rng
  else if roll < 80 then get_new_destination st ~thread t rng
  else if roll < 82 then update_subscriber_data st ~thread t rng
  else if roll < 96 then update_location st ~thread t rng
  else if roll < 98 then insert_call_forwarding st ~thread t rng
  else delete_call_forwarding st ~thread t rng
