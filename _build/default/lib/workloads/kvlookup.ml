open Farm_sim
open Farm_core
open Farm_kv

(* The key-value lookup workload of §6.3 "Read performance": 16-byte keys,
   32-byte values, uniform access, lock-free reads — normally one one-sided
   RDMA read per lookup. *)

type t = { table : Hashtable.t; keys : int }

let key16 v =
  let b = Bytes.make 16 '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let create cluster ~keys ~regions =
  let rids = Array.init regions (fun _ -> (Cluster.alloc_region_exn cluster).Wire.rid) in
  let table =
    Cluster.run_on cluster ~machine:0 (fun st ->
        Hashtable.create st ~thread:0 ~regions:rids ~buckets:(max 64 (keys / 4))
          ~ksize:16 ~vsize:32 ())
  in
  { table; keys }

let load cluster t =
  let i = ref 0 in
  while !i < t.keys do
    let lo = !i and hi = min t.keys (!i + 64) in
    Cluster.run_on cluster ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              for k = lo to hi - 1 do
                Hashtable.insert tx t.table (key16 k) (Bytes.make 32 'v')
              done)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "Kvlookup.load: %a" Txn.pp_abort e);
    i := hi
  done

let op t (ctx : Driver.worker_ctx) =
  let k = Rng.int ctx.Driver.rng t.keys in
  Hashtable.lookup_lockfree ctx.Driver.st t.table (key16 k) <> None
