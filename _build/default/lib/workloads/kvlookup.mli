open Farm_core
open Farm_kv

(** The §6.3 "read performance" workload: 16-byte keys, 32-byte values,
    uniform access, lock-free reads — normally a single one-sided RDMA read
    per lookup, no commit protocol. *)

type t = { table : Hashtable.t; keys : int }

val create : Cluster.t -> keys:int -> regions:int -> t
val load : Cluster.t -> t -> unit
val op : t -> Driver.worker_ctx -> bool
