(* On-NVRAM object layout.

   Every object starts with an 8-byte header word:
     bit 63          lock bit
     bit 62          allocation bit
     bits 0..61      version
   followed by the object's data bytes. Versions are used both for
   optimistic concurrency control and for replication (§3). *)

let header_size = 8

let lock_bit = Int64.shift_left 1L 63
let alloc_bit = Int64.shift_left 1L 62
let version_mask = Int64.sub alloc_bit 1L

let make ~locked ~allocated ~version =
  let v = Int64.logand (Int64.of_int version) version_mask in
  let v = if locked then Int64.logor v lock_bit else v in
  if allocated then Int64.logor v alloc_bit else v

let is_locked h = Int64.logand h lock_bit <> 0L
let is_allocated h = Int64.logand h alloc_bit <> 0L
let version h = Int64.to_int (Int64.logand h version_mask)

let with_locked h locked =
  if locked then Int64.logor h lock_bit else Int64.logand h (Int64.lognot lock_bit)

let with_allocated h allocated =
  if allocated then Int64.logor h alloc_bit else Int64.logand h (Int64.lognot alloc_bit)

let with_version h v =
  Int64.logor
    (Int64.logand h (Int64.lognot version_mask))
    (Int64.logand (Int64.of_int v) version_mask)

let get bytes ~off = Bytes.get_int64_le bytes off
let set bytes ~off h = Bytes.set_int64_le bytes off h

(* Single-word compare-and-swap; atomic because the simulator executes each
   closure without preemption, as a real CAS instruction would be. *)
let cas bytes ~off ~expected ~desired =
  if Int64.equal (get bytes ~off) expected then begin
    set bytes ~off desired;
    true
  end
  else false

let read_data bytes ~off ~len = Bytes.sub bytes (off + header_size) len

let write_data bytes ~off data =
  Bytes.blit data 0 bytes (off + header_size) (Bytes.length data)
