open Farm_sim

(** The FaRM commit protocol (§4, Figure 4): LOCK, VALIDATE, COMMIT-BACKUP,
    COMMIT-PRIMARY, lazy TRUNCATE — all log writes one-sided, replication
    primary-backup with an unreplicated coordinator, log space reserved up
    front for progress. A configuration change that makes the transaction
    recovering hands control to the recovery protocol's vote/decide
    outcome. *)

type 'a race = Normal of 'a | Recovered of State.outcome

val race_outcome : State.tx_live -> 'a Ivar.t -> 'a race
(** Wait for a protocol completion or the recovery outcome, whichever
    first. *)

val validate : State.t -> txid:Txid.t -> (Addr.t * int) list -> bool
(** Read validation (§4 step 2): one-sided version reads grouped by
    primary, switching to one RPC per primary above the tr threshold. *)

val commit : Txn.t -> (unit, Txn.abort_reason) result
(** Drive the full commit protocol for an executed transaction. Reports
    success after at least one COMMIT-PRIMARY hardware ack; truncation
    happens lazily in the background. *)
