(** On-NVRAM object layout (§3).

    Every object starts with an 8-byte header word — lock bit (63),
    allocation bit (62), version (0..61) — followed by its data bytes.
    Versions serve both optimistic concurrency control and replication:
    a committed write installs [version + 1] and data recovery copies an
    object only when the source version is newer. *)

val header_size : int

(** {1 Header words} *)

val make : locked:bool -> allocated:bool -> version:int -> int64
val is_locked : int64 -> bool
val is_allocated : int64 -> bool
val version : int64 -> int
val with_locked : int64 -> bool -> int64
val with_allocated : int64 -> bool -> int64
val with_version : int64 -> int -> int64

(** {1 Memory access} *)

val get : Bytes.t -> off:int -> int64
val set : Bytes.t -> off:int -> int64 -> unit

val cas : Bytes.t -> off:int -> expected:int64 -> desired:int64 -> bool
(** Single-word compare-and-swap; atomic because the simulator never
    preempts a closure, as a real CAS instruction would be. *)

val read_data : Bytes.t -> off:int -> len:int -> Bytes.t
val write_data : Bytes.t -> off:int -> Bytes.t -> unit
