open Farm_sim

(** Sender-owned ring-buffer transaction logs (§3, §4).

    One log per sender-receiver machine pair, physically located in the
    receiver's non-volatile DRAM. Senders append records with one-sided
    RDMA writes acknowledged by the receiver's NIC alone; receivers process
    records with their CPU later; truncation frees space lazily and
    propagates the new head back to the sender lazily.

    Senders must reserve space before writing (the commit protocol reserves
    for every record it may produce, §4), so appends never overflow.
    Records move through three states: reserved → unprocessed (DMA'd) →
    resident, leaving only at truncation.

    Processing is deliberately not serialized per log: the commit protocol
    orders what must be ordered, and the receiver defers truncations for
    transactions that still have unprocessed records. *)

type entry = { seq : int; size : int; record : Wire.log_record }

type t

val create : sender:int -> receiver:int -> capacity:int -> t
val sender : t -> int
val receiver : t -> int
val used : t -> int
val capacity : t -> int

val set_on_append : t -> (t -> entry -> unit) -> unit
(** Receiver-side processing trigger, fired at each DMA. *)

val txid_of_record : Wire.log_record -> Txid.t option

(** {1 Sender side} *)

val reserve : t -> int -> bool
(** Reserve [n] bytes against the sender's (lazily updated) view of free
    space; false when the log looks full. *)

val unreserve : t -> int -> unit

val reset_sender_view : t -> unit
(** After the sender restarts: drop dead reservations and resync the head
    estimate with the receiver-side truth. *)

val consume_reservation : t -> int -> unit
(** Issue a reservation-backed write: moves [n] bytes from reserved to the
    sender's used estimate. *)

(** {1 DMA (runs at the receiver-NIC write instant)} *)

val dma_append : t -> Wire.log_record -> size:int -> unit
(** Append a record; the NIC accepts it regardless of configuration. *)

(** {1 Receiver side} *)

val pending_count : t -> Txid.t -> int
(** Unprocessed records of a transaction — nonzero defers truncation. *)

val retain : t -> entry -> unit
(** Mark processed and keep resident for recovery until truncated. *)

val discard : t -> Engine.t -> entry -> unit
(** Mark processed and free immediately (markers, aborted transactions). *)

val resident_records : t -> Txid.t -> Wire.log_record list
val unprocessed_records : t -> Wire.log_record list
val iter_resident : t -> (Txid.t -> Wire.log_record list -> unit) -> unit

val truncate : t -> Engine.t -> Txid.t -> int
(** Drop a transaction's resident records; returns how many. Frees space
    now and updates the sender's estimate lazily. *)
