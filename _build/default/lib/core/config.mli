(** Configurations [<i, S, F, CM>] (§3): a unique monotonically increasing
    identifier, the member set, the failure-domain mapping, and the
    configuration manager. Stored in the Zookeeper-equivalent and advanced
    with one atomic compare-and-swap per change (vertical Paxos). *)

type t = {
  id : int;
  members : int list;  (** sorted, duplicate-free *)
  domains : (int * int) list;  (** machine -> failure domain *)
  cm : int;
}

val make : id:int -> members:int list -> domains:(int * int) list -> cm:int -> t
(** Raises [Invalid_argument] if [cm] is not a member. *)

val is_member : t -> int -> bool
val domain_of : t -> int -> int
val size : t -> int

val backup_cms : t -> k:int -> int list
(** The [k] machines that act as backup CMs: the CM's successors on the
    identifier ring (§5.2 step 1). *)

val recovery_coordinator : t -> Txid.t -> int
(** Deterministic (consistent-hash) coordinator assignment for recovering
    transactions whose original coordinator left the configuration (§5.3
    step 6): all primaries independently agree on it. *)

val pp : Format.formatter -> t -> unit
