(* Replica selection for regions (§3): balance region counts across
   machines subject to capacity, place each replica in a distinct failure
   domain, and honour application locality constraints by co-locating with
   the target region's replicas. *)

type constraints = {
  members : int list;
  domain_of : int -> int;
  load_of : int -> int;  (* regions currently stored on the machine *)
  capacity_of : int -> int;  (* max regions the machine can store *)
  replication : int;
}

(* Pick [n] machines, least-loaded first, all in failure domains distinct
   from each other and from [exclude_domains], excluding [exclude] machines;
   [prefer] machines are taken first when feasible. *)
let pick c ~n ~exclude ~exclude_domains ~prefer =
  let eligible m = (not (List.mem m exclude)) && c.load_of m < c.capacity_of m in
  let by_load l =
    List.stable_sort (fun a b -> Int.compare (c.load_of a) (c.load_of b)) l
  in
  (* preferred machines keep their given order: the co-location target's
     primary comes first so it also hosts the new region's primary *)
  let preferred = List.filter eligible prefer in
  let others = by_load (List.filter (fun m -> eligible m && not (List.mem m prefer)) c.members) in
  let rec go chosen domains = function
    | [] -> List.rev chosen
    | m :: rest ->
        if List.length chosen >= n then List.rev chosen
        else if List.mem (c.domain_of m) domains then go chosen domains rest
        else go (m :: chosen) (c.domain_of m :: domains) rest
  in
  let chosen = go [] exclude_domains (preferred @ others) in
  if List.length chosen >= n then Some chosen else None

(* Choose primary and backups for a fresh region. When [colocate_with] names
   an existing region's replica set, prefer exactly those machines (this is
   what lets TPC-C co-partition its tables, at the cost of reduced recovery
   parallelism, Figure 10). *)
let choose c ?colocate_with () =
  let prefer = match colocate_with with Some (p, bs) -> p :: bs | None -> [] in
  match pick c ~n:c.replication ~exclude:[] ~exclude_domains:[] ~prefer with
  | Some (primary :: backups) -> Some (primary, backups)
  | Some [] | None -> None

(* Choose replacement backups for a region that lost replicas: avoid the
   survivors' machines and their failure domains. *)
let choose_replacements c ~survivors ~needed =
  pick c ~n:needed ~exclude:survivors
    ~exclude_domains:(List.map c.domain_of survivors)
    ~prefer:[]

let domains_distinct c machines =
  let ds = List.map c.domain_of machines in
  List.length (List.sort_uniq Int.compare ds) = List.length machines
