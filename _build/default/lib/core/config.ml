(* A configuration <i, S, F, CM> (§3): unique monotonically increasing
   identifier, member set, failure-domain mapping, and configuration
   manager. *)

type t = {
  id : int;
  members : int list;  (* sorted, no duplicates *)
  domains : (int * int) list;  (* machine -> failure domain *)
  cm : int;
}

let make ~id ~members ~domains ~cm =
  let members = List.sort_uniq Int.compare members in
  if not (List.mem cm members) then invalid_arg "Config.make: CM must be a member";
  { id; members; domains; cm }

let is_member t m = List.mem m t.members

let domain_of t m = match List.assoc_opt m t.domains with Some d -> d | None -> m

let size t = List.length t.members

(* The k machines that act as backup CMs: the successors of the CM on the
   identifier ring (consistent hashing, §5.2 step 1). *)
let backup_cms t ~k =
  let sorted = t.members in
  let after = List.filter (fun m -> m > t.cm) sorted in
  let ring = after @ List.filter (fun m -> m < t.cm) sorted in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k ring

(* Deterministic coordinator assignment for recovering transactions whose
   original coordinator left the configuration (§5.3 step 6). *)
let recovery_coordinator t txid =
  let members = Array.of_list t.members in
  members.(Txid.hash txid mod Array.length members)

let pp ppf t =
  Fmt.pf ppf "<%d, {%a}, cm=%d>" t.id Fmt.(list ~sep:(any ",") int) t.members t.cm
