(** Member-side application of configurations (§5.2 steps 6-7): precise
    membership is what replaces server-side lease checks under one-sided
    RDMA. Applying NEW-CONFIG updates the configuration and mapping cache,
    blocks external requests, adjusts local replica roles (promotions
    become inactive until lock recovery; fresh assignments get zeroed
    NVRAM), and resets the lease; NEW-CONFIG-COMMIT unblocks and lets new
    primaries sync block headers. *)

val apply_new_config : State.t -> Config.t -> Wire.region_info list -> unit

val on_config_commit : State.t -> cfg:int -> bool
(** Returns whether the commit matched the current configuration (in which
    case the caller starts transaction-state recovery). *)
