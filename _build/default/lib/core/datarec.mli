(** Bulk data recovery (§5.4).

    New backups start from zeroed replicas and re-replicate regions with
    one-sided reads from the primary, slab block by slab block, paced so
    the foreground never notices (the aggressive Figure 14/15 settings
    raise block size and in-flight reads). Every recovered object is
    version-checked before being applied, so races with the new
    transactions that already reach this backup's log are benign. Starts
    only at ALL-REGIONS-ACTIVE; also kicks allocator recovery for promoted
    primaries. *)

val apply_block : State.t -> State.replica -> block:int -> Bytes.t -> unit

val recover_region : State.t -> State.replica -> on_done:(unit -> unit) -> unit

val on_all_regions_active : State.t -> unit
