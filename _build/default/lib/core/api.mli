
(** The public FaRM programming model (§3).

    Applications see a global address space of objects spread over the
    cluster and manipulate it through strictly serializable transactions.
    Any application thread may start a transaction at any time and becomes
    its coordinator; reads during execution are atomic per object and see
    only committed data, but cross-object consistency is only enforced at
    commit, so execution code must tolerate (and abort on) temporary
    inconsistencies. *)

type 'a result_t = ('a, Txn.abort_reason) result

val run : State.t -> thread:int -> (Txn.t -> 'a) -> 'a result_t
(** Run one transaction attempt: execute the body, then drive the
    four-phase commit protocol (§4). Must be called from a process on the
    machine [State.t]. [thread] is the coordinator thread identifier used
    in transaction ids. *)

val run_retry : ?attempts:int -> State.t -> thread:int -> (Txn.t -> 'a) -> 'a result_t
(** Like {!run}, retrying with randomized backoff on {!Txn.Conflict} and
    transient failures. *)

val abort : unit -> 'a
(** Abort the enclosing transaction (raises {!Txn.Abort}). *)

val read_lockfree : State.t -> Addr.t -> len:int -> Bytes.t option
(** Lock-free read (§3): an optimized single-object read-only transaction
    — normally a single one-sided RDMA read with no commit phase. [None]
    if the object is unreachable or freed. *)

val create_region : ?locality:int -> State.t -> int option
(** Allocate a fresh region through the CM's two-phase protocol. The
    [locality] hint co-locates the new region's replicas with an existing
    region's (the mechanism behind TPC-C's co-partitioning). Returns the
    region id. *)
