(** Global addresses: a region identifier plus the byte offset of the
    object's header within the region (§3). *)

type t = { region : int; offset : int }

val make : region:int -> offset:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
