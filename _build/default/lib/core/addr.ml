(* Global addresses: a region identifier plus a byte offset of the object's
   header within the region. *)

type t = { region : int; offset : int }

let make ~region ~offset = { region; offset }

let compare a b =
  let c = Int.compare a.region b.region in
  if c <> 0 then c else Int.compare a.offset b.offset

let equal a b = a.region = b.region && a.offset = b.offset

let hash t = Hashtbl.hash (t.region, t.offset)

let pp ppf t = Fmt.pf ppf "r%d+%#x" t.region t.offset

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
