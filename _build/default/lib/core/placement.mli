(** Replica selection for regions (§3): balance region counts across
    machines subject to capacity, keep every replica of a region in a
    distinct failure domain, and honour application locality constraints by
    co-locating with a target region's replicas. *)

type constraints = {
  members : int list;
  domain_of : int -> int;
  load_of : int -> int;
  capacity_of : int -> int;
  replication : int;
}

val choose : constraints -> ?colocate_with:int * int list -> unit -> (int * int list) option
(** Primary and backups for a fresh region; [colocate_with] prefers exactly
    the target's (primary, backups) — TPC-C's co-partitioning. [None] when
    the constraints cannot be met. *)

val choose_replacements : constraints -> survivors:int list -> needed:int -> int list option
(** Replacement backups avoiding the survivors' machines and failure
    domains. *)

val domains_distinct : constraints -> int list -> bool
