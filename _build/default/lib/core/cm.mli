
(** The configuration manager (§3, §5.2).

    The CM allocates regions (a centralized two-phase prepare/commit that
    enforces failure-domain, capacity and locality constraints) and drives
    the seven-step reconfiguration protocol — probe, Zookeeper CAS, remap,
    NEW-CONFIG, ACK collection, NEW-CONFIG-COMMIT. The coordination service
    is touched exactly once per configuration change (vertical Paxos). *)

(** {1 Region allocation} *)

val handle_alloc_region :
  State.t -> reply:(bytes:int -> Wire.message -> unit) -> locality:int option -> unit

val handle_prepare_region :
  State.t -> reply:(bytes:int -> Wire.message -> unit) -> Wire.region_info -> unit

val handle_commit_region : State.t -> Wire.region_info -> unit
val handle_fetch_mapping : State.t -> reply:(bytes:int -> Wire.message -> unit) -> rid:int -> unit

(** {1 Reconfiguration} *)

type probe_result = {
  pr_machine : int;
  pr_last_drained : int;
  pr_replicas : (int * State.role) list;
  pr_infos : (int * int * int) list;
}

val probe : State.t -> targets:int list -> probe_result list
(** §5.2 step 2: one-sided RDMA reads of every candidate's probe word
    (including LastDrained); non-responders are excluded. *)

val remap :
  State.t -> State.cm_state -> members:int list -> new_id:int -> (int * int) list * int list
(** §5.2 step 4: promote surviving backups over failed primaries and
    re-replicate to f+1. Returns the fresh [(machine, region)] assignments
    (which need bulk data recovery) and the regions that lost every
    replica. *)

val handle_suspicion : State.t -> int list -> unit
(** Entry point for suspicions (lease expiries, failed probes, SUSPECT
    messages). Runs the backup-CM election dance when the CM itself is the
    suspect, then drives {!attempt_reconfig}. *)

val attempt_reconfig : State.t -> unit
(** The reconfiguration driver; must run in a process on this machine. *)

(** {1 Recovery bookkeeping at the CM} *)

val on_regions_active : State.t -> src:int -> unit
(** Collect REGIONS-ACTIVE; broadcast ALL-REGIONS-ACTIVE when every member
    reported (§5.4). *)

val on_region_recovered : State.t -> rid:int -> unit
