(* Object memory operations on region replicas. *)

let header (r : State.replica) ~off = Obj_layout.get r.mem ~off

let read_object (r : State.replica) ~off ~len =
  (header r ~off, Obj_layout.read_data r.mem ~off ~len)

(* Attempt to lock an object at the version the transaction observed
   (LOCK-record processing, §4 step 1). *)
let try_lock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.is_locked h then false
  else if Obj_layout.version h <> w.version then false
  else
    Obj_layout.cas r.mem ~off ~expected:h ~desired:(Obj_layout.with_locked h true)

let unlock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.is_locked h && Obj_layout.version h = w.version then
    Obj_layout.set r.mem ~off (Obj_layout.with_locked h false)

(* Apply a committed write: install the new value, bump the version past
   the one observed at read time, apply allocation-bit changes, clear the
   lock. Used by COMMIT-PRIMARY processing at primaries and by truncation
   at backups (§4 steps 4-5). Idempotent: a replica that already holds a
   version beyond [w.version] is left untouched. *)
let apply_write (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  let new_version = w.version + 1 in
  if Obj_layout.version h < new_version then begin
    (* Any committed write implies the object was allocated when written:
       the allocation bit must come from the write, never be inherited from
       the local header — a promoted backup can apply a later write before
       (instead of) the object's creating transaction, and inheriting would
       leave a live object marked free forever. *)
    let allocated =
      match w.alloc_op with
      | Wire.Alloc_set | Wire.Alloc_none -> true
      | Wire.Alloc_clear -> false
    in
    Obj_layout.set r.mem ~off
      (Obj_layout.make ~locked:false ~allocated ~version:new_version);
    Obj_layout.write_data r.mem ~off w.value;
    true
  end
  else
    (* already applied (recovery raced normal processing): leave the header
       alone — any lock at a newer version belongs to another transaction *)
    false

(* Recovery locking (§5.3 step 4): lock the object if it is still at the
   version the recovering transaction observed. Returns true when the
   transaction holds the lock afterwards (newly taken, or taken earlier by
   normal LOCK processing — both belong to this transaction). *)
let recovery_lock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.version h <> w.version then false
  else if Obj_layout.is_locked h then true
  else begin
    Obj_layout.set r.mem ~off (Obj_layout.with_locked h true);
    true
  end

let validate_version (r : State.replica) ~off ~version =
  let h = header r ~off in
  (not (Obj_layout.is_locked h)) && Obj_layout.version h = version
