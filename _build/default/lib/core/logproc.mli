(** Receiver-side processing of transaction-log records (§4): LOCK
    (version-checked lock acquisition + reply), COMMIT-PRIMARY (apply in
    place), COMMIT-BACKUP (retain; applied at truncation), ABORT (release
    exactly the locks held), truncation piggybacks, and the
    recovering-transaction evidence diversion of §5.3. *)

val is_recovering : State.t -> Txid.t -> regions_written:int list -> bool
(** §5.3 step 3, receiver side: the coordinator left the configuration or
    a written region changed replicas after the transaction's start
    configuration. *)

val regions_of_record : Wire.log_record -> int list

val record_evidence : State.t -> Txid.t -> Wire.log_record -> unit
(** Merge a record into the machine's recovering-transaction evidence. *)

val apply_truncation : State.t -> Ringlog.t -> Txid.t -> unit
(** Backups apply buffered updates at truncation; deferred while the
    transaction still has unprocessed records in the log. *)

val process_entry : State.t -> Ringlog.t -> Ringlog.entry -> unit

val attach : State.t -> Ringlog.t -> unit
(** Install the per-entry processing trigger on an incoming log. *)
