lib/core/recovery.mli: State Txid Wire
