lib/core/params.mli: Farm_net Farm_sim Time
