lib/core/state.ml: Array Bytes Config Cpu Engine Farm_coord Farm_net Farm_nvram Farm_sim Hashtbl Ivar Params Printf Proc Ringlog Rng Stats Time Txid Wire
