lib/core/api.ml: Addr Array Commit Comms Config Farm_sim Hashtbl Proc Rng State Time Txn Wire
