lib/core/ringlog.ml: Engine Farm_sim Hashtbl List Time Txid Wire
