lib/core/payloads.ml: Addr List Wire
