lib/core/allocmgr.ml: Addr Comms Farm_sim Hashtbl List Obj_layout Params Proc State Wire
