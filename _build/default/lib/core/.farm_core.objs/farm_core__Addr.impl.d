lib/core/addr.ml: Fmt Hashtbl Int Map
