lib/core/cm.mli: State Wire
