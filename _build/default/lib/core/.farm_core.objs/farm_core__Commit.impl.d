lib/core/commit.ml: Addr Comms Cpu Farm_net Farm_sim Hashtbl Ivar List Logio Obj_layout Objmem Params Proc Ringlog State Stats Time Txid Txn Wire
