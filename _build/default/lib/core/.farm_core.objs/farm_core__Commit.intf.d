lib/core/commit.mli: Addr Farm_sim Ivar State Txid Txn
