lib/core/obj_layout.ml: Bytes Int64
