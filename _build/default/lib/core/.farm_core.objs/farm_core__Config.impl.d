lib/core/config.ml: Array Fmt Int List Txid
