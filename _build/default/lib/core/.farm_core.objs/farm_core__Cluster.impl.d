lib/core/cluster.ml: Array Comms Config Cpu Engine Farm_coord Farm_net Farm_nvram Farm_sim Fun Hashtbl List Membership Node Params Proc Recovery Ringlog Rng State Stats String Time Wire
