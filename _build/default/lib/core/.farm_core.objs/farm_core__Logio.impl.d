lib/core/logio.ml: Config Farm_net Farm_sim Hashtbl List Params Proc Ringlog State Time Wire
