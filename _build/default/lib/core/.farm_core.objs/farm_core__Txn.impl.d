lib/core/txn.ml: Addr Allocmgr Bytes Comms Config Cpu Farm_net Farm_sim Fmt Hashtbl List Obj_layout Objmem Params Proc Rng State Stats Time Wire
