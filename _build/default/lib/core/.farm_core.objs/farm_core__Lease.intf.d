lib/core/lease.mli: Farm_sim State Time Wire
