lib/core/config.mli: Format Txid
