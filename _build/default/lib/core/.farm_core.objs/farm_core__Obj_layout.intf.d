lib/core/obj_layout.mli: Bytes
