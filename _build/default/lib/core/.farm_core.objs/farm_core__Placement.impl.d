lib/core/placement.ml: Int List
