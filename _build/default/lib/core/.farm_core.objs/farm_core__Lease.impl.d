lib/core/lease.ml: Comms Config Cpu Farm_sim Hashtbl List Option Params Proc Rng State Time Wire
