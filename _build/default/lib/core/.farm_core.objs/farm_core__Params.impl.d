lib/core/params.ml: Farm_net Farm_sim Time
