lib/core/objmem.mli: Bytes State Wire
