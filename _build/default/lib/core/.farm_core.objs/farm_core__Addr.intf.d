lib/core/addr.mli: Format Hashtbl Map
