lib/core/logproc.mli: Ringlog State Txid Wire
