lib/core/datarec.ml: Allocmgr Bytes Comms Config Cpu Farm_net Farm_sim Hashtbl List Obj_layout Params Proc Rng State Time Wire
