lib/core/allocmgr.mli: Addr State
