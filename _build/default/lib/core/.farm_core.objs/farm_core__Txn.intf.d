lib/core/txn.mli: Addr Bytes Farm_sim Format State Time Wire
