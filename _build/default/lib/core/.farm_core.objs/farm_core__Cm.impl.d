lib/core/cm.ml: Comms Config Cpu Engine Farm_coord Farm_net Farm_sim Hashtbl Ivar List Option Params Placement Printf Proc State Time Wire
