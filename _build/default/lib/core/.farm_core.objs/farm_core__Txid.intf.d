lib/core/txid.mli: Format Hashtbl Set
