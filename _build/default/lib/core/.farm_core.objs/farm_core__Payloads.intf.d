lib/core/payloads.mli: Wire
