lib/core/txid.ml: Fmt Hashtbl Int Set
