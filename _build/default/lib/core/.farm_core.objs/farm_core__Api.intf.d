lib/core/api.mli: Addr Bytes State Txn
