lib/core/logio.mli: Fabric Farm_net State Wire
