lib/core/membership.ml: Allocmgr Comms Config Hashtbl List State Wire
