lib/core/cluster.mli: Config Engine Farm_coord Farm_net Farm_sim Params Rng State Stats Time Wire
