lib/core/comms.mli: Fabric Farm_net Farm_sim State Time Wire
