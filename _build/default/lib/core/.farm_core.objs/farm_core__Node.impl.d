lib/core/node.ml: Addr Allocmgr Cm Comms Config Cpu Datarec Farm_net Farm_sim Hashtbl Ivar Lease List Logio Logproc Membership Objmem Params Proc Recovery State Time Txid Wire
