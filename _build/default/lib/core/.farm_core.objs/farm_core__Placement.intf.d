lib/core/placement.mli:
