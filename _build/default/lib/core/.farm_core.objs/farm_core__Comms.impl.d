lib/core/comms.ml: Config Fabric Farm_net Farm_sim List State Wire
