lib/core/node.mli: State Wire
