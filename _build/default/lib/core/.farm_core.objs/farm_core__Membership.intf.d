lib/core/membership.mli: Config State Wire
