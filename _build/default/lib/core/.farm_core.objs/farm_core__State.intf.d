lib/core/state.mli: Bytes Config Cpu Engine Farm_coord Farm_net Farm_nvram Farm_sim Hashtbl Ivar Params Proc Ringlog Rng Stats Time Txid Wire
