lib/core/wire.ml: Addr Array Bytes Config Fmt List Txid
