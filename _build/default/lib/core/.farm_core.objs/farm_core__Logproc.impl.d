lib/core/logproc.ml: Addr Allocmgr Comms Config Cpu Farm_sim Fun Hashtbl List Objmem Params Payloads Proc Ringlog State Time Txid Wire
