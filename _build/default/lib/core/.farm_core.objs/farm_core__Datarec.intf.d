lib/core/datarec.mli: Bytes State
