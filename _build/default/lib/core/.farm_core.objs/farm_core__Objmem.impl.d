lib/core/objmem.ml: Addr Obj_layout State Wire
