lib/core/ringlog.mli: Engine Farm_sim Txid Wire
