lib/core/recovery.ml: Addr Allocmgr Comms Config Cpu Farm_sim Fun Hashtbl Ivar List Logproc Objmem Option Params Payloads Proc Ringlog State Stats Time Txid Txn Wire
