(** The FaRM object allocator (§3, §5.5).

    Regions are split into blocks used as slabs for small objects (slot
    sizes are powers of two). Block headers — the object size used in a
    block — are replicated to the backups when a block is carved, because
    data recovery needs them; slab free lists live only at the primary and
    are rebuilt by a paced scan of the region's allocation bits after a
    promotion. Allocations are tentative until commit sets the allocation
    bit, so crashes and aborts leak nothing. *)

val slot_size : int -> int
(** Slot (header + data, next power of two, >= 16) for a data size. *)

val max_data_size : slot:int -> int
val blocks_per_region : State.t -> int

val push_free : State.replica -> slot:int -> off:int -> unit
(** Idempotent free-list push: the membership mirror guarantees an offset
    is listed at most once even when an abort-return races the recovery
    scan — handing one slot to two transactions corrupts whichever commits
    second. *)

val alloc_obj_local : State.t -> State.replica -> size:int -> (Addr.t * int) option
(** Pop a free slot (carving a fresh block when empty); returns the address
    and current version (the LOCK CAS target). Works even while free lists
    are being rebuilt — every listed offset is individually sound. [None]
    when the region is full. *)

val release_slot : State.t -> State.replica -> off:int -> unit
(** Return a slot (committed free, or abort-return via FREE hint). *)

val alloc_block : State.t -> State.replica -> slot:int -> bool
(** Carve a fresh block and replicate its header to the backups. *)

val recover_free_lists : State.t -> State.replica -> on_done:(unit -> unit) -> unit
(** §5.5: rebuild the slab free lists on a new primary by scanning
    allocation bits, [alloc_scan_batch] objects every
    [alloc_scan_interval], after ALL-REGIONS-ACTIVE. *)

val sync_block_headers : State.t -> State.replica -> unit
(** A new primary resends block headers to all backups right after
    NEW-CONFIG-COMMIT (the old primary may have died mid-replication). *)
