(** Merging of lock payloads across a transaction's records. A machine can
    hold different payloads for one transaction — as primary of one written
    region and backup of another — so recovery evidence must union the
    write items rather than keep whichever record it examined first; losing
    items leaks locks and loses committed writes at recovery time. *)

val merge_payloads : Wire.lock_payload -> Wire.lock_payload -> Wire.lock_payload
