(** Object memory operations on region replicas: version-checked locking
    (LOCK processing), exact-lock release, idempotent committed-write
    application, recovery locking, and validation reads (§4, §5.3). *)

val header : State.replica -> off:int -> int64
val read_object : State.replica -> off:int -> len:int -> int64 * Bytes.t

val try_lock : State.replica -> Wire.write_item -> bool
(** Lock iff unlocked and still at the version the transaction observed. *)

val unlock : State.replica -> Wire.write_item -> unit
(** Release only a lock taken at this write's version — callers must own
    it (see [State.locks_held]). *)

val apply_write : State.replica -> Wire.write_item -> bool
(** Install value, version+1, allocation-bit change, unlocked. Idempotent:
    returns false (and leaves the header alone) when the replica already
    advanced past this write. A committed write always implies the object
    is allocated, so the bit is never inherited from the local header. *)

val recovery_lock : State.replica -> Wire.write_item -> bool
(** §5.3 step 4: lock if still at the observed version; true when this
    transaction holds the lock afterwards. *)

val validate_version : State.replica -> off:int -> version:int -> bool
