open Farm_sim

(* The FaRM allocator (§3, §5.5).

   Regions are split into blocks used as slabs for small objects. The block
   header (the object size used in the block) is replicated to backups when
   a block is allocated, because it is needed for data recovery; slab free
   lists are kept only at the primary and rebuilt by scanning the region
   after a failure, paced to limit impact on the foreground. *)

(* Slot size for a data payload: header plus data, rounded up to the next
   power of two, minimum 16 bytes. *)
let slot_size data_size =
  let need = Obj_layout.header_size + data_size in
  let s = ref 16 in
  while !s < need do
    s := !s * 2
  done;
  !s

let max_data_size ~slot = slot - Obj_layout.header_size

let blocks_per_region st = st.State.params.Params.region_size / st.State.params.Params.block_size

let free_list (r : State.replica) slot =
  match Hashtbl.find_opt r.free_lists slot with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace r.free_lists slot l;
      l

(* Push an offset onto its slab's free list, at most once: the [free_set]
   membership mirror makes double frees (an abort-return racing the
   recovery scan, a duplicated hint) harmless. Handing one slot to two
   transactions corrupts whichever commits second. *)
let push_free (r : State.replica) ~slot ~off =
  if not (Hashtbl.mem r.free_set off) then begin
    Hashtbl.replace r.free_set off ();
    let l = free_list r slot in
    l := off :: !l
  end

(* Carve a fresh block into a slab of [slot]-sized cells and replicate its
   header to the backups. Returns false when the region is full. *)
let alloc_block st (r : State.replica) ~slot =
  if r.next_free_block >= blocks_per_region st then false
  else begin
    let block = r.next_free_block in
    r.next_free_block <- block + 1;
    Hashtbl.replace r.block_headers block slot;
    let base = block * st.State.params.Params.block_size in
    let count = st.State.params.Params.block_size / slot in
    for i = count - 1 downto 0 do
      push_free r ~slot ~off:(base + (i * slot))
    done;
    (match State.region_info st r.rid with
    | Some info ->
        List.iter
          (fun b ->
            Comms.send st ~dst:b (Wire.Block_header { rid = r.rid; block; obj_size = slot }))
          info.Wire.backups
    | None -> ());
    true
  end

(* Allocate a slot at the primary. The allocation is tentative: the
   object's allocation bit is only set when the transaction commits, so a
   crash before commit simply loses the tentative slot and the recovery
   scan reclaims it. Returns the address and the slot's current version
   (the CAS target for the eventual LOCK record).

   Allocation works even while the free lists are being rebuilt after a
   promotion (§5.5): every pushed offset is individually sound (verified by
   the scan, returned by an abort, or carved from a fresh block), and the
   object-version CAS at LOCK time resolves the rare double-handout races
   with pre-failure tentative holders. *)
let alloc_obj_local st (r : State.replica) ~size =
  let slot = slot_size size in
  let l = free_list r slot in
  let rec pop () =
    match !l with
    | off :: rest ->
        l := rest;
        Hashtbl.remove r.free_set off;
        let h = Obj_layout.get r.mem ~off in
        if Obj_layout.is_allocated h || Obj_layout.is_locked h then pop ()
        else Some (Addr.make ~region:r.rid ~offset:off, Obj_layout.version h)
    | [] -> if alloc_block st r ~slot then pop () else None
  in
  pop ()

(* Return a slot to the free list (when a committed free is applied at the
   primary, or when an aborted allocation is returned). [push_free]'s
   dedup makes this safe even while the recovery scan runs. *)
let release_slot st (r : State.replica) ~off =
  let block = off / st.State.params.Params.block_size in
  match Hashtbl.find_opt r.block_headers block with
  | None -> ()
  | Some slot -> push_free r ~slot ~off

(* Allocator state recovery (§5.5): a new primary rebuilds the slab free
   lists by scanning the region's objects, [alloc_scan_batch] objects every
   [alloc_scan_interval], starting only after ALL-REGIONS-ACTIVE. *)
let recover_free_lists st (r : State.replica) ~on_done =
  r.free_lists_valid <- false;
  Hashtbl.reset r.free_lists;
  Hashtbl.reset r.free_set;
  (* next_free_block must cover every block ever carved *)
  r.next_free_block <- Hashtbl.fold (fun b _ acc -> max acc (b + 1)) r.block_headers 0;
  let blocks = List.sort compare (Hashtbl.fold (fun b s acc -> (b, s) :: acc) r.block_headers []) in
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      let scanned = ref 0 in
      let pace () =
        incr scanned;
        if !scanned mod st.State.params.Params.alloc_scan_batch = 0 then
          Proc.sleep st.State.params.Params.alloc_scan_interval
      in
      List.iter
        (fun (block, slot) ->
          let base = block * st.State.params.Params.block_size in
          let count = st.State.params.Params.block_size / slot in
          for i = 0 to count - 1 do
            let off = base + (i * slot) in
            let h = Obj_layout.get r.mem ~off in
            if not (Obj_layout.is_allocated h || Obj_layout.is_locked h) then
              push_free r ~slot ~off;
            pace ()
          done)
        blocks;
      r.free_lists_valid <- true;
      on_done ())

(* A new primary sends its block headers to all backups immediately after
   NEW-CONFIG-COMMIT, avoiding inconsistencies when the old primary failed
   while replicating a header (§5.5). *)
let sync_block_headers st (r : State.replica) =
  match State.region_info st r.rid with
  | None -> ()
  | Some info ->
      let headers = Hashtbl.fold (fun b s acc -> (b, s) :: acc) r.block_headers [] in
      List.iter
        (fun b -> Comms.send st ~dst:b (Wire.Block_headers_sync { rid = r.rid; headers }))
        info.Wire.backups
