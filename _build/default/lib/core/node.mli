(** Message dispatch and machine startup: the per-machine event loop of
    Figure 3, wiring the fabric's receive path to the protocol modules.
    Lease traffic takes a dedicated fast path (§5.1); everything else is
    charged the RPC receive cost on the shared worker threads before
    dispatching. *)

val dispatch :
  State.t -> src:int -> reply:(bytes:int -> Wire.message -> unit) -> Wire.message -> unit

val on_message :
  State.t -> src:int -> reply:(bytes:int -> Wire.message -> unit) -> Wire.message -> unit

val start : State.t -> unit
(** Attach log processing to every incoming ring log, start the truncation
    flusher and the lease manager, install the suspicion and fabric
    handlers, and initialize CM state if this machine is the CM. *)
