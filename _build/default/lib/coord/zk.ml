open Farm_sim

type 'v replica = { index : int; mutable alive : bool; mutable seq : int; mutable value : 'v option }

type 'v t = {
  engine : Engine.t;
  rng : Rng.t;
  replicas : 'v replica array;
  op_latency : Time.t;
}

type error = [ `No_quorum | `Conflict of int ]

let create ?(op_latency = Time.us 300) engine ~rng ~replicas:n =
  if n < 1 then invalid_arg "Zk.create: need at least one replica";
  {
    engine;
    rng;
    replicas = Array.init n (fun index -> { index; alive = true; seq = 0; value = None });
    op_latency;
  }

let replica_count t = Array.length t.replicas

let alive_replicas t =
  Array.fold_left (fun acc r -> if r.alive then acc + 1 else acc) 0 t.replicas

let has_quorum t = alive_replicas t * 2 > Array.length t.replicas

let kill_replica t i = t.replicas.(i).alive <- false
let revive_replica t i = t.replicas.(i).alive <- true

(* Install an initial value without the simulated round trip; used by the
   cluster harness at bootstrap, before the engine runs. *)
let bootstrap t value =
  Array.iter
    (fun r ->
      r.seq <- 1;
      r.value <- Some value)
    t.replicas;
  1

(* Simulated round-trip to the ensemble: a couple of fabric RTTs plus
   quorum-commit work, with small jitter. *)
let round_trip t =
  Proc.sleep (Time.add t.op_latency (Time.ns (Rng.int t.rng 100_000)))

(* Quorum state: the highest sequence number among a majority. Because the
   simulator serializes each operation's apply instant, writes reach all
   alive replicas synchronously, so any alive replica holds the latest
   state; we still read via the maximum to stay honest about semantics. *)
let current t =
  Array.fold_left
    (fun acc r ->
      if not r.alive then acc
      else
        match (acc, r.value) with
        | Some (seq, _), Some v when r.seq > seq -> Some (r.seq, v)
        | None, Some v -> Some (r.seq, v)
        | acc, _ -> acc)
    None t.replicas

(* Synchronous (no simulated round trip) access for the cluster harness:
   booting machines after a full power failure happens outside any machine
   process. *)
let bootstrap_read t = if has_quorum t then current t else None

let bootstrap_cas t ~expected_seq value =
  match bootstrap_read t with
  | Some (seq, _) when seq <> expected_seq -> Error (`Conflict seq)
  | None when expected_seq <> 0 -> Error `No_quorum
  | _ ->
      let seq' = expected_seq + 1 in
      Array.iter
        (fun r ->
          if r.alive then begin
            r.seq <- seq';
            r.value <- Some value
          end)
        t.replicas;
      Ok seq'

let read t : (int * 'v) option =
  round_trip t;
  if not (has_quorum t) then None else current t

(* Znode-style atomic compare-and-swap keyed on the sequence number: only
   one concurrent proposer can move seq -> seq+1 (vertical Paxos's
   configuration-change step). *)
let compare_and_swap t ~expected_seq value : (int, error) result =
  round_trip t;
  if not (has_quorum t) then Error `No_quorum
  else begin
    let seq = match current t with None -> 0 | Some (s, _) -> s in
    if seq <> expected_seq then Error (`Conflict seq)
    else begin
      let seq' = seq + 1 in
      Array.iter
        (fun r ->
          if r.alive then begin
            r.seq <- seq';
            r.value <- Some value
          end)
        t.replicas;
      Ok seq'
    end
  end
