open Farm_sim

(** Zookeeper-equivalent coordination service.

    FaRM uses Zookeeper purely as the vertical-Paxos configuration store:
    one atomic compare-and-swap per configuration change, keyed on a znode
    sequence number (§5.2 step 3). This module provides exactly that — a
    majority-quorum replicated register with CAS — over simulated replicas
    that can be killed to test loss of quorum. It is deliberately not used
    for lease management, failure detection, or recovery coordination,
    matching the paper. *)

type 'v t

type error = [ `No_quorum | `Conflict of int ]

val create : ?op_latency:Time.t -> Engine.t -> rng:Rng.t -> replicas:int -> 'v t

val replica_count : 'v t -> int
val alive_replicas : 'v t -> int
val has_quorum : 'v t -> bool
val kill_replica : 'v t -> int -> unit
val revive_replica : 'v t -> int -> unit

val bootstrap_read : 'v t -> (int * 'v) option
(** Synchronous quorum read for the harness (no process context). *)

val bootstrap_cas : 'v t -> expected_seq:int -> 'v -> (int, error) result
(** Synchronous CAS for the harness (full-cluster restart). *)

val bootstrap : 'v t -> 'v -> int
(** Install an initial value synchronously (no simulated round trip);
    returns the initial sequence number. For harness bootstrap only. *)

val read : 'v t -> (int * 'v) option
(** Blocking quorum read of [(seq, value)]; [None] when no value has been
    stored yet or quorum is lost. Must run inside a process. *)

val compare_and_swap : 'v t -> expected_seq:int -> 'v -> (int, error) result
(** Atomically install [value] if the stored sequence number still equals
    [expected_seq]; returns the new sequence number. At most one of any set
    of concurrent proposers with the same [expected_seq] succeeds. *)
