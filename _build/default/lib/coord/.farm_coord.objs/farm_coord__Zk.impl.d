lib/coord/zk.ml: Array Engine Farm_sim Proc Rng Time
