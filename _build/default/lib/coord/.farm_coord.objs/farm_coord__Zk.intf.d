lib/coord/zk.mli: Engine Farm_sim Rng Time
