open Farm_core

(** The FaRM hash table ([16]; all unordered indexes of §6.2).

    A fixed array of bucket objects, each holding [slots] fixed-size
    entries plus an overflow pointer to a chained bucket. Point lookups
    normally touch a single bucket object — one one-sided RDMA read on the
    lock-free path. Partitioned tables ([partitions] > 1) keep a key's
    bucket in its partition's regions; TPC-C uses this to co-partition its
    indexes by warehouse. *)

type t = {
  buckets : Addr.t array;
  regions : int array;
  ksize : int;
  vsize : int;
  slots : int;
  partitions : int;
  partition_of : Bytes.t -> int;
}

val create :
  State.t ->
  thread:int ->
  regions:int array ->
  buckets:int ->
  ksize:int ->
  vsize:int ->
  ?slots:int ->
  ?partitions:int ->
  ?partition_of:(Bytes.t -> int) ->
  unit ->
  t
(** Allocate all bucket objects (in batched transactions from the calling
    machine). Keys shorter than [ksize] are zero-padded; values are
    truncated/padded to [vsize]. *)

val bucket_of : t -> Bytes.t -> int
val bucket_data_size : t -> int
val entry_size : t -> int

(** {1 Transactional operations} *)

val lookup : Txn.t -> t -> Bytes.t -> Bytes.t option
val insert : Txn.t -> t -> Bytes.t -> Bytes.t -> unit
(** Insert or update; allocates an overflow bucket (co-located with the
    head bucket) when the chain is full. *)

val delete : Txn.t -> t -> Bytes.t -> bool

(** {1 Lock-free lookups (§3)} *)

val lookup_lockfree : State.t -> t -> Bytes.t -> Bytes.t option
(** Optimized single-object read-only transaction: one RDMA read per
    (rarely chained) bucket, no commit phase. *)
