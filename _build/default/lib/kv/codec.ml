open Farm_core

(* Byte-level encoding helpers shared by the FaRM data structures. *)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

let get_int b off = Int64.to_int (get_i64 b off)
let set_int b off v = set_i64 b off (Int64.of_int v)

(* Addresses packed into one word: region in the high 31 bits, offset in
   the low 32. Region ids start at 1, so 0 encodes "null". *)
let null_addr = 0

let encode_addr (a : Addr.t) = (a.Addr.region lsl 32) lor (a.Addr.offset land 0xFFFFFFFF)

let decode_addr v =
  if v = 0 then None
  else Some (Addr.make ~region:(v lsr 32) ~offset:(v land 0xFFFFFFFF))

let get_addr b off = decode_addr (get_int b off)

let set_addr b off = function
  | None -> set_int b off null_addr
  | Some a -> set_int b off (encode_addr a)

(* 64-bit FNV-1a over a byte key; used for hash-table bucket selection. *)
let fnv1a (key : Bytes.t) =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length key - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get key i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)
