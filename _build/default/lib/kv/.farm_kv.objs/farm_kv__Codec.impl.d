lib/kv/codec.ml: Addr Bytes Char Farm_core Int64
