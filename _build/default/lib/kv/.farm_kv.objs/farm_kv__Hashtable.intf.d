lib/kv/hashtable.mli: Addr Bytes Farm_core State Txn
