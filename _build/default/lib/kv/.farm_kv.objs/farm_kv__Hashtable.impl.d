lib/kv/hashtable.ml: Addr Api Array Bytes Codec Farm_core Fmt Txn
