lib/kv/btree.ml: Addr Api Array Bytes Codec Farm_core Fmt Hashtbl List State Txn
