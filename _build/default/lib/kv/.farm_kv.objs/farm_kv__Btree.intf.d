lib/kv/btree.mli: Addr Bytes Farm_core Hashtbl State Txn
