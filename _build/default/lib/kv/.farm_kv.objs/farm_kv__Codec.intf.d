lib/kv/codec.mli: Addr Bytes Farm_core
