open Farm_core

(** The FaRM B-tree (§6.2): integer keys, word-sized values, fence keys for
    consistent traversals (as in Minuet), and per-machine caching of
    internal nodes so a lookup usually costs a single RDMA read.

    Mutations run inside the enclosing FaRM transaction with real reads of
    every touched node, so OCC makes structure modifications strictly
    serializable. Read-only traversals may use cached internal nodes; the
    leaf's fence keys catch stale routes and trigger invalidation + retry.
    Interior nodes are never freed (deletes do not rebalance), so stale
    cached pointers always reach a valid node. *)

type t = {
  root_ptr : Addr.t;
  regions : int array;
  fanout : int;
  cache : (int * int, Bytes.t) Hashtbl.t;
}

type node = {
  leaf : bool;
  lo : int;  (** inclusive fence *)
  hi : int;  (** exclusive fence *)
  keys : int array;
  slots : int array;
  next : Addr.t option;
}

val create : State.t -> thread:int -> regions:int array -> ?fanout:int -> unit -> t

val node_data_size : t -> int
val parse : t -> Bytes.t -> node
val serialize : t -> node -> Bytes.t

(** {1 Transactional operations} *)

val find : Txn.t -> t -> int -> int option
val insert : Txn.t -> t -> int -> int -> unit
val delete : Txn.t -> t -> int -> bool

val range : Txn.t -> t -> lo:int -> hi:int -> (int * int) list
(** All [(key, value)] pairs with [lo <= key <= hi], in key order,
    following the leaf chain. *)

val check_invariants : Txn.t -> t -> string list * int
(** Walk the whole tree inside the transaction: verify fence keys, key
    ordering, internal arity, and the leaf chain. Returns (violations,
    total keys); used by the test-suite. *)

(** {1 Cached lock-free lookups} *)

val lookup_lockfree : State.t -> t -> int -> int option
(** Navigate cached internal nodes, read the leaf with one RDMA read,
    check its fences; falls back to a transactional lookup (refreshing the
    cache) on a stale route. *)

val invalidate : State.t -> t -> unit
(** Drop this machine's cached internal nodes. *)
