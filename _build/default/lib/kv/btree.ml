open Farm_core

(* The FaRM B-tree (§6.2): integer keys, word-sized values (typically an
   encoded address), fence keys for consistent traversals (as in Minuet),
   and per-machine caching of internal nodes so that a lookup usually needs
   a single RDMA read (the leaf).

   Writes (inserts, deletes, splits) run entirely inside the enclosing FaRM
   transaction with real reads of every node they touch, so OCC versioning
   makes structure modifications strictly serializable. Read-only
   traversals may navigate via cached internal nodes; the leaf's fence keys
   are checked and a mismatch (a split raced the cache) invalidates the
   cache and retries with real reads. Interior nodes are never freed
   (deletes do not rebalance), so stale cached pointers always reach a
   valid node.

   Node layout (data bytes):
     0   kind (0 = leaf, 1 = internal)
     8   nkeys
     16  fence_lo (inclusive)       24  fence_hi (exclusive)
     32  keys[fanout]
     internal: 32+8F children[fanout+1]
     leaf:     32+8F values[fanout], then next-leaf address            *)

type t = {
  root_ptr : Addr.t;  (* object holding the encoded root address *)
  regions : int array;
  fanout : int;
  cache : (int * int, Bytes.t) Hashtbl.t;  (* (machine, encoded addr) -> node *)
}

type node = {
  leaf : bool;
  lo : int;
  hi : int;
  keys : int array;  (* length nkeys *)
  slots : int array;  (* children (nkeys+1) for internal; values (nkeys) for leaf *)
  next : Addr.t option;  (* leaf chain *)
}

let node_data_size t = 32 + (8 * t.fanout) + (8 * (t.fanout + 1)) + 8

let parse t data =
  let leaf = Codec.get_int data 0 = 0 in
  let n = Codec.get_int data 8 in
  if n < 0 || n > t.fanout + 1 then
    Fmt.failwith "Btree.parse: corrupt node (kind=%d nkeys=%d lo=%d hi=%d)"
      (Codec.get_int data 0) n (Codec.get_int data 16) (Codec.get_int data 24);
  let lo = Codec.get_int data 16 and hi = Codec.get_int data 24 in
  let keys = Array.init n (fun i -> Codec.get_int data (32 + (8 * i))) in
  let base = 32 + (8 * t.fanout) in
  let slots =
    if leaf then Array.init n (fun i -> Codec.get_int data (base + (8 * i)))
    else Array.init (n + 1) (fun i -> Codec.get_int data (base + (8 * i)))
  in
  let next = if leaf then Codec.get_addr data (base + (8 * t.fanout)) else None in
  { leaf; lo; hi; keys; slots; next }

let serialize t (nd : node) =
  let data = Bytes.make (node_data_size t) '\000' in
  Codec.set_int data 0 (if nd.leaf then 0 else 1);
  Codec.set_int data 8 (Array.length nd.keys);
  Codec.set_int data 16 nd.lo;
  Codec.set_int data 24 nd.hi;
  Array.iteri (fun i k -> Codec.set_int data (32 + (8 * i)) k) nd.keys;
  let base = 32 + (8 * t.fanout) in
  Array.iteri (fun i v -> Codec.set_int data (base + (8 * i)) v) nd.slots;
  if nd.leaf then Codec.set_addr data (base + (8 * t.fanout)) nd.next;
  data

let create st ~thread ~regions ?(fanout = 14) () =
  if Array.length regions = 0 then invalid_arg "Btree.create";
  let t =
    {
      root_ptr = Addr.make ~region:0 ~offset:0;
      regions;
      fanout;
      cache = Hashtbl.create 1024;
    }
  in
  let root_ptr =
    match
      Api.run_retry st ~thread (fun tx ->
          let leaf_addr = Txn.alloc tx ~size:(node_data_size t) ~region:regions.(0) () in
          let empty =
            { leaf = true; lo = min_int; hi = max_int; keys = [||]; slots = [||]; next = None }
          in
          Txn.write tx leaf_addr (serialize t empty);
          let rp = Txn.alloc tx ~size:8 ~region:regions.(0) () in
          let b = Bytes.create 8 in
          Codec.set_int b 0 (Codec.encode_addr leaf_addr);
          Txn.write tx rp b;
          rp)
    with
    | Ok rp -> rp
    | Error e -> Fmt.failwith "Btree.create: %a" Txn.pp_abort e
  in
  { t with root_ptr }

let read_root tx t =
  match Codec.get_addr (Txn.read tx t.root_ptr ~len:8) 0 with
  | Some a -> a
  | None -> failwith "Btree: null root"

(* {1 Transactional reads (real reads; populate the cache)} *)

let read_node tx t addr =
  let data = Txn.read tx addr ~len:(node_data_size t) in
  Hashtbl.replace t.cache (tx.Txn.st.State.id, Codec.encode_addr addr) (Bytes.copy data);
  try parse t data
  with Failure msg -> Fmt.failwith "%s at %a" msg Addr.pp addr

let child_for nd key =
  let n = Array.length nd.keys in
  let rec go i = if i < n && key >= nd.keys.(i) then go (i + 1) else i in
  go 0

let rec descend tx t addr key =
  let nd = read_node tx t addr in
  if nd.leaf then (addr, nd)
  else
    match Codec.decode_addr nd.slots.(child_for nd key) with
    | Some child -> descend tx t child key
    | None -> failwith "Btree: null child"

let find tx t key =
  let _, leaf = descend tx t (read_root tx t) key in
  let rec go i =
    if i >= Array.length leaf.keys then None
    else if leaf.keys.(i) = key then Some leaf.slots.(i)
    else go (i + 1)
  in
  go 0

(* {1 Inserts with splits} *)

let array_insert a i v =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then v else a.(j - 1))

(* Returns the promoted separator and new right sibling when the node
   split. *)
let rec insert_at tx t addr key value : (int * Addr.t) option =
  let nd = read_node tx t addr in
  if nd.leaf then begin
    let pos =
      let rec go i =
        if i < Array.length nd.keys && nd.keys.(i) < key then go (i + 1) else i
      in
      go 0
    in
    if pos < Array.length nd.keys && nd.keys.(pos) = key then begin
      (* update in place *)
      let slots = Array.copy nd.slots in
      slots.(pos) <- value;
      Txn.write tx addr (serialize t { nd with slots });
      None
    end
    else begin
      let keys = array_insert nd.keys pos key in
      let slots = array_insert nd.slots pos value in
      if Array.length keys <= t.fanout then begin
        Txn.write tx addr (serialize t { nd with keys; slots });
        None
      end
      else begin
        (* split the leaf; the separator is the right half's first key *)
        let mid = Array.length keys / 2 in
        let sep = keys.(mid) in
        let right_addr = Txn.alloc tx ~size:(node_data_size t) ~near:addr () in
        let right =
          {
            leaf = true;
            lo = sep;
            hi = nd.hi;
            keys = Array.sub keys mid (Array.length keys - mid);
            slots = Array.sub slots mid (Array.length slots - mid);
            next = nd.next;
          }
        in
        let left =
          {
            nd with
            hi = sep;
            keys = Array.sub keys 0 mid;
            slots = Array.sub slots 0 mid;
            next = Some right_addr;
          }
        in
        Txn.write tx right_addr (serialize t right);
        Txn.write tx addr (serialize t left);
        Some (sep, right_addr)
      end
    end
  end
  else begin
    let ci = child_for nd key in
    match Codec.decode_addr nd.slots.(ci) with
    | None -> failwith "Btree: null child"
    | Some child -> (
        match insert_at tx t child key value with
        | None -> None
        | Some (sep, right_addr) ->
            let keys = array_insert nd.keys ci sep in
            let slots = array_insert nd.slots (ci + 1) (Codec.encode_addr right_addr) in
            if Array.length keys <= t.fanout then begin
              Txn.write tx addr (serialize t { nd with keys; slots });
              None
            end
            else begin
              let mid = Array.length keys / 2 in
              let sep' = keys.(mid) in
              let right_addr' = Txn.alloc tx ~size:(node_data_size t) ~near:addr () in
              let right =
                {
                  leaf = false;
                  lo = sep';
                  hi = nd.hi;
                  keys = Array.sub keys (mid + 1) (Array.length keys - mid - 1);
                  slots = Array.sub slots (mid + 1) (Array.length slots - mid - 1);
                  next = None;
                }
              in
              let left =
                {
                  nd with
                  hi = sep';
                  keys = Array.sub keys 0 mid;
                  slots = Array.sub slots 0 (mid + 1);
                }
              in
              Txn.write tx right_addr' (serialize t right);
              Txn.write tx addr (serialize t left);
              Some (sep', right_addr')
            end)
  end

let insert tx t key value =
  let root = read_root tx t in
  match insert_at tx t root key value with
  | None -> ()
  | Some (sep, right_addr) ->
      (* grow the tree: a new root over the two halves *)
      let new_root_addr = Txn.alloc tx ~size:(node_data_size t) ~near:root () in
      let new_root =
        {
          leaf = false;
          lo = min_int;
          hi = max_int;
          keys = [| sep |];
          slots = [| Codec.encode_addr root; Codec.encode_addr right_addr |];
          next = None;
        }
      in
      Txn.write tx new_root_addr (serialize t new_root);
      let b = Bytes.create 8 in
      Codec.set_int b 0 (Codec.encode_addr new_root_addr);
      Txn.write tx t.root_ptr b

(* Delete a key from its leaf (no rebalancing: interior nodes are never
   freed, which keeps stale cached pointers safe). Returns whether the key
   was present. *)
let delete tx t key =
  let addr, leaf = descend tx t (read_root tx t) key in
  let n = Array.length leaf.keys in
  let rec pos i = if i >= n then None else if leaf.keys.(i) = key then Some i else pos (i + 1) in
  match pos 0 with
  | None -> false
  | Some i ->
      let keys = Array.init (n - 1) (fun j -> if j < i then leaf.keys.(j) else leaf.keys.(j + 1)) in
      let slots = Array.init (n - 1) (fun j -> if j < i then leaf.slots.(j) else leaf.slots.(j + 1)) in
      Txn.write tx addr (serialize t { leaf with keys; slots });
      true

(* Range scan over [lo, hi] inclusive, following the leaf chain. *)
let range tx t ~lo ~hi =
  let _, leaf0 = descend tx t (read_root tx t) lo in
  let rec walk (leaf : node) acc =
    let acc = ref acc in
    let overflow = ref false in
    Array.iteri
      (fun i k ->
        if k >= lo && k <= hi then acc := (k, leaf.slots.(i)) :: !acc
        else if k > hi then overflow := true)
      leaf.keys;
    if !overflow then List.rev !acc
    else
      match leaf.next with
      | Some next when leaf.hi <= hi -> walk (read_node tx t next) !acc
      | _ -> List.rev !acc
  in
  walk leaf0 []

(* {1 Structural invariants} — used by the test-suite: walks the whole
   tree inside a transaction and checks fence keys, key ordering, and the
   leaf chain. *)

let check_invariants tx t =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let rec walk addr ~lo ~hi ~depth =
    if depth > 32 then err "tree too deep (cycle?)"
    else begin
      let nd = read_node tx t addr in
      if nd.lo <> lo then err "node %a fence_lo %d <> expected %d" Addr.pp addr nd.lo lo;
      if nd.hi <> hi then err "node %a fence_hi %d <> expected %d" Addr.pp addr nd.hi hi;
      Array.iteri
        (fun i k ->
          if k < lo || k >= hi then err "key %d outside fences at %a" k Addr.pp addr;
          if i > 0 && nd.keys.(i - 1) >= k then err "keys unsorted at %a" Addr.pp addr)
        nd.keys;
      if not nd.leaf then begin
        if Array.length nd.slots <> Array.length nd.keys + 1 then
          err "internal arity mismatch at %a" Addr.pp addr;
        Array.iteri
          (fun i child ->
            let clo = if i = 0 then lo else nd.keys.(i - 1) in
            let chi = if i = Array.length nd.keys then hi else nd.keys.(i) in
            match Codec.decode_addr child with
            | Some c -> walk c ~lo:clo ~hi:chi ~depth:(depth + 1)
            | None -> err "null child at %a" Addr.pp addr)
          nd.slots
      end
    end
  in
  walk (read_root tx t) ~lo:min_int ~hi:max_int ~depth:0;
  (* the leaf chain visits every key in order *)
  let rec leftmost addr =
    let nd = read_node tx t addr in
    if nd.leaf then (addr, nd)
    else
      match Codec.decode_addr nd.slots.(0) with
      | Some c -> leftmost c
      | None -> (addr, nd)
  in
  let _, first = leftmost (read_root tx t) in
  let rec chain (nd : node) prev count =
    let prev =
      Array.fold_left
        (fun prev k ->
          if k <= prev then err "leaf chain unsorted (%d after %d)" k prev;
          k)
        prev nd.keys
    in
    let count = count + Array.length nd.keys in
    match nd.next with
    | Some next when count < 1_000_000 -> chain (read_node tx t next) prev count
    | _ -> count
  in
  let total = chain first min_int 0 in
  (List.rev !errors, total)

(* {1 Cached lookups} *)

let cached_node st t addr = Hashtbl.find_opt t.cache (st.State.id, Codec.encode_addr addr)

let invalidate st t =
  Hashtbl.iter
    (fun (m, a) _ -> if m = st.State.id then Hashtbl.remove t.cache (m, a))
    (Hashtbl.copy t.cache)

(* Lock-free point lookup: navigate cached internal nodes, read the leaf
   with one RDMA read, and check its fence keys; on a miss or fence
   violation, fall back to a transactional lookup that refreshes the
   cache. *)
let lookup_lockfree st t key =
  let fallback () =
    invalidate st t;
    match Api.run_retry st ~thread:0 (fun tx -> find tx t key) with
    | Ok v -> v
    | Error _ -> None
  in
  let root =
    match Api.read_lockfree st t.root_ptr ~len:8 with
    | Some b -> Codec.get_addr b 0
    | None -> None
  in
  match root with
  | None -> fallback ()
  | Some root ->
      let rec go addr depth =
        if depth > 24 then fallback ()
        else
          match cached_node st t addr with
          | Some data ->
              let nd = parse t data in
              if nd.leaf then read_leaf addr
              else (
                match Codec.decode_addr nd.slots.(child_for nd key) with
                | Some child -> go child (depth + 1)
                | None -> fallback ())
          | None -> read_leaf_or_descend addr depth
      and read_leaf addr =
        match Api.read_lockfree st addr ~len:(node_data_size t) with
        | None -> fallback ()
        | Some data ->
            let nd = parse t data in
            if (not nd.leaf) || key < nd.lo || key >= nd.hi then fallback ()
            else begin
              let rec find i =
                if i >= Array.length nd.keys then None
                else if nd.keys.(i) = key then Some nd.slots.(i)
                else find (i + 1)
              in
              find 0
            end
      and read_leaf_or_descend addr depth =
        match Api.read_lockfree st addr ~len:(node_data_size t) with
        | None -> fallback ()
        | Some data ->
            let nd = parse t data in
            if nd.leaf then
              if key < nd.lo || key >= nd.hi then fallback ()
              else begin
                let rec find i =
                  if i >= Array.length nd.keys then None
                  else if nd.keys.(i) = key then Some nd.slots.(i)
                  else find (i + 1)
                in
                find 0
              end
            else begin
              Hashtbl.replace t.cache (st.State.id, Codec.encode_addr addr) data;
              match Codec.decode_addr nd.slots.(child_for nd key) with
              | Some child -> go child (depth + 1)
              | None -> fallback ()
            end
      in
      go root 0
