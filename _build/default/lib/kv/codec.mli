open Farm_core

(** Byte-level encoding helpers shared by the FaRM data structures. *)

val get_i64 : Bytes.t -> int -> int64
val set_i64 : Bytes.t -> int -> int64 -> unit
val get_int : Bytes.t -> int -> int
val set_int : Bytes.t -> int -> int -> unit

(** Addresses packed into one word (region in the high bits, offset in the
    low 32; 0 encodes null). *)

val null_addr : int
val encode_addr : Addr.t -> int
val decode_addr : int -> Addr.t option
val get_addr : Bytes.t -> int -> Addr.t option
val set_addr : Bytes.t -> int -> Addr.t option -> unit

val fnv1a : Bytes.t -> int
(** 64-bit FNV-1a, masked non-negative; bucket selection. *)
