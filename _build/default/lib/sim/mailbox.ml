type 'a t = {
  items : 'a Queue.t;
  waiters : (('a, exn) result -> unit) Queue.t;
}

let create () = { items = Queue.create (); waiters = Queue.create () }

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items

let send t v =
  match Queue.take_opt t.waiters with
  | Some waiter -> waiter (Ok v)
  | None -> Queue.add v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> Proc.suspend (fun resume -> Queue.add resume t.waiters)

let recv_opt t = Queue.take_opt t.items

let drain t =
  let rec loop acc =
    match Queue.take_opt t.items with
    | Some v -> loop (v :: acc)
    | None -> List.rev acc
  in
  loop []
