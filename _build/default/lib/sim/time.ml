type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let to_ns t = t
let to_us_float t = float_of_int t /. 1e3
let to_ms_float t = float_of_int t /. 1e6
let to_s_float t = float_of_int t /. 1e9

let of_us_float f = int_of_float (f *. 1e3)
let of_ms_float f = int_of_float (f *. 1e6)

let add = ( + )
let sub = ( - )
let diff a b = a - b
let max = Stdlib.max
let min = Stdlib.min
let compare = Int.compare
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b

let mul_int t k = t * k
let div_int t k = t / k

let pp ppf t =
  if Stdlib.( >= ) t 1_000_000_000 then Fmt.pf ppf "%.3fs" (to_s_float t)
  else if Stdlib.( >= ) t 1_000_000 then Fmt.pf ppf "%.3fms" (to_ms_float t)
  else if Stdlib.( >= ) t 1_000 then Fmt.pf ppf "%.1fus" (to_us_float t)
  else Fmt.pf ppf "%dns" t
