module Hist = struct
  (* Log-linear histogram: 32 sub-buckets per octave above 32, exact below.
     Worst-case relative error per bucket is ~3%, plenty for latency
     percentiles. *)

  let sub_bits = 5
  let sub = 1 lsl sub_bits
  let nbuckets = 2048

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : int;
    mutable max_v : int;
  }

  let create () =
    { buckets = Array.make nbuckets 0; count = 0; sum = 0.; min_v = max_int; max_v = 0 }

  let msb v =
    (* position of the most significant set bit; v > 0 *)
    let r = ref 0 in
    let v = ref v in
    while !v > 1 do
      incr r;
      v := !v lsr 1
    done;
    !r

  let index v =
    if v < sub then v
    else
      let k = msb v in
      let base = (k - sub_bits + 1) * sub in
      let off = (v lsr (k - sub_bits)) land (sub - 1) in
      let i = base + off in
      if i >= nbuckets then nbuckets - 1 else i

  (* Upper bound of the values mapping to bucket [i]; used as the reported
     percentile value. *)
  let bucket_value i =
    if i < sub then i
    else
      let k = (i / sub) + sub_bits - 1 in
      let off = i land (sub - 1) in
      ((1 lsl k) + ((off + 1) lsl (k - sub_bits))) - 1

  let record t v =
    let v = if v < 0 then 0 else v in
    t.buckets.(index v) <- t.buckets.(index v) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. float_of_int v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
  let min_value t = if t.count = 0 then 0 else t.min_v
  let max_value t = t.max_v

  let percentile t p =
    if t.count = 0 then 0
    else begin
      let target = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      let target = if target < 1 then 1 else target in
      let acc = ref 0 in
      let result = ref t.max_v in
      (try
         for i = 0 to nbuckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= target then begin
             result := bucket_value i;
             raise Exit
           end
         done
       with Exit -> ());
      Stdlib.min !result t.max_v
    end

  let merge ~into src =
    Array.iteri (fun i n -> into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v

  let clear t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_v <- max_int;
    t.max_v <- 0
end

module Series = struct
  type t = { bin : Time.t; mutable data : int array }

  let create ~bin =
    if Time.( <= ) bin Time.zero then invalid_arg "Series.create: bin must be positive";
    { bin; data = Array.make 64 0 }

  let ensure t i =
    let n = Array.length t.data in
    if i >= n then begin
      let m = ref n in
      while i >= !m do
        m := !m * 2
      done;
      let data = Array.make !m 0 in
      Array.blit t.data 0 data 0 n;
      t.data <- data
    end

  let add t ~at n =
    let i = Time.to_ns at / Time.to_ns t.bin in
    ensure t i;
    t.data.(i) <- t.data.(i) + n

  let bin t = t.bin

  let get t i = if i < Array.length t.data then t.data.(i) else 0

  let to_list t ~until =
    let nbins = (Time.to_ns until + Time.to_ns t.bin - 1) / Time.to_ns t.bin in
    List.init nbins (fun i -> (Time.mul_int t.bin i, get t i))

  let rate_per_us t i = float_of_int (get t i) /. Time.to_us_float t.bin
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let get t = t.n
  let clear t = t.n <- 0
end
