type 'a state = Empty of (('a, exn) result -> unit) list | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> w (Ok v)) (List.rev waiters)

let fill_if_empty t v = match t.state with Full _ -> () | Empty _ -> fill t v

let on_fill t fn =
  match t.state with
  | Full v -> fn v
  | Empty waiters ->
      t.state <- Empty ((fun res -> match res with Ok v -> fn v | Error _ -> ()) :: waiters)

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Proc.suspend (fun resume ->
          match t.state with
          | Full v -> resume (Ok v)
          | Empty waiters -> t.state <- Empty (resume :: waiters))
