(** Measurement primitives for the benchmark harness. *)

module Hist : sig
  (** Log-linear latency histogram (HDR-style): exact below 32, 32
      sub-buckets per octave above, ≤3% relative bucket error. *)

  type t

  val create : unit -> t

  val record : t -> int -> unit
  (** Record a non-negative sample (negative samples clamp to 0). *)

  val count : t -> int
  val mean : t -> float
  val min_value : t -> int
  val max_value : t -> int

  val percentile : t -> float -> int
  (** [percentile t 99.0] is an upper bound on the 99th-percentile sample,
      accurate to the bucket resolution. 0 when empty. *)

  val merge : into:t -> t -> unit
  val clear : t -> unit
end

module Series : sig
  (** Time-binned event counts: the 1 ms-binned throughput timelines of the
      paper's failure figures. *)

  type t

  val create : bin:Time.t -> t
  val add : t -> at:Time.t -> int -> unit
  val bin : t -> Time.t
  val get : t -> int -> int

  val to_list : t -> until:Time.t -> (Time.t * int) list
  (** Bins from time 0 to [until] as [(bin_start, count)] pairs. *)

  val rate_per_us : t -> int -> float
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val clear : t -> unit
end
