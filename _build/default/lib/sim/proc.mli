(** Cooperative green processes over the simulation engine, implemented with
    OCaml 5 effect handlers.

    A process is ordinary direct-style code that may block on simulated
    events ({!sleep}, {!Ivar.read}, {!Mailbox.recv}, {!Cpu.exec}, network
    completions, ...). Blocking is an effect handled by the process's
    spawner; the continuation is parked and rescheduled as an engine event
    when the awaited condition fires.

    Every process belongs to a cancellation context {!Ctx.t}; crashing a
    simulated machine cancels its context, and any parked continuation of
    that context is discontinued with {!Cancelled} at its next resumption
    point. This models a machine's CPU stopping dead while its NVRAM (owned
    by separate structures) survives. *)

exception Cancelled

module Ctx : sig
  type t

  val create : ?name:string -> unit -> t
  val cancel : t -> unit
  val is_cancelled : t -> bool
  val name : t -> string
end

type env = { engine : Engine.t; ctx : Ctx.t }

val spawn : ?ctx:Ctx.t -> ?name:string -> Engine.t -> (unit -> unit) -> unit
(** Schedule a new process to start at the current instant. *)

(** {1 Operations valid only inside a process} *)

val env : unit -> env
val engine : unit -> Engine.t
val self_ctx : unit -> Ctx.t
val now : unit -> Time.t

val suspend : ((('a, exn) result -> unit) -> unit) -> 'a
(** [suspend register] parks the current process and calls
    [register resume]. The process resumes (as a fresh engine event) when
    [resume] is invoked; later invocations of [resume] are ignored. *)

val sleep : Time.t -> unit
val sleep_until : Time.t -> unit

val yield : unit -> unit
(** Re-schedule at the current instant, letting other ready events run. *)

val check_cancelled : unit -> unit
(** Raise {!Cancelled} if this process's context has been cancelled. *)
