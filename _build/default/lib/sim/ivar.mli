(** Write-once synchronization cells.

    The building block for completions: a reader blocks until some other
    process (or an engine event such as a NIC completion) fills the cell. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Wakes all readers. Raises [Invalid_argument] if already full. *)

val fill_if_empty : 'a t -> 'a -> unit

val read : 'a t -> 'a
(** Block the calling process until the cell is full. Must run inside a
    process. *)

val on_fill : 'a t -> ('a -> unit) -> unit
(** Run a callback when the cell is filled (immediately if already full).
    Unlike {!read} this does not require a process context. *)

val peek : 'a t -> 'a option
val is_full : 'a t -> bool
