(** Deterministic splittable pseudo-random numbers (xoshiro256** seeded via
    splitmix64).

    The simulator never touches [Stdlib.Random]: every source of randomness
    is an explicit [Rng.t], so a run is a pure function of its seed. [split]
    derives an independent stream, used to give each machine/workload its own
    generator so that adding events in one component does not perturb
    another. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent by one step. *)

val next_int64 : t -> int64

val bits : t -> int
(** 62 uniform non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pick : t -> 'a array -> 'a
val shuffle_in_place : t -> 'a array -> unit
