(** Unbounded FIFO channels between processes. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val send : 'a t -> 'a -> unit
(** Never blocks; hands the value to the longest-waiting receiver if any. *)

val recv : 'a t -> 'a
(** Block the calling process until a value is available. *)

val recv_opt : 'a t -> 'a option
(** Non-blocking receive. *)

val drain : 'a t -> 'a list
(** Remove and return all currently queued values. *)
