lib/sim/mailbox.ml: List Proc Queue
