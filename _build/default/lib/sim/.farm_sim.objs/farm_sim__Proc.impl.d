lib/sim/proc.ml: Effect Engine Printexc Time
