lib/sim/rng.mli:
