lib/sim/cpu.mli: Engine Proc Time
