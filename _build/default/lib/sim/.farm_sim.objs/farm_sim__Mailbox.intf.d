lib/sim/mailbox.mli:
