lib/sim/ivar.mli:
