lib/sim/heap.mli:
