lib/sim/cpu.ml: Array Engine Proc Time
