exception Cancelled

module Ctx = struct
  type t = { name : string; mutable cancelled : bool }

  let create ?(name = "proc") () = { name; cancelled = false }
  let cancel t = t.cancelled <- true
  let is_cancelled t = t.cancelled
  let name t = t.name
end

type env = { engine : Engine.t; ctx : Ctx.t }

type _ Effect.t +=
  | Suspend : ((('a, exn) result -> unit) -> unit) -> 'a Effect.t
  | Get_env : env Effect.t

let spawn ?ctx ?name engine fn =
  let ctx = match ctx with Some c -> c | None -> Ctx.create ?name () in
  let env = { engine; ctx } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          match e with
          | Cancelled -> ()
          | e ->
              let bt = Printexc.get_raw_backtrace () in
              Printexc.raise_with_backtrace e bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Get_env ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k env)
          | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let resumed = ref false in
                  let resume res =
                    if not !resumed then begin
                      resumed := true;
                      Engine.schedule engine ~at:(Engine.now engine) (fun () ->
                          if Ctx.is_cancelled ctx then
                            Effect.Deep.discontinue k Cancelled
                          else
                            match res with
                            | Ok v -> Effect.Deep.continue k v
                            | Error e -> Effect.Deep.discontinue k e)
                    end
                  in
                  register resume)
          | _ -> None);
    }
  in
  let run () =
    if not (Ctx.is_cancelled ctx) then Effect.Deep.match_with fn () handler
  in
  Engine.schedule engine ~at:(Engine.now engine) run

let env () = Effect.perform Get_env
let engine () = (env ()).engine
let self_ctx () = (env ()).ctx
let now () = Engine.now (engine ())

let suspend register = Effect.perform (Suspend register)

let sleep d =
  let e = engine () in
  suspend (fun resume -> Engine.schedule_in e ~after:d (fun () -> resume (Ok ())))

let sleep_until at =
  let e = engine () in
  suspend (fun resume -> Engine.schedule e ~at (fun () -> resume (Ok ())))

let yield () = sleep Time.zero

let check_cancelled () = if Ctx.is_cancelled (self_ctx ()) then raise Cancelled
