(** Simulated time.

    Time is an absolute instant or a duration measured in integer
    nanoseconds. On a 64-bit platform this covers ~146 years of simulated
    time, far beyond any experiment in the harness. *)

type t = int

val zero : t

(** {1 Constructors} *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

(** {1 Conversions} *)

val to_ns : t -> int
val to_us_float : t -> float
val to_ms_float : t -> float
val to_s_float : t -> float
val of_us_float : float -> t
val of_ms_float : float -> t

(** {1 Arithmetic and comparison} *)

val add : t -> t -> t
val sub : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a - b]. *)

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val mul_int : t -> int -> t
val div_int : t -> int -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
