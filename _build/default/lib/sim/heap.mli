(** Binary min-heap keyed by [(key, seq)].

    The secondary [seq] key gives FIFO order among entries with equal primary
    keys, which the event queue relies on for deterministic scheduling of
    simultaneous events. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val peek_key : 'a t -> int option
(** Smallest key currently in the heap. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)]. *)
