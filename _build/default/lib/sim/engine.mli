(** Discrete-event simulation engine.

    The engine owns the virtual clock and an event queue of callbacks.
    Events scheduled at the same instant run in scheduling (FIFO) order, so a
    run is fully deterministic. Exceptions raised by an event callback
    propagate out of {!run}; the test-suite relies on this to surface
    protocol assertion failures. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule a callback at an absolute instant. Instants in the past are
    clamped to [now]. *)

val schedule_in : t -> after:Time.t -> (unit -> unit) -> unit
(** Schedule a callback after a relative delay. *)

val run : ?until:Time.t -> t -> unit
(** Process events in time order until the queue is empty, [stop] is called,
    or the clock would pass [until] (in which case the clock is set to
    [until] and remaining events stay queued for a later [run]). *)

val stop : t -> unit

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed since creation; a cheap progress/efficiency
    metric for benchmarks. *)
