open Farm_sim

type error = [ `Unreachable | `Timeout ]

let pp_error ppf = function
  | `Unreachable -> Fmt.string ppf "unreachable"
  | `Timeout -> Fmt.string ppf "timeout"

type 'msg handler = src:int -> reply:(bytes:int -> 'msg -> unit) -> 'msg -> unit

type 'msg machine = {
  id : int;
  nic : Nic.t;
  cpu : Cpu.t;
  mutable alive : bool;
  mutable partition : int;
  mutable on_message : 'msg handler;
}

type 'msg t = {
  engine : Engine.t;
  params : Params.t;
  rng : Rng.t;
  mutable machines : 'msg machine option array;
}

let create engine ~params ~rng = { engine; params; rng; machines = Array.make 8 None }

let no_handler ~src:_ ~reply:_ _ = ()

let add_machine t ~id ~cpu =
  if id < 0 then invalid_arg "Fabric.add_machine: negative id";
  let n = Array.length t.machines in
  if id >= n then begin
    let m = ref n in
    while id >= !m do
      m := !m * 2
    done;
    let machines = Array.make !m None in
    Array.blit t.machines 0 machines 0 n;
    t.machines <- machines
  end;
  (match t.machines.(id) with
  | Some _ -> invalid_arg "Fabric.add_machine: duplicate id"
  | None -> ());
  let m =
    {
      id;
      nic = Nic.create t.engine ~params:t.params;
      cpu;
      alive = true;
      partition = 0;
      on_message = no_handler;
    }
  in
  t.machines.(id) <- Some m

(* Re-register a machine after a restart: fresh NIC pipelines and CPU, back
   on the network. *)
let reset_machine t ~id ~cpu =
  match if id >= 0 && id < Array.length t.machines then t.machines.(id) else None with
  | None -> invalid_arg "Fabric.reset_machine: unknown machine"
  | Some m ->
      t.machines.(id) <-
        Some
          {
            m with
            nic = Nic.create t.engine ~params:t.params;
            cpu;
            alive = true;
            partition = 0;
            on_message = no_handler;
          }

let get t id =
  match if id >= 0 && id < Array.length t.machines then t.machines.(id) else None with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Fabric: unknown machine %d" id)

let set_handler t id handler = (get t id).on_message <- handler
let set_alive t id alive = (get t id).alive <- alive
let is_alive t id = (get t id).alive
let set_partition t id p = (get t id).partition <- p
let nic t id = (get t id).nic
let cpu t id = (get t id).cpu
let engine t = t.engine
let params t = t.params

let reachable t src dst =
  let a = get t src and b = get t dst in
  a.alive && b.alive && a.partition = b.partition

let latency t =
  let j = Time.to_ns t.params.Params.fabric_jitter in
  Time.add t.params.Params.fabric_latency (Time.ns (if j > 0 then Rng.int t.rng j else 0))

(* Size in bytes of a one-sided request descriptor on the wire. *)
let req_bytes = 32
let ack_bytes = 16

let fail_later t iv =
  Engine.schedule_in t.engine ~after:t.params.Params.failure_timeout (fun () ->
      Ivar.fill_if_empty iv (Error `Unreachable))

(* One-sided RDMA read: charges CPU only at [src]. [read] runs at the
   instant the target NIC performs the DMA — the operation's linearization
   point. *)
let one_sided_read t ~src ~dst ~bytes (read : unit -> 'a) : ('a, error) result =
  let ms = get t src in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_issue;
  let iv : ('a, error) result Ivar.t = Ivar.create () in
  if src = dst then begin
    (* Local access: no NIC involved; negligible extra cost. *)
    Ivar.fill iv (Ok (read ()))
  end
  else begin
    let t_req = Nic.occupy ms.nic ~bytes:req_bytes in
    Engine.schedule t.engine ~at:(Time.add t_req (latency t)) (fun () ->
        if not (reachable t src dst) then fail_later t iv
        else begin
          let md = get t dst in
          let t_dst = Nic.occupy md.nic ~bytes in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if not (reachable t src dst) then fail_later t iv
              else begin
                let v = read () in
                Engine.schedule t.engine ~at:(Time.add t_dst (latency t)) (fun () ->
                    if ms.alive then begin
                      let t_cpl = Nic.occupy ms.nic ~bytes in
                      Engine.schedule t.engine ~at:t_cpl (fun () ->
                          Ivar.fill_if_empty iv (Ok v))
                    end)
              end)
        end)
  end;
  let r = Ivar.read iv in
  (match r with
  | Ok _ -> Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_poll
  | Error _ -> ());
  r

(* One-sided RDMA write with hardware ack: [apply] mutates target memory at
   the DMA instant; the target CPU is never involved. *)
let one_sided_write t ~src ~dst ~bytes (apply : unit -> unit) : (unit, error) result =
  let ms = get t src in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_issue;
  let iv : (unit, error) result Ivar.t = Ivar.create () in
  if src = dst then begin
    apply ();
    Ivar.fill iv (Ok ())
  end
  else begin
    let t_req = Nic.occupy ms.nic ~bytes in
    Engine.schedule t.engine ~at:(Time.add t_req (latency t)) (fun () ->
        if not (reachable t src dst) then fail_later t iv
        else begin
          let md = get t dst in
          let t_dst = Nic.occupy md.nic ~bytes in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if not (reachable t src dst) then fail_later t iv
              else begin
                apply ();
                (* Hardware ack generated by the target NIC. *)
                Engine.schedule t.engine ~at:(Time.add t_dst (latency t)) (fun () ->
                    if ms.alive then begin
                      let t_cpl = Nic.occupy ms.nic ~bytes:ack_bytes in
                      Engine.schedule t.engine ~at:t_cpl (fun () ->
                          Ivar.fill_if_empty iv (Ok ()))
                    end)
              end)
        end)
  end;
  let r = Ivar.read iv in
  (match r with
  | Ok _ -> Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_poll
  | Error _ -> ());
  r

let deliver t ~src ~dst ~prio ~bytes msg ~reply =
  let route at =
    Engine.schedule t.engine ~at (fun () ->
        if reachable t src dst then begin
          let md = get t dst in
          let t_dst =
            if prio then Nic.occupy_priority md.nic ~bytes else Nic.occupy md.nic ~bytes
          in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if md.alive then md.on_message ~src ~reply msg)
        end)
  in
  route

(* Fire-and-forget message. The receiver's handler runs at NIC-delivery
   time in "interrupt context": it must charge its own CPU before doing real
   work. *)
let send ?(prio = false) ?cpu_cost t ~src ~dst ~bytes msg =
  let ms = get t src in
  let cost = match cpu_cost with Some c -> c | None -> t.params.Params.cpu_rpc_send in
  if Time.( > ) cost Time.zero then Cpu.exec ms.cpu ~cost;
  let t_tx = if prio then Nic.occupy_priority ms.nic ~bytes else Nic.occupy ms.nic ~bytes in
  let no_reply ~bytes:_ _ = () in
  (deliver t ~src ~dst ~prio ~bytes msg ~reply:no_reply) (Time.add t_tx (latency t))

(* Blocking request/response. The receiver handler is given a [reply]
   closure; calling it routes the response back and wakes the caller. *)
let call ?(prio = false) ?timeout t ~src ~dst ~bytes msg : ('msg, error) result =
  let ms = get t src in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rpc_send;
  let iv = Ivar.create () in
  let reply ~bytes:resp_bytes resp =
    let md = get t dst in
    if md.alive then begin
      let t_tx =
        if prio then Nic.occupy_priority md.nic ~bytes:resp_bytes
        else Nic.occupy md.nic ~bytes:resp_bytes
      in
      Engine.schedule t.engine ~at:(Time.add t_tx (latency t)) (fun () ->
          if ms.alive then begin
            let t_rx =
              if prio then Nic.occupy_priority ms.nic ~bytes:resp_bytes
              else Nic.occupy ms.nic ~bytes:resp_bytes
            in
            Engine.schedule t.engine ~at:t_rx (fun () -> Ivar.fill_if_empty iv (Ok resp))
          end)
    end
  in
  let t_tx = if prio then Nic.occupy_priority ms.nic ~bytes else Nic.occupy ms.nic ~bytes in
  if reachable t src dst then
    (deliver t ~src ~dst ~prio ~bytes msg ~reply) (Time.add t_tx (latency t))
  else fail_later t iv;
  (match timeout with
  | Some d ->
      Engine.schedule_in t.engine ~after:d (fun () -> Ivar.fill_if_empty iv (Error `Timeout))
  | None -> ());
  let r = Ivar.read iv in
  (match r with
  | Ok _ -> Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rpc_recv
  | Error _ -> ());
  r
