open Farm_sim

(** A machine's NICs, modelled as per-NIC FIFO pipelines with a
    per-message cost plus a per-byte cost. Saturating the pipelines is what
    makes one-sided reads NIC-rate-bound (Figure 2). *)

type t

val create : Engine.t -> params:Params.t -> t

val occupy : t -> bytes:int -> Time.t
(** Enqueue a message on the least-busy NIC; returns the instant the NIC
    finishes processing it. *)

val occupy_priority : t -> bytes:int -> Time.t
(** Dedicated-queue-pair path used by the lease manager: charged the service
    time but never queued behind bulk traffic. *)

val service_time : t -> bytes:int -> Time.t

val ops : t -> int
(** Total messages processed. *)

val bytes_total : t -> int
