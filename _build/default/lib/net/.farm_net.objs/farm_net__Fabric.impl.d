lib/net/fabric.ml: Array Cpu Engine Farm_sim Fmt Ivar Nic Params Printf Rng Time
