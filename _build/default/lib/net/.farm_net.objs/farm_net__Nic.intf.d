lib/net/nic.mli: Engine Farm_sim Params Time
