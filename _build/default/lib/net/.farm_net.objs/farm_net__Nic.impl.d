lib/net/nic.ml: Array Engine Farm_sim Params Time
