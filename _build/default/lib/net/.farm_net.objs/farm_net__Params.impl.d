lib/net/params.ml: Farm_sim Time
