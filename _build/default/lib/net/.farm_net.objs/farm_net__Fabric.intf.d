lib/net/fabric.mli: Cpu Engine Farm_sim Format Nic Params Rng Time
