lib/net/params.mli: Farm_sim Time
