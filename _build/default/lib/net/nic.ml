open Farm_sim

type t = {
  engine : Engine.t;
  params : Params.t;
  pipes : Time.t array;
  mutable ops : int;
  mutable bytes_total : int;
}

let create engine ~params =
  {
    engine;
    params;
    pipes = Array.make params.Params.nics_per_machine Time.zero;
    ops = 0;
    bytes_total = 0;
  }

let service_time t ~bytes =
  Time.add t.params.Params.nic_msg_ns
    (Time.ns (bytes * t.params.Params.nic_byte_ns_x1000 / 1000))

(* Claim the least-busy NIC pipe; returns the instant at which the NIC
   finishes processing this message. *)
let occupy t ~bytes =
  t.ops <- t.ops + 1;
  t.bytes_total <- t.bytes_total + bytes;
  let best = ref 0 in
  for i = 1 to Array.length t.pipes - 1 do
    if Time.( < ) t.pipes.(i) t.pipes.(!best) then best := i
  done;
  let start = Time.max (Engine.now t.engine) t.pipes.(!best) in
  let finish = Time.add start (service_time t ~bytes) in
  t.pipes.(!best) <- finish;
  finish

(* Priority path (dedicated queue pair): pays the service time but does not
   queue behind, nor delay, regular traffic. *)
let occupy_priority t ~bytes =
  t.ops <- t.ops + 1;
  t.bytes_total <- t.bytes_total + bytes;
  Time.add (Engine.now t.engine) (service_time t ~bytes)

let ops t = t.ops
let bytes_total t = t.bytes_total
