(* Figure 1: energy to copy one GB from DRAM to SSD vs. number of SSDs,
   plus the §2.1 cost model (non-volatility < 15% of DRAM cost). *)

let run () =
  Bench_util.header "Figure 1 — energy to save 1 GB of DRAM to SSD"
    "~110 J/GB with 1 SSD (~90 J of it CPU power), decreasing with more SSDs";
  let m = Farm_nvram.Energy.default in
  Fmt.pr "%-8s %12s %12s %14s@." "SSDs" "J/GB" "save s/GB" "energy $/GB";
  for ssds = 1 to 4 do
    Fmt.pr "%-8d %12.1f %12.2f %14.3f  %s@." ssds
      (Farm_nvram.Energy.joules_per_gb m ~ssds)
      (Farm_nvram.Energy.save_seconds_per_gb m ~ssds)
      (Farm_nvram.Energy.energy_cost_per_gb m ~ssds)
      (Bench_util.bar ~scale:0.5 (int_of_float (Farm_nvram.Energy.joules_per_gb m ~ssds)))
  done;
  Fmt.pr "@.cost model (worst case, 1 SSD):@.";
  Fmt.pr "  energy cost            $%.2f/GB (paper: $0.55/GB)@."
    (Farm_nvram.Energy.energy_cost_per_gb m ~ssds:1);
  Fmt.pr "  SSD capacity reserve   $%.2f/GB (paper: $0.90/GB)@."
    Farm_nvram.Energy.ssd_reserve_per_gb;
  Fmt.pr "  total vs DRAM ($%.0f/GB): %.1f%% (paper: < 15%%)@."
    Farm_nvram.Energy.dram_per_gb
    (100. *. Farm_nvram.Energy.overhead_fraction m ~ssds:1)
