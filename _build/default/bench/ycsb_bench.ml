open Farm_sim
open Farm_workloads

(* YCSB core workloads over the FaRM hash table and B-tree — the benchmark
   family the original FaRM paper [16] used; this paper's §6.3 key-value
   read experiment is its read-only point. *)

let run ?(machines = 6) ?(keys = 8_000) ?(duration = Time.ms 40) () =
  Bench_util.header "YCSB core workloads (from [16], the basis of §6.3)"
    "read-dominated profiles ride the lock-free path; update-heavy ones pay \
     the commit protocol; D reads the most recent keys; E scans the B-tree";
  Fmt.pr "%-24s %12s %12s %12s@." "profile" "ops/us" "median(us)" "99th(us)";
  List.iter
    (fun profile ->
      let c = Farm_core.Cluster.create ~machines () in
      let t = Ycsb.create c ~keys ~regions:4 in
      Ycsb.load c t;
      let stats =
        Driver.run c ~workers:8 ~warmup:(Time.ms 5) ~duration ~op:(Ycsb.op profile t)
      in
      Fmt.pr "%-24s %12.3f %12.1f %12.1f@." (Ycsb.profile_name profile)
        (Driver.throughput_per_us stats ~duration)
        (float_of_int (Stats.Hist.percentile stats.Driver.latency 50.) /. 1e3)
        (float_of_int (Stats.Hist.percentile stats.Driver.latency 99.) /. 1e3))
    [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]
