open Farm_sim
open Farm_core
open Farm_workloads

(* §6.3 comparison claims: FaRM outperforms single-machine in-memory engines
   (Hekaton, Silo) once it has a few machines, because it scales out while
   they cannot. Our stand-in for the single-machine engine is FaRM confined
   to one machine with replication 1 (no network, no replication) — an
   over-approximation of such engines under the same cost model. The shape
   to reproduce: the distributed system's aggregate throughput passes the
   single-machine engine's by ~3 machines and keeps growing. *)

let tatp_throughput cluster ~subscribers ~duration =
  (* spread each table over enough regions that every machine hosts
     primaries — otherwise a handful of machines' NICs serve all reads *)
  let regions_per_table = max 2 (Cluster.n_machines cluster) in
  let t = Tatp.create cluster ~subscribers ~regions_per_table in
  Tatp.load cluster t;
  let stats = Driver.run cluster ~workers:8 ~warmup:(Time.ms 5) ~duration ~op:(Tatp.op t) in
  float_of_int (Stats.Counter.get stats.Driver.ops) /. Time.to_us_float duration

let run ?(duration = Time.ms 50) () =
  Bench_util.header "§6.3 scaling — FaRM vs a single-machine in-memory engine"
    "matches Hekaton with 3 machines, 33x with 90; beats Silo by scaling out";
  let subscribers = 2_000 in
  let base = tatp_throughput (Baseline.cluster ()) ~subscribers ~duration in
  Fmt.pr "%-26s %10.3f tx/us@." "single machine (no repl)" base;
  List.iter
    (fun n ->
      let c = Cluster.create ~machines:n () in
      let tput = tatp_throughput c ~subscribers ~duration in
      Fmt.pr "%-26s %10.3f tx/us   %.1fx the single-machine engine@."
        (Printf.sprintf "FaRM, %d machines (f=2)" n)
        tput (tput /. base))
    [ 3; 6; 9 ]
