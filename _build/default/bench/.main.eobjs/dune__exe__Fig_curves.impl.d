bench/fig_curves.ml: Bench_util Cluster Driver Farm_core Farm_sim Farm_workloads Fmt List Stats Tatp Time Tpcc
