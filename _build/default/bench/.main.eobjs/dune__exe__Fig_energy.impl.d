bench/fig_energy.ml: Bench_util Farm_nvram Fmt
