bench/bench_util.ml: Array Farm_sim Fmt List Stats String Time
