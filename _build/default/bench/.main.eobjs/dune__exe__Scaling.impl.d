bench/scaling.ml: Baseline Bench_util Cluster Driver Farm_core Farm_sim Farm_workloads Fmt List Printf Stats Tatp Time
