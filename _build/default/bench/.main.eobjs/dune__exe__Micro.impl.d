bench/micro.ml: Analyze Bechamel Bench_util Benchmark Bytes Farm_core Farm_kv Farm_sim Fmt Hashtbl Instance List Measure Staged Test Time Toolkit
