bench/main.ml: Ablations Array Fig_curves Fig_energy Fig_failures Fig_lease Fig_netreads Fmt List Micro Readperf Scaling Sys Unix Ycsb_bench
