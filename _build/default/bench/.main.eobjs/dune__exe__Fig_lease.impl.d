bench/fig_lease.ml: Array Bench_util Cluster Config Cpu Farm_core Farm_net Farm_sim Fmt Hashtbl List Params Proc Rng State Time
