bench/ablations.ml: Api Array Bench_util Bytes Cluster Driver Failure_bench Farm_core Farm_sim Farm_workloads Fmt List Params Printf Rng State Stats Tatp Time Txn Wire
