bench/main.mli:
