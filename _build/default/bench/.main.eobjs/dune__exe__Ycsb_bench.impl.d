bench/ycsb_bench.ml: Bench_util Driver Farm_core Farm_sim Farm_workloads Fmt List Stats Time Ycsb
