bench/readperf.ml: Bench_util Cluster Driver Farm_core Farm_sim Farm_workloads Fmt Kvlookup Stats Time
