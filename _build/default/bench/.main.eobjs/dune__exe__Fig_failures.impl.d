bench/fig_failures.ml: Bench_util Failure_bench Farm_core Farm_sim Farm_workloads Fmt List Params Rng Time Tpcc
