bench/fig_netreads.ml: Array Bench_util Bytes Cpu Engine Fabric Farm_net Farm_sim Fmt List Params Proc Rng Time
