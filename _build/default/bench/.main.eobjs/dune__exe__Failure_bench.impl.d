bench/failure_bench.ml: Bench_util Cluster Config Driver Engine Farm_core Farm_sim Farm_workloads Fmt Fun List Option Params State Tatp Time Tpcc
