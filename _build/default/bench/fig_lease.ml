open Farm_sim
open Farm_core

(* Figure 16: lease-expiry false positives for four lease-manager
   implementations under stress, as a function of lease duration.

   The paper's stress: all threads on all machines issue RDMA reads at the
   CM for 10 minutes. We reproduce the mechanism at reduced duration: bulk
   one-sided reads hammer the CM's NICs (delaying non-priority lease
   messages) and bursty background work occupies the worker threads
   (delaying shared-thread lease managers). Expected shape:
     RPC            expires constantly, even at 100 ms leases
     UD             better, but still expires at short leases (CPU queue)
     UD+thread      clean at 100 ms; occasional expiries at <= 10 ms
                    (OS preemption spikes)
     UD+thread+pri  clean at >= 5 ms; limited below by timer resolution
                    and loaded round trips *)

let run_one ~impl ~lease_ms ~sim_s ~seed =
  let params =
    {
      Params.default with
      Params.lease_duration = Time.ms lease_ms;
      lease_check_interval = Time.us 500;
    }
  in
  let machines = 7 in
  let c = Cluster.create ~seed ~params ~machines () in
  let cm = 0 in
  (* count expiries only; no reconfigurations *)
  Array.iter
    (fun (st : State.t) ->
      st.State.lease.State.impl <- impl;
      st.State.on_suspect <- (fun _ -> ()))
    c.Cluster.machines;
  (* re-arm expiry detection so every expiry event is counted *)
  Array.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          while true do
            Proc.sleep (Time.ms 1);
            if st.State.lease.State.cm_suspected then begin
              st.State.lease.State.cm_suspected <- false;
              st.State.lease.State.last_grant_from_cm <- Proc.now ()
            end;
            match st.State.cm with
            | Some cmstate ->
                List.iter
                  (fun m ->
                    if m <> st.State.id && not (Hashtbl.mem cmstate.State.cm_leases m)
                    then Hashtbl.replace cmstate.State.cm_leases m (Proc.now ()))
                  st.State.config.Config.members
            | None -> ()
          done))
    c.Cluster.machines;
  (* CM-side expiries remove the entry; count via on_suspect replacement *)
  let cm_expiries = ref 0 in
  (Cluster.machine c cm).State.on_suspect <-
    (fun suspects -> cm_expiries := !cm_expiries + List.length suspects);
  (* stress: bulk RDMA-read traffic keeps the CM's NICs oversubscribed
     (offered load ~1.2x capacity), so anything sharing the normal queues
     — the RPC lease manager's messages — waits behind an ever-growing
     backlog, while the dedicated (priority) datagram path does not. This
     is the shared-queue congestion of §6.5, injected at the NIC to stay
     independent of sender CPU scheduling. *)
  let cm_nic = Farm_net.Fabric.nic (Cluster.machine c cm).State.fabric cm in
  Proc.spawn c.Cluster.engine (fun () ->
      while true do
        ignore (Farm_net.Nic.occupy cm_nic ~bytes:32768);
        Proc.sleep (Time.ns 2_000)
      done);
  (* bursty background CPU work (the "background processes" of §6.5) *)
  Array.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
          let rng = Rng.split st.State.rng in
          while true do
            Proc.sleep (Time.of_ms_float (Rng.exponential rng ~mean:25.));
            let burst = 20 + Rng.int rng 60 in
            for _ = 1 to burst do
              Cpu.exec_bg st.State.cpu ~cost:(Time.ms 2) (fun () -> ())
            done;
            (* OS preemption spikes for the dedicated non-priority thread *)
            if Rng.int rng 100 < 20 then begin
              let dur = Time.us (2_000 + Rng.int rng 38_000) in
              st.State.lease.State.suspended_until <-
                Time.max st.State.lease.State.suspended_until
                  (Time.add (Proc.now ()) dur)
            end
          done))
    c.Cluster.machines;
  Cluster.run_until c ~at:(Time.s sim_s);
  let machine_expiries =
    Array.fold_left
      (fun acc (st : State.t) -> acc + st.State.lease.State.expiry_events)
      0 c.Cluster.machines
  in
  machine_expiries + !cm_expiries

let impl_name = function
  | State.Rpc_shared -> "RPC"
  | State.Ud_shared -> "UD"
  | State.Ud_thread -> "UD+thread"
  | State.Ud_thread_pri -> "UD+thread+pri"

let run ?(sim_s = 1) () =
  Bench_util.header "Figure 16 — lease false positives vs lease duration"
    "RPC expires even at 100 ms; UD reduces but does not eliminate; a dedicated \
     thread survives 100 ms; only interrupt-driven high-priority sustains 5-10 ms \
     leases with zero false positives";
  let durations = [ 1; 2; 3; 5; 10; 100 ] in
  Fmt.pr "%-15s" "lease (ms):";
  List.iter (fun d -> Fmt.pr "%8d" d) durations;
  Fmt.pr "@.";
  List.iter
    (fun impl ->
      Fmt.pr "%-15s" (impl_name impl);
      List.iter
        (fun lease_ms ->
          let n = run_one ~impl ~lease_ms ~sim_s ~seed:(lease_ms * 7) in
          Fmt.pr "%8d" n)
        durations;
      Fmt.pr "@.")
    [ State.Rpc_shared; State.Ud_shared; State.Ud_thread; State.Ud_thread_pri ];
  Fmt.pr "@.(expiry events across a 7-machine cluster over %d simulated seconds)@." sim_s
