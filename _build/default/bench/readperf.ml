open Farm_sim
open Farm_core
open Farm_workloads

(* §6.3 "Read performance": key-value lookups with 16-byte keys and 32-byte
   values, uniform access, served by lock-free reads. The paper reports
   790M lookups/s across 90 machines (median 23 us, 99th 73 us); the shape
   to reproduce is a per-machine lookup rate several times the transactional
   TATP rate, flat low latency, and zero commit-protocol involvement. *)

let run ?(machines = 6) ?(keys = 10_000) ?(duration = Time.ms 60) () =
  Bench_util.header "§6.3 read performance — uniform KV lookups (16 B keys, 32 B values)"
    "790M lookups/s on 90 machines, median 23 us, 99th 73 us";
  let c = Cluster.create ~machines () in
  let t = Kvlookup.create c ~keys ~regions:4 in
  Kvlookup.load c t;
  let committed_before = Cluster.total_committed c in
  let stats = Driver.run c ~workers:16 ~warmup:(Time.ms 5) ~duration ~op:(Kvlookup.op t) in
  let tput = float_of_int (Stats.Counter.get stats.Driver.ops) /. Time.to_us_float duration in
  Fmt.pr "lookups/us (cluster)   %.2f@." tput;
  Fmt.pr "lookups/us/machine     %.2f@." (tput /. float_of_int machines);
  Bench_util.print_latency "lookup latency" stats.Driver.latency;
  Fmt.pr "commit protocol runs during measurement: %d (lock-free path only)@."
    (Cluster.total_committed c - committed_before)
