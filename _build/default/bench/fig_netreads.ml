open Farm_sim
open Farm_net

(* Figure 2: per-machine read rate, one-sided RDMA vs RPC, as a function of
   transfer size, on a symmetric all-to-all random-read workload. The paper
   reports ~10-11 RDMA reads/us/machine vs ~2.5 RPC reads/us/machine (a 4x
   gap) on the 90-machine FDR cluster; the shape to reproduce is the gap and
   the bandwidth-bound decline at large sizes. *)

type msg = Req of int | Resp of Bytes.t

let measure ~machines ~size ~rdma ~duration =
  let e = Engine.create () in
  let rng = Rng.create 7 in
  let fab : msg Fabric.t = Fabric.create e ~params:Params.default ~rng in
  let cpus =
    Array.init machines (fun id ->
        let cpu = Cpu.create e ~threads:30 in
        Fabric.add_machine fab ~id ~cpu;
        cpu)
  in
  let payload = Bytes.make size 'x' in
  for m = 0 to machines - 1 do
    Fabric.set_handler fab m (fun ~src:_ ~reply msg ->
        Cpu.exec_bg cpus.(m) ~cost:Params.default.Params.cpu_rpc_recv (fun () ->
            Proc.spawn e (fun () ->
                match msg with
                | Req n -> reply ~bytes:(n + 16) (Resp payload)
                | Resp _ -> ())))
  done;
  let ops = ref 0 in
  let stop = ref false in
  for m = 0 to machines - 1 do
    for _ = 0 to 47 do
      Proc.spawn e (fun () ->
          let wrng = Rng.create (m * 131) in
          while not !stop do
            let dst = (m + 1 + Rng.int wrng (machines - 1)) mod machines in
            if rdma then begin
              match
                Fabric.one_sided_read fab ~src:m ~dst ~bytes:size (fun () -> payload)
              with
              | Ok _ -> incr ops
              | Error _ -> ()
            end
            else begin
              match Fabric.call fab ~src:m ~dst ~bytes:(size + 32) (Req size) with
              | Ok _ -> incr ops
              | Error _ -> ()
            end
          done)
    done
  done;
  Engine.run ~until:(Time.add (Engine.now e) duration) e;
  stop := true;
  Engine.run ~until:(Time.add (Engine.now e) (Time.ms 1)) e;
  float_of_int !ops /. Time.to_us_float duration /. float_of_int machines

let run () =
  Bench_util.header "Figure 2 — per-machine RDMA vs RPC read performance"
    "~10 one-sided reads/us/machine vs ~2.5 RPC reads/us/machine (4x), \
     declining at large transfer sizes";
  let machines = 6 and duration = Time.ms 3 in
  Fmt.pr "%-10s %14s %14s %8s@." "size(B)" "RDMA ops/us/m" "RPC ops/us/m" "ratio";
  List.iter
    (fun size ->
      let rdma = measure ~machines ~size ~rdma:true ~duration in
      let rpc = measure ~machines ~size ~rdma:false ~duration in
      Fmt.pr "%-10d %14.2f %14.2f %7.1fx  %s@." size rdma rpc (rdma /. rpc)
        (Bench_util.bar ~scale:4.0 (int_of_float rdma)))
    [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048 ]
