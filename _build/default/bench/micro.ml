open Bechamel
open Toolkit

(* Bechamel micro-benchmarks of the hot data structures: real wall-clock
   cost per operation for the pieces every simulated transaction touches.
   These are host-machine numbers, not simulated time. *)

let tests () =
  let rng = Farm_sim.Rng.create 1 in
  let hist = Farm_sim.Stats.Hist.create () in
  let heap = Farm_sim.Heap.create () in
  let seq = ref 0 in
  let mem = Bytes.make 4096 '\000' in
  let header = Farm_core.Obj_layout.make ~locked:false ~allocated:true ~version:3 in
  Farm_core.Obj_layout.set mem ~off:64 header;
  let engine = Farm_sim.Engine.create () in
  let record =
    {
      Farm_core.Wire.payload =
        Farm_core.Wire.Commit_primary
          (Farm_core.Txid.make ~config:1 ~machine:0 ~thread:0 ~local:1);
      truncations = [];
      low_bound = 0;
      cfg = 1;
    }
  in
  [
    Test.make ~name:"rng.int" (Staged.stage (fun () -> Farm_sim.Rng.int rng 1024));
    Test.make ~name:"hist.record"
      (Staged.stage (fun () -> Farm_sim.Stats.Hist.record hist 12345));
    Test.make ~name:"heap.push_pop"
      (Staged.stage (fun () ->
           incr seq;
           Farm_sim.Heap.push heap ~key:(Farm_sim.Rng.int rng 100000) ~seq:!seq ();
           Farm_sim.Heap.pop heap));
    Test.make ~name:"objlayout.header_rmw"
      (Staged.stage (fun () ->
           let h = Farm_core.Obj_layout.get mem ~off:64 in
           Farm_core.Obj_layout.set mem ~off:64
             (Farm_core.Obj_layout.with_version h (Farm_core.Obj_layout.version h + 1))));
    Test.make ~name:"engine.schedule_run"
      (Staged.stage (fun () ->
           Farm_sim.Engine.schedule engine ~at:(Farm_sim.Engine.now engine) (fun () -> ());
           Farm_sim.Engine.run engine));
    Test.make ~name:"wire.record_bytes"
      (Staged.stage (fun () -> Farm_core.Wire.record_bytes record));
    Test.make ~name:"codec.fnv1a_16B"
      (Staged.stage
         (let key = Bytes.make 16 'k' in
          fun () -> Farm_kv.Codec.fnv1a key));
  ]

let run () =
  Bench_util.header "Micro-benchmarks (host wall clock, via Bechamel)"
    "cost per operation of the simulator's hot paths";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s.%s" (tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> Fmt.pr "  %-32s %10.1f ns/op@." name ns
      | _ -> Fmt.pr "  %-32s (no estimate)@." name)
    (List.sort compare rows)
