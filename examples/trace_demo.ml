(* Trace demo: a small run with causal tracing on, exported as Chrome
   trace-event JSON for ui.perfetto.dev.

   A 3-machine cluster with one region (replication 3: every machine holds
   a replica), driving 10 read-modify-write transactions from a machine
   that is NOT the region's primary — so every commit's LOCK record crosses
   the fabric to the primary and at least one COMMIT-BACKUP record crosses
   to the other backup, giving the trace cross-machine flow arrows for
   both.

   Regenerate the committed artifact from the repo root with:

     dune exec examples/trace_demo.exe

   which rewrites examples/trace_10tx.json. Open it at ui.perfetto.dev:
   machines are processes, worker/log/net tracks are threads, and the
   arrows link each record's append to its remote processing. *)

open Farm_sim
open Farm_core

let n_txs = 10
let out_file = "examples/trace_10tx.json"

let () =
  let cluster = Cluster.create ~seed:7 ~machines:3 () in
  Cluster.set_tracing cluster true;
  let region = Cluster.alloc_region_exn cluster in
  (* coordinate from a non-primary machine: LOCK must go remote *)
  let coordinator = (region.Wire.primary + 1) mod 3 in
  Fmt.pr "region %d: primary m%d, backups %a; coordinating from m%d@." region.Wire.rid
    region.Wire.primary
    Fmt.(list ~sep:(any ",") int)
    region.Wire.backups coordinator;
  let cell =
    Cluster.run_on cluster ~machine:coordinator (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:8 ~region:region.Wire.rid () in
              Txn.write tx a (Bytes.make 8 '\000');
              a)
        with
        | Ok a -> a
        | Error e -> Fmt.failwith "setup: %a" Txn.pp_abort e)
  in
  for i = 1 to n_txs do
    Cluster.run_on cluster ~machine:coordinator (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              let v = Int64.to_int (Bytes.get_int64_le (Txn.read tx cell ~len:8) 0) in
              let b = Bytes.create 8 in
              Bytes.set_int64_le b 0 (Int64.of_int (v + i));
              Txn.write tx cell b)
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "tx %d: %a" i Txn.pp_abort e)
  done;
  (* let lazy truncation and the background flusher drain *)
  Cluster.run_for cluster ~d:(Time.ms 5);
  let json = Cluster.trace_dump cluster in
  let oc = open_out out_file in
  output_string oc json;
  close_out oc;
  Fmt.pr "%d transactions committed from m%d; trace written to %s@." n_txs coordinator
    out_file;
  Fmt.pr "open it at ui.perfetto.dev (Trace Viewer) to see the commit pipeline@."
