open Farm_sim
open Farm_core

(* A fault schedule is a timed script of injections drawn from a seeded
   generator: the integer seed determines the script exactly, so any failing
   run is reproduced bit-for-bit by re-running its seed.

   The generator respects the cluster's fault budget. With [replication = 3]
   FaRM tolerates f = 2 failures per region, so a schedule victimises at
   most [replication - 1] distinct machines with faults that can lead to
   suspicion and eviction (crash, partition, long lease stall, clock skew,
   lossy links). Whole-cluster power failures are a different regime — NVRAM
   recovery rather than membership change — so a power-cycle schedule mixes
   only benign link delays with the power failure. *)

type fault =
  | Crash of int
  | Restart of int
  | Power_cycle
  | Partition of int list  (** isolate these machines from the rest *)
  | Heal  (** remove all partitions and link faults *)
  | Link_fault of { src : int; dst : int; delay : Time.t; loss : float }
  | Link_heal of { src : int; dst : int }
  | Lease_stall of { machine : int; duration : Time.t }
  | Clock_skew of { machine : int; delta : Time.t }
  (* gray failures: the machine is degraded, not dead *)
  | Slow_nic of { machine : int; delay_factor : float; loss : float }
      (** slow-but-alive NIC: every packet touching [machine] flies
          [delay_factor] x slower and is lost with probability [loss] *)
  | Nic_heal of int
  | Asym_partition of { srcs : int list; dsts : int list }
      (** directed blackholes src->dst for every pair; the reverse
          direction keeps working (healed only by [Heal]) *)
  | Cpu_slow of { machine : int; factor : int }
      (** every CPU cost on [machine] multiplied by [factor] *)
  | Cpu_heal of int
  | Lease_flap of { machine : int; period : Time.t; count : int; stall : Time.t }
      (** [count] short lease-manager stalls of [stall] each, [period]
          apart: the flapping pattern that repeatedly grazes expiry *)

type event = { at : Time.t; fault : fault }
type t = { seed : int; machines : int; events : event list }

let pp_fault ppf = function
  | Crash m -> Fmt.pf ppf "crash m%d" m
  | Restart m -> Fmt.pf ppf "restart m%d" m
  | Power_cycle -> Fmt.string ppf "power-cycle"
  | Partition ms ->
      Fmt.pf ppf "partition {%a}" Fmt.(list ~sep:(any ",") int) ms
  | Heal -> Fmt.string ppf "heal"
  | Link_fault { src; dst; delay; loss } ->
      Fmt.pf ppf "link-fault %d->%d delay=%a loss=%.2f" src dst Time.pp delay loss
  | Link_heal { src; dst } -> Fmt.pf ppf "link-heal %d->%d" src dst
  | Lease_stall { machine; duration } ->
      Fmt.pf ppf "lease-stall m%d %a" machine Time.pp duration
  | Clock_skew { machine; delta } ->
      Fmt.pf ppf "clock-skew m%d %a" machine Time.pp delta
  | Slow_nic { machine; delay_factor; loss } ->
      Fmt.pf ppf "slow-nic m%d x%.1f loss=%.2f" machine delay_factor loss
  | Nic_heal m -> Fmt.pf ppf "nic-heal m%d" m
  | Asym_partition { srcs; dsts } ->
      Fmt.pf ppf "asym-partition {%a}->{%a}"
        Fmt.(list ~sep:(any ",") int)
        srcs
        Fmt.(list ~sep:(any ",") int)
        dsts
  | Cpu_slow { machine; factor } -> Fmt.pf ppf "cpu-slow m%d x%d" machine factor
  | Cpu_heal m -> Fmt.pf ppf "cpu-heal m%d" m
  | Lease_flap { machine; period; count; stall } ->
      Fmt.pf ppf "lease-flap m%d %dx%a every %a" machine count Time.pp stall Time.pp
        period

let pp_event ppf e = Fmt.pf ppf "@%a %a" Time.pp e.at pp_fault e.fault

let pp ppf t =
  Fmt.pf ppf "schedule seed=%d machines=%d@.%a" t.seed t.machines
    Fmt.(list ~sep:(any "@.") pp_event)
    t.events

(* Pick [k] distinct machines out of [n]. *)
let pick_distinct rng ~n ~k ~excluding =
  let pool = Array.of_list (List.filter (fun m -> not (List.mem m excluding)) (List.init n Fun.id)) in
  Rng.shuffle_in_place rng pool;
  Array.to_list (Array.sub pool 0 (min k (Array.length pool)))

let generate ~seed ~machines ~duration ~lease =
  let rng = Rng.create seed in
  let budget = ref (Params.default.Params.replication - 1) in
  let victims = ref [] in
  let crashed = ref [] in
  let events = ref [] in
  (* inject within the first three quarters so recovery can complete inside
     the run; the explorer heals and quiesces after the last event anyway *)
  let horizon = Time.to_ns (Time.div_int (Time.mul_int duration 3) 4) in
  let lo = horizon / 8 in
  let at () = Time.ns (Rng.int_in_range rng ~lo ~hi:horizon) in
  let add fault = events := { at = at (); fault } :: !events in
  let victimize m =
    if not (List.mem m !victims) then begin
      victims := m :: !victims;
      decr budget
    end
  in
  let power_run = Rng.int rng 100 < 15 in
  if power_run then begin
    add Power_cycle;
    for _ = 1 to Rng.int rng 3 do
      let src = Rng.int rng machines and dst = Rng.int rng machines in
      if src <> dst then
        add (Link_fault { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:300); loss = 0. })
    done
  end
  else
    for _ = 1 to Rng.int_in_range rng ~lo:2 ~hi:6 do
      match Rng.int rng 100 with
      | k when k < 25 && !budget > 0 ->
          (* crash one machine; maybe reboot it much later — the
             reincarnation is an evicted zombie that must not disturb *)
          (match pick_distinct rng ~n:machines ~k:1 ~excluding:!crashed with
          | [ m ] ->
              victimize m;
              crashed := m :: !crashed;
              let crash_at = at () in
              events := { at = crash_at; fault = Crash m } :: !events;
              if Rng.bool rng then
                events :=
                  { at = Time.add crash_at (Time.mul_int lease 4); fault = Restart m }
                  :: !events
          | _ -> ())
      | k when k < 40 && !budget > 0 ->
          (* cut a minority group off, heal a while later *)
          let size = 1 + Rng.int rng !budget in
          let group = pick_distinct rng ~n:machines ~k:size ~excluding:!crashed in
          if group <> [] then begin
            List.iter victimize group;
            let cut_at = at () in
            events := { at = cut_at; fault = Partition group } :: !events;
            events :=
              { at = Time.add cut_at (Time.mul_int lease (2 + Rng.int rng 6)); fault = Heal }
              :: !events
          end
      | k when k < 60 && !budget > 0 ->
          (* lossy or slow link: either endpoint may miss lease traffic *)
          let src = Rng.int rng machines and dst = Rng.int rng machines in
          if src <> dst && not (List.mem src !crashed) && not (List.mem dst !crashed)
          then begin
            let loss = if Rng.bool rng then 0.05 +. (0.25 *. Rng.float rng) else 0. in
            if loss > 0. then victimize (if Rng.bool rng then src else dst);
            let fault_at = at () in
            events :=
              { at = fault_at;
                fault =
                  Link_fault
                    { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:500); loss } }
              :: !events;
            events :=
              { at = Time.add fault_at (Time.mul_int lease (1 + Rng.int rng 4));
                fault = Link_heal { src; dst } }
              :: !events
          end
      | k when k < 80 && !budget > 0 ->
          (* stall a lease manager for up to ~1.5 leases: long enough to be
             suspected, short enough that it sometimes survives *)
          let m = Rng.int rng machines in
          if not (List.mem m !crashed) then begin
            victimize m;
            add
              (Lease_stall
                 { machine = m;
                   duration = Time.ns (Time.to_ns lease * Rng.int_in_range rng ~lo:4 ~hi:15 / 10) })
          end
      | _ when !budget > 0 ->
          let m = Rng.int rng machines in
          if not (List.mem m !crashed) then begin
            victimize m;
            add (Clock_skew { machine = m; delta = Time.div_int lease (2 + Rng.int rng 4) })
          end
      | _ ->
          (* budget exhausted: benign delay-only link fault *)
          let src = Rng.int rng machines and dst = Rng.int rng machines in
          if src <> dst then
            add
              (Link_fault
                 { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:300); loss = 0. })
    done;
  let cmp a b =
    match Time.compare a.at b.at with 0 -> compare a.fault b.fault | c -> c
  in
  { seed; machines; events = List.stable_sort cmp !events }

(* Gray-failure schedules: every fault leaves its victim alive but degraded
   — a slow/lossy NIC, a directed half-dead link, a throttled CPU, a
   flapping lease manager. The fault budget is the same as [generate]'s:
   any fault that can plausibly end in suspicion and eviction (NIC loss,
   blackholes, lease flapping, CPU throttling) victimises distinct machines
   up to [replication - 1], so no region can lose every replica even if all
   the gray faults escalate to evictions. A separate generator keeps the
   classic pools byte-identical: [generate] draws exactly the stream it
   always did. *)
let generate_gray ~seed ~machines ~duration ~lease =
  let rng = Rng.create seed in
  let budget = ref (Params.default.Params.replication - 1) in
  let victims = ref [] in
  let events = ref [] in
  let horizon = Time.to_ns (Time.div_int (Time.mul_int duration 3) 4) in
  let lo = horizon / 8 in
  let at () = Time.ns (Rng.int_in_range rng ~lo ~hi:horizon) in
  let add fault = events := { at = at (); fault } :: !events in
  let victimize m =
    if not (List.mem m !victims) then begin
      victims := m :: !victims;
      decr budget
    end
  in
  for _ = 1 to Rng.int_in_range rng ~lo:2 ~hi:6 do
    match Rng.int rng 100 with
    | k when k < 30 && !budget > 0 ->
        (* slow-but-alive NIC; loss can starve UD lease traffic, so it
           spends budget. Healed a few leases later about half the time —
           the explorer's final heal catches the rest. *)
        (match pick_distinct rng ~n:machines ~k:1 ~excluding:!victims with
        | [ m ] ->
            victimize m;
            let delay_factor = 2. +. (6. *. Rng.float rng) in
            let loss = 0.03 +. (0.12 *. Rng.float rng) in
            let fault_at = at () in
            events :=
              { at = fault_at; fault = Slow_nic { machine = m; delay_factor; loss } }
              :: !events;
            if Rng.bool rng then
              events :=
                { at = Time.add fault_at (Time.mul_int lease (2 + Rng.int rng 5));
                  fault = Nic_heal m }
                :: !events
        | _ -> ())
    | k when k < 50 && !budget > 1 ->
        (* one directed dead link: a->b blackholed while b->a lives. Either
           endpoint can end up suspected depending on where the CM sits, so
           both spend budget. *)
        (match pick_distinct rng ~n:machines ~k:2 ~excluding:!victims with
        | [ a; b ] ->
            victimize a;
            victimize b;
            let cut_at = at () in
            events :=
              { at = cut_at; fault = Asym_partition { srcs = [ a ]; dsts = [ b ] } }
              :: !events;
            if Rng.bool rng then
              events :=
                { at = Time.add cut_at (Time.mul_int lease (2 + Rng.int rng 6));
                  fault = Heal }
                :: !events
        | _ -> ())
    | k when k < 70 && !budget > 0 ->
        (* machine at kx CPU latency; queueing can delay lease renewal on
           the shared-thread lease implementations, so it spends budget *)
        (match pick_distinct rng ~n:machines ~k:1 ~excluding:!victims with
        | [ m ] ->
            victimize m;
            let factor = 2 + Rng.int rng 5 in
            let slow_at = at () in
            events := { at = slow_at; fault = Cpu_slow { machine = m; factor } } :: !events;
            if Rng.bool rng then
              events :=
                { at = Time.add slow_at (Time.mul_int lease (2 + Rng.int rng 5));
                  fault = Cpu_heal m }
                :: !events
        | _ -> ())
    | k when k < 85 && !budget > 0 ->
        (* lease flapping: repeated sub-expiry stalls that compound *)
        (match pick_distinct rng ~n:machines ~k:1 ~excluding:!victims with
        | [ m ] ->
            victimize m;
            let count = 3 + Rng.int rng 4 in
            let stall =
              Time.ns (Time.to_ns lease * Rng.int_in_range rng ~lo:4 ~hi:9 / 10)
            in
            let period =
              Time.ns (Time.to_ns lease * Rng.int_in_range rng ~lo:5 ~hi:15 / 10)
            in
            add (Lease_flap { machine = m; period; count; stall })
        | _ -> ())
    | _ ->
        (* budget exhausted or filler: delay-only slow NIC — microseconds of
           extra flight time against millisecond leases, benign by three
           orders of magnitude *)
        let m = Rng.int rng machines in
        let fault_at = at () in
        events :=
          { at = fault_at;
            fault =
              Slow_nic
                { machine = m; delay_factor = 1.5 +. (2.5 *. Rng.float rng); loss = 0. } }
          :: !events;
        events :=
          { at = Time.add fault_at (Time.mul_int lease (1 + Rng.int rng 4));
            fault = Nic_heal m }
          :: !events
  done;
  let cmp a b =
    match Time.compare a.at b.at with 0 -> compare a.fault b.fault | c -> c
  in
  { seed; machines; events = List.stable_sort cmp !events }
