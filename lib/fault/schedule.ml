open Farm_sim
open Farm_core

(* A fault schedule is a timed script of injections drawn from a seeded
   generator: the integer seed determines the script exactly, so any failing
   run is reproduced bit-for-bit by re-running its seed.

   The generator respects the cluster's fault budget. With [replication = 3]
   FaRM tolerates f = 2 failures per region, so a schedule victimises at
   most [replication - 1] distinct machines with faults that can lead to
   suspicion and eviction (crash, partition, long lease stall, clock skew,
   lossy links). Whole-cluster power failures are a different regime — NVRAM
   recovery rather than membership change — so a power-cycle schedule mixes
   only benign link delays with the power failure. *)

type fault =
  | Crash of int
  | Restart of int
  | Power_cycle
  | Partition of int list  (** isolate these machines from the rest *)
  | Heal  (** remove all partitions and link faults *)
  | Link_fault of { src : int; dst : int; delay : Time.t; loss : float }
  | Link_heal of { src : int; dst : int }
  | Lease_stall of { machine : int; duration : Time.t }
  | Clock_skew of { machine : int; delta : Time.t }

type event = { at : Time.t; fault : fault }
type t = { seed : int; machines : int; events : event list }

let pp_fault ppf = function
  | Crash m -> Fmt.pf ppf "crash m%d" m
  | Restart m -> Fmt.pf ppf "restart m%d" m
  | Power_cycle -> Fmt.string ppf "power-cycle"
  | Partition ms ->
      Fmt.pf ppf "partition {%a}" Fmt.(list ~sep:(any ",") int) ms
  | Heal -> Fmt.string ppf "heal"
  | Link_fault { src; dst; delay; loss } ->
      Fmt.pf ppf "link-fault %d->%d delay=%a loss=%.2f" src dst Time.pp delay loss
  | Link_heal { src; dst } -> Fmt.pf ppf "link-heal %d->%d" src dst
  | Lease_stall { machine; duration } ->
      Fmt.pf ppf "lease-stall m%d %a" machine Time.pp duration
  | Clock_skew { machine; delta } ->
      Fmt.pf ppf "clock-skew m%d %a" machine Time.pp delta

let pp_event ppf e = Fmt.pf ppf "@%a %a" Time.pp e.at pp_fault e.fault

let pp ppf t =
  Fmt.pf ppf "schedule seed=%d machines=%d@.%a" t.seed t.machines
    Fmt.(list ~sep:(any "@.") pp_event)
    t.events

(* Pick [k] distinct machines out of [n]. *)
let pick_distinct rng ~n ~k ~excluding =
  let pool = Array.of_list (List.filter (fun m -> not (List.mem m excluding)) (List.init n Fun.id)) in
  Rng.shuffle_in_place rng pool;
  Array.to_list (Array.sub pool 0 (min k (Array.length pool)))

let generate ~seed ~machines ~duration ~lease =
  let rng = Rng.create seed in
  let budget = ref (Params.default.Params.replication - 1) in
  let victims = ref [] in
  let crashed = ref [] in
  let events = ref [] in
  (* inject within the first three quarters so recovery can complete inside
     the run; the explorer heals and quiesces after the last event anyway *)
  let horizon = Time.to_ns (Time.div_int (Time.mul_int duration 3) 4) in
  let lo = horizon / 8 in
  let at () = Time.ns (Rng.int_in_range rng ~lo ~hi:horizon) in
  let add fault = events := { at = at (); fault } :: !events in
  let victimize m =
    if not (List.mem m !victims) then begin
      victims := m :: !victims;
      decr budget
    end
  in
  let power_run = Rng.int rng 100 < 15 in
  if power_run then begin
    add Power_cycle;
    for _ = 1 to Rng.int rng 3 do
      let src = Rng.int rng machines and dst = Rng.int rng machines in
      if src <> dst then
        add (Link_fault { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:300); loss = 0. })
    done
  end
  else
    for _ = 1 to Rng.int_in_range rng ~lo:2 ~hi:6 do
      match Rng.int rng 100 with
      | k when k < 25 && !budget > 0 ->
          (* crash one machine; maybe reboot it much later — the
             reincarnation is an evicted zombie that must not disturb *)
          (match pick_distinct rng ~n:machines ~k:1 ~excluding:!crashed with
          | [ m ] ->
              victimize m;
              crashed := m :: !crashed;
              let crash_at = at () in
              events := { at = crash_at; fault = Crash m } :: !events;
              if Rng.bool rng then
                events :=
                  { at = Time.add crash_at (Time.mul_int lease 4); fault = Restart m }
                  :: !events
          | _ -> ())
      | k when k < 40 && !budget > 0 ->
          (* cut a minority group off, heal a while later *)
          let size = 1 + Rng.int rng !budget in
          let group = pick_distinct rng ~n:machines ~k:size ~excluding:!crashed in
          if group <> [] then begin
            List.iter victimize group;
            let cut_at = at () in
            events := { at = cut_at; fault = Partition group } :: !events;
            events :=
              { at = Time.add cut_at (Time.mul_int lease (2 + Rng.int rng 6)); fault = Heal }
              :: !events
          end
      | k when k < 60 && !budget > 0 ->
          (* lossy or slow link: either endpoint may miss lease traffic *)
          let src = Rng.int rng machines and dst = Rng.int rng machines in
          if src <> dst && not (List.mem src !crashed) && not (List.mem dst !crashed)
          then begin
            let loss = if Rng.bool rng then 0.05 +. (0.25 *. Rng.float rng) else 0. in
            if loss > 0. then victimize (if Rng.bool rng then src else dst);
            let fault_at = at () in
            events :=
              { at = fault_at;
                fault =
                  Link_fault
                    { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:500); loss } }
              :: !events;
            events :=
              { at = Time.add fault_at (Time.mul_int lease (1 + Rng.int rng 4));
                fault = Link_heal { src; dst } }
              :: !events
          end
      | k when k < 80 && !budget > 0 ->
          (* stall a lease manager for up to ~1.5 leases: long enough to be
             suspected, short enough that it sometimes survives *)
          let m = Rng.int rng machines in
          if not (List.mem m !crashed) then begin
            victimize m;
            add
              (Lease_stall
                 { machine = m;
                   duration = Time.ns (Time.to_ns lease * Rng.int_in_range rng ~lo:4 ~hi:15 / 10) })
          end
      | _ when !budget > 0 ->
          let m = Rng.int rng machines in
          if not (List.mem m !crashed) then begin
            victimize m;
            add (Clock_skew { machine = m; delta = Time.div_int lease (2 + Rng.int rng 4) })
          end
      | _ ->
          (* budget exhausted: benign delay-only link fault *)
          let src = Rng.int rng machines and dst = Rng.int rng machines in
          if src <> dst then
            add
              (Link_fault
                 { src; dst; delay = Time.us (Rng.int_in_range rng ~lo:20 ~hi:300); loss = 0. })
    done;
  let cmp a b =
    match Time.compare a.at b.at with 0 -> compare a.fault b.fault | c -> c
  in
  { seed; machines; events = List.stable_sort cmp !events }
