open Farm_sim
open Farm_core

(** Fault application: translates scripted faults into the cluster's
    injection hooks, reporting each through the engine tracer so a replayed
    seed yields an identical event trace. *)

val apply : Cluster.t -> Schedule.fault -> unit
(** Apply one fault now. Crash/stall/skew of a dead machine and restart of
    a live one are silently skipped (schedules are generated without
    knowledge of prior faults' outcomes). Must be called between engine
    runs, not from within an engine callback: power-cycling drives the
    engine internally. *)

val run : Cluster.t -> start:Time.t -> Schedule.t -> unit
(** Advance the simulation to each event (relative to [start]) and apply
    it; returns at the last event's instant. *)
