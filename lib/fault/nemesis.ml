open Farm_sim
open Farm_core

(* The nemesis applies a fault schedule to a live cluster, translating each
   scripted fault into the corresponding injection hook and reporting it
   through the engine tracer so that a replayed seed produces an identical
   event trace.

   Faults are applied from the driving loop, never from scheduled engine
   callbacks: [Cluster.power_cycle] drives the engine internally, so it must
   run between [Engine.run] calls, not within one. *)

let emit c fmt = Fmt.kstr (fun s -> Engine.emit c.Cluster.engine s) fmt

let apply (c : Cluster.t) (fault : Schedule.fault) =
  match fault with
  | Schedule.Crash m ->
      if (Cluster.machine c m).State.alive then begin
        emit c "nemesis: crash m%d" m;
        Cluster.kill c m
      end
  | Schedule.Restart m ->
      let st = Cluster.machine c m in
      if not st.State.alive then begin
        (* reboot with the machine's own pre-crash configuration: a real
           reincarnation comes back with stale knowledge and must be kept
           out by the membership protocol, not by the harness *)
        emit c "nemesis: restart m%d" m;
        ignore (Cluster.restart_machine c m ~config:st.State.config)
      end
  | Schedule.Power_cycle ->
      emit c "nemesis: power-cycle";
      Cluster.heal c;
      Cluster.power_cycle c
  | Schedule.Partition ms ->
      emit c "nemesis: partition {%a}" Fmt.(list ~sep:(any ",") int) ms;
      Cluster.partition c ~group:1 ms
  | Schedule.Heal ->
      emit c "nemesis: heal";
      Cluster.heal c
  | Schedule.Link_fault { src; dst; delay; loss } ->
      emit c "nemesis: link-fault %d->%d delay=%a loss=%.2f" src dst Time.pp delay loss;
      Farm_net.Fabric.set_link_fault ~delay ~loss c.Cluster.fabric ~src ~dst
  | Schedule.Link_heal { src; dst } ->
      emit c "nemesis: link-heal %d->%d" src dst;
      Farm_net.Fabric.clear_link_fault c.Cluster.fabric ~src ~dst
  | Schedule.Lease_stall { machine; duration } ->
      let st = Cluster.machine c machine in
      if st.State.alive then begin
        emit c "nemesis: lease-stall m%d %a" machine Time.pp duration;
        Lease.inject_stall st ~duration
      end
  | Schedule.Clock_skew { machine; delta } ->
      let st = Cluster.machine c machine in
      if st.State.alive then begin
        emit c "nemesis: clock-skew m%d %a" machine Time.pp delta;
        Lease.inject_clock_skew st ~delta
      end
  | Schedule.Slow_nic { machine; delay_factor; loss } ->
      emit c "nemesis: slow-nic m%d x%.1f loss=%.2f" machine delay_factor loss;
      Farm_net.Fabric.set_nic_gray ~delay_factor ~loss c.Cluster.fabric ~machine
  | Schedule.Nic_heal machine ->
      emit c "nemesis: nic-heal m%d" machine;
      Farm_net.Fabric.clear_nic_gray c.Cluster.fabric ~machine
  | Schedule.Asym_partition { srcs; dsts } ->
      emit c "nemesis: asym-partition {%a}->{%a}"
        Fmt.(list ~sep:(any ",") int)
        srcs
        Fmt.(list ~sep:(any ",") int)
        dsts;
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then Farm_net.Fabric.set_blackhole c.Cluster.fabric ~src ~dst)
            dsts)
        srcs
  | Schedule.Cpu_slow { machine; factor } ->
      let st = Cluster.machine c machine in
      if st.State.alive then begin
        emit c "nemesis: cpu-slow m%d x%d" machine factor;
        Farm_sim.Cpu.set_slow_factor st.State.cpu factor
      end
  | Schedule.Cpu_heal machine ->
      let st = Cluster.machine c machine in
      if st.State.alive then begin
        emit c "nemesis: cpu-heal m%d" machine;
        Farm_sim.Cpu.set_slow_factor st.State.cpu 1
      end
  | Schedule.Lease_flap { machine; period; count; stall } ->
      (* Expand the flap into [count] periodic stall injections, scheduled
         as engine callbacks. Unlike power-cycling, a stall injection only
         mutates lease state and emits — safe from inside a callback, and
         the deterministic engine clock makes the expansion replayable. *)
      emit c "nemesis: lease-flap m%d %dx%a every %a" machine count Time.pp stall
        Time.pp period;
      for i = 0 to count - 1 do
        Engine.schedule_in c.Cluster.engine ~after:(Time.mul_int period i) (fun () ->
            let st = Cluster.machine c machine in
            if st.State.alive then begin
              emit c "nemesis: lease-flap-stall m%d %a" machine Time.pp stall;
              Lease.inject_stall st ~duration:stall
            end)
      done

(* Run the schedule against the cluster: advance the simulation to each
   event's instant (relative to [start]) and apply its fault. Returns with
   the engine at the last event's time; the caller finishes the run and
   heals/quiesces before probing invariants. *)
let run (c : Cluster.t) ~start (sched : Schedule.t) =
  List.iter
    (fun (e : Schedule.event) ->
      let at = Time.add start e.Schedule.at in
      if Time.( > ) at (Cluster.now c) then Cluster.run_until c ~at;
      apply c e.Schedule.fault)
    sched.Schedule.events
