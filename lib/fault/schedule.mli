open Farm_sim

(** Seeded fault scripts.

    A schedule is a timed list of fault injections drawn deterministically
    from an integer seed: equal seeds yield equal scripts, so a failing
    fuzzer run is reproduced exactly by its seed. The generator respects
    the cluster's fault budget — at most [replication - 1] machines are
    victimised by eviction-capable faults per schedule, so no region can
    lose all its replicas — and whole-cluster power failures are only mixed
    with benign link delays. *)

type fault =
  | Crash of int
  | Restart of int
  | Power_cycle
  | Partition of int list  (** isolate these machines from the rest *)
  | Heal  (** remove all partitions and link faults *)
  | Link_fault of { src : int; dst : int; delay : Time.t; loss : float }
  | Link_heal of { src : int; dst : int }
  | Lease_stall of { machine : int; duration : Time.t }
  | Clock_skew of { machine : int; delta : Time.t }
  | Slow_nic of { machine : int; delay_factor : float; loss : float }
      (** gray: every packet touching [machine] flies [delay_factor] x
          slower and is additionally lost with probability [loss] *)
  | Nic_heal of int
  | Asym_partition of { srcs : int list; dsts : int list }
      (** gray: directed blackholes src->dst for every pair; the reverse
          direction keeps working. Healed only by [Heal]. *)
  | Cpu_slow of { machine : int; factor : int }
      (** gray: every CPU cost on [machine] multiplied by [factor] *)
  | Cpu_heal of int
  | Lease_flap of { machine : int; period : Time.t; count : int; stall : Time.t }
      (** gray: [count] lease-manager stalls of [stall] each, [period]
          apart — each alone below expiry, compounding toward it *)

type event = { at : Time.t; fault : fault }
type t = { seed : int; machines : int; events : event list }

val generate : seed:int -> machines:int -> duration:Time.t -> lease:Time.t -> t
(** Draw a schedule for a [machines]-node cluster whose faults land within
    the first three quarters of [duration]; [lease] scales stall and heal
    delays. *)

val generate_gray : seed:int -> machines:int -> duration:Time.t -> lease:Time.t -> t
(** Like {!generate} but drawing only from the gray-failure family
    (slow/lossy NICs, directed blackholes, CPU throttling, lease flapping):
    every victim stays alive but degraded. Same fault budget; a separate
    generator so classic pools keep their exact historical streams. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
