open Farm_sim
open Farm_core
open Farm_workloads

(* The schedule explorer: run N random fault schedules of a workload,
   checking every run's history and final state. Each schedule runs a fresh
   cluster whose every source of randomness — machine rngs, workload op
   mix, the fault script itself — derives from one integer seed, so a
   failing run is reproduced bit-for-bit by [run_one] on that seed and its
   event trace is byte-identical.

   The workload is a conserving bank: workers transfer random amounts
   between cells, so the cell sum is invariant under any committed prefix;
   a side stream of B-tree inserts and deletes exercises structure
   modification under faults. Committed transactions are recorded and
   checked for strict serializability; after the schedule the cluster is
   healed, quiesced and probed (see {!Invariant}). *)

type opts = {
  machines : int;
  cells : int;
  workers : int;  (** workers per machine *)
  duration : Time.t;  (** workload + fault window per schedule *)
  btree : bool;
  batching : bool;  (** doorbell-batched commit pipeline (the default) *)
  protocol : Params.protocol;  (** commit protocol variant under test *)
  record : bool;  (** capture flight-recorder events (the default) *)
  perfetto : bool;  (** also capture a causal trace (off by default) *)
  gray : bool;  (** draw gray-failure schedules ({!Schedule.generate_gray}) *)
}

let default_opts =
  {
    machines = 6;
    cells = 16;
    workers = 2;
    duration = Time.ms 60;
    btree = true;
    batching = true;
    protocol = Params.Validate_at_commit;
    record = true;
    perfetto = false;
    gray = false;
  }

type outcome = {
  seed : int;
  committed : int;
  violations : string list;  (** empty = the run passed every check *)
  trace : string list;  (** merged fault / milestone event trace *)
  recorder : string list;  (** flight-recorder dump (when recording) *)
  perfetto_json : string option;  (** rendered causal trace (when [perfetto]) *)
  abort_causes : (string * int) list;  (** cluster-wide abort breakdown *)
  blame : (string * int) list;  (** latency-blame ns totals (when recording) *)
}

let ok o = o.violations = []

type report = {
  base_seed : int;
  schedules : int;
  total_committed : int;
  failures : outcome list;
}

(* Simulation-speed parameters, as the cluster test-suite uses. *)
let params =
  { Params.default with Params.lease_duration = Time.ms 5; region_size = 1 lsl 18 }

let initial_balance = 100

let read_int tx addr = Int64.to_int (Bytes.get_int64_le (Txn.read tx addr ~len:8) 0)

let write_int tx addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Txn.write tx addr b

(* One committed-or-aborted bank transfer, built by hand so the footprint is
   available for history recording after commit. *)
let transfer st ~rng ~hist ~addrs =
  let n = Array.length addrs in
  let a = Rng.int rng n and b = Rng.int rng n in
  let ro = Rng.int rng 100 < 25 in
  let tx = Txn.begin_tx st ~thread:0 in
  match
    try
      let va = read_int tx addrs.(a) in
      let vb = read_int tx addrs.(b) in
      if not ro then
        if a <> b then begin
          let amt = 1 + Rng.int rng 5 in
          write_int tx addrs.(a) (va - amt);
          write_int tx addrs.(b) (vb + amt)
        end
        else write_int tx addrs.(a) va;
      Commit.commit tx
    with Txn.Abort reason ->
      tx.Txn.finished <- true;
      Txn.release_read_ts tx;
      Txn.return_allocations tx;
      Error reason
  with
  | Ok () -> ignore (History.record hist tx)
  | Error _ -> ()

let spawn_workers (c : Cluster.t) ~opts ~stop ~hist ~addrs ~tree =
  Array.iter
    (fun (st : State.t) ->
      if st.State.alive then
        for _w = 1 to opts.workers do
          Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
              let rng = Rng.split st.State.rng in
              (* per-machine handle: node caches must not be shared *)
              let tree =
                Option.map (fun t -> { t with Farm_kv.Btree.cache = Hashtbl.create 64 }) tree
              in
              while not !stop do
                (match tree with
                | Some t when Rng.int rng 100 < 20 ->
                    ignore
                      (Api.run_retry ~attempts:3 st ~thread:0 (fun tx ->
                           let k = Rng.int rng 200 in
                           if Rng.bool rng then Farm_kv.Btree.insert tx t k (Rng.int rng 1000)
                           else ignore (Farm_kv.Btree.delete tx t k)))
                | _ -> transfer st ~rng ~hist ~addrs);
                Proc.sleep (Time.us (50 + Rng.int rng 200))
              done)
        done)
    c.Cluster.machines

(* Run one schedule. Every check failure becomes a violation string; the
   run passes iff none accumulate. [probe] is an extra caller-supplied
   invariant probe run against the healed cluster (tests use it to inject
   violations and exercise the failing-outcome path). *)
let run_one ?(opts = default_opts) ?probe seed =
  let trace = ref [] in
  let params =
    { params with Params.doorbell_batching = opts.batching; protocol = opts.protocol }
  in
  let c = Cluster.create ~seed ~params ~machines:opts.machines () in
  Cluster.set_recording c opts.record;
  (* blame rides the recording switch: determinism-inert, so outcomes are
     identical either way, and a failing schedule's dump can then say where
     its transactions spent their time *)
  Cluster.set_blame c opts.record;
  Cluster.set_tracing c opts.perfetto;
  Engine.set_tracer c.Cluster.engine (Some (fun ~at msg -> trace := (at, msg) :: !trace));
  (* setup: bank cells in one region, optionally a B-tree in another *)
  let r = Cluster.alloc_region_exn c in
  let addrs =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.init opts.cells (fun _ ->
                  let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                  write_int tx a initial_balance;
                  a))
        with
        | Ok addrs -> addrs
        | Error e -> Fmt.failwith "explorer setup: %a" Txn.pp_abort e)
  in
  let tree =
    if not opts.btree then None
    else
      let tr = Cluster.alloc_region_exn c in
      Some
        (Cluster.run_on c ~machine:0 (fun st ->
             Farm_kv.Btree.create st ~thread:0 ~regions:[| tr.Wire.rid |] ()))
  in
  let hist = History.create () in
  let stop = ref false in
  spawn_workers c ~opts ~stop ~hist ~addrs ~tree;
  (* draw and run the fault script *)
  let start = Cluster.now c in
  let sched =
    (if opts.gray then Schedule.generate_gray else Schedule.generate)
      ~seed ~machines:opts.machines ~duration:opts.duration
      ~lease:params.Params.lease_duration
  in
  Nemesis.run c ~start sched;
  (* a power failure cancelled every worker along with its machine; resume
     load on the rebooted cluster for the rest of the window *)
  if
    List.exists
      (fun (e : Schedule.event) -> e.Schedule.fault = Schedule.Power_cycle)
      sched.Schedule.events
  then spawn_workers c ~opts ~stop ~hist ~addrs ~tree;
  Cluster.run_until c ~at:(Time.add start opts.duration);
  stop := true;
  Cluster.run_for c ~d:(Time.ms 5);
  (* heal, settle, and let lazy truncation converge the backups *)
  Cluster.heal c;
  let settled = Cluster.quiesce c in
  Cluster.run_for c ~d:(Time.ms 60);
  let violations = ref [] in
  let violate fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  if not settled then violate "liveness: cluster failed to quiesce";
  (match History.check hist with
  | History.Serializable -> ()
  | v -> violate "history: %a" History.pp_verdict v);
  List.iter (fun v -> violate "%a" Invariant.pp v) (Invariant.check c);
  (match probe with
  | Some p -> List.iter (fun s -> violate "%s" s) (p ~seed c)
  | None -> ());
  (* semantic probes need a live member to run transactions from *)
  let member =
    match Cluster.current_config c with
    | None -> None
    | Some cfg ->
        List.find_opt (fun m -> (Cluster.machine c m).State.alive) cfg.Config.members
  in
  (match member with
  | None -> violate "liveness: no alive member to probe from"
  | Some m ->
      (match
         Cluster.run_on c ~machine:m (fun st ->
             Api.run_retry st ~thread:0 (fun tx ->
                 Array.fold_left (fun acc a -> acc + read_int tx a) 0 addrs))
       with
      | Ok total ->
          let expect = opts.cells * initial_balance in
          if total <> expect then violate "conservation: cell sum %d, expected %d" total expect
      | Error e -> violate "conservation: probe aborted: %a" Txn.pp_abort e);
      match tree with
      | None -> ()
      | Some t -> (
          let t = { t with Farm_kv.Btree.cache = Hashtbl.create 16 } in
          match
            Cluster.run_on c ~machine:m (fun st ->
                Api.run_retry st ~thread:0 (fun tx -> Farm_kv.Btree.check_invariants tx t))
          with
          | Ok ([], _keys) -> ()
          | Ok (problems, _) ->
              List.iter (fun p -> violate "btree: %s" p) problems
          | Error e -> violate "btree: probe aborted: %a" Txn.pp_abort e));
  (* merged, time-ordered event trace: nemesis + network drops (tracer)
     and protocol milestones; deterministic in the seed *)
  let lines =
    List.stable_sort
      (fun (t1, _) (t2, _) -> Time.compare t1 t2)
      (List.map
         (fun (tag, m, at) -> (at, Fmt.str "milestone m%d %s" m tag))
         (Cluster.milestones c)
      @ List.rev !trace)
    |> List.map (fun (at, msg) -> Fmt.str "%a %s" Time.pp at msg)
  in
  {
    seed;
    committed = History.size hist;
    violations = List.rev !violations;
    trace = lines;
    recorder = (if opts.record then Cluster.flight_dump c else []);
    (* rendered inside run_one so [sweep ~jobs] merges finished strings and
       the artifact stays byte-identical for any job count *)
    perfetto_json = (if opts.perfetto then Some (Cluster.trace_dump c) else None);
    abort_causes = Cluster.abort_breakdown c;
    blame = (if opts.record then Cluster.blame_totals c else []);
  }

let pp_outcome ppf o =
  if ok o then Fmt.pf ppf "seed %d: ok (%d committed)" o.seed o.committed
  else begin
    Fmt.pf ppf "seed %d: FAILED (%d committed)@.%a@.--- trace ---@.%a" o.seed o.committed
      Fmt.(list ~sep:(any "@.") (fmt "  violation: %s"))
      o.violations
      Fmt.(list ~sep:(any "@.") (fmt "  %s"))
      o.trace;
    if o.blame <> [] then
      Fmt.pf ppf "@.--- latency blame (us) ---@.%a"
        Fmt.(
          list ~sep:(any "@.") (fun ppf (name, ns) ->
              pf ppf "  %-12s %d.%03d" name (ns / 1000) (abs ns mod 1000)))
        o.blame;
    if o.recorder <> [] then
      Fmt.pf ppf "@.--- flight recorder (last %d protocol events) ---@.%a"
        (List.length o.recorder)
        Fmt.(list ~sep:(any "@.") (fmt "  %s"))
        o.recorder
  end

(* Explore [schedules] runs; per-run seeds derive from [base_seed] so the
   whole exploration is one deterministic function of it. A failing run
   prints its own seed for [run_one] replay.

   [jobs] farms the seeds out to worker domains ({!Domain_pool}). Each
   schedule is a closed world — fresh cluster, fresh rngs, fresh obs sinks,
   all derived from its seed — so parallel workers share nothing; outcomes
   are merged back in seed order by the pool's in-order [on_result] stream,
   which makes the report (totals, failure list, every rendered trace and
   flight-recorder dump, and everything [on_outcome] prints) byte-identical
   regardless of job count. A worker exception is re-raised in seed order,
   exactly where the sequential loop would have raised it. *)
let sweep ?(opts = default_opts) ?probe ?on_outcome ?(jobs = 1) ~base_seed ~schedules () =
  let derive = Rng.create base_seed in
  let seeds = Array.init schedules (fun _ -> Rng.bits derive) in
  let failures = ref [] in
  let total = ref 0 in
  let results =
    Domain_pool.map ~jobs
      ~on_result:(fun i r ->
        match r with
        | Error _ -> ()
        | Ok o ->
            total := !total + o.committed;
            if not (ok o) then failures := o :: !failures;
            (match on_outcome with Some f -> f ~index:(i + 1) o | None -> ()))
      (fun seed -> run_one ~opts ?probe seed)
      seeds
  in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  { base_seed; schedules; total_committed = !total; failures = List.rev !failures }

let run ?opts ?on_outcome ~base_seed ~schedules () =
  sweep ?opts ?on_outcome ~jobs:1 ~base_seed ~schedules ()
