open Farm_sim

(** The schedule explorer: N random fault schedules of a conserving bank
    (+ B-tree) workload, each on a fresh cluster fully determined by one
    integer seed. Every run's committed history is checked for strict
    serializability, and the healed, quiesced cluster is probed for state
    invariants ({!Invariant}), value conservation, and B-tree structural
    integrity. A failing run is reproduced bit-for-bit — identical faults,
    identical event trace — by {!run_one} on its seed. *)

type opts = {
  machines : int;
  cells : int;
  workers : int;  (** workers per machine *)
  duration : Time.t;  (** workload + fault window per schedule *)
  btree : bool;
  batching : bool;  (** doorbell-batched commit pipeline (the default) *)
  protocol : Farm_core.Params.protocol;
      (** commit protocol variant under test: the validate-at-commit
          baseline (default) or the snapshot (opacity) protocol *)
  record : bool;
      (** capture flight-recorder events (the default). Recording never
          perturbs the schedule: outcomes are identical either way. *)
  perfetto : bool;
      (** also capture a causal trace ({!Farm_core.Cluster.trace_dump}),
          rendered into [perfetto_json]. Off by default (span buffers cost
          memory per machine); tracing never perturbs the schedule. *)
  gray : bool;
      (** draw schedules from the gray-failure family
          ({!Schedule.generate_gray}: slow/lossy NICs, directed blackholes,
          CPU throttling, lease flapping) instead of the classic
          crash/partition pool. Off by default, so existing pools keep
          their exact historical schedule streams. *)
}

val default_opts : opts

type outcome = {
  seed : int;
  committed : int;
  violations : string list;  (** empty = the run passed every check *)
  trace : string list;  (** merged fault / milestone event trace *)
  recorder : string list;
      (** time-sorted flight-recorder dump: the last protocol events each
          machine observed (empty when [record] was off) *)
  perfetto_json : string option;
      (** the run's merged Chrome trace-event JSON ([None] when [perfetto]
          was off); byte-identical across replays of the same seed *)
  abort_causes : (string * int) list;
      (** cluster-wide abort breakdown ({!Farm_core.Cluster.abort_breakdown}):
          lock-refused / validate-failed / timeout / other *)
  blame : (string * int) list;
      (** cluster-wide latency-blame totals, ns per category
          ({!Farm_core.Cluster.blame_totals}; empty when [record] was off) —
          where a failing schedule's transactions actually spent their
          time *)
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

type report = {
  base_seed : int;
  schedules : int;
  total_committed : int;
  failures : outcome list;
}

val run_one :
  ?opts:opts -> ?probe:(seed:int -> Farm_core.Cluster.t -> string list) -> int -> outcome
(** Run one schedule from its seed. Deterministic: equal seeds yield equal
    outcomes, including byte-identical traces. [probe] is an extra
    invariant probe run against the healed cluster after the built-in
    checks; every string it returns becomes a violation (tests use it to
    inject failures and exercise the failing-outcome path). *)

val sweep :
  ?opts:opts ->
  ?probe:(seed:int -> Farm_core.Cluster.t -> string list) ->
  ?on_outcome:(index:int -> outcome -> unit) ->
  ?jobs:int ->
  base_seed:int ->
  schedules:int ->
  unit ->
  report
(** Explore [schedules] runs with per-run seeds derived from [base_seed],
    farmed out to [jobs] worker domains (default 1 = sequential, in the
    calling domain). Each schedule is an isolated world derived from its
    seed, and outcomes are merged in seed order, so the report — including
    [on_outcome] delivery order and every rendered failure trace and
    flight-recorder dump — is byte-identical for any [jobs]. [on_outcome]
    always runs in the calling domain. *)

val run :
  ?opts:opts ->
  ?on_outcome:(index:int -> outcome -> unit) ->
  base_seed:int ->
  schedules:int ->
  unit ->
  report
(** [sweep ~jobs:1]: the sequential sweep, kept as the bitwise reference. *)
