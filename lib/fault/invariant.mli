open Farm_core

(** Invariant probes for a healed, quiesced cluster.

    Probes inspect only members of the newest committed configuration:
    alive non-members are evicted zombies whose state is deliberately
    stale. Probe output is a pure function of machine state, so a replayed
    seed reports identical violations. *)

type violation = { name : string; detail : string }

val pp : Format.formatter -> violation -> unit

val check : Cluster.t -> violation list
(** Run every probe: no leaked lock bits on primaries, allocator free-list
    / free-set agreement, primary/backup version-and-data equality for
    every replicated object (lock bits masked, fresh backups skipped), and
    all recovery coordinations decided. Empty list = all invariants hold. *)
