open Farm_sim
open Farm_core

(** SLO invariant probes: graceful-degradation checks for a healed,
    quiesced cluster. Where {!Invariant} checks state correctness, these
    check that degradation was *explained* — commit stalls coincide with
    suspicion evidence, and nothing stays parked or queued after heal.
    Pure functions of cluster state: replayed seeds report identical
    violations. *)

val suspicion_tags : string list
(** Milestone tags accepted as evidence that the cluster noticed a fault
    (suspect / reconfiguration / recovery milestones). *)

val no_global_stall : ?threshold:Time.t -> Cluster.t -> string list
(** Violations for every cluster-wide commit stall longer than [threshold]
    (default 3x the lease duration) that overlaps no suspicion milestone,
    scanning the per-ms committed series between the first and last nonzero
    bins with one threshold of slack around each stall. *)

val no_parked_tx : Cluster.t -> string list
(** Violations for transactions still in a live member's active-transaction
    table more than 2x [park_timeout] after they began: after heal +
    quiesce every coordinator must have drained. *)

val queues_drained : queues:(unit -> (string * int) list) -> unit -> string list
(** Violations for admission queues ([label, depth] pairs reported by
    [queues]) that still hold requests; open-loop load may queue during an
    outage but must drain after heal. *)

val gray : seed:int -> Cluster.t -> string list
(** The standard gray-sweep probe ({!no_global_stall} + {!no_parked_tx}),
    shaped for [Explorer.sweep ~probe]. *)
