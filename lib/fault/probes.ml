open Farm_sim
open Farm_core

(* SLO invariant probes: graceful-degradation checks run against a healed,
   quiesced cluster after a fault schedule. Where {!Invariant} asks "is the
   state correct?", these ask "was the outage explained?" — a gray failure
   is allowed to cost throughput, but a cluster-wide commit stall is a
   violation unless the cluster produced suspicion evidence (a suspect /
   reconfiguration / recovery milestone) around it, and nothing may stay
   parked or queued once the network is healthy again.

   All probes are pure functions of cluster state, so replayed seeds report
   identical violations. *)

(* Milestone tags that count as "the cluster noticed": any of these within
   the slack window around a stall makes the stall an explained outage. *)
let suspicion_tags =
  [ "killed"; "suspect"; "probe"; "zookeeper"; "new-config"; "config-commit";
    "power-cycle" ]

(* A cluster-wide commit stall longer than [threshold] (default 3x the
   lease) that no suspicion milestone explains. Scans the per-ms committed
   series between the first and last nonzero bins — setup and post-stop
   silence are not stalls — and requires every over-threshold zero-run to
   overlap a suspicion milestone, with one threshold of slack on each side
   (suspicion naturally trails the stall that caused it). *)
let no_global_stall ?threshold (c : Cluster.t) : string list =
  let lease = c.Cluster.params.Params.lease_duration in
  let threshold = match threshold with Some t -> t | None -> Time.mul_int lease 3 in
  let bin_ns = Time.to_ns (Time.ms 1) in
  let thresh_bins = max 1 (Time.to_ns threshold / bin_ns) in
  let series = Cluster.throughput_series c ~until:(Cluster.now c) in
  let n = Array.length series in
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to n - 1 do
    if series.(i) > 0 then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then []  (* no commits at all: liveness probes report that *)
  else begin
    let evidence =
      List.filter_map
        (fun (tag, _m, at) ->
          if List.mem tag suspicion_tags then Some (Time.to_ns at / bin_ns) else None)
        (Cluster.milestones c)
    in
    let out = ref [] in
    let check_run ~from ~upto =
      let len = upto - from + 1 in
      if len > thresh_bins then begin
        let lo = from - thresh_bins and hi = upto + thresh_bins in
        if not (List.exists (fun b -> b >= lo && b <= hi) evidence) then
          out :=
            Fmt.str
              "slo: global commit stall of %d ms at [%d,%d] ms with no active suspicion"
              len from upto
            :: !out
      end
    in
    let run_start = ref (-1) in
    for i = !first to !last do
      if series.(i) = 0 then begin
        if !run_start < 0 then run_start := i
      end
      else if !run_start >= 0 then begin
        check_run ~from:!run_start ~upto:(i - 1);
        run_start := -1
      end
    done;
    List.rev !out
  end

(* No transaction still parked past [park_timeout] after heal + quiesce.
   The park watchdog exists to bound how long a transient partition can
   strand a commit (PR 8's snapshot mode parks commits waiting on the
   global-time watermark); once the network is healthy and the cluster has
   settled, every coordinator's live-transaction table must have drained.
   Two timeouts of slack tolerate a watchdog tick in flight at probe time. *)
let no_parked_tx (c : Cluster.t) : string list =
  let park = c.Cluster.params.Params.park_timeout in
  let now = Cluster.now c in
  let limit = Time.mul_int park 2 in
  let out = ref [] in
  (match Cluster.current_config c with
  | None -> ()
  | Some cfg ->
      List.iter
        (fun m ->
          let st = Cluster.machine c m in
          if st.State.alive then
            Farm_core.Txid.Tbl.iter
              (fun txid (lt : State.tx_live) ->
                let age = Time.sub now lt.State.lt_born in
                if Time.( > ) age limit then
                  out :=
                    Fmt.str "slo: m%d transaction %a parked for %a (> 2x park_timeout %a)"
                      m Farm_core.Txid.pp txid Time.pp age Time.pp park
                    :: !out)
              st.State.active_txs)
        cfg.Config.members);
  List.rev !out

(* Every admission queue empty once the cluster has healed and settled:
   open-loop load may queue during an outage, but a queue that never drains
   afterwards means permanently lost capacity. [queues] reports the current
   (label, depth) pairs — a closure so the probe works for any queue owner
   (the open-loop driver, a test harness) without coupling to it. *)
let queues_drained ~(queues : unit -> (string * int) list) () : string list =
  List.filter_map
    (fun (label, depth) ->
      if depth > 0 then
        Some (Fmt.str "slo: queue %s still holds %d requests after heal" label depth)
      else None)
    (queues ())

(* The standard gray-sweep probe: stall + park checks, in the
   [Explorer.sweep ~probe] signature. *)
let gray ~seed:_ (c : Cluster.t) : string list = no_global_stall c @ no_parked_tx c
