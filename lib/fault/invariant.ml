open Farm_core

(* Invariant probes over a healed, quiesced cluster.

   Probes inspect only machines that are members of the newest committed
   configuration: alive non-members are evicted zombies whose stale state
   is deliberately out of date (their non-interference is checked by the
   history, not by state probes). All probe output is a pure function of
   machine state, so a replayed seed reports identical violations. *)

type violation = { name : string; detail : string }

let pp ppf v = Fmt.pf ppf "[%s] %s" v.name v.detail

(* Iterate the allocated object slots of a replica. *)
let iter_slots (st : State.t) (rep : State.replica) f =
  let block_size = st.State.params.Params.block_size in
  let blocks =
    List.sort compare
      (Hashtbl.fold (fun block slot acc -> (block, slot) :: acc) rep.State.block_headers [])
  in
  List.iter
    (fun (block, slot) ->
      let base = block * block_size in
      for i = 0 to (block_size / slot) - 1 do
        f ~block ~slot ~off:(base + (i * slot))
      done)
    blocks

let check (c : Cluster.t) : violation list =
  let out = ref [] in
  let add name fmt = Fmt.kstr (fun detail -> out := { name; detail } :: !out) fmt in
  (match Cluster.current_config c with
  | None -> add "liveness" "no alive machine holds a configuration"
  | Some cfg ->
      let members =
        List.filter (fun m -> (Cluster.machine c m).State.alive) cfg.Config.members
      in
      (* 1. no leaked locks: a quiesced primary has every lock bit clear *)
      List.iter
        (fun m ->
          let st = Cluster.machine c m in
          Hashtbl.iter
            (fun rid (rep : State.replica) ->
              if rep.State.role = State.Primary then
                iter_slots st rep (fun ~block:_ ~slot:_ ~off ->
                    if Obj_layout.is_locked (Obj_layout.get rep.State.mem ~off) then begin
                      (* name the holder if the lock table still knows it *)
                      let holder =
                        Txid.Tbl.fold
                          (fun txid writes acc ->
                            if
                              List.exists
                                (fun (w : Wire.write_item) ->
                                  w.Wire.addr.Addr.region = rid
                                  && w.Wire.addr.Addr.offset = off)
                                writes
                            then Some txid
                            else acc)
                          st.State.locks_held None
                      in
                      match holder with
                      | Some txid ->
                          add "leaked-lock"
                            "m%d region %d offset %d still locked by %a (coord m%d, outcome %s)"
                            m rid off Txid.pp txid txid.Txid.machine
                            (match Txid.Tbl.find_opt st.State.recovered_outcomes txid with
                            | Some State.Committed -> "committed"
                            | Some State.Aborted -> "aborted"
                            | None -> "undecided")
                      | None ->
                          add "leaked-lock" "m%d region %d offset %d still locked (no holder)"
                            m rid off
                    end))
            st.State.nv.replicas)
        members;
      (* 2. allocator metadata: free lists and their membership mirror agree *)
      List.iter
        (fun m ->
          let st = Cluster.machine c m in
          Hashtbl.iter
            (fun rid (rep : State.replica) ->
              if rep.State.role = State.Primary && rep.State.free_lists_valid then begin
                let listed = Hashtbl.create 64 in
                Hashtbl.iter
                  (fun size offs ->
                    List.iter
                      (fun off ->
                        if Hashtbl.mem listed off then
                          add "allocator" "m%d region %d offset %d on two free lists" m rid off;
                        Hashtbl.replace listed off ();
                        if not (Hashtbl.mem rep.State.free_set off) then
                          add "allocator"
                            "m%d region %d offset %d (size %d) free-listed but not in free set"
                            m rid off size)
                      !offs)
                  rep.State.free_lists;
                if Hashtbl.length listed <> Hashtbl.length rep.State.free_set then
                  add "allocator" "m%d region %d free set has %d entries, free lists %d" m rid
                    (Hashtbl.length rep.State.free_set)
                    (Hashtbl.length listed)
              end)
            st.State.nv.replicas)
        members;
      (* 3. primary/backup byte equality: every replicated object carries the
         same version and data everywhere (lock bits are primary-only and
         masked; fresh backups still being bulk-loaded are skipped) *)
      let region_infos =
        List.concat_map
          (fun m ->
            let st = Cluster.machine c m in
            match st.State.cm with
            | Some cm when st.State.config.Config.id = cfg.Config.id ->
                Hashtbl.fold (fun _ info acc -> info :: acc) cm.State.owners []
            | _ -> [])
          members
        |> List.sort (fun (a : Wire.region_info) b -> compare a.Wire.rid b.Wire.rid)
      in
      List.iter
        (fun (info : Wire.region_info) ->
          let rid = info.Wire.rid in
          if List.mem info.Wire.primary members then
            match State.replica (Cluster.machine c info.Wire.primary) rid with
            | None -> add "replication" "primary m%d has no replica of region %d" info.Wire.primary rid
            | Some prim when prim.State.fresh_backup -> ()
            | Some prim ->
                let pst = Cluster.machine c info.Wire.primary in
                List.iter
                  (fun b ->
                    if List.mem b members then
                      match State.replica (Cluster.machine c b) rid with
                      | None -> add "replication" "backup m%d has no replica of region %d" b rid
                      | Some rep when rep.State.fresh_backup -> ()
                      | Some rep ->
                          iter_slots pst prim (fun ~block:_ ~slot ~off ->
                              let hp = Obj_layout.get prim.State.mem ~off in
                              let hb = Obj_layout.get rep.State.mem ~off in
                              if
                                Obj_layout.with_locked hp false
                                <> Obj_layout.with_locked hb false
                              then
                                add "divergence"
                                  "region %d offset %d: header %Ld on primary m%d, %Ld on backup m%d"
                                  rid off hp info.Wire.primary hb b
                              else
                                let len = slot - Obj_layout.header_size in
                                let dp = Obj_layout.read_data prim.State.mem ~off ~len in
                                let db = Obj_layout.read_data rep.State.mem ~off ~len in
                                if not (Bytes.equal dp db) then
                                  add "divergence"
                                    "region %d offset %d: data differs between primary m%d and backup m%d"
                                    rid off info.Wire.primary b))
                  info.Wire.backups)
        region_infos;
      (* 4. every recovery coordination reached a decision *)
      List.iter
        (fun m ->
          let st = Cluster.machine c m in
          Txid.Tbl.iter
            (fun txid rc ->
              if not rc.State.rc_decided then
                add "recovery" "m%d never decided recovering transaction %a" m Txid.pp txid)
            st.State.rec_coords)
        members);
  List.rev !out
