open Farm_sim

(** Cost model of the simulated RDMA network.

    All CPU costs are thread time on the machine's {!Farm_sim.Cpu} resource;
    NIC costs occupy the machine's NIC pipelines. One-sided operations cost
    CPU only at the issuing machine — the property FaRM's protocols are
    designed around. *)

type t = {
  fabric_latency : Time.t;  (** one-way wire propagation + switch *)
  fabric_jitter : Time.t;  (** uniform jitter added per hop *)
  nics_per_machine : int;
  nic_msg_ns : Time.t;  (** per-message NIC processing time *)
  nic_byte_ns_x1000 : int;  (** payload cost, in ns per byte x1000 *)
  cpu_rdma_issue : Time.t;  (** CPU to post a one-sided verb (WQE + doorbell) *)
  cpu_rdma_doorbell : Time.t;
      (** CPU to append one more WQE to an already-rung doorbell batch:
          after the first verb of a group pays {!cpu_rdma_issue}, each
          subsequent verb only writes its WQE — the NIC is rung once *)
  cpu_rdma_poll : Time.t;  (** CPU to reap a completion-queue batch *)
  cpu_rpc_send : Time.t;  (** CPU to marshal and post a send *)
  cpu_rpc_recv : Time.t;  (** CPU to poll, demarshal, dispatch a receive *)
  failure_timeout : Time.t;
      (** delay before an op on an unreachable machine completes in error *)
}

val default : t
(** Calibrated so the Figure 2 experiment reproduces the paper's ~4x
    RDMA-over-RPC per-machine read rate. *)
