open Farm_sim

type t = {
  fabric_latency : Time.t;
  fabric_jitter : Time.t;
  nics_per_machine : int;
  nic_msg_ns : Time.t;
  nic_byte_ns_x1000 : int;
  cpu_rdma_issue : Time.t;
  cpu_rdma_doorbell : Time.t;
  cpu_rdma_poll : Time.t;
  cpu_rpc_send : Time.t;
  cpu_rpc_recv : Time.t;
  failure_timeout : Time.t;
}

(* Calibrated against Figure 2 of the paper: on a symmetric all-to-all
   small-read workload the model yields ~10 one-sided reads/us/machine
   (NIC-rate bound, 2 NICs) versus ~2.5 RPC reads/us/machine (CPU bound),
   the 4x gap the paper reports for the 90-machine FDR cluster. *)
let default =
  {
    fabric_latency = Time.ns 800;
    fabric_jitter = Time.ns 200;
    nics_per_machine = 2;
    nic_msg_ns = Time.ns 40;
    nic_byte_ns_x1000 = 143 (* 56 Gbps = ~7 GB/s per NIC *);
    cpu_rdma_issue = Time.ns 1_200;
    cpu_rdma_doorbell = Time.ns 150;
    cpu_rdma_poll = Time.ns 1_600;
    cpu_rpc_send = Time.ns 2_500;
    cpu_rpc_recv = Time.ns 3_500;
    failure_timeout = Time.ms 1;
  }
