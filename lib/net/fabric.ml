open Farm_sim

type error = [ `Unreachable | `Timeout ]

let pp_error ppf = function
  | `Unreachable -> Fmt.string ppf "unreachable"
  | `Timeout -> Fmt.string ppf "timeout"

type 'msg handler = src:int -> reply:(bytes:int -> 'msg -> unit) -> 'msg -> unit

type 'msg machine = {
  id : int;
  nic : Nic.t;
  cpu : Cpu.t;
  obs : Farm_obs.Obs.t;
  mutable alive : bool;
  mutable partition : int;
  mutable on_message : 'msg handler;
}

(* Per-directed-link fault injection (the nemesis hooks): extra one-way
   delay and a packet-loss probability applied to everything routed from
   [src] to [dst]. *)
type link_fault = { mutable extra_delay : Time.t; mutable loss : float }

(* Per-machine gray-NIC state: a slow-but-alive NIC multiplies the flight
   time of every packet entering or leaving the machine and adds a loss
   probability on all of its links. Unlike a partition, nothing is
   unreachable — the machine just serves and generates traffic degraded. *)
type nic_gray = { mutable delay_factor : float; mutable gray_loss : float }

type 'msg t = {
  engine : Engine.t;
  params : Params.t;
  rng : Rng.t;
  mutable machines : 'msg machine option array;
  link_faults : (int * int, link_fault) Hashtbl.t;
  gray_nics : (int, nic_gray) Hashtbl.t;
  blackholes : (int * int, unit) Hashtbl.t;
      (* directed dead links: (src, dst) present = packets src->dst vanish
         while dst->src traffic is untouched (asymmetric/partial partition) *)
}

let create engine ~params ~rng =
  {
    engine;
    params;
    rng;
    machines = Array.make 8 None;
    link_faults = Hashtbl.create 16;
    gray_nics = Hashtbl.create 8;
    blackholes = Hashtbl.create 16;
  }

let set_link_fault ?(delay = Time.zero) ?(loss = 0.) t ~src ~dst =
  if loss < 0. || loss > 1. then invalid_arg "Fabric.set_link_fault: loss not in [0,1]";
  Hashtbl.replace t.link_faults (src, dst) { extra_delay = delay; loss }

let clear_link_fault t ~src ~dst = Hashtbl.remove t.link_faults (src, dst)
let clear_link_faults t = Hashtbl.reset t.link_faults

let link_fault t ~src ~dst = Hashtbl.find_opt t.link_faults (src, dst)

let set_nic_gray ?(delay_factor = 1.) ?(loss = 0.) t ~machine =
  if delay_factor < 1. then invalid_arg "Fabric.set_nic_gray: delay_factor must be >= 1";
  if loss < 0. || loss > 1. then invalid_arg "Fabric.set_nic_gray: loss not in [0,1]";
  Hashtbl.replace t.gray_nics machine { delay_factor; gray_loss = loss }

let clear_nic_gray t ~machine = Hashtbl.remove t.gray_nics machine

let nic_gray t ~machine =
  match Hashtbl.find_opt t.gray_nics machine with
  | Some g -> Some (g.delay_factor, g.gray_loss)
  | None -> None

let set_blackhole t ~src ~dst = Hashtbl.replace t.blackholes (src, dst) ()
let clear_blackhole t ~src ~dst = Hashtbl.remove t.blackholes (src, dst)
let blackholed t ~src ~dst = Hashtbl.mem t.blackholes (src, dst)

let clear_gray_faults t =
  Hashtbl.reset t.gray_nics;
  Hashtbl.reset t.blackholes

(* Loss probability of one packet on the directed [src]->[dst] link: the
   injected per-link loss combined with the gray-NIC loss of both
   endpoints (independent drop opportunities). *)
let gray_of t id =
  match Hashtbl.find_opt t.gray_nics id with Some g -> g.gray_loss | None -> 0.

let link_loss t ~src ~dst =
  let l = match link_fault t ~src ~dst with Some f -> f.loss | None -> 0. in
  let gs = gray_of t src and gd = gray_of t dst in
  if gs = 0. && gd = 0. then l else 1. -. ((1. -. l) *. (1. -. gs) *. (1. -. gd))

(* Sample the fate of one packet on the [src]->[dst] link.

   Unreliable-datagram traffic ([send]: leases, gossip, fire-and-forget
   notifications) loses packets for real: [sample_link_ud] returns [None]
   on a loss draw, otherwise the injected extra delay.

   Reliable-connected traffic (the one-sided verbs and [call]) mirrors RDMA
   RC queue pairs: the NIC retransmits lost frames, so injected loss
   surfaces as added latency — one retransmission timeout per lost attempt
   — never as an error. Only machine death and partitions fail a reliable
   operation. *)
let get t id =
  match if id >= 0 && id < Array.length t.machines then t.machines.(id) else None with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Fabric: unknown machine %d" id)

let sample_link_ud t ~src ~dst =
  let extra =
    match link_fault t ~src ~dst with Some f -> f.extra_delay | None -> Time.zero
  in
  let loss = link_loss t ~src ~dst in
  if loss > 0. && Rng.float t.rng < loss then begin
    Engine.emit t.engine (Printf.sprintf "net: drop %d->%d" src dst);
    let obs = (get t src).obs in
    Farm_obs.Obs.incr obs Farm_obs.Obs.C_ud_drop;
    Farm_obs.Obs.event obs Farm_obs.Obs.K_drop ~a:dst ~b:0 ~c:0;
    None
  end
  else Some extra

let retransmit_timeout = Time.us 20

let sample_link_rc t ~src ~dst =
  let extra =
    match link_fault t ~src ~dst with Some f -> f.extra_delay | None -> Time.zero
  in
  let loss = link_loss t ~src ~dst in
  if loss = 0. then extra
  else begin
    let d = ref extra in
    let tries = ref 0 in
    while !tries < 16 && Rng.float t.rng < loss do
      incr tries;
      Engine.emit t.engine (Printf.sprintf "net: drop %d->%d (retransmit)" src dst);
      let obs = (get t src).obs in
      Farm_obs.Obs.incr obs Farm_obs.Obs.C_rc_retransmit;
      Farm_obs.Obs.event obs Farm_obs.Obs.K_drop ~a:dst ~b:0 ~c:1;
      d := Time.add !d (Time.add retransmit_timeout extra)
    done;
    !d
  end

let no_handler ~src:_ ~reply:_ _ = ()

let add_machine ?obs t ~id ~cpu =
  if id < 0 then invalid_arg "Fabric.add_machine: negative id";
  let n = Array.length t.machines in
  if id >= n then begin
    let m = ref n in
    while id >= !m do
      m := !m * 2
    done;
    let machines = Array.make !m None in
    Array.blit t.machines 0 machines 0 n;
    t.machines <- machines
  end;
  (match t.machines.(id) with
  | Some _ -> invalid_arg "Fabric.add_machine: duplicate id"
  | None -> ());
  let obs =
    match obs with
    | Some o -> o
    | None -> Farm_obs.Obs.create t.engine ~machine:id
  in
  let m =
    {
      id;
      nic = Nic.create t.engine ~params:t.params;
      cpu;
      obs;
      alive = true;
      partition = 0;
      on_message = no_handler;
    }
  in
  t.machines.(id) <- Some m

(* Re-register a machine after a restart: fresh NIC pipelines and CPU, back
   on the network. The obs sink survives by default — pre-crash events stay
   in the flight-recorder ring. *)
let reset_machine ?obs t ~id ~cpu =
  match if id >= 0 && id < Array.length t.machines then t.machines.(id) else None with
  | None -> invalid_arg "Fabric.reset_machine: unknown machine"
  | Some m ->
      t.machines.(id) <-
        Some
          {
            m with
            nic = Nic.create t.engine ~params:t.params;
            cpu;
            obs = (match obs with Some o -> o | None -> m.obs);
            alive = true;
            partition = 0;
            on_message = no_handler;
          }

let set_handler t id handler = (get t id).on_message <- handler
let set_alive t id alive = (get t id).alive <- alive
let is_alive t id = (get t id).alive
let set_partition t id p = (get t id).partition <- p
let nic t id = (get t id).nic
let cpu t id = (get t id).cpu
let obs t id = (get t id).obs
let engine t = t.engine
let params t = t.params

let reachable t src dst =
  let a = get t src and b = get t dst in
  a.alive && b.alive && a.partition = b.partition
  && not (Hashtbl.mem t.blackholes (src, dst))

let latency t =
  let j = Time.to_ns t.params.Params.fabric_jitter in
  Time.add t.params.Params.fabric_latency (Time.ns (if j > 0 then Rng.int t.rng j else 0))

(* Flight time of one leg on the directed [src]->[dst] link: the sampled
   fabric latency stretched by the gray-NIC delay factors of both
   endpoints (a degraded NIC slows its traffic in both directions). *)
let gray_factor t id =
  match Hashtbl.find_opt t.gray_nics id with Some g -> g.delay_factor | None -> 1.

let leg_latency t ~src ~dst =
  let base = latency t in
  let f = gray_factor t src *. gray_factor t dst in
  if f = 1. then base
  else Time.ns (int_of_float (Float.round (float_of_int (Time.to_ns base) *. f)))

(* Size in bytes of a one-sided request descriptor on the wire. *)
let req_bytes = 32
let ack_bytes = 16

let fail_later t iv =
  Engine.schedule_in t.engine ~after:t.params.Params.failure_timeout (fun () ->
      Ivar.fill_if_empty iv (Error `Unreachable))

(* In-flight part of a one-sided read, from NIC issue to completion
   delivery; no CPU is charged here. [read] runs at the instant the target
   NIC performs the DMA — the operation's linearization point. *)
let read_flight t ~src ~dst ~bytes (read : unit -> 'a) : ('a, error) result Ivar.t =
  let ms = get t src in
  let iv : ('a, error) result Ivar.t = Ivar.create () in
  if src = dst then begin
    (* Local access: no NIC involved; negligible extra cost. *)
    Ivar.fill iv (Ok (read ()))
  end
  else begin
    let d_req = sample_link_rc t ~src ~dst in
    let t_req = Nic.occupy ms.nic ~bytes:req_bytes in
    Engine.schedule t.engine
      ~at:(Time.add t_req (Time.add (leg_latency t ~src ~dst) d_req))
      (fun () ->
        if not (reachable t src dst) then fail_later t iv
        else begin
          let md = get t dst in
          let t_dst = Nic.occupy md.nic ~bytes in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if not (reachable t src dst) then fail_later t iv
              else begin
                let v = read () in
                let d_cpl = sample_link_rc t ~src:dst ~dst:src in
                Engine.schedule t.engine
                  ~at:(Time.add t_dst (Time.add (leg_latency t ~src:dst ~dst:src) d_cpl))
                  (fun () ->
                    (* The completion travels dst->src: a directed blackhole
                       on that leg swallows it and the RC QP eventually
                       errors out — unlike a classic partition, where
                       in-flight responses still arrive. *)
                    if blackholed t ~src:dst ~dst:src then fail_later t iv
                    else if ms.alive then begin
                      let t_cpl = Nic.occupy ms.nic ~bytes in
                      Engine.schedule t.engine ~at:t_cpl (fun () ->
                          Ivar.fill_if_empty iv (Ok v))
                    end)
              end)
        end)
  end;
  iv

(* {1 Blame carving}

   When the caller passes its transaction span, a blocking verb attributes
   its own elapsed wall-clock to three consecutive sub-intervals: the CPU
   spent issuing descriptors/doorbells (nic-issue), the wait for the
   completion (propagation — wire flight, NIC occupancy/serialization,
   retransmissions, remote DMA), and the completion reap / RPC receive
   (poll). The intervals are measured around the work itself, so they are
   disjoint and exhaustive over the verb's duration — the exactness the
   span's blame accounting relies on. With no span, nothing here reads the
   clock. *)

let ns_now t = Time.to_ns (Engine.now t.engine)
let mark t span = match span with None -> 0 | Some _ -> ns_now t

let claim t span b t0 =
  match span with
  | None -> 0
  | Some sp ->
      let n = ns_now t in
      Farm_obs.Obs.Span.claim sp b (n - t0);
      n

(* One-sided RDMA read: issue, block on the completion, reap it. Charges
   CPU only at [src]. *)
let one_sided_read ?span t ~src ~dst ~bytes (read : unit -> 'a) : ('a, error) result =
  let ms = get t src in
  Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rdma_read;
  Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_rdma_read ~a:dst ~b:bytes ~c:0;
  let t0 = mark t span in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_issue;
  let t1 = claim t span Farm_obs.Obs.B_nic_issue t0 in
  let r = Ivar.read (read_flight t ~src ~dst ~bytes read) in
  let t2 = claim t span Farm_obs.Obs.B_propagation t1 in
  (match r with
  | Ok _ ->
      Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_poll;
      ignore (claim t span Farm_obs.Obs.B_poll t2)
  | Error _ -> ());
  r

(* In-flight part of a one-sided write with hardware ack: [apply] mutates
   target memory at the DMA instant; the target CPU is never involved. *)
let write_flight t ~src ~dst ~bytes (apply : unit -> unit) : (unit, error) result Ivar.t =
  let ms = get t src in
  let iv : (unit, error) result Ivar.t = Ivar.create () in
  if src = dst then begin
    apply ();
    Ivar.fill iv (Ok ())
  end
  else begin
    let d_req = sample_link_rc t ~src ~dst in
    let t_req = Nic.occupy ms.nic ~bytes in
    Engine.schedule t.engine
      ~at:(Time.add t_req (Time.add (leg_latency t ~src ~dst) d_req))
      (fun () ->
        if not (reachable t src dst) then fail_later t iv
        else begin
          let md = get t dst in
          let t_dst = Nic.occupy md.nic ~bytes in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if not (reachable t src dst) then fail_later t iv
              else begin
                apply ();
                (* Hardware ack generated by the target NIC. *)
                let d_ack = sample_link_rc t ~src:dst ~dst:src in
                Engine.schedule t.engine
                  ~at:(Time.add t_dst (Time.add (leg_latency t ~src:dst ~dst:src) d_ack))
                  (fun () ->
                    (* Ack leg dst->src: see the blackhole note in
                       [read_flight] — the write itself has already been
                       applied at the target, the issuer just never learns. *)
                    if blackholed t ~src:dst ~dst:src then fail_later t iv
                    else if ms.alive then begin
                      let t_cpl = Nic.occupy ms.nic ~bytes:ack_bytes in
                      Engine.schedule t.engine ~at:t_cpl (fun () ->
                          Ivar.fill_if_empty iv (Ok ()))
                    end)
              end)
        end)
  end;
  iv

let one_sided_write ?span t ~src ~dst ~bytes (apply : unit -> unit) : (unit, error) result =
  let ms = get t src in
  Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rdma_write;
  Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_rdma_write ~a:dst ~b:bytes ~c:0;
  let t0 = mark t span in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_issue;
  let t1 = claim t span Farm_obs.Obs.B_nic_issue t0 in
  let r = Ivar.read (write_flight t ~src ~dst ~bytes apply) in
  let t2 = claim t span Farm_obs.Obs.B_propagation t1 in
  (match r with
  | Ok _ ->
      Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_poll;
      ignore (claim t span Farm_obs.Obs.B_poll t2)
  | Error _ -> ());
  r

(* {1 Doorbell-batched verbs}

   A batch issues a group of one-sided operations from one thread with a
   single doorbell ring: the first work-queue entry pays the full
   [cpu_rdma_issue], each subsequent one only [cpu_rdma_doorbell], and the
   completions of the whole group are reaped with a single [cpu_rdma_poll]
   (one completion-queue sweep) instead of one per operation.

   Everything on the wire is unchanged from the single-op verbs: each
   operation occupies the NIC pipelines individually, samples its own
   link-fault fate, and linearizes at its own target-DMA instant — so a
   lossy link delays only the operations routed over it, and failures
   surface per operation. The batch is a CPU/issue optimization, not a
   semantic change. *)

let batch_issue_cost t i =
  if i = 0 then t.params.Params.cpu_rdma_issue else t.params.Params.cpu_rdma_doorbell

let reap t (ms : 'msg machine) results =
  if Array.exists (function Ok _ -> true | Error _ -> false) results then
    Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rdma_poll;
  results

let record_batch (ms : 'msg machine) ~n bytes_of =
  if n > 0 then begin
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + bytes_of i
    done;
    Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rdma_batch;
    Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_rdma_batch ~a:n ~b:!total ~c:0
  end

(* The primary batch entry points take indexed accessors ([dst i],
   [bytes i], [read i] / [apply i] for [0 <= i < n]) so hot callers can
   describe a group straight out of reused flat storage, with a constant
   number of closures per batch instead of a descriptor tuple per
   operation. The list forms below are veneers. *)

let one_sided_read_batch_fn ?span t ~src ~n ~(dst : int -> int) ~(bytes : int -> int)
    ~(read : int -> 'a) : ('a, error) result array =
  let ms = get t src in
  record_batch ms ~n bytes;
  let t0 = mark t span in
  let flights =
    Array.init n (fun i ->
        let d = dst i and b = bytes i in
        Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rdma_read;
        Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_rdma_read ~a:d ~b ~c:0;
        Cpu.exec ms.cpu ~cost:(batch_issue_cost t i);
        read_flight t ~src ~dst:d ~bytes:b (fun () -> read i))
  in
  let t1 = claim t span Farm_obs.Obs.B_nic_issue t0 in
  let results = Array.map Ivar.read flights in
  let t2 = claim t span Farm_obs.Obs.B_propagation t1 in
  let results = reap t ms results in
  ignore (claim t span Farm_obs.Obs.B_poll t2);
  results

let one_sided_write_batch_fn ?span ?on_complete t ~src ~n ~(dst : int -> int)
    ~(bytes : int -> int) ~(apply : int -> unit) : (unit, error) result array =
  let ms = get t src in
  record_batch ms ~n bytes;
  let t0 = mark t span in
  let flights =
    Array.init n (fun i ->
        let d = dst i and b = bytes i in
        Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rdma_write;
        Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_rdma_write ~a:d ~b ~c:0;
        Cpu.exec ms.cpu ~cost:(batch_issue_cost t i);
        let iv = write_flight t ~src ~dst:d ~bytes:b (fun () -> apply i) in
        (match on_complete with Some f -> Ivar.on_fill iv (fun r -> f i r) | None -> ());
        iv)
  in
  let t1 = claim t span Farm_obs.Obs.B_nic_issue t0 in
  let results = Array.map Ivar.read flights in
  let t2 = claim t span Farm_obs.Obs.B_propagation t1 in
  let results = reap t ms results in
  ignore (claim t span Farm_obs.Obs.B_poll t2);
  results

let one_sided_read_batch t ~src (descs : (int * int * (unit -> 'a)) list) :
    ('a, error) result array =
  let a = Array.of_list descs in
  one_sided_read_batch_fn t ~src ~n:(Array.length a)
    ~dst:(fun i ->
      let d, _, _ = a.(i) in
      d)
    ~bytes:(fun i ->
      let _, b, _ = a.(i) in
      b)
    ~read:(fun i ->
      let _, _, r = a.(i) in
      r ())

let one_sided_write_batch ?on_complete t ~src (descs : (int * int * (unit -> unit)) list) :
    (unit, error) result array =
  let a = Array.of_list descs in
  one_sided_write_batch_fn ?on_complete t ~src ~n:(Array.length a)
    ~dst:(fun i ->
      let d, _, _ = a.(i) in
      d)
    ~bytes:(fun i ->
      let _, b, _ = a.(i) in
      b)
    ~apply:(fun i ->
      let _, _, f = a.(i) in
      f ())

let deliver t ~src ~dst ~prio ~bytes ~flow msg ~reply =
  let route at =
    Engine.schedule t.engine ~at (fun () ->
        if reachable t src dst then begin
          let md = get t dst in
          let t_dst =
            if prio then Nic.occupy_priority md.nic ~bytes else Nic.occupy md.nic ~bytes
          in
          Engine.schedule t.engine ~at:t_dst (fun () ->
              if md.alive then begin
                if flow <> 0 then
                  Farm_obs.Tracer.instant
                    (Farm_obs.Obs.tracer md.obs)
                    ~tid:Farm_obs.Tracer.tid_net ~mark:Farm_obs.Tracer.M_msg_recv
                    ~arg:flow;
                md.on_message ~src ~reply msg
              end)
        end)
  in
  route

(* Fire-and-forget message. The receiver's handler runs at NIC-delivery
   time in "interrupt context": it must charge its own CPU before doing real
   work. Most messaging rides RDMA writes over reliable-connected QPs
   ([`Rc], the default); only the lease protocol uses unreliable datagrams
   ([`Ud]) and can actually lose packets (§3). *)
let send ?(prio = false) ?(transport = `Rc) ?cpu_cost ?(flow = 0) t ~src ~dst ~bytes msg =
  let ms = get t src in
  (match transport with
  | `Ud ->
      Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_ud_send;
      Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_send ~a:dst ~b:bytes ~c:1
  | `Rc ->
      Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rpc_send;
      Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_send ~a:dst ~b:bytes ~c:0);
  if flow <> 0 then
    Farm_obs.Tracer.instant (Farm_obs.Obs.tracer ms.obs) ~tid:Farm_obs.Tracer.tid_net
      ~mark:Farm_obs.Tracer.M_msg_send ~arg:flow;
  let cost = match cpu_cost with Some c -> c | None -> t.params.Params.cpu_rpc_send in
  if Time.( > ) cost Time.zero then Cpu.exec ms.cpu ~cost;
  match
    match transport with
    | `Ud -> sample_link_ud t ~src ~dst
    | `Rc -> Some (sample_link_rc t ~src ~dst)
  with
  | None -> ()  (* dropped on the wire; fire-and-forget senders never know *)
  | Some d ->
      let t_tx =
        if prio then Nic.occupy_priority ms.nic ~bytes else Nic.occupy ms.nic ~bytes
      in
      let no_reply ~bytes:_ _ = () in
      (deliver t ~src ~dst ~prio ~bytes ~flow msg ~reply:no_reply)
        (Time.add t_tx (Time.add (leg_latency t ~src ~dst) d))

(* Blocking request/response. The receiver handler is given a [reply]
   closure; calling it routes the response back and wakes the caller. *)
let call ?span ?(prio = false) ?timeout ?(flow = 0) t ~src ~dst ~bytes msg :
    ('msg, error) result =
  let ms = get t src in
  Farm_obs.Obs.incr ms.obs Farm_obs.Obs.C_rpc_call;
  Farm_obs.Obs.event ms.obs Farm_obs.Obs.K_call ~a:dst ~b:bytes ~c:0;
  if flow <> 0 then
    Farm_obs.Tracer.instant (Farm_obs.Obs.tracer ms.obs) ~tid:Farm_obs.Tracer.tid_net
      ~mark:Farm_obs.Tracer.M_msg_send ~arg:flow;
  let tm0 = mark t span in
  Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rpc_send;
  let tm1 = claim t span Farm_obs.Obs.B_nic_issue tm0 in
  let iv = Ivar.create () in
  let reply ~bytes:resp_bytes resp =
    let md = get t dst in
    if md.alive then begin
      let d = sample_link_rc t ~src:dst ~dst:src in
      let t_tx =
        if prio then Nic.occupy_priority md.nic ~bytes:resp_bytes
        else Nic.occupy md.nic ~bytes:resp_bytes
      in
      Engine.schedule t.engine
        ~at:(Time.add t_tx (Time.add (leg_latency t ~src:dst ~dst:src) d))
        (fun () ->
          (* Reply leg dst->src: a directed blackhole swallows the response
             (the asymmetric half-link), so the caller times out via
             [fail_later] instead of hanging. In-flight replies still cross
             classic partitions, as before. *)
          if blackholed t ~src:dst ~dst:src then fail_later t iv
          else if ms.alive then begin
            let t_rx =
              if prio then Nic.occupy_priority ms.nic ~bytes:resp_bytes
              else Nic.occupy ms.nic ~bytes:resp_bytes
            in
            Engine.schedule t.engine ~at:t_rx (fun () -> Ivar.fill_if_empty iv (Ok resp))
          end)
    end
  in
  let t_tx = if prio then Nic.occupy_priority ms.nic ~bytes else Nic.occupy ms.nic ~bytes in
  if not (reachable t src dst) then fail_later t iv
  else begin
    let d = sample_link_rc t ~src ~dst in
    (deliver t ~src ~dst ~prio ~bytes ~flow msg ~reply)
      (Time.add t_tx (Time.add (leg_latency t ~src ~dst) d))
  end;
  (match timeout with
  | Some d ->
      Engine.schedule_in t.engine ~after:d (fun () -> Ivar.fill_if_empty iv (Error `Timeout))
  | None -> ());
  let r = Ivar.read iv in
  let tm2 = claim t span Farm_obs.Obs.B_propagation tm1 in
  (match r with
  | Ok _ ->
      Cpu.exec ms.cpu ~cost:t.params.Params.cpu_rpc_recv;
      ignore (claim t span Farm_obs.Obs.B_poll tm2)
  | Error _ -> ());
  r
