open Farm_sim

(** The simulated RDMA fabric: machines, reachability, one-sided verbs and
    messaging.

    ['msg] is the application-level message type (FaRM instantiates it with
    {!Farm_core.Wire.message}). Memory semantics stay with the caller:
    one-sided operations take closures that execute at the target-NIC DMA
    instant, so the network layer needs no knowledge of regions or logs.

    Machine failure is modelled by {!set_alive}: a dead machine's NIC stops
    serving one-sided operations and stops delivering messages, but
    responses already in flight still arrive — exactly the property that
    forces FaRM to drain logs during recovery. Network partitions are
    modelled by {!set_partition}: machines reach each other iff they are
    alive and in the same partition group. *)

type error = [ `Unreachable | `Timeout ]

val pp_error : Format.formatter -> error -> unit

type 'msg handler = src:int -> reply:(bytes:int -> 'msg -> unit) -> 'msg -> unit

type 'msg t

val create : Engine.t -> params:Params.t -> rng:Rng.t -> 'msg t

val add_machine : ?obs:Farm_obs.Obs.t -> 'msg t -> id:int -> cpu:Cpu.t -> unit
(** Register machine [id] with its CPU resource; a fresh NIC set is
    created for it. [obs] is the machine's observability sink; a disabled
    one is created when omitted. *)

val reset_machine : ?obs:Farm_obs.Obs.t -> 'msg t -> id:int -> cpu:Cpu.t -> unit
(** Re-register a machine after a restart: fresh NICs, alive again, no
    handler installed yet. The existing obs sink is kept unless [obs] is
    passed, so pre-crash events survive in the flight recorder. *)

val set_handler : 'msg t -> int -> 'msg handler -> unit
(** Install the receive dispatcher. It runs in "interrupt context" at
    NIC-delivery time and must charge its own CPU before heavy work. *)

val set_alive : 'msg t -> int -> bool -> unit
val is_alive : 'msg t -> int -> bool
val set_partition : 'msg t -> int -> int -> unit
val reachable : 'msg t -> int -> int -> bool
val nic : 'msg t -> int -> Nic.t
val cpu : 'msg t -> int -> Cpu.t
val obs : 'msg t -> int -> Farm_obs.Obs.t
val engine : 'msg t -> Engine.t
val params : 'msg t -> Params.t

val latency : 'msg t -> Time.t
(** Sample a one-way fabric latency. *)

(** {1 Link-fault injection} — nemesis hooks for the fault-schedule fuzzer.

    A link fault applies to every packet routed on the directed [src]->[dst]
    link: [delay] adds to its flight time and [loss] drops it with the
    given probability. Loss is interpreted per transport class, matching
    RDMA semantics: reliable-connected traffic (the one-sided verbs and
    {!call}) is retransmitted by the NIC, so each loss draw adds a
    retransmission timeout to the operation's latency but never fails it —
    only death and partitions do; unreliable-datagram traffic ({!send},
    which carries leases and other fire-and-forget messages) vanishes
    silently. Each drop is reported through {!Engine.emit}. *)

val set_link_fault : ?delay:Time.t -> ?loss:float -> 'msg t -> src:int -> dst:int -> unit
val clear_link_fault : 'msg t -> src:int -> dst:int -> unit
val clear_link_faults : 'msg t -> unit
(** Remove one / all link faults. *)

(** {1 Gray-failure injection} — the slow-but-alive nemesis hooks.

    A gray NIC ({!set_nic_gray}) degrades every link touching one machine:
    flight times of packets entering or leaving it are multiplied by
    [delay_factor] and each such packet is additionally lost with
    probability [loss] (combined independently with any per-link fault, and
    interpreted per transport class exactly like link-fault loss). The
    machine stays alive, keeps its lease traffic flowing — just slowly and
    lossily — which is precisely what the binary alive/dead faults cannot
    express.

    A directed blackhole ({!set_blackhole}) kills the [src]->[dst] half of
    a link while the reverse direction keeps working: requests routed into
    it are unreachable, and completions/acks/replies whose return leg is
    blackholed are swallowed, surfacing as a bounded [`Unreachable] after
    {!Params.failure_timeout} (an RC QP error) rather than a hang. Sets of
    blackholes compose into asymmetric and partial partitions. *)

val set_nic_gray : ?delay_factor:float -> ?loss:float -> 'msg t -> machine:int -> unit
(** Raises if [delay_factor < 1.] or [loss] outside [0,1]. *)

val clear_nic_gray : 'msg t -> machine:int -> unit

val nic_gray : 'msg t -> machine:int -> (float * float) option
(** [(delay_factor, loss)] currently injected on the machine's NIC. *)

val set_blackhole : 'msg t -> src:int -> dst:int -> unit
val clear_blackhole : 'msg t -> src:int -> dst:int -> unit
val blackholed : 'msg t -> src:int -> dst:int -> bool

val clear_gray_faults : 'msg t -> unit
(** Remove every gray NIC and blackhole (the heal-all hook). *)

(** {1 One-sided verbs} — no CPU at the target, ever. Must be called from a
    process on machine [src].

    [span], on every blocking verb here and below, is the calling
    transaction's {!Farm_obs.Obs.Span.t}: when passed, the verb claims its
    own elapsed time as three consecutive blame sub-intervals — descriptor
    issue CPU ([B_nic_issue]), the completion wait ([B_propagation]: wire
    flight, NIC serialization, retransmissions, remote DMA), and the
    completion reap / RPC receive ([B_poll]). Timing-inert: the claims
    only read the clock, and only when a span is present with blame
    armed. *)

val one_sided_read :
  ?span:Farm_obs.Obs.Span.t ->
  'msg t -> src:int -> dst:int -> bytes:int -> (unit -> 'a) -> ('a, error) result
(** [read] executes at the target-NIC DMA instant (the linearization
    point) and its result is carried back with the completion. *)

val one_sided_write :
  ?span:Farm_obs.Obs.Span.t ->
  'msg t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> (unit, error) result
(** [apply] mutates target memory at the DMA instant; completion reports
    the NIC hardware ack. NICs ack regardless of configuration — FaRM's
    recovery protocol copes with this by draining logs. *)

(** {1 Doorbell-batched verbs}

    Issue a group of one-sided operations with a single doorbell ring: the
    first descriptor pays {!Params.cpu_rdma_issue}, each subsequent one
    only {!Params.cpu_rdma_doorbell}, and one {!Params.cpu_rdma_poll} reaps
    the whole group's completions. Wire behaviour is identical to issuing
    the operations individually — per-op NIC occupancy, link faults and
    DMA-instant linearization points are unchanged; only the issuing CPU
    cost differs. Both calls block until every operation in the group has
    completed (ack or failure) and return per-descriptor results in order.
    An empty batch returns [[||]] and charges nothing. *)

val one_sided_read_batch_fn :
  ?span:Farm_obs.Obs.Span.t ->
  'msg t ->
  src:int ->
  n:int ->
  dst:(int -> int) ->
  bytes:(int -> int) ->
  read:(int -> 'a) ->
  ('a, error) result array
(** Indexed-accessor form: operation [i] ([0 <= i < n]) reads [bytes i]
    from [dst i], with [read i] executing at its target-DMA instant. Lets
    hot callers describe a batch out of reused flat storage with a
    constant number of closures instead of a descriptor per operation. *)

val one_sided_read_batch :
  'msg t -> src:int -> (int * int * (unit -> 'a)) list -> ('a, error) result array
(** Each descriptor is [(dst, bytes, read)]. *)

val one_sided_write_batch_fn :
  ?span:Farm_obs.Obs.Span.t ->
  ?on_complete:(int -> (unit, error) result -> unit) ->
  'msg t ->
  src:int ->
  n:int ->
  dst:(int -> int) ->
  bytes:(int -> int) ->
  apply:(int -> unit) ->
  (unit, error) result array
(** Indexed-accessor form of {!one_sided_write_batch}. *)

val one_sided_write_batch :
  ?on_complete:(int -> (unit, error) result -> unit) ->
  'msg t ->
  src:int ->
  (int * int * (unit -> unit)) list ->
  (unit, error) result array
(** Each descriptor is [(dst, bytes, apply)]. [on_complete] fires at each
    operation's individual completion instant (index, result) — the hook
    the commit pipeline uses for COMMIT-PRIMARY's first-ack semantics —
    before the batch-wide completion reap. *)

(** {1 Messaging} *)

val send :
  ?prio:bool ->
  ?transport:[ `Rc | `Ud ] ->
  ?cpu_cost:Time.t ->
  ?flow:int ->
  'msg t ->
  src:int ->
  dst:int ->
  bytes:int ->
  'msg ->
  unit
(** Fire-and-forget. [prio] uses the dedicated path that never queues
    behind bulk traffic; [transport] selects the loss model under link
    faults — [`Rc] (default) retransmits, [`Ud] drops for real; [cpu_cost]
    overrides the default sender-side CPU charge (the lease manager uses
    all three). [flow] (a {!Farm_obs.Tracer.flow_id}; default 0 = none)
    is the message's trace context: while tracing, the send and its
    remote delivery are marked as correlated instant events. It never
    touches the wire format. *)

val call :
  ?span:Farm_obs.Obs.Span.t ->
  ?prio:bool ->
  ?timeout:Time.t ->
  ?flow:int ->
  'msg t ->
  src:int ->
  dst:int ->
  bytes:int ->
  'msg ->
  ('msg, error) result
(** Blocking request/response; the receiver's handler gets a [reply]
    closure correlated with this call. [flow] as in {!send}. *)
