(* Critical-path reconstruction. See the interface; the join works on
   three facts the spine already guarantees:

   - every span slice of a transaction carries its (txm, txt, txl) trace
     context, on the coordinator and at remote log processors alike;
   - a log-append slice's flow_out equals the remote log-process slice's
     flow_in (positional flow ids), so "the coordinator waited on this
     remote work" is a set-membership test, not a heuristic;
   - blame exemplars carry the span's exact category partition, so the
     path header reconciles to the ns with the online accounting. *)

type hop = {
  h_machine : int;
  h_tid : int;
  h_name : string;
  h_ts : int;
  h_dur : int;
  h_crit : bool;
}

type path = {
  p_txm : int;
  p_txt : int;
  p_txl : int;
  p_start : int;
  p_total : int;
  p_blame : (string * int) list;
  p_hops : hop list;
}

let blame_of_exemplar (ex : Obs.exemplar) =
  List.filter_map
    (fun b ->
      let ns = ex.Obs.ex_blame.(Obs.blame_index b) in
      if ns = 0 then None else Some (Obs.blame_name b, ns))
    Obs.all_blames

(* The coordinator spine: a slice on the coordinator machine, on the
   coordinator thread's worker track, tagged with the tx. *)
let on_spine ~txm ~txt (v : Tracer.view) = v.Tracer.v_machine = txm && v.Tracer.v_tid = txt

let path_of_exemplar views (ex : Obs.exemplar) =
  let txm = ex.Obs.ex_txm and txt = ex.Obs.ex_txt and txl = ex.Obs.ex_txl in
  let mine =
    List.filter
      (fun (v : Tracer.view) ->
        (not v.Tracer.v_instant)
        && v.Tracer.v_txm = txm && v.Tracer.v_txt = txt && v.Tracer.v_txl = txl)
      views
  in
  (* flows the coordinator started: their remote consumers are waited-on *)
  let fouts =
    List.filter_map
      (fun (v : Tracer.view) ->
        if on_spine ~txm ~txt v && v.Tracer.v_fout <> 0 then Some v.Tracer.v_fout
        else None)
      mine
  in
  let hops =
    List.map
      (fun (v : Tracer.view) ->
        let crit =
          on_spine ~txm ~txt v
          || (v.Tracer.v_fin <> 0 && List.mem v.Tracer.v_fin fouts)
        in
        {
          h_machine = v.Tracer.v_machine;
          h_tid = v.Tracer.v_tid;
          h_name = Tracer.view_name v;
          h_ts = v.Tracer.v_ts;
          h_dur = v.Tracer.v_dur;
          h_crit = crit;
        })
      mine
  in
  let hops =
    List.sort
      (fun a b ->
        if a.h_ts <> b.h_ts then compare a.h_ts b.h_ts
        else if a.h_machine <> b.h_machine then compare a.h_machine b.h_machine
        else compare a.h_tid b.h_tid)
      hops
  in
  {
    p_txm = txm;
    p_txt = txt;
    p_txl = txl;
    p_start = ex.Obs.ex_start;
    p_total = ex.Obs.ex_total;
    p_blame = blame_of_exemplar ex;
    p_hops = hops;
  }

let paths ~tracers ~exemplars ~k =
  let ordered =
    List.sort
      (fun (a : Obs.exemplar) (b : Obs.exemplar) ->
        if a.Obs.ex_total <> b.Obs.ex_total then compare b.Obs.ex_total a.Obs.ex_total
        else
          compare
            (a.Obs.ex_txm, a.Obs.ex_txt, a.Obs.ex_txl)
            (b.Obs.ex_txm, b.Obs.ex_txt, b.Obs.ex_txl))
      exemplars
  in
  let top = List.filteri (fun i _ -> i < k) ordered in
  let views = Tracer.views tracers in
  List.map (path_of_exemplar views) top

let mark paths (v : Tracer.view) =
  (not v.Tracer.v_instant)
  && List.exists
       (fun p ->
         v.Tracer.v_txm = p.p_txm && v.Tracer.v_txt = p.p_txt
         && v.Tracer.v_txl = p.p_txl
         && List.exists
              (fun h ->
                h.h_crit && h.h_machine = v.Tracer.v_machine
                && h.h_tid = v.Tracer.v_tid && h.h_ts = v.Tracer.v_ts
                && h.h_dur = v.Tracer.v_dur)
              p.p_hops)
       paths

let us ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)

let pp_path ppf p =
  Fmt.pf ppf "tx m%d.t%d.%d  total %s us  blame:" p.p_txm p.p_txt p.p_txl
    (us p.p_total);
  List.iter (fun (name, ns) -> Fmt.pf ppf " %s=%s" name (us ns)) p.p_blame;
  Fmt.pf ppf "@.";
  List.iter
    (fun h ->
      Fmt.pf ppf "  %c +%10s us %10s us  m%-3d %-12s %s@."
        (if h.h_crit then '*' else ' ')
        (us (h.h_ts - p.p_start))
        (us h.h_dur) h.h_machine
        (Tracer.tid_name h.h_tid) h.h_name)
    p.p_hops
