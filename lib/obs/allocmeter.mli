(** GC-quiet host-heap allocation measurement.

    [Gc.allocated_bytes] deltas are exact only over windows containing no
    minor collection; on the effects-heavy engine a collection landing
    inside a short window shifts a spurious ~minor-heap-sized lump into
    it.  These helpers enlarge the minor heap, empty it right before the
    window, and verify the window stayed collection-free, making the
    per-operation figures byte-exact and reproducible. *)

val with_quiet_heap : (unit -> 'a) -> 'a
(** Run with a temporarily enlarged minor heap (256 MB), restoring the
    previous GC parameters on exit. *)

val measure : (unit -> 'a) -> 'a * float * bool
(** [measure fn] empties the minor generation, runs [fn] and returns its
    result, the bytes allocated, and [true] when no minor collection
    landed inside the window (i.e. the figure is exact). *)

val bytes_per_op :
  ?warmup:int -> ?reps:int -> ?tries:int -> (unit -> unit) -> float
(** Bytes allocated per call, amortized over [reps] calls in one quiet
    window after [warmup] unmeasured calls; halves [reps] and retries up
    to [tries] times when a collection interrupts. *)
