open Farm_sim

(** The cluster-wide timeline sampler: an engine-scheduled periodic tick
    that snapshots registered gauges into per-machine ring-buffered
    series, with merged JSON export.

    One [Timeline.t] lives inside each machine's {!Obs.t}. The caller
    (normally [Cluster.start_sampling]) registers a set of gauges —
    closures reading counters or derived values as plain ints — then
    starts the tick. All machines are started at the same instant with
    the same interval, so their rows stay timestamp-aligned and the
    merged export can sum them bin by bin.

    Sampling obeys the spine's rules: each tick is O(series) integer
    reads and stores into preallocated rows; a timeline that was never
    started schedules nothing and costs nothing; ticks read the clock
    and the gauges only — no randomness, no blocking — and stop at a
    fixed horizon so they cannot keep the engine's work queue alive
    past it. Same seed ⇒ byte-identical export. *)

type t

type kind =
  | Cumulative
      (** The gauge is a monotonically increasing total (a counter);
          each row stores the delta over the last interval, clamped at 0
          so a restart-induced reset cannot go negative. *)
  | Level  (** Each row stores the instantaneous value (an occupancy). *)

val create : ?capacity:int -> Engine.t -> machine:int -> t
(** [capacity] bounds the row ring (default 4096 rows, oldest
    overwritten first). *)

val machine : t -> int

val add_series : t -> name:string -> kind:kind -> (unit -> int) -> unit
(** Register a gauge. Must precede {!start}; registration order is the
    column order of {!rows} and of the export. *)

val start : t -> interval:Time.t -> until:Time.t -> unit
(** Begin ticking: the first sample lands at [now + interval] and
    sampling stops once the next tick would pass [until] (the horizon
    keeps [Engine.pending] from staying positive forever). Cumulative
    baselines are read at [start]. Restarts after the horizon are
    allowed and append to the same ring. *)

val running : t -> bool
val interval_ns : t -> int
val series_names : t -> string list

val rows : t -> (int * int array) list
(** Sampled rows, oldest first, as (sim-time ns, one value per series in
    registration order). *)

val export_json : t list -> string
(** Merged JSON export:
    [{"interval_ns":..,"machines":[..],"series":[..],"rows":[[t,v..],..]}]
    where rows are merged across machines by summing timestamp-aligned
    bins (every machine is sampled at the same instants). All values are
    ints, so the document is byte-identical across replays of a seed. *)
