open Farm_sim

(** Causal tracing: per-machine preallocated span buffers recording the
    begin/end of every protocol step, plus flow events linking a log
    record's (or message's) send to its remote processing, exported as
    Chrome trace-event JSON openable directly in ui.perfetto.dev.

    One [Tracer.t] lives inside each machine's {!Obs.t} sink. Like the
    rest of the obs spine it obeys three hard rules:

    - {b O(1), allocation-light recording.} A slice or instant is a
      handful of integer stores into a preallocated ring slot; rendering
      happens only at export time.
    - {b Near-zero cost when disabled.} Every recording entry point
      reduces to a load and a branch while tracing is off.
    - {b Determinism is never perturbed.} Recording reads {!Engine.now}
      and mutates tracer-local state only — it never draws randomness,
      schedules engine work, or blocks. The same seed yields
      byte-identical exports, and byte-identical histories with tracing
      on or off.

    {2 Trace context and flows}

    The trace context of a transaction is its {!Txid}-shaped identity —
    (coordinator machine, thread, local step counter) — which FaRM
    already carries on every log record and commit-protocol message.
    Slices record it as three small integers; {!flow_id} derives a
    cluster-unique correlation id from (context, record tag,
    destination), so the sender of a LOCK or COMMIT-BACKUP record and
    its remote processor compute the same id independently, without any
    wire-format change. At export, a slice's [flow_out] becomes a
    [ph:"s"] flow start bound to it and [flow_in] a [ph:"f"] flow end —
    the cross-machine arrows in Perfetto. *)

type t

val create : ?capacity:int -> Engine.t -> machine:int -> t
(** A per-machine tracer; [capacity] bounds the span buffer (default
    4096 slots, oldest overwritten first). *)

val machine : t -> int
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val total : t -> int
(** Events recorded since creation, including overwritten ones. *)

(** {1 Protocol steps (slices)} *)

type step =
  | T_execute
  | T_lock  (** coordinator LOCK phase *)
  | T_validate
  | T_commit_backup
  | T_commit_primary
  | T_truncate
  | T_log_append  (** sender-side one-sided log write; arg = dst *)
  | T_log_process  (** receiver-side record processing; arg = payload tag *)
  | T_lock_grant  (** primary granted every lock of a LOCK record *)
  | T_lock_refuse
  | T_rec_drain
  | T_rec_region_active
  | T_rec_decide
  | T_commit_wait  (** snapshot protocol: waiting out clock uncertainty *)

val step_name : step -> string

(** {1 Instant events} *)

type mark =
  | M_drop  (** UD packet lost; arg = dst *)
  | M_retransmit  (** RC retransmission; arg = dst *)
  | M_lease_expiry  (** arg = expired peer *)
  | M_suspect  (** arg = suspect *)
  | M_config_commit  (** arg = config id *)
  | M_truncate  (** log truncation applied; arg = coordinator *)
  | M_msg_send  (** fabric message carrying a flow id; arg = flow *)
  | M_msg_recv  (** its remote delivery; arg = flow *)

val mark_name : mark -> string

(** {1 Thread tracks}

    Within one machine (one Perfetto process), tids partition the
    protocol roles: worker threads keep their own indices (the
    coordinator-side commit pipeline), and fixed tracks carry the
    receiver, network, lease and recovery roles. *)

val tid_net : int
val tid_lease : int
val tid_recovery : int

val tid_log : sender:int -> int
(** The log-processing track for records written by [sender]. *)

val tid_name : int -> string
(** The display name of a thread track ("worker 3", "net", "lease",
    "recovery", "log from m2"). *)

val flow_id : machine:int -> thread:int -> local:int -> tag:int -> dst:int -> int
(** Deterministic nonzero correlation id for one record of one
    transaction to one destination; sender and receiver compute it
    independently from the trace context already on the record. *)

(** {1 Recording} — all O(1), gated on {!enabled}.

    Trace context is passed as [txm]/[txt]/[txl] (coordinator machine,
    thread, local id), with [txm = -1] meaning none. [flow_in]/[flow_out]
    are {!flow_id} values, 0 meaning none. [start] is the slice's start
    in sim-time ns; its duration is [Engine.now - start]. *)

val slice : t -> tid:int -> step:step -> start:int -> arg:int -> unit

val slice_tx :
  t -> tid:int -> step:step -> start:int -> arg:int -> txm:int -> txt:int -> txl:int -> unit

val slice_flow :
  t ->
  tid:int ->
  step:step ->
  start:int ->
  arg:int ->
  txm:int ->
  txt:int ->
  txl:int ->
  flow_in:int ->
  flow_out:int ->
  unit

val instant : t -> tid:int -> mark:mark -> arg:int -> unit

(** {1 Offline views}

    Read-only snapshots of the recorded ring for offline analysis
    ({!Critpath} reconstructs cross-machine transaction paths from them).
    Purely a rendering of existing slots — taking views never perturbs
    recording. *)

type view = {
  v_machine : int;
  v_tid : int;
  v_instant : bool;  (** false = slice, true = instant mark *)
  v_step : int;  (** {!step_index} for slices, mark index for instants *)
  v_ts : int;  (** start, sim ns *)
  v_dur : int;  (** ns; 0 for instants *)
  v_arg : int;
  v_txm : int;  (** trace context; -1 = none *)
  v_txt : int;
  v_txl : int;
  v_fin : int;  (** incoming / outgoing flow ids; 0 = none *)
  v_fout : int;
}

val step_index : step -> int

val views : t list -> view list
(** Every live slot of the given tracers in the export's deterministic
    order: (timestamp, machine, slot age). *)

val view_name : view -> string
(** The same display name the export renders (log slices carry their
    record type, e.g. ["log-process LOCK"]). *)

(** {1 Export} *)

val export_json : ?mark:(view -> bool) -> t list -> string
(** The merged Chrome trace-event JSON document ([{"traceEvents": [...]}]):
    machines as processes, protocol roles as named threads, slices as
    [ph:"X"] complete events (ts/dur in microseconds), flow endpoints as
    [ph:"s"]/[ph:"f"] pairs bound to their slices, and marks as
    [ph:"i"] instants. Events are ordered by (timestamp, machine, slot
    age) so the document is a pure function of the recorded state —
    byte-identical across replays of the same seed.

    [mark] tags the slices it selects with [args.crit = 1] (critical-path
    highlighting); omitted, the output is byte-identical to what earlier
    versions produced. *)
