(* GC-quiet host-heap allocation measurement.

   [Gc.allocated_bytes] is exact over long windows but mis-places
   allocation across short ones: when a minor collection lands inside a
   measured window on OCaml 5.1's effects runtime, the window absorbs a
   spurious ~minor-heap-sized jump that neighbouring windows pay back.
   (The engine suspends and resumes thousands of fibers per simulated
   millisecond, so short windows are the common case here.)

   Every figure this module produces is therefore taken over a window
   verified to contain no minor collection: the minor heap is temporarily
   enlarged, the minor generation is emptied right before the window, and
   the measurement retries if a collection still slipped in.  Within such
   a window the delta is byte-exact. *)

let quiet_minor_heap_words = 32 * 1024 * 1024 (* 256 MB *)

(* Run [fn] with the enlarged minor heap, restoring the previous GC
   parameters afterwards.  Nesting is harmless. *)
let with_quiet_heap fn =
  let saved = Gc.get () in
  Gc.set { saved with Gc.minor_heap_size = quiet_minor_heap_words };
  Fun.protect ~finally:(fun () -> Gc.set saved) fn

(* Bytes allocated by one run of [fn], and whether the window stayed free
   of minor collections (when [false], the figure includes the artifact
   and should be retried over a smaller window). *)
let measure fn =
  Gc.minor ();
  let m0 = (Gc.quick_stat ()).Gc.minor_collections in
  let a0 = Gc.allocated_bytes () in
  let result = fn () in
  let a1 = Gc.allocated_bytes () in
  let m1 = (Gc.quick_stat ()).Gc.minor_collections in
  (result, a1 -. a0, m1 = m0)

(* Bytes allocated per call of [fn], amortized over [reps] calls inside
   one quiet window, after [warmup] unmeasured calls.  Halves [reps] and
   retries (up to [tries] times) if a minor collection interrupts; the
   last attempt's figure is returned even if dirty. *)
let bytes_per_op ?(warmup = 32) ?(reps = 256) ?(tries = 4) fn =
  with_quiet_heap (fun () ->
      for _ = 1 to warmup do
        fn ()
      done;
      let rec attempt reps tries =
        let (), bytes, clean =
          measure (fun () ->
              for _ = 1 to reps do
                fn ()
              done)
        in
        if clean || tries <= 0 then bytes /. float_of_int reps
        else attempt (max 1 (reps / 2)) (tries - 1)
      in
      attempt reps tries)
