open Farm_sim

type kind = Cumulative | Level

type series = {
  se_name : string;
  se_kind : kind;
  se_read : unit -> int;
  mutable se_prev : int;  (* Cumulative baseline for the next delta *)
}

type row = { mutable r_at : int; r_vals : int array }

type t = {
  engine : Engine.t;
  tl_machine : int;
  tl_capacity : int;
  mutable series : series list;  (* reverse registration order *)
  mutable rows : row array;  (* allocated at first start *)
  mutable pos : int;
  mutable tl_total : int;
  mutable tl_running : bool;
  mutable tl_interval : int;  (* ns; 0 until started *)
}

let create ?(capacity = 4096) engine ~machine =
  if capacity < 1 then invalid_arg "Timeline.create: capacity must be positive";
  {
    engine;
    tl_machine = machine;
    tl_capacity = capacity;
    series = [];
    rows = [||];
    pos = 0;
    tl_total = 0;
    tl_running = false;
    tl_interval = 0;
  }

let machine t = t.tl_machine

let add_series t ~name ~kind read =
  if t.tl_running then invalid_arg "Timeline.add_series: sampler already running";
  t.series <- { se_name = name; se_kind = kind; se_read = read; se_prev = 0 } :: t.series

let running t = t.tl_running
let interval_ns t = t.tl_interval
let series_names t = List.rev_map (fun s -> s.se_name) t.series

(* One tick: read every gauge into the next preallocated row. O(series)
   integer work; the only engine interaction is the clock read and the
   next tick's scheduling. *)
let sample t =
  let now = Time.to_ns (Engine.now t.engine) in
  let row = t.rows.(t.pos) in
  row.r_at <- now;
  let i = ref (Array.length row.r_vals) in
  (* t.series is in reverse registration order, so walking it forwards
     fills columns from the right. *)
  List.iter
    (fun s ->
      decr i;
      let cur = s.se_read () in
      (match s.se_kind with
      | Level -> row.r_vals.(!i) <- cur
      | Cumulative ->
          (* clamp: a machine restart swaps in fresh counters/CPU, which
             can only make [cur] drop below the baseline *)
          row.r_vals.(!i) <- max 0 (cur - s.se_prev));
      s.se_prev <- cur)
    t.series;
  t.pos <- (t.pos + 1) mod t.tl_capacity;
  t.tl_total <- t.tl_total + 1

let start t ~interval ~until =
  if t.series = [] then invalid_arg "Timeline.start: no series registered";
  if t.tl_running then invalid_arg "Timeline.start: already running";
  let interval = Time.to_ns interval and until = Time.to_ns until in
  if interval <= 0 then invalid_arg "Timeline.start: interval must be positive";
  let ncols = List.length t.series in
  if t.rows = [||] then
    t.rows <-
      Array.init t.tl_capacity (fun _ -> { r_at = 0; r_vals = Array.make ncols 0 });
  t.tl_interval <- interval;
  t.tl_running <- true;
  (* Cumulative baselines: deltas measure from start, not from machine
     boot, so a sampler attached mid-run reports only new activity. *)
  List.iter (fun s -> s.se_prev <- s.se_read ()) t.series;
  let rec tick () =
    sample t;
    let now = Time.to_ns (Engine.now t.engine) in
    if now + interval <= until then
      Engine.schedule_in t.engine ~after:(Time.ns interval) tick
    else t.tl_running <- false
  in
  if Time.to_ns (Engine.now t.engine) + interval <= until then
    Engine.schedule_in t.engine ~after:(Time.ns interval) tick
  else t.tl_running <- false

let rows t =
  let n = min t.tl_total t.tl_capacity in
  List.init n (fun i ->
      let r = t.rows.((t.pos - n + i + (2 * t.tl_capacity)) mod t.tl_capacity) in
      (r.r_at, r.r_vals))

(* {1 Export} *)

let export_json timelines =
  let timelines =
    List.sort (fun a b -> compare a.tl_machine b.tl_machine) timelines
  in
  let names =
    match timelines with [] -> [] | t :: _ -> series_names t
  in
  (* Merge timestamp-aligned rows across machines by summing. All
     machines tick at the same instants, but a machine started later
     (or with a smaller ring) may miss early bins; merging goes by
     timestamp, not row index, so partial coverage still sums right. *)
  let merged : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let stamps = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun (at, vals) ->
          match Hashtbl.find_opt merged at with
          | Some acc -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) vals
          | None ->
              Hashtbl.add merged at (Array.copy vals);
              stamps := at :: !stamps)
        (rows t))
    timelines;
  let stamps = List.sort compare !stamps in
  let buf = Buffer.create 16384 in
  let interval = match timelines with [] -> 0 | t :: _ -> t.tl_interval in
  Printf.bprintf buf "{\"interval_ns\":%d,\"machines\":[" interval;
  List.iteri
    (fun i t -> Printf.bprintf buf "%s%d" (if i > 0 then "," else "") t.tl_machine)
    timelines;
  Buffer.add_string buf "],\"series\":[\"t_ns\"";
  List.iter (fun n -> Printf.bprintf buf ",\"%s\"" n) names;
  Buffer.add_string buf "],\"rows\":[";
  List.iteri
    (fun i at ->
      let vals = Hashtbl.find merged at in
      Printf.bprintf buf "%s[%d" (if i > 0 then ",\n" else "") at;
      Array.iter (fun v -> Printf.bprintf buf ",%d" v) vals;
      Buffer.add_string buf "]")
    stamps;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
