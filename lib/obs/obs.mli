open Farm_sim

(** The observability spine: per-machine protocol counters, commit-phase
    spans, recovery-stage timings, and a bounded flight-recorder ring of
    typed protocol events.

    One [Obs.t] lives on each machine (created by {!Cluster}, threaded
    through {!State} and the fabric) and every protocol layer emits through
    it. The design obeys three hard rules:

    - {b O(1), allocation-light recording.} Events are a constant
      constructor plus three integer arguments written into a preallocated
      ring slot; counters are plain array increments; spans mutate a small
      per-transaction record. Nothing is formatted until a dump is
      requested.
    - {b Near-zero cost when disabled.} The event ring is gated on one
      boolean; a disabled sink reduces every {!event} call to a load and a
      branch. Counters, phase histograms and spans are always on (they are
      a handful of integer writes and feed the bench reports).
    - {b Determinism is never perturbed.} Recording only reads
      {!Engine.now} and mutates obs-local state — it never draws from an
      {!Rng}, schedules engine work, or blocks. Histories under seed replay
      are byte-identical with recording on or off. *)

type t

(** {1 Creation} *)

val create : ?capacity:int -> ?enabled:bool -> Engine.t -> machine:int -> t
(** A per-machine sink. [capacity] bounds the flight-recorder ring
    (default 128 events); [enabled] (default [false]) gates event
    recording only — counters, phases and stages are always live. *)

val machine : t -> int

val set_enabled : t -> bool -> unit
(** Gates the flight-recorder ring only; the tracer and timeline have
    their own switches (see below). *)

val enabled : t -> bool

val tracer : t -> Tracer.t
(** This machine's causal tracer (see {!Tracer}); off until
    [Tracer.set_enabled]. *)

val timeline : t -> Timeline.t
(** This machine's timeline sampler (see {!Timeline}); idle until
    series are registered and [Timeline.start] is called. *)

(** {1 Counters} — always on, one integer cell each. *)

type counter =
  | C_rdma_read  (** one-sided reads issued (single or batched) *)
  | C_rdma_write  (** one-sided writes issued (single or batched) *)
  | C_rdma_batch  (** doorbell-batched verb groups issued *)
  | C_rpc_send  (** fire-and-forget RC messages sent *)
  | C_rpc_call  (** blocking RPCs issued *)
  | C_ud_send  (** unreliable-datagram messages sent (leases) *)
  | C_ud_drop  (** UD packets lost on a faulty link *)
  | C_rc_retransmit  (** RC retransmissions on a faulty link *)
  | C_log_append  (** log records written (acked) *)
  | C_log_append_fail  (** log writes whose NIC gave up *)
  | C_log_record  (** incoming log records processed *)
  | C_log_trunc  (** truncations applied at this receiver *)
  | C_log_trunc_deferred  (** truncations deferred (records pending) *)
  | C_lock_ok  (** LOCK records granted all their locks *)
  | C_lock_fail  (** LOCK records refused *)
  | C_tx_commit  (** transactions committed here (coordinator) *)
  | C_tx_abort  (** transactions aborted here (coordinator) *)
  | C_lease_renewal  (** lease renewal requests sent *)
  | C_lease_grant  (** lease messages handled as a grantor *)
  | C_lease_expiry  (** lease expiries observed *)
  | C_suspect  (** machines newly suspected here *)
  | C_reconfig  (** NEW-CONFIG applications (configuration changes) *)
  | C_rec_vote  (** recovery votes received as coordinator *)
  | C_rec_decide  (** recovering transactions decided here *)
  | C_abort_lock_refused  (** aborts caused by a refused LOCK record *)
  | C_abort_validate_failed  (** aborts caused by a failed VALIDATE read *)
  | C_abort_timeout  (** aborts caused by timeouts / machine failure *)
  | C_snap_read  (** snapshot-protocol object reads (any source) *)
  | C_snap_chain_read  (** of which served from a version chain *)
  | C_ro_commit  (** read-only transactions committed locally, no VALIDATE *)
  | C_wm_trim  (** version-chain nodes truncated below the watermark *)

val all_counters : counter list
(** Every counter, in declaration order. *)

val counter_name : counter -> string
val incr : t -> counter -> unit
val add : t -> counter -> int -> unit
val counter : t -> counter -> int

val counter_totals : t -> (string * int) list
(** All nonzero counters, in declaration order. *)

(** {1 Commit-phase spans}

    One span per transaction, started by [Txn.begin_tx] and driven by the
    commit pipeline: {!Span.enter} closes the current segment at
    [Engine.now] and opens the next, so the segments partition the
    transaction's lifetime exactly — they sum, to the nanosecond, to the
    end-to-end latency reported at {!Span.finish}. Committed spans fold
    their segments into the per-machine phase histograms (skipping phases
    never entered or of zero duration). *)

type phase =
  | P_execute
  | P_lock
  | P_validate
  | P_commit_backup
  | P_commit_primary
  | P_truncate
  | P_commit_wait
      (** snapshot protocol: the coordinator waiting out clock
          uncertainty before exposing its writes *)

val phase_name : phase -> string
val all_phases : phase list
val phase_index : phase -> int

(** Blame categories — the exclusive latency partition documented in the
    {{!section-latency_blame} Latency blame} section below. Declared here
    because {!Span.claim} takes one. *)
type blame =
  | B_admission  (** open-loop admission queueing before the span starts *)
  | B_execute  (** coordinator CPU in the execute phase *)
  | B_lock_wait  (** waiting for LOCK outcomes at the primaries *)
  | B_logring_wait  (** stalled reserving remote log-ring space *)
  | B_nic_issue  (** CPU issuing one-sided verbs / doorbells *)
  | B_propagation  (** wire flight + remote NIC/DMA + serialization *)
  | B_poll  (** reaping completions / RPC receive CPU *)
  | B_commit_wait  (** snapshot protocol: waiting out clock uncertainty *)
  | B_truncate  (** deferred background truncation *)

val all_blames : blame list
val blame_name : blame -> string
val blame_index : blame -> int

module Span : sig
  type obs := t
  type t

  val start : ?tid:int -> obs -> t
  (** Open a span in [P_execute] at the current sim time. [tid] (default
      0) is the worker-thread track its trace slices land on. *)

  val set_tx : t -> txm:int -> txt:int -> txl:int -> unit
  (** Attach the transaction's trace context — (coordinator machine,
      thread, local id), i.e. its {!Txid} — once the commit pipeline has
      assigned it; subsequent trace slices carry it. *)

  val enter : t -> phase -> unit
  (** Close the current segment and open [phase] — also emitting the
      closed segment as a trace slice when the tracer is on. No-op after
      [finish]. *)

  val finish : t -> committed:bool -> unit
  (** Close the span at the current sim time. Committed spans fold their
      segments into the phase histograms and fire the span hook.
      Idempotent. *)

  val claim : t -> blame -> int -> unit
  (** Attribute [ns] of the current phase segment to a blame category.
      Callers must claim consecutive, non-overlapping wall-clock
      sub-intervals of their own elapsed time inside the segment (measure
      [Engine.now] around the work, claim the difference); the segment's
      unclaimed remainder falls to the phase's default category at the
      next {!enter}/{!finish}. A length check when blame is off. *)

  val segments : t -> (phase * int) list
  (** Entered segments with their accumulated nanoseconds. *)

  val total_ns : t -> int
  (** End-to-end nanoseconds ([finish] time - [start] time); 0 before
      [finish]. *)

  val blame : t -> (blame * int) list
  (** Nonzero blame claims (including defaulted remainders); [[]] while
      blame is off. *)
end

val set_span_hook : t -> (committed:bool -> Span.t -> unit) option -> unit
(** Test hook fired at every [Span.finish]. *)

val phase_hist : t -> phase -> Stats.Hist.t
(** Per-phase latency (ns) of committed transactions coordinated here. *)

val record_phase : t -> phase -> int -> unit
(** Record a phase duration directly (the background TRUNCATE segment,
    which completes after the span has finished). *)

val phase_total_ns : t -> phase -> int
(** Exact nanoseconds ever recorded into the phase (committed transactions
    only) — an integer sum, not a histogram readback, so blame totals can
    be reconciled against it to the ns. *)

(** {1 Latency blame}

    An exclusive partition of committed-transaction latency, finer than
    the phases: instrumented resources ({!Farm_net.Fabric}, the log
    writer, the admission queue) {!Span.claim} the consecutive
    wall-clock sub-intervals they spent inside the current phase segment,
    and at each phase boundary the unclaimed remainder falls to the
    phase's default category. Claims never overlap and the remainder
    absorbs what they left, so a transaction's category sums equal its
    span total {e exactly} — and, in aggregate,
    [sum over categories except admission of blame_total_ns] equals
    [sum over phases of phase_total_ns] to the nanosecond.

    The whole layer is gated on {!set_blame} (default off): disabled, a
    span carries the static empty array and {!Span.claim} is a length
    check, so the commit hot path's allocation budget is untouched. *)

val set_blame : t -> bool -> unit
(** Arm blame attribution: spans started afterwards carry a per-category
    claim array. The off-to-on transition starts a fresh attribution
    window — the exact accumulators ({!phase_total_ns},
    {!blame_total_ns}), the blame histograms and the exemplar list are
    reset so blame and phase totals cover the same interval (arm after a
    bulk load, not during a transaction). The phase {e histograms} are
    whole-run observables and are not touched. Recording stays
    determinism-inert either way. *)

val blame_enabled : t -> bool

val blame_hist : t -> blame -> Stats.Hist.t
(** Per-category nanoseconds of committed transactions coordinated here
    (admission and truncate come from their own record sites). *)

val blame_total_ns : t -> blame -> int
(** Exact nanoseconds ever recorded into the category. *)

val record_blame : t -> blame -> int -> unit
(** Record a duration directly into a category — the admission queue
    (before a span exists) and the background truncation (after the span
    finished) use this. *)

(** {2 Exemplars} — the slowest committed transactions, kept while blame
    is armed so reports can show where the tail's time went. *)

type exemplar = {
  ex_txm : int;  (** coordinator machine *)
  ex_txt : int;  (** coordinator thread *)
  ex_txl : int;  (** tx local id *)
  ex_start : int;  (** span start, sim ns *)
  ex_total : int;  (** end-to-end ns *)
  ex_blame : int array;  (** per-category ns, indexed by {!blame_index} *)
  ex_seg : int array;  (** per-phase ns, in {!all_phases} order *)
}

val exemplars : t -> exemplar list
(** Up to 8 slowest committed spans, slowest first; deterministic under
    seed replay. *)

(** {1 Per-region heat} — decaying access/conflict counters (see {!Heat});
    always on, like the counters. *)

val heat : t -> Heat.t
val heat_access : t -> region:int -> unit
val heat_conflict : t -> region:int -> unit

(** {1 Recovery-stage timings} *)

type stage =
  | S_drain  (** config-commit to log-drain completion (§5.3 step 2) *)
  | S_region_active  (** config-commit to region re-activation (step 4) *)
  | S_decide  (** recovery-coordination creation to decision (step 7) *)

val stage_name : stage -> string
val all_stages : stage list
val stage_hist : t -> stage -> Stats.Hist.t

val record_stage : t -> stage -> Time.t -> unit
(** Record a stage that just completed, taking the given duration; when
    the tracer is on, also emits it as a slice on the recovery track. *)

(** {1 The flight recorder} — a bounded ring of typed protocol events,
    recorded only while {!enabled}. Each event is a kind plus three
    small integer arguments whose meaning depends on the kind (documented
    per constructor); rendering happens only at {!events} time. *)

type kind =
  | K_rdma_read  (** a=dst, b=bytes *)
  | K_rdma_write  (** a=dst, b=bytes *)
  | K_rdma_batch  (** a=ops, b=total bytes *)
  | K_send  (** a=dst, b=bytes, c=0 RC / 1 UD *)
  | K_call  (** a=dst, b=bytes *)
  | K_drop  (** a=dst, c=0 UD loss / 1 RC retransmission *)
  | K_log_append  (** a=dst, b=record bytes, c=ring bytes used after *)
  | K_log_append_fail  (** a=dst, b=record bytes *)
  | K_log_record  (** a=sender, b=payload tag (0 LOCK, 1 COMMIT-BACKUP, 2
                      COMMIT-PRIMARY, 3 ABORT, 4 TRUNCATE-MARKER) *)
  | K_log_trunc  (** a=coordinator machine, b=tx local id *)
  | K_phase  (** a=commit-phase index, b=tx thread, c=tx local id *)
  | K_tx_commit  (** c=latency ns *)
  | K_tx_abort  (** a=abort-reason tag, b=cause (0 lock-refused, 1
                    validate-failed, 2 timeout, 3 other) *)
  | K_lease_renewal  (** a=grantor *)
  | K_lease_grant  (** a=requester *)
  | K_lease_expiry  (** a=expired peer *)
  | K_suspect  (** a=suspect *)
  | K_new_config  (** a=config id, b=member count, c=cm *)
  | K_config_commit  (** a=config id *)
  | K_rec_drain  (** a=config id, b=duration ns *)
  | K_rec_region_active  (** a=region, b=duration ns *)
  | K_rec_vote  (** a=region, b=vote tag *)
  | K_rec_decide  (** a=1 committed / 0 aborted, b=duration ns *)

val event : t -> kind -> a:int -> b:int -> c:int -> unit
(** Record an event into the ring; a load and a branch when disabled.
    Kinds that double as trace instants (drops, retransmissions, lease
    expiries, suspicions, config commits, truncations) are also
    forwarded to the tracer while it is enabled — each gate is
    independent. *)

val events : t -> (int * string) list
(** The ring's contents, oldest first, as (sim-time ns, rendered line). *)

val total_events : t -> int
(** Events recorded since creation, including overwritten ones. *)

(** {1 Reporting} *)

val pp_counters : Format.formatter -> t -> unit
(** Nonzero counters as [name=value], space-separated. *)

val pp_hist_table : Format.formatter -> (string * Stats.Hist.t) list -> unit
(** A count/p50/p90/p99/p999/max/mean table (microseconds) of nonempty
    histograms. *)
