open Farm_sim

(* Causal tracing. Implementation notes, mirroring the obs spine:

   - One preallocated ring of all-mutable-int slots; recording a slice or
     an instant is ~10 integer stores. Rendering is deferred to
     [export_json].
   - The only engine interaction is reading the clock; nothing here draws
     randomness, schedules work, or blocks, so histories are identical
     with tracing on or off, and the export is a pure function of the
     recorded slots — byte-identical across replays of one seed.
   - Timestamps are sim-time ns (ints); the export renders microseconds
     by integer division, so no float formatting can perturb bytes. *)

type step =
  | T_execute
  | T_lock
  | T_validate
  | T_commit_backup
  | T_commit_primary
  | T_truncate
  | T_log_append
  | T_log_process
  | T_lock_grant
  | T_lock_refuse
  | T_rec_drain
  | T_rec_region_active
  | T_rec_decide
  | T_commit_wait

let step_index = function
  | T_execute -> 0
  | T_lock -> 1
  | T_validate -> 2
  | T_commit_backup -> 3
  | T_commit_primary -> 4
  | T_truncate -> 5
  | T_log_append -> 6
  | T_log_process -> 7
  | T_lock_grant -> 8
  | T_lock_refuse -> 9
  | T_rec_drain -> 10
  | T_rec_region_active -> 11
  | T_rec_decide -> 12
  | T_commit_wait -> 13

let step_names =
  [|
    "execute"; "LOCK"; "VALIDATE"; "COMMIT-BACKUP"; "COMMIT-PRIMARY"; "TRUNCATE";
    "log-append"; "log-process"; "lock-grant"; "lock-refuse"; "rec-drain";
    "rec-region-active"; "rec-decide"; "COMMIT-WAIT";
  |]

let step_name s = step_names.(step_index s)

type mark =
  | M_drop
  | M_retransmit
  | M_lease_expiry
  | M_suspect
  | M_config_commit
  | M_truncate
  | M_msg_send
  | M_msg_recv

let mark_index = function
  | M_drop -> 0
  | M_retransmit -> 1
  | M_lease_expiry -> 2
  | M_suspect -> 3
  | M_config_commit -> 4
  | M_truncate -> 5
  | M_msg_send -> 6
  | M_msg_recv -> 7

let mark_names =
  [|
    "drop"; "retransmit"; "lease-expiry"; "suspect"; "config-commit"; "truncate";
    "msg-send"; "msg-recv";
  |]

let mark_name m = mark_names.(mark_index m)

(* {1 Thread tracks} *)

let tid_net = 32
let tid_lease = 33
let tid_recovery = 34
let tid_log ~sender = 64 + sender

let tid_name tid =
  if tid >= 64 then Printf.sprintf "log from m%d" (tid - 64)
  else if tid = tid_net then "net"
  else if tid = tid_lease then "lease"
  else if tid = tid_recovery then "recovery"
  else Printf.sprintf "worker %d" tid

(* Perfetto sorts threads by tid when no sort index is given; the layout
   above (workers, then net/lease/recovery, then per-sender log tracks)
   is already the reading order we want. *)

(* A flow id is a positional encoding of (trace context, payload tag,
   destination) — injective for machines/threads < 64 and tags < 8, so
   the sender of a record and its remote processor derive the same id
   from fields the record already carries, and distinct records never
   collide. [+ 1] keeps 0 free as the "no flow" sentinel. *)
let flow_id ~machine ~thread ~local ~tag ~dst =
  ((((((local * 64) + machine) * 64) + thread) * 8 + tag) * 64) + dst + 1

(* Names of the flow-id tag space: record tags 0-4 (the wire's
   [payload_tag] order), then the reserved message tags. The export
   decodes a slice's tag back out of its flow id so log-append /
   log-process slices read as the record they carry. *)
let tag_names =
  [| "LOCK"; "COMMIT-BACKUP"; "COMMIT-PRIMARY"; "ABORT"; "TRUNCATE"; "lock-reply"; "validate"; "?" |]

let flow_tag fid = (fid - 1) / 64 mod 8

(* {1 The ring} *)

type slot = {
  mutable e_ph : int;  (* 0 slice / 1 instant *)
  mutable e_ts : int;  (* ns; a slice's start *)
  mutable e_dur : int;  (* ns; slices only *)
  mutable e_tid : int;
  mutable e_name : int;  (* step or mark index, per e_ph *)
  mutable e_arg : int;
  mutable e_txm : int;  (* trace context; e_txm = -1 means none *)
  mutable e_txt : int;
  mutable e_txl : int;
  mutable e_fin : int;  (* incoming / outgoing flow ids; 0 = none *)
  mutable e_fout : int;
}

type t = {
  engine : Engine.t;
  trc_machine : int;
  mutable trc_enabled : bool;
  ring : slot array;
  mutable pos : int;
  mutable trc_total : int;
}

let create ?(capacity = 4096) engine ~machine =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be positive";
  {
    engine;
    trc_machine = machine;
    trc_enabled = false;
    ring =
      Array.init capacity (fun _ ->
          {
            e_ph = 0;
            e_ts = 0;
            e_dur = 0;
            e_tid = 0;
            e_name = 0;
            e_arg = 0;
            e_txm = -1;
            e_txt = 0;
            e_txl = 0;
            e_fin = 0;
            e_fout = 0;
          });
    pos = 0;
    trc_total = 0;
  }

let machine t = t.trc_machine
let set_enabled t on = t.trc_enabled <- on
let enabled t = t.trc_enabled
let total t = t.trc_total

let alloc t =
  let s = t.ring.(t.pos) in
  t.pos <- (t.pos + 1) mod Array.length t.ring;
  t.trc_total <- t.trc_total + 1;
  s

let record_slice t ~tid ~step ~start ~arg ~txm ~txt ~txl ~flow_in ~flow_out =
  let now = Time.to_ns (Engine.now t.engine) in
  let s = alloc t in
  s.e_ph <- 0;
  s.e_ts <- start;
  s.e_dur <- now - start;
  s.e_tid <- tid;
  s.e_name <- step_index step;
  s.e_arg <- arg;
  s.e_txm <- txm;
  s.e_txt <- txt;
  s.e_txl <- txl;
  s.e_fin <- flow_in;
  s.e_fout <- flow_out

let slice t ~tid ~step ~start ~arg =
  if t.trc_enabled then
    record_slice t ~tid ~step ~start ~arg ~txm:(-1) ~txt:0 ~txl:0 ~flow_in:0
      ~flow_out:0

let slice_tx t ~tid ~step ~start ~arg ~txm ~txt ~txl =
  if t.trc_enabled then
    record_slice t ~tid ~step ~start ~arg ~txm ~txt ~txl ~flow_in:0 ~flow_out:0

let slice_flow t ~tid ~step ~start ~arg ~txm ~txt ~txl ~flow_in ~flow_out =
  if t.trc_enabled then
    record_slice t ~tid ~step ~start ~arg ~txm ~txt ~txl ~flow_in ~flow_out

let instant t ~tid ~mark ~arg =
  if t.trc_enabled then begin
    let s = alloc t in
    s.e_ph <- 1;
    s.e_ts <- Time.to_ns (Engine.now t.engine);
    s.e_dur <- 0;
    s.e_tid <- tid;
    s.e_name <- mark_index mark;
    s.e_arg <- arg;
    s.e_txm <- -1;
    s.e_txt <- 0;
    s.e_txl <- 0;
    s.e_fin <- 0;
    s.e_fout <- 0
  end

(* {1 Offline views} *)

type view = {
  v_machine : int;
  v_tid : int;
  v_instant : bool;
  v_step : int;
  v_ts : int;
  v_dur : int;
  v_arg : int;
  v_txm : int;
  v_txt : int;
  v_txl : int;
  v_fin : int;
  v_fout : int;
}

let view_of_slot machine (s : slot) =
  {
    v_machine = machine;
    v_tid = s.e_tid;
    v_instant = s.e_ph = 1;
    v_step = s.e_name;
    v_ts = s.e_ts;
    v_dur = s.e_dur;
    v_arg = s.e_arg;
    v_txm = s.e_txm;
    v_txt = s.e_txt;
    v_txl = s.e_txl;
    v_fin = s.e_fin;
    v_fout = s.e_fout;
  }

let view_name v =
  if v.v_instant then mark_names.(v.v_step)
  else
    let flow = if v.v_fout <> 0 then v.v_fout else v.v_fin in
    if
      flow <> 0
      && (v.v_step = step_index T_log_append || v.v_step = step_index T_log_process)
    then step_names.(v.v_step) ^ " " ^ tag_names.(flow_tag flow)
    else step_names.(v.v_step)

(* Live slots of every tracer, keyed for a total deterministic order:
   timestamp, then machine, then slot age. *)
let live_entries tracers =
  let entries = ref [] in
  List.iter
    (fun t ->
      let cap = Array.length t.ring in
      let n = min t.trc_total cap in
      for i = 0 to n - 1 do
        let s = t.ring.((t.pos - n + i + (2 * cap)) mod cap) in
        entries := (s.e_ts, t.trc_machine, i, s) :: !entries
      done)
    tracers;
  List.sort
    (fun (ts1, m1, i1, _) (ts2, m2, i2, _) ->
      if ts1 <> ts2 then compare ts1 ts2
      else if m1 <> m2 then compare m1 m2
      else compare i1 i2)
    (List.rev !entries)

let views tracers =
  List.map (fun (_, machine, _, s) -> view_of_slot machine s) (live_entries tracers)

(* {1 Export} *)

(* Microseconds with three decimals by integer division: float formatting
   never touches the artifact, so its bytes depend only on the ints. *)
let bprint_us buf ns =
  let ns = if ns < 0 then 0 else ns in
  Printf.bprintf buf "%d.%03d" (ns / 1000) (ns mod 1000)

let bprint_common buf ~name ~ph ~ts ~pid ~tid =
  Printf.bprintf buf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":" name ph;
  bprint_us buf ts;
  Printf.bprintf buf ",\"pid\":%d,\"tid\":%d" pid tid

(* Render one slot into 1-3 trace events (the slice plus its flow
   endpoints, which Perfetto binds to the enclosing slice by emitting
   them at the slice's start timestamp on the same pid/tid). *)
let render_slot buf ~pid ~crit (s : slot) =
  if s.e_ph = 1 then begin
    bprint_common buf ~name:mark_names.(s.e_name) ~ph:"i" ~ts:s.e_ts ~pid
      ~tid:s.e_tid;
    Printf.bprintf buf ",\"s\":\"t\",\"args\":{\"arg\":%d}}" s.e_arg
  end
  else begin
    let name =
      (* log-append/log-process slices carry their record's flow; name
         them by the record type the flow id encodes *)
      let flow = if s.e_fout <> 0 then s.e_fout else s.e_fin in
      if flow <> 0 && (s.e_name = step_index T_log_append || s.e_name = step_index T_log_process)
      then step_names.(s.e_name) ^ " " ^ tag_names.(flow_tag flow)
      else step_names.(s.e_name)
    in
    bprint_common buf ~name ~ph:"X" ~ts:s.e_ts ~pid ~tid:s.e_tid;
    Printf.bprintf buf ",\"dur\":";
    bprint_us buf s.e_dur;
    Printf.bprintf buf ",\"args\":{\"arg\":%d" s.e_arg;
    if s.e_txm >= 0 then
      Printf.bprintf buf ",\"tx\":\"m%d.t%d.%d\"" s.e_txm s.e_txt s.e_txl;
    if crit then Printf.bprintf buf ",\"crit\":1";
    Printf.bprintf buf "}}";
    if s.e_fout <> 0 then begin
      Buffer.add_string buf ",\n";
      bprint_common buf ~name:"flow" ~ph:"s" ~ts:s.e_ts ~pid ~tid:s.e_tid;
      Printf.bprintf buf ",\"cat\":\"flow\",\"id\":%d}" s.e_fout
    end;
    if s.e_fin <> 0 then begin
      Buffer.add_string buf ",\n";
      bprint_common buf ~name:"flow" ~ph:"f" ~ts:s.e_ts ~pid ~tid:s.e_tid;
      Printf.bprintf buf ",\"cat\":\"flow\",\"bp\":\"e\",\"id\":%d}" s.e_fin
    end
  end

let export_json ?mark tracers =
  let entries = live_entries tracers in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit render =
    if !first then first := false else Buffer.add_string buf ",\n";
    render buf
  in
  (* Metadata: machines as processes, roles as named threads (only tids
     that actually carry events, in sorted order). *)
  List.iter
    (fun t ->
      let pid = t.trc_machine in
      emit (fun buf ->
          bprint_common buf ~name:"process_name" ~ph:"M" ~ts:0 ~pid ~tid:0;
          Printf.bprintf buf ",\"args\":{\"name\":\"machine %d\"}}" pid);
      let cap = Array.length t.ring in
      let n = min t.trc_total cap in
      let tids = ref [] in
      for i = 0 to n - 1 do
        let s = t.ring.((t.pos - n + i + (2 * cap)) mod cap) in
        if not (List.mem s.e_tid !tids) then tids := s.e_tid :: !tids
      done;
      List.iter
        (fun tid ->
          emit (fun buf ->
              bprint_common buf ~name:"thread_name" ~ph:"M" ~ts:0 ~pid ~tid;
              Printf.bprintf buf ",\"args\":{\"name\":\"%s\"}}" (tid_name tid)))
        (List.sort compare !tids))
    (List.sort (fun a b -> compare a.trc_machine b.trc_machine) tracers);
  List.iter
    (fun (_, pid, _, s) ->
      let crit =
        match mark with None -> false | Some f -> f (view_of_slot pid s)
      in
      emit (fun buf -> render_slot buf ~pid ~crit s))
    entries;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
