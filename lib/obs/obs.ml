open Farm_sim

(* The observability spine. See the interface for the three hard rules
   (O(1) recording, near-zero cost disabled, determinism preserved); the
   implementation notes here cover how each is met.

   - Events are written into preallocated ring slots whose fields are all
     mutable ints: no allocation on the hot path, rendering deferred to
     dump time.
   - Counters are one flat int array indexed by the counter's declaration
     position.
   - Nothing below ever touches an Rng, schedules engine work, or blocks:
     the only engine interaction is reading the clock. *)

(* {1 Counters} *)

type counter =
  | C_rdma_read
  | C_rdma_write
  | C_rdma_batch
  | C_rpc_send
  | C_rpc_call
  | C_ud_send
  | C_ud_drop
  | C_rc_retransmit
  | C_log_append
  | C_log_append_fail
  | C_log_record
  | C_log_trunc
  | C_log_trunc_deferred
  | C_lock_ok
  | C_lock_fail
  | C_tx_commit
  | C_tx_abort
  | C_lease_renewal
  | C_lease_grant
  | C_lease_expiry
  | C_suspect
  | C_reconfig
  | C_rec_vote
  | C_rec_decide
  | C_abort_lock_refused
  | C_abort_validate_failed
  | C_abort_timeout
  | C_snap_read
  | C_snap_chain_read
  | C_ro_commit
  | C_wm_trim

let all_counters =
  [
    C_rdma_read; C_rdma_write; C_rdma_batch; C_rpc_send; C_rpc_call; C_ud_send;
    C_ud_drop; C_rc_retransmit; C_log_append; C_log_append_fail; C_log_record;
    C_log_trunc; C_log_trunc_deferred; C_lock_ok; C_lock_fail; C_tx_commit;
    C_tx_abort; C_lease_renewal; C_lease_grant; C_lease_expiry; C_suspect;
    C_reconfig; C_rec_vote; C_rec_decide; C_abort_lock_refused;
    C_abort_validate_failed; C_abort_timeout; C_snap_read; C_snap_chain_read;
    C_ro_commit; C_wm_trim;
  ]

let n_counters = List.length all_counters

let counter_index = function
  | C_rdma_read -> 0
  | C_rdma_write -> 1
  | C_rdma_batch -> 2
  | C_rpc_send -> 3
  | C_rpc_call -> 4
  | C_ud_send -> 5
  | C_ud_drop -> 6
  | C_rc_retransmit -> 7
  | C_log_append -> 8
  | C_log_append_fail -> 9
  | C_log_record -> 10
  | C_log_trunc -> 11
  | C_log_trunc_deferred -> 12
  | C_lock_ok -> 13
  | C_lock_fail -> 14
  | C_tx_commit -> 15
  | C_tx_abort -> 16
  | C_lease_renewal -> 17
  | C_lease_grant -> 18
  | C_lease_expiry -> 19
  | C_suspect -> 20
  | C_reconfig -> 21
  | C_rec_vote -> 22
  | C_rec_decide -> 23
  | C_abort_lock_refused -> 24
  | C_abort_validate_failed -> 25
  | C_abort_timeout -> 26
  | C_snap_read -> 27
  | C_snap_chain_read -> 28
  | C_ro_commit -> 29
  | C_wm_trim -> 30

let counter_name = function
  | C_rdma_read -> "rdma-read"
  | C_rdma_write -> "rdma-write"
  | C_rdma_batch -> "rdma-batch"
  | C_rpc_send -> "rpc-send"
  | C_rpc_call -> "rpc-call"
  | C_ud_send -> "ud-send"
  | C_ud_drop -> "ud-drop"
  | C_rc_retransmit -> "rc-retransmit"
  | C_log_append -> "log-append"
  | C_log_append_fail -> "log-append-fail"
  | C_log_record -> "log-record"
  | C_log_trunc -> "log-trunc"
  | C_log_trunc_deferred -> "log-trunc-deferred"
  | C_lock_ok -> "lock-ok"
  | C_lock_fail -> "lock-fail"
  | C_tx_commit -> "tx-commit"
  | C_tx_abort -> "tx-abort"
  | C_lease_renewal -> "lease-renewal"
  | C_lease_grant -> "lease-grant"
  | C_lease_expiry -> "lease-expiry"
  | C_suspect -> "suspect"
  | C_reconfig -> "reconfig"
  | C_rec_vote -> "rec-vote"
  | C_rec_decide -> "rec-decide"
  | C_abort_lock_refused -> "abort-lock-refused"
  | C_abort_validate_failed -> "abort-validate-failed"
  | C_abort_timeout -> "abort-timeout"
  | C_snap_read -> "snap-read"
  | C_snap_chain_read -> "snap-chain-read"
  | C_ro_commit -> "ro-commit"
  | C_wm_trim -> "wm-trim"

(* {1 Phases and stages} *)

(* [P_commit_wait] (snapshot protocol: waiting out clock uncertainty) sits
   last so the established phase indices stay stable. *)
type phase =
  | P_execute
  | P_lock
  | P_validate
  | P_commit_backup
  | P_commit_primary
  | P_truncate
  | P_commit_wait

let all_phases =
  [ P_execute; P_lock; P_validate; P_commit_backup; P_commit_primary; P_truncate; P_commit_wait ]

let n_phases = List.length all_phases

let phase_index = function
  | P_execute -> 0
  | P_lock -> 1
  | P_validate -> 2
  | P_commit_backup -> 3
  | P_commit_primary -> 4
  | P_truncate -> 5
  | P_commit_wait -> 6

let phase_name = function
  | P_execute -> "execute"
  | P_lock -> "lock"
  | P_validate -> "validate"
  | P_commit_backup -> "commit-backup"
  | P_commit_primary -> "commit-primary"
  | P_truncate -> "truncate"
  | P_commit_wait -> "commit-wait"

type stage = S_drain | S_region_active | S_decide

let all_stages = [ S_drain; S_region_active; S_decide ]
let n_stages = List.length all_stages
let stage_index = function S_drain -> 0 | S_region_active -> 1 | S_decide -> 2

let stage_name = function
  | S_drain -> "drain"
  | S_region_active -> "region-active"
  | S_decide -> "decide"

(* {1 Blame categories}

   An exclusive partition of transaction latency, finer than the phases: a
   phase segment is split between the resources that spent it (claimed by
   the fabric/log instrumentation as consecutive measured sub-intervals)
   with the unclaimed remainder falling to the phase's default category.
   Sums are exact by construction: claims never overlap and the remainder
   absorbs whatever they left, so per-transaction category sums equal the
   span total to the nanosecond. *)

type blame =
  | B_admission
  | B_execute
  | B_lock_wait
  | B_logring_wait
  | B_nic_issue
  | B_propagation
  | B_poll
  | B_commit_wait
  | B_truncate

let all_blames =
  [
    B_admission; B_execute; B_lock_wait; B_logring_wait; B_nic_issue; B_propagation;
    B_poll; B_commit_wait; B_truncate;
  ]

let n_blames = List.length all_blames

let blame_index = function
  | B_admission -> 0
  | B_execute -> 1
  | B_lock_wait -> 2
  | B_logring_wait -> 3
  | B_nic_issue -> 4
  | B_propagation -> 5
  | B_poll -> 6
  | B_commit_wait -> 7
  | B_truncate -> 8

let blame_name = function
  | B_admission -> "admission"
  | B_execute -> "execute"
  | B_lock_wait -> "lock-wait"
  | B_logring_wait -> "logring-wait"
  | B_nic_issue -> "nic-issue"
  | B_propagation -> "propagation"
  | B_poll -> "poll"
  | B_commit_wait -> "commit-wait"
  | B_truncate -> "truncate"

let all_blames_arr = Array.of_list all_blames

(* Where a phase segment's unclaimed remainder lands, by phase index:
   execute -> execute CPU, lock -> lock wait (the wait for LOCK replies
   dominates once the appends are carved out), validate / commit-backup /
   commit-primary -> propagation (what remains after issue and poll claims
   is wire-and-remote time), truncate -> truncate, commit-wait -> the
   clock-uncertainty wait. *)
let default_blame_of_phase =
  [|
    blame_index B_execute; blame_index B_lock_wait; blame_index B_propagation;
    blame_index B_propagation; blame_index B_propagation; blame_index B_truncate;
    blame_index B_commit_wait;
  |]

(* {1 Event kinds} *)

type kind =
  | K_rdma_read
  | K_rdma_write
  | K_rdma_batch
  | K_send
  | K_call
  | K_drop
  | K_log_append
  | K_log_append_fail
  | K_log_record
  | K_log_trunc
  | K_phase
  | K_tx_commit
  | K_tx_abort
  | K_lease_renewal
  | K_lease_grant
  | K_lease_expiry
  | K_suspect
  | K_new_config
  | K_config_commit
  | K_rec_drain
  | K_rec_region_active
  | K_rec_vote
  | K_rec_decide

let kind_index = function
  | K_rdma_read -> 0
  | K_rdma_write -> 1
  | K_rdma_batch -> 2
  | K_send -> 3
  | K_call -> 4
  | K_drop -> 5
  | K_log_append -> 6
  | K_log_append_fail -> 7
  | K_log_record -> 8
  | K_log_trunc -> 9
  | K_phase -> 10
  | K_tx_commit -> 11
  | K_tx_abort -> 12
  | K_lease_renewal -> 13
  | K_lease_grant -> 14
  | K_lease_expiry -> 15
  | K_suspect -> 16
  | K_new_config -> 17
  | K_config_commit -> 18
  | K_rec_drain -> 19
  | K_rec_region_active -> 20
  | K_rec_vote -> 21
  | K_rec_decide -> 22

let all_kinds =
  [|
    K_rdma_read; K_rdma_write; K_rdma_batch; K_send; K_call; K_drop; K_log_append;
    K_log_append_fail; K_log_record; K_log_trunc; K_phase; K_tx_commit; K_tx_abort;
    K_lease_renewal; K_lease_grant; K_lease_expiry; K_suspect; K_new_config;
    K_config_commit; K_rec_drain; K_rec_region_active; K_rec_vote; K_rec_decide;
  |]

(* Names of the commit-phase hook points carried by [K_phase] events; the
   indices match State.commit_phase's declaration order. *)
let commit_phase_tag = function
  | 0 -> "before-lock"
  | 1 -> "after-lock"
  | 2 -> "after-validate"
  | 3 -> "after-commit-backup"
  | 4 -> "after-commit-primary"
  | 5 -> "after-truncate"
  | n -> Printf.sprintf "phase-%d" n

let log_payload_tag = function
  | 0 -> "LOCK"
  | 1 -> "COMMIT-BACKUP"
  | 2 -> "COMMIT-PRIMARY"
  | 3 -> "ABORT"
  | 4 -> "TRUNCATE-MARKER"
  | n -> Printf.sprintf "payload-%d" n

let render_body k ~a ~b ~c =
  match k with
  | K_rdma_read -> Printf.sprintf "rdma-read dst=m%d bytes=%d" a b
  | K_rdma_write -> Printf.sprintf "rdma-write dst=m%d bytes=%d" a b
  | K_rdma_batch -> Printf.sprintf "rdma-batch ops=%d bytes=%d" a b
  | K_send -> Printf.sprintf "send dst=m%d bytes=%d %s" a b (if c = 1 then "ud" else "rc")
  | K_call -> Printf.sprintf "call dst=m%d bytes=%d" a b
  | K_drop ->
      Printf.sprintf "%s dst=m%d" (if c = 1 then "rc-retransmit" else "ud-drop") a
  | K_log_append -> Printf.sprintf "log-append dst=m%d bytes=%d used=%d" a b c
  | K_log_append_fail -> Printf.sprintf "log-append-FAIL dst=m%d bytes=%d" a b
  | K_log_record -> Printf.sprintf "log-record from=m%d %s" a (log_payload_tag b)
  | K_log_trunc -> Printf.sprintf "log-trunc coord=m%d local=%d" a b
  | K_phase -> Printf.sprintf "phase %s tx=%d.%d" (commit_phase_tag a) b c
  | K_tx_commit -> Printf.sprintf "tx-commit latency=%dns" c
  | K_tx_abort ->
      Printf.sprintf "tx-abort reason=%d cause=%s" a
        (match b with
        | 0 -> "lock-refused"
        | 1 -> "validate-failed"
        | 2 -> "timeout"
        | _ -> "other")
  | K_lease_renewal -> Printf.sprintf "lease-renewal dst=m%d" a
  | K_lease_grant -> Printf.sprintf "lease-grant to=m%d" a
  | K_lease_expiry -> Printf.sprintf "lease-expiry peer=m%d" a
  | K_suspect -> Printf.sprintf "suspect m%d" a
  | K_new_config -> Printf.sprintf "new-config cfg=%d members=%d cm=m%d" a b c
  | K_config_commit -> Printf.sprintf "config-commit cfg=%d" a
  | K_rec_drain -> Printf.sprintf "rec-drain cfg=%d took=%dns" a b
  | K_rec_region_active -> Printf.sprintf "rec-region-active rid=%d took=%dns" a b
  | K_rec_vote -> Printf.sprintf "rec-vote rid=%d vote=%d" a b
  | K_rec_decide ->
      Printf.sprintf "rec-decide %s took=%dns" (if a = 1 then "committed" else "aborted") b

(* {1 The sink} *)

(* One preallocated ring slot; every field mutable so recording allocates
   nothing. [at] is sim-time ns; [kind] is a kind index. *)
type slot = {
  mutable s_at : int;
  mutable s_kind : int;
  mutable s_a : int;
  mutable s_b : int;
  mutable s_c : int;
}

type span = {
  sp_obs : t;
  sp_start : int;  (* ns *)
  sp_tid : int;  (* worker-thread track for trace slices *)
  sp_seg : int array;  (* accumulated ns per phase *)
  sp_visited : bool array;
  sp_blame : int array;  (* ns per blame category; [||] unless blame is on *)
  mutable sp_claimed : int;  (* ns claimed within the current segment *)
  mutable sp_cur : int;  (* current phase index; -1 once finished *)
  mutable sp_since : int;  (* current segment's start, ns *)
  mutable sp_total : int;  (* filled at finish *)
  mutable sp_txm : int;  (* trace context (coordinator, thread, local id); *)
  mutable sp_txt : int;  (* sp_txm = -1 until set_tx *)
  mutable sp_txl : int;
}

and exemplar = {
  ex_txm : int;
  ex_txt : int;
  ex_txl : int;
  ex_start : int;  (* ns *)
  ex_total : int;  (* ns *)
  ex_blame : int array;  (* per-category ns, a snapshot of the span's *)
  ex_seg : int array;  (* per-phase ns *)
}

and t = {
  engine : Engine.t;
  obs_machine : int;
  mutable obs_enabled : bool;
  ring : slot array;
  mutable pos : int;  (* next slot to overwrite *)
  mutable total : int;  (* events ever recorded *)
  counters : int array;
  phases : Stats.Hist.t array;
  stages : Stats.Hist.t array;
  mutable span_hook : (committed:bool -> span -> unit) option;
  obs_tracer : Tracer.t;
  obs_timeline : Timeline.t;
  mutable blame_on : bool;  (* gates span blame arrays and exemplars *)
  blame_tot : int array;  (* exact committed ns per category *)
  blame_hists : Stats.Hist.t array;
  phase_tot : int array;  (* exact committed ns per phase (reconciliation) *)
  mutable exemplars : exemplar list;  (* slowest committed txs, desc, <= k *)
  obs_heat : Heat.t;
}

let exemplar_k = 8

let create ?(capacity = 128) ?(enabled = false) engine ~machine =
  if capacity < 1 then invalid_arg "Obs.create: capacity must be positive";
  {
    engine;
    obs_machine = machine;
    obs_enabled = enabled;
    ring = Array.init capacity (fun _ -> { s_at = 0; s_kind = 0; s_a = 0; s_b = 0; s_c = 0 });
    pos = 0;
    total = 0;
    counters = Array.make n_counters 0;
    phases = Array.init n_phases (fun _ -> Stats.Hist.create ());
    stages = Array.init n_stages (fun _ -> Stats.Hist.create ());
    span_hook = None;
    obs_tracer = Tracer.create engine ~machine;
    obs_timeline = Timeline.create engine ~machine;
    blame_on = false;
    blame_tot = Array.make n_blames 0;
    blame_hists = Array.init n_blames (fun _ -> Stats.Hist.create ());
    phase_tot = Array.make n_phases 0;
    exemplars = [];
    obs_heat = Heat.create ();
  }

let machine t = t.obs_machine
let set_enabled t on = t.obs_enabled <- on
let enabled t = t.obs_enabled
let tracer t = t.obs_tracer
let timeline t = t.obs_timeline
(* Arming starts a fresh attribution window: the exact accumulators (and
   the exemplar list) are reset so that blame and phase totals cover the
   same interval — a caller arming after a bulk-load phase would otherwise
   compare post-arm blame against whole-run phases. The phase *histograms*
   are not touched: they are whole-run observables in their own right. *)
let set_blame t on =
  if on && not t.blame_on then begin
    Array.fill t.phase_tot 0 (Array.length t.phase_tot) 0;
    Array.fill t.blame_tot 0 (Array.length t.blame_tot) 0;
    Array.iter Stats.Hist.clear t.blame_hists;
    t.exemplars <- []
  end;
  t.blame_on <- on
let blame_enabled t = t.blame_on
let heat t = t.obs_heat

let heat_access t ~region =
  Heat.access t.obs_heat ~now:(Time.to_ns (Engine.now t.engine)) ~region

let heat_conflict t ~region =
  Heat.conflict t.obs_heat ~now:(Time.to_ns (Engine.now t.engine)) ~region

let incr t c = t.counters.(counter_index c) <- t.counters.(counter_index c) + 1
let add t c n = t.counters.(counter_index c) <- t.counters.(counter_index c) + n
let counter t c = t.counters.(counter_index c)

let counter_totals t =
  List.filter_map
    (fun c ->
      let v = counter t c in
      if v = 0 then None else Some (counter_name c, v))
    all_counters

(* Forward the flight-recorder kinds that double as trace instants to the
   tracer, so lease/suspicion/reconfig/fault emit sites need no tracer
   plumbing of their own. Called only while the tracer is enabled. *)
let forward_instant t kind ~a ~b ~c =
  let _ = b in
  match kind with
  | K_drop ->
      Tracer.instant t.obs_tracer ~tid:Tracer.tid_net
        ~mark:(if c = 1 then Tracer.M_retransmit else Tracer.M_drop)
        ~arg:a
  | K_lease_expiry ->
      Tracer.instant t.obs_tracer ~tid:Tracer.tid_lease ~mark:Tracer.M_lease_expiry ~arg:a
  | K_suspect ->
      Tracer.instant t.obs_tracer ~tid:Tracer.tid_lease ~mark:Tracer.M_suspect ~arg:a
  | K_config_commit ->
      Tracer.instant t.obs_tracer ~tid:Tracer.tid_recovery ~mark:Tracer.M_config_commit
        ~arg:a
  | K_log_trunc ->
      Tracer.instant t.obs_tracer ~tid:(Tracer.tid_log ~sender:a) ~mark:Tracer.M_truncate
        ~arg:a
  | _ -> ()

let event t kind ~a ~b ~c =
  if t.obs_enabled then begin
    let s = t.ring.(t.pos) in
    s.s_at <- Time.to_ns (Engine.now t.engine);
    s.s_kind <- kind_index kind;
    s.s_a <- a;
    s.s_b <- b;
    s.s_c <- c;
    t.pos <- (t.pos + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end;
  if Tracer.enabled t.obs_tracer then forward_instant t kind ~a ~b ~c

let total_events t = t.total

let events t =
  let cap = Array.length t.ring in
  let n = min t.total cap in
  List.init n (fun i ->
      let s = t.ring.((t.pos - n + i + (2 * cap)) mod cap) in
      (s.s_at, render_body all_kinds.(s.s_kind) ~a:s.s_a ~b:s.s_b ~c:s.s_c))

(* {1 Spans} *)

let phase_hist t p = t.phases.(phase_index p)

let record_phase t p ns =
  let i = phase_index p in
  t.phase_tot.(i) <- t.phase_tot.(i) + ns;
  if ns > 0 then Stats.Hist.record t.phases.(i) ns

let phase_total_ns t p = t.phase_tot.(phase_index p)
let blame_hist t b = t.blame_hists.(blame_index b)
let blame_total_ns t b = t.blame_tot.(blame_index b)

let record_blame t b ns =
  let i = blame_index b in
  t.blame_tot.(i) <- t.blame_tot.(i) + ns;
  if ns > 0 then Stats.Hist.record t.blame_hists.(i) ns

let exemplars t = t.exemplars

(* Keep the k slowest committed spans (descending, ties broken towards the
   earlier arrival, which keeps the list deterministic under seed replay).
   Insertion allocates a snapshot, but only when the new span beats the
   current floor — rare once the list is warm. *)
let note_exemplar t sp total =
  let floor_beaten =
    match t.exemplars with
    | [] -> true
    | l when List.length l < exemplar_k -> true
    | l -> total > (List.nth l (exemplar_k - 1)).ex_total
  in
  if floor_beaten then begin
    let ex =
      {
        ex_txm = sp.sp_txm;
        ex_txt = sp.sp_txt;
        ex_txl = sp.sp_txl;
        ex_start = sp.sp_start;
        ex_total = total;
        ex_blame = Array.copy sp.sp_blame;
        ex_seg = Array.copy sp.sp_seg;
      }
    in
    let rec insert = function
      | [] -> [ ex ]
      | x :: rest when x.ex_total >= total -> x :: insert rest
      | rest -> ex :: rest
    in
    let l = insert t.exemplars in
    t.exemplars <-
      (if List.length l > exemplar_k then List.filteri (fun i _ -> i < exemplar_k) l
       else l)
  end

let set_span_hook t h = t.span_hook <- h
let all_phases_arr = Array.of_list all_phases

(* Commit-protocol phases map one-to-one onto the tracer's first steps. *)
let step_of_phase_arr =
  [|
    Tracer.T_execute; Tracer.T_lock; Tracer.T_validate; Tracer.T_commit_backup;
    Tracer.T_commit_primary; Tracer.T_truncate; Tracer.T_commit_wait;
  |]

module Span = struct
  type nonrec t = span

  let start ?(tid = 0) obs =
    let now = Time.to_ns (Engine.now obs.engine) in
    let visited = Array.make n_phases false in
    visited.(phase_index P_execute) <- true;
    {
      sp_obs = obs;
      sp_start = now;
      sp_tid = tid;
      sp_seg = Array.make n_phases 0;
      sp_visited = visited;
      (* [||] is the static empty block: spans cost no extra allocation
         unless blame attribution has been switched on *)
      sp_blame = (if obs.blame_on then Array.make n_blames 0 else [||]);
      sp_claimed = 0;
      sp_cur = phase_index P_execute;
      sp_since = now;
      sp_total = 0;
      sp_txm = -1;
      sp_txt = 0;
      sp_txl = 0;
    }

  let set_tx sp ~txm ~txt ~txl =
    sp.sp_txm <- txm;
    sp.sp_txt <- txt;
    sp.sp_txl <- txl

  let close_current sp now =
    let seg = now - sp.sp_since in
    sp.sp_seg.(sp.sp_cur) <- sp.sp_seg.(sp.sp_cur) + seg;
    (* blame: whatever the instrumentation did not claim inside this
       segment falls to the phase's default category, so the categories
       always sum to exactly the segment (hence to the span total) *)
    if Array.length sp.sp_blame > 0 then begin
      let d = default_blame_of_phase.(sp.sp_cur) in
      sp.sp_blame.(d) <- sp.sp_blame.(d) + (seg - sp.sp_claimed);
      sp.sp_claimed <- 0
    end;
    (* every nonempty segment is also a trace slice on the worker's track *)
    if seg > 0 then
      Tracer.slice_tx sp.sp_obs.obs_tracer ~tid:sp.sp_tid
        ~step:step_of_phase_arr.(sp.sp_cur) ~start:sp.sp_since ~arg:0
        ~txm:sp.sp_txm ~txt:sp.sp_txt ~txl:sp.sp_txl;
    sp.sp_since <- now

  let claim sp b ns =
    if ns > 0 && Array.length sp.sp_blame > 0 && sp.sp_cur >= 0 then begin
      let i = blame_index b in
      sp.sp_blame.(i) <- sp.sp_blame.(i) + ns;
      sp.sp_claimed <- sp.sp_claimed + ns
    end

  let enter sp phase =
    if sp.sp_cur >= 0 then begin
      let now = Time.to_ns (Engine.now sp.sp_obs.engine) in
      close_current sp now;
      let i = phase_index phase in
      sp.sp_cur <- i;
      sp.sp_visited.(i) <- true
    end

  let finish sp ~committed =
    if sp.sp_cur >= 0 then begin
      let now = Time.to_ns (Engine.now sp.sp_obs.engine) in
      close_current sp now;
      sp.sp_cur <- -1;
      sp.sp_total <- now - sp.sp_start;
      if committed then begin
        for i = 0 to n_phases - 1 do
          if sp.sp_visited.(i) then record_phase sp.sp_obs all_phases_arr.(i) sp.sp_seg.(i)
        done;
        if Array.length sp.sp_blame > 0 then begin
          for i = 0 to n_blames - 1 do
            record_blame sp.sp_obs all_blames_arr.(i) sp.sp_blame.(i)
          done;
          note_exemplar sp.sp_obs sp sp.sp_total
        end
      end;
      match sp.sp_obs.span_hook with Some f -> f ~committed sp | None -> ()
    end

  let segments sp =
    List.filteri (fun i _ -> sp.sp_visited.(i)) (List.init n_phases Fun.id)
    |> List.map (fun i -> (all_phases_arr.(i), sp.sp_seg.(i)))

  let total_ns sp = sp.sp_total

  let blame sp =
    if Array.length sp.sp_blame = 0 then []
    else
      List.filteri (fun i _ -> sp.sp_blame.(i) <> 0) (List.init n_blames Fun.id)
      |> List.map (fun i -> (all_blames_arr.(i), sp.sp_blame.(i)))
end

(* {1 Recovery stages} *)

let stage_hist t s = t.stages.(stage_index s)

let step_of_stage = function
  | S_drain -> Tracer.T_rec_drain
  | S_region_active -> Tracer.T_rec_region_active
  | S_decide -> Tracer.T_rec_decide

let record_stage t s d =
  let ns = Time.to_ns d in
  if ns >= 0 then begin
    Stats.Hist.record t.stages.(stage_index s) ns;
    (* the stage just ended: its slice spans [now - d, now] on the
       recovery track, so recovery emit sites need no tracer plumbing *)
    let now = Time.to_ns (Engine.now t.engine) in
    Tracer.slice t.obs_tracer ~tid:Tracer.tid_recovery ~step:(step_of_stage s)
      ~start:(now - ns) ~arg:0
  end

(* {1 Reporting} *)

let pp_counters ppf t =
  match counter_totals t with
  | [] -> Fmt.string ppf "(no activity)"
  | totals ->
      Fmt.pf ppf "%a" Fmt.(list ~sep:sp (fun ppf (n, v) -> Fmt.pf ppf "%s=%d" n v)) totals

let pp_hist_table ppf hists =
  let nonempty = List.filter (fun (_, h) -> Stats.Hist.count h > 0) hists in
  if nonempty <> [] then begin
    Fmt.pf ppf "%-16s %9s %10s %10s %10s %10s %10s %10s@." "phase" "count" "p50(us)"
      "p90(us)" "p99(us)" "p999(us)" "max(us)" "mean(us)";
    List.iter
      (fun (name, h) ->
        let p q = float_of_int (Stats.Hist.percentile h q) /. 1e3 in
        Fmt.pf ppf "%-16s %9d %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f@." name
          (Stats.Hist.count h) (p 50.) (p 90.) (p 99.) (p 99.9)
          (float_of_int (Stats.Hist.max_value h) /. 1e3)
          (Stats.Hist.mean h /. 1e3))
      nonempty
  end
