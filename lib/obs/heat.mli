(** Decaying per-region access/conflict heat counters.

    One [Heat.t] lives in each machine's {!Obs} sink. The commit pipeline
    bumps [access] on every object read or write and [conflict] on every
    abort charged to a region; both counters decay exponentially with a
    configurable half-life so the report reflects {e current} load, not
    history. This is the load signal ROADMAP item 3's CM-driven placement
    consumes (via [Cluster.heat_report]).

    The implementation obeys the obs contract: recording is a hashtable
    probe plus integer writes (allocation only on a region's first touch),
    decay is applied lazily with pure integer arithmetic
    ([v lsr (elapsed / half_life)], the timestamp advanced by whole
    half-lives so no fractional residue accumulates), and nothing here
    reads an {!Farm_sim.Rng} or schedules engine work — callers pass the
    current sim time in. *)

type t

val create : ?half_life_ns:int -> unit -> t
(** [half_life_ns] defaults to 10 ms of sim time. *)

val half_life_ns : t -> int

val access : t -> now:int -> region:int -> unit
(** Count one object access (read or write) against [region] at sim time
    [now] (ns). *)

val conflict : t -> now:int -> region:int -> unit
(** Count one conflict (an abort charged to [region]): a refused lock on
    an object there, or a failed validation of an object read from it. *)

type score = {
  hs_region : int;
  hs_access : int;  (** decayed access count as of the report instant *)
  hs_conflict : int;  (** decayed conflict count *)
  hs_score : int;  (** [hs_access + 4 * hs_conflict] — conflicts weigh 4x *)
}

val report : t -> now:int -> score list
(** Every region ever touched, decayed to [now], hottest first (ties by
    region id, so the order is deterministic). Regions whose counters have
    decayed to zero are dropped. *)

val merge : t list -> now:int -> score list
(** Cluster-wide view: per-region sums of the per-machine decayed
    counters, hottest first. *)
