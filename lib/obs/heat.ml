(* Decaying per-region heat. See the interface for the contract; the one
   subtlety here is the lazy decay: counters halve once per elapsed
   half-life, and the cell's timestamp advances by whole half-lives only,
   so decay is independent of how often the cell is probed — probing at
   1 Hz or 1 MHz yields the same integer sequence. *)

type cell = {
  mutable h_access : int;
  mutable h_conflict : int;
  mutable h_at : int;  (* decay applied up to this sim time (ns) *)
}

type t = { hl : int; cells : (int, cell) Hashtbl.t }

let create ?(half_life_ns = 10_000_000) () =
  if half_life_ns <= 0 then invalid_arg "Heat.create: half_life_ns must be positive";
  { hl = half_life_ns; cells = Hashtbl.create 64 }

let half_life_ns t = t.hl

let decay t c ~now =
  let dt = now - c.h_at in
  if dt >= t.hl then begin
    let k = dt / t.hl in
    if k >= Sys.int_size - 1 then begin
      c.h_access <- 0;
      c.h_conflict <- 0
    end
    else begin
      c.h_access <- c.h_access lsr k;
      c.h_conflict <- c.h_conflict lsr k
    end;
    c.h_at <- c.h_at + (k * t.hl)
  end

let cell t ~now ~region =
  match Hashtbl.find t.cells region with
  | c ->
      decay t c ~now;
      c
  | exception Not_found ->
      let c = { h_access = 0; h_conflict = 0; h_at = now } in
      Hashtbl.add t.cells region c;
      c

let access t ~now ~region =
  let c = cell t ~now ~region in
  c.h_access <- c.h_access + 1

let conflict t ~now ~region =
  let c = cell t ~now ~region in
  c.h_conflict <- c.h_conflict + 1

type score = { hs_region : int; hs_access : int; hs_conflict : int; hs_score : int }

let score ~region ~access ~conflict =
  { hs_region = region; hs_access = access; hs_conflict = conflict;
    hs_score = access + (4 * conflict) }

let order a b =
  match compare b.hs_score a.hs_score with 0 -> compare a.hs_region b.hs_region | c -> c

let report t ~now =
  Hashtbl.fold
    (fun region c acc ->
      decay t c ~now;
      if c.h_access = 0 && c.h_conflict = 0 then acc
      else score ~region ~access:c.h_access ~conflict:c.h_conflict :: acc)
    t.cells []
  |> List.sort order

let merge ts ~now =
  let sums = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun region c ->
          decay t c ~now;
          if c.h_access > 0 || c.h_conflict > 0 then
            match Hashtbl.find sums region with
            | (a, f) -> Hashtbl.replace sums region (a + c.h_access, f + c.h_conflict)
            | exception Not_found -> Hashtbl.add sums region (c.h_access, c.h_conflict))
        t.cells)
    ts;
  Hashtbl.fold
    (fun region (a, f) acc -> score ~region ~access:a ~conflict:f :: acc)
    sums []
  |> List.sort order
