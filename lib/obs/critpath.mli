(** Cross-machine critical-path reconstruction.

    Rebuilds, entirely offline, what each slow transaction was doing and
    where: the coordinator's phase spine comes from its span slices, the
    remote work it waited on (log-record processing at primaries and
    backups) is matched through the positional flow ids that already link
    a log-append slice to its remote log-process slice, and the exact
    per-category latency partition comes from the blame exemplars the
    {!Obs} sink kept while blame was armed. Reconstruction reads recorded
    state only — it can never perturb a run. *)

type hop = {
  h_machine : int;
  h_tid : int;
  h_name : string;  (** the tracer's display name for the slice *)
  h_ts : int;  (** start, sim ns *)
  h_dur : int;  (** ns *)
  h_crit : bool;
      (** on the critical path: a coordinator-spine slice, or a remote
          slice the coordinator provably waited on (flow-matched) *)
}

type path = {
  p_txm : int;  (** coordinator machine *)
  p_txt : int;  (** coordinator thread *)
  p_txl : int;  (** tx local id *)
  p_start : int;  (** span start, sim ns *)
  p_total : int;  (** exact end-to-end ns (from the span, not the trace) *)
  p_blame : (string * int) list;
      (** exact per-category ns, every category the span recorded;
          sums to [p_total] *)
  p_hops : hop list;  (** every traced slice of the tx, by start time *)
}

val paths : tracers:Tracer.t list -> exemplars:Obs.exemplar list -> k:int -> path list
(** The [k] slowest exemplar transactions (slowest first; ties broken by
    tx identity, so the result is deterministic), each joined with its
    traced slices. Transactions whose slices have been overwritten in the
    ring still appear, with whatever hops survive. *)

val mark : path list -> Tracer.view -> bool
(** A predicate for [Tracer.export_json ~mark] that highlights exactly
    the critical-path slices of the given paths. *)

val pp_path : Format.formatter -> path -> unit
(** Render one path: a blame summary line, then the hop table ([*] marks
    critical-path hops). *)
