open Farm_sim

(** Deterministic arrival processes for open-loop load generation.

    Each shape renders to an explicit sorted array of arrival instants
    drawn from a caller-supplied {!Rng.t}: equal seeds yield byte-identical
    streams. Mean rate is [rate] arrivals per second for every shape; the
    shapes differ in how arrivals cluster. *)

type shape =
  | Poisson  (** memoryless: exponential inter-arrivals *)
  | Self_similar of { b : float }
      (** b-model cascade: each half-window receives fraction [b] vs
          [1 - b] of its parent's arrivals (biased side chosen at random),
          recursively — bursty at every timescale. [b] in [0.5, 1);
          [b = 0.5] degenerates to near-uniform, larger is burstier. *)
  | Diurnal of { trough : float }
      (** one sinusoidal "day" across the window; the nightly low is
          [trough] (in [0, 1]) of the mean rate *)
  | Flash of { at : float; magnitude : float; width : float }
      (** baseline plus a triangular flash crowd centred at fraction [at]
          of the window, peaking at [magnitude] x the base rate, ramping
          up and back down over [width] of the window *)

val pp_shape : Format.formatter -> shape -> unit

val generate : shape -> rng:Rng.t -> rate:float -> duration:Time.t -> Time.t array
(** Sorted arrival instants in [0, duration). Deterministic in the rng
    state; raises [Invalid_argument] on out-of-range shape parameters or a
    non-positive rate. *)

val dispersion : Time.t array -> duration:Time.t -> bin:Time.t -> float
(** Index of dispersion (variance/mean) of per-[bin] arrival counts: ~1
    for Poisson, larger for bursty streams. 0 for an empty stream. *)
