open Farm_sim
open Farm_core

(** Open-loop load generation through a bounded admission queue.

    Requests arrive on an {!Arrivals} schedule regardless of service
    progress; a fixed per-machine worker pool serves them FIFO. Overload
    therefore surfaces as queueing delay ([sojourn] = submit to
    completion) and, once a queue reaches its cap, as shed load — not as
    the silent self-clocking of the closed loop ({!Driver}), which is what
    lets slow-but-alive faults show up in tail latency. Deterministic:
    equal seeds yield byte-identical statistics. *)

type stats = {
  submitted : Stats.Counter.t;  (** admitted to a queue *)
  shed : Stats.Counter.t;  (** arrived to a full queue, dropped *)
  completed : Stats.Counter.t;
  failed : Stats.Counter.t;
  sojourn : Stats.Hist.t;  (** submit -> completion (ns): queueing + service *)
  service : Stats.Hist.t;  (** op start -> completion (ns) *)
  series : Stats.Series.t;  (** completions per 1 ms bin *)
}

val create_stats : unit -> stats

type t

val stats : t -> stats

val queue_depths : ?members_only:bool -> t -> (string * int) list
(** Current per-machine admission-queue depths, as [("m<id>", depth)] —
    the input to {!Farm_fault.Probes.queues_drained}. With
    [~members_only:true] (default false), machines outside the current
    configuration are omitted: an asymmetric partition can get a
    slow-but-alive machine evicted, and the zombie's queue never drains —
    in a real deployment its clients fail over. Use {!stranded} to account
    for that load. *)

val stranded : t -> int
(** Requests admitted but never served — queued or mid-operation on a
    machine that died or was evicted ([submitted - completed - failed]).
    Meaningful once load has stopped and the cluster has settled. *)

val start :
  ?machines:int list ->
  ?queue_cap:int ->
  ?workers:int ->
  Cluster.t ->
  shape:Arrivals.shape ->
  rate:float ->
  duration:Time.t ->
  op:(Driver.worker_ctx -> bool) ->
  t
(** Spawn injectors and workers: each target machine gets its slice of the
    cluster-wide [rate] (arrivals/s) pre-rendered from a split of its rng,
    a bounded queue ([queue_cap], default 1024) and [workers] (default 2)
    serving processes. If a machine's timeline sampler has not started
    yet, a [queue_depth] level gauge is registered on it. Does not drive
    the engine — the caller advances time (and may inject faults
    in between); arrivals past [duration] do not exist. Injectors and
    workers die with their machine. *)

val stop : t -> unit
(** Declare the arrival window over: injectors stop admitting, workers
    drain what is queued and then exit. *)

val run :
  ?machines:int list ->
  ?queue_cap:int ->
  ?workers:int ->
  Cluster.t ->
  shape:Arrivals.shape ->
  rate:float ->
  duration:Time.t ->
  drain:Time.t ->
  op:(Driver.worker_ctx -> bool) ->
  t
(** [start], drive the engine for [duration], {!stop}, and drive [drain]
    longer so queued work finishes. *)
