open Farm_core

(** A strict-serializability checker over recorded transaction histories.

    Object versions are an exact serialization witness: per object, writers
    are totally ordered by the version they install, a read at version [v]
    sits between the writers of [v] and [v+1], and no two committed
    transactions may install the same version. The checker builds that
    precedence graph and reports a violation as either a duplicate write
    (lost-update/double-commit) or a cycle (non-serializable order). *)

type t

val create : unit -> t

val add : t -> reads:(Addr.t * int) list -> writes:(Addr.t * int) list -> int
(** Record a transaction directly from its footprint — each entry is
    [(object, version observed)]; a write installs [version + 1]. Meant for
    tests that construct known-good or known-bad histories by hand. *)

val record : t -> Txn.t -> int
(** Record a transaction's execution footprint (call it right after a
    successful commit, before reusing the transaction value); returns the
    dense transaction id used in verdicts. *)

type verdict = Serializable | Duplicate_write of Addr.t * int | Cycle of int list

val check : t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit

val size : t -> int
(** Number of recorded transactions. *)
