open Farm_core

(* A strict-serializability checker for recorded transaction histories.

   FaRM's object versions give an exact serialization witness: a committed
   write of object [o] that observed version [v] installs [v+1], so per
   object the writers are totally ordered by version, a read of [o] at
   version [v] must come after the writer that installed [v] and before the
   writer that installs [v+1], and no two committed transactions may
   install the same version of the same object.

   The checker builds that precedence graph over committed transactions and
   verifies (a) unique writers per (object, version) and (b) acyclicity —
   together equivalent to the history having a serial order consistent
   with what every transaction observed. Aborted transactions must leave no
   trace, which the version-uniqueness check also enforces (a "committed"
   version written by an aborted transaction would collide with the next
   writer's). *)

type event = {
  tx : int;  (* dense id assigned by the recorder *)
  reads : (Addr.t * int) list;  (* object, version observed *)
  writes : (Addr.t * int) list;  (* object, version observed (installs +1) *)
}

type t = { mutable events : event list; mutable next : int }

let create () = { events = []; next = 0 }

(* Record a transaction directly from its footprint: used by tests to build
   known-bad histories without driving real transactions. *)
let add t ~reads ~writes =
  let id = t.next in
  t.next <- id + 1;
  t.events <- { tx = id; reads; writes } :: t.events;
  id

(* Record one committed transaction from its execution footprint. *)
let record t (tx : Txn.t) =
  let reads =
    Addr.Map.fold (fun a (r : Txn.read_entry) acc -> (a, r.Txn.r_version) :: acc) tx.Txn.reads []
  in
  let writes =
    Addr.Map.fold (fun a (w : Txn.write_entry) acc -> (a, w.Txn.w_version) :: acc) tx.Txn.writes []
  in
  let id = t.next in
  t.next <- id + 1;
  t.events <- { tx = id; reads; writes } :: t.events;
  id

type verdict = Serializable | Duplicate_write of Addr.t * int | Cycle of int list

(* Edges: for each object o,
     writer(o, v) -> writer(o, v+1)          (version order)
     writer(o, v) -> reader(o, v)            (read sees the install)
     reader(o, v) -> writer(o, v+1)          (read precedes overwrite)
   A write that observed v is both reader-of-v and writer-of-v+1. *)
let check t : verdict =
  let events = Array.of_list (List.rev t.events) in
  let n = Array.length events in
  let writer : (Addr.t * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let dup = ref None in
  Array.iter
    (fun e ->
      List.iter
        (fun (a, v) ->
          let key = (a, v + 1) in
          if Hashtbl.mem writer key then dup := Some (a, v + 1)
          else Hashtbl.replace writer key e.tx)
        e.writes)
    events;
  match !dup with
  | Some (a, v) -> Duplicate_write (a, v)
  | None ->
      let succs = Array.make n [] in
      let add_edge a b = if a <> b then succs.(a) <- b :: succs.(a) in
      Array.iter
        (fun e ->
          let observe (a, v) =
            (* after the writer that installed v (if recorded) *)
            (match Hashtbl.find_opt writer (a, v) with
            | Some w -> add_edge w e.tx
            | None -> () (* initial state *));
            (* before the writer that installs v+1 *)
            match Hashtbl.find_opt writer (a, v + 1) with
            | Some w -> add_edge e.tx w
            | None -> ()
          in
          List.iter observe e.reads;
          List.iter observe e.writes)
        events;
      (* cycle detection via iterative DFS *)
      let color = Array.make n 0 in
      let parent = Array.make n (-1) in
      let cycle = ref None in
      let rec dfs u =
        color.(u) <- 1;
        List.iter
          (fun v ->
            if !cycle = None then
              if color.(v) = 0 then begin
                parent.(v) <- u;
                dfs v
              end
              else if color.(v) = 1 then begin
                (* reconstruct u -> ... -> v *)
                let rec back acc x = if x = v || x = -1 then v :: acc else back (x :: acc) parent.(x) in
                cycle := Some (back [] u)
              end)
          succs.(u);
        color.(u) <- 2
      in
      let i = ref 0 in
      while !cycle = None && !i < n do
        if color.(!i) = 0 then dfs !i;
        incr i
      done;
      (match !cycle with Some c -> Cycle c | None -> Serializable)

let pp_verdict ppf = function
  | Serializable -> Fmt.string ppf "serializable"
  | Duplicate_write (a, v) -> Fmt.pf ppf "duplicate write of %a version %d" Addr.pp a v
  | Cycle txs -> Fmt.pf ppf "precedence cycle through transactions %a" Fmt.(list ~sep:(any "->") int) txs

let size t = t.next
