open Farm_sim
open Farm_core

(* Open-loop load generation: requests arrive on their own schedule
   (an {!Arrivals} stream), queue in a bounded per-machine admission
   queue, and are served by a fixed worker pool. Unlike the closed loop
   ({!Driver}), overload does not self-clock — arrivals keep coming, so
   saturation shows up as queueing delay (sojourn = completion - submit)
   and, once the queue hits its cap, as shed load. This is the only load
   model under which "slow but alive" faults surface as latency: a closed
   loop just slows its own request stream down and hides the damage.

   Determinism: every machine's arrival stream is pre-rendered from a
   split of the machine rng, injectors and workers are ordinary green
   processes on the deterministic engine, and shedding is a pure function
   of queue occupancy — equal seeds yield byte-identical stats. *)

type stats = {
  submitted : Stats.Counter.t;  (* admitted to a queue *)
  shed : Stats.Counter.t;  (* arrived to a full queue, dropped *)
  completed : Stats.Counter.t;  (* op ran and succeeded *)
  failed : Stats.Counter.t;  (* op ran and reported failure *)
  sojourn : Stats.Hist.t;  (* submit -> completion, ns: queueing + service *)
  service : Stats.Hist.t;  (* op start -> completion, ns *)
  series : Stats.Series.t;  (* completions per 1 ms bin *)
}

let create_stats () =
  {
    submitted = Stats.Counter.create ();
    shed = Stats.Counter.create ();
    completed = Stats.Counter.create ();
    failed = Stats.Counter.create ();
    sojourn = Stats.Hist.create ();
    service = Stats.Hist.create ();
    series = Stats.Series.create ~bin:(Time.ms 1);
  }

type t = {
  cluster : Cluster.t;
  stats : stats;
  queues : (int * Time.t Mailbox.t) list;  (* machine id, pending submits *)
  queue_cap : int;
  mutable stopped : bool;  (* no further arrivals; workers drain and exit *)
}

let stats t = t.stats

(* An asymmetric partition can get a slow-but-alive machine evicted
   (precise membership: the suspecting side wins the reconfiguration
   race). The zombie keeps its queue — in a real deployment its clients
   fail over — so "queues drain after heal" is only a meaningful invariant
   for machines still in the configuration: [members_only] restricts the
   listing to them. *)
let queue_depths ?(members_only = false) t =
  let is_member =
    if not members_only then fun _ -> true
    else
      match Cluster.current_config t.cluster with
      | Some cfg -> fun m -> List.mem m cfg.Config.members
      | None -> fun _ -> true
  in
  List.filter_map
    (fun (m, q) ->
      if is_member m then Some (Printf.sprintf "m%d" m, Mailbox.length q) else None)
    t.queues

(* Requests admitted but never served: queued or mid-op on a machine that
   died or was evicted. *)
let stranded t =
  Stats.Counter.get t.stats.submitted
  - Stats.Counter.get t.stats.completed
  - Stats.Counter.get t.stats.failed

let stop t = t.stopped <- true

(* Worker poll interval while its queue is empty. Polling (rather than a
   sentinel protocol through the mailbox) keeps shutdown trivial and is
   deterministic on the simulated clock. *)
let idle_poll = Time.us 20

let start ?machines ?(queue_cap = 1024) ?(workers = 2) (c : Cluster.t) ~shape ~rate
    ~duration ~op =
  if queue_cap < 1 then invalid_arg "Openloop.start: queue_cap must be positive";
  let engine = c.Cluster.engine in
  let targets =
    match machines with Some l -> l | None -> List.init (Cluster.n_machines c) Fun.id
  in
  let n_targets = List.length targets in
  if n_targets = 0 then invalid_arg "Openloop.start: no target machines";
  let stats = create_stats () in
  let t0 = Engine.now engine in
  let queues =
    List.map
      (fun m ->
        let st = Cluster.machine c m in
        let q : Time.t Mailbox.t = Mailbox.create () in
        (* expose queue occupancy to the 1 ms timeline sampler, if the
           sampler has not started yet *)
        let tl = Farm_obs.Obs.timeline st.State.obs in
        if
          (not (Farm_obs.Timeline.running tl))
          && not (List.mem "queue_depth" (Farm_obs.Timeline.series_names tl))
        then
          Farm_obs.Timeline.add_series tl ~name:"queue_depth"
            ~kind:Farm_obs.Timeline.Level (fun () -> Mailbox.length q);
        (m, q))
      targets
  in
  let t =
    { cluster = c; stats; queues; queue_cap; stopped = false }
  in
  List.iter
    (fun (m, q) ->
      let st = Cluster.machine c m in
      (* this machine's slice of the offered load, pre-rendered *)
      let rng = Rng.split st.State.rng in
      let arrivals =
        Arrivals.generate shape ~rng ~rate:(rate /. float_of_int n_targets) ~duration
      in
      (* injector: walks the stream on the engine clock; dies with the
         machine (its clients fail with it) *)
      Proc.spawn ~ctx:st.State.ctx engine (fun () ->
          Array.iter
            (fun at ->
              Proc.sleep_until (Time.add t0 at);
              if not t.stopped then begin
                if Mailbox.length q >= t.queue_cap then Stats.Counter.incr stats.shed
                else begin
                  Stats.Counter.incr stats.submitted;
                  Mailbox.send q (Proc.now ())
                end
              end)
            arrivals);
      (* the serving pool: fixed concurrency per machine *)
      for w = 0 to workers - 1 do
        let ctx =
          {
            Driver.st;
            thread = w mod st.State.params.Params.threads_per_machine;
            rng = Rng.split st.State.rng;
            worker = w;
          }
        in
        Proc.spawn ~ctx:st.State.ctx engine (fun () ->
            let continue = ref true in
            while !continue do
              Proc.check_cancelled ();
              match Mailbox.recv_opt q with
              | Some submit ->
                  let s0 = Proc.now () in
                  (* admission queueing: submit -> service start. The span
                     does not exist yet, so the wait is recorded straight
                     into the serving machine's blame accounting. *)
                  if Farm_obs.Obs.blame_enabled st.State.obs then
                    Farm_obs.Obs.record_blame st.State.obs Farm_obs.Obs.B_admission
                      (Time.to_ns (Time.sub s0 submit));
                  let ok = op ctx in
                  let s1 = Proc.now () in
                  if ok then begin
                    Stats.Counter.incr stats.completed;
                    Stats.Hist.record stats.sojourn (Time.to_ns (Time.sub s1 submit));
                    Stats.Hist.record stats.service (Time.to_ns (Time.sub s1 s0));
                    Stats.Series.add stats.series ~at:s1 1
                  end
                  else Stats.Counter.incr stats.failed;
                  (* stay cooperative even if the op completed locally *)
                  if Time.( <= ) (Time.sub s1 s0) Time.zero then Proc.sleep (Time.us 1)
              | None ->
                  if t.stopped then continue := false else Proc.sleep idle_poll
            done)
      done)
    queues;
  t

(* Convenience: start, drive for the window plus a drain tail, stop. The
   SLO bench drives the engine itself (it interleaves fault injection), so
   it uses [start]/[stop] directly. *)
let run ?machines ?queue_cap ?workers (c : Cluster.t) ~shape ~rate ~duration
    ~drain ~op =
  let t = start ?machines ?queue_cap ?workers c ~shape ~rate ~duration ~op in
  let engine = c.Cluster.engine in
  Engine.run ~until:(Time.add (Engine.now engine) duration) engine;
  stop t;
  Engine.run ~until:(Time.add (Engine.now engine) drain) engine;
  t
