open Farm_sim

(* Deterministic arrival processes for open-loop load generation.

   Every shape is rendered to an explicit sorted array of arrival instants
   drawn from a caller-supplied [Rng.t]: equal seeds yield byte-identical
   streams, and pre-rendering keeps the open-loop driver's injection loop
   free of mid-run randomness (it just walks the array).

   The non-homogeneous shapes (diurnal, flash crowd) are sampled by
   Lewis-Shedler thinning: draw a homogeneous Poisson stream at the peak
   rate and keep each arrival with probability rate(t)/peak. The
   self-similar shape uses a b-model cascade — recursively splitting the
   window's arrival count b/(1-b) between halves — which reproduces the
   bursty-at-every-timescale traffic of real storage front-ends that a
   Poisson stream smooths away. *)

type shape =
  | Poisson
  | Self_similar of { b : float }
  | Diurnal of { trough : float }
  | Flash of { at : float; magnitude : float; width : float }

let pp_shape ppf = function
  | Poisson -> Fmt.string ppf "poisson"
  | Self_similar { b } -> Fmt.pf ppf "self-similar(b=%.2f)" b
  | Diurnal { trough } -> Fmt.pf ppf "diurnal(trough=%.2f)" trough
  | Flash { at; magnitude; width } ->
      Fmt.pf ppf "flash(at=%.2f x%.1f width=%.2f)" at magnitude width

let of_sec s = Time.ns (int_of_float (Float.round (s *. 1e9)))

(* Homogeneous Poisson stream at [rate] arrivals/s over [dur_s] seconds,
   as float seconds. *)
let poisson_stream rng ~rate ~dur_s =
  let out = ref [] in
  let t = ref 0. in
  let mean = 1. /. rate in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential rng ~mean;
    if !t < dur_s then out := !t :: !out else continue := false
  done;
  List.rev !out

(* Thinning: keep each arrival of a peak-rate stream with probability
   [accept t] (in [0,1]). *)
let thin rng stream accept =
  List.filter
    (fun t ->
      let p = accept t in
      if p >= 1. then true else Rng.float rng < p)
    stream

(* b-model cascade: the window's total count is split [b]/(1-b) between its
   halves, the biased side chosen by a coin flip, recursively down to
   [levels] (bins of duration/2^levels); each bin's arrivals then land
   uniformly within it. Mean rate is preserved exactly; the per-bin count
   variance grows with every level, which is what makes the stream bursty
   at all timescales. *)
let bmodel_levels = 10

let bmodel rng ~b ~total ~dur_s =
  let bins = ref [| total |] in
  for _ = 1 to bmodel_levels do
    let prev = !bins in
    let next = Array.make (2 * Array.length prev) 0 in
    Array.iteri
      (fun i n ->
        let big = int_of_float (Float.round (b *. float_of_int n)) in
        let small = n - big in
        let left, right = if Rng.bool rng then (big, small) else (small, big) in
        next.(2 * i) <- left;
        next.((2 * i) + 1) <- right)
      prev;
    bins := next
  done;
  let bins = !bins in
  let nbins = Array.length bins in
  let bin_s = dur_s /. float_of_int nbins in
  let out = ref [] in
  Array.iteri
    (fun i n ->
      let base = float_of_int i *. bin_s in
      for _ = 1 to n do
        out := (base +. (Rng.float rng *. bin_s)) :: !out
      done)
    bins;
  List.sort compare !out

let generate shape ~rng ~rate ~duration =
  if rate <= 0. then invalid_arg "Arrivals.generate: rate must be positive";
  let dur_s = Time.to_s_float duration in
  let secs =
    match shape with
    | Poisson -> poisson_stream rng ~rate ~dur_s
    | Self_similar { b } ->
        if b < 0.5 || b >= 1. then
          invalid_arg "Arrivals.generate: self-similar bias must be in [0.5, 1)";
        let total = int_of_float (Float.round (rate *. dur_s)) in
        bmodel rng ~b ~total ~dur_s
    | Diurnal { trough } ->
        if trough < 0. || trough > 1. then
          invalid_arg "Arrivals.generate: diurnal trough must be in [0, 1]";
        (* rate(t) = rate * (1 + a sin(2 pi t / duration)) with
           a = 1 - trough: one full day over the window, mean exactly
           [rate], minimum rate * trough at the nightly low. *)
        let a = 1. -. trough in
        let peak = rate *. (1. +. a) in
        let stream = poisson_stream rng ~rate:peak ~dur_s in
        thin rng stream (fun t ->
            let r =
              rate *. (1. +. (a *. sin (2. *. Float.pi *. t /. dur_s)))
            in
            r /. peak)
    | Flash { at; magnitude; width } ->
        if at < 0. || at > 1. || width <= 0. || width > 1. then
          invalid_arg "Arrivals.generate: flash position/width must be fractions";
        if magnitude < 1. then
          invalid_arg "Arrivals.generate: flash magnitude must be >= 1";
        (* baseline [rate] with a triangular spike centred at [at *
           duration]: ramp to [magnitude * rate] over width/2, back down
           over width/2 — the flash-crowd profile. *)
        let peak = magnitude *. rate in
        let centre = at *. dur_s in
        let half = width *. dur_s /. 2. in
        let stream = poisson_stream rng ~rate:peak ~dur_s in
        thin rng stream (fun t ->
            let d = Float.abs (t -. centre) in
            let r =
              if d >= half then rate
              else rate +. ((peak -. rate) *. (1. -. (d /. half)))
            in
            r /. peak)
  in
  Array.of_list (List.map of_sec secs)

(* Index of dispersion of per-bin counts (variance / mean): 1 for Poisson,
   larger for bursty streams — the burstiness statistic the unit tests
   order shapes by. *)
let dispersion arrivals ~duration ~bin =
  let bin_ns = Time.to_ns bin in
  let nbins = max 1 (Time.to_ns duration / bin_ns) in
  let counts = Array.make nbins 0 in
  Array.iter
    (fun at ->
      let i = Time.to_ns at / bin_ns in
      if i >= 0 && i < nbins then counts.(i) <- counts.(i) + 1)
    arrivals;
  let n = float_of_int nbins in
  let mean = float_of_int (Array.fold_left ( + ) 0 counts) /. n in
  if mean = 0. then 0.
  else begin
    let var =
      Array.fold_left
        (fun acc c ->
          let d = float_of_int c -. mean in
          acc +. (d *. d))
        0. counts
      /. n
    in
    var /. mean
  end
