open Farm_core

(* The FaRM hash table ([16], used for all unordered indexes in §6.2).

   A fixed array of bucket objects, each holding a handful of fixed-size
   entries plus an overflow pointer to a chained bucket. Buckets are spread
   round-robin across the table's regions, so a partitioned table (TATP by
   subscriber, TPC-C by warehouse) keeps a key's bucket co-located with the
   rest of its partition.

   Point lookups normally touch one bucket object: a single one-sided RDMA
   read on the lock-free path.

   Bucket layout (data bytes, after the object header):
     count stored implicitly per entry:
     entry[i]  at  i * entry_size:    used(1) | key(ksize) | value(vsize)
     overflow  at  slots * entry_size: encoded address (8)              *)

type t = {
  buckets : Addr.t array;
  regions : int array;  (* the regions the table was created over *)
  ksize : int;
  vsize : int;
  slots : int;
  partitions : int;  (* 1 = unpartitioned *)
  partition_of : Bytes.t -> int;  (* key -> partition *)
}

let entry_size t = 1 + t.ksize + t.vsize
let bucket_data_size t = (t.slots * entry_size t) + 8

let bucket_of t key =
  if t.partitions <= 1 then Codec.fnv1a key mod Array.length t.buckets
  else begin
    (* partitioned tables keep a key's bucket in its partition's regions
       (TPC-C warehouse co-partitioning, §6.2) *)
    let per = Array.length t.buckets / t.partitions in
    let p = t.partition_of key mod t.partitions in
    (p * per) + (Codec.fnv1a key mod per)
  end

(* Create the table: allocates every bucket object (zeroed = all slots
   free) in one or more transactions from [st]. With [partitions] > 1 the
   bucket array is split into contiguous partition ranges, each placed in
   the region [regions.(partition mod |regions|)]. *)
let create st ~thread ~regions ~buckets ~ksize ~vsize ?(slots = 6) ?(partitions = 1)
    ?(partition_of = fun _ -> 0) () =
  if buckets <= 0 || Array.length regions = 0 then invalid_arg "Hashtable.create";
  let buckets =
    if partitions > 1 then (max 1 (buckets / partitions)) * partitions else buckets
  in
  let t =
    {
      buckets = Array.make buckets (Addr.make ~region:0 ~offset:0);
      regions;
      ksize;
      vsize;
      slots;
      partitions;
      partition_of;
    }
  in
  let region_of_bucket b =
    if partitions <= 1 then regions.(b mod Array.length regions)
    else begin
      let per = buckets / partitions in
      regions.(b / per mod Array.length regions)
    end
  in
  let size = bucket_data_size t in
  let batch = 64 in
  let i = ref 0 in
  while !i < buckets do
    let hi = min buckets (!i + batch) in
    let lo = !i in
    (match
       Api.run_retry st ~thread (fun tx ->
           for b = lo to hi - 1 do
             let addr = Txn.alloc tx ~size ~region:(region_of_bucket b) () in
             Txn.write tx addr (Bytes.make size '\000');
             t.buckets.(b) <- addr
           done)
     with
    | Ok () -> ()
    | Error e -> Fmt.failwith "Hashtable.create: %a" Txn.pp_abort e);
    i := hi
  done;
  t

(* {1 Bucket parsing} *)

let entry_used data ~esz i = Bytes.get data (i * esz) <> '\000'

let entry_key t data ~esz i = Bytes.sub data ((i * esz) + 1) t.ksize

let entry_value t data ~esz i = Bytes.sub data ((i * esz) + 1 + t.ksize) t.vsize

let set_entry t data ~esz i ~key ~value =
  Bytes.set data (i * esz) '\001';
  Bytes.blit key 0 data ((i * esz) + 1) t.ksize;
  Bytes.blit value 0 data ((i * esz) + 1 + t.ksize) t.vsize

let clear_entry data ~esz i = Bytes.set data (i * esz) '\000'

let overflow_of t data = Codec.get_addr data (t.slots * entry_size t)

let find_in_bucket t data key =
  let esz = entry_size t in
  let rec go i =
    if i >= t.slots then None
    else if entry_used data ~esz i && Bytes.equal (entry_key t data ~esz i) key then
      Some i
    else go (i + 1)
  in
  go 0

let free_slot t data =
  let esz = entry_size t in
  let rec go i =
    if i >= t.slots then None else if entry_used data ~esz i then go (i + 1) else Some i
  in
  go 0

let norm_key t key =
  let k = Bytes.make t.ksize '\000' in
  Bytes.blit key 0 k 0 (min (Bytes.length key) t.ksize);
  k

(* {1 Transactional operations} *)

let rec lookup_from tx t addr key =
  let data = Txn.read tx addr ~len:(bucket_data_size t) in
  match find_in_bucket t data key with
  | Some i -> Some (entry_value t data ~esz:(entry_size t) i)
  | None -> (
      match overflow_of t data with
      | Some next -> lookup_from tx t next key
      | None -> None)

let lookup tx t key =
  let key = norm_key t key in
  lookup_from tx t t.buckets.(bucket_of t key) key

(* Insert or update. Follows the overflow chain; allocates a chained
   bucket co-located with the head bucket when everything is full.

   The whole chain is searched for the key before a free slot is taken:
   deletes can free slots in earlier buckets while the key still lives in a
   chained one, and grabbing such a slot would shadow the old entry with a
   duplicate that a later delete resurrects. *)
let insert tx t key value =
  let key = norm_key t key in
  let value =
    let v = Bytes.make t.vsize '\000' in
    Bytes.blit value 0 v 0 (min (Bytes.length value) t.vsize);
    v
  in
  let esz = entry_size t in
  let rec go addr free =
    let data = Bytes.copy (Txn.read tx addr ~len:(bucket_data_size t)) in
    match find_in_bucket t data key with
    | Some i ->
        set_entry t data ~esz i ~key ~value;
        Txn.write tx addr data
    | None -> (
        let free =
          match free with
          | Some _ -> free
          | None -> Option.map (fun i -> (addr, i)) (free_slot t data)
        in
        match overflow_of t data with
        | Some next -> go next free
        | None -> (
            match free with
            | Some (faddr, i) ->
                let fdata = Bytes.copy (Txn.read tx faddr ~len:(bucket_data_size t)) in
                set_entry t fdata ~esz i ~key ~value;
                Txn.write tx faddr fdata
            | None ->
                let size = bucket_data_size t in
                let next = Txn.alloc tx ~size ~near:addr () in
                let fresh = Bytes.make size '\000' in
                set_entry t fresh ~esz 0 ~key ~value;
                Txn.write tx next fresh;
                Codec.set_addr data (t.slots * esz) (Some next);
                Txn.write tx addr data))
  in
  go t.buckets.(bucket_of t key) None

let delete tx t key =
  let key = norm_key t key in
  let esz = entry_size t in
  let rec go addr =
    let data = Bytes.copy (Txn.read tx addr ~len:(bucket_data_size t)) in
    match find_in_bucket t data key with
    | Some i ->
        clear_entry data ~esz i;
        Txn.write tx addr data;
        true
    | None -> (
        match overflow_of t data with Some next -> go next | None -> false)
  in
  go t.buckets.(bucket_of t key)

(* {1 Lock-free lookups (§3, §6.2)} — single-object read-only transactions;
   one RDMA read per (rarely chained) bucket. *)

let lookup_lockfree st t key =
  let key = norm_key t key in
  let rec go addr =
    match Api.read_lockfree st addr ~len:(bucket_data_size t) with
    | None -> None
    | Some data -> (
        match find_in_bucket t data key with
        | Some i -> Some (entry_value t data ~esz:(entry_size t) i)
        | None -> (
            match overflow_of t data with Some next -> go next | None -> None))
  in
  go t.buckets.(bucket_of t key)
