open Farm_sim

(* The configuration manager (§3, §5.2).

   The CM allocates regions (a centralized two-phase protocol that enforces
   failure-domain, capacity and locality constraints), manages leases, and
   drives the seven-step reconfiguration protocol. The configuration itself
   lives in the Zookeeper-equivalent store and moves with one atomic
   compare-and-swap per change (vertical Paxos); the CM never relies on the
   coordination service for failure detection or recovery. *)

(* {1 Placement constraints} *)

let constraints st (cm : State.cm_state) ~members =
  let load = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (info : Wire.region_info) ->
      List.iter
        (fun m ->
          Hashtbl.replace load m (1 + Option.value ~default:0 (Hashtbl.find_opt load m)))
        (info.Wire.primary :: info.Wire.backups))
    cm.State.owners;
  {
    Placement.members;
    domain_of = Config.domain_of st.State.config;
    load_of = (fun m -> Option.value ~default:0 (Hashtbl.find_opt load m));
    capacity_of = (fun _ -> st.State.params.Params.regions_per_machine_cap);
    replication = st.State.params.Params.replication;
  }

(* {1 Region allocation (§3)} *)

(* Two-phase: prepare at all chosen replicas (they allocate NVRAM), then
   commit; the mapping is valid and replicated before it is used. *)
let handle_alloc_region st ~reply ~locality =
  match st.State.cm with
  | None -> Comms.reply_to reply (Wire.Alloc_region_reply { info = None })
  | Some cm -> (
      let colocate =
        Option.bind locality (fun rid -> Hashtbl.find_opt cm.State.owners rid)
        |> Option.map (fun (i : Wire.region_info) -> (i.Wire.primary, i.Wire.backups))
      in
      let cons = constraints st cm ~members:st.State.config.Config.members in
      match Placement.choose cons ?colocate_with:colocate () with
      | None -> Comms.reply_to reply (Wire.Alloc_region_reply { info = None })
      | Some (primary, backups) ->
          let rid = cm.State.next_rid in
          cm.State.next_rid <- rid + 1;
          let cfg = st.State.config.Config.id in
          let info =
            {
              Wire.rid;
              primary;
              backups;
              last_primary_change = cfg;
              last_replica_change = cfg;
              critical = false;
            }
          in
          let replicas = primary :: backups in
          let ok = ref true in
          Comms.par_iter st
            (List.map
               (fun m () ->
                 match
                   Comms.call st ~dst:m ~timeout:(Time.ms 20) (Wire.Prepare_region { info })
                 with
                 | Ok (Wire.Prepare_region_ack { ok = true; _ }) -> ()
                 | Ok _ | Error _ -> ok := false)
               replicas);
          if !ok then begin
            List.iter (fun m -> Comms.send st ~dst:m (Wire.Commit_region { info })) replicas;
            Hashtbl.replace cm.State.owners rid info;
            Hashtbl.replace st.State.region_map rid info;
            Comms.reply_to reply (Wire.Alloc_region_reply { info = Some info })
          end
          else Comms.reply_to reply (Wire.Alloc_region_reply { info = None }))

(* Member-side handlers for the two-phase region allocation. *)
let handle_prepare_region st ~reply (info : Wire.region_info) =
  let role = if info.Wire.primary = st.State.id then State.Primary else State.Backup in
  let rep = State.add_replica st ~rid:info.Wire.rid ~role in
  rep.State.role <- role;
  Hashtbl.replace st.State.region_map info.Wire.rid info;
  Comms.reply_to reply (Wire.Prepare_region_ack { rid = info.Wire.rid; ok = true })

let handle_commit_region st (info : Wire.region_info) =
  match State.replica st info.Wire.rid with
  | Some rep -> State.set_active rep
  | None -> ()

(* {1 Probes (§5.2 step 2)} *)

type probe_result = {
  pr_machine : int;
  pr_last_drained : int;
  pr_replicas : (int * State.role) list;
  pr_infos : (int * int * int) list;  (* rid, last_primary_change, last_replica_change *)
}

(* One-sided RDMA read of the target's probe word (including LastDrained,
   which the CM needs for recovering-transaction identification). *)
let probe st ~targets =
  let results = ref [] in
  Comms.par_iter st
    (List.map
       (fun m () ->
         match
           Farm_net.Fabric.one_sided_read st.State.fabric ~src:st.State.id ~dst:m ~bytes:64
             (fun () ->
               match State.peer st m with
               | None -> None
               (* a reincarnated machine's probe word carries its new boot
                  epoch: the CM does not count it as the member it probed *)
               | Some pst when pst.State.rejoining -> None
               | Some pst ->
                   let replicas =
                     Hashtbl.fold
                       (fun rid (r : State.replica) acc -> (rid, r.State.role) :: acc)
                       pst.State.nv.replicas []
                   in
                   let infos =
                     Hashtbl.fold
                       (fun rid (i : Wire.region_info) acc ->
                         (rid, i.Wire.last_primary_change, i.Wire.last_replica_change) :: acc)
                       pst.State.region_map []
                   in
                   Some
                     {
                       pr_machine = m;
                       pr_last_drained = pst.State.last_drained;
                       pr_replicas = replicas;
                       pr_infos = infos;
                     })
         with
         | Ok (Some r) -> results := r :: !results
         | Ok None | Error _ -> ())
       targets);
  !results

(* {1 Remapping (§5.2 step 4)} *)

(* Reassign regions that lost replicas: always promote a surviving backup
   when the primary failed (fast recovery), and re-replicate to restore f+1
   subject to failure-domain and capacity constraints. Returns the new
   region infos, the fresh (machine, rid) assignments needing bulk data
   recovery, and any regions that lost all replicas. *)
let remap st (cm : State.cm_state) ~members ~new_id =
  let fresh = ref [] and lost = ref [] and updates = ref [] in
  let cons = constraints st cm ~members in
  Hashtbl.iter
    (fun rid (info : Wire.region_info) ->
      let primary_alive = List.mem info.Wire.primary members in
      let surviving_backups = List.filter (fun b -> List.mem b members) info.Wire.backups in
      let survivors =
        (if primary_alive then [ info.Wire.primary ] else []) @ surviving_backups
      in
      if survivors = [] then lost := rid :: !lost
      else begin
        let primary, rest, primary_changed =
          if primary_alive then (info.Wire.primary, surviving_backups, false)
          else
            match surviving_backups with
            | b :: rest -> (b, rest, true)
            | [] -> assert false
        in
        let total = 1 + List.length info.Wire.backups in
        let changed = List.length survivors <> total in
        let needed = st.State.params.Params.replication - List.length survivors in
        let replacements =
          if needed > 0 then
            match Placement.choose_replacements cons ~survivors ~needed with
            | Some l -> l
            | None -> []
          else []
        in
        List.iter (fun m -> fresh := (m, rid) :: !fresh) replacements;
        let info' =
          {
            info with
            Wire.primary;
            backups = rest @ replacements;
            last_primary_change =
              (if primary_changed then new_id else info.Wire.last_primary_change);
            last_replica_change =
              (if changed || replacements <> [] then new_id else info.Wire.last_replica_change);
            (* down to one survivor: re-replicate aggressively (§6.4) *)
            critical = List.length survivors = 1;
          }
        in
        updates := (rid, info') :: !updates
      end)
    cm.State.owners;
  List.iter (fun (rid, info) -> Hashtbl.replace cm.State.owners rid info) !updates;
  List.iter (fun rid -> Hashtbl.remove cm.State.owners rid) !lost;
  (!fresh, !lost)

(* {1 Reconfiguration driver} *)

let wait_acks_or_timeout st (done_ : unit Ivar.t) ~timeout =
  Proc.suspend (fun resume ->
      Ivar.on_fill done_ (fun () -> resume (Ok true));
      Engine.schedule_in st.State.engine ~after:timeout (fun () -> resume (Ok false)))

(* Rebuild the CM-only region map from probe results — needed when a backup
   CM takes over (the cause of the slower recovery in Figure 11). *)
let rebuild_owners st (cm : State.cm_state) ~probes =
  Hashtbl.reset cm.State.owners;
  let claims = Hashtbl.create 64 in
  let change_ids = Hashtbl.create 64 in
  let note_claims m replicas =
    List.iter
      (fun (rid, role) ->
        let p, bs =
          match Hashtbl.find_opt claims rid with Some v -> v | None -> (None, [])
        in
        match role with
        | State.Primary -> Hashtbl.replace claims rid (Some m, bs)
        | State.Backup -> Hashtbl.replace claims rid (p, m :: bs))
      replicas
  in
  let note_infos infos =
    List.iter
      (fun (rid, lpc, lrc) ->
        let lpc0, lrc0 =
          match Hashtbl.find_opt change_ids rid with Some v -> v | None -> (0, 0)
        in
        Hashtbl.replace change_ids rid (max lpc lpc0, max lrc lrc0))
      infos
  in
  List.iter (fun pr -> note_claims pr.pr_machine pr.pr_replicas; note_infos pr.pr_infos) probes;
  (* include the new CM's own replicas and cached infos *)
  note_claims st.State.id
    (Hashtbl.fold (fun rid (r : State.replica) acc -> (rid, r.State.role) :: acc)
       st.State.nv.replicas []);
  note_infos
    (Hashtbl.fold
       (fun rid (i : Wire.region_info) acc ->
         (rid, i.Wire.last_primary_change, i.Wire.last_replica_change) :: acc)
       st.State.region_map []);
  (* regions known only from cached mappings (every replica died) must
     still be represented so remapping can report them lost *)
  Hashtbl.iter
    (fun rid _ -> if not (Hashtbl.mem claims rid) then Hashtbl.replace claims rid (None, []))
    change_ids;
  let max_rid = ref 0 in
  Hashtbl.iter
    (fun rid (p, bs) ->
      max_rid := max !max_rid rid;
      let lpc, lrc =
        match Hashtbl.find_opt change_ids rid with Some v -> v | None -> (0, 0)
      in
      (* a dead primary is represented by the -1 sentinel: remapping sees a
         non-member primary and promotes a surviving backup, stamping the
         proper change identifiers *)
      let primary = match p with Some m -> m | None -> -1 in
      Hashtbl.replace cm.State.owners rid
        {
          Wire.rid;
          primary;
          backups = List.sort_uniq compare bs;
          last_primary_change = lpc;
          last_replica_change = lrc;
          critical = false;
        })
    claims;
  if cm.State.next_rid <= !max_rid then cm.State.next_rid <- !max_rid + 1

let rec attempt_reconfig st =
  Proc.check_cancelled ();
  let old = st.State.config in
  let suspects = Hashtbl.fold (fun m () acc -> m :: acc) st.State.pending_suspects [] in
  let candidates =
    List.filter (fun m -> m <> st.State.id && not (List.mem m suspects)) old.Config.members
  in
  (* 2. Probe all machines except the suspects; proceed only with responses
     from a majority (partition safety). *)
  let probes = probe st ~targets:candidates in
  st.State.trace "probe";
  let responders =
    List.sort_uniq compare (st.State.id :: List.map (fun p -> p.pr_machine) probes)
  in
  if 2 * List.length responders <= List.length old.Config.members then begin
    Proc.sleep (Time.ms 5);
    attempt_reconfig st
  end
  else begin
    (* 3. Atomically advance the configuration in the coordination
       service; only one machine can win configuration c+1. *)
    match Farm_coord.Zk.read st.State.zk with
    | None ->
        Proc.sleep (Time.ms 2);
        attempt_reconfig st
    | Some (seq, cur) ->
        if cur.Config.id > old.Config.id then
          (* someone else already moved the system on; adopt via NEW-CONFIG *)
          st.State.reconfig_active <- false
        else begin
          let new_id = old.Config.id + 1 in
          let new_config =
            Config.make ~id:new_id ~members:responders ~domains:old.Config.domains
              ~cm:st.State.id
          in
          match Farm_coord.Zk.compare_and_swap st.State.zk ~expected_seq:seq new_config with
          | Error _ ->
              (* lost the race; wait for the winner's NEW-CONFIG *)
              st.State.reconfig_active <- false
          | Ok _ ->
              st.State.trace "zookeeper";
              let was_cm = old.Config.cm = st.State.id in
              if (not was_cm) && not st.State.params.Params.incremental_cm_state then
                (* a new CM must first build the CM-only data structures;
                   with the §6.4 suggested optimization every machine keeps
                   them incrementally and the rebuild disappears *)
                Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_cm_rebuild;
              let cm = State.ensure_cm st in
              if not was_cm then rebuild_owners st cm ~probes;
              (* 4. Remap regions of failed machines. *)
              let fresh, lost = remap st cm ~members:responders ~new_id in
              List.iter
                (fun rid -> st.State.trace (Printf.sprintf "region-lost:%d" rid))
                lost;
              cm.State.pending_data_recovery <-
                cm.State.pending_data_recovery + List.length fresh;
              cm.State.regions_active_from <- [];
              cm.State.all_active_sent <- false;
              Hashtbl.reset st.State.pending_suspects;
              (* reset the lease table for the new configuration *)
              Hashtbl.reset cm.State.cm_leases;
              List.iter
                (fun m -> Hashtbl.replace cm.State.cm_leases m (State.now st))
                responders;
              let regions =
                Hashtbl.fold (fun _ info acc -> info :: acc) cm.State.owners []
              in
              (* 5. Send NEW-CONFIG to every member (this machine included:
                 the member-side application is uniform). *)
              let remaining = ref responders in
              let done_ = Ivar.create () in
              cm.State.ack_pending <- Some (new_id, remaining, done_);
              st.State.trace "new-config";
              List.iter
                (fun m ->
                  Comms.send st ~dst:m
                    (Wire.New_config { config = new_config; regions; cm_changed = not was_cm }))
                responders;
              (* 7. Commit after all ACKs (machines that fail to ack get
                 suspected and trigger another round). Evicted machines'
                 leases have already expired — that is what got them
                 evicted — so there is nothing further to wait for. *)
              let acked =
                wait_acks_or_timeout st done_
                  ~timeout:st.State.params.Params.reconfig_ack_timeout
              in
              cm.State.ack_pending <- None;
              if not acked then begin
                List.iter
                  (fun m -> if m <> st.State.id then Hashtbl.replace st.State.pending_suspects m ())
                  !remaining;
                attempt_reconfig st
              end
              else begin
                List.iter
                  (fun m -> Comms.send st ~dst:m (Wire.New_config_commit { cfg = new_id }))
                  responders;
                st.State.trace "config-commit";
                st.State.reconfig_active <- false
              end
        end
  end

(* Entry point for suspicions (lease expiry, failed probes, explicit
   SUSPECT messages). Runs the backup-CM election dance of §5.2 step 1 when
   the CM itself is suspected. *)
let handle_suspicion st suspects =
  if st.State.rejoining then ()
  else begin
  let fresh = List.filter (fun m -> not (Hashtbl.mem st.State.pending_suspects m)) suspects in
  List.iter (fun m -> Hashtbl.replace st.State.pending_suspects m ()) suspects;
  if fresh <> [] then begin
    Farm_obs.Obs.add st.State.obs Farm_obs.Obs.C_suspect (List.length fresh);
    List.iter
      (fun m -> Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_suspect ~a:m ~b:0 ~c:0)
      fresh;
    st.State.trace "suspect"
  end;
  let old_id = st.State.config.Config.id in
  let cm_suspected = List.mem st.State.config.Config.cm suspects in
  let start () =
    if not st.State.reconfig_active then begin
      st.State.reconfig_active <- true;
      Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () -> attempt_reconfig st)
    end
  in
  if State.is_cm st then start ()
  else if cm_suspected then begin
    let bcms = Config.backup_cms st.State.config ~k:st.State.params.Params.backup_cms in
    let rec position i = function
      | [] -> None
      | x :: rest -> if x = st.State.id then Some i else position (i + 1) rest
    in
    match position 0 bcms with
    | Some i ->
        (* backup CMs stagger their attempts to avoid a stampede *)
        Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
            Proc.sleep (Time.mul_int (Time.ms 2) i);
            if st.State.config.Config.id = old_id then start ())
    | None ->
        Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
            (match bcms with
            | b :: _ ->
                Comms.send st ~dst:b
                  (Wire.Suspect_req { cfg = old_id; suspect = st.State.config.Config.cm })
            | [] -> ());
            Proc.sleep st.State.params.Params.backup_cm_timeout;
            if st.State.config.Config.id = old_id then start ())
  end
  else
    (* a non-CM grantor (a group leader in the two-level lease hierarchy)
       detected a member expiry: report it to the CM *)
    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
        List.iter
          (fun suspect ->
            Comms.send st ~dst:st.State.config.Config.cm
              (Wire.Suspect_req { cfg = old_id; suspect }))
          suspects)
  end

(* {1 Post-recovery bookkeeping at the CM} *)

let on_regions_active st ~src =
  match st.State.cm with
  | None -> ()
  | Some cm ->
      if not (List.mem src cm.State.regions_active_from) then
        cm.State.regions_active_from <- src :: cm.State.regions_active_from;
      if
        (not cm.State.all_active_sent)
        && List.for_all
             (fun m -> List.mem m cm.State.regions_active_from)
             st.State.config.Config.members
      then begin
        cm.State.all_active_sent <- true;
        st.State.trace "all-active";
        List.iter
          (fun m ->
            Comms.send st ~dst:m (Wire.All_regions_active { cfg = st.State.config.Config.id }))
          st.State.config.Config.members
      end

let on_region_recovered st ~rid:_ =
  match st.State.cm with
  | None -> ()
  | Some cm ->
      cm.State.pending_data_recovery <- cm.State.pending_data_recovery - 1;
      st.State.trace "region-recovered";
      if cm.State.pending_data_recovery <= 0 then st.State.trace "data-rec-done"

let handle_fetch_mapping st ~reply ~rid =
  let info =
    match st.State.cm with
    | Some cm -> Hashtbl.find_opt cm.State.owners rid
    | None -> Hashtbl.find_opt st.State.region_map rid
  in
  Comms.reply_to reply (Wire.Mapping_reply { info })
