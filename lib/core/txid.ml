(* Transaction identifiers <c, m, t, l> (§5.3): the configuration in which
   the commit started, the coordinator machine, the coordinator thread, and
   a thread-local sequence number. *)

type t = { config : int; machine : int; thread : int; local : int }

let make ~config ~machine ~thread ~local = { config; machine; thread; local }

let compare a b =
  let c = Int.compare a.config b.config in
  if c <> 0 then c
  else
    let c = Int.compare a.machine b.machine in
    if c <> 0 then c
    else
      let c = Int.compare a.thread b.thread in
      if c <> 0 then c else Int.compare a.local b.local

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.config, t.machine, t.thread, t.local)

(* Key identifying the coordinator thread, used for truncation tracking and
   for sharding recovery work across threads. *)
let coord_key t = (t.machine, t.thread)

(* The same identity packed into one int, for the per-record hot path:
   keying the truncation tables on a tuple would allocate the key and
   hash it structurally on every log record processed. Threads fit in 10
   bits ([Params.threads_per_machine] is single digits). *)
let coord_id t = (t.machine lsl 10) lor t.thread

let pp ppf t = Fmt.pf ppf "<c%d,m%d,t%d,l%d>" t.config t.machine t.thread t.local

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
