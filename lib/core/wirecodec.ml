(* Binary wire format for every message of Table 2 (plus the region,
   allocator and lease messages of §3/§5).

   The simulator passes messages as OCaml values, so this codec is not on
   the hot path; it pins down an unambiguous byte representation (the one a
   real RDMA transport would DMA) and is exercised by round-trip and
   corruption tests. Layout: little-endian fixed-width 64-bit integers,
   one-byte tags/booleans/bitmasks, and length-prefixed lists and byte
   strings. [decode] accepts exactly the bytes [encode] produces: any
   truncation, trailing garbage, or out-of-range tag yields [None]. *)

exception Bad

(* {1 Writers} *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_int b v = Buffer.add_int64_le b (Int64.of_int v)

let w_bytes b s =
  w_int b (Bytes.length s);
  Buffer.add_bytes b s

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      f b v

let w_addr b (a : Addr.t) =
  w_int b a.Addr.region;
  w_int b a.Addr.offset

let w_txid b (t : Txid.t) =
  w_int b t.Txid.config;
  w_int b t.Txid.machine;
  w_int b t.Txid.thread;
  w_int b t.Txid.local

let w_alloc_op b (op : Wire.alloc_op) =
  w_u8 b (match op with Wire.Alloc_none -> 0 | Wire.Alloc_set -> 1 | Wire.Alloc_clear -> 2)

let w_write_item b (w : Wire.write_item) =
  w_addr b w.Wire.addr;
  w_int b w.Wire.version;
  w_bytes b w.Wire.value;
  w_alloc_op b w.Wire.alloc_op;
  w_int b w.Wire.ts

let w_lock_payload b (p : Wire.lock_payload) =
  w_txid b p.Wire.txid;
  w_list b w_int p.Wire.regions_written;
  w_list b w_write_item p.Wire.writes

let w_saw b (s : Wire.saw) =
  let bit v i = if v then 1 lsl i else 0 in
  w_u8 b
    (bit s.Wire.saw_lock 0 lor bit s.Wire.saw_commit_backup 1
   lor bit s.Wire.saw_commit_primary 2 lor bit s.Wire.saw_abort 3
   lor bit s.Wire.saw_commit_recovery 4
   lor bit s.Wire.saw_abort_recovery 5)

let w_evidence b (e : Wire.tx_evidence) =
  w_txid b e.Wire.ev_txid;
  w_list b w_int e.Wire.ev_regions;
  w_saw b e.Wire.ev_saw;
  w_option b w_lock_payload e.Wire.ev_payload

let w_vote b (v : Wire.vote) =
  w_u8 b
    (match v with
    | Wire.Vote_commit_primary -> 0
    | Wire.Vote_commit_backup -> 1
    | Wire.Vote_lock -> 2
    | Wire.Vote_abort -> 3
    | Wire.Vote_truncated -> 4
    | Wire.Vote_unknown -> 5)

let w_region_info b (i : Wire.region_info) =
  w_int b i.Wire.rid;
  w_int b i.Wire.primary;
  w_list b w_int i.Wire.backups;
  w_int b i.Wire.last_primary_change;
  w_int b i.Wire.last_replica_change;
  w_bool b i.Wire.critical

let w_config b (c : Config.t) =
  w_int b c.Config.id;
  w_list b w_int c.Config.members;
  w_list b (fun b (m, d) -> w_int b m; w_int b d) c.Config.domains;
  w_int b c.Config.cm

(* {1 Readers}

   A cursor over the input; every reader raises [Bad] on truncation or an
   out-of-range encoding. List counts are bounded by the bytes remaining
   (each element occupies at least one byte), so corrupt lengths fail
   instead of allocating. *)

type cursor = { data : Bytes.t; mutable pos : int }

let r_u8 c =
  if c.pos >= Bytes.length c.data then raise Bad;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let r_bool c = match r_u8 c with 0 -> false | 1 -> true | _ -> raise Bad

let r_int c =
  if c.pos + 8 > Bytes.length c.data then raise Bad;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let r_bytes c =
  let len = r_int c in
  if len < 0 || c.pos + len > Bytes.length c.data then raise Bad;
  let s = Bytes.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let r_list c f =
  let n = r_int c in
  if n < 0 || n > Bytes.length c.data - c.pos then raise Bad;
  List.init n (fun _ -> f c)

let r_option c f = match r_u8 c with 0 -> None | 1 -> Some (f c) | _ -> raise Bad

let r_addr c =
  let region = r_int c in
  let offset = r_int c in
  Addr.make ~region ~offset

let r_txid c =
  let config = r_int c in
  let machine = r_int c in
  let thread = r_int c in
  let local = r_int c in
  Txid.make ~config ~machine ~thread ~local

let r_alloc_op c =
  match r_u8 c with
  | 0 -> Wire.Alloc_none
  | 1 -> Wire.Alloc_set
  | 2 -> Wire.Alloc_clear
  | _ -> raise Bad

let r_write_item c =
  let addr = r_addr c in
  let version = r_int c in
  let value = r_bytes c in
  let alloc_op = r_alloc_op c in
  let ts = r_int c in
  { Wire.addr; version; value; alloc_op; ts }

let r_lock_payload c =
  let txid = r_txid c in
  let regions_written = r_list c r_int in
  let writes = r_list c r_write_item in
  { Wire.txid; regions_written; writes }

let r_saw c =
  let m = r_u8 c in
  if m land lnot 0x3f <> 0 then raise Bad;
  let bit i = m land (1 lsl i) <> 0 in
  {
    Wire.saw_lock = bit 0;
    saw_commit_backup = bit 1;
    saw_commit_primary = bit 2;
    saw_abort = bit 3;
    saw_commit_recovery = bit 4;
    saw_abort_recovery = bit 5;
  }

let r_evidence c =
  let ev_txid = r_txid c in
  let ev_regions = r_list c r_int in
  let ev_saw = r_saw c in
  let ev_payload = r_option c r_lock_payload in
  { Wire.ev_txid; ev_regions; ev_saw; ev_payload }

let r_vote c =
  match r_u8 c with
  | 0 -> Wire.Vote_commit_primary
  | 1 -> Wire.Vote_commit_backup
  | 2 -> Wire.Vote_lock
  | 3 -> Wire.Vote_abort
  | 4 -> Wire.Vote_truncated
  | 5 -> Wire.Vote_unknown
  | _ -> raise Bad

let r_region_info c =
  let rid = r_int c in
  let primary = r_int c in
  let backups = r_list c r_int in
  let last_primary_change = r_int c in
  let last_replica_change = r_int c in
  let critical = r_bool c in
  { Wire.rid; primary; backups; last_primary_change; last_replica_change; critical }

let r_config c =
  let id = r_int c in
  let members = r_list c r_int in
  let domains = r_list c (fun c -> let m = r_int c in let d = r_int c in (m, d)) in
  let cm = r_int c in
  { Config.id; members; domains; cm }

(* {1 Messages} *)

let encode (msg : Wire.message) =
  let b = Buffer.create 64 in
  (match msg with
  | Wire.Lock_reply { txid; ok; cfg; head_ts } ->
      w_u8 b 0;
      w_txid b txid;
      w_bool b ok;
      w_int b cfg;
      w_int b head_ts
  | Wire.Validate_req { txid; items } ->
      w_u8 b 1;
      w_txid b txid;
      w_list b (fun b (a, v) -> w_addr b a; w_int b v) items
  | Wire.Validate_reply { txid; ok } ->
      w_u8 b 2;
      w_txid b txid;
      w_bool b ok
  | Wire.Need_recovery { cfg; rid; txs } ->
      w_u8 b 3;
      w_int b cfg;
      w_int b rid;
      w_list b w_evidence txs
  | Wire.Fetch_tx_state { cfg; rid; txids } ->
      w_u8 b 4;
      w_int b cfg;
      w_int b rid;
      w_list b w_txid txids
  | Wire.Send_tx_state { cfg; rid; states } ->
      w_u8 b 5;
      w_int b cfg;
      w_int b rid;
      w_list b (fun b (t, p) -> w_txid b t; w_lock_payload b p) states
  | Wire.Replicate_tx_state { cfg; rid; txid; lock } ->
      w_u8 b 6;
      w_int b cfg;
      w_int b rid;
      w_txid b txid;
      w_lock_payload b lock
  | Wire.Recovery_vote { cfg; rid; txid; regions; vote } ->
      w_u8 b 7;
      w_int b cfg;
      w_int b rid;
      w_txid b txid;
      w_list b w_int regions;
      w_vote b vote
  | Wire.Request_vote { cfg; rid; txid } ->
      w_u8 b 8;
      w_int b cfg;
      w_int b rid;
      w_txid b txid
  | Wire.Commit_recovery { cfg; txid } ->
      w_u8 b 9;
      w_int b cfg;
      w_txid b txid
  | Wire.Abort_recovery { cfg; txid } ->
      w_u8 b 10;
      w_int b cfg;
      w_txid b txid
  | Wire.Truncate_recovery { cfg; txid } ->
      w_u8 b 11;
      w_int b cfg;
      w_txid b txid
  | Wire.Suspect_req { cfg; suspect } ->
      w_u8 b 12;
      w_int b cfg;
      w_int b suspect
  | Wire.New_config { config; regions; cm_changed } ->
      w_u8 b 13;
      w_config b config;
      w_list b w_region_info regions;
      w_bool b cm_changed
  | Wire.New_config_ack { cfg } ->
      w_u8 b 14;
      w_int b cfg
  | Wire.New_config_commit { cfg } ->
      w_u8 b 15;
      w_int b cfg
  | Wire.Regions_active { cfg } ->
      w_u8 b 16;
      w_int b cfg
  | Wire.All_regions_active { cfg } ->
      w_u8 b 17;
      w_int b cfg
  | Wire.Region_recovered { cfg; rid } ->
      w_u8 b 18;
      w_int b cfg;
      w_int b rid
  | Wire.Lease_request { cfg; sent_ns } ->
      w_u8 b 19;
      w_int b cfg;
      w_int b sent_ns
  | Wire.Lease_grant_and_request { cfg; sent_ns } ->
      w_u8 b 20;
      w_int b cfg;
      w_int b sent_ns
  | Wire.Lease_grant { cfg; sent_ns } ->
      w_u8 b 21;
      w_int b cfg;
      w_int b sent_ns
  | Wire.Alloc_region_req { locality } ->
      w_u8 b 22;
      w_option b w_int locality
  | Wire.Alloc_region_reply { info } ->
      w_u8 b 23;
      w_option b w_region_info info
  | Wire.Prepare_region { info } ->
      w_u8 b 24;
      w_region_info b info
  | Wire.Prepare_region_ack { rid; ok } ->
      w_u8 b 25;
      w_int b rid;
      w_bool b ok
  | Wire.Commit_region { info } ->
      w_u8 b 26;
      w_region_info b info
  | Wire.Fetch_mapping { rid } ->
      w_u8 b 27;
      w_int b rid
  | Wire.Mapping_reply { info } ->
      w_u8 b 28;
      w_option b w_region_info info
  | Wire.Block_header { rid; block; obj_size } ->
      w_u8 b 29;
      w_int b rid;
      w_int b block;
      w_int b obj_size
  | Wire.Block_headers_sync { rid; headers } ->
      w_u8 b 30;
      w_int b rid;
      w_list b (fun b (blk, s) -> w_int b blk; w_int b s) headers
  | Wire.Alloc_obj_req { rid; size } ->
      w_u8 b 31;
      w_int b rid;
      w_int b size
  | Wire.Alloc_obj_reply { addr; version } ->
      w_u8 b 32;
      w_option b w_addr addr;
      w_int b version
  | Wire.Free_slot_hint { addr } ->
      w_u8 b 33;
      w_addr b addr
  | Wire.App_call { tag; args } ->
      w_u8 b 34;
      w_int b tag;
      w_list b w_int (Array.to_list args)
  | Wire.App_reply { ok } ->
      w_u8 b 35;
      w_bool b ok
  | Wire.Ack -> w_u8 b 36
  | Wire.Nack -> w_u8 b 37
  | Wire.Watermark_report { cfg; wm } ->
      w_u8 b 38;
      w_int b cfg;
      w_int b wm
  | Wire.Watermark_update { wm } ->
      w_u8 b 39;
      w_int b wm);
  Buffer.to_bytes b

let decode_exn c : Wire.message =
  match r_u8 c with
  | 0 ->
      let txid = r_txid c in
      let ok = r_bool c in
      let cfg = r_int c in
      let head_ts = r_int c in
      Wire.Lock_reply { txid; ok; cfg; head_ts }
  | 1 ->
      let txid = r_txid c in
      let items = r_list c (fun c -> let a = r_addr c in let v = r_int c in (a, v)) in
      Wire.Validate_req { txid; items }
  | 2 ->
      let txid = r_txid c in
      let ok = r_bool c in
      Wire.Validate_reply { txid; ok }
  | 3 ->
      let cfg = r_int c in
      let rid = r_int c in
      let txs = r_list c r_evidence in
      Wire.Need_recovery { cfg; rid; txs }
  | 4 ->
      let cfg = r_int c in
      let rid = r_int c in
      let txids = r_list c r_txid in
      Wire.Fetch_tx_state { cfg; rid; txids }
  | 5 ->
      let cfg = r_int c in
      let rid = r_int c in
      let states = r_list c (fun c -> let t = r_txid c in let p = r_lock_payload c in (t, p)) in
      Wire.Send_tx_state { cfg; rid; states }
  | 6 ->
      let cfg = r_int c in
      let rid = r_int c in
      let txid = r_txid c in
      let lock = r_lock_payload c in
      Wire.Replicate_tx_state { cfg; rid; txid; lock }
  | 7 ->
      let cfg = r_int c in
      let rid = r_int c in
      let txid = r_txid c in
      let regions = r_list c r_int in
      let vote = r_vote c in
      Wire.Recovery_vote { cfg; rid; txid; regions; vote }
  | 8 ->
      let cfg = r_int c in
      let rid = r_int c in
      let txid = r_txid c in
      Wire.Request_vote { cfg; rid; txid }
  | 9 ->
      let cfg = r_int c in
      let txid = r_txid c in
      Wire.Commit_recovery { cfg; txid }
  | 10 ->
      let cfg = r_int c in
      let txid = r_txid c in
      Wire.Abort_recovery { cfg; txid }
  | 11 ->
      let cfg = r_int c in
      let txid = r_txid c in
      Wire.Truncate_recovery { cfg; txid }
  | 12 ->
      let cfg = r_int c in
      let suspect = r_int c in
      Wire.Suspect_req { cfg; suspect }
  | 13 ->
      let config = r_config c in
      let regions = r_list c r_region_info in
      let cm_changed = r_bool c in
      Wire.New_config { config; regions; cm_changed }
  | 14 -> Wire.New_config_ack { cfg = r_int c }
  | 15 -> Wire.New_config_commit { cfg = r_int c }
  | 16 -> Wire.Regions_active { cfg = r_int c }
  | 17 -> Wire.All_regions_active { cfg = r_int c }
  | 18 ->
      let cfg = r_int c in
      let rid = r_int c in
      Wire.Region_recovered { cfg; rid }
  | 19 ->
      let cfg = r_int c in
      let sent_ns = r_int c in
      Wire.Lease_request { cfg; sent_ns }
  | 20 ->
      let cfg = r_int c in
      let sent_ns = r_int c in
      Wire.Lease_grant_and_request { cfg; sent_ns }
  | 21 ->
      let cfg = r_int c in
      let sent_ns = r_int c in
      Wire.Lease_grant { cfg; sent_ns }
  | 22 -> Wire.Alloc_region_req { locality = r_option c r_int }
  | 23 -> Wire.Alloc_region_reply { info = r_option c r_region_info }
  | 24 -> Wire.Prepare_region { info = r_region_info c }
  | 25 ->
      let rid = r_int c in
      let ok = r_bool c in
      Wire.Prepare_region_ack { rid; ok }
  | 26 -> Wire.Commit_region { info = r_region_info c }
  | 27 -> Wire.Fetch_mapping { rid = r_int c }
  | 28 -> Wire.Mapping_reply { info = r_option c r_region_info }
  | 29 ->
      let rid = r_int c in
      let block = r_int c in
      let obj_size = r_int c in
      Wire.Block_header { rid; block; obj_size }
  | 30 ->
      let rid = r_int c in
      let headers = r_list c (fun c -> let blk = r_int c in let s = r_int c in (blk, s)) in
      Wire.Block_headers_sync { rid; headers }
  | 31 ->
      let rid = r_int c in
      let size = r_int c in
      Wire.Alloc_obj_req { rid; size }
  | 32 ->
      let addr = r_option c r_addr in
      let version = r_int c in
      Wire.Alloc_obj_reply { addr; version }
  | 33 -> Wire.Free_slot_hint { addr = r_addr c }
  | 34 ->
      let tag = r_int c in
      let args = Array.of_list (r_list c r_int) in
      Wire.App_call { tag; args }
  | 35 -> Wire.App_reply { ok = r_bool c }
  | 36 -> Wire.Ack
  | 37 -> Wire.Nack
  | 38 ->
      let cfg = r_int c in
      let wm = r_int c in
      Wire.Watermark_report { cfg; wm }
  | 39 -> Wire.Watermark_update { wm = r_int c }
  | _ -> raise Bad

let decode data =
  let c = { data; pos = 0 } in
  match decode_exn c with
  | msg -> if c.pos = Bytes.length data then Some msg else None
  | exception Bad -> None
