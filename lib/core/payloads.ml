(* A machine can hold different lock payloads for one transaction — as
   primary of one written region and backup of another — so recovery
   evidence must merge payloads (union of write items by address) rather
   than keep whichever record it examined first. Losing items here leaks
   locks and loses committed writes at recovery time. *)

let merge_payloads (a : Wire.lock_payload) (b : Wire.lock_payload) =
  let writes =
    List.fold_left
      (fun acc (w : Wire.write_item) ->
        if List.exists (fun (x : Wire.write_item) -> Addr.equal x.Wire.addr w.Wire.addr) acc
        then acc
        else w :: acc)
      a.Wire.writes b.Wire.writes
  in
  {
    Wire.txid = a.Wire.txid;
    regions_written = List.sort_uniq Int.compare (a.Wire.regions_written @ b.Wire.regions_written);
    writes;
  }
