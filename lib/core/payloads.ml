(* A machine can hold different lock payloads for one transaction — as
   primary of one written region and backup of another — so recovery
   evidence must merge payloads (union of write items by address) rather
   than keep whichever record it examined first. Losing items here leaks
   locks and loses committed writes at recovery time. *)

let merge_payloads (a : Wire.lock_payload) (b : Wire.lock_payload) =
  (* on duplicate addresses, keep the item with the larger commit
     timestamp: a COMMIT-BACKUP item (ts = the real write timestamp) beats
     the LOCK item of the same write (ts 0), so a snapshot-mode recovery
     installs the timestamp the coordinator actually chose *)
  let writes =
    List.fold_left
      (fun acc (w : Wire.write_item) ->
        if
          List.exists
            (fun (x : Wire.write_item) ->
              Addr.equal x.Wire.addr w.Wire.addr && x.Wire.ts >= w.Wire.ts)
            acc
        then acc
        else
          w
          :: List.filter
               (fun (x : Wire.write_item) -> not (Addr.equal x.Wire.addr w.Wire.addr))
               acc)
      a.Wire.writes b.Wire.writes
  in
  {
    Wire.txid = a.Wire.txid;
    regions_written = List.sort_uniq Int.compare (a.Wire.regions_written @ b.Wire.regions_written);
    writes;
  }
