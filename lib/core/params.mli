open Farm_sim

(** All tunable constants of the FaRM reproduction, with paper defaults
    where the paper gives them and scaled-down memory sizes for simulation
    speed (see DESIGN.md §1). *)

type protocol =
  | Validate_at_commit
      (** the FaRM SOSP'15 protocol: reads record versions and are
          re-checked at commit (VALIDATE phase); read-only transactions can
          abort under contention. The ablation baseline. *)
  | Snapshot
      (** FaRMv2-style opacity via global time: transactions read a
          globally-consistent snapshot taken from a bounded-uncertainty
          clock, objects keep per-version chains, and read-only
          transactions commit locally with zero VALIDATE messages and zero
          aborts. Read-write transactions still lock and validate. *)

type t = {
  region_size : int;  (** bytes per region (paper: 2 GB; sim default 1 MB) *)
  block_size : int;  (** slab block size (paper: 1 MB) *)
  log_size : int;  (** per sender-receiver transaction ring log, bytes *)
  regions_per_machine_cap : int;  (** placement capacity constraint *)
  replication : int;  (** f+1 copies of every region (paper default 3) *)
  protocol : protocol;  (** read/validate stack variant (see {!protocol}) *)
  validate_rpc_threshold : int;
      (** tr: reads per primary above which validation switches from
          one-sided RDMA to RPC (paper: 4) *)
  commit_log_bytes : int;  (** wire size of fixed commit-record parts *)
  doorbell_batching : bool;
      (** issue the commit protocol's one-sided verb groups (LOCK,
          VALIDATE reads, COMMIT-BACKUP, COMMIT-PRIMARY, ABORT) as doorbell
          batches — one {!Farm_net.Params.cpu_rdma_issue} plus
          per-op {!Farm_net.Params.cpu_rdma_doorbell} and a single
          completion reap per group. [false] restores the pre-batching
          pipeline (one full-cost verb, poll and process spawn per record)
          for ablation *)
  arena_reuse : bool;
      (** recycle per-commit scratch arenas through the machine's pool
          (the default). [false] drops released arenas so every commit
          starts from freshly-zeroed scratch — the state-leak-detector
          mode: traces must be byte-identical either way *)
  clock_eps : Time.t;
      (** ε of the simulated clock-synchronisation service: every machine's
          clock reads as an interval [\[lo, hi\]] of width 2ε guaranteed to
          contain true (engine) time. Snapshot-mode writers wait out the
          uncertainty at commit (see {!Farm_sim.Clock}). *)
  wm_interval : Time.t;
      (** snapshot mode: period of the per-machine low-watermark report to
          the CM, which drives old-version truncation of the chains *)
  park_timeout : Time.t;
      (** a committing transaction parked this long past any normal round
          trip means a message was lost to a transient partition that may
          heal without an eviction — the coordinator then drives the
          vote/decide machinery itself instead of waiting for a
          configuration change that never classifies it as recovering *)
  lease_duration : Time.t;  (** paper experiments use 10 ms *)
  lease_renew_divisor : int;  (** renew every lease/5 *)
  lease_check_interval : Time.t;
  vote_timeout : Time.t;  (** explicit REQUEST-VOTE after 250 us *)
  recovery_block : int;  (** data-recovery read unit (8 KB) *)
  recovery_interval : Time.t;
      (** pacing: next block read starts at a random point in this interval *)
  recovery_concurrency : int;  (** concurrent block reads per thread *)
  alloc_scan_batch : int;  (** allocator recovery: objects per burst (100) *)
  alloc_scan_interval : Time.t;  (** allocator recovery pacing (100 us) *)
  backup_cms : int;  (** k backup CMs by consistent hashing *)
  backup_cm_timeout : Time.t;
  incremental_cm_state : bool;
      (** the paper's §6.4 suggested optimization: every machine maintains
          the CM-only data structures incrementally, so a new CM skips the
          rebuild that dominates Figure 11 *)
  lease_group_size : int;
      (** > 0 enables the two-level lease hierarchy the paper sketches for
          larger clusters (§5.1): machines form groups of this size, group
          leaders exchange leases with the CM, members with their leader —
          CM lease traffic drops from O(n) to O(n / group), at the price of
          up to doubled detection latency *)
  reconfig_ack_timeout : Time.t;
  truncate_flush_interval : Time.t;
      (** background flush of pending lazy truncations *)
  threads_per_machine : int;
  cpu_tx_begin : Time.t;
  cpu_local_read : Time.t;
  cpu_lock_per_obj : Time.t;
  cpu_commit_per_obj : Time.t;
  cpu_truncate_per_obj : Time.t;
  cpu_validate_per_obj : Time.t;
  cpu_log_poll : Time.t;
  cpu_recovery_per_tx : Time.t;
  cpu_reconfig_fixed : Time.t;
  cpu_cm_rebuild : Time.t;
      (** extra delay when a *new* CM must rebuild CM-only data structures
          (§6.4, Figure 11) *)
  net : Farm_net.Params.t;
}

val default : t

val f : t -> int
(** Number of tolerated failures: [replication - 1]. *)
