(* All log-record types (Table 1) and message types (Table 2) of the FaRM
   transaction protocol, plus the reconfiguration, lease, region-management
   and allocator messages described in §3 and §5. *)

type alloc_op = Alloc_none | Alloc_set | Alloc_clear

type write_item = {
  addr : Addr.t;
  version : int;  (* version observed at read; the lock target *)
  value : bytes;  (* new object data *)
  alloc_op : alloc_op;
  ts : int;
      (* snapshot protocol: the write's global-time commit timestamp. 0 in
         LOCK records (the coordinator picks the timestamp only after all
         locks are granted) and in the validate-at-commit protocol;
         COMMIT-BACKUP records rebuild their items with the real value *)
}

(* Payload shared by LOCK and COMMIT-BACKUP records: transaction id, the ids
   of all regions written by the transaction, and the written objects the
   destination holds a replica of. *)
type lock_payload = {
  txid : Txid.t;
  regions_written : int list;
  writes : write_item list;
}

type record =
  | Lock of lock_payload
  | Commit_backup of lock_payload
  | Commit_primary of { txid : Txid.t; ts : int }
      (* ts: the commit timestamp the primary installs (0 in the
         validate-at-commit protocol, whose versions are the only order) *)
  | Abort of Txid.t
  | Truncate_marker

(* Every log record piggybacks the writer thread's truncation information:
   identifiers to truncate and the low bound on its non-truncated
   transaction ids. *)
type log_record = {
  payload : record;
  truncations : Txid.t list;
  low_bound : int;
  cfg : int;  (* configuration in which the record was written *)
}

(* What record types a replica has seen for a recovering transaction; the
   evidence that drives the voting rules of §5.3 step 6. *)
type saw = {
  mutable saw_lock : bool;
  mutable saw_commit_backup : bool;
  mutable saw_commit_primary : bool;
  mutable saw_abort : bool;
  mutable saw_commit_recovery : bool;
  mutable saw_abort_recovery : bool;
}

let saw_nothing () =
  {
    saw_lock = false;
    saw_commit_backup = false;
    saw_commit_primary = false;
    saw_abort = false;
    saw_commit_recovery = false;
    saw_abort_recovery = false;
  }

type tx_evidence = {
  ev_txid : Txid.t;
  ev_regions : int list;  (* regions written by the transaction *)
  ev_saw : saw;
  ev_payload : lock_payload option;  (* lock-record contents, if held *)
}

type vote =
  | Vote_commit_primary
  | Vote_commit_backup
  | Vote_lock
  | Vote_abort
  | Vote_truncated
  | Vote_unknown

let pp_vote ppf v =
  Fmt.string ppf
    (match v with
    | Vote_commit_primary -> "commit-primary"
    | Vote_commit_backup -> "commit-backup"
    | Vote_lock -> "lock"
    | Vote_abort -> "abort"
    | Vote_truncated -> "truncated"
    | Vote_unknown -> "unknown")

type region_info = {
  rid : int;
  primary : int;
  backups : int list;
  last_primary_change : int;  (* configuration id *)
  last_replica_change : int;
  critical : bool;
      (* the region is down to a single surviving replica: data recovery
         for it runs aggressively instead of paced (§6.4) *)
}

type message =
  (* normal-case transaction protocol *)
  | Lock_reply of { txid : Txid.t; ok : bool; cfg : int; head_ts : int }
    (* head_ts: snapshot protocol — the largest commit timestamp among the
       objects this reply just locked at the primary, so the coordinator's
       write timestamp provably exceeds every version it overwrites; 0
       otherwise. Locks serialize same-object writers, so this is exact. *)
  | Validate_req of { txid : Txid.t; items : (Addr.t * int) list }
  | Validate_reply of { txid : Txid.t; ok : bool }
  (* transaction state recovery (Table 2) *)
  | Need_recovery of { cfg : int; rid : int; txs : tx_evidence list }
  | Fetch_tx_state of { cfg : int; rid : int; txids : Txid.t list }
  | Send_tx_state of { cfg : int; rid : int; states : (Txid.t * lock_payload) list }
  | Replicate_tx_state of { cfg : int; rid : int; txid : Txid.t; lock : lock_payload }
  | Recovery_vote of {
      cfg : int;
      rid : int;
      txid : Txid.t;
      regions : int list;
      vote : vote;
    }
  | Request_vote of { cfg : int; rid : int; txid : Txid.t }
  | Commit_recovery of { cfg : int; txid : Txid.t }
  | Abort_recovery of { cfg : int; txid : Txid.t }
  | Truncate_recovery of { cfg : int; txid : Txid.t }
  (* reconfiguration (§5.2) *)
  | Suspect_req of { cfg : int; suspect : int }
  | New_config of {
      config : Config.t;
      regions : region_info list;
      cm_changed : bool;
    }
  | New_config_ack of { cfg : int }
  | New_config_commit of { cfg : int }
  | Regions_active of { cfg : int }
  | All_regions_active of { cfg : int }
  | Region_recovered of { cfg : int; rid : int }
  (* leases (§5.1): a lease is an interval starting when the granter sent
     it, so grants carry their send time — a grant that sat in a shared
     queue arrives already stale *)
  | Lease_request of { cfg : int; sent_ns : int }
  | Lease_grant_and_request of { cfg : int; sent_ns : int }
  | Lease_grant of { cfg : int; sent_ns : int }
  (* region allocation (§3) *)
  | Alloc_region_req of { locality : int option }
  | Alloc_region_reply of { info : region_info option }
  | Prepare_region of { info : region_info }
  | Prepare_region_ack of { rid : int; ok : bool }
  | Commit_region of { info : region_info }
  | Fetch_mapping of { rid : int }
  | Mapping_reply of { info : region_info option }
  (* allocator (§5.5) *)
  | Block_header of { rid : int; block : int; obj_size : int }
  | Block_headers_sync of { rid : int; headers : (int * int) list }
  | Alloc_obj_req of { rid : int; size : int }
  | Alloc_obj_reply of { addr : Addr.t option; version : int }
  | Free_slot_hint of { addr : Addr.t }
  (* application-level function shipping (the TATP single-field-update
     optimization of §6.2 ships the update to the object's primary) *)
  | App_call of { tag : int; args : int array }
  | App_reply of { ok : bool }
  (* snapshot protocol: cluster low-watermark for version-chain truncation.
     Machines report min(own active snapshot read-ts, clock lo) to the CM;
     the CM replies with the cluster-wide minimum once every member has
     reported, and the reporter trims its chains up to it. *)
  | Watermark_report of { cfg : int; wm : int }
  | Watermark_update of { wm : int }
  (* generic *)
  | Ack
  | Nack

(* Wire-size estimates for the NIC cost model. *)

let write_item_bytes w = 12 + 8 + 8 + Bytes.length w.value + 2

let lock_payload_bytes p =
  16 + (4 * List.length p.regions_written)
  + List.fold_left (fun acc w -> acc + write_item_bytes w) 0 p.writes

(* Trace support: a payload's record tag — the wire identity used by the
   flight recorder and by {!Farm_obs.Tracer.flow_id} — and the transaction
   id it carries. A record's sender and its remote processor derive the
   same flow id from these, so the causal arrows need no extra wire
   fields. *)
let payload_tag = function
  | Lock _ -> 0
  | Commit_backup _ -> 1
  | Commit_primary _ -> 2
  | Abort _ -> 3
  | Truncate_marker -> 4

let payload_txid = function
  | Lock p | Commit_backup p -> Some p.txid
  | Commit_primary { txid; _ } -> Some txid
  | Abort id -> Some id
  | Truncate_marker -> None

(* The flow id linking one record's append at [Txid.machine] to its
   processing at [dst]; 0 (= no flow) for marker records. *)
let record_flow payload ~dst =
  match payload_txid payload with
  | None -> 0
  | Some (id : Txid.t) ->
      Farm_obs.Tracer.flow_id ~machine:id.Txid.machine ~thread:id.Txid.thread
        ~local:id.Txid.local ~tag:(payload_tag payload) ~dst

let payload_bytes = function
  | Lock p | Commit_backup p -> 16 + lock_payload_bytes p
  | Commit_primary _ -> 40
  | Abort _ -> 32
  | Truncate_marker -> 24

let record_bytes r = payload_bytes r.payload + (16 * List.length r.truncations) + 8

(* Record sizes computed without materializing the record: the commit path
   reserves log space for every LOCK / COMMIT-BACKUP / COMMIT-PRIMARY
   record before building any of them, and building throwaway payloads
   just to measure them was a per-commit allocation. Must mirror
   [payload_bytes] + the [record_bytes] trailer. *)
let lock_record_base_bytes ~nregions ~writes_bytes =
  16 + (16 + (4 * nregions) + writes_bytes) + 8

(* Covers the larger COMMIT-PRIMARY (40) so one reservation size fits every
   control record; the residue is unreserved when the commit settles. *)
let ctl_record_base_bytes = 40 + 8

let evidence_bytes e =
  24
  + (4 * List.length e.ev_regions)
  + (match e.ev_payload with Some p -> lock_payload_bytes p | None -> 0)

let message_bytes = function
  | Lock_reply _ -> 40
  | Validate_req { items; _ } -> 24 + (20 * List.length items)
  | Validate_reply _ -> 32
  | Need_recovery { txs; _ } ->
      24 + List.fold_left (fun acc e -> acc + evidence_bytes e) 0 txs
  | Fetch_tx_state { txids; _ } -> 24 + (16 * List.length txids)
  | Send_tx_state { states; _ } ->
      24 + List.fold_left (fun acc (_, p) -> acc + 16 + lock_payload_bytes p) 0 states
  | Replicate_tx_state { lock; _ } -> 40 + lock_payload_bytes lock
  | Recovery_vote { regions; _ } -> 40 + (4 * List.length regions)
  | Request_vote _ -> 32
  | Commit_recovery _ | Abort_recovery _ | Truncate_recovery _ -> 28
  | Suspect_req _ -> 16
  | New_config { config; regions; _ } ->
      64 + (12 * Config.size config) + (32 * List.length regions)
  | New_config_ack _ | New_config_commit _ -> 16
  | Regions_active _ | All_regions_active _ | Region_recovered _ -> 16
  | Lease_request _ | Lease_grant_and_request _ | Lease_grant _ -> 16
  | Alloc_region_req _ | Alloc_region_reply _ -> 48
  | Prepare_region _ | Prepare_region_ack _ | Commit_region _ -> 48
  | Fetch_mapping _ | Mapping_reply _ -> 48
  | Block_header _ -> 24
  | Block_headers_sync { headers; _ } -> 16 + (8 * List.length headers)
  | Alloc_obj_req _ | Alloc_obj_reply _ | Free_slot_hint _ -> 32
  | App_call { args; _ } -> 16 + (8 * Array.length args)
  | App_reply _ -> 16
  | Watermark_report _ -> 24
  | Watermark_update _ -> 16
  | Ack | Nack -> 8
