open Farm_sim

(* Failure detection with leases (§5.1).

   Every machine holds a lease at the CM and the CM holds a lease at every
   machine, granted by a 3-way handshake: machine sends a request; the CM's
   response is both a grant and a request; the machine's second message
   grants the CM's lease. Renewals run every lease/5.

   Four lease-manager implementations are modelled (Figure 16):
   - [Rpc_shared]      reliable RPC on shared queue pairs: lease traffic
                       queues on the NIC behind bulk traffic and on the
                       shared worker threads behind foreground work.
   - [Ud_shared]       unreliable datagrams (dedicated queue pair, skips
                       NIC queueing) but processed on shared threads.
   - [Ud_thread]       a dedicated lease-manager thread at normal priority:
                       no CPU queueing, but occasionally preempted by
                       higher-priority OS work (modelled as suspension
                       spikes).
   - [Ud_thread_pri]   interrupt-driven at the highest user-space priority:
                       only the 0.5 ms system-timer resolution and the
                       loaded-network round trip remain. *)

let timer_resolution = Time.us 500

(* Delay before this machine's lease manager actually gets to run, per
   implementation. Every implementation first waits out [suspended_until]:
   the Ud_thread preemption spikes set it, and so does the fault fuzzer's
   lease-stall nemesis (a stalled lease manager models a GC pause or
   scheduler outage on any implementation). *)
let scheduling_delay st =
  let l = st.State.lease in
  let now = State.now st in
  let stall =
    if Time.( > ) l.State.suspended_until now then Time.sub l.State.suspended_until now
    else Time.zero
  in
  let base =
    match l.State.impl with
    | State.Rpc_shared | State.Ud_shared ->
        (* shared worker threads: wait for a free one *)
        Cpu.queue_delay st.State.cpu
    | State.Ud_thread ->
        if Time.( > ) stall Time.zero then Time.zero
        else Time.ns (Rng.int st.State.rng 20_000)
    | State.Ud_thread_pri ->
        (* interrupt latency: a few microseconds *)
        Time.ns (2_000 + Rng.int st.State.rng 3_000)
  in
  Time.max stall base

(* Quantize a wakeup to the system timer for the interrupt-driven
   implementation. *)
let quantize st d =
  match st.State.lease.State.impl with
  | State.Ud_thread_pri | State.Ud_thread ->
      let r = Time.to_ns timer_resolution in
      Time.ns ((Time.to_ns d + r - 1) / r * r)
  | State.Rpc_shared | State.Ud_shared -> d

let send_lease st ~dst msg =
  let prio, transport =
    match st.State.lease.State.impl with
    | State.Rpc_shared -> (false, `Rc)
    | State.Ud_shared | State.Ud_thread | State.Ud_thread_pri -> (true, `Ud)
  in
  (* lease messages are tiny; senders on a dedicated thread pay no shared
     CPU (the scheduling delay was already modelled) *)
  Comms.send st ~prio ~transport ~cpu_cost:Time.zero ~dst msg

(* Background OS preemption spikes for the dedicated-thread (non-priority)
   lease manager. *)
let start_spike_generator st =
  match st.State.lease.State.impl with
  | State.Ud_thread ->
      Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
          let rec loop () =
            Proc.sleep (Time.of_ms_float (Rng.exponential st.State.rng ~mean:1500.));
            Proc.check_cancelled ();
            let dur = Time.us (500 + Rng.int st.State.rng 29_500) in
            st.State.lease.State.suspended_until <- Time.add (State.now st) dur;
            loop ()
          in
          loop ())
  | State.Rpc_shared | State.Ud_shared | State.Ud_thread_pri -> ()

(* {1 Two-level hierarchy (§5.1)}

   "Significantly larger clusters may require a two-level hierarchy, which
   in the worst case would double failure detection time."

   With [lease_group_size] > 0, the configuration's members form groups of
   that size in identifier order; the lowest member of each group is its
   leader. Leaders exchange leases with the CM; members exchange leases
   with their leader; the CM's lease traffic shrinks from O(n) to
   O(n / group size). A leader detecting a member expiry (or a member
   detecting its leader) reports the suspect to the CM, which runs the
   normal reconfiguration — hence the up-to-doubled detection latency. *)

let group_size st = st.State.params.Params.lease_group_size

let hierarchical st = group_size st > 0

(* The machine this one renews with: its group leader, or the CM for
   leaders (and for everyone when the hierarchy is off). *)
let renew_target st =
  let cm = st.State.config.Config.cm in
  if not (hierarchical st) then cm
  else begin
    let members = List.filter (fun m -> m <> cm) st.State.config.Config.members in
    let rec find idx = function
      | [] -> cm
      | m :: rest ->
          if m = st.State.id then
            if idx mod group_size st = 0 then cm
            else List.nth members (idx / group_size st * group_size st)
          else find (idx + 1) rest
    in
    find 0 members
  end

let is_leader st = hierarchical st && renew_target st = st.State.config.Config.cm

(* The machines whose leases this machine is responsible for checking. *)
let watched_members st =
  let cm = st.State.config.Config.cm in
  if State.is_cm st then begin
    if not (hierarchical st) then
      List.filter (fun m -> m <> st.State.id) st.State.config.Config.members
    else begin
      (* the CM watches only the group leaders *)
      let members = List.filter (fun m -> m <> cm) st.State.config.Config.members in
      List.filteri (fun idx _ -> idx mod group_size st = 0) members
    end
  end
  else if is_leader st then begin
    let members = List.filter (fun m -> m <> cm) st.State.config.Config.members in
    let rec my_index idx = function
      | [] -> -1
      | m :: rest -> if m = st.State.id then idx else my_index (idx + 1) rest
    in
    let me = my_index 0 members in
    List.filteri
      (fun idx _ -> idx <> me && idx / group_size st = me / group_size st)
      members
  end
  else []

(* {1 Machine side} *)

let renewal_period st =
  Time.div_int st.State.params.Params.lease_duration st.State.params.Params.lease_renew_divisor

(* The renewal loop: every lease/5, ask the CM for a fresh lease. *)
let start_renewal st =
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      st.State.lease.State.last_grant_from_cm <- State.now st;
      let rec loop () =
        Proc.check_cancelled ();
        Proc.sleep (quantize st (renewal_period st));
        let d = scheduling_delay st in
        if Time.( > ) d Time.zero then Proc.sleep d;
        Proc.check_cancelled ();
        if not (State.is_cm st) then begin
          let dst = renew_target st in
          Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_lease_renewal;
          Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_lease_renewal ~a:dst ~b:0 ~c:0;
          send_lease st ~dst
            (Wire.Lease_request
               { cfg = st.State.config.Config.id; sent_ns = Time.to_ns (State.now st) })
        end;
        loop ()
      in
      loop ())

(* Expiry checks. Flat: the CM checks every machine's lease and machines
   check the CM's. Hierarchical: the CM checks the group leaders, leaders
   check their members and the CM, members check their leader. Expiry
   triggers suspicion (and, through [on_suspect], reconfiguration). *)
let start_expiry_checker st =
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      (* grantors start by assuming everyone renewed just now *)
      let init_watch () =
        List.iter
          (fun m ->
            match st.State.cm with
            | Some cm when State.is_cm st ->
                if not (Hashtbl.mem cm.State.cm_leases m) then
                  Hashtbl.replace cm.State.cm_leases m (State.now st)
            | _ ->
                if not (Hashtbl.mem st.State.lease.State.peer_leases m) then
                  Hashtbl.replace st.State.lease.State.peer_leases m (State.now st))
          (watched_members st)
      in
      init_watch ();
      let rec loop () =
        Proc.check_cancelled ();
        Proc.sleep st.State.params.Params.lease_check_interval;
        let lease = st.State.params.Params.lease_duration in
        let now = State.now st in
        (* grantor side: watch the machines that renew with me *)
        let table =
          if State.is_cm st then Option.map (fun cm -> cm.State.cm_leases) st.State.cm
          else if is_leader st then Some st.State.lease.State.peer_leases
          else None
        in
        (match table with
        | Some table ->
            init_watch ();
            let watched = watched_members st in
            let expired =
              Hashtbl.fold
                (fun m last acc ->
                  if
                    m <> st.State.id && List.mem m watched
                    && Time.( > ) (Time.sub now last) lease
                  then m :: acc
                  else acc)
                table []
            in
            if expired <> [] then begin
              st.State.lease.State.expiry_events <-
                st.State.lease.State.expiry_events + List.length expired;
              Farm_obs.Obs.add st.State.obs Farm_obs.Obs.C_lease_expiry
                (List.length expired);
              List.iter
                (fun m ->
                  Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_lease_expiry ~a:m ~b:0
                    ~c:0)
                expired;
              (* stop repeat triggers: forget their leases *)
              List.iter (fun m -> Hashtbl.remove table m) expired;
              st.State.on_suspect expired
            end
        | None -> ());
        (* member side: watch my grantor *)
        if
          (not (State.is_cm st))
          && (not st.State.lease.State.cm_suspected)
          && Time.( > ) (Time.sub now st.State.lease.State.last_grant_from_cm) lease
        then begin
          st.State.lease.State.expiry_events <- st.State.lease.State.expiry_events + 1;
          let grantor = renew_target st in
          Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_lease_expiry;
          Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_lease_expiry ~a:grantor ~b:0 ~c:0;
          st.State.lease.State.cm_suspected <- true;
          st.State.on_suspect [ grantor ]
        end;
        loop ()
      in
      loop ())

(* {1 Message handling} — called from the dispatcher at NIC-delivery time;
   applies the implementation-specific processing delay itself. *)

let handle st ~src msg =
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      let d = scheduling_delay st in
      if Time.( > ) d Time.zero then Proc.sleep d;
      Proc.check_cancelled ();
      let record_grantor sent_ns =
        st.State.lease.State.grantor_messages <- st.State.lease.State.grantor_messages + 1;
        Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_lease_grant;
        Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_lease_grant ~a:src ~b:0 ~c:0;
        match st.State.cm with
        | Some cm when State.is_cm st ->
            let prev =
              Option.value ~default:Time.zero (Hashtbl.find_opt cm.State.cm_leases src)
            in
            Hashtbl.replace cm.State.cm_leases src (Time.max prev (Time.ns sent_ns))
        | _ ->
            let prev =
              Option.value ~default:Time.zero
                (Hashtbl.find_opt st.State.lease.State.peer_leases src)
            in
            Hashtbl.replace st.State.lease.State.peer_leases src
              (Time.max prev (Time.ns sent_ns))
      in
      match msg with
      | Wire.Lease_request { cfg; sent_ns } ->
          if (State.is_cm st || is_leader st) && cfg = st.State.config.Config.id then begin
            record_grantor sent_ns;
            send_lease st ~dst:src
              (Wire.Lease_grant_and_request { cfg; sent_ns = Time.to_ns (State.now st) })
          end
      | Wire.Lease_grant_and_request { cfg; sent_ns } ->
          if cfg = st.State.config.Config.id && src = renew_target st then begin
            st.State.lease.State.last_grant_from_cm <-
              Time.max st.State.lease.State.last_grant_from_cm (Time.ns sent_ns);
            st.State.lease.State.cm_suspected <- false;
            send_lease st ~dst:src
              (Wire.Lease_grant { cfg; sent_ns = Time.to_ns (State.now st) })
          end
      | Wire.Lease_grant { cfg; sent_ns } ->
          if (State.is_cm st || is_leader st) && cfg = st.State.config.Config.id then
            record_grantor sent_ns
      | _ -> ())

let start st =
  start_spike_generator st;
  start_renewal st;
  start_expiry_checker st

(* {1 Nemesis hooks} — fault injection for the schedule fuzzer. *)

(* Stall this machine's lease manager for [duration]: renewals queued
   during the stall only go out afterwards, exactly like a GC pause or a
   scheduler outage would delay them. *)
let inject_stall st ~duration =
  let l = st.State.lease in
  l.State.suspended_until <- Time.max l.State.suspended_until (Time.add (State.now st) duration)

(* Skew this machine's lease clock forward by [delta]: every lease it holds
   or has granted looks [delta] older, so expiries fire early — the false
   suspicions a fast-running clock produces. *)
let inject_clock_skew st ~delta =
  let l = st.State.lease in
  l.State.last_grant_from_cm <- Time.sub l.State.last_grant_from_cm delta;
  let age table =
    let entries = Hashtbl.fold (fun m t acc -> (m, t) :: acc) table [] in
    List.iter (fun (m, t) -> Hashtbl.replace table m (Time.sub t delta)) entries
  in
  age l.State.peer_leases;
  match st.State.cm with Some cm -> age cm.State.cm_leases | None -> ()
