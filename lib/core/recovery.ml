open Farm_sim

(* Transaction state recovery (§5.3, Figure 6):

     1. block access to recovering regions   (done at NEW-CONFIG, Membership)
     2. drain logs
     3. find recovering transactions
     4. lock recovery                        (region becomes active)
     5. replicate log records to backups
     6. vote                                 (primaries -> coordinator)
     7. decide                               (coordinator -> replicas)

   Work is distributed: draining runs per machine, steps 3-6 per region,
   and step 7 per recovering transaction, so recovery time is dominated by
   the in-flight transaction count, not the data size. *)

(* {1 Evidence management} *)


let get_evidence rs txid =
  match Txid.Tbl.find_opt rs.State.rs_local txid with
  | Some e -> e
  | None ->
      let e =
        {
          Wire.ev_txid = txid;
          ev_regions = [];
          ev_saw = Wire.saw_nothing ();
          ev_payload = None;
        }
      in
      Txid.Tbl.replace rs.State.rs_local txid e;
      e

let merge_evidence rs (ev : Wire.tx_evidence) =
  let e = get_evidence rs ev.Wire.ev_txid in
  let e =
    if e.Wire.ev_regions = [] && ev.Wire.ev_regions <> [] then begin
      let e' = { e with Wire.ev_regions = ev.Wire.ev_regions } in
      Txid.Tbl.replace rs.State.rs_local ev.Wire.ev_txid e';
      e'
    end
    else e
  in
  let e =
    match (e.Wire.ev_payload, ev.Wire.ev_payload) with
    | None, Some p ->
        let e' = { e with Wire.ev_payload = Some p } in
        Txid.Tbl.replace rs.State.rs_local ev.Wire.ev_txid e';
        e'
    | Some p0, Some p ->
        let e' = { e with Wire.ev_payload = Some (Payloads.merge_payloads p0 p) } in
        Txid.Tbl.replace rs.State.rs_local ev.Wire.ev_txid e';
        e'
    | _ -> e
  in
  let s = e.Wire.ev_saw and s' = ev.Wire.ev_saw in
  s.Wire.saw_lock <- s.Wire.saw_lock || s'.Wire.saw_lock;
  s.Wire.saw_commit_backup <- s.Wire.saw_commit_backup || s'.Wire.saw_commit_backup;
  s.Wire.saw_commit_primary <- s.Wire.saw_commit_primary || s'.Wire.saw_commit_primary;
  s.Wire.saw_abort <- s.Wire.saw_abort || s'.Wire.saw_abort;
  s.Wire.saw_commit_recovery <- s.Wire.saw_commit_recovery || s'.Wire.saw_commit_recovery;
  s.Wire.saw_abort_recovery <- s.Wire.saw_abort_recovery || s'.Wire.saw_abort_recovery;
  e

let region_txs rs rid =
  match Hashtbl.find_opt rs.State.rs_region_txs rid with
  | Some s -> s
  | None ->
      let s = ref Txid.Set.empty in
      Hashtbl.replace rs.State.rs_region_txs rid s;
      s

let backup_has rs ~rid ~backup =
  match Hashtbl.find_opt rs.State.rs_backup_has (rid, backup) with
  | Some s -> s
  | None ->
      let s = ref Txid.Set.empty in
      Hashtbl.replace rs.State.rs_backup_has (rid, backup) s;
      s

(* {1 Voting rules (§5.3 step 6)} *)

let vote_tag = function
  | Wire.Vote_commit_primary -> 0
  | Wire.Vote_commit_backup -> 1
  | Wire.Vote_lock -> 2
  | Wire.Vote_abort -> 3
  | Wire.Vote_truncated -> 4
  | Wire.Vote_unknown -> 5

let vote_from_evidence (ev : Wire.tx_evidence) =
  let s = ev.Wire.ev_saw in
  if s.Wire.saw_commit_primary || s.Wire.saw_commit_recovery then Wire.Vote_commit_primary
  else if s.Wire.saw_commit_backup && not s.Wire.saw_abort_recovery then Wire.Vote_commit_backup
  else if s.Wire.saw_lock && not s.Wire.saw_abort_recovery then Wire.Vote_lock
  else Wire.Vote_abort

(* {1 Recovery-coordinator side (steps 6-7)} *)

let coordinator_for st txid =
  if Config.is_member st.State.config txid.Txid.machine then txid.Txid.machine
  else Config.recovery_coordinator st.State.config txid

(* Push a decided outcome to every replica of every written region, then
   truncate (§5.3 step 7). Retries until every replica acknowledges,
   re-resolving the replica sets through the CM each round: a replica
   unreachable right now — plausibly behind the very partition that made
   recovery necessary — would keep its locks past the heal, with no later
   drain to release them. The handlers are idempotent, so re-delivery to an
   already-acked replica is harmless; evicted machines drop out of the
   mapping. [rc_pushing] keeps re-sent votes from piling up loops. *)
let push_decision st (rc : State.rec_coord) outcome =
  if not rc.State.rc_pushing then begin
    rc.State.rc_pushing <- true;
    let txid = rc.State.rc_txid in
    let cfg = st.State.config.Config.id in
    let msg =
      match outcome with
      | State.Committed -> Wire.Commit_recovery { cfg; txid }
      | State.Aborted -> Wire.Abort_recovery { cfg; txid }
    in
    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
        Fun.protect
          ~finally:(fun () -> rc.State.rc_pushing <- false)
          (fun () ->
            let rec push () =
              Proc.check_cancelled ();
              if st.State.alive then begin
                let targets =
                  List.sort_uniq compare
                    (List.concat_map
                       (fun rid ->
                         match Txn.ensure_mapping st rid ~retries:10 with
                         | Some info -> info.Wire.primary :: info.Wire.backups
                         | None -> [])
                       rc.State.rc_regions)
                in
                let all_acked = ref (targets <> []) in
                Comms.par_iter st
                  (List.map
                     (fun m () ->
                       match Comms.call st ~dst:m ~timeout:(Time.ms 10) msg with
                       | Ok _ -> ()
                       | Error _ -> all_acked := false)
                     targets);
                if !all_acked then
                  List.iter
                    (fun m ->
                      Comms.send st ~dst:m (Wire.Truncate_recovery { cfg; txid }))
                    targets
                else begin
                  Proc.sleep (Time.ms 1);
                  push ()
                end
              end
            in
            push ()))
  end

(* Decide (§5.3 step 7). *)
let decide st (rc : State.rec_coord) outcome =
  if not rc.State.rc_decided then begin
    rc.State.rc_decided <- true;
    let txid = rc.State.rc_txid in
    Txid.Tbl.replace st.State.recovered_outcomes txid outcome;
    Stats.Counter.incr st.State.metrics.recovered_txs;
    let dur = Time.sub (State.now st) rc.State.rc_created in
    Farm_obs.Obs.record_stage st.State.obs Farm_obs.Obs.S_decide dur;
    Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_rec_decide;
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_rec_decide
      ~a:(match outcome with State.Committed -> 1 | State.Aborted -> 0)
      ~b:(Time.to_ns dur) ~c:0;
    (match Txid.Tbl.find_opt st.State.active_txs txid with
    | Some lt -> Ivar.fill_if_empty lt.State.lt_outcome outcome
    | None -> ());
    push_decision st rc outcome
  end

let try_decide st (rc : State.rec_coord) =
  if not rc.State.rc_decided && rc.State.rc_regions <> [] then begin
    let vote_of r = List.assoc_opt r rc.State.rc_votes in
    let votes = List.map vote_of rc.State.rc_regions in
    if List.exists (fun v -> v = Some Wire.Vote_commit_primary) votes then
      decide st rc State.Committed
    else if List.for_all Option.is_some votes then begin
      let vs = List.filter_map Fun.id votes in
      let commit =
        List.exists (fun v -> v = Wire.Vote_commit_backup) vs
        && List.for_all
             (fun v ->
               match v with
               | Wire.Vote_lock | Wire.Vote_commit_backup | Wire.Vote_truncated -> true
               | Wire.Vote_commit_primary | Wire.Vote_abort | Wire.Vote_unknown -> false)
             vs
      in
      decide st rc (if commit then State.Committed else State.Aborted)
    end
  end

(* The coordinator requests votes from primaries that stay silent past the
   vote timeout (250 us), repeatedly until the transaction is decided. *)
let start_vote_requester st (rc : State.rec_coord) =
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      let rec loop () =
        Proc.sleep st.State.params.Params.vote_timeout;
        Proc.check_cancelled ();
        if not rc.State.rc_decided then begin
          let cfg = st.State.config.Config.id in
          List.iter
            (fun rid ->
              if not (List.mem_assoc rid rc.State.rc_votes) then
                match State.region_info st rid with
                | Some info ->
                    Comms.send st ~dst:info.Wire.primary
                      (Wire.Request_vote { cfg; rid; txid = rc.State.rc_txid })
                | None -> ())
            rc.State.rc_regions;
          loop ()
        end
      in
      loop ())

let rec_coord_of st txid ~regions =
  match Txid.Tbl.find_opt st.State.rec_coords txid with
  | Some rc ->
      if rc.State.rc_regions = [] && regions <> [] then rc.State.rc_regions <- regions;
      rc
  | None ->
      let rc =
        {
          State.rc_txid = txid;
          rc_votes = [];
          rc_regions = regions;
          rc_decided = false;
          rc_pushing = false;
          rc_created = State.now st;
        }
      in
      Txid.Tbl.replace st.State.rec_coords txid rc;
      start_vote_requester st rc;
      rc

(* A live coordinator hitting a failed log append decides the transaction
   itself instead of collecting votes: it owns the outcome until it fails
   (abort before the commit point, commit once every COMMIT-BACKUP record is
   acked), and pre-drain votes would be under-informed — a primary's
   resident log cannot see COMMIT-BACKUP records held by its backups. The
   decision enters the same push/retransmit machinery as a voted one. *)
let coordinator_decide st txid ~regions outcome =
  let rc = rec_coord_of st txid ~regions in
  if not rc.State.rc_decided then decide st rc outcome

let on_vote st ~cfg ~rid ~txid ~regions ~vote =
  if cfg = st.State.config.Config.id then begin
    Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_rec_vote;
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_rec_vote ~a:rid ~b:(vote_tag vote)
      ~c:0;
    let rc = rec_coord_of st txid ~regions in
    if rc.State.rc_decided then begin
      (* primaries re-send votes until they see the decision, so a vote for
         an already-decided transaction means the voter missed the push (it
         was unreachable then): the vote doubles as a retransmit request *)
      match Txid.Tbl.find_opt st.State.recovered_outcomes txid with
      | Some outcome -> push_decision st rc outcome
      | None -> ()
    end
    else begin
      if not (List.mem_assoc rid rc.State.rc_votes) then
        rc.State.rc_votes <- (rid, vote) :: rc.State.rc_votes;
      try_decide st rc
    end
  end

(* {1 Primary side (steps 3-6)} *)

let maybe_regions_active st (rs : State.recovery_state) =
  if not rs.State.rs_regions_active_sent then begin
    let all_active =
      Hashtbl.fold
        (fun _ (rep : State.replica) acc ->
          acc && ((not (rep.State.role = State.Primary)) || rep.State.active))
        st.State.nv.replicas true
    in
    if all_active then begin
      rs.State.rs_regions_active_sent <- true;
      Comms.send st ~dst:st.State.config.Config.cm
        (Wire.Regions_active { cfg = rs.State.rs_cfg })
    end
  end

let on_need_recovery st ~src ~reply ~cfg ~rid ~txs =
  match st.State.recovery with
  | Some rs when rs.State.rs_cfg = cfg ->
      List.iter
        (fun (ev : Wire.tx_evidence) ->
          ignore (merge_evidence rs ev);
          let s = region_txs rs rid in
          s := Txid.Set.add ev.Wire.ev_txid !s;
          if ev.Wire.ev_payload <> None then begin
            let h = backup_has rs ~rid ~backup:src in
            h := Txid.Set.add ev.Wire.ev_txid !h
          end)
        txs;
      let seen =
        match Hashtbl.find_opt rs.State.rs_need_recovery rid with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace rs.State.rs_need_recovery rid l;
            l
      in
      if not (List.mem src !seen) then seen := src :: !seen;
      Comms.reply_to reply Wire.Ack
  | _ ->
      (* not in this configuration (yet): no ack — the backup retries until
         this machine's configuration catches up *)
      ()

(* Apply one recovered write at its region's replica here, if primary.
   Idempotent: the decision push re-sends COMMIT-RECOVERY every round until
   all replicas ack, so the same item can arrive several times. *)
let apply_recovered_write st (w : Wire.write_item) =
  match State.replica st w.Wire.addr.Addr.region with
  | Some rep when rep.State.role = State.Primary ->
      let applied = Objmem.apply_write rep w in
      (* snapshot protocol: LOCK-record evidence predates timestamp
         assignment (ts 0), so the install synthesized a timestamp.
         Snapshots that straddle it could be answered wrongly — raise the
         chain floor past every read timestamp drawn so far; those readers
         retry at a fresh one. *)
      if w.Wire.ts = 0 then
        (match rep.State.vc with
        | Some vc -> Verchain.raise_floor vc (Clock.hi st.State.clock + 1)
        | None -> ());
      if applied && w.Wire.alloc_op = Wire.Alloc_clear then
        Allocmgr.release_slot st rep ~off:w.Wire.addr.Addr.offset
  | _ -> ()

(* Lock recovery, log-record replication, and voting for one region this
   machine is primary of (§5.3 steps 4-6). *)
let primary_recover_region st (rs : State.recovery_state) rid =
  let t0 = State.now st in
  let cfg = rs.State.rs_cfg in
  let rep = State.replica_exn st rid in
  let backups_of () =
    match State.region_info st rid with Some i -> i.Wire.backups | None -> []
  in
  (* wait for NEED-RECOVERY from every backup of the new configuration *)
  let rec wait_backups () =
    Proc.check_cancelled ();
    if st.State.config.Config.id <> cfg then ()
    else begin
      let heard =
        match Hashtbl.find_opt rs.State.rs_need_recovery rid with Some l -> !l | None -> []
      in
      if List.for_all (fun b -> List.mem b heard) (backups_of ()) then ()
      else begin
        Proc.sleep (Time.us 100);
        wait_backups ()
      end
    end
  in
  wait_backups ();
  if st.State.config.Config.id = cfg then begin
    let txs = !(region_txs rs rid) in
    (* 4. lock every object modified by a recovering transaction *)
    Txid.Set.iter
      (fun txid ->
        Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_recovery_per_tx;
        (* a decision reached through another written region can land during
           the yield above: its COMMIT/ABORT-RECOVERY already released this
           transaction, so locking now would leak *)
        match Txid.Tbl.find_opt st.State.recovered_outcomes txid with
        | Some State.Committed -> (
            (* the decision outran the promotion: its push recorded the
               outcome while this machine was still a backup, which applies
               nothing. Apply here, before the region goes active — leaving
               it to the next push round would serve the object's
               pre-commit version, unlocked, to new transactions *)
            match (Txid.Tbl.find_opt rs.State.rs_local txid : Wire.tx_evidence option) with
            | Some { ev_payload = Some p; _ } ->
                List.iter
                  (fun (w : Wire.write_item) ->
                    if w.Wire.addr.Addr.region = rid then apply_recovered_write st w)
                  p.Wire.writes
            | Some _ | None -> ())
        | Some State.Aborted -> ()
        | None -> (
        match (Txid.Tbl.find_opt rs.State.rs_local txid : Wire.tx_evidence option) with
        | Some { ev_payload = Some p; _ } ->
            let held =
              List.filter
                (fun (w : Wire.write_item) ->
                  w.Wire.addr.Addr.region = rid && Objmem.recovery_lock rep w)
                p.Wire.writes
            in
            if held <> [] then begin
              let prev =
                match Txid.Tbl.find_opt st.State.locks_held txid with
                | Some l -> l
                | None -> []
              in
              let fresh =
                List.filter
                  (fun (w : Wire.write_item) ->
                    not
                      (List.exists
                         (fun (p : Wire.write_item) -> Addr.equal p.Wire.addr w.Wire.addr)
                         prev))
                  held
              in
              Txid.Tbl.replace st.State.locks_held txid (fresh @ prev)
            end
        | Some _ | None -> ()))
      txs;
    (* the region becomes active: transactions can use it again, in
       parallel with the rest of recovery *)
    State.set_active rep;
    let dur = Time.sub (State.now st) t0 in
    Farm_obs.Obs.record_stage st.State.obs Farm_obs.Obs.S_region_active dur;
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_rec_region_active ~a:rid
      ~b:(Time.to_ns dur) ~c:0;
    maybe_regions_active st rs;
    (* 5. replicate lock records to backups that miss them *)
    Txid.Set.iter
      (fun txid ->
        match (Txid.Tbl.find_opt rs.State.rs_local txid : Wire.tx_evidence option) with
        | Some { ev_payload = Some p; _ } ->
            let missing =
              List.filter
                (fun b -> not (Txid.Set.mem txid !(backup_has rs ~rid ~backup:b)))
                (backups_of ())
            in
            Comms.par_iter st
              (List.map
                 (fun b () ->
                   ignore
                     (Comms.call st ~dst:b ~timeout:(Time.ms 10)
                        (Wire.Replicate_tx_state { cfg; rid; txid; lock = p })))
                 missing)
        | Some _ | None -> ())
      txs;
    (* 6. vote — re-sent until the decision arrives: a vote can land while
       its recipient is still committing the new configuration (and be
       rejected as stale), and when the original coordinator is dead the
       consistent-hash replacement only learns of the transaction from the
       votes themselves. *)
    let send_votes () =
      Txid.Set.fold
        (fun txid pending ->
          if Txid.Tbl.mem st.State.recovered_outcomes txid then pending
          else
            match Txid.Tbl.find_opt rs.State.rs_local txid with
            | Some ev ->
                let vote = vote_from_evidence ev in
                let coord = coordinator_for st txid in
                Comms.send st ~dst:coord
                  (Wire.Recovery_vote
                     { cfg; rid; txid; regions = ev.Wire.ev_regions; vote });
                pending + 1
            | None -> pending)
        txs 0
    in
    ignore (send_votes ());
    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
        let rec loop () =
          Proc.sleep (Time.ms 1);
          Proc.check_cancelled ();
          if st.State.config.Config.id = cfg && send_votes () > 0 then loop ()
        in
        loop ())
  end

(* {1 Drain and entry point (step 2)} *)

let is_recovering_live st cfg (lt : State.tx_live) =
  lt.State.lt_txid.Txid.config < cfg
  && (List.exists
        (fun rid ->
          match State.region_info st rid with
          | Some i -> i.Wire.last_replica_change > lt.State.lt_txid.Txid.config
          | None -> true)
        lt.State.lt_written_regions
     || List.exists
          (fun rid ->
            match State.region_info st rid with
            | Some i -> i.Wire.last_primary_change > lt.State.lt_txid.Txid.config
            | None -> true)
          lt.State.lt_read_regions)

let run st (rs : State.recovery_state) =
  let t0 = State.now st in
  let cfg = rs.State.rs_cfg in
  (* 2. Drain: wait for every in-flight (non-blocked) record processor to
     finish, then examine all resident records for recovering-transaction
     evidence. NICs ack writes regardless of configuration, so this is the
     only way to guarantee every relevant record is seen. *)
  let rec wait_quiesce () =
    Proc.check_cancelled ();
    if st.State.inflight - st.State.inflight_blocked > 0 then begin
      Proc.sleep (Time.us 20);
      wait_quiesce ()
    end
  in
  wait_quiesce ();
  if st.State.config.Config.id = cfg then begin
    Cpu.exec st.State.cpu ~cost:(Time.us 50);
    Hashtbl.iter
      (fun _ log ->
        Ringlog.iter_resident log (fun txid records ->
            let regions =
              List.concat_map (fun r -> Logproc.regions_of_record r) records
              |> List.sort_uniq compare
            in
            if Logproc.is_recovering st txid ~regions_written:regions then
              List.iter (fun r -> Logproc.record_evidence st txid r) records))
      st.State.nv.logs_in;
    st.State.last_drained <- cfg;
    rs.State.rs_drained <- true;
    let dur = Time.sub (State.now st) t0 in
    Farm_obs.Obs.record_stage st.State.obs Farm_obs.Obs.S_drain dur;
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_rec_drain ~a:cfg ~b:(Time.to_ns dur)
      ~c:0;
    (* 3a. register local evidence with the regions it affects *)
    Txid.Tbl.iter
      (fun txid (ev : Wire.tx_evidence) ->
        List.iter
          (fun rid ->
            match State.replica st rid with
            | Some rep when rep.State.role = State.Primary ->
                let s = region_txs rs rid in
                s := Txid.Set.add txid !s
            | _ -> ())
          ev.Wire.ev_regions)
      rs.State.rs_local;
    (* coordinator side: in-flight transactions that became recovering stop
       accepting completions and wait for the vote outcome *)
    Txid.Tbl.iter
      (fun txid (lt : State.tx_live) ->
        if (not lt.State.lt_recovering) && is_recovering_live st cfg lt then begin
          lt.State.lt_recovering <- true;
          ignore (rec_coord_of st txid ~regions:lt.State.lt_written_regions)
        end)
      st.State.active_txs;
    (* reset stale votes of still-undecided recovery coordinations *)
    Txid.Tbl.iter
      (fun _ (rc : State.rec_coord) -> if not rc.State.rc_decided then rc.State.rc_votes <- [])
      st.State.rec_coords;
    (* 3b. backups report recovering transactions to the (new) primaries —
       re-sent until acknowledged: the report can land while the primary is
       still committing the new configuration (and be dropped as stale),
       which would otherwise park its lock recovery forever *)
    Hashtbl.iter
      (fun rid (rep : State.replica) ->
        if rep.State.role = State.Backup then begin
          let txs =
            Txid.Tbl.fold
              (fun _ (ev : Wire.tx_evidence) acc ->
                if List.mem rid ev.Wire.ev_regions then ev :: acc else acc)
              rs.State.rs_local []
          in
          Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
              let rec loop () =
                Proc.check_cancelled ();
                if st.State.config.Config.id = cfg then
                  (* resolve through the CM each attempt: a just-assigned
                     backup may not have the region's mapping cached yet *)
                  match Txn.ensure_mapping st rid ~retries:5 with
                  | None ->
                      Proc.sleep (Time.us 200);
                      loop ()
                  | Some info -> (
                      match
                        Comms.call st ~dst:info.Wire.primary ~timeout:(Time.ms 1)
                          (Wire.Need_recovery { cfg; rid; txs })
                      with
                      | Ok _ -> ()
                      | Error _ ->
                          Proc.sleep (Time.us 200);
                          loop ())
              in
              loop ())
        end)
      st.State.nv.replicas;
    (* 4-6. per primary region, in parallel *)
    Hashtbl.iter
      (fun rid (rep : State.replica) ->
        if rep.State.role = State.Primary then
          Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
              primary_recover_region st rs rid))
      st.State.nv.replicas;
    maybe_regions_active st rs
  end

let on_config_commit st =
  let rs =
    {
      State.rs_cfg = st.State.config.Config.id;
      rs_drained = false;
      rs_local = Txid.Tbl.create 64;
      rs_need_recovery = Hashtbl.create 16;
      rs_region_txs = Hashtbl.create 16;
      rs_backup_has = Hashtbl.create 16;
      rs_regions_active_sent = false;
      rs_all_active = false;
    }
  in
  st.State.recovery <- Some rs;
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () -> run st rs)

(* {1 Replica-side handlers for recovery messages} *)

let on_replicate_tx_state st ~reply ~cfg ~rid ~txid ~lock =
  (match st.State.recovery with
  | Some rs when rs.State.rs_cfg = cfg ->
      let ev =
        merge_evidence rs
          {
            Wire.ev_txid = txid;
            ev_regions = lock.Wire.regions_written;
            ev_saw = Wire.saw_nothing ();
            ev_payload = Some lock;
          }
      in
      ev.Wire.ev_saw.Wire.saw_lock <- true;
      ignore rid
  | _ -> ());
  Comms.reply_to reply Wire.Ack

(* Evidence for [txid] synthesized from this machine's resident log
   records — the same merge a drain performs, on demand. A vote request can
   arrive without any drain having run (the coordinator's park watchdog
   starts recovery after a transient partition that heals without a
   configuration change); answering Vote_unknown while a COMMIT-PRIMARY
   record sits resident here would let the coordinator abort a transaction
   another region already applied. *)
let resident_evidence st (txid : Txid.t) =
  match Hashtbl.find_opt st.State.nv.State.logs_in txid.Txid.machine with
  | None -> None
  | Some log -> (
      match Ringlog.resident_records log txid with
      | [] -> None
      | records ->
          let ev =
            {
              Wire.ev_txid = txid;
              ev_regions = [];
              ev_saw = Wire.saw_nothing ();
              ev_payload = None;
            }
          in
          Some
            (List.fold_left
               (fun (ev : Wire.tx_evidence) (r : Wire.log_record) ->
                 let ev =
                   match (ev.Wire.ev_regions, Logproc.regions_of_record r) with
                   | [], (_ :: _ as regions) -> { ev with Wire.ev_regions = regions }
                   | _ -> ev
                 in
                 let ev =
                   match (ev.Wire.ev_payload, r.Wire.payload) with
                   | None, (Wire.Lock p | Wire.Commit_backup p) ->
                       { ev with Wire.ev_payload = Some p }
                   | Some p0, (Wire.Lock p | Wire.Commit_backup p) ->
                       { ev with Wire.ev_payload = Some (Payloads.merge_payloads p0 p) }
                   | _ -> ev
                 in
                 (match r.Wire.payload with
                 | Wire.Lock _ -> ev.Wire.ev_saw.Wire.saw_lock <- true
                 | Wire.Commit_backup _ -> ev.Wire.ev_saw.Wire.saw_commit_backup <- true
                 | Wire.Commit_primary _ -> ev.Wire.ev_saw.Wire.saw_commit_primary <- true
                 | Wire.Abort _ -> ev.Wire.ev_saw.Wire.saw_abort <- true
                 | Wire.Truncate_marker -> ());
                 ev)
               ev records))

let on_request_vote st ~src ~cfg ~rid ~txid =
  if cfg = st.State.config.Config.id then begin
    (* a decision already applied here outranks any log evidence: voting
       from the resident records after COMMIT/ABORT-RECOVERY was processed
       would let a second coordinator re-litigate a settled transaction *)
    match Txid.Tbl.find_opt st.State.recovered_outcomes txid with
    | Some outcome ->
        let vote =
          match outcome with
          | State.Committed -> Wire.Vote_commit_primary
          | State.Aborted -> Wire.Vote_abort
        in
        Comms.send st ~dst:src (Wire.Recovery_vote { cfg; rid; txid; regions = []; vote })
    | None ->
        let drained =
          match st.State.recovery with
          | Some rs -> Txid.Tbl.find_opt rs.State.rs_local txid
          | None -> None
        in
        let ev = match drained with Some _ -> drained | None -> resident_evidence st txid in
        let vote, regions =
          match ev with
          | Some ev -> (vote_from_evidence ev, ev.Wire.ev_regions)
          | None ->
              if State.is_truncated st txid then (Wire.Vote_truncated, [])
              else (Wire.Vote_unknown, [])
        in
        Comms.send st ~dst:src (Wire.Recovery_vote { cfg; rid; txid; regions; vote })
  end

let evidence_payload st txid =
  let drained =
    match st.State.recovery with
    | Some rs -> (
        match Txid.Tbl.find_opt rs.State.rs_local txid with
        | Some { Wire.ev_payload = Some p; _ } -> Some p
        | _ -> None)
    | None -> None
  in
  match drained with
  | Some _ -> drained
  | None -> (
      (* no drain merged evidence for this transaction (watchdog-initiated
         recovery without a configuration change): the resident records are
         the evidence *)
      match resident_evidence st txid with
      | Some { Wire.ev_payload = Some p; _ } -> Some p
      | Some _ | None -> None)

(* COMMIT-RECOVERY: like COMMIT-PRIMARY at a primary (apply in place),
   like COMMIT-BACKUP at a backup (just record it). *)
let on_commit_recovery st ~reply ~cfg:_ ~txid =
  Txid.Tbl.replace st.State.recovered_outcomes txid State.Committed;
  (match st.State.recovery with
  | Some rs -> (
      match Txid.Tbl.find_opt rs.State.rs_local txid with
      | Some ev -> ev.Wire.ev_saw.Wire.saw_commit_recovery <- true
      | None -> ())
  | None -> ());
  (match evidence_payload st txid with
  | Some p ->
      List.iter (apply_recovered_write st) p.Wire.writes;
      Txid.Tbl.remove st.State.locks_held txid
  | None -> ());
  Comms.reply_to reply Wire.Ack

let on_abort_recovery st ~reply ~cfg:_ ~txid =
  Txid.Tbl.replace st.State.recovered_outcomes txid State.Aborted;
  (match st.State.recovery with
  | Some rs -> (
      match Txid.Tbl.find_opt rs.State.rs_local txid with
      | Some ev -> ev.Wire.ev_saw.Wire.saw_abort_recovery <- true
      | None -> ())
  | None -> ());
  (* release exactly the locks this transaction holds here *)
  (match Txid.Tbl.find_opt st.State.locks_held txid with
  | Some writes ->
      List.iter
        (fun (w : Wire.write_item) ->
          match State.replica st w.Wire.addr.Addr.region with
          | Some rep -> Objmem.unlock rep w
          | None -> ())
        writes;
      Txid.Tbl.remove st.State.locks_held txid
  | None -> ());
  Comms.reply_to reply Wire.Ack

(* TRUNCATE-RECOVERY: backups apply the updates (like normal truncation),
   then everyone drops the transaction's records. *)
let on_truncate_recovery st ~cfg:_ ~txid =
  (match Txid.Tbl.find_opt st.State.recovered_outcomes txid with
  | Some State.Committed -> (
      match evidence_payload st txid with
      | Some p ->
          List.iter
            (fun (w : Wire.write_item) ->
              match State.replica st w.Wire.addr.Addr.region with
              | Some rep when rep.State.role = State.Backup ->
                  ignore (Objmem.apply_write rep w);
                  (* see on_commit_recovery: ts-less evidence invalidates
                     snapshots that straddle the synthesized timestamp *)
                  if w.Wire.ts = 0 then (
                    match rep.State.vc with
                    | Some vc -> Verchain.raise_floor vc (Clock.hi st.State.clock + 1)
                    | None -> ())
              | _ -> ())
            p.Wire.writes
      | None -> ())
  | Some State.Aborted | None -> ());
  (match Hashtbl.find_opt st.State.nv.logs_in txid.Txid.machine with
  | Some log -> ignore (Ringlog.truncate log st.State.engine txid)
  | None -> ());
  State.mark_truncated st txid

let on_fetch_tx_state st ~reply ~cfg ~rid ~txids =
  let states =
    match st.State.recovery with
    | Some rs when rs.State.rs_cfg = cfg ->
        List.filter_map
          (fun txid ->
            match Txid.Tbl.find_opt rs.State.rs_local txid with
            | Some { Wire.ev_payload = Some p; _ } -> Some (txid, p)
            | _ -> None)
          txids
    | _ -> []
  in
  Comms.reply_to reply (Wire.Send_tx_state { cfg; rid; states })
