open Farm_sim

(* Sender-owned ring-buffer transaction logs (§3).

   Each sender-receiver machine pair has one log, physically located in the
   receiver's non-volatile DRAM. The sender appends records with one-sided
   RDMA writes acknowledged by the receiver's NIC alone; the receiver's CPU
   later processes records, and truncation lazily frees space and lazily
   propagates the new head back to the sender.

   Space is accounted in bytes against [capacity]. Records are kept as
   typed values (plus their wire size) rather than serialized bytes; see
   DESIGN.md. Entries move through three states:
     reserved (sender)  ->  unprocessed (DMA'd)  ->  resident
   and leave the ring only at truncation (or, for markers and aborted
   transactions, when discarded after processing).

   Record processing is not serialized per log: the commit protocol itself
   orders the records that must be ordered (a COMMIT-PRIMARY is only
   written after the LOCK reply, so a transaction's LOCK is always fully
   processed before its later records arrive). The one cross-record hazard
   — a truncation overtaking the processing of the records it truncates —
   is handled by the receiver deferring truncations while the transaction
   still has unprocessed entries (see [pending_tx]). *)

type entry = { seq : int; size : int; record : Wire.log_record }

type t = {
  sender : int;
  receiver : int;
  capacity : int;
  unprocessed : (int, entry) Hashtbl.t;  (* seq -> entry, DMA'd not processed *)
  pending_tx : int Txid.Tbl.t;  (* txid -> unprocessed record count *)
  resident : entry list Txid.Tbl.t;  (* processed, awaiting truncation *)
  mutable used : int;  (* receiver-side truth: unprocessed + resident bytes *)
  mutable next_seq : int;
  mutable on_append : t -> entry -> unit;  (* receiver processing trigger *)
  (* sender-side state *)
  mutable reserved : int;
  mutable used_estimate : int;  (* sender's lazily-updated view of [used] *)
}

let create ~sender ~receiver ~capacity =
  {
    sender;
    receiver;
    capacity;
    unprocessed = Hashtbl.create 64;
    pending_tx = Txid.Tbl.create 64;
    resident = Txid.Tbl.create 64;
    used = 0;
    next_seq = 0;
    on_append = (fun _ _ -> ());
    reserved = 0;
    used_estimate = 0;
  }

let set_on_append t fn = t.on_append <- fn
let sender t = t.sender
let receiver t = t.receiver
let used t = t.used
let capacity t = t.capacity

let txid_of_record (r : Wire.log_record) =
  match r.payload with
  | Lock p | Commit_backup p -> Some p.txid
  | Commit_primary { txid; _ } -> Some txid
  | Abort txid -> Some txid
  | Truncate_marker -> None

(* {1 Sender side} *)

let free_estimate t = t.capacity - t.used_estimate - t.reserved

let reserve t n =
  if free_estimate t >= n then begin
    t.reserved <- t.reserved + n;
    true
  end
  else false

let unreserve t n =
  t.reserved <- t.reserved - n;
  if t.reserved < 0 then t.reserved <- 0

(* After a sender restarts, its reservations died with it and its head
   estimate is stale: resynchronize against the receiver-side truth. *)
let reset_sender_view t =
  t.reserved <- 0;
  t.used_estimate <- t.used

(* Called by the sender when it issues a reservation-backed write: the
   write will consume the space, so the estimate grows and the reservation
   shrinks. *)
let consume_reservation t n =
  unreserve t n;
  t.used_estimate <- t.used_estimate + n

(* {1 DMA (runs at the receiver-NIC write instant)} *)

(* The NIC accepts the write regardless of configuration; the sender
   reserved the space, so the ring never overflows. *)
let dma_append t record ~size =
  let e = { seq = t.next_seq; size; record } in
  t.next_seq <- t.next_seq + 1;
  t.used <- t.used + size;
  Hashtbl.replace t.unprocessed e.seq e;
  (match txid_of_record record with
  | Some txid ->
      let n = match Txid.Tbl.find_opt t.pending_tx txid with Some n -> n | None -> 0 in
      Txid.Tbl.replace t.pending_tx txid (n + 1)
  | None -> ());
  t.on_append t e

(* {1 Receiver side} *)

let pending_count t txid =
  match Txid.Tbl.find_opt t.pending_tx txid with Some n -> n | None -> 0

(* Mark an entry as no longer unprocessed (it was either retained or
   discarded by its processor). *)
let processed t (e : entry) =
  Hashtbl.remove t.unprocessed e.seq;
  match txid_of_record e.record with
  | Some txid ->
      let n = pending_count t txid in
      if n <= 1 then Txid.Tbl.remove t.pending_tx txid
      else Txid.Tbl.replace t.pending_tx txid (n - 1)
  | None -> ()

(* After the receiver CPU processes an entry it stays resident so that
   recovery can re-examine it until the coordinator truncates the
   transaction. *)
let retain t (e : entry) =
  processed t e;
  match txid_of_record e.record with
  | Some txid ->
      let existing = match Txid.Tbl.find_opt t.resident txid with Some l -> l | None -> [] in
      Txid.Tbl.replace t.resident txid (e :: existing)
  | None -> ()

let lazy_head_update = Time.us 50

let release_space t engine freed =
  t.used <- t.used - freed;
  Engine.schedule_in engine ~after:lazy_head_update (fun () ->
      t.used_estimate <- t.used_estimate - freed;
      if t.used_estimate < 0 then t.used_estimate <- 0)

(* Drop a processed entry without retaining it (markers, aborted
   transactions). *)
let discard t engine (e : entry) =
  processed t e;
  release_space t engine e.size

let resident_records t txid =
  match Txid.Tbl.find_opt t.resident txid with
  | Some l -> List.map (fun e -> e.record) l
  | None -> []

let unprocessed_records t =
  Hashtbl.fold (fun _ e acc -> e.record :: acc) t.unprocessed []

let iter_resident t fn =
  Txid.Tbl.iter (fun txid entries -> fn txid (List.map (fun e -> e.record) entries)) t.resident

(* Truncate a transaction: drop its resident records and free their space.
   The sender's head estimate is updated lazily. *)
let truncate t engine txid =
  match Txid.Tbl.find_opt t.resident txid with
  | None -> 0
  | Some entries ->
      Txid.Tbl.remove t.resident txid;
      let freed = List.fold_left (fun acc e -> acc + e.size) 0 entries in
      release_space t engine freed;
      List.length entries
