(** Per-replica version chains for the snapshot protocol.

    Region memory always holds the newest committed version of every
    object ({!Obj_layout}); this side structure archives the versions a
    snapshot read below the head's commit timestamp still needs. Nodes
    are pooled (values are reused byte buffers) so steady-state archiving
    allocates nothing — the PR 7 allocation budget applies to snapshot
    mode too — and old versions are truncated against the cluster
    low-watermark, below which no snapshot can ever read again. *)

type t

val create : floor:int -> t
(** [floor] is the timestamp below which history is absent: snapshot
    reads strictly below it must abort (retry at a fresh, higher
    read-timestamp). A replica that existed since the epoch starts at 0;
    a freshly re-replicated backup starts at its creation instant's
    clock bound. *)

val floor : t -> int
val raise_floor : t -> int -> unit

val head_ts : t -> off:int -> int
(** Commit timestamp of the version currently installed in region memory
    at [off]; 0 when never written under the snapshot protocol. *)

val set_head_ts : t -> off:int -> int -> unit

val archive : t -> off:int -> version:int -> ts:int -> allocated:bool -> Bytes.t -> unit
(** Record a superseded version. Inserts keep the chain sorted by
    version (newest first) and drop duplicates, so out-of-order
    applications at backups — where truncation order can invert per
    object — are safe. Copies the value into a pooled buffer. *)

val find : t -> off:int -> ts:int -> (int * Bytes.t * bool) option
(** Newest archived version with commit timestamp [<= ts]:
    [(version, value copy, allocated)]. [None] when the chain holds
    nothing that old (caller decides between "object did not exist yet"
    and "truncated" via {!floor}). *)

val trim : t -> wm:int -> int
(** Truncate history no snapshot at or above the watermark can read:
    per chain, keep every node with [ts >= wm] plus the newest older
    one, recycle the rest to the pool, and raise the floor to [wm].
    Returns the number of nodes recycled. No-op (0) when [wm <= floor]. *)

val nodes_live : t -> int
(** Archived (non-pooled) node count, for gauges and tests. *)
