open Farm_sim

(** Transaction execution phase (§3, §4).

    Reads go to primaries — one-sided RDMA when remote, local memory access
    otherwise — and record the version of every object they touch; writes
    (and allocations/frees) are buffered at the coordinator until
    {!Commit.commit}. *)

type abort_reason =
  | Conflict  (** lock or validation failure: a concurrent writer won *)
  | Not_allocated  (** the object was freed *)
  | Out_of_space
  | Failed  (** unresolvable machine failures; recovery aborted the tx *)
  | Explicit  (** the application called {!Api.abort} *)

val pp_abort : Format.formatter -> abort_reason -> unit

exception Abort of abort_reason

type read_entry = { r_version : int; r_value : bytes }

type write_entry = {
  w_version : int;
  mutable w_value : bytes;
  mutable w_alloc : Wire.alloc_op;
}

type t = {
  st : State.t;
  thread : int;
  t_started : Time.t;
  span : Farm_obs.Obs.Span.t;  (** opened at [t_started], in [P_execute] *)
  mutable reads : read_entry Addr.Map.t;
  mutable writes : write_entry Addr.Map.t;
  mutable allocated : (Addr.t * int) list;
  mutable finished : bool;
  mutable read_ts : int;
      (** snapshot protocol: read timestamp drawn at begin and registered
          in [State.read_ts_active]; -1 in the validate-at-commit
          baseline *)
}

val reason_index : abort_reason -> int
(** Stable tag, used for the abort-reason metrics array and the
    flight-recorder event argument. *)

val begin_tx : State.t -> thread:int -> t
(** Under the snapshot protocol, also draws the transaction's read
    timestamp (the local clock's lower bound) and registers it against
    the truncation watermark. *)

val release_read_ts : t -> unit
(** Drop the transaction's claim on its read timestamp once it settles
    (commit or abort). Idempotent; no-op in the baseline. *)

val read : t -> Addr.t -> len:int -> Bytes.t
(** Read [len] data bytes of an object. Atomic per object; successive
    reads return the same data; reads of objects written by this
    transaction return the buffered value. Raises {!Abort} on conflicts
    that cannot resolve, on freed objects, and on unrecoverable failures. *)

val write : t -> Addr.t -> Bytes.t -> unit
(** Buffer a write. The object's observed version (fetched if it was not
    read first) becomes the lock target at commit. *)

val alloc : t -> size:int -> ?near:Addr.t -> ?region:int -> unit -> Addr.t
(** Allocate an object. The slot is tentatively taken from the primary's
    slab free list during execution, but its allocation bit is only set at
    commit, so aborts and crashes leak nothing (§5.5). [near] places the
    object in the same region as an existing one (locality hint). *)

val free : t -> Addr.t -> unit
(** Free an object at commit. Freeing an object allocated by this same
    transaction cancels both operations. *)

val return_allocations : t -> unit
(** Return tentatively allocated slots after an abort. *)

val read_lockfree : State.t -> Addr.t -> len:int -> int * Bytes.t
(** Single-object lock-free read: returns (version, data). *)

(** {1 Internals shared with Commit and the harness} *)

val ensure_mapping : State.t -> int -> retries:int -> Wire.region_info option
(** Cached region-to-replicas mapping, fetched from the CM on miss. *)

val invalidate_mapping : State.t -> int -> unit

val read_versioned :
  ?span:Farm_obs.Obs.Span.t -> State.t -> addr:Addr.t -> len:int -> int * Bytes.t
(** Versioned read with retries across lock conflicts and
    reconfigurations. [span] lets the one-sided read claim its blame
    sub-intervals on the calling transaction's span. *)

val read_snapshot_versioned :
  ?span:Farm_obs.Obs.Span.t -> State.t -> addr:Addr.t -> len:int -> ts:int -> int * Bytes.t
(** Snapshot protocol: the newest version with commit timestamp [<= ts],
    served from the region head or the primary's version chain. Waits out
    locked heads; aborts [Conflict] when the chain was truncated past
    [ts]. *)
