open Farm_sim

(* Message dispatch and machine startup: the event loop of Figure 3's
   per-machine architecture, wiring the fabric's receive path to the
   protocol modules. *)

let dispatch st ~src ~reply (msg : Wire.message) =
  match msg with
  | Wire.Lock_reply { txid; ok; cfg = _; head_ts } -> (
      match Txid.Tbl.find_opt st.State.pending_lock txid with
      | Some lw ->
          let recovering =
            match Txid.Tbl.find_opt st.State.active_txs txid with
            | Some lt -> lt.State.lt_recovering
            | None -> false
          in
          (* coordinators ignore replies for recovering transactions *)
          if not recovering then begin
            lw.State.lw_awaiting <- lw.State.lw_awaiting - 1;
            if head_ts > lw.State.lw_max_ts then lw.State.lw_max_ts <- head_ts;
            if not ok then lw.State.lw_ok <- false;
            if lw.State.lw_awaiting <= 0 || not ok then Ivar.fill_if_empty lw.State.lw_done ()
          end
      | None -> ())
  | Wire.Validate_req { txid; items } ->
      Cpu.exec st.State.cpu
        ~cost:
          (Time.mul_int st.State.params.Params.cpu_validate_per_obj
             (max 1 (List.length items)));
      let ok =
        List.for_all
          (fun ((addr : Addr.t), version) ->
            match State.replica st addr.Addr.region with
            | Some rep when rep.State.role = State.Primary && rep.State.active ->
                Objmem.validate_version rep ~off:addr.Addr.offset ~version
            | _ -> false)
          items
      in
      Comms.reply_to reply (Wire.Validate_reply { txid; ok })
  | Wire.Validate_reply _ -> ()
  | Wire.Need_recovery { cfg; rid; txs } -> Recovery.on_need_recovery st ~src ~reply ~cfg ~rid ~txs
  | Wire.Fetch_tx_state { cfg; rid; txids } ->
      Recovery.on_fetch_tx_state st ~reply ~cfg ~rid ~txids
  | Wire.Send_tx_state _ -> ()
  | Wire.Replicate_tx_state { cfg; rid; txid; lock } ->
      Recovery.on_replicate_tx_state st ~reply ~cfg ~rid ~txid ~lock
  | Wire.Recovery_vote { cfg; rid; txid; regions; vote } ->
      Recovery.on_vote st ~cfg ~rid ~txid ~regions ~vote
  | Wire.Request_vote { cfg; rid; txid } -> Recovery.on_request_vote st ~src ~cfg ~rid ~txid
  | Wire.Commit_recovery { cfg; txid } -> Recovery.on_commit_recovery st ~reply ~cfg ~txid
  | Wire.Abort_recovery { cfg; txid } -> Recovery.on_abort_recovery st ~reply ~cfg ~txid
  | Wire.Truncate_recovery { cfg; txid } -> Recovery.on_truncate_recovery st ~cfg ~txid
  | Wire.Suspect_req { cfg; suspect } ->
      if cfg = st.State.config.Config.id then Cm.handle_suspicion st [ suspect ]
  | Wire.New_config { config; regions; cm_changed = _ } ->
      Membership.apply_new_config st config regions
  | Wire.New_config_ack { cfg } -> (
      match st.State.cm with
      | Some cm -> (
          match cm.State.ack_pending with
          | Some (c, remaining, done_) when c = cfg ->
              remaining := List.filter (fun m -> m <> src) !remaining;
              if !remaining = [] then Ivar.fill_if_empty done_ ()
          | Some _ | None -> ())
      | None -> ())
  | Wire.New_config_commit { cfg } ->
      if Membership.on_config_commit st ~cfg then Recovery.on_config_commit st
  | Wire.Regions_active _ -> Cm.on_regions_active st ~src
  | Wire.All_regions_active { cfg } ->
      if cfg = st.State.config.Config.id then Datarec.on_all_regions_active st
  | Wire.Region_recovered { rid; _ } -> Cm.on_region_recovered st ~rid
  | Wire.Lease_request _ | Wire.Lease_grant_and_request _ | Wire.Lease_grant _ ->
      (* handled on the lease fast path, never here *)
      ()
  | Wire.Alloc_region_req { locality } -> Cm.handle_alloc_region st ~reply ~locality
  | Wire.Alloc_region_reply _ -> ()
  | Wire.Prepare_region { info } -> Cm.handle_prepare_region st ~reply info
  | Wire.Prepare_region_ack _ -> ()
  | Wire.Commit_region { info } -> Cm.handle_commit_region st info
  | Wire.Fetch_mapping { rid } -> Cm.handle_fetch_mapping st ~reply ~rid
  | Wire.Mapping_reply _ -> ()
  | Wire.Block_header { rid; block; obj_size } -> (
      match State.replica st rid with
      | Some rep -> Hashtbl.replace rep.State.block_headers block obj_size
      | None -> ())
  | Wire.Block_headers_sync { rid; headers } -> (
      match State.replica st rid with
      | Some rep ->
          List.iter (fun (b, s) -> Hashtbl.replace rep.State.block_headers b s) headers
      | None -> ())
  | Wire.Alloc_obj_req { rid; size } -> (
      match State.replica st rid with
      | Some rep when rep.State.role = State.Primary && rep.State.active -> (
          match Allocmgr.alloc_obj_local st rep ~size with
          | Some (addr, version) ->
              Comms.reply_to reply (Wire.Alloc_obj_reply { addr = Some addr; version })
          | None -> Comms.reply_to reply (Wire.Alloc_obj_reply { addr = None; version = 0 }))
      | _ -> Comms.reply_to reply (Wire.Alloc_obj_reply { addr = None; version = 0 }))
  | Wire.Free_slot_hint { addr } -> (
      match State.replica st addr.Addr.region with
      | Some rep when rep.State.role = State.Primary ->
          Allocmgr.release_slot st rep ~off:addr.Addr.offset
      | _ -> ())
  | Wire.Alloc_obj_reply _ -> ()
  | Wire.App_call { tag; args } ->
      let ok = match st.State.app_handler with Some f -> f ~tag ~args | None -> false in
      Comms.reply_to reply (Wire.App_reply { ok })
  | Wire.App_reply _ -> ()
  | Wire.Watermark_report { cfg; wm } ->
      (* CM side of chain truncation: remember the reporter's watermark and
         release the cluster minimum only once EVERY current member has
         reported — a machine that never reported may still host snapshot
         readers below everyone else's bound. 0 means "do not trim yet". *)
      let cluster_wm =
        if (not (State.is_cm st)) || cfg <> st.State.config.Config.id then 0
        else begin
          let cm = State.ensure_cm st in
          Hashtbl.replace cm.State.cm_wms src wm;
          List.fold_left
            (fun acc m ->
              if acc = 0 then 0
              else
                match Hashtbl.find_opt cm.State.cm_wms m with
                | Some w -> min acc w
                | None -> 0)
            max_int st.State.config.Config.members
        end
      in
      Comms.reply_to reply (Wire.Watermark_update { wm = (if cluster_wm = max_int then 0 else cluster_wm) })
  | Wire.Watermark_update _ -> ()
  | Wire.Ack | Wire.Nack -> ()

(* Receive path: lease traffic takes its dedicated fast path (§5.1); all
   other messages are charged the RPC receive cost on the machine's shared
   worker threads and dispatched in a fresh process. *)
let on_message st ~src ~reply msg =
  if st.State.alive then begin
    match msg with
    | Wire.Lease_request _ | Wire.Lease_grant_and_request _ | Wire.Lease_grant _ ->
        Lease.handle st ~src msg
    | _ ->
        Cpu.exec_bg ~ctx:st.State.ctx st.State.cpu
          ~cost:st.State.params.Params.net.Farm_net.Params.cpu_rpc_recv (fun () ->
            Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                dispatch st ~src ~reply msg))
  end

let start st =
  Hashtbl.iter (fun _ log -> Logproc.attach st log) st.State.nv.logs_in;
  Logio.start_flusher st;
  st.State.on_suspect <- (fun suspects -> Cm.handle_suspicion st suspects);
  Farm_net.Fabric.set_handler st.State.fabric st.State.id (fun ~src ~reply msg ->
      on_message st ~src ~reply msg);
  Lease.start st;
  (* Snapshot protocol: the watermark reporter. Every [wm_interval] the
     machine reports min(its active snapshot read timestamps, clock lower
     bound) to the CM and trims its version chains up to the cluster
     minimum the CM releases. Spawned only under the snapshot protocol, so
     the baseline's process schedule is untouched. *)
  if st.State.params.Params.protocol = Params.Snapshot then
    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
        let rec loop () =
          Proc.sleep st.State.params.Params.wm_interval;
          Proc.check_cancelled ();
          if st.State.alive then begin
            let wm = State.local_watermark st in
            let cfg = st.State.config.Config.id in
            (match
               Comms.call st ~dst:st.State.config.Config.cm ~timeout:(Time.ms 10)
                 (Wire.Watermark_report { cfg; wm })
             with
            | Ok (Wire.Watermark_update { wm }) when wm > 0 ->
                ignore (State.trim_chains st ~wm)
            | Ok _ | Error _ -> ());
            loop ()
          end
        in
        loop ());
  (* Park watchdog. A committing transaction that has made no progress for
     [park_timeout] — orders of magnitude past any normal round trip — lost
     a message to a transient partition (a LOCK reply dropped, say) that
     can heal without an eviction. No configuration change would ever
     classify it as recovering, so nobody would decide it and its locks
     would leak. The coordinator drives the vote/decide machinery itself;
     the decision fills [lt_outcome] and the parked commit defers to it. *)
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      let period = st.State.params.Params.park_timeout in
      let rec loop () =
        Proc.sleep period;
        Proc.check_cancelled ();
        if st.State.alive then begin
          let now = State.now st in
          Txid.Tbl.iter
            (fun txid (lt : State.tx_live) ->
              if
                (not lt.State.lt_recovering)
                && Time.to_ns (Time.sub now lt.State.lt_born) >= Time.to_ns period
              then begin
                lt.State.lt_recovering <- true;
                ignore
                  (Recovery.rec_coord_of st txid ~regions:lt.State.lt_written_regions)
              end)
            st.State.active_txs;
          loop ()
        end
      in
      loop ());
  if State.is_cm st then begin
    let cm = State.ensure_cm st in
    List.iter
      (fun m -> Hashtbl.replace cm.State.cm_leases m (State.now st))
      st.State.config.Config.members
  end
