open Farm_sim

(* Shared mutable state of one FaRM machine. All protocol modules
   (Commit, Logproc, Lease, Cm, Recovery, Datarec, Allocmgr) operate on
   this record; Node wires message dispatch; Cluster builds the fleet.

   State is split between:
   - process state, which dies with the machine (caches, pending tables,
     leases, configuration), and
   - NVRAM state ([nv]), owned by the cluster harness and surviving
     crashes: region replicas, block headers, and incoming ring logs. *)

type role = Primary | Backup

type replica = {
  rid : int;
  mem : Bytes.t;
  mutable role : role;
  mutable active : bool;  (* false while blocked for lock recovery (§5.3 step 1) *)
  mutable active_wait : unit Ivar.t;
  (* allocator metadata: block index -> object size; replicated in NVRAM *)
  block_headers : (int, int) Hashtbl.t;
  (* primary-only, volatile: object size -> free offsets (§5.5) *)
  free_lists : (int, int list ref) Hashtbl.t;
  (* membership mirror of all free lists: guarantees an offset is listed at
     most once even when an abort-return races the recovery scan *)
  free_set : (int, unit) Hashtbl.t;
  mutable next_free_block : int;
  mutable free_lists_valid : bool;  (* false on a new primary until scan *)
  mutable fresh_backup : bool;  (* zeroed replica awaiting data recovery *)
  (* snapshot protocol only: archived versions older than the region-memory
     head, plus the per-offset head commit timestamps. None in the
     validate-at-commit baseline, which carries zero chain overhead. *)
  vc : Verchain.t option;
}

type nvstate = {
  bank : Farm_nvram.Bank.t;
  replicas : (int, replica) Hashtbl.t;
  logs_in : (int, Ringlog.t) Hashtbl.t;  (* sender -> log stored here *)
}

(* Coordinator wait-states *)

type lock_wait = {
  mutable lw_awaiting : int;
  mutable lw_ok : bool;
  lw_done : unit Ivar.t;
  (* snapshot protocol: the largest head commit timestamp among the objects
     the LOCK replies locked — the coordinator's write timestamp must
     exceed every version it overwrites *)
  mutable lw_max_ts : int;
}

type outcome = Committed | Aborted

(* Coordinator record for a transaction in its commit phase; consulted by
   recovery when a configuration change makes the transaction recovering. *)
type tx_live = {
  lt_txid : Txid.t;
  lt_written_regions : int list;
  lt_read_regions : int list;
  lt_outcome : outcome Ivar.t;  (* filled by recovery if it takes over *)
  mutable lt_recovering : bool;
  lt_born : Time.t;  (* commit start, for the coordinator's park watchdog *)
}

(* Truncation tracking at a record receiver: per coordinator thread, a low
   bound plus the set of truncated local ids above it (§5.3 step 6). *)
type trunc_track = { mutable low : int; above : (int, unit) Hashtbl.t }

(* Recovery-coordinator state for one recovering transaction. *)
type rec_coord = {
  rc_txid : Txid.t;
  mutable rc_votes : (int * Wire.vote) list;  (* region -> vote *)
  mutable rc_regions : int list;  (* all written regions, from votes *)
  mutable rc_decided : bool;
  mutable rc_pushing : bool;  (* a decision-push loop is running *)
  rc_created : Time.t;
}

(* Per-configuration-change recovery state at each machine (§5.3). *)
type recovery_state = {
  rs_cfg : int;
  mutable rs_drained : bool;
  (* evidence about recovering transactions assembled from local logs *)
  rs_local : Wire.tx_evidence Txid.Tbl.t;
  (* per region this machine is (new) primary for: backups heard from *)
  rs_need_recovery : (int, int list ref) Hashtbl.t;
  (* per region: recovering transactions affecting it *)
  rs_region_txs : (int, Txid.Set.t ref) Hashtbl.t;
  (* which transactions each (region, backup) already holds a lock payload
     for — drives log-record replication (§5.3 step 5) *)
  rs_backup_has : (int * int, Txid.Set.t ref) Hashtbl.t;
  mutable rs_regions_active_sent : bool;
  mutable rs_all_active : bool;
}

type lease_impl = Rpc_shared | Ud_shared | Ud_thread | Ud_thread_pri

type lease_state = {
  mutable impl : lease_impl;
  mutable last_grant_from_cm : Time.t;  (* last grant from my grantor *)
  mutable expiry_events : int;  (* counts lease expiries observed (fig 16) *)
  mutable suspended_until : Time.t;  (* dedicated-thread preemption spikes *)
  mutable cm_suspected : bool;  (* latched until the next grant/config *)
  peer_leases : (int, Time.t) Hashtbl.t;
      (* grantor side for group leaders in the two-level hierarchy *)
  mutable grantor_messages : int;  (* lease messages handled as a grantor *)
}

(* CM-only state. *)
type cm_state = {
  mutable next_rid : int;
  (* authoritative region map *)
  owners : (int, Wire.region_info) Hashtbl.t;
  (* lease table: machine -> last renewal received *)
  cm_leases : (int, Time.t) Hashtbl.t;
  mutable regions_active_from : int list;
  mutable all_active_sent : bool;
  (* reconfiguration ack collection: (cfg, machines remaining, done) *)
  mutable ack_pending : (int * int list ref * unit Ivar.t) option;
  mutable pending_data_recovery : int;
  (* snapshot protocol: last watermark reported by each machine; the
     cluster minimum is released only once every member has reported *)
  cm_wms : (int, int) Hashtbl.t;
}

type metrics = {
  committed : Stats.Counter.t;
  aborted : Stats.Counter.t;
  abort_reasons : int array;  (* indexed by Txn.abort_reason tag *)
  commit_latency : Stats.Hist.t;  (* commit-phase latency, ns *)
  tx_latency : Stats.Hist.t;  (* full transaction latency, ns *)
  throughput : Stats.Series.t;  (* committed transactions per ms bin *)
  lockfree_reads : Stats.Counter.t;
  recovered_txs : Stats.Counter.t;
}

type commit_phase =
  | Before_lock
  | After_lock
  | After_validate
  | After_commit_backup
  | After_commit_primary
  | After_truncate

type t = {
  id : int;
  engine : Engine.t;
  rng : Rng.t;
  params : Params.t;
  fabric : Wire.message Farm_net.Fabric.t;
  zk : Config.t Farm_coord.Zk.t;
  cpu : Cpu.t;
  nv : nvstate;
  clock : Clock.handle;
      (* this machine's view of global time (bounded uncertainty); present
         in both modes so offset draws keep the rng streams aligned, but
         only the snapshot protocol ever reads it *)
  mutable ctx : Proc.Ctx.t;
  mutable alive : bool;
  mutable config : Config.t;
  mutable region_map : (int, Wire.region_info) Hashtbl.t;  (* cache *)
  mutable last_drained : int;
  mutable blocked : bool;  (* external client requests blocked *)
  (* restarted after a crash: must not resume membership in a configuration
     probed before the crash (failure and rejoin are both configuration
     changes, §5.2) *)
  mutable rejoining : bool;
  (* sender-side views of logs located at other machines *)
  logs_out : (int, Ringlog.t) Hashtbl.t;
  (* per incoming log: a poller is currently scheduled *)
  pollers : (int, bool ref) Hashtbl.t;
  (* allocator spill map: when a region fills up, this machine allocates a
     co-located overflow region through the CM and remembers it here *)
  spill : (int, int) Hashtbl.t;
  (* coordinator-side *)
  next_local : int array;  (* per-thread local tx sequence *)
  outstanding : (int, Txid.Set.t ref) Hashtbl.t;  (* thread -> not-yet-truncated *)
  pending_lock : lock_wait Txid.Tbl.t;
  active_txs : tx_live Txid.Tbl.t;
  (* snapshot protocol: read timestamps of transactions currently executing
     on this machine (ts -> holder count); their minimum caps the local
     truncation watermark *)
  read_ts_active : (int, int) Hashtbl.t;
  (* primary-side lock ownership: which written objects each transaction
     currently holds locks on at this machine. Unlocking anything not in
     this table would release another transaction's lock taken at the same
     version. *)
  locks_held : Wire.write_item list Txid.Tbl.t;
  (* per-commit scratch arenas (see Arena); workers acquire one per commit *)
  arena_pool : Arena.pool;
  (* truncation *)
  pending_trunc : (int, Txid.t list ref) Hashtbl.t;  (* dest machine -> txids *)
  truncated : (int, trunc_track) Hashtbl.t;  (* Txid.coord_id -> tracking *)
  (* log-record processing *)
  mutable inflight : int;  (* log entries currently being processed *)
  mutable inflight_blocked : int;  (* of which blocked on region activation *)
  deferred_trunc : (int, Txid.Set.t ref) Hashtbl.t;
      (* truncations received while the tx still had unprocessed records in
         the sender's log; keyed by sender machine *)
  (* recovery *)
  mutable recovery : recovery_state option;
  rec_coords : rec_coord Txid.Tbl.t;
  recovered_outcomes : outcome Txid.Tbl.t;  (* decided by recovery here *)
  lease : lease_state;
  mutable cm : cm_state option;
  mutable reconfig_active : bool;
  pending_suspects : (int, unit) Hashtbl.t;
  metrics : metrics;
  obs : Farm_obs.Obs.t;  (* per-machine observability sink *)
  (* the cluster's "memory bus": lets one-sided operations reach remote
     replicas without involving the remote CPU *)
  directory : (int, t) Hashtbl.t;
  (* wiring installed by Node to avoid module cycles *)
  mutable on_suspect : int list -> unit;  (* lease expiry -> reconfiguration *)
  (* application-registered handler for function-shipped operations *)
  mutable app_handler : (tag:int -> args:int array -> bool) option;
  (* test and tracing hooks *)
  mutable phase_hook : (commit_phase -> Txid.t -> unit) option;
  mutable trace : string -> unit;
}

let create_metrics () =
  {
    committed = Stats.Counter.create ();
    aborted = Stats.Counter.create ();
    abort_reasons = Array.make 8 0;
    commit_latency = Stats.Hist.create ();
    tx_latency = Stats.Hist.create ();
    throughput = Stats.Series.create ~bin:(Time.ms 1);
    lockfree_reads = Stats.Counter.create ();
    recovered_txs = Stats.Counter.create ();
  }

let create ~id ~engine ~rng ~params ~fabric ~zk ~cpu ~nv ~clock ~config ~directory ~obs =
  {
    id;
    engine;
    rng;
    params;
    fabric;
    zk;
    cpu;
    nv;
    clock;
    ctx = Proc.Ctx.create ~name:(Printf.sprintf "m%d" id) ();
    alive = true;
    config;
    region_map = Hashtbl.create 64;
    last_drained = 0;
    blocked = false;
    rejoining = false;
    logs_out = Hashtbl.create 16;
    pollers = Hashtbl.create 16;
    spill = Hashtbl.create 16;
    next_local = Array.make params.Params.threads_per_machine 0;
    outstanding = Hashtbl.create 8;
    pending_lock = Txid.Tbl.create 64;
    active_txs = Txid.Tbl.create 64;
    read_ts_active = Hashtbl.create 64;
    locks_held = Txid.Tbl.create 64;
    arena_pool = Arena.create_pool ~reuse:params.Params.arena_reuse;
    pending_trunc = Hashtbl.create 16;
    truncated = Hashtbl.create 64;
    inflight = 0;
    inflight_blocked = 0;
    deferred_trunc = Hashtbl.create 16;
    recovery = None;
    rec_coords = Txid.Tbl.create 16;
    recovered_outcomes = Txid.Tbl.create 64;
    lease =
      {
        impl = Ud_thread_pri;
        last_grant_from_cm = Time.zero;
        expiry_events = 0;
        suspended_until = Time.zero;
        cm_suspected = false;
        peer_leases = Hashtbl.create 8;
        grantor_messages = 0;
      };
    cm = None;
    reconfig_active = false;
    pending_suspects = Hashtbl.create 8;
    metrics = create_metrics ();
    obs;
    directory;
    on_suspect = (fun _ -> ());
    app_handler = None;
    phase_hook = None;
    trace = (fun _ -> ());
  }

let peer st id = Hashtbl.find_opt st.directory id

let now st = Engine.now st.engine
let is_cm st = st.config.Config.cm = st.id

let ensure_cm st =
  match st.cm with
  | Some c -> c
  | None ->
      let c =
        {
          next_rid = 1;
          owners = Hashtbl.create 64;
          cm_leases = Hashtbl.create 16;
          regions_active_from = [];
          all_active_sent = false;
          ack_pending = None;
          pending_data_recovery = 0;
          cm_wms = Hashtbl.create 16;
        }
      in
      st.cm <- Some c;
      c

(* {1 Region lookups} *)

let region_info st rid = Hashtbl.find_opt st.region_map rid

let primary_of st rid =
  match region_info st rid with Some i -> Some i.Wire.primary | None -> None

let replica st rid = Hashtbl.find_opt st.nv.replicas rid

let replica_exn st rid =
  match replica st rid with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "machine %d has no replica of region %d" st.id rid)

(* Create (or find) the local replica record for a region, backed by a
   zeroed buffer in this machine's non-volatile DRAM. *)
let add_replica st ~rid ~role =
  match Hashtbl.find_opt st.nv.replicas rid with
  | Some r -> r
  | None ->
      let mem = Farm_nvram.Bank.alloc st.nv.bank ~key:rid ~size:st.params.Params.region_size in
      let vc =
        match st.params.Params.protocol with
        | Params.Validate_at_commit -> None
        | Params.Snapshot ->
            (* a replica created at time zero has the full (empty) history;
               one created later — a fresh backup, re-replicated from
               current heads — cannot serve snapshots older than its
               creation, so its chain floor starts above any read
               timestamp drawn before it existed *)
            let floor =
              if Time.to_ns (Engine.now st.engine) = 0 then 0 else Clock.hi st.clock + 1
            in
            Some (Verchain.create ~floor)
      in
      let r =
        {
          rid;
          mem;
          role;
          active = false;
          active_wait = Ivar.create ();
          block_headers = Hashtbl.create 16;
          free_lists = Hashtbl.create 8;
          free_set = Hashtbl.create 64;
          next_free_block = 0;
          free_lists_valid = true;
          fresh_backup = false;
          vc;
        }
      in
      Hashtbl.replace st.nv.replicas rid r;
      r

(* Block the caller until the region replica is active (lock recovery has
   finished, §5.3 step 4). *)
let await_active r = if r.active then () else Ivar.read r.active_wait

let set_active r =
  if not r.active then begin
    r.active <- true;
    Ivar.fill r.active_wait ()
  end

let set_inactive r =
  if r.active then begin
    r.active <- false;
    r.active_wait <- Ivar.create ()
  end

(* {1 Outgoing logs} *)

let log_to st dst =
  match Hashtbl.find_opt st.logs_out dst with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "machine %d has no log to %d" st.id dst)

(* {1 Transaction ids} *)

let fresh_txid st ~thread =
  let local = st.next_local.(thread) in
  st.next_local.(thread) <- local + 1;
  let txid = Txid.make ~config:st.config.Config.id ~machine:st.id ~thread ~local in
  let outs =
    match Hashtbl.find_opt st.outstanding thread with
    | Some s -> s
    | None ->
        let s = ref Txid.Set.empty in
        Hashtbl.replace st.outstanding thread s;
        s
  in
  outs := Txid.Set.add txid !outs;
  txid

(* The thread's low bound on non-truncated transaction ids, piggybacked on
   log records. *)
let low_bound st ~thread =
  match Hashtbl.find_opt st.outstanding thread with
  | None -> st.next_local.(thread)
  | Some s ->
      if Txid.Set.is_empty !s then st.next_local.(thread)
      else (Txid.Set.min_elt !s).Txid.local

let forget_outstanding st txid =
  match Hashtbl.find_opt st.outstanding txid.Txid.thread with
  | Some s -> s := Txid.Set.remove txid !s
  | None -> ()

(* {1 Truncation tracking at receivers} *)

let trunc_track st ~coord =
  match Hashtbl.find_opt st.truncated coord with
  | Some t -> t
  | None ->
      let t = { low = 0; above = Hashtbl.create 16 } in
      Hashtbl.replace st.truncated coord t;
      t

let mark_truncated st txid =
  let t = trunc_track st ~coord:(Txid.coord_id txid) in
  if txid.Txid.local >= t.low then Hashtbl.replace t.above txid.Txid.local ()

let update_low_bound st ~coord low =
  let t = trunc_track st ~coord in
  if low > t.low then begin
    t.low <- low;
    Hashtbl.iter (fun l () -> if l < low then Hashtbl.remove t.above l) (Hashtbl.copy t.above)
  end

let is_truncated st txid =
  let t = trunc_track st ~coord:(Txid.coord_id txid) in
  txid.Txid.local < t.low || Hashtbl.mem t.above txid.Txid.local

(* {1 Pending truncations at the coordinator} *)

let queue_truncation st ~dst txid =
  let q =
    match Hashtbl.find_opt st.pending_trunc dst with
    | Some q -> q
    | None ->
        let q = ref [] in
        Hashtbl.replace st.pending_trunc dst q;
        q
  in
  q := txid :: !q

let take_truncations st ~dst =
  match Hashtbl.find_opt st.pending_trunc dst with
  | None -> []
  | Some q ->
      let l = !q in
      q := [];
      l

let record_commit st ~latency =
  Stats.Counter.incr st.metrics.committed;
  Stats.Hist.record st.metrics.commit_latency (Time.to_ns latency);
  Stats.Series.add st.metrics.throughput ~at:(now st) 1;
  Farm_obs.Obs.incr st.obs Farm_obs.Obs.C_tx_commit;
  Farm_obs.Obs.event st.obs Farm_obs.Obs.K_tx_commit ~a:0 ~b:0
    ~c:(Time.to_ns latency)

type abort_cause = Cause_lock | Cause_validate | Cause_timeout | Cause_other

let abort_cause_index = function
  | Cause_lock -> 0
  | Cause_validate -> 1
  | Cause_timeout -> 2
  | Cause_other -> 3

let abort_cause_name = function
  | Cause_lock -> "lock-refused"
  | Cause_validate -> "validate-failed"
  | Cause_timeout -> "timeout"
  | Cause_other -> "other"

let record_abort ?(reason = 0) ?cause st =
  Stats.Counter.incr st.metrics.aborted;
  Farm_obs.Obs.incr st.obs Farm_obs.Obs.C_tx_abort;
  let cause =
    match cause with
    | Some c -> c
    (* reason tag 3 is Txn.Failed — participant death / NIC give-up *)
    | None -> if reason = 3 then Cause_timeout else Cause_other
  in
  (match cause with
  | Cause_lock -> Farm_obs.Obs.incr st.obs Farm_obs.Obs.C_abort_lock_refused
  | Cause_validate -> Farm_obs.Obs.incr st.obs Farm_obs.Obs.C_abort_validate_failed
  | Cause_timeout -> Farm_obs.Obs.incr st.obs Farm_obs.Obs.C_abort_timeout
  | Cause_other -> ());
  Farm_obs.Obs.event st.obs Farm_obs.Obs.K_tx_abort ~a:reason
    ~b:(abort_cause_index cause) ~c:0

(* {1 Snapshot read timestamps and the truncation watermark} *)

let register_read_ts st ts =
  let n = match Hashtbl.find_opt st.read_ts_active ts with Some n -> n | None -> 0 in
  Hashtbl.replace st.read_ts_active ts (n + 1)

let release_read_ts st ts =
  match Hashtbl.find_opt st.read_ts_active ts with
  | Some 1 -> Hashtbl.remove st.read_ts_active ts
  | Some n -> Hashtbl.replace st.read_ts_active ts (n - 1)
  | None -> ()

let min_active_read_ts st =
  Hashtbl.fold
    (fun ts _ acc -> match acc with None -> Some ts | Some m -> Some (min ts m))
    st.read_ts_active None

(* The watermark this machine can safely contribute to the cluster minimum:
   no version at or above it may be truncated. Capped by the clock's lower
   bound because a transaction beginning here right now would draw exactly
   that read timestamp. *)
let local_watermark st =
  let lo = Clock.lo st.clock in
  match min_active_read_ts st with None -> lo | Some m -> min m lo

let trim_chains st ~wm =
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _ r ->
      match r.vc with
      | Some vc -> dropped := !dropped + Verchain.trim vc ~wm
      | None -> ())
    st.nv.replicas;
  if !dropped > 0 then Farm_obs.Obs.add st.obs Farm_obs.Obs.C_wm_trim !dropped;
  !dropped

let commit_phase_index = function
  | Before_lock -> 0
  | After_lock -> 1
  | After_validate -> 2
  | After_commit_backup -> 3
  | After_commit_primary -> 4
  | After_truncate -> 5

let phase st phase txid =
  Farm_obs.Obs.event st.obs Farm_obs.Obs.K_phase ~a:(commit_phase_index phase)
    ~b:txid.Txid.thread ~c:txid.Txid.local;
  match st.phase_hook with Some f -> f phase txid | None -> ()
