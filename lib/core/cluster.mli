open Farm_sim

(** The cluster harness: builds a complete FaRM instance — machines with
    CPUs and NICs on a shared fabric, per-pair ring logs in NVRAM, the
    Zookeeper-equivalent configuration store, and an initial configuration
    with machine 0 as CM — and provides failure injection and measurement
    hooks for tests and benchmarks. *)

type milestone = { tag : string; machine : int; at : Time.t }

type t = {
  engine : Engine.t;
  params : Params.t;
  rng : Rng.t;
  fabric : Wire.message Farm_net.Fabric.t;
  zk : Config.t Farm_coord.Zk.t;
  machines : State.t array;
  domain_of : int -> int;
  milestones : milestone list ref;
  mutable lost_regions : int list;  (** regions whose every replica died *)
}

val create :
  ?seed:int -> ?params:Params.t -> ?domains:(int -> int) -> machines:int -> unit -> t
(** Build a cluster. [domains] maps machines to failure domains (default:
    every machine its own domain). Deterministic in [seed]. *)

val machine : t -> int -> State.t
val n_machines : t -> int
val now : t -> Time.t

(** {1 Driving the simulation} *)

val run_until : t -> at:Time.t -> unit
val run_for : t -> d:Time.t -> unit

val run_on : t -> machine:int -> (State.t -> 'a) -> 'a
(** Run a function as a process on a machine and drive the engine until it
    returns; setup/audit convenience. *)

(** {1 Failure injection} *)

val kill : t -> int -> unit
(** Crash a machine: its processes stop and its NIC goes dark, but its
    non-volatile DRAM (regions, logs, block headers) survives. *)

val kill_domain : t -> int -> unit
(** Crash every machine of one failure domain (a rack/switch failure). *)

val kill_cm : t -> unit
val wipe_nvram : t -> int -> unit

val restart_machine : ?rejoining:bool -> t -> int -> config:Config.t -> State.t
(** Boot a dead machine's FaRM process again on top of its surviving
    NVRAM; volatile state is rebuilt from scratch. By default the machine
    comes back [rejoining]: it stays out of any configuration that lists it
    as a member (its probe word shows the new boot epoch, so the membership
    protocol evicts it — failure and rejoin are both configuration
    changes). [power_cycle] passes [~rejoining:false] because the boot-time
    configuration change already marks every region as changed. *)

val power_cycle : t -> unit
(** Full-cluster power failure and restart (§5 durability): kill every
    machine, reboot all of them from NVRAM, advance the configuration, and
    run the standard drain/vote/decide recovery over every transaction that
    was in flight. Committed state survives; in-doubt transactions resolve
    per the §5.3 rules. *)

val partition : t -> group:int -> int list -> unit

val heal : t -> unit
(** Undo every network fault (partitions and per-link delay/loss). Dead
    machines stay dead; evicted machines stay evicted. *)

val current_config : t -> Config.t option
(** The newest configuration committed by any alive machine. Alive
    non-members are evicted zombies whose state is stale. *)

val quiesce : ?max_wait:Time.t -> ?window:Time.t -> t -> bool
(** Drive the simulation until the cluster settles (no member
    reconfiguring or blocked, every recovery coordination decided, no new
    milestones for two windows); [false] if it fails to settle within
    [max_wait] — itself a liveness violation. Call {!heal} first if
    network faults are outstanding. *)

(** {1 Region management} *)

val alloc_region : ?locality:int -> ?from:int -> t -> Wire.region_info option
(** Allocate a region via the CM and drive the engine until the two-phase
    protocol completes. *)

val alloc_region_exn : ?locality:int -> ?from:int -> t -> Wire.region_info

(** {1 Introspection} *)

val milestones : t -> (string * int * Time.t) list
(** Recovery milestones (suspect, probe, zookeeper, new-config,
    config-commit, all-active, data-rec-start, region-recovered,
    data-rec-done, killed) in chronological order. *)

val milestone_time : t -> string -> Time.t option
(** First occurrence of a milestone tag. *)

val total_committed : t -> int
val total_aborted : t -> int

val throughput_series : t -> until:Time.t -> int array
(** Cluster-wide committed transactions per 1 ms bin. *)

val merged_latency : t -> Stats.Hist.t

val replicas_of : t -> int -> (int * State.replica) list
(** All replicas of a region across the cluster, dead machines included. *)

(** {1 Observability}

    Every machine carries a {!Farm_obs.Obs.t} sink (reachable as
    [(machine t i).State.obs]); counters, phase and stage histograms are
    always live, the flight-recorder event ring only while recording is
    enabled. The sink survives {!restart_machine}. *)

val set_recording : t -> bool -> unit
(** Enable/disable flight-recorder event capture on every machine. Does
    not perturb the simulation: recording never draws randomness or
    schedules work. *)

val merged_counters : t -> (string * int) list
(** Cluster-wide nonzero protocol-counter totals, in declaration order. *)

val merged_phase_hists : t -> (string * Stats.Hist.t) list
(** Commit-phase latency histograms (ns) of committed transactions, merged
    across machines; phases that never ran are omitted. *)

val merged_stage_hists : t -> (string * Stats.Hist.t) list
(** Recovery-stage timing histograms (ns), merged across machines. *)

val flight_dump : t -> string list
(** Every machine's flight-recorder ring merged into one time-sorted,
    rendered dump ([[%time] m<id> <event>] lines); empty when recording
    was never enabled. *)

val set_tracing : t -> bool -> unit
(** Enable/disable causal tracing ({!Farm_obs.Tracer}) on every machine.
    Like recording, tracing never perturbs the simulation: histories under
    seed replay are byte-identical with tracing on or off. *)

val trace_dump : t -> string
(** Every machine's span buffer merged into one Chrome trace-event JSON
    document (openable at ui.perfetto.dev): machines as processes, protocol
    roles as threads, cross-machine flow arrows for log records and RPCs.
    Byte-deterministic for a given seed. *)

(** {2 Latency blame, critical paths and heat}

    The automated latency-attribution layer (DESIGN.md §9). With blame
    armed, every transaction's end-to-end latency is partitioned exactly —
    to the nanosecond — into exclusive categories (admission queueing,
    execute CPU, lock wait, log-ring wait, NIC issue, propagation,
    completion poll, commit wait, deferred truncate); the slowest
    transactions keep exemplar spans that {!critpaths} joins with the
    tracer's flow arrows into cross-machine critical paths. All of it
    obeys the obs-spine rules: O(1) recording, allocation only off the hot
    path, and zero effect on the simulated history. *)

val set_blame : t -> bool -> unit
(** Arm/disarm blame attribution on every machine. Off by default: with
    blame off, spans carry no category array and the commit path allocates
    exactly as before. Arming starts a fresh attribution window (exact
    phase/blame accumulators, blame histograms and exemplars reset), so
    arm between transactions — after a bulk load, before the measured
    run. *)

val blame_totals : t -> (string * int) list
(** Cluster-wide exact ns totals per nonzero blame category, in category
    order. With blame armed, the sum over the non-[admission] categories
    equals the sum of {!phase_totals} over the same window. *)

val phase_totals : t -> (string * int) list
(** Cluster-wide exact ns totals per commit phase (the histogram-free
    accumulators backing {!merged_phase_hists}) — the reconciliation
    anchor for {!blame_totals}. *)

val merged_blame_hists : t -> (string * Stats.Hist.t) list
(** Per-category blame histograms (ns per committed transaction), merged
    across machines; categories never blamed are omitted. *)

type heat = { h_region : int; h_score : int; h_access : int; h_conflict : int }

val heat_report : t -> heat list
(** Decaying per-region access/conflict heat, merged across machines and
    sorted hottest first (score = accesses + 4 x conflicts, both decayed
    by halving per elapsed half-life). Always live, like counters. *)

val tail_blame : t -> (string * int) list
(** Blame ns summed over the kept exemplars only — each machine's slowest
    committed transactions — i.e. where the latency tail spends its time
    (admission is excluded by construction: it precedes the span). *)

val critpaths : t -> k:int -> string list
(** The top-[k] slowest committed transactions' cross-machine critical
    paths, rendered: a blame header plus every tx-tagged trace slice,
    critical hops starred. Needs {!set_blame} (exemplars) and
    {!set_tracing} (slices) both on during the run. *)

val trace_dump_critical : t -> k:int -> string
(** {!trace_dump} with the top-[k] exemplars' critical-path slices tagged
    [args.crit = 1] for Perfetto highlighting. *)

val start_sampling : ?interval:Time.t -> t -> until:Time.t -> unit
(** Start the timeline sampler on every machine with the standard gauge
    set — commits, aborts, one_sided_ops (cumulative deltas per interval),
    log_ring_bytes (level), cpu_busy_ns (cumulative) — sampling every
    [interval] (default 1 ms sim time) until the [until] horizon, after
    which the samplers stop and the engine can drain. Idempotent per
    machine while running. *)

val timeline_dump : t -> string
(** The sampled series of every machine merged (summed per timestamp bin)
    into one JSON document. Byte-deterministic for a given seed. *)

val abort_breakdown : t -> (string * int) list
(** Cluster-wide abort causes: [lock-refused], [validate-failed],
    [timeout], and the residue [other], summing to total aborts. *)

val pp_stats : Format.formatter -> t -> unit
(** Per-machine counters plus the merged phase/stage tables. *)
