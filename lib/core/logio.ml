open Farm_sim

(* Sender-side transaction-log writes (§4).

   Records are written to the receiver-located ring log with one-sided RDMA
   writes. Coordinators reserve space for all records of the commit
   protocol — including truncation entries — before starting to commit, so
   the protocol can always make progress; piggybacked truncations release
   the space of completed transactions lazily. *)

(* Per-transaction reservation allowance for its eventual truncation entry:
   16 bytes for the piggybacked id plus 8 bytes of marker slack. *)
let trunc_allowance = 24

let base_bytes payload = Wire.payload_bytes payload + 8

(* Trace slice for one acked log write, on the issuing worker's track,
   carrying the outgoing flow that its remote processing will close. *)
let trace_append st ~thread ~dst ~t0 payload =
  let tracer = Farm_obs.Obs.tracer st.State.obs in
  if Farm_obs.Tracer.enabled tracer then
    match Wire.payload_txid payload with
    | None ->
        Farm_obs.Tracer.slice tracer ~tid:thread ~step:Farm_obs.Tracer.T_log_append
          ~start:t0 ~arg:dst
    | Some (id : Txid.t) ->
        Farm_obs.Tracer.slice_flow tracer ~tid:thread ~step:Farm_obs.Tracer.T_log_append
          ~start:t0 ~arg:dst ~txm:id.Txid.machine ~txt:id.Txid.thread
          ~txl:id.Txid.local ~flow_in:0 ~flow_out:(Wire.record_flow payload ~dst)

(* Append a record, draining this machine's pending truncations for [dst]
   into its piggyback fields. Consumes reservation for the full record and
   releases the slack of each piggybacked truncation allowance. *)
let append st ~dst ~thread payload : (int, Farm_net.Fabric.error) result =
  let truncations = State.take_truncations st ~dst in
  let record =
    {
      Wire.payload;
      truncations;
      low_bound = State.low_bound st ~thread;
      cfg = st.State.config.Config.id;
    }
  in
  let log = State.log_to st dst in
  let size = Wire.record_bytes record in
  Ringlog.consume_reservation log size;
  Ringlog.unreserve log (8 * List.length truncations);
  let t0 = Time.to_ns (Engine.now st.State.engine) in
  match
    Farm_net.Fabric.one_sided_write st.State.fabric ~src:st.State.id ~dst ~bytes:size (fun () ->
        Ringlog.dma_append log record ~size)
  with
  | Ok () ->
      Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_append;
      Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_append ~a:dst ~b:size
        ~c:(Ringlog.used log);
      trace_append st ~thread ~dst ~t0 payload;
      (* The caller's own share of the consumed space: piggybacked
         truncation entries are paid for by the truncated transactions'
         allowances. *)
      Ok (size - (16 * List.length truncations))
  | Error e ->
      Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_append_fail;
      Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_append_fail ~a:dst ~b:size ~c:0;
      (* The destination is gone; requeue the truncations so another record
         (or the flusher) carries them once the configuration settles. *)
      List.iter (fun txid -> State.queue_truncation st ~dst txid) truncations;
      Error e

(* Append one record per destination as a single doorbell-batched verb
   group: pending truncations for every destination are drained under one
   preparation pass (reservations consumed, piggyback slack released), then
   all writes go out with one issue + per-op doorbells and one completion
   reap. [on_complete i r] fires at record [i]'s individual hardware-ack
   (or failure) instant — COMMIT-PRIMARY's first-ack hook.

   The batch is described by indexed accessors rather than a list so the
   commit path can stage it in its reused arena: [dst i] / [payload i] for
   [0 <= i < n]. [append_batch] below is the list veneer.

   With [doorbell_batching] off this degrades to the pre-batching pipeline:
   one full-cost one-sided write per record, issued by parallel processes,
   each paying its own issue and poll — the ablation baseline. *)
let append_prepared ?span ?on_complete st ~thread ~n ~(dst : int -> int)
    ~(payload : int -> Wire.record) : (int, Farm_net.Fabric.error) result array =
  let sizes = Array.make (max n 1) 0 in
  let recs =
    Array.init n (fun i ->
        let d = dst i in
        let truncations = State.take_truncations st ~dst:d in
        let record =
          {
            Wire.payload = payload i;
            truncations;
            low_bound = State.low_bound st ~thread;
            cfg = st.State.config.Config.id;
          }
        in
        let log = State.log_to st d in
        let size = Wire.record_bytes record in
        sizes.(i) <- size;
        Ringlog.consume_reservation log size;
        Ringlog.unreserve log (8 * List.length truncations);
        record)
  in
  let t0 = Time.to_ns (Engine.now st.State.engine) in
  (* Per-op trace slices are emitted from the completion hook so each one
     ends at its own hardware-ack instant, not at the batch-wide reap. *)
  let on_complete i r =
    (match r with
    | Ok () -> trace_append st ~thread ~dst:(dst i) ~t0 recs.(i).Wire.payload
    | Error _ -> ());
    match on_complete with Some f -> f i r | None -> ()
  in
  let results =
    if st.State.params.Params.doorbell_batching then
      Farm_net.Fabric.one_sided_write_batch_fn ?span ~on_complete st.State.fabric
        ~src:st.State.id ~n ~dst
        ~bytes:(fun i -> sizes.(i))
        ~apply:(fun i ->
          Ringlog.dma_append (State.log_to st (dst i)) recs.(i) ~size:sizes.(i))
    else begin
      (* unbatched ablation: the writes run in spawned child processes, so
         their time is not this process's to claim — it falls to the
         enclosing phase's default category *)
      let results = Array.make n (Ok ()) in
      Comms.par_iter st
        (List.init n (fun i () ->
             let d = dst i in
             let size = sizes.(i) in
             let log = State.log_to st d in
             let r =
               Farm_net.Fabric.one_sided_write st.State.fabric ~src:st.State.id ~dst:d
                 ~bytes:size (fun () -> Ringlog.dma_append log recs.(i) ~size)
             in
             results.(i) <- r;
             on_complete i r));
      results
    end
  in
  Array.mapi
    (fun i r ->
      let d = dst i in
      let size = sizes.(i) in
      match r with
      | Ok () ->
          Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_append;
          Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_append ~a:d ~b:size
            ~c:(Ringlog.used (State.log_to st d));
          Ok (size - (16 * List.length recs.(i).Wire.truncations))
      | Error e ->
          Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_append_fail;
          Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_append_fail ~a:d ~b:size
            ~c:0;
          List.iter (fun txid -> State.queue_truncation st ~dst:d txid) recs.(i).Wire.truncations;
          Error e)
    results

let append_batch ?on_complete st ~thread (descs : (int * Wire.record) list) :
    (int, Farm_net.Fabric.error) result array =
  let a = Array.of_list descs in
  append_prepared ?on_complete st ~thread ~n:(Array.length a)
    ~dst:(fun i -> fst a.(i))
    ~payload:(fun i -> snd a.(i))

(* Write an explicit TRUNCATE record carrying the pending truncations for
   [dst]. Used by the background flusher and when a log fills up. *)
let flush_truncations st ~dst =
  match Hashtbl.find_opt st.State.pending_trunc dst with
  | None -> ()
  | Some q when !q = [] -> ()
  | Some _ ->
      if Config.is_member st.State.config dst || dst = st.State.id then begin
        let log = State.log_to st dst in
        (* The marker base is transient (freed as soon as it is processed);
           take it from fresh reservation, skipping this round if full. *)
        if Ringlog.reserve log 48 then begin
          match append st ~dst ~thread:0 Wire.Truncate_marker with
          | Ok _ -> Ringlog.unreserve log 48
          | Error _ -> Ringlog.unreserve log 48
        end
      end
      else ignore (State.take_truncations st ~dst)

(* Reserve [n] bytes in the log to [dst], forcing explicit truncation if the
   log is full (rare; needed for liveness, §4). *)
let rec reserve_or_flush st ~dst n =
  let log = State.log_to st dst in
  if Ringlog.reserve log n then ()
  else begin
    flush_truncations st ~dst;
    Proc.sleep (Time.us 50);
    Proc.check_cancelled ();
    reserve_or_flush st ~dst n
  end

(* Periodic background flusher: lazily truncates logs at primaries and
   backups that have not carried piggybacked truncations recently. *)
let start_flusher st =
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      let rec loop () =
        Proc.sleep st.State.params.Params.truncate_flush_interval;
        Proc.check_cancelled ();
        let dsts = Hashtbl.fold (fun d q acc -> if !q = [] then acc else d :: acc) st.State.pending_trunc [] in
        List.iter (fun dst -> flush_truncations st ~dst) dsts;
        loop ()
      in
      loop ())
