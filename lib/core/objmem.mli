(** Object memory operations on region replicas: version-checked locking
    (LOCK processing), exact-lock release, idempotent committed-write
    application, recovery locking, and validation reads (§4, §5.3). *)

val header : State.replica -> off:int -> int64
val read_object : State.replica -> off:int -> len:int -> int64 * Bytes.t

val try_lock : State.replica -> Wire.write_item -> bool
(** Lock iff unlocked and still at the version the transaction observed. *)

val unlock : State.replica -> Wire.write_item -> unit
(** Release only a lock taken at this write's version — callers must own
    it (see [State.locks_held]). *)

val apply_write : ?ts:int -> State.replica -> Wire.write_item -> bool
(** Install value, version+1, allocation-bit change, unlocked. Idempotent:
    returns false (and leaves the header alone) when the replica already
    advanced past this write. A committed write always implies the object
    is allocated, so the bit is never inherited from the local header.

    Snapshot protocol: the superseded head is archived in the replica's
    version chain before the install, and a stale (skipped) write is
    archived under its own timestamp — backups can apply truncations out
    of per-object order. The write's commit timestamp is [w.ts], or [ts],
    or (recovery evidence predating timestamp assignment) the head's
    timestamp + 1, whichever is first nonzero. *)

(** Outcome of a snapshot read at a given read timestamp. *)
type snap_read =
  | Snap_value of { version : int; value : Bytes.t; allocated : bool; from_chain : bool }
      (** the newest version with commit timestamp [<= ts] *)
  | Snap_locked
      (** the head is inside the snapshot but locked: a write with an
          as-yet-unknown timestamp (possibly [<= ts]) is about to land —
          wait briefly and retry *)
  | Snap_none  (** no version that old: the object did not exist yet *)
  | Snap_below_floor
      (** the chain has been truncated past [ts] (or this replica was
          created after it): retry at a fresh read timestamp *)

val read_snapshot : State.replica -> off:int -> len:int -> ts:int -> snap_read
(** Snapshot protocol only; raises [Invalid_argument] on a chain-less
    replica. *)

val recovery_lock : State.replica -> Wire.write_item -> bool
(** §5.3 step 4: lock if still at the observed version; true when this
    transaction holds the lock afterwards. *)

val validate_version : State.replica -> off:int -> version:int -> bool
