open Farm_sim


(* Transaction execution phase (§3, §4).

   During execution, reads go to primaries (one-sided RDMA if remote, local
   memory access otherwise) and writes are buffered at the coordinator.
   FaRM guarantees atomic reads of individual committed objects and defers
   all cross-object consistency checks to commit-time validation; the
   execute phase therefore only records the version of everything it
   read. *)

type abort_reason =
  | Conflict  (* lock or validation failure: concurrent writer won *)
  | Not_allocated  (* the object was freed *)
  | Out_of_space
  | Failed  (* unresolvable machine failures; recovery aborted the tx *)
  | Explicit  (* application called abort *)

let pp_abort ppf r =
  Fmt.string ppf
    (match r with
    | Conflict -> "conflict"
    | Not_allocated -> "not-allocated"
    | Out_of_space -> "out-of-space"
    | Failed -> "failed"
    | Explicit -> "explicit")

exception Abort of abort_reason

type read_entry = { r_version : int; r_value : bytes }

type write_entry = {
  w_version : int;
  mutable w_value : bytes;
  mutable w_alloc : Wire.alloc_op;
}

type t = {
  st : State.t;
  thread : int;
  t_started : Time.t;
  span : Farm_obs.Obs.Span.t;  (* opened at [t_started], in P_execute *)
  mutable reads : read_entry Addr.Map.t;
  mutable writes : write_entry Addr.Map.t;
  mutable allocated : (Addr.t * int) list;  (* tentative slots, for abort *)
  mutable finished : bool;
  (* snapshot protocol: the transaction's read timestamp, drawn from the
     local clock's lower bound at begin and registered in
     [State.read_ts_active] until the transaction settles. -1 in the
     validate-at-commit baseline. *)
  mutable read_ts : int;
}

let reason_index = function
  | Conflict -> 0
  | Not_allocated -> 1
  | Out_of_space -> 2
  | Failed -> 3
  | Explicit -> 4

let begin_tx st ~thread =
  Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_tx_begin;
  (* draw and register the read timestamp in one step — no yield between,
     so the local watermark can never pass a drawn-but-unregistered ts *)
  let read_ts =
    match st.State.params.Params.protocol with
    | Params.Validate_at_commit -> -1
    | Params.Snapshot ->
        let r = Clock.lo st.State.clock in
        State.register_read_ts st r;
        r
  in
  {
    st;
    thread;
    t_started = State.now st;
    span = Farm_obs.Obs.Span.start ~tid:thread st.State.obs;
    reads = Addr.Map.empty;
    writes = Addr.Map.empty;
    allocated = [];
    finished = false;
    read_ts;
  }

(* Drop the transaction's claim on its read timestamp (commit or abort —
   whichever settles it first); idempotent. *)
let release_read_ts tx =
  if tx.read_ts >= 0 then begin
    State.release_read_ts tx.st tx.read_ts;
    tx.read_ts <- -1
  end

(* {1 Region mapping} *)

let rec ensure_mapping st rid ~retries =
  match State.region_info st rid with
  | Some info -> Some info
  | None ->
      if retries <= 0 then None
      else begin
        let cm = st.State.config.Config.cm in
        match Comms.call st ~dst:cm ~timeout:(Time.ms 10) (Wire.Fetch_mapping { rid }) with
        | Ok (Wire.Mapping_reply { info = Some info }) ->
            Hashtbl.replace st.State.region_map rid info;
            Some info
        | Ok _ | Error _ ->
            Proc.sleep (Time.ms 1);
            Proc.check_cancelled ();
            ensure_mapping st rid ~retries:(retries - 1)
      end

let invalidate_mapping st rid = Hashtbl.remove st.State.region_map rid

(* {1 Object reads} *)

(* One-sided (or local) read of an object's header and [len] data bytes
   from the primary of its region. Returns [Ok None] when the target is not
   (or no longer) the active primary. *)
let read_at ?span st ~dst ~(addr : Addr.t) ~len : ((int64 * bytes) option, Farm_net.Fabric.error) result =
  if dst = st.State.id then begin
    Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_local_read;
    match State.replica st addr.Addr.region with
    | Some rep when rep.State.role = State.Primary ->
        State.await_active rep;
        Ok (Some (Objmem.read_object rep ~off:addr.Addr.offset ~len))
    | _ -> Ok None
  end
  else
    Farm_net.Fabric.one_sided_read ?span st.State.fabric ~src:st.State.id ~dst
      ~bytes:(Obj_layout.header_size + len)
      (fun () ->
        match State.peer st dst with
        | None -> None
        | Some pst -> (
            match State.replica pst addr.Addr.region with
            | Some rep when rep.State.role = State.Primary && rep.State.active ->
                Some (Objmem.read_object rep ~off:addr.Addr.offset ~len)
            | _ -> None))

(* Versioned read with retries across lock conflicts and reconfiguration:
   returns the object's committed version and data. *)
let read_versioned ?span st ~(addr : Addr.t) ~len =
  let max_failures = 100 and max_locked = 400 in
  let rec attempt ~failures ~locked =
    Proc.check_cancelled ();
    if failures > max_failures then raise (Abort Failed)
    else if locked > max_locked then raise (Abort Conflict)
    else
      match ensure_mapping st addr.Addr.region ~retries:5 with
      | None -> raise (Abort Failed)
      | Some info -> (
          match read_at ?span st ~dst:info.Wire.primary ~addr ~len with
          | Error (`Unreachable | `Timeout) ->
              invalidate_mapping st addr.Addr.region;
              Proc.sleep (Time.us 500);
              attempt ~failures:(failures + 1) ~locked
          | Ok None ->
              invalidate_mapping st addr.Addr.region;
              Proc.sleep (Time.us 200);
              attempt ~failures:(failures + 1) ~locked
          | Ok (Some (header, data)) ->
              if Obj_layout.is_locked header then begin
                (* being committed right now; wait for the writer *)
                Proc.sleep (Time.us 30);
                attempt ~failures ~locked:(locked + 1)
              end
              else if not (Obj_layout.is_allocated header) then raise (Abort Not_allocated)
              else (Obj_layout.version header, data))
  in
  attempt ~failures:0 ~locked:0

(* {1 Snapshot reads (snapshot protocol)}

   A timestamp-ordered one-sided read: serve the newest version with
   commit timestamp <= the transaction's read timestamp, from the region
   head when it is old enough, from the primary's version chain otherwise.
   No version is recorded for validation wars — read-only transactions
   need none, and read-write transactions validate the served version at
   commit exactly like the baseline (a chain-served version can never
   still be current, so such reads abort conservatively). *)

let snap_read_at ?span st ~dst ~(addr : Addr.t) ~len ~ts :
    (Objmem.snap_read option, Farm_net.Fabric.error) result =
  if dst = st.State.id then begin
    Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_local_read;
    match State.replica st addr.Addr.region with
    | Some rep when rep.State.role = State.Primary ->
        State.await_active rep;
        Ok (Some (Objmem.read_snapshot rep ~off:addr.Addr.offset ~len ~ts))
    | _ -> Ok None
  end
  else
    Farm_net.Fabric.one_sided_read ?span st.State.fabric ~src:st.State.id ~dst
      ~bytes:(Obj_layout.header_size + len)
      (fun () ->
        match State.peer st dst with
        | None -> None
        | Some pst -> (
            match State.replica pst addr.Addr.region with
            | Some rep when rep.State.role = State.Primary && rep.State.active ->
                Some (Objmem.read_snapshot rep ~off:addr.Addr.offset ~len ~ts)
            | _ -> None))

let read_snapshot_versioned ?span st ~(addr : Addr.t) ~len ~ts =
  let max_failures = 100 and max_locked = 400 in
  let rec attempt ~failures ~locked =
    Proc.check_cancelled ();
    if failures > max_failures then raise (Abort Failed)
    else if locked > max_locked then raise (Abort Conflict)
    else
      match ensure_mapping st addr.Addr.region ~retries:5 with
      | None -> raise (Abort Failed)
      | Some info -> (
          match snap_read_at ?span st ~dst:info.Wire.primary ~addr ~len ~ts with
          | Error (`Unreachable | `Timeout) ->
              invalidate_mapping st addr.Addr.region;
              Proc.sleep (Time.us 500);
              attempt ~failures:(failures + 1) ~locked
          | Ok None ->
              invalidate_mapping st addr.Addr.region;
              Proc.sleep (Time.us 200);
              attempt ~failures:(failures + 1) ~locked
          | Ok (Some (Objmem.Snap_locked)) ->
              (* the head is inside the snapshot but a write with an
                 unknown timestamp is landing; wait for the writer *)
              Proc.sleep (Time.us 30);
              attempt ~failures ~locked:(locked + 1)
          | Ok (Some (Objmem.Snap_value { version; value; allocated; from_chain })) ->
              Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_snap_read;
              if from_chain then
                Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_snap_chain_read;
              if not allocated then raise (Abort Not_allocated) else (version, value)
          | Ok (Some Objmem.Snap_none) ->
              Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_snap_read;
              raise (Abort Not_allocated)
          | Ok (Some Objmem.Snap_below_floor) ->
              (* history truncated past our snapshot (only possible across
                 failures/re-replication): retry at a fresh timestamp *)
              raise (Abort Conflict))
  in
  attempt ~failures:0 ~locked:0

(* {1 Transaction API} *)

let read tx (addr : Addr.t) ~len =
  match Addr.Map.find_opt addr tx.writes with
  | Some w -> Bytes.sub w.w_value 0 (min len (Bytes.length w.w_value))
  | None -> (
      match Addr.Map.find_opt addr tx.reads with
      | Some r -> Bytes.sub r.r_value 0 (min len (Bytes.length r.r_value))
      | None ->
          let version, data =
            if tx.read_ts >= 0 then
              read_snapshot_versioned ~span:tx.span tx.st ~addr ~len ~ts:tx.read_ts
            else read_versioned ~span:tx.span tx.st ~addr ~len
          in
          Farm_obs.Obs.heat_access tx.st.State.obs ~region:addr.Addr.region;
          tx.reads <- Addr.Map.add addr { r_version = version; r_value = Bytes.copy data } tx.reads;
          data)

(* The version a write must lock at: the version observed by this
   transaction, fetching it if the object was not read first. A blind
   write deliberately observes the CURRENT header version even in
   snapshot mode — locking at the snapshot's (possibly archived) version
   would make the write abort forever once the head moves. *)
let observed_version tx (addr : Addr.t) =
  match Addr.Map.find_opt addr tx.reads with
  | Some r -> r.r_version
  | None ->
      let version, _ = read_versioned ~span:tx.span tx.st ~addr ~len:0 in
      version

let write tx (addr : Addr.t) data =
  match Addr.Map.find_opt addr tx.writes with
  | Some w -> w.w_value <- Bytes.copy data
  | None ->
      let version = observed_version tx addr in
      tx.writes <-
        Addr.Map.add addr
          { w_version = version; w_value = Bytes.copy data; w_alloc = Wire.Alloc_none }
          tx.writes

(* Allocate an object. The slot is tentatively taken from the primary's
   slab free list during execution; its allocation bit is set only at
   commit, so aborts and coordinator crashes lose nothing (§5.5). *)
let alloc tx ~size ?near ?region () =
  let st = tx.st in
  let rid =
    match (near, region) with
    | Some (a : Addr.t), _ -> Some a.Addr.region
    | None, Some rid -> Some rid
    | None, None ->
        (* prefer a region whose primary is this machine *)
        let local =
          Hashtbl.fold
            (fun rid info acc ->
              if info.Wire.primary = st.State.id then rid :: acc else acc)
            st.State.region_map []
        in
        (match local with
        | _ :: _ -> Some (List.nth local (Rng.int st.State.rng (List.length local)))
        | [] ->
            let all = Hashtbl.fold (fun rid _ acc -> rid :: acc) st.State.region_map [] in
            (match all with
            | [] -> None
            | _ -> Some (List.nth all (Rng.int st.State.rng (List.length all)))))
  in
  match rid with
  | None -> raise (Abort Out_of_space)
  | Some rid -> (
      (* follow this machine's spill chain: overflow regions allocated when
         earlier ones filled up *)
      let rec resolve_spill rid hops =
        if hops > 16 then rid
        else
          match Hashtbl.find_opt st.State.spill rid with
          | Some next -> resolve_spill next (hops + 1)
          | None -> rid
      in
      let try_alloc rid =
        match ensure_mapping st rid ~retries:5 with
        | None -> None
        | Some info ->
            if info.Wire.primary = st.State.id then begin
              match State.replica st rid with
              | Some rep ->
                  State.await_active rep;
                  Allocmgr.alloc_obj_local st rep ~size
              | None -> None
            end
            else begin
              match
                Comms.call st ~dst:info.Wire.primary ~timeout:(Time.ms 10)
                  (Wire.Alloc_obj_req { rid; size })
              with
              | Ok (Wire.Alloc_obj_reply { addr = Some addr; version }) -> Some (addr, version)
              | Ok _ | Error _ -> None
            end
      in
      let rid = resolve_spill rid 0 in
      let slot =
        match try_alloc rid with
        | Some s -> Some s
        | None -> (
            (* the region is full: transparently allocate a co-located
               overflow region through the CM (§3) and spill into it *)
            match Hashtbl.find_opt st.State.spill rid with
            | Some next -> try_alloc next
            | None -> (
                let cm = st.State.config.Config.cm in
                match
                  Comms.call st ~dst:cm ~timeout:(Time.ms 50)
                    (Wire.Alloc_region_req { locality = Some rid })
                with
                | Ok (Wire.Alloc_region_reply { info = Some info }) ->
                    Hashtbl.replace st.State.region_map info.Wire.rid info;
                    Hashtbl.replace st.State.spill rid info.Wire.rid;
                    try_alloc info.Wire.rid
                | Ok _ | Error _ -> None))
      in
      match slot with
      | None -> raise (Abort Out_of_space)
      | Some (addr, _) when Addr.Map.mem addr tx.writes ->
          (* a double-handout race handed this tx the same slot twice
             (possible while allocator recovery races a pre-failure
             tentative holder); treat as a conflict and retry *)
          raise (Abort Conflict)
      | Some (addr, version) ->
          tx.allocated <- (addr, size) :: tx.allocated;
          tx.writes <-
            Addr.Map.add addr
              { w_version = version; w_value = Bytes.make size '\000'; w_alloc = Wire.Alloc_set }
              tx.writes;
          addr)

let free tx (addr : Addr.t) =
  match Addr.Map.find_opt addr tx.writes with
  | Some w when w.w_alloc = Wire.Alloc_set ->
      (* allocated by this very transaction: cancel both operations and
         return the tentative slot to its region's primary *)
      tx.writes <- Addr.Map.remove addr tx.writes;
      tx.allocated <- List.filter (fun (a, _) -> not (Addr.equal a addr)) tx.allocated;
      (match State.region_info tx.st addr.Addr.region with
      | Some info -> Comms.send tx.st ~dst:info.Wire.primary (Wire.Free_slot_hint { addr })
      | None -> ())
  | Some w ->
      w.w_alloc <- Wire.Alloc_clear;
      w.w_value <- Bytes.empty
  | None ->
      let version = observed_version tx addr in
      tx.writes <-
        Addr.Map.add addr
          { w_version = version; w_value = Bytes.empty; w_alloc = Wire.Alloc_clear }
          tx.writes

(* Return tentatively allocated slots to their primaries after an abort. *)
let return_allocations tx =
  List.iter
    (fun ((addr : Addr.t), _) ->
      match State.region_info tx.st addr.Addr.region with
      | Some info ->
          if info.Wire.primary = tx.st.State.id then begin
            match State.replica tx.st addr.Addr.region with
            | Some rep -> Allocmgr.release_slot tx.st rep ~off:addr.Addr.offset
            | None -> ()
          end
          else Comms.send tx.st ~dst:info.Wire.primary (Wire.Free_slot_hint { addr })
      | None -> ())
    tx.allocated

(* {1 Lock-free reads (§3)}: optimized single-object read-only
   transactions; usually a single RDMA read with no commit phase. *)

let read_lockfree st (addr : Addr.t) ~len =
  let version, data = read_versioned st ~addr ~len in
  Stats.Counter.incr st.State.metrics.lockfree_reads;
  (version, data)
