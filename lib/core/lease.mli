open Farm_sim

(** Failure detection with leases (§5.1).

    Every machine holds a lease at the CM and vice versa, granted by a
    3-way handshake and renewed every lease/5. A lease is an interval
    starting when the granter *sent* it, so a grant delayed in a shared
    queue arrives already stale — the effect behind Figure 16.

    The four lease-manager implementations of §6.5 are selected per machine
    via [State.lease.impl]; they differ in whether lease traffic shares NIC
    queues with bulk traffic, shares worker threads with foreground work,
    runs on a dedicated (preemptible) thread, or is interrupt-driven at
    high priority. *)

val timer_resolution : Time.t
(** System-timer resolution (0.5 ms): bounds the interrupt-driven
    implementation's renewal precision. *)

val scheduling_delay : State.t -> Time.t
(** Delay before this machine's lease manager gets to run, per the
    configured implementation (CPU queue for shared-thread variants,
    preemption spikes for the dedicated thread, microseconds for the
    interrupt-driven one). *)

val quantize : State.t -> Time.t -> Time.t
(** Round a wakeup up to the system-timer resolution for timer-driven
    implementations. *)

val renewal_period : State.t -> Time.t

(** {1 Two-level hierarchy (§5.1)} — enabled by [Params.lease_group_size]:
    members form groups in identifier order; the lowest member of each
    group leads. Leaders exchange leases with the CM, members with their
    leader; leaders report member expiries to the CM. CM lease traffic
    drops from O(n) to O(n / group), detection latency at worst doubles. *)

val hierarchical : State.t -> bool

val renew_target : State.t -> int
(** The machine this one renews with: its group leader, or the CM. *)

val is_leader : State.t -> bool

val watched_members : State.t -> int list
(** The machines whose leases this one is responsible for checking. *)

val handle : State.t -> src:int -> Wire.message -> unit
(** Process a lease message (the dispatcher's dedicated fast path). *)

val start : State.t -> unit
(** Start the renewal loop, expiry checker, and (for [Ud_thread]) the
    preemption-spike generator. *)

(** {1 Nemesis hooks} — fault injection for the schedule fuzzer. *)

val inject_stall : State.t -> duration:Time.t -> unit
(** Stall this machine's lease manager: renewals and grants queued during
    the stall run only after it ends (a GC pause / scheduler outage). *)

val inject_clock_skew : State.t -> delta:Time.t -> unit
(** Make this machine's lease clock run fast by [delta]: every lease it
    holds or granted looks that much older, so expiries can fire early. *)
