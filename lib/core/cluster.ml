open Farm_sim

(* The cluster harness: builds a FaRM instance (machines, fabric, ring
   logs, Zookeeper-equivalent, initial configuration), provides failure
   injection, and records recovery milestones for the evaluation
   figures. *)

type milestone = { tag : string; machine : int; at : Time.t }

type t = {
  engine : Engine.t;
  params : Params.t;
  rng : Rng.t;
  fabric : Wire.message Farm_net.Fabric.t;
  zk : Config.t Farm_coord.Zk.t;
  machines : State.t array;
  domain_of : int -> int;
  milestones : milestone list ref;
  mutable lost_regions : int list;
}

let create ?(seed = 42) ?(params = Params.default) ?(domains = fun i -> i) ~machines:n () =
  if n < 1 then invalid_arg "Cluster.create: need at least one machine";
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let fabric =
    Farm_net.Fabric.create engine ~params:params.Params.net ~rng:(Rng.split rng)
  in
  let zk = Farm_coord.Zk.create engine ~rng:(Rng.split rng) ~replicas:5 in
  (* the clock service and per-machine offsets exist in BOTH protocol
     modes, drawn from a dedicated stream: switching Params.protocol never
     perturbs the fabric/zk/machine rng streams *)
  let clock = Clock.create engine ~eps:params.Params.clock_eps in
  let clock_rng = Rng.split rng in
  let members = List.init n Fun.id in
  let domains_list = List.map (fun m -> (m, domains m)) members in
  let config = Config.make ~id:1 ~members ~domains:domains_list ~cm:0 in
  ignore (Farm_coord.Zk.bootstrap zk config);
  let directory = Hashtbl.create n in
  let states =
    Array.init n (fun id ->
        let cpu = Cpu.create engine ~threads:params.Params.threads_per_machine in
        let obs = Farm_obs.Obs.create engine ~machine:id in
        Farm_net.Fabric.add_machine ~obs fabric ~id ~cpu;
        let nv =
          {
            State.bank = Farm_nvram.Bank.create ~machine:id;
            replicas = Hashtbl.create 16;
            logs_in = Hashtbl.create (max 8 n);
          }
        in
        let clk = Clock.handle clock ~offset_ns:(Clock.draw_offset clock clock_rng) in
        State.create ~id ~engine ~rng:(Rng.split rng) ~params ~fabric ~zk ~cpu ~nv
          ~clock:clk ~config ~directory ~obs)
  in
  Array.iter (fun st -> Hashtbl.replace directory st.State.id st) states;
  (* a ring log (located at the receiver) for every ordered machine pair *)
  for s = 0 to n - 1 do
    for r = 0 to n - 1 do
      let log = Ringlog.create ~sender:s ~receiver:r ~capacity:params.Params.log_size in
      Hashtbl.replace states.(r).State.nv.logs_in s log;
      Hashtbl.replace states.(s).State.logs_out r log
    done
  done;
  let t =
    {
      engine;
      params;
      rng;
      fabric;
      zk;
      machines = states;
      domain_of = domains;
      milestones = ref [];
      lost_regions = [];
    }
  in
  Array.iter
    (fun st ->
      st.State.trace <-
        (fun tag ->
          (match String.index_opt tag ':' with
          | Some i when String.sub tag 0 11 = "region-lost" ->
              t.lost_regions <-
                int_of_string (String.sub tag (i + 1) (String.length tag - i - 1))
                :: t.lost_regions
          | _ -> ());
          t.milestones := { tag; machine = st.State.id; at = Engine.now engine } :: !(t.milestones));
      Node.start st)
    states;
  t

let machine t id = t.machines.(id)
let n_machines t = Array.length t.machines
let now t = Engine.now t.engine

let run_until t ~at = Engine.run ~until:at t.engine
let run_for t ~d = Engine.run ~until:(Time.add (Engine.now t.engine) d) t.engine

(* Run [fn] as a process on [machine] and drive the engine until it
   returns. Setup/teardown convenience for tests and benchmarks. *)
let run_on t ~machine fn =
  let st = t.machines.(machine) in
  let result = ref None in
  Proc.spawn ~ctx:st.State.ctx t.engine (fun () -> result := Some (fn st));
  let guard = ref 0 in
  while !result = None && Engine.pending t.engine > 0 && !guard < 10_000 do
    incr guard;
    Engine.run ~until:(Time.add (Engine.now t.engine) (Time.ms 1)) t.engine
  done;
  match !result with
  | Some v -> v
  | None -> failwith "Cluster.run_on: process did not complete"

(* {1 Failure injection} *)

(* Kill a machine: its FaRM process stops (all its green processes are
   cancelled, its NIC stops serving) but its non-volatile DRAM — regions,
   block headers, incoming logs — survives. *)
let kill t id =
  let st = t.machines.(id) in
  if st.State.alive then begin
    st.State.alive <- false;
    Farm_net.Fabric.set_alive t.fabric id false;
    Proc.Ctx.cancel st.State.ctx;
    t.milestones := { tag = "killed"; machine = id; at = Engine.now t.engine } :: !(t.milestones)
  end

let kill_domain t d =
  Array.iter (fun st -> if t.domain_of st.State.id = d then kill t st.State.id) t.machines

let kill_cm t = kill t t.machines.(0).State.config.Config.cm

let wipe_nvram t id = Farm_nvram.Bank.wipe t.machines.(id).State.nv.bank

(* {1 Full-cluster power failure (§5)}

   "We provide durability for all committed transactions even if the entire
   cluster fails or loses power: all committed state can be recovered from
   regions and logs stored in non-volatile DRAM."

   [restart_machine] boots a machine's FaRM process again on top of its
   surviving NVRAM (regions, block headers, incoming logs with their
   unprocessed and resident records); volatile state — caches, coordinator
   tables, leases, free lists — is rebuilt. [power_cycle] restarts every
   machine and then performs the boot-time configuration change: a fresh
   configuration (same members) whose region mappings mark every region as
   changed, so the standard drain/vote/decide recovery resolves every
   transaction that was in flight at the power failure. *)

let restart_machine ?(rejoining = true) t id ~config =
  let old = t.machines.(id) in
  if old.State.alive then invalid_arg "Cluster.restart_machine: machine is alive";
  let cpu = Cpu.create t.engine ~threads:t.params.Params.threads_per_machine in
  (* the obs sink survives the crash: counters keep accumulating and the
     flight recorder retains pre-crash events *)
  let obs = old.State.obs in
  Farm_net.Fabric.reset_machine ~obs t.fabric ~id ~cpu;
  let directory = old.State.directory in
  let st =
    (* the clock offset is a hardware property of the machine: a restart
       keeps the old handle (same static offset, same engine) *)
    State.create ~id ~engine:t.engine ~rng:(Rng.split t.rng) ~params:t.params
      ~fabric:t.fabric ~zk:t.zk ~cpu ~nv:old.State.nv ~clock:old.State.clock ~config
      ~directory ~obs
  in
  (* reconnect the sender-side views of the shared ring logs; reservations
     and head estimates died with the process, so resynchronize them *)
  Hashtbl.iter
    (fun dst log ->
      Hashtbl.replace st.State.logs_out dst log;
      Ringlog.reset_sender_view log)
    old.State.logs_out;
  st.State.rejoining <- rejoining;
  Hashtbl.replace directory id st;
  t.machines.(id) <- st;
  st.State.trace <-
    (fun tag ->
      t.milestones := { tag; machine = id; at = Engine.now t.engine } :: !(t.milestones));
  Node.start st;
  st

let power_cycle t =
  Array.iter (fun (st : State.t) -> if st.State.alive then kill t st.State.id) t.machines;
  (* boot from the coordination service's configuration *)
  let seq, old_config =
    match Farm_coord.Zk.bootstrap_read t.zk with
    | Some (seq, c) -> (seq, c)
    | None -> failwith "Cluster.power_cycle: no configuration stored"
  in
  let new_id = old_config.Config.id + 1 in
  let config =
    Config.make ~id:new_id ~members:old_config.Config.members
      ~domains:old_config.Config.domains ~cm:old_config.Config.cm
  in
  ignore (Farm_coord.Zk.bootstrap_cas t.zk ~expected_seq:seq config);
  let machines =
    List.map
      (fun id -> restart_machine ~rejoining:false t id ~config:old_config)
      old_config.Config.members
  in
  (* rebuild the region map from the surviving NVRAM replica roles; every
     region is marked changed in this configuration so that every in-flight
     transaction from before the power failure is treated as recovering *)
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (st : State.t) ->
      Hashtbl.iter
        (fun rid (rep : State.replica) ->
          let p, bs = match Hashtbl.find_opt owners rid with Some v -> v | None -> (None, []) in
          match rep.State.role with
          | State.Primary -> Hashtbl.replace owners rid (Some st.State.id, bs)
          | State.Backup -> Hashtbl.replace owners rid (p, st.State.id :: bs))
        st.State.nv.replicas)
    machines;
  let infos =
    Hashtbl.fold
      (fun rid (p, bs) acc ->
        match p with
        | Some primary ->
            {
              Wire.rid;
              primary;
              backups = List.sort_uniq compare bs;
              last_primary_change = new_id;
              last_replica_change = new_id;
              critical = false;
            }
            :: acc
        | None -> (
            match List.sort_uniq compare bs with
            | b :: rest ->
                {
                  Wire.rid;
                  primary = b;
                  backups = rest;
                  last_primary_change = new_id;
                  last_replica_change = new_id;
                  critical = false;
                }
                :: acc
            | [] -> acc))
      owners []
  in
  (* install CM state on the restarted CM *)
  let cm_st = t.machines.(config.Config.cm) in
  let cm = State.ensure_cm cm_st in
  List.iter (fun (i : Wire.region_info) -> Hashtbl.replace cm.State.owners i.Wire.rid i) infos;
  cm.State.next_rid <-
    1 + List.fold_left (fun acc (i : Wire.region_info) -> max acc i.Wire.rid) 0 infos;
  List.iter
    (fun m -> Hashtbl.replace cm.State.cm_leases m (Engine.now t.engine))
    config.Config.members;
  (* deliver the boot configuration and commit it (as processes on each
     machine: the ack send blocks on the CPU): the normal drain / vote /
     decide recovery takes over from here *)
  List.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx t.engine (fun () ->
          Membership.apply_new_config st config infos))
    machines;
  run_for t ~d:(Time.ms 1);
  List.iter
    (fun (st : State.t) ->
      Proc.spawn ~ctx:st.State.ctx t.engine (fun () ->
          if Membership.on_config_commit st ~cfg:new_id then Recovery.on_config_commit st))
    machines;
  t.milestones :=
    { tag = "power-cycle"; machine = config.Config.cm; at = Engine.now t.engine }
    :: !(t.milestones)

let partition t ~group ids =
  List.iter (fun id -> Farm_net.Fabric.set_partition t.fabric id group) ids

(* Undo every network fault: all machines back in partition group 0, all
   per-link delay/loss injection cleared, and all gray state — gray NICs,
   directed blackholes, CPU slow factors — restored to healthy. Dead
   machines stay dead and evicted machines stay evicted — healing the
   network never re-admits anyone (the paper never re-admits machines
   mid-run). *)
let heal t =
  Array.iter
    (fun (st : State.t) ->
      if st.State.alive then Farm_net.Fabric.set_partition t.fabric st.State.id 0;
      Cpu.set_slow_factor st.State.cpu 1)
    t.machines;
  Farm_net.Fabric.clear_link_faults t.fabric;
  Farm_net.Fabric.clear_gray_faults t.fabric

(* The newest configuration committed by any alive machine. Its members are
   the machines whose state is authoritative: alive non-members are evicted
   zombies whose stale tables must not be probed. *)
let current_config t =
  Array.fold_left
    (fun acc (st : State.t) ->
      if not st.State.alive then acc
      else
        match acc with
        | Some (c : Config.t) when c.Config.id >= st.State.config.Config.id -> acc
        | _ -> Some st.State.config)
    None t.machines

(* {1 Quiesce}

   Drive the simulation until the cluster settles: no member is
   reconfiguring or blocked, every recovery coordination is decided, and no
   new milestone has appeared for two consecutive windows. Used by the
   fault fuzzer before running invariant probes. Returns [false] when the
   cluster fails to settle within [max_wait] — itself a liveness
   violation. *)
let quiesce ?(max_wait = Time.ms 1_000) ?(window = Time.ms 30) t =
  let members_settled () =
    match current_config t with
    | None -> false
    | Some cfg ->
        List.for_all
          (fun m ->
            let st = t.machines.(m) in
            (not st.State.alive)
            || ((not st.State.reconfig_active)
               && (not st.State.blocked)
               && st.State.config.Config.id = cfg.Config.id
               && Txid.Tbl.fold
                    (fun _ rc acc -> acc && rc.State.rc_decided)
                    st.State.rec_coords true))
          cfg.Config.members
  in
  let deadline = Time.add (Engine.now t.engine) max_wait in
  let rec loop last_count streak =
    run_for t ~d:window;
    let count = List.length !(t.milestones) in
    let stable = members_settled () && count = last_count in
    if stable && streak >= 1 then true
    else if Time.( >= ) (Engine.now t.engine) deadline then members_settled ()
    else loop count (if stable then streak + 1 else 0)
  in
  loop (-1) 0

(* {1 Region setup} *)

(* Allocate a region through the CM (two-phase prepare/commit) from some
   machine, driving the engine until the mapping is replicated. *)
let alloc_region ?locality ?(from = 0) t =
  run_on t ~machine:from (fun st ->
      let cm = st.State.config.Config.cm in
      match
        Comms.call st ~dst:cm ~timeout:(Time.ms 200) (Wire.Alloc_region_req { locality })
      with
      | Ok (Wire.Alloc_region_reply { info = Some info }) ->
          Hashtbl.replace st.State.region_map info.Wire.rid info;
          Some info
      | Ok _ | Error _ -> None)

let alloc_region_exn ?locality ?from t =
  match alloc_region ?locality ?from t with
  | Some info -> info
  | None -> failwith "Cluster.alloc_region: allocation failed"

(* {1 Introspection for tests and benchmarks} *)

let milestones t =
  List.rev_map (fun m -> (m.tag, m.machine, m.at)) !(t.milestones)

let milestone_time t tag =
  let rec find = function
    | [] -> None
    | (tg, _, at) :: rest -> if tg = tag then Some at else find rest
  in
  find (milestones t)

let total_committed t =
  Array.fold_left
    (fun acc st -> acc + Stats.Counter.get st.State.metrics.committed)
    0 t.machines

let total_aborted t =
  Array.fold_left
    (fun acc st -> acc + Stats.Counter.get st.State.metrics.aborted)
    0 t.machines

(* Aggregate cluster throughput as committed transactions per 1 ms bin. *)
let throughput_series t ~until =
  let nbins = (Time.to_ns until / Time.to_ns (Time.ms 1)) + 1 in
  let bins = Array.make nbins 0 in
  Array.iter
    (fun st ->
      let s = st.State.metrics.throughput in
      for i = 0 to nbins - 1 do
        bins.(i) <- bins.(i) + Stats.Series.get s i
      done)
    t.machines;
  bins

let merged_latency t =
  let h = Stats.Hist.create () in
  Array.iter (fun st -> Stats.Hist.merge ~into:h st.State.metrics.tx_latency) t.machines;
  h

(* All replicas of a region across the cluster, as (machine, replica). *)
let replicas_of t rid =
  Array.fold_left
    (fun acc st ->
      match State.replica st rid with Some r -> (st.State.id, r) :: acc | None -> acc)
    [] t.machines

(* {1 Observability} *)

let set_recording t on =
  Array.iter (fun st -> Farm_obs.Obs.set_enabled st.State.obs on) t.machines

(* Cluster-wide counter totals, in counter declaration order. *)
let merged_counters t =
  List.filter_map
    (fun c ->
      let v =
        Array.fold_left
          (fun acc st -> acc + Farm_obs.Obs.counter st.State.obs c)
          0 t.machines
      in
      if v = 0 then None else Some (Farm_obs.Obs.counter_name c, v))
    Farm_obs.Obs.all_counters

(* Per-phase commit-latency histograms merged across machines; string-keyed
   so benches and CLIs need no dependency on the obs library. *)
let merged_phase_hists t =
  List.filter_map
    (fun p ->
      let h = Stats.Hist.create () in
      Array.iter
        (fun st -> Stats.Hist.merge ~into:h (Farm_obs.Obs.phase_hist st.State.obs p))
        t.machines;
      if Stats.Hist.count h = 0 then None else Some (Farm_obs.Obs.phase_name p, h))
    Farm_obs.Obs.all_phases

let merged_stage_hists t =
  List.filter_map
    (fun s ->
      let h = Stats.Hist.create () in
      Array.iter
        (fun st -> Stats.Hist.merge ~into:h (Farm_obs.Obs.stage_hist st.State.obs s))
        t.machines;
      if Stats.Hist.count h = 0 then None else Some (Farm_obs.Obs.stage_name s, h))
    Farm_obs.Obs.all_stages

(* The flight recorder: every machine's event ring, merged into one
   time-sorted, human-readable dump (ties broken by machine id). *)
let flight_dump t =
  let lines =
    Array.fold_left
      (fun acc st ->
        List.fold_left
          (fun acc (at, line) -> (at, st.State.id, line) :: acc)
          acc
          (Farm_obs.Obs.events st.State.obs))
      [] t.machines
  in
  let lines =
    List.stable_sort
      (fun (a, ma, _) (b, mb, _) -> if a = b then compare ma mb else compare a b)
      lines
  in
  List.map
    (fun (at, m, line) ->
      Printf.sprintf "[%12.3fus] m%d %s" (float_of_int at /. 1_000.) m line)
    lines

(* {2 Causal tracing and timeline sampling} *)

let set_tracing t on =
  Array.iter
    (fun st -> Farm_obs.Tracer.set_enabled (Farm_obs.Obs.tracer st.State.obs) on)
    t.machines

(* All machines' span buffers merged into one Chrome trace-event JSON
   document. Tracers live in the obs sinks, which survive restarts, so the
   dump covers the whole run including pre-crash spans. *)
let tracers t =
  Array.to_list (Array.map (fun st -> Farm_obs.Obs.tracer st.State.obs) t.machines)

let trace_dump t = Farm_obs.Tracer.export_json (tracers t)

(* {2 Latency blame, critical paths and heat} *)

let set_blame t on =
  Array.iter (fun st -> Farm_obs.Obs.set_blame st.State.obs on) t.machines

let blame_totals t =
  List.filter_map
    (fun b ->
      let v =
        Array.fold_left
          (fun acc st -> acc + Farm_obs.Obs.blame_total_ns st.State.obs b)
          0 t.machines
      in
      if v = 0 then None else Some (Farm_obs.Obs.blame_name b, v))
    Farm_obs.Obs.all_blames

let phase_totals t =
  List.filter_map
    (fun p ->
      let v =
        Array.fold_left
          (fun acc st -> acc + Farm_obs.Obs.phase_total_ns st.State.obs p)
          0 t.machines
      in
      if v = 0 then None else Some (Farm_obs.Obs.phase_name p, v))
    Farm_obs.Obs.all_phases

let merged_blame_hists t =
  List.filter_map
    (fun b ->
      let h = Stats.Hist.create () in
      Array.iter
        (fun st -> Stats.Hist.merge ~into:h (Farm_obs.Obs.blame_hist st.State.obs b))
        t.machines;
      if Stats.Hist.count h = 0 then None else Some (Farm_obs.Obs.blame_name b, h))
    Farm_obs.Obs.all_blames

type heat = { h_region : int; h_score : int; h_access : int; h_conflict : int }

let heat_report t =
  let now = Time.to_ns (Engine.now t.engine) in
  List.map
    (fun (s : Farm_obs.Heat.score) ->
      {
        h_region = s.Farm_obs.Heat.hs_region;
        h_score = s.Farm_obs.Heat.hs_score;
        h_access = s.Farm_obs.Heat.hs_access;
        h_conflict = s.Farm_obs.Heat.hs_conflict;
      })
    (Farm_obs.Heat.merge
       (Array.to_list (Array.map (fun st -> Farm_obs.Obs.heat st.State.obs) t.machines))
       ~now)

let all_exemplars t =
  Array.fold_left
    (fun acc st -> acc @ Farm_obs.Obs.exemplars st.State.obs)
    [] t.machines

(* Blame of the slowest exemplar transactions only — the tail a latency
   SLO's p999 is made of. *)
let tail_blame t =
  let exs = all_exemplars t in
  List.filter_map
    (fun b ->
      let i = Farm_obs.Obs.blame_index b in
      let v =
        List.fold_left
          (fun acc (ex : Farm_obs.Obs.exemplar) -> acc + ex.Farm_obs.Obs.ex_blame.(i))
          0 exs
      in
      if v = 0 then None else Some (Farm_obs.Obs.blame_name b, v))
    Farm_obs.Obs.all_blames

let critpaths t ~k =
  List.map
    (fun p -> Format.asprintf "%a" Farm_obs.Critpath.pp_path p)
    (Farm_obs.Critpath.paths ~tracers:(tracers t) ~exemplars:(all_exemplars t) ~k)

(* Like [trace_dump], with the top-[k] exemplars' critical-path slices
   tagged [args.crit = 1] for Perfetto highlighting. *)
let trace_dump_critical t ~k =
  let paths =
    Farm_obs.Critpath.paths ~tracers:(tracers t) ~exemplars:(all_exemplars t) ~k
  in
  Farm_obs.Tracer.export_json ~mark:(Farm_obs.Critpath.mark paths) (tracers t)

(* Register the standard gauge set on a machine's sampler and start it.
   Gauges read through [t.machines.(i)] — not a captured [State.t] — so a
   machine restarted mid-run keeps feeding its (surviving) sampler from the
   fresh state; cumulative deltas clamp at 0 across the counter reset. *)
let start_sampling ?(interval = Time.ms 1) t ~until =
  let iv = Time.to_ns interval in
  Array.iteri
    (fun i st ->
      let tl = Farm_obs.Obs.timeline st.State.obs in
      if not (Farm_obs.Timeline.running tl) then begin
        (* Callers may pre-register extra gauges (e.g. the open-loop
           admission-queue depth) before sampling starts; only the standard
           set's presence decides whether to add it again. *)
        if not (List.mem "commits" (Farm_obs.Timeline.series_names tl)) then begin
          let live () = t.machines.(i) in
          Farm_obs.Timeline.add_series tl ~name:"commits" ~kind:Farm_obs.Timeline.Cumulative
            (fun () -> Stats.Counter.get (live ()).State.metrics.committed);
          Farm_obs.Timeline.add_series tl ~name:"aborts" ~kind:Farm_obs.Timeline.Cumulative
            (fun () -> Stats.Counter.get (live ()).State.metrics.aborted);
          Farm_obs.Timeline.add_series tl ~name:"one_sided_ops"
            ~kind:Farm_obs.Timeline.Cumulative (fun () ->
              let obs = (live ()).State.obs in
              Farm_obs.Obs.counter obs Farm_obs.Obs.C_rdma_read
              + Farm_obs.Obs.counter obs Farm_obs.Obs.C_rdma_write);
          Farm_obs.Timeline.add_series tl ~name:"log_ring_bytes"
            ~kind:Farm_obs.Timeline.Level (fun () ->
              Hashtbl.fold
                (fun _ log acc -> acc + Ringlog.used log)
                (live ()).State.nv.logs_in 0);
          Farm_obs.Timeline.add_series tl ~name:"cpu_busy_ns"
            ~kind:Farm_obs.Timeline.Cumulative (fun () ->
              Time.to_ns (Cpu.busy_total (live ()).State.cpu))
        end;
        Farm_obs.Timeline.start tl ~interval:iv ~until:(Time.to_ns until)
      end)
    t.machines

let timeline_dump t =
  Farm_obs.Timeline.export_json
    (Array.to_list
       (Array.map (fun st -> Farm_obs.Obs.timeline st.State.obs) t.machines))

(* The abort-cause breakdown: merged cause counters plus the residue of
   total aborts no cause accounts for. *)
let abort_breakdown t =
  let merged c =
    Array.fold_left (fun acc st -> acc + Farm_obs.Obs.counter st.State.obs c) 0 t.machines
  in
  let total = merged Farm_obs.Obs.C_tx_abort in
  let lock = merged Farm_obs.Obs.C_abort_lock_refused in
  let validate = merged Farm_obs.Obs.C_abort_validate_failed in
  let timeout = merged Farm_obs.Obs.C_abort_timeout in
  [
    ("lock-refused", lock);
    ("validate-failed", validate);
    ("timeout", timeout);
    ("other", max 0 (total - lock - validate - timeout));
  ]

let pp_stats ppf t =
  Array.iter
    (fun st -> Fmt.pf ppf "m%d: %a@." st.State.id Farm_obs.Obs.pp_counters st.State.obs)
    t.machines;
  (match merged_phase_hists t with
  | [] -> ()
  | hs -> Fmt.pf ppf "commit phases (committed tx, merged):@.%a" Farm_obs.Obs.pp_hist_table hs);
  match merged_stage_hists t with
  | [] -> ()
  | hs -> Fmt.pf ppf "recovery stages (merged):@.%a" Farm_obs.Obs.pp_hist_table hs
