(* Object memory operations on region replicas. *)

let header (r : State.replica) ~off = Obj_layout.get r.mem ~off

let read_object (r : State.replica) ~off ~len =
  (header r ~off, Obj_layout.read_data r.mem ~off ~len)

(* Attempt to lock an object at the version the transaction observed
   (LOCK-record processing, §4 step 1). *)
let try_lock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.is_locked h then false
  else if Obj_layout.version h <> w.version then false
  else
    Obj_layout.cas r.mem ~off ~expected:h ~desired:(Obj_layout.with_locked h true)

let unlock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.is_locked h && Obj_layout.version h = w.version then
    Obj_layout.set r.mem ~off (Obj_layout.with_locked h false)

(* Apply a committed write: install the new value, bump the version past
   the one observed at read time, apply allocation-bit changes, clear the
   lock. Used by COMMIT-PRIMARY processing at primaries and by truncation
   at backups (§4 steps 4-5). Idempotent: a replica that already holds a
   version beyond [w.version] is left untouched.

   Snapshot protocol (replica carries a version chain): the superseded head
   is archived under its own commit timestamp before the install, and a
   skipped (stale) write is archived too — at a backup, truncation order
   can invert per object, and the chain is where the skipped version
   belongs. [ts] (or [w.ts], whichever is nonzero) is the write's global
   commit timestamp; recovery evidence that predates timestamp assignment
   falls back to [head_ts + 1], which preserves per-object order. *)
let apply_write ?(ts = 0) (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  let new_version = w.version + 1 in
  let eff_ts vc =
    if w.ts <> 0 then w.ts
    else if ts <> 0 then ts
    else Verchain.head_ts vc ~off + 1
  in
  if Obj_layout.version h < new_version then begin
    (* Any committed write implies the object was allocated when written:
       the allocation bit must come from the write, never be inherited from
       the local header — a promoted backup can apply a later write before
       (instead of) the object's creating transaction, and inheriting would
       leave a live object marked free forever. *)
    let allocated =
      match w.alloc_op with
      | Wire.Alloc_set | Wire.Alloc_none -> true
      | Wire.Alloc_clear -> false
    in
    (match r.State.vc with
    | None -> ()
    | Some vc ->
        let old_version = Obj_layout.version h in
        Verchain.archive vc ~off ~version:old_version ~ts:(Verchain.head_ts vc ~off)
          ~allocated:(Obj_layout.is_allocated h)
          (Obj_layout.read_data r.mem ~off ~len:(Bytes.length w.value));
        Verchain.set_head_ts vc ~off (eff_ts vc));
    Obj_layout.set r.mem ~off
      (Obj_layout.make ~locked:false ~allocated ~version:new_version);
    Obj_layout.write_data r.mem ~off w.value;
    true
  end
  else begin
    (* already applied (recovery raced normal processing): leave the header
       alone — any lock at a newer version belongs to another transaction *)
    (match r.State.vc with
    | None -> ()
    | Some vc ->
        if Obj_layout.version h > new_version then
          let allocated =
            match w.alloc_op with
            | Wire.Alloc_set | Wire.Alloc_none -> true
            | Wire.Alloc_clear -> false
          in
          Verchain.archive vc ~off ~version:new_version ~ts:(eff_ts vc) ~allocated w.value);
    false
  end

(* A snapshot read at timestamp [ts] (snapshot protocol only). *)
type snap_read =
  | Snap_value of { version : int; value : Bytes.t; allocated : bool; from_chain : bool }
  | Snap_locked
  | Snap_none
  | Snap_below_floor

let read_snapshot (r : State.replica) ~off ~len ~ts =
  match r.State.vc with
  | None -> invalid_arg "Objmem.read_snapshot: replica has no version chain"
  | Some vc ->
      let h = header r ~off in
      let head_ts = Verchain.head_ts vc ~off in
      if head_ts <= ts then
        (* the in-memory head is inside the snapshot — unless it is locked,
           in which case a write with an unknown timestamp (possibly <= ts)
           is about to land and the reader must wait it out *)
        if Obj_layout.is_locked h then Snap_locked
        else
          Snap_value
            {
              version = Obj_layout.version h;
              value = Obj_layout.read_data r.mem ~off ~len;
              allocated = Obj_layout.is_allocated h;
              from_chain = false;
            }
      else
        (* head too new: serve from the chain (lock state is irrelevant —
           a pending write's timestamp exceeds the head's, so > ts) *)
        match Verchain.find vc ~off ~ts with
        | Some (version, value, allocated) ->
            Snap_value { version; value; allocated; from_chain = true }
        | None -> if Verchain.floor vc <= ts then Snap_none else Snap_below_floor

(* Recovery locking (§5.3 step 4): lock the object if it is still at the
   version the recovering transaction observed. Returns true when the
   transaction holds the lock afterwards (newly taken, or taken earlier by
   normal LOCK processing — both belong to this transaction). *)
let recovery_lock (r : State.replica) (w : Wire.write_item) =
  let off = w.addr.Addr.offset in
  let h = header r ~off in
  if Obj_layout.version h <> w.version then false
  else if Obj_layout.is_locked h then true
  else begin
    Obj_layout.set r.mem ~off (Obj_layout.with_locked h true);
    true
  end

let validate_version (r : State.replica) ~off ~version =
  let h = header r ~off in
  (not (Obj_layout.is_locked h)) && Obj_layout.version h = version
