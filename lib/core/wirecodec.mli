(** Binary wire format for {!Wire.message}.

    The simulator passes messages as OCaml values, so this codec is off the
    hot path; it pins down the byte representation a real transport would
    DMA. Little-endian fixed-width integers, one-byte tags/booleans, and
    length-prefixed lists and byte strings. *)

val encode : Wire.message -> Bytes.t

val decode : Bytes.t -> Wire.message option
(** Accepts exactly the bytes {!encode} produces: truncation, trailing
    bytes, out-of-range tags, and corrupt length prefixes all yield
    [None] (never an exception or an over-allocation). *)
