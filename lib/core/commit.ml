open Farm_sim


(* The FaRM commit protocol (§4, Figure 4):

     1. LOCK            one-sided log write to each written-object primary
     2. VALIDATE        one-sided version reads (RPC above the tr threshold)
     3. COMMIT-BACKUP   one-sided log write to each backup; wait NIC acks
     4. COMMIT-PRIMARY  one-sided log write; report after >= 1 ack
     5. TRUNCATE        lazy, piggybacked on later records

   The coordinator is unreplicated and talks directly to primaries and
   backups. Before starting, it reserves log space for every record the
   protocol can write — including truncations — to guarantee progress.

   Each phase's one-sided writes go out as a single doorbell-batched verb
   group (Fabric.one_sided_write_batch_fn via Logio.append_prepared): the
   NIC is rung once per phase and the completions reaped together, so a
   multi-participant commit pays ~one issue/poll instead of one per
   participant. Params.doorbell_batching restores the unbatched pipeline
   for ablation.

   Allocation discipline (DESIGN.md): all per-commit scratch — the write
   items staged in address order, region-id sets, per-destination
   groupings, reservation accounting, validation groups and the append
   staging — lives in a pooled Arena acquired for the duration of the
   commit and reset, not reallocated, between transactions. Only data that
   crosses the wire is freshly allocated: write-item records, record
   payloads, and one regions-written list shared by every LOCK and
   COMMIT-BACKUP payload of the transaction — receivers keep all of these
   resident until truncation and recovery reads them back. The arena is
   reference-counted because the COMMIT-PRIMARY bookkeeping and the lazy
   TRUNCATE run in background processes that touch the accounting tables
   after [commit] has returned.

   A configuration change can make the transaction "recovering" (§5.3);
   from that point the coordinator must ignore completions and defer to the
   recovery protocol's vote/decide outcome, which arrives on
   [lt_outcome]. *)

type 'a race = Normal of 'a | Recovered of State.outcome

let race_outcome (lt : State.tx_live) (iv : 'a Ivar.t) : 'a race =
  Proc.suspend (fun resume ->
      Ivar.on_fill iv (fun v -> resume (Ok (Normal v)));
      Ivar.on_fill lt.State.lt_outcome (fun o -> resume (Ok (Recovered o))))

(* {1 Read validation (§4 step 2)} *)

(* Target-side memory access of a header read: what the remote NIC DMAs at
   the linearization instant. *)
let read_remote_header st ~dst ~(addr : Addr.t) =
  match State.peer st dst with
  | None -> None
  | Some pst -> (
      match State.replica pst addr.Addr.region with
      | Some rep when rep.State.role = State.Primary && rep.State.active ->
          Some (Objmem.header rep ~off:addr.Addr.offset)
      | _ -> None)

(* One-sided read of just an object header from its primary. *)
let read_header_at ?span st ~dst ~(addr : Addr.t) =
  if dst = st.State.id then begin
    Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_local_read;
    match State.replica st addr.Addr.region with
    | Some rep when rep.State.role = State.Primary && rep.State.active ->
        Ok (Some (Objmem.header rep ~off:addr.Addr.offset))
    | _ -> Ok None
  end
  else
    Farm_net.Fabric.one_sided_read ?span st.State.fabric ~src:st.State.id ~dst ~bytes:16
      (fun () -> read_remote_header st ~dst ~addr)

(* Validate the read set staged in the arena's [ro_addr]/[ro_ver] vectors:
   group read-set indices by primary (counted groups, so the
   RPC-vs-one-sided decision against tr is O(1) per group); use one-sided
   RDMA version reads for small groups — issued as one doorbell batch
   spanning every such group — and one RPC above the
   [validate_rpc_threshold] (tr) to trade latency for CPU. *)
let validate_ar ?span st (ar : Arena.t) ~txid =
  Arena.groups_clear ar.Arena.vgroups;
  let ok = ref true in
  for i = 0 to Arena.Vec.length ar.Arena.ro_addr - 1 do
    let addr = Arena.Vec.get ar.Arena.ro_addr i in
    match State.region_info st addr.Addr.region with
    | Some info -> Arena.group_add ar.Arena.vgroups ~dst:info.Wire.primary i
    | None -> ok := false
  done;
  if not !ok then false
  else begin
    let tr = st.State.params.Params.validate_rpc_threshold in
    let check_header version = function
      | Some h -> if Obj_layout.is_locked h || Obj_layout.version h <> version then ok := false
      | None -> ok := false
    in
    (* One header-read batch across ALL small groups (local items are read
       directly, no NIC involved). [span] flows down only when this runs in
       the calling process itself — a par_iter child's time is not the
       transaction's to claim. *)
    let run_rdma_batched ?span () =
      Arena.Vec.clear ar.Arena.rv_dst;
      Arena.Vec.clear ar.Arena.rv_idx;
      for gi = 0 to ar.Arena.vgroups.Arena.live - 1 do
        let g = Arena.group ar.Arena.vgroups gi in
        if Arena.Vec.length g.Arena.g_items <= tr then
          Arena.Vec.iter
            (fun i ->
              if g.Arena.g_dst = st.State.id then begin
                let addr = Arena.Vec.get ar.Arena.ro_addr i in
                match read_header_at ?span st ~dst:g.Arena.g_dst ~addr with
                | Ok h -> check_header (Arena.Vec.get ar.Arena.ro_ver i) h
                | Error _ -> ok := false
              end
              else begin
                Arena.Vec.push ar.Arena.rv_dst g.Arena.g_dst;
                Arena.Vec.push ar.Arena.rv_idx i
              end)
            g.Arena.g_items
      done;
      let n = Arena.Vec.length ar.Arena.rv_dst in
      if n > 0 then begin
        let results =
          Farm_net.Fabric.one_sided_read_batch_fn ?span st.State.fabric ~src:st.State.id ~n
            ~dst:(fun i -> Arena.Vec.get ar.Arena.rv_dst i)
            ~bytes:(fun _ -> 16)
            ~read:(fun i ->
              read_remote_header st
                ~dst:(Arena.Vec.get ar.Arena.rv_dst i)
                ~addr:(Arena.Vec.get ar.Arena.ro_addr (Arena.Vec.get ar.Arena.rv_idx i)))
        in
        for i = 0 to n - 1 do
          let version = Arena.Vec.get ar.Arena.ro_ver (Arena.Vec.get ar.Arena.rv_idx i) in
          match results.(i) with
          | Ok h -> check_header version h
          | Error _ -> ok := false
        done
      end
    in
    (* Ablation path: the pre-batching pipeline read each small group's
       headers serially, one full-cost verb at a time. *)
    let unbatched_jobs () =
      let jobs = ref [] in
      for gi = ar.Arena.vgroups.Arena.live - 1 downto 0 do
        let g = Arena.group ar.Arena.vgroups gi in
        if Arena.Vec.length g.Arena.g_items <= tr then
          jobs :=
            (fun () ->
              Arena.Vec.iter
                (fun i ->
                  if !ok then
                    let addr = Arena.Vec.get ar.Arena.ro_addr i in
                    match read_header_at st ~dst:g.Arena.g_dst ~addr with
                    | Ok h -> check_header (Arena.Vec.get ar.Arena.ro_ver i) h
                    | Error _ -> ok := false)
                g.Arena.g_items)
            :: !jobs
      done;
      !jobs
    in
    (* RPC groups above tr are rare; their item lists are freshly built
       because a timed-out RPC can still be in flight when the caller
       resumes — arena-owned storage must never ride a message. *)
    let rpc_jobs =
      let jobs = ref [] in
      for gi = ar.Arena.vgroups.Arena.live - 1 downto 0 do
        let g = Arena.group ar.Arena.vgroups gi in
        if Arena.Vec.length g.Arena.g_items > tr then begin
          let p = g.Arena.g_dst in
          let items =
            List.init (Arena.Vec.length g.Arena.g_items) (fun k ->
                let i = Arena.Vec.get g.Arena.g_items k in
                (Arena.Vec.get ar.Arena.ro_addr i, Arena.Vec.get ar.Arena.ro_ver i))
          in
          jobs :=
            (fun () ->
              let flow =
                Farm_obs.Tracer.flow_id ~machine:txid.Txid.machine
                  ~thread:txid.Txid.thread ~local:txid.Txid.local ~tag:6 ~dst:p
              in
              match
                Comms.call st ~dst:p ~timeout:(Time.ms 20) ~flow
                  (Wire.Validate_req { txid; items })
              with
              | Ok (Wire.Validate_reply { ok = reply_ok; _ }) -> if not reply_ok then ok := false
              | Ok _ | Error _ -> ok := false)
            :: !jobs
        end
      done;
      !jobs
    in
    (match (rpc_jobs, st.State.params.Params.doorbell_batching) with
    (* common case: every group under tr, one batch, no process spawns *)
    | [], true -> run_rdma_batched ?span ()
    | jobs, true -> Comms.par_iter st ((fun () -> run_rdma_batched ()) :: jobs)
    | jobs, false -> Comms.par_iter st (unbatched_jobs () @ jobs));
    !ok
  end

(* List-based entry point (kept for callers outside the commit path): stage
   into a pooled arena and validate. *)
let validate st ~txid (reads : (Addr.t * int) list) =
  let ar = Arena.acquire st.State.arena_pool in
  List.iter
    (fun ((addr : Addr.t), version) ->
      Arena.Vec.push ar.Arena.ro_addr addr;
      Arena.Vec.push ar.Arena.ro_ver version)
    reads;
  let ok = validate_ar st ar ~txid in
  Arena.release st.State.arena_pool ar;
  ok

(* {1 The commit path} *)

let commit (tx : Txn.t) : (unit, Txn.abort_reason) result =
  let st = tx.Txn.st in
  if tx.Txn.finished then invalid_arg "Commit.commit: transaction already finished";
  tx.Txn.finished <- true;
  let commit_start = State.now st in
  let ar = Arena.acquire st.State.arena_pool in
  (* protocol-level abort cause, set where the abort decision is made
     (lock refusal / validation failure); unset means finish derives it
     from the reason (Failed -> timeout) *)
  let abort_cause = ref None in
  (* runs exactly once on the main path; also drops the main path's arena
     reference (background processes retain their own) *)
  let finish result =
    (match result with
    | Ok () ->
        State.record_commit st ~latency:(Time.sub (State.now st) commit_start);
        Stats.Hist.record st.State.metrics.tx_latency
          (Time.to_ns (Time.sub (State.now st) tx.Txn.t_started));
        Farm_obs.Obs.Span.finish tx.Txn.span ~committed:true
    | Error e ->
        Farm_obs.Obs.Span.finish tx.Txn.span ~committed:false;
        State.record_abort ~reason:(Txn.reason_index e) ?cause:!abort_cause st);
    Txn.release_read_ts tx;
    Arena.release st.State.arena_pool ar;
    result
  in
  (* stage the read set not written *)
  Addr.Map.iter
    (fun a (r : Txn.read_entry) ->
      if not (Addr.Map.mem a tx.Txn.writes) then begin
        Arena.Vec.push ar.Arena.ro_addr a;
        Arena.Vec.push ar.Arena.ro_ver r.Txn.r_version
      end)
    tx.Txn.reads;
  if Addr.Map.is_empty tx.Txn.writes then begin
    if tx.Txn.read_ts >= 0 then begin
      (* Snapshot protocol: every read was served at the transaction's
         read timestamp, so the whole read set is one consistent snapshot
         already — the transaction serializes there and commits locally,
         with zero VALIDATE messages and zero aborts (FaRMv2 opacity). *)
      Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_ro_commit;
      finish (Ok ())
    end
    else if
      (* Baseline: serialization point is the last read; single-object
         reads are already atomic and need no validation. *)
      Arena.Vec.length ar.Arena.ro_addr <= 1
    then finish (Ok ())
    else begin
      let txid = State.fresh_txid st ~thread:tx.Txn.thread in
      Farm_obs.Obs.Span.set_tx tx.Txn.span ~txm:txid.Txid.machine
        ~txt:txid.Txid.thread ~txl:txid.Txid.local;
      Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_validate;
      let ok = validate_ar ~span:tx.Txn.span st ar ~txid in
      State.forget_outstanding st txid;
      if not ok then begin
        abort_cause := Some State.Cause_validate;
        Arena.Vec.iter
          (fun (a : Addr.t) -> Farm_obs.Obs.heat_conflict st.State.obs ~region:a.Addr.region)
          ar.Arena.ro_addr
      end;
      finish (if ok then Ok () else Error Txn.Conflict)
    end
  end
  else begin
    let txid = State.fresh_txid st ~thread:tx.Txn.thread in
    Farm_obs.Obs.Span.set_tx tx.Txn.span ~txm:txid.Txid.machine ~txt:txid.Txid.thread
      ~txl:txid.Txid.local;
    (* Stage the write set in address order. The write-item records are
       fresh — LOCK and COMMIT-BACKUP receivers keep them resident until
       truncation — only the staging vector is reused. *)
    Addr.Map.iter
      (fun addr (w : Txn.write_entry) ->
        Arena.Vec.push ar.Arena.items
          {
            Wire.addr;
            version = w.Txn.w_version;
            value = w.Txn.w_value;
            alloc_op = w.Txn.w_alloc;
            ts = 0;  (* the write timestamp is chosen after the locks *)
          };
        Arena.Vec.push ar.Arena.wregions addr.Addr.region)
      tx.Txn.writes;
    Arena.sort_uniq_ints ar.Arena.wregions;
    (* every written region heats up once per commit attempt *)
    Arena.Vec.iter
      (fun rid -> Farm_obs.Obs.heat_access st.State.obs ~region:rid)
      ar.Arena.wregions;
    (* ONE regions-written list per transaction, shared by every LOCK and
       COMMIT-BACKUP payload and by the live-tx record *)
    let regions_written = Arena.Vec.to_list ar.Arena.wregions in
    (* resolve mappings for every written region *)
    let missing = ref false in
    Arena.Vec.iter
      (fun rid ->
        match Txn.ensure_mapping st rid ~retries:5 with
        | Some info ->
            Arena.Vec.push ar.Arena.info_rid rid;
            Arena.Vec.push ar.Arena.infos info
        | None -> missing := true)
      ar.Arena.wregions;
    if !missing then begin
      State.forget_outstanding st txid;
      Txn.return_allocations tx;
      finish (Error Txn.Failed)
    end
    else begin
      let find_info rid =
        let rec go i =
          if Arena.Vec.get ar.Arena.info_rid i = rid then Arena.Vec.get ar.Arena.infos i
          else go (i + 1)
        in
        go 0
      in
      Arena.Vec.iter
        (fun (w : Wire.write_item) ->
          let info = find_info w.Wire.addr.Addr.region in
          Arena.group_add ar.Arena.primaries ~dst:info.Wire.primary w;
          List.iter (fun b -> Arena.group_add ar.Arena.backups ~dst:b w) info.Wire.backups)
        ar.Arena.items;
      Arena.Vec.iter
        (fun (a : Addr.t) -> Arena.Vec.push ar.Arena.rregions a.Addr.region)
        ar.Arena.ro_addr;
      Arena.sort_uniq_ints ar.Arena.rregions;
      let lt =
        {
          State.lt_txid = txid;
          lt_written_regions = regions_written;
          lt_read_regions = Arena.Vec.to_list ar.Arena.rregions;
          lt_outcome = Ivar.create ();
          lt_recovering = false;
          lt_born = State.now st;
        }
      in
      Txid.Tbl.replace st.State.active_txs txid lt;
      (* {2 Reservations}: space for every record of the protocol plus the
         truncation allowance, at every participant (§4) — sized without
         building any payload. *)
      let nregions = Arena.Vec.length ar.Arena.wregions in
      let group_writes_bytes (g : Wire.write_item Arena.group) =
        Arena.Vec.fold (fun acc w -> acc + Wire.write_item_bytes w) 0 g.Arena.g_items
      in
      let reserve_for dst n =
        (* log-ring wait: time spent flushing/retrying because the remote
           ring is full is its own blame category, not execute CPU *)
        let t0 = Time.to_ns (State.now st) in
        Logio.reserve_or_flush st ~dst n;
        Farm_obs.Obs.Span.claim tx.Txn.span Farm_obs.Obs.B_logring_wait
          (Time.to_ns (State.now st) - t0);
        let a = Arena.acct_for ar.Arena.acct dst in
        a.Arena.a_reserved <- a.Arena.a_reserved + n
      in
      for gi = 0 to ar.Arena.primaries.Arena.live - 1 do
        let g = Arena.group ar.Arena.primaries gi in
        reserve_for g.Arena.g_dst
          (Wire.lock_record_base_bytes ~nregions ~writes_bytes:(group_writes_bytes g)
          + Wire.ctl_record_base_bytes (* COMMIT-PRIMARY *)
          + Logio.trunc_allowance)
      done;
      for gi = 0 to ar.Arena.backups.Arena.live - 1 do
        let g = Arena.group ar.Arena.backups gi in
        reserve_for g.Arena.g_dst
          (Wire.lock_record_base_bytes ~nregions ~writes_bytes:(group_writes_bytes g)
          + Logio.trunc_allowance)
      done;
      (* deterministic participant order for truncation and leftovers *)
      Arena.accts_sort ar.Arena.acct;
      let release_leftovers () =
        Arena.accts_iter
          (fun a ->
            let allowance = if a.Arena.a_trunc_queued then Logio.trunc_allowance else 0 in
            let leftover = a.Arena.a_reserved - a.Arena.a_consumed - allowance in
            if leftover > 0 then Ringlog.unreserve (State.log_to st a.Arena.a_dst) leftover)
          ar.Arena.acct
      in
      let cleanup () =
        Txid.Tbl.remove st.State.active_txs txid;
        Txid.Tbl.remove st.State.pending_lock txid;
        release_leftovers ()
      in
      let recovered_result (o : State.outcome) =
        (* recovery owns truncation (TRUNCATE-RECOVERY) and the books *)
        Txid.Tbl.remove st.State.active_txs txid;
        Txid.Tbl.remove st.State.pending_lock txid;
        State.forget_outstanding st txid;
        match o with
        | State.Committed -> finish (Ok ())
        | State.Aborted ->
            Txn.return_allocations tx;
            finish (Error Txn.Failed)
      in
      (* A failed log append means the reliable channel to that machine is
         broken — the NIC gave up retransmitting — so the machine is
         suspect. Reporting it (precise membership, §3) starts the
         reconfiguration whose transaction recovery then resolves this
         transaction; without the report a transient partition could leave
         the coordinator waiting for a configuration change that never
         comes, its locks held forever. *)
      let suspect_append_failure m = st.State.on_suspect [ m ] in
      (* Stage one record per destination into the arena's append scratch
         and write them as a single doorbell-batched group, then settle the
         books: consumed space on success, suspicion on failure. Returns
         whether every record was acked. *)
      let append_group ?span ?on_complete (groups : Wire.write_item Arena.groups) payload_of =
        Arena.Vec.clear ar.Arena.ap_dst;
        Arena.Vec.clear ar.Arena.ap_pay;
        for gi = 0 to groups.Arena.live - 1 do
          let g = Arena.group groups gi in
          Arena.Vec.push ar.Arena.ap_dst g.Arena.g_dst;
          Arena.Vec.push ar.Arena.ap_pay (payload_of g)
        done;
        let n = Arena.Vec.length ar.Arena.ap_dst in
        let results =
          Logio.append_prepared ?span ?on_complete st ~thread:tx.Txn.thread ~n
            ~dst:(fun i -> Arena.Vec.get ar.Arena.ap_dst i)
            ~payload:(fun i -> Arena.Vec.get ar.Arena.ap_pay i)
        in
        let all_ok = ref true in
        for i = 0 to n - 1 do
          let dst = Arena.Vec.get ar.Arena.ap_dst i in
          match results.(i) with
          | Ok b ->
              let a = Arena.acct_for ar.Arena.acct dst in
              a.Arena.a_consumed <- a.Arena.a_consumed + b
          | Error _ ->
              all_ok := false;
              suspect_append_failure dst
        done;
        !all_ok
      in
      (* Wire payloads: write lists are fresh per destination (receivers
         retain them); a control record is immutable, so one COMMIT-PRIMARY
         value serves every destination. *)
      let lock_payload_of (g : Wire.write_item Arena.group) =
        Wire.Lock { txid; regions_written; writes = Arena.Vec.to_list g.Arena.g_items }
      in
      (* Snapshot protocol: the write timestamp, chosen once every lock is
         granted — above this clock's upper bound, above every locked
         object's head timestamp (from the LOCK replies), and above the
         transaction's own read timestamp. 0 in the baseline. *)
      let w_ts = ref 0 in
      (* COMMIT-BACKUP items carry the write timestamp the LOCK items could
         not know yet; the lists are fresh per destination anyway. *)
      let commit_backup_payload_of (g : Wire.write_item Arena.group) =
        let writes = Arena.Vec.to_list g.Arena.g_items in
        let writes =
          if !w_ts = 0 then writes
          else List.map (fun (w : Wire.write_item) -> { w with Wire.ts = !w_ts }) writes
        in
        Wire.Commit_backup { txid; regions_written; writes }
      in
      (* A failed log append reports a suspicion and assumes the resulting
         configuration change makes this transaction recovering (§5.3). That
         is not guaranteed: the suspect can heal before eviction, or an
         unrelated reconfiguration can win the race without changing any
         written region's replica set — then no drain ever classifies the
         transaction, nobody decides it, and its locks leak. But this
         coordinator is alive and owns the transaction until it fails, so it
         can decide the outcome itself — abort while the commit point is
         still ahead, commit once every COMMIT-BACKUP record is acked — and
         hand the decision to the recovery push, which retries COMMIT/
         ABORT-RECOVERY against every written region's replicas (re-resolving
         the mapping each round) until the locks are released everywhere.
         Vote collection is wrong here: pre-drain votes come from the
         primaries' resident logs alone, which cannot see COMMIT-BACKUP
         records held by backups. *)
      let recover_deciding outcome =
        lt.State.lt_recovering <- true;
        Recovery.coordinator_decide st txid ~regions:lt.State.lt_written_regions
          outcome
      in
      (* Abort: write ABORT records to the primaries, which release the
         locks and locally truncate the transaction. *)
      let abort_tx ~cause reason =
        abort_cause := Some cause;
        (* conflict heat lands on the regions the loser was contending for:
           its write set when a lock was refused, its read set when
           validation caught a concurrent writer *)
        (match cause with
        | State.Cause_lock ->
            Arena.Vec.iter
              (fun rid -> Farm_obs.Obs.heat_conflict st.State.obs ~region:rid)
              ar.Arena.wregions
        | State.Cause_validate ->
            Arena.Vec.iter
              (fun rid -> Farm_obs.Obs.heat_conflict st.State.obs ~region:rid)
              ar.Arena.rregions
        | _ -> ());
        let abort_record = Wire.Abort txid in
        if not (append_group ~span:tx.Txn.span ar.Arena.primaries (fun _ -> abort_record)) then
          (* an unreachable primary keeps its locks until the decision
             reaches it — make sure there is a decision *)
          recover_deciding State.Aborted;
        State.forget_outstanding st txid;
        Txn.return_allocations tx;
        cleanup ();
        finish (Error reason)
      in
      (* {2 Phase 1: LOCK} — one batched write group to all primaries. *)
      State.phase st State.Before_lock txid;
      Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_lock;
      let lw =
        {
          State.lw_awaiting = ar.Arena.primaries.Arena.live;
          lw_ok = true;
          lw_done = Ivar.create ();
          lw_max_ts = 0;
        }
      in
      Txid.Tbl.replace st.State.pending_lock txid lw;
      if not (append_group ~span:tx.Txn.span ar.Arena.primaries lock_payload_of) then
        (* an unreachable primary never replies, so [lw_done] may never
           fill — and since some locks may already be granted, abort: the
           decision fills [lt_outcome] and its push releases them *)
        recover_deciding State.Aborted;
      match race_outcome lt lw.State.lw_done with
      | Recovered o -> recovered_result o
      | Normal () ->
          if not lw.State.lw_ok then abort_tx ~cause:State.Cause_lock Txn.Conflict
          else begin
            if tx.Txn.read_ts >= 0 then
              w_ts :=
                max
                  (Clock.hi st.State.clock + 1)
                  (max (lw.State.lw_max_ts + 1) (tx.Txn.read_ts + 1));
            State.phase st State.After_lock txid;
            Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_validate;
            (* {2 Phase 2: VALIDATE} — one batched header read across all
               groups below tr, one RPC per group above it. *)
            let validated =
              Arena.Vec.length ar.Arena.ro_addr = 0
              || validate_ar ~span:tx.Txn.span st ar ~txid
            in
            if lt.State.lt_recovering then recovered_result (Ivar.read lt.State.lt_outcome)
            else if not validated then abort_tx ~cause:State.Cause_validate Txn.Conflict
            else begin
              State.phase st State.After_validate txid;
              Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_commit_backup;
              (* {2 Phase 3: COMMIT-BACKUP} — one batched write group; wait
                 for NIC acks from all backups before any COMMIT-PRIMARY
                 (required for serializability across failures, §4). *)
              let backups_ok =
                append_group ~span:tx.Txn.span ar.Arena.backups commit_backup_payload_of
              in
              if lt.State.lt_recovering then recovered_result (Ivar.read lt.State.lt_outcome)
              else if not backups_ok then begin
                (* a backup is gone, with COMMIT-BACKUP records at the
                   surviving ones: neither outcome is decidable here (§5.3
                   commits on the surviving records once the failed backup is
                   evicted). Park until a decision fills [lt_outcome]: the
                   eviction-triggered drain supplies it with full evidence,
                   and if the partition heals without a replica-set change
                   the park watchdog aborts instead *)
                recovered_result (Ivar.read lt.State.lt_outcome)
              end
              else begin
                State.phase st State.After_commit_backup txid;
                Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_commit_primary;
                (* {2 Phase 4: COMMIT-PRIMARY} — one batched write group
                   with first-ack semantics: report success on the first
                   hardware ack, delivered by the batch's per-op completion
                   hook; the group's bookkeeping finishes in the
                   background, holding its own arena reference. *)
                let first_ack = Ivar.create () in
                let all_acks = Ivar.create () in
                let commit_primary = Wire.Commit_primary { txid; ts = !w_ts } in
                Arena.retain ar;
                Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                    (* no [span] here: this append races the main path's
                       first-ack wait in a background process, and the span
                       may already be finished when it completes — the
                       coordinator's wait is the P_commit_primary segment's
                       default (propagation) *)
                    let ok =
                      append_group
                        ~on_complete:(fun _ r ->
                          match r with
                          | Ok () -> Ivar.fill_if_empty first_ack ()
                          | Error _ -> ())
                        ar.Arena.primaries
                        (fun _ -> commit_primary)
                    in
                    (* if every append failed, [first_ack] never fills and
                       the commit parks; on partial failure the unreachable
                       primary keeps its locks. Either way the outcome is
                       already fixed — every COMMIT-BACKUP record was acked,
                       the commit point is behind us — so decide commit and
                       let the push apply it at the unreachable primaries *)
                    if not ok then recover_deciding State.Committed;
                    Ivar.fill all_acks ();
                    Arena.release st.State.arena_pool ar);
                match race_outcome lt first_ack with
                | Recovered o -> recovered_result o
                | Normal () ->
                    State.phase st State.After_commit_primary txid;
                    (* {2 Commit wait (snapshot protocol)} — before the
                       commit is reported, wait until every machine's clock
                       lower bound has passed the write timestamp: any
                       transaction that begins after the report draws a
                       read timestamp above it (strict serializability,
                       FaRMv2 §3). Readers meanwhile wait on the object
                       locks, so no one observes the write early. *)
                    if !w_ts > 0 then begin
                      Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_commit_wait;
                      Clock.commit_wait st.State.clock ~ts:!w_ts
                    end;
                    (* {2 Phase 5: TRUNCATE} — lazily, after all primaries
                       acked, in the background. The segment is timed from
                       the report instant and recorded directly into the
                       phase histogram: the span itself finishes when the
                       application is told the commit succeeded. *)
                    let report_at = State.now st in
                    Arena.retain ar;
                    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                        (match race_outcome lt all_acks with
                        | Recovered _ ->
                            Txid.Tbl.remove st.State.active_txs txid;
                            State.forget_outstanding st txid
                        | Normal () ->
                            Arena.accts_iter
                              (fun a ->
                                State.queue_truncation st ~dst:a.Arena.a_dst txid;
                                a.Arena.a_trunc_queued <- true)
                              ar.Arena.acct;
                            State.forget_outstanding st txid;
                            cleanup ();
                            State.phase st State.After_truncate txid;
                            let trunc_ns =
                              Time.to_ns (Time.sub (State.now st) report_at)
                            in
                            Farm_obs.Obs.record_phase st.State.obs
                              Farm_obs.Obs.P_truncate trunc_ns;
                            (* recorded into the blame accounting at the same
                               site so the per-category and per-phase totals
                               reconcile exactly *)
                            if Farm_obs.Obs.blame_enabled st.State.obs then
                              Farm_obs.Obs.record_blame st.State.obs
                                Farm_obs.Obs.B_truncate trunc_ns;
                            (* the span has already finished; its TRUNCATE
                               slice is emitted here, like its histogram
                               segment *)
                            Farm_obs.Tracer.slice_tx
                              (Farm_obs.Obs.tracer st.State.obs)
                              ~tid:tx.Txn.thread ~step:Farm_obs.Tracer.T_truncate
                              ~start:(Time.to_ns report_at) ~arg:0
                              ~txm:txid.Txid.machine ~txt:txid.Txid.thread
                              ~txl:txid.Txid.local);
                        Arena.release st.State.arena_pool ar);
                    finish (Ok ())
              end
            end
          end
    end
  end
