open Farm_sim


(* The FaRM commit protocol (§4, Figure 4):

     1. LOCK            one-sided log write to each written-object primary
     2. VALIDATE        one-sided version reads (RPC above the tr threshold)
     3. COMMIT-BACKUP   one-sided log write to each backup; wait NIC acks
     4. COMMIT-PRIMARY  one-sided log write; report after >= 1 ack
     5. TRUNCATE        lazy, piggybacked on later records

   The coordinator is unreplicated and talks directly to primaries and
   backups. Before starting, it reserves log space for every record the
   protocol can write — including truncations — to guarantee progress.

   Each phase's one-sided writes go out as a single doorbell-batched verb
   group (Fabric.one_sided_write_batch via Logio.append_batch): the NIC is
   rung once per phase and the completions reaped together, so a
   multi-participant commit pays ~one issue/poll instead of one per
   participant. Params.doorbell_batching restores the unbatched pipeline
   for ablation.

   A configuration change can make the transaction "recovering" (§5.3);
   from that point the coordinator must ignore completions and defer to the
   recovery protocol's vote/decide outcome, which arrives on
   [lt_outcome]. *)

type 'a race = Normal of 'a | Recovered of State.outcome

let race_outcome (lt : State.tx_live) (iv : 'a Ivar.t) : 'a race =
  Proc.suspend (fun resume ->
      Ivar.on_fill iv (fun v -> resume (Ok (Normal v)));
      Ivar.on_fill lt.State.lt_outcome (fun o -> resume (Ok (Recovered o))))

let add_to tbl key n =
  let cur = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0 in
  Hashtbl.replace tbl key (cur + n)

let get0 tbl key = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0

let add_to_list tbl key v =
  let cur = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (v :: cur)

(* {1 Read validation (§4 step 2)} *)

(* Target-side memory access of a header read: what the remote NIC DMAs at
   the linearization instant. *)
let remote_header st ~dst ~(addr : Addr.t) () =
  match State.peer st dst with
  | None -> None
  | Some pst -> (
      match State.replica pst addr.Addr.region with
      | Some rep when rep.State.role = State.Primary && rep.State.active ->
          Some (Objmem.header rep ~off:addr.Addr.offset)
      | _ -> None)

(* One-sided read of just an object header from its primary. *)
let read_header_at st ~dst ~(addr : Addr.t) =
  if dst = st.State.id then begin
    Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_local_read;
    match State.replica st addr.Addr.region with
    | Some rep when rep.State.role = State.Primary && rep.State.active ->
        Ok (Some (Objmem.header rep ~off:addr.Addr.offset))
    | _ -> Ok None
  end
  else
    Farm_net.Fabric.one_sided_read st.State.fabric ~src:st.State.id ~dst ~bytes:16
      (remote_header st ~dst ~addr)

(* Validate the read set: group the objects read (and not written) by
   primary; use one-sided RDMA version reads for small groups — issued as
   one doorbell batch spanning every such group — and one RPC above the
   [validate_rpc_threshold] (tr) to trade latency for CPU. *)
let validate st ~txid (reads : (Addr.t * int) list) =
  let by_primary = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun (addr, version) ->
      match State.region_info st addr.Addr.region with
      | Some info -> add_to_list by_primary info.Wire.primary (addr, version)
      | None -> ok := false)
    reads;
  if not !ok then false
  else begin
    let groups = Hashtbl.fold (fun p items acc -> (p, items) :: acc) by_primary [] in
    let rdma_groups, rpc_groups =
      List.partition
        (fun (_, items) ->
          List.length items <= st.State.params.Params.validate_rpc_threshold)
        groups
    in
    let check_header version = function
      | Some h -> if Obj_layout.is_locked h || Obj_layout.version h <> version then ok := false
      | None -> ok := false
    in
    let rpc_jobs =
      List.map
        (fun (p, items) () ->
          let flow =
            Farm_obs.Tracer.flow_id ~machine:txid.Txid.machine
              ~thread:txid.Txid.thread ~local:txid.Txid.local ~tag:6 ~dst:p
          in
          match
            Comms.call st ~dst:p ~timeout:(Time.ms 20) ~flow
              (Wire.Validate_req { txid; items })
          with
          | Ok (Wire.Validate_reply { ok = reply_ok; _ }) -> if not reply_ok then ok := false
          | Ok _ | Error _ -> ok := false)
        rpc_groups
    in
    let rdma_jobs =
      if rdma_groups = [] then []
      else if st.State.params.Params.doorbell_batching then
        [
          (fun () ->
            (* one header-read batch across ALL small groups (local items
               are read directly, no NIC involved) *)
            let remote = ref [] in
            List.iter
              (fun (p, items) ->
                List.iter
                  (fun ((addr : Addr.t), version) ->
                    if p = st.State.id then
                      match read_header_at st ~dst:p ~addr with
                      | Ok h -> check_header version h
                      | Error _ -> ok := false
                    else remote := (p, addr, version) :: !remote)
                  items)
              rdma_groups;
            let remote = List.rev !remote in
            let results =
              Farm_net.Fabric.one_sided_read_batch st.State.fabric ~src:st.State.id
                (List.map (fun (p, addr, _) -> (p, 16, remote_header st ~dst:p ~addr)) remote)
            in
            List.iteri
              (fun i (_, _, version) ->
                match results.(i) with
                | Ok h -> check_header version h
                | Error _ -> ok := false)
              remote);
        ]
      else
        (* ablation path: the pre-batching pipeline read each group's
           headers serially, one full-cost verb at a time *)
        List.map
          (fun (p, items) () ->
            List.iter
              (fun ((addr : Addr.t), version) ->
                if !ok then
                  match read_header_at st ~dst:p ~addr with
                  | Ok h -> check_header version h
                  | Error _ -> ok := false)
              items)
          rdma_groups
    in
    Comms.par_iter st (rdma_jobs @ rpc_jobs);
    !ok
  end

(* {1 The commit path} *)

let commit (tx : Txn.t) : (unit, Txn.abort_reason) result =
  let st = tx.Txn.st in
  if tx.Txn.finished then invalid_arg "Commit.commit: transaction already finished";
  tx.Txn.finished <- true;
  let commit_start = State.now st in
  (* protocol-level abort cause, set where the abort decision is made
     (lock refusal / validation failure); unset means finish derives it
     from the reason (Failed -> timeout) *)
  let abort_cause = ref None in
  let finish result =
    (match result with
    | Ok () ->
        State.record_commit st ~latency:(Time.sub (State.now st) commit_start);
        Stats.Hist.record st.State.metrics.tx_latency
          (Time.to_ns (Time.sub (State.now st) tx.Txn.t_started));
        Farm_obs.Obs.Span.finish tx.Txn.span ~committed:true
    | Error e ->
        Farm_obs.Obs.Span.finish tx.Txn.span ~committed:false;
        State.record_abort ~reason:(Txn.reason_index e) ?cause:!abort_cause st);
    result
  in
  let reads_only =
    List.rev
      (Addr.Map.fold
         (fun a (r : Txn.read_entry) acc ->
           if Addr.Map.mem a tx.Txn.writes then acc else (a, r.Txn.r_version) :: acc)
         tx.Txn.reads [])
  in
  if Addr.Map.is_empty tx.Txn.writes then begin
    (* Read-only transactions: serialization point is the last read;
       single-object reads are already atomic and need no validation. *)
    if List.length reads_only <= 1 then finish (Ok ())
    else begin
      let txid = State.fresh_txid st ~thread:tx.Txn.thread in
      Farm_obs.Obs.Span.set_tx tx.Txn.span ~txm:txid.Txid.machine
        ~txt:txid.Txid.thread ~txl:txid.Txid.local;
      Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_validate;
      let ok = validate st ~txid reads_only in
      State.forget_outstanding st txid;
      if not ok then abort_cause := Some State.Cause_validate;
      finish (if ok then Ok () else Error Txn.Conflict)
    end
  end
  else begin
    let txid = State.fresh_txid st ~thread:tx.Txn.thread in
    Farm_obs.Obs.Span.set_tx tx.Txn.span ~txm:txid.Txid.machine ~txt:txid.Txid.thread
      ~txl:txid.Txid.local;
    let items =
      Addr.Map.bindings tx.Txn.writes
      |> List.map (fun (addr, (w : Txn.write_entry)) ->
             {
               Wire.addr;
               version = w.Txn.w_version;
               value = w.Txn.w_value;
               alloc_op = w.Txn.w_alloc;
             })
    in
    let regions_written =
      List.sort_uniq compare (List.map (fun (w : Wire.write_item) -> w.Wire.addr.Addr.region) items)
    in
    (* resolve mappings for every written region *)
    let infos = Hashtbl.create 8 in
    List.iter
      (fun rid ->
        match Txn.ensure_mapping st rid ~retries:5 with
        | Some info -> Hashtbl.replace infos rid info
        | None -> ())
      regions_written;
    if Hashtbl.length infos <> List.length regions_written then begin
      State.forget_outstanding st txid;
      Txn.return_allocations tx;
      finish (Error Txn.Failed)
    end
    else begin
      let primaries = Hashtbl.create 8 and backups = Hashtbl.create 8 in
      List.iter
        (fun (w : Wire.write_item) ->
          let info = Hashtbl.find infos w.Wire.addr.Addr.region in
          add_to_list primaries info.Wire.primary w;
          List.iter (fun b -> add_to_list backups b w) info.Wire.backups)
        items;
      let primary_list = Hashtbl.fold (fun p its acc -> (p, List.rev its) :: acc) primaries [] in
      let backup_list = Hashtbl.fold (fun b its acc -> (b, List.rev its) :: acc) backups [] in
      let participants =
        List.sort_uniq compare (List.map fst primary_list @ List.map fst backup_list)
      in
      let lt =
        {
          State.lt_txid = txid;
          lt_written_regions = regions_written;
          lt_read_regions =
            List.sort_uniq compare (List.map (fun ((a : Addr.t), _) -> a.Addr.region) reads_only);
          lt_outcome = Ivar.create ();
          lt_recovering = false;
        }
      in
      Txid.Tbl.replace st.State.active_txs txid lt;
      (* {2 Reservations}: space for every record of the protocol plus the
         truncation allowance, at every participant (§4). *)
      let reserved = Hashtbl.create 8 and consumed = Hashtbl.create 8 in
      let trunc_queued = Hashtbl.create 8 in
      List.iter
        (fun (p, its) ->
          let n =
            Logio.base_bytes (Wire.Lock { txid; regions_written; writes = its })
            + Logio.base_bytes (Wire.Commit_primary txid)
            + Logio.trunc_allowance
          in
          Logio.reserve_or_flush st ~dst:p n;
          add_to reserved p n)
        primary_list;
      List.iter
        (fun (b, its) ->
          let n =
            Logio.base_bytes (Wire.Commit_backup { txid; regions_written; writes = its })
            + Logio.trunc_allowance
          in
          Logio.reserve_or_flush st ~dst:b n;
          add_to reserved b n)
        backup_list;
      let release_leftovers () =
        List.iter
          (fun m ->
            let allowance = if Hashtbl.mem trunc_queued m then Logio.trunc_allowance else 0 in
            let leftover = get0 reserved m - get0 consumed m - allowance in
            if leftover > 0 then Ringlog.unreserve (State.log_to st m) leftover)
          participants
      in
      let cleanup () =
        Txid.Tbl.remove st.State.active_txs txid;
        Txid.Tbl.remove st.State.pending_lock txid;
        release_leftovers ()
      in
      let recovered_result (o : State.outcome) =
        (* recovery owns truncation (TRUNCATE-RECOVERY) and the books *)
        Txid.Tbl.remove st.State.active_txs txid;
        Txid.Tbl.remove st.State.pending_lock txid;
        State.forget_outstanding st txid;
        match o with
        | State.Committed -> finish (Ok ())
        | State.Aborted ->
            Txn.return_allocations tx;
            finish (Error Txn.Failed)
      in
      (* A failed log append means the reliable channel to that machine is
         broken — the NIC gave up retransmitting — so the machine is
         suspect. Reporting it (precise membership, §3) starts the
         reconfiguration whose transaction recovery then resolves this
         transaction; without the report a transient partition could leave
         the coordinator waiting for a configuration change that never
         comes, its locks held forever. *)
      let suspect_append_failure m = st.State.on_suspect [ m ] in
      (* Write one record per destination as a single doorbell-batched
         group, then settle the books: consumed space on success, suspicion
         on failure. Returns whether every record was acked. *)
      let append_group ?on_complete dsts payload_of =
        let results =
          Logio.append_batch ?on_complete st ~thread:tx.Txn.thread
            (List.map (fun (m, its) -> (m, payload_of m its)) dsts)
        in
        let all_ok = ref true in
        List.iteri
          (fun i (m, _) ->
            match results.(i) with
            | Ok n -> add_to consumed m n
            | Error _ ->
                all_ok := false;
                suspect_append_failure m)
          dsts;
        !all_ok
      in
      (* Abort: write ABORT records to the primaries, which release the
         locks and locally truncate the transaction. *)
      let abort_tx ~cause reason =
        abort_cause := Some cause;
        ignore (append_group primary_list (fun _ _ -> Wire.Abort txid));
        State.forget_outstanding st txid;
        Txn.return_allocations tx;
        cleanup ();
        finish (Error reason)
      in
      (* {2 Phase 1: LOCK} — one batched write group to all primaries. *)
      State.phase st State.Before_lock txid;
      Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_lock;
      let lw =
        { State.lw_awaiting = List.length primary_list; lw_ok = true; lw_done = Ivar.create () }
      in
      Txid.Tbl.replace st.State.pending_lock txid lw;
      ignore
        (append_group primary_list (fun _ its ->
             Wire.Lock { txid; regions_written; writes = its }));
      match race_outcome lt lw.State.lw_done with
      | Recovered o -> recovered_result o
      | Normal () ->
          if not lw.State.lw_ok then abort_tx ~cause:State.Cause_lock Txn.Conflict
          else begin
            State.phase st State.After_lock txid;
            Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_validate;
            (* {2 Phase 2: VALIDATE} — one batched header read across all
               groups below tr, one RPC per group above it. *)
            let validated = reads_only = [] || validate st ~txid reads_only in
            if lt.State.lt_recovering then recovered_result (Ivar.read lt.State.lt_outcome)
            else if not validated then abort_tx ~cause:State.Cause_validate Txn.Conflict
            else begin
              State.phase st State.After_validate txid;
              Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_commit_backup;
              (* {2 Phase 3: COMMIT-BACKUP} — one batched write group; wait
                 for NIC acks from all backups before any COMMIT-PRIMARY
                 (required for serializability across failures, §4). *)
              let backups_ok =
                append_group backup_list (fun _ its ->
                    Wire.Commit_backup { txid; regions_written; writes = its })
              in
              if lt.State.lt_recovering then recovered_result (Ivar.read lt.State.lt_outcome)
              else if not backups_ok then
                (* a backup is gone: the suspicion just reported brings the
                   configuration change that makes this transaction
                   recovering *)
                recovered_result (Ivar.read lt.State.lt_outcome)
              else begin
                State.phase st State.After_commit_backup txid;
                Farm_obs.Obs.Span.enter tx.Txn.span Farm_obs.Obs.P_commit_primary;
                (* {2 Phase 4: COMMIT-PRIMARY} — one batched write group
                   with first-ack semantics: report success on the first
                   hardware ack, delivered by the batch's per-op completion
                   hook; the group's bookkeeping finishes in the
                   background. *)
                let first_ack = Ivar.create () in
                let all_acks = Ivar.create () in
                Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                    ignore
                      (append_group
                         ~on_complete:(fun _ r ->
                           match r with
                           | Ok () -> Ivar.fill_if_empty first_ack ()
                           | Error _ -> ())
                         primary_list
                         (fun _ _ -> Wire.Commit_primary txid));
                    Ivar.fill all_acks ());
                match race_outcome lt first_ack with
                | Recovered o -> recovered_result o
                | Normal () ->
                    State.phase st State.After_commit_primary txid;
                    (* {2 Phase 5: TRUNCATE} — lazily, after all primaries
                       acked, in the background. The segment is timed from
                       the report instant and recorded directly into the
                       phase histogram: the span itself finishes when the
                       application is told the commit succeeded. *)
                    let report_at = State.now st in
                    Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                        match race_outcome lt all_acks with
                        | Recovered _ ->
                            Txid.Tbl.remove st.State.active_txs txid;
                            State.forget_outstanding st txid
                        | Normal () ->
                            List.iter
                              (fun m ->
                                State.queue_truncation st ~dst:m txid;
                                Hashtbl.replace trunc_queued m ())
                              participants;
                            State.forget_outstanding st txid;
                            cleanup ();
                            State.phase st State.After_truncate txid;
                            Farm_obs.Obs.record_phase st.State.obs
                              Farm_obs.Obs.P_truncate
                              (Time.to_ns (Time.sub (State.now st) report_at));
                            (* the span has already finished; its TRUNCATE
                               slice is emitted here, like its histogram
                               segment *)
                            Farm_obs.Tracer.slice_tx
                              (Farm_obs.Obs.tracer st.State.obs)
                              ~tid:tx.Txn.thread ~step:Farm_obs.Tracer.T_truncate
                              ~start:(Time.to_ns report_at) ~arg:0
                              ~txm:txid.Txid.machine ~txt:txid.Txid.thread
                              ~txl:txid.Txid.local);
                    finish (Ok ())
              end
            end
          end
    end
  end
