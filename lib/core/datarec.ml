open Farm_sim

(* Bulk data recovery (§5.4).

   A new backup starts from a freshly zeroed replica and re-replicates the
   region by reading blocks from the primary with one-sided RDMA. Recovery
   only starts after ALL-REGIONS-ACTIVE (it is not needed to resume normal
   operation) and is paced: each worker schedules its next read at a random
   point within [recovery_interval] after the start of the previous one, so
   foreground throughput is unaffected (Figures 9b/10b); the aggressive
   settings of Figures 14/15 raise block size and in-flight reads.

   Recovered objects are examined slab block by slab block (the replicated
   block headers give each block's object size) and applied only when the
   recovered version exceeds the local one, so races with concurrent new
   transactions — which do reach this backup's log — are benign. *)

(* Apply one fully-assembled slab block to the local replica. *)
let apply_block st (rep : State.replica) ~block (data : Bytes.t) =
  match Hashtbl.find_opt rep.State.block_headers block with
  | None -> ()  (* never carved into a slab: nothing live in it *)
  | Some slot ->
      let bs = st.State.params.Params.block_size in
      let base = block * bs in
      let count = Bytes.length data / slot in
      for i = 0 to count - 1 do
        let rel = i * slot in
        let local_off = base + rel in
        let recovered = Bytes.get_int64_le data rel in
        let local = Obj_layout.get rep.State.mem ~off:local_off in
        if Obj_layout.version recovered > Obj_layout.version local then begin
          (* install with the lock bit cleared: if the source was mid-commit
             the commit reaches this backup through its own log *)
          Bytes.blit data rel rep.State.mem local_off slot;
          Obj_layout.set rep.State.mem ~off:local_off
            (Obj_layout.with_locked recovered false)
        end
      done

(* A fresh backup's zeroed replica may predate every slab in the region:
   header replication (§5.5) only covers blocks carved after it joined and
   the primary-side sync only runs on primary change. Fetch the primary's
   replicated header table before copying so [apply_block] knows every
   block's object size. *)
let fetch_block_headers st (rep : State.replica) =
  match State.region_info st rep.State.rid with
  | None -> false
  | Some info -> (
      match
        Farm_net.Fabric.one_sided_read st.State.fabric ~src:st.State.id
          ~dst:info.Wire.primary
          ~bytes:(8 * (1 + Hashtbl.length rep.State.block_headers))
          (fun () ->
            match State.peer st info.Wire.primary with
            | None -> None
            | Some pst -> (
                match State.replica pst rep.State.rid with
                | Some prep when prep.State.role = State.Primary ->
                    Some
                      (Hashtbl.fold
                         (fun b s acc -> (b, s) :: acc)
                         prep.State.block_headers [])
                | _ -> None))
      with
      | Ok (Some headers) ->
          List.iter
            (fun (b, s) ->
              if not (Hashtbl.mem rep.State.block_headers b) then
                Hashtbl.replace rep.State.block_headers b s)
            headers;
          true
      | Ok None | Error _ ->
          (* primary moved or died; the caller retries or the next
             reconfiguration re-assigns data recovery *)
          false)

let read_chunk st ~dst ~rid ~base ~len =
  Farm_net.Fabric.one_sided_read st.State.fabric ~src:st.State.id ~dst ~bytes:len
    (fun () ->
      match State.peer st dst with
      | None -> None
      | Some pst -> (
          match State.replica pst rid with
          | Some prep when prep.State.role = State.Primary ->
              Some (Bytes.sub prep.State.mem base len)
          | _ -> None))

(* Recover one region at a new backup: slab blocks are split across worker
   threads; each block is fetched in [recovery_block]-sized reads
   ([recovery_concurrency] in flight), assembled, and applied. *)
let rec recover_region st (rep : State.replica) ~on_done =
  let p = st.State.params in
  (* a region down to one surviving replica is re-replicated aggressively:
     bigger reads, more in flight, no pacing (§6.4) *)
  let critical =
    match State.region_info st rep.State.rid with
    | Some info -> info.Wire.critical
    | None -> false
  in
  let p =
    if critical then
      {
        p with
        Params.recovery_block = max p.Params.recovery_block (32 * 1024);
        recovery_concurrency = max p.Params.recovery_concurrency 4;
        recovery_interval = Time.min p.Params.recovery_interval (Time.us 100);
      }
    else p
  in
  let bs = p.Params.block_size in
  let nblocks = (p.Params.region_size + bs - 1) / bs in
  let chunk = min p.Params.recovery_block bs in
  let chunks_per_block = (bs + chunk - 1) / chunk in
  let workers = min p.Params.threads_per_machine 8 in
  let per_worker = (nblocks + workers - 1) / workers in
  let remaining = ref workers in
  let primary () =
    match State.region_info st rep.State.rid with
    | Some info -> Some info.Wire.primary
    | None -> None
  in
  let failed = ref false in
  Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
      if not (fetch_block_headers st rep) then failed := true;
      for w = 0 to workers - 1 do
        Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
        let lo = w * per_worker and hi = min nblocks ((w + 1) * per_worker) in
        for block = lo to hi - 1 do
          Proc.check_cancelled ();
          let buf = Bytes.make bs '\000' in
          let got = ref true in
          let c = ref 0 in
          while !c < chunks_per_block do
            let started = State.now st in
            let batch = min p.Params.recovery_concurrency (chunks_per_block - !c) in
            let jobs =
              List.init batch (fun k () ->
                  let off = (!c + k) * chunk in
                  let base = (block * bs) + off in
                  let len = min chunk (bs - off) in
                  match primary () with
                  | None -> got := false
                  | Some dst -> (
                      match read_chunk st ~dst ~rid:rep.State.rid ~base ~len with
                      | Ok (Some data) -> Bytes.blit data 0 buf off len
                      | Ok None | Error _ ->
                          (* primary moved or died; this block is skipped
                             now and the next reconfiguration re-assigns
                             data recovery *)
                          got := false;
                          Proc.sleep (Time.ms 1)))
            in
            Comms.par_iter st jobs;
            c := !c + batch;
            (* pacing: the next read starts at a random point within the
               interval after the start of the previous one *)
            if Time.( > ) p.Params.recovery_interval Time.zero then begin
              let window = Time.to_ns p.Params.recovery_interval in
              let next =
                Time.add started
                  (Time.ns ((window / 2) + Rng.int st.State.rng (max 1 (window / 2))))
              in
              if Time.( > ) next (State.now st) then Proc.sleep_until next
            end
          done;
          if !got then begin
            Cpu.exec st.State.cpu ~cost:(Time.ns (100 * (bs / 256)));
            apply_block st rep ~block buf
          end
          else failed := true
        done;
        decr remaining;
        if !remaining = 0 then begin
          if !failed then
            (* part of the region was unreadable (primary unreachable
               mid-recovery): keep the replica marked fresh and retry after
               a pacing delay — re-reading already-applied blocks is benign
               under [apply_block]'s version check *)
            Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
                Proc.sleep (Time.ms 2);
                recover_region st rep ~on_done)
          else begin
            rep.State.fresh_backup <- false;
            (* the copied blocks carry only current versions, no history:
               the chain cannot serve snapshots older than "now" *)
            (match rep.State.vc with
            | Some vc -> Verchain.raise_floor vc (Clock.hi st.State.clock + 1)
            | None -> ());
            on_done ()
          end
        end)
      done)

(* Entry point: ALL-REGIONS-ACTIVE received — start data recovery for every
   freshly-assigned replica, and allocator recovery (§5.5) for every
   promoted primary. *)
let on_all_regions_active st =
  (match st.State.recovery with
  | Some rs -> rs.State.rs_all_active <- true
  | None -> ());
  let cfg = st.State.config.Config.id in
  let fresh =
    Hashtbl.fold
      (fun _ (rep : State.replica) acc -> if rep.State.fresh_backup then rep :: acc else acc)
      st.State.nv.replicas []
  in
  if fresh <> [] then st.State.trace "data-rec-start";
  List.iter
    (fun (rep : State.replica) ->
      recover_region st rep ~on_done:(fun () ->
          Comms.send st ~dst:st.State.config.Config.cm
            (Wire.Region_recovered { cfg; rid = rep.State.rid })))
    fresh;
  (* allocator recovery: rebuild slab free lists on new primaries, paced *)
  Hashtbl.iter
    (fun _ (rep : State.replica) ->
      if rep.State.role = State.Primary && not rep.State.free_lists_valid then
        Allocmgr.recover_free_lists st rep ~on_done:(fun () -> ()))
    st.State.nv.replicas
