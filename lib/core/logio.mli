open Farm_net

(** Sender-side transaction-log writes (§4): reservation-backed one-sided
    appends with truncation piggybacking, plus the background flusher that
    lazily truncates idle logs. *)

val trunc_allowance : int
(** Bytes a transaction reserves per participant log for its eventual
    truncation entry. *)

val base_bytes : Wire.record -> int
(** Wire size of a record before piggybacked truncations. Computed without
    materializing a log record; see also {!Wire.lock_record_base_bytes}
    for sizing before the payload itself exists. *)

val append : State.t -> dst:int -> thread:int -> Wire.record -> (int, Fabric.error) result
(** Write a record into the log at [dst], draining this machine's pending
    truncations for [dst] into the piggyback fields. Blocks until the
    receiver NIC's hardware ack. Returns the caller's own share of consumed
    log space. *)

val append_prepared :
  ?span:Farm_obs.Obs.Span.t ->
  ?on_complete:(int -> (unit, Fabric.error) result -> unit) ->
  State.t ->
  thread:int ->
  n:int ->
  dst:(int -> int) ->
  payload:(int -> Wire.record) ->
  (int, Fabric.error) result array
(** Like {!append_batch}, with the batch described by indexed accessors
    ([dst i], [payload i] for [0 <= i < n]) so the caller can stage it in
    reused arena storage instead of building a list. [span] carries the
    calling transaction's blame span down to the batched verb (see
    {!Fabric.one_sided_write_batch_fn}); only the doorbell-batched path
    can claim — the unbatched ablation's writes run in child processes,
    whose time falls to the enclosing phase's default category. *)

val append_batch :
  ?on_complete:(int -> (unit, Fabric.error) result -> unit) ->
  State.t ->
  thread:int ->
  (int * Wire.record) list ->
  (int, Fabric.error) result array
(** Write one record per [(dst, payload)] as a single doorbell-batched verb
    group, draining each destination's pending truncations under one
    preparation pass. Blocks until every record has its hardware ack (or
    failed); results are per-record in order, each the caller's own share
    of consumed log space. [on_complete] fires at each record's individual
    completion instant. With {!Params.doorbell_batching} off, falls back to
    the pre-batching pipeline: parallel single writes, each paying full
    issue + poll. *)

val flush_truncations : State.t -> dst:int -> unit
(** Write an explicit TRUNCATE record carrying pending truncations. *)

val reserve_or_flush : State.t -> dst:int -> int -> unit
(** Reserve space, forcing explicit truncation while the log is full
    (liveness, §4). *)

val start_flusher : State.t -> unit
