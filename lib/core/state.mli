open Farm_sim

(** Shared mutable state of one FaRM machine.

    All protocol modules ({!Commit}, {!Logproc}, {!Lease}, {!Cm},
    {!Recovery}, {!Datarec}, {!Allocmgr}) operate on this record; {!Node}
    wires message dispatch; {!Cluster} builds the fleet.

    State splits between process state, which dies with the machine
    (caches, coordinator tables, leases, configuration), and NVRAM state
    ([nv]), owned by the cluster harness and surviving crashes: region
    replicas, block headers, and incoming ring logs. *)

type role = Primary | Backup

type replica = {
  rid : int;
  mem : Bytes.t;  (** the region bytes, in NVRAM *)
  mutable role : role;
  mutable active : bool;
      (** false while blocked for lock recovery (§5.3 step 1) *)
  mutable active_wait : unit Ivar.t;
  block_headers : (int, int) Hashtbl.t;
      (** block index -> object size; replicated in NVRAM (§5.5) *)
  free_lists : (int, int list ref) Hashtbl.t;
      (** primary-only, volatile: object size -> free offsets *)
  free_set : (int, unit) Hashtbl.t;
      (** membership mirror: an offset is listed at most once *)
  mutable next_free_block : int;
  mutable free_lists_valid : bool;
      (** false on a new primary until the recovery scan finishes *)
  mutable fresh_backup : bool;
      (** zeroed replica awaiting bulk data recovery (§5.4) *)
  vc : Verchain.t option;
      (** snapshot protocol only: archived object versions and head commit
          timestamps; [None] in the validate-at-commit baseline *)
}

type nvstate = {
  bank : Farm_nvram.Bank.t;
  replicas : (int, replica) Hashtbl.t;
  logs_in : (int, Ringlog.t) Hashtbl.t;  (** sender -> log stored here *)
}

(** {1 Coordinator wait-states} *)

type lock_wait = {
  mutable lw_awaiting : int;
  mutable lw_ok : bool;
  lw_done : unit Ivar.t;
  mutable lw_max_ts : int;
      (** snapshot protocol: largest head commit timestamp among the locked
          objects, folded in from the LOCK replies *)
}

type outcome = Committed | Aborted

type tx_live = {
  lt_txid : Txid.t;
  lt_written_regions : int list;
  lt_read_regions : int list;
  lt_outcome : outcome Ivar.t;  (** filled by recovery when it takes over *)
  mutable lt_recovering : bool;
  lt_born : Time.t;  (** commit start, for the coordinator's park watchdog *)
}

type trunc_track = { mutable low : int; above : (int, unit) Hashtbl.t }
(** Truncation tracking per coordinator thread: a low bound plus the set of
    truncated local ids above it (§5.3 step 6). *)

type rec_coord = {
  rc_txid : Txid.t;
  mutable rc_votes : (int * Wire.vote) list;
  mutable rc_regions : int list;
  mutable rc_decided : bool;
  mutable rc_pushing : bool;  (** a decision-push loop is running *)
  rc_created : Time.t;
}
(** Recovery-coordinator state for one recovering transaction. *)

type recovery_state = {
  rs_cfg : int;
  mutable rs_drained : bool;
  rs_local : Wire.tx_evidence Txid.Tbl.t;
  rs_need_recovery : (int, int list ref) Hashtbl.t;
  rs_region_txs : (int, Txid.Set.t ref) Hashtbl.t;
  rs_backup_has : (int * int, Txid.Set.t ref) Hashtbl.t;
  mutable rs_regions_active_sent : bool;
  mutable rs_all_active : bool;
}
(** Per-configuration-change recovery state (§5.3). *)

type lease_impl = Rpc_shared | Ud_shared | Ud_thread | Ud_thread_pri
(** The four lease-manager implementations of Figure 16. *)

type lease_state = {
  mutable impl : lease_impl;
  mutable last_grant_from_cm : Time.t;  (** last grant from my grantor *)
  mutable expiry_events : int;
  mutable suspended_until : Time.t;
  mutable cm_suspected : bool;
  peer_leases : (int, Time.t) Hashtbl.t;
      (** grantor side for group leaders in the two-level hierarchy *)
  mutable grantor_messages : int;
}

type cm_state = {
  mutable next_rid : int;
  owners : (int, Wire.region_info) Hashtbl.t;  (** authoritative region map *)
  cm_leases : (int, Time.t) Hashtbl.t;
  mutable regions_active_from : int list;
  mutable all_active_sent : bool;
  mutable ack_pending : (int * int list ref * unit Ivar.t) option;
  mutable pending_data_recovery : int;
  cm_wms : (int, int) Hashtbl.t;
      (** snapshot protocol: last watermark reported per machine *)
}

type metrics = {
  committed : Stats.Counter.t;
  aborted : Stats.Counter.t;
  abort_reasons : int array;
  commit_latency : Stats.Hist.t;
  tx_latency : Stats.Hist.t;
  throughput : Stats.Series.t;
  lockfree_reads : Stats.Counter.t;
  recovered_txs : Stats.Counter.t;
}

type commit_phase =
  | Before_lock
  | After_lock
  | After_validate
  | After_commit_backup
  | After_commit_primary
  | After_truncate
      (** Hook points for the failure-injection tests. *)

type t = {
  id : int;
  engine : Engine.t;
  rng : Rng.t;
  params : Params.t;
  fabric : Wire.message Farm_net.Fabric.t;
  zk : Config.t Farm_coord.Zk.t;
  cpu : Cpu.t;
  nv : nvstate;
  clock : Clock.handle;
      (** this machine's bounded-uncertainty view of global time; present
          in both modes (keeps rng streams aligned), read only by the
          snapshot protocol *)
  mutable ctx : Proc.Ctx.t;
  mutable alive : bool;
  mutable config : Config.t;
  mutable region_map : (int, Wire.region_info) Hashtbl.t;  (** mapping cache *)
  mutable last_drained : int;
  mutable blocked : bool;  (** external client requests blocked *)
  mutable rejoining : bool;
      (** restarted after a crash: stays out of configurations that predate
          the reincarnation (see {!Cluster.restart_machine}) *)
  logs_out : (int, Ringlog.t) Hashtbl.t;  (** sender views of remote logs *)
  pollers : (int, bool ref) Hashtbl.t;
  spill : (int, int) Hashtbl.t;
      (** full region -> co-located overflow region for allocation *)
  next_local : int array;
  outstanding : (int, Txid.Set.t ref) Hashtbl.t;
  pending_lock : lock_wait Txid.Tbl.t;
  active_txs : tx_live Txid.Tbl.t;
  read_ts_active : (int, int) Hashtbl.t;
      (** snapshot protocol: active read timestamps (ts -> holder count);
          their minimum caps the local truncation watermark *)
  locks_held : Wire.write_item list Txid.Tbl.t;
      (** primary-side lock ownership: the ABORT path must release exactly
          the locks its transaction took *)
  arena_pool : Arena.pool;
      (** per-commit scratch arenas; workers acquire one per commit *)
  pending_trunc : (int, Txid.t list ref) Hashtbl.t;
  truncated : (int, trunc_track) Hashtbl.t;  (** keyed by {!Txid.coord_id} *)
  mutable inflight : int;
  mutable inflight_blocked : int;
  deferred_trunc : (int, Txid.Set.t ref) Hashtbl.t;
  mutable recovery : recovery_state option;
  rec_coords : rec_coord Txid.Tbl.t;
  recovered_outcomes : outcome Txid.Tbl.t;
  lease : lease_state;
  mutable cm : cm_state option;
  mutable reconfig_active : bool;
  pending_suspects : (int, unit) Hashtbl.t;
  metrics : metrics;
  obs : Farm_obs.Obs.t;  (** per-machine observability sink *)
  directory : (int, t) Hashtbl.t;
      (** the cluster's "memory bus": one-sided operations reach remote
          replicas through it without touching the remote CPU *)
  mutable on_suspect : int list -> unit;
  mutable app_handler : (tag:int -> args:int array -> bool) option;
  mutable phase_hook : (commit_phase -> Txid.t -> unit) option;
  mutable trace : string -> unit;
}

val create_metrics : unit -> metrics

val create :
  id:int ->
  engine:Engine.t ->
  rng:Rng.t ->
  params:Params.t ->
  fabric:Wire.message Farm_net.Fabric.t ->
  zk:Config.t Farm_coord.Zk.t ->
  cpu:Cpu.t ->
  nv:nvstate ->
  clock:Clock.handle ->
  config:Config.t ->
  directory:(int, t) Hashtbl.t ->
  obs:Farm_obs.Obs.t ->
  t

val now : t -> Time.t
val is_cm : t -> bool
val ensure_cm : t -> cm_state
val peer : t -> int -> t option

(** {1 Replicas and regions} *)

val add_replica : t -> rid:int -> role:role -> replica
(** Create (or find) the local replica record, backed by zeroed NVRAM. *)

val region_info : t -> int -> Wire.region_info option
val primary_of : t -> int -> int option
val replica : t -> int -> replica option
val replica_exn : t -> int -> replica

val await_active : replica -> unit
(** Block until lock recovery re-activates the region (§5.3 step 4). *)

val set_active : replica -> unit
val set_inactive : replica -> unit

(** {1 Logs and transactions} *)

val log_to : t -> int -> Ringlog.t

val fresh_txid : t -> thread:int -> Txid.t
val low_bound : t -> thread:int -> int
val forget_outstanding : t -> Txid.t -> unit

(** {1 Truncation tracking} *)

val trunc_track : t -> coord:int -> trunc_track
(** [coord] is a {!Txid.coord_id}-packed coordinator-thread identity. *)

val mark_truncated : t -> Txid.t -> unit
val update_low_bound : t -> coord:int -> int -> unit
val is_truncated : t -> Txid.t -> bool

val queue_truncation : t -> dst:int -> Txid.t -> unit
val take_truncations : t -> dst:int -> Txid.t list

(** {1 Snapshot read timestamps and the truncation watermark} *)

val register_read_ts : t -> int -> unit
val release_read_ts : t -> int -> unit

val min_active_read_ts : t -> int option
(** Smallest read timestamp of a transaction currently executing here. *)

val local_watermark : t -> int
(** min(smallest active read timestamp, clock lower bound): the largest
    watermark this machine can safely contribute to the cluster minimum —
    no transaction that begins here later can draw a smaller read
    timestamp. *)

val trim_chains : t -> wm:int -> int
(** Truncate every local replica's version chain below the cluster
    watermark; returns (and counts on [C_wm_trim]) the nodes recycled. *)

(** {1 Metrics and hooks} *)

val record_commit : t -> latency:Time.t -> unit

(** Why an abort happened, at the protocol level: a refused LOCK record, a
    failed VALIDATE read, a timeout (participant death / NIC give-up), or
    anything else (application aborts, allocation failures). Feeds the
    [C_abort_*] breakdown counters. *)
type abort_cause = Cause_lock | Cause_validate | Cause_timeout | Cause_other

val abort_cause_index : abort_cause -> int
val abort_cause_name : abort_cause -> string

val record_abort : ?reason:int -> ?cause:abort_cause -> t -> unit
(** [reason] is the {!Txn.abort_reason} tag carried on the flight-recorder
    event; [cause] the protocol-level breakdown bucket (derived from
    [reason] when omitted: [Failed] maps to [Cause_timeout], everything
    else to [Cause_other]). *)

val commit_phase_index : commit_phase -> int
val phase : t -> commit_phase -> Txid.t -> unit
