open Farm_sim

(* Receiver-side processing of transaction-log records (§4 steps 1, 4, 5
   and the recovering-transaction evidence collection of §5.3 step 3).

   Every DMA'd entry is processed by its own process under the machine's
   context, charged to the machine's CPU. The commit protocol orders the
   records that need ordering (see Ringlog); truncations are deferred while
   their transaction still has unprocessed records. *)

(* Is this transaction recovering in the current configuration (§5.3
   step 3)? True when its coordinator left the configuration or any written
   region changed replicas after the transaction's start configuration.
   (The read-region condition is evaluated by the coordinator itself, which
   is the only machine that knows the read set.) *)
let is_recovering st (txid : Txid.t) ~regions_written =
  txid.Txid.config < st.State.config.Config.id
  && ((not (Config.is_member st.State.config txid.Txid.machine))
     || List.exists
          (fun rid ->
            match State.region_info st rid with
            | Some info -> info.Wire.last_replica_change > txid.Txid.config
            | None -> true)
          regions_written)

let regions_of_record (r : Wire.log_record) =
  match r.payload with
  | Lock p | Commit_backup p -> p.regions_written
  | Commit_primary _ | Abort _ | Truncate_marker -> []

(* Merge a record into the machine's recovering-transaction evidence. *)
let record_evidence st txid (r : Wire.log_record) =
  match st.State.recovery with
  | None -> ()
  | Some rs ->
      let e =
        match Txid.Tbl.find_opt rs.rs_local txid with
        | Some e -> e
        | None ->
            let e =
              {
                Wire.ev_txid = txid;
                ev_regions = [];
                ev_saw = Wire.saw_nothing ();
                ev_payload = None;
              }
            in
            Txid.Tbl.replace rs.rs_local txid e;
            e
      in
      let e =
        match (e.Wire.ev_regions, regions_of_record r) with
        | [], (_ :: _ as regions) ->
            let e' = { e with Wire.ev_regions = regions } in
            Txid.Tbl.replace rs.rs_local txid e';
            e'
        | _ -> e
      in
      let e =
        match (e.Wire.ev_payload, r.payload) with
        | None, (Lock p | Commit_backup p) ->
            let e' = { e with Wire.ev_payload = Some p } in
            Txid.Tbl.replace rs.rs_local txid e';
            e'
        | Some p0, (Lock p | Commit_backup p) ->
            let e' = { e with Wire.ev_payload = Some (Payloads.merge_payloads p0 p) } in
            Txid.Tbl.replace rs.rs_local txid e';
            e'
        | Some _, (Commit_primary _ | Abort _ | Truncate_marker) -> e
        | None, (Commit_primary _ | Abort _ | Truncate_marker) -> e
      in
      (match r.payload with
      | Lock _ -> e.Wire.ev_saw.saw_lock <- true
      | Commit_backup _ -> e.Wire.ev_saw.saw_commit_backup <- true
      | Commit_primary _ -> e.Wire.ev_saw.saw_commit_primary <- true
      | Abort _ -> e.Wire.ev_saw.saw_abort <- true
      | Truncate_marker -> ())

(* {1 Truncation at the receiver (§4 step 5)} *)

let deferred_set st ~log_sender =
  match Hashtbl.find_opt st.State.deferred_trunc log_sender with
  | Some s -> s
  | None ->
      let s = ref Txid.Set.empty in
      Hashtbl.replace st.State.deferred_trunc log_sender s;
      s

(* Apply a truncation: backups apply the buffered updates to their region
   copies at truncation time; then the records are dropped and their space
   freed. Deferred if the transaction still has unprocessed entries. *)
let apply_truncation st log txid =
  if Ringlog.pending_count log txid > 0 then begin
    Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_trunc_deferred;
    let s = deferred_set st ~log_sender:(Ringlog.sender log) in
    s := Txid.Set.add txid !s
  end
  else begin
    Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_trunc;
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_trunc ~a:txid.Txid.machine
      ~b:txid.Txid.local ~c:0;
    let records = Ringlog.resident_records log txid in
    List.iter
      (fun (r : Wire.log_record) ->
        match r.Wire.payload with
        | Commit_backup p ->
            List.iter
              (fun (w : Wire.write_item) ->
                match State.replica st w.Wire.addr.Addr.region with
                | Some rep -> ignore (Objmem.apply_write rep w)
                | None -> ())
              p.Wire.writes
        | Lock _ | Commit_primary _ | Abort _ | Truncate_marker -> ())
      records;
    ignore (Ringlog.truncate log st.State.engine txid);
    State.mark_truncated st txid
  end

let retry_deferred_truncation st log txid =
  let s = deferred_set st ~log_sender:(Ringlog.sender log) in
  if Txid.Set.mem txid !s && Ringlog.pending_count log txid = 0 then begin
    s := Txid.Set.remove txid !s;
    apply_truncation st log txid
  end

(* {1 Record processing} *)


let items_cost per_obj items = Time.mul_int per_obj (max 1 (List.length items))

let process_lock st log ~sender (e : Ringlog.entry) (p : Wire.lock_payload) =
  let record = e.Ringlog.record in
  (* group the written objects by region and wait for all regions to be
     active (they are inactive only during lock recovery, §5.3 step 1) *)
  let rids =
    List.sort_uniq Int.compare
      (List.map (fun w -> w.Wire.addr.Addr.region) p.Wire.writes)
  in
  let reps = List.filter_map (fun rid -> State.replica st rid) rids in
  if List.exists (fun (r : State.replica) -> not r.State.active) reps then begin
    st.State.inflight_blocked <- st.State.inflight_blocked + 1;
    List.iter State.await_active reps;
    st.State.inflight_blocked <- st.State.inflight_blocked - 1
  end;
  let t_lock = Time.to_ns (Engine.now st.State.engine) in
  Cpu.exec st.State.cpu ~cost:(items_cost st.State.params.Params.cpu_lock_per_obj p.Wire.writes);
  (* attempt to lock every object at its expected version *)
  let rec lock_all acquired = function
    | [] -> (true, acquired)
    | w :: rest -> (
        match State.replica st w.Wire.addr.Addr.region with
        | Some rep when Objmem.try_lock rep w -> lock_all ((rep, w) :: acquired) rest
        | _ -> (false, acquired))
  in
  (* A LOCK record may be processed after this transaction's ABORT (records
     of one sender can be reordered across its NICs), or resume from the
     region-activation wait above after recovery already decided the
     transaction: never lock in either case. *)
  if
    State.is_truncated st p.Wire.txid
    || Txid.Tbl.mem st.State.recovered_outcomes p.Wire.txid
  then Ringlog.discard log st.State.engine e
  else begin
    let ok, acquired = lock_all [] p.Wire.writes in
    Farm_obs.Obs.incr st.State.obs
      (if ok then Farm_obs.Obs.C_lock_ok else Farm_obs.Obs.C_lock_fail);
    if not ok then List.iter (fun (rep, w) -> Objmem.unlock rep w) acquired
    else Txid.Tbl.replace st.State.locks_held p.Wire.txid p.Wire.writes;
    (* snapshot protocol: the largest head commit timestamp among the
       objects just locked — exact, because the locks serialize same-object
       writers — so the coordinator's write timestamp provably exceeds
       every version it overwrites *)
    let head_ts =
      if not ok then 0
      else
        List.fold_left
          (fun acc ((rep : State.replica), (w : Wire.write_item)) ->
            match rep.State.vc with
            | Some vc -> max acc (Verchain.head_ts vc ~off:w.Wire.addr.Addr.offset)
            | None -> acc)
          0 acquired
    in
    Ringlog.retain log e;
    let id = p.Wire.txid in
    Farm_obs.Tracer.slice_tx
      (Farm_obs.Obs.tracer st.State.obs)
      ~tid:(Farm_obs.Tracer.tid_log ~sender)
      ~step:(if ok then Farm_obs.Tracer.T_lock_grant else Farm_obs.Tracer.T_lock_refuse)
      ~start:t_lock ~arg:(List.length p.Wire.writes) ~txm:id.Txid.machine
      ~txt:id.Txid.thread ~txl:id.Txid.local;
    (* tag 5 = lock-reply; distinct from record tags 0-4 so the reply's
       flow id never collides with the LOCK record's *)
    let flow =
      Farm_obs.Tracer.flow_id ~machine:id.Txid.machine ~thread:id.Txid.thread
        ~local:id.Txid.local ~tag:5 ~dst:sender
    in
    Comms.send st ~flow ~dst:sender
      (Wire.Lock_reply { txid = p.Wire.txid; ok; cfg = record.Wire.cfg; head_ts })
  end

let process_commit_primary st log (e : Ringlog.entry) txid ~ts =
  (* The LOCK record is resident in the same log (processed before the
     coordinator could write COMMIT-PRIMARY). Its items carry no write
     timestamp (the coordinator chose one only after the locks), so the
     COMMIT-PRIMARY record's [ts] is what the primary installs. *)
  let payload =
    List.find_map
      (fun (r : Wire.log_record) ->
        match r.Wire.payload with Lock p -> Some p | _ -> None)
      (Ringlog.resident_records log txid)
  in
  (match payload with
  | Some p ->
      Cpu.exec st.State.cpu
        ~cost:(items_cost st.State.params.Params.cpu_commit_per_obj p.Wire.writes);
      List.iter
        (fun (w : Wire.write_item) ->
          match State.replica st w.Wire.addr.Addr.region with
          | Some rep ->
              let applied = Objmem.apply_write ~ts rep w in
              (* a committed free returns the slot to the primary's slab
                 (only on first application) *)
              if applied && w.Wire.alloc_op = Wire.Alloc_clear && rep.State.role = State.Primary
              then Allocmgr.release_slot st rep ~off:w.Wire.addr.Addr.offset
          | None -> ())
        p.Wire.writes;
      Txid.Tbl.remove st.State.locks_held txid
  | None -> ());
  Ringlog.retain log e

let process_abort st log (e : Ringlog.entry) txid =
  (* release exactly the locks this transaction holds, then drop its
     records *)
  (match Txid.Tbl.find_opt st.State.locks_held txid with
  | Some writes ->
      List.iter
        (fun (w : Wire.write_item) ->
          match State.replica st w.Wire.addr.Addr.region with
          | Some rep -> Objmem.unlock rep w
          | None -> ())
        writes;
      Txid.Tbl.remove st.State.locks_held txid
  | None -> ());
  ignore (Ringlog.truncate log st.State.engine txid);
  State.mark_truncated st txid;
  Ringlog.discard log st.State.engine e

(* Entry point: called (as a fresh process under the machine's context) for
   every entry DMA'd into one of this machine's logs. *)
let payload_tag = Wire.payload_tag

(* Trace slice covering this record's whole processing on the "log from
   m<sender>" track, closing the flow its append opened. *)
let trace_process st ~sender ~t0 payload =
  let tracer = Farm_obs.Obs.tracer st.State.obs in
  if Farm_obs.Tracer.enabled tracer then
    let tid = Farm_obs.Tracer.tid_log ~sender in
    let tag = Wire.payload_tag payload in
    match Wire.payload_txid payload with
    | None ->
        Farm_obs.Tracer.slice tracer ~tid ~step:Farm_obs.Tracer.T_log_process ~start:t0
          ~arg:tag
    | Some (id : Txid.t) ->
        Farm_obs.Tracer.slice_flow tracer ~tid ~step:Farm_obs.Tracer.T_log_process
          ~start:t0 ~arg:tag ~txm:id.Txid.machine ~txt:id.Txid.thread
          ~txl:id.Txid.local
          ~flow_in:(Wire.record_flow payload ~dst:st.State.id)
          ~flow_out:0

let process_entry st log (e : Ringlog.entry) =
  let record = e.Ringlog.record in
  let sender = Ringlog.sender log in
  let t0 = Time.to_ns (Engine.now st.State.engine) in
  Cpu.exec st.State.cpu ~cost:st.State.params.Params.cpu_log_poll;
  Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_log_record;
  Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_log_record ~a:sender
    ~b:(payload_tag record.Wire.payload) ~c:0;
  (* piggybacked truncation information *)
  (match Ringlog.txid_of_record record with
  | Some txid ->
      State.update_low_bound st ~coord:(Txid.coord_id txid) record.Wire.low_bound
  | None -> ());
  List.iter (fun txid -> apply_truncation st log txid) record.Wire.truncations;
  (match Ringlog.txid_of_record record with
  | None -> Ringlog.discard log st.State.engine e (* marker *)
  | Some txid ->
      let recovering = is_recovering st txid ~regions_written:(regions_of_record record) in
      if Txid.Tbl.mem st.State.recovered_outcomes txid then
        (* late record for a transaction recovery already decided *)
        Ringlog.discard log st.State.engine e
      else if recovering then begin
        (* evidence only; recovery owns this transaction (§5.3) *)
        record_evidence st txid record;
        Ringlog.retain log e
      end
      else begin
        match record.Wire.payload with
        | Lock p -> process_lock st log ~sender e p
        | Commit_backup _ -> Ringlog.retain log e
        | Commit_primary { txid; ts } -> process_commit_primary st log e txid ~ts
        | Abort txid -> process_abort st log e txid
        | Truncate_marker -> Ringlog.discard log st.State.engine e
      end;
      retry_deferred_truncation st log txid);
  trace_process st ~sender ~t0 record.Wire.payload

(* Install the processing trigger on an incoming log. *)
let attach st log =
  Ringlog.set_on_append log (fun log e ->
      st.State.inflight <- st.State.inflight + 1;
      Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
          Fun.protect
            ~finally:(fun () -> st.State.inflight <- st.State.inflight - 1)
            (fun () -> process_entry st log e)))
