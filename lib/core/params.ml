open Farm_sim

type protocol = Validate_at_commit | Snapshot

type t = {
  (* memory layout *)
  region_size : int;
  block_size : int;
  log_size : int;
  regions_per_machine_cap : int;
  (* replication *)
  replication : int;
  (* transactions *)
  protocol : protocol;
  validate_rpc_threshold : int;
  commit_log_bytes : int;
  doorbell_batching : bool;
  arena_reuse : bool;
  (* global time (snapshot protocol only) *)
  clock_eps : Time.t;
  wm_interval : Time.t;
  park_timeout : Time.t;
  (* leases (§5.1) *)
  lease_duration : Time.t;
  lease_renew_divisor : int;
  lease_check_interval : Time.t;
  (* recovery (§5.2-5.5) *)
  vote_timeout : Time.t;
  recovery_block : int;
  recovery_interval : Time.t;
  recovery_concurrency : int;
  alloc_scan_batch : int;
  alloc_scan_interval : Time.t;
  backup_cms : int;
  backup_cm_timeout : Time.t;
  incremental_cm_state : bool;
  lease_group_size : int;
  reconfig_ack_timeout : Time.t;
  truncate_flush_interval : Time.t;
  (* CPU cost model *)
  threads_per_machine : int;
  cpu_tx_begin : Time.t;
  cpu_local_read : Time.t;
  cpu_lock_per_obj : Time.t;
  cpu_commit_per_obj : Time.t;
  cpu_truncate_per_obj : Time.t;
  cpu_validate_per_obj : Time.t;
  cpu_log_poll : Time.t;
  cpu_recovery_per_tx : Time.t;
  cpu_reconfig_fixed : Time.t;
  cpu_cm_rebuild : Time.t;
  net : Farm_net.Params.t;
}

(* Defaults are scaled for simulation speed: regions are 1 MB rather than
   2 GB and machines run 4-8 worker threads rather than 30, but every ratio
   that shapes the paper's figures (lease/renewal, pacing intervals, the
   tr=4 validation threshold, f+1=3 replication) keeps its paper value. *)
let default =
  {
    region_size = 1 lsl 20;
    block_size = 16 * 1024;
    log_size = 1 lsl 21;
    regions_per_machine_cap = 512;
    replication = 3;
    protocol = Validate_at_commit;
    validate_rpc_threshold = 4;
    commit_log_bytes = 64;
    doorbell_batching = true;
    arena_reuse = true;
    clock_eps = Time.us 5;
    wm_interval = Time.us 500;
    park_timeout = Time.ms 10;
    lease_duration = Time.ms 10;
    lease_renew_divisor = 5;
    lease_check_interval = Time.us 500;
    vote_timeout = Time.us 250;
    recovery_block = 8 * 1024;
    recovery_interval = Time.ms 2;
    recovery_concurrency = 1;
    alloc_scan_batch = 100;
    alloc_scan_interval = Time.us 100;
    backup_cms = 2;
    backup_cm_timeout = Time.ms 30;
    incremental_cm_state = false;
    lease_group_size = 0;
    reconfig_ack_timeout = Time.ms 20;
    truncate_flush_interval = Time.ms 2;
    threads_per_machine = 8;
    cpu_tx_begin = Time.ns 300;
    cpu_local_read = Time.ns 400;
    cpu_lock_per_obj = Time.ns 500;
    cpu_commit_per_obj = Time.ns 600;
    cpu_truncate_per_obj = Time.ns 300;
    cpu_validate_per_obj = Time.ns 300;
    cpu_log_poll = Time.ns 400;
    cpu_recovery_per_tx = Time.us 2;
    cpu_reconfig_fixed = Time.ms 1;
    cpu_cm_rebuild = Time.ms 60;
    net = Farm_net.Params.default;
  }

let f t = t.replication - 1
