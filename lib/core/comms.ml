open Farm_net

(* Thin messaging helpers enforcing precise membership (§5.2): machines in
   the configuration never issue requests to machines outside it. *)

let member st dst = Config.is_member st.State.config dst

let send ?(prio = false) ?transport ?cpu_cost ?flow st ~dst msg =
  if member st dst || dst = st.State.id then
    Fabric.send ~prio ?transport ?cpu_cost ?flow st.State.fabric ~src:st.State.id ~dst
      ~bytes:(Wire.message_bytes msg) msg

let call ?(prio = false) ?timeout ?flow st ~dst msg : (Wire.message, Fabric.error) result =
  if member st dst || dst = st.State.id then
    Fabric.call ~prio ?timeout ?flow st.State.fabric ~src:st.State.id ~dst
      ~bytes:(Wire.message_bytes msg) msg
  else Error `Unreachable

let reply_to reply msg = reply ~bytes:(Wire.message_bytes msg) msg

(* Run [fns] concurrently as child processes of this machine and wait for
   all of them; used to issue commit-protocol writes to all participants in
   parallel. *)
let par_iter st fns =
  let n = List.length fns in
  if n > 0 then begin
    let remaining = ref n in
    let all_done = Farm_sim.Ivar.create () in
    List.iter
      (fun fn ->
        Farm_sim.Proc.spawn ~ctx:st.State.ctx st.State.engine (fun () ->
            fn ();
            decr remaining;
            if !remaining = 0 then Farm_sim.Ivar.fill all_done ()))
      fns;
    Farm_sim.Ivar.read all_done
  end
