(** Transaction identifiers [<c, m, t, l>] (§5.3): the configuration in
    which the commit started, the coordinator machine, the coordinator
    thread, and a thread-local sequence number. The encoding makes every
    participant able to tell, from a log record alone, which configuration
    a transaction belongs to and who coordinated it — the basis for
    recovering-transaction identification and for sharding recovery work
    across threads. *)

type t = { config : int; machine : int; thread : int; local : int }

val make : config:int -> machine:int -> thread:int -> local:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val coord_key : t -> int * int
(** [(machine, thread)], the key for truncation tracking and recovery
    sharding. *)

val coord_id : t -> int
(** The same identity packed into one int — the allocation-free key the
    truncation tables use on the per-record hot path. *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
