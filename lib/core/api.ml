open Farm_sim

(* The public FaRM programming model (§3): strictly serializable
   distributed transactions over a global address space, plus lock-free
   single-object reads and locality hints.

   Any application thread can start a transaction at any time and becomes
   its coordinator. Reads during execution are atomic per object and see
   only committed data, but cross-object consistency is only checked at
   commit; applications must tolerate temporary inconsistency during
   execution (and abort/retry). *)

type 'a result_t = ('a, Txn.abort_reason) result

let count_reason st r =
  let i = Txn.reason_index r in
  st.State.metrics.State.abort_reasons.(i) <-
    st.State.metrics.State.abort_reasons.(i) + 1

(* Run one transaction attempt: execute [f] then commit. *)
let run st ~thread (f : Txn.t -> 'a) : 'a result_t =
  let tx = Txn.begin_tx st ~thread in
  match f tx with
  | v -> (
      match Commit.commit tx with
      | Ok () -> Ok v
      | Error e ->
          count_reason st e;
          Error e)
  | exception Txn.Abort reason ->
      tx.Txn.finished <- true;
      Txn.release_read_ts tx;
      Txn.return_allocations tx;
      Farm_obs.Obs.Span.finish tx.Txn.span ~committed:false;
      State.record_abort ~reason:(Txn.reason_index reason) st;
      count_reason st reason;
      Error reason

(* Retry loop with randomized backoff on conflicts; gives up after
   [attempts] (conflicts under heavy contention) or on unrecoverable
   failures. *)
let run_retry ?(attempts = 64) st ~thread f : 'a result_t =
  let rec go n =
    Proc.check_cancelled ();
    match run st ~thread f with
    | Ok v -> Ok v
    | Error Txn.Conflict when n < attempts ->
        Proc.sleep (Time.us (10 + Rng.int st.State.rng (50 * (n + 1))));
        go (n + 1)
    | Error Txn.Failed when n < attempts ->
        Proc.sleep (Time.us (500 + Rng.int st.State.rng 1_000));
        go (n + 1)
    | Error e -> Error e
  in
  go 0

let abort () = raise (Txn.Abort Txn.Explicit)

(* Lock-free read (§3): an optimized single-object read-only transaction,
   usually one RDMA read, no commit phase. *)
let read_lockfree st (addr : Addr.t) ~len =
  match Txn.read_lockfree st addr ~len with
  | _, data -> Some data
  | exception Txn.Abort _ -> None

(* Allocate a new region via the CM (two-phase, §3). [locality] co-locates
   the new region's replicas with an existing region's. *)
let create_region ?locality st =
  let cm = st.State.config.Config.cm in
  match
    Comms.call st ~dst:cm ~timeout:(Time.ms 200) (Wire.Alloc_region_req { locality })
  with
  | Ok (Wire.Alloc_region_reply { info = Some info }) ->
      Hashtbl.replace st.State.region_map info.Wire.rid info;
      Some info.Wire.rid
  | Ok _ | Error _ -> None
