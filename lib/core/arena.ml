(* Per-commit scratch arenas (allocation discipline, DESIGN.md).

   The commit protocol needs a handful of small, short-lived groupings per
   transaction: write items by destination, region ids written, per-
   participant reservation accounting, validation groups. Building these
   out of fresh hashtables and cons lists cost ~tens of KB of heap per
   commit; an arena holds them as flat arrays that are reset — not
   reallocated — between transactions.

   Ownership rules (the part that keeps this safe):

   - The arena owns only coordinator-side SCRATCH. Anything that crosses
     the wire and can be retained by a receiver — [Wire.write_item]s,
     [Wire.record] payloads, the [regions_written] list shared by LOCK and
     COMMIT-BACKUP — is freshly allocated per commit and never reused:
     ring logs keep records resident until truncation and recovery reads
     them back long after the coordinator has moved on.

   - Arenas are reference-counted, not scoped: the commit path spawns
     background processes (COMMIT-PRIMARY bookkeeping, lazy TRUNCATE) that
     touch the accounting tables after [Commit.commit] has returned, so
     each such process retains the arena before it is spawned and releases
     it when it finishes. The arena returns to the machine's pool only
     when the last reference drops.

   - With [Params.arena_reuse] off, released arenas are dropped instead of
     pooled, so every commit starts from freshly-zeroed state. Replaying
     the same seed in both modes and comparing traces is the state-leak
     detector: any byte of difference means scratch escaped a commit. *)

(* {1 Growable flat vectors}

   Reset is O(1): [clear] only rewinds the count, so slots beyond [n] may
   retain references to a previous transaction's values until overwritten.
   That pins at most one high-water mark's worth of stale records per
   arena — bounded and invisible, since no reader ever looks past [n]. *)

module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let length v = v.n
  let clear v = v.n <- 0
  let get v i = v.a.(i)

  let push v x =
    let cap = Array.length v.a in
    if v.n = cap then begin
      let na = Array.make (if cap = 0 then 8 else 2 * cap) x in
      Array.blit v.a 0 na 0 v.n;
      v.a <- na
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let iter f v =
    for i = 0 to v.n - 1 do
      f v.a.(i)
    done

  let fold f acc v =
    let acc = ref acc in
    for i = 0 to v.n - 1 do
      acc := f !acc v.a.(i)
    done;
    !acc

  (* Fresh list of the live elements — for the wire payloads the arena must
     NOT own. *)
  let to_list v = List.init v.n (fun i -> v.a.(i))
end

(* In-place sort + dedup of an int vector with an explicit int comparison
   (insertion sort: the inputs are region/participant sets, a handful of
   elements). No allocation. *)
let sort_uniq_ints (v : int Vec.t) =
  let a = v.a in
  for i = 1 to v.n - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done;
  if v.n > 1 then begin
    let w = ref 1 in
    for i = 1 to v.n - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    v.n <- !w
  end

(* {1 Destination groups}

   Items grouped by destination machine, in first-touch order. Group
   records and their item vectors are recycled: [live] marks how many are
   in use this transaction. Linear search — a transaction talks to a
   handful of machines. *)

type 'a group = { mutable g_dst : int; g_items : 'a Vec.t }
type 'a groups = { gs : 'a group Vec.t; mutable live : int }

let groups_create () = { gs = Vec.create (); live = 0 }
let groups_clear g = g.live <- 0
let group g i = Vec.get g.gs i

let group_add g ~dst x =
  let rec find i =
    if i = g.live then None
    else
      let gr = Vec.get g.gs i in
      if gr.g_dst = dst then Some gr else find (i + 1)
  in
  let gr =
    match find 0 with
    | Some gr -> gr
    | None ->
        let gr =
          if g.live < Vec.length g.gs then begin
            let gr = Vec.get g.gs g.live in
            gr.g_dst <- dst;
            Vec.clear gr.g_items;
            gr
          end
          else begin
            let gr = { g_dst = dst; g_items = Vec.create () } in
            Vec.push g.gs gr;
            gr
          end
        in
        g.live <- g.live + 1;
        gr
  in
  Vec.push gr.g_items x

(* {1 Participant accounting}

   Per destination log: bytes reserved, bytes consumed, and whether this
   transaction's truncation entry has been queued (its allowance is then
   spoken for). Replaces three hashtables. *)

type acct = {
  mutable a_dst : int;
  mutable a_reserved : int;
  mutable a_consumed : int;
  mutable a_trunc_queued : bool;
}

type accts = { accs : acct Vec.t; mutable alive : int }

let accts_create () = { accs = Vec.create (); alive = 0 }
let accts_clear t = t.alive <- 0
let acct t i = Vec.get t.accs i

let acct_for t dst =
  let rec find i =
    if i = t.alive then None
    else
      let a = Vec.get t.accs i in
      if a.a_dst = dst then Some a else find (i + 1)
  in
  match find 0 with
  | Some a -> a
  | None ->
      let a =
        if t.alive < Vec.length t.accs then begin
          let a = Vec.get t.accs t.alive in
          a.a_dst <- dst;
          a.a_reserved <- 0;
          a.a_consumed <- 0;
          a.a_trunc_queued <- false;
          a
        end
        else begin
          let a = { a_dst = dst; a_reserved = 0; a_consumed = 0; a_trunc_queued = false } in
          Vec.push t.accs a;
          a
        end
      in
      t.alive <- t.alive + 1;
      a

(* Deterministic participant order for truncation queueing and leftover
   release: sorted by destination id, like the old sorted participant
   list. In-place insertion sort over the live prefix. *)
let accts_sort t =
  let a = t.accs.Vec.a in
  for i = 1 to t.alive - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j).a_dst > x.a_dst do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let accts_iter f t =
  for i = 0 to t.alive - 1 do
    f (Vec.get t.accs i)
  done

(* {1 The arena} *)

type t = {
  mutable refs : int;
  (* read set not written (validation input): address + observed version *)
  ro_addr : Addr.t Vec.t;
  ro_ver : int Vec.t;
  (* write items in address order; the records themselves are fresh (wire-
     owned), only this staging array is reused *)
  items : Wire.write_item Vec.t;
  (* region ids written / read, sorted unique in place *)
  wregions : int Vec.t;
  rregions : int Vec.t;
  (* mapping info per written region, parallel to [wregions] *)
  info_rid : int Vec.t;
  infos : Wire.region_info Vec.t;
  (* write items grouped by primary / backup destination *)
  primaries : Wire.write_item groups;
  backups : Wire.write_item groups;
  (* per-participant reservation accounting *)
  acct : accts;
  (* VALIDATE: read-set indices grouped by primary; O(1) size per group
     decides RDMA-vs-RPC against the tr threshold *)
  vgroups : int groups;
  (* VALIDATE: the batched remote header reads (destination, ro index) *)
  rv_dst : int Vec.t;
  rv_idx : int Vec.t;
  (* staging for one doorbell-batched log-append group *)
  ap_dst : int Vec.t;
  ap_pay : Wire.record Vec.t;
}

let create () =
  {
    refs = 0;
    ro_addr = Vec.create ();
    ro_ver = Vec.create ();
    items = Vec.create ();
    wregions = Vec.create ();
    rregions = Vec.create ();
    info_rid = Vec.create ();
    infos = Vec.create ();
    primaries = groups_create ();
    backups = groups_create ();
    acct = accts_create ();
    vgroups = groups_create ();
    rv_dst = Vec.create ();
    rv_idx = Vec.create ();
    ap_dst = Vec.create ();
    ap_pay = Vec.create ();
  }

let reset t =
  Vec.clear t.ro_addr;
  Vec.clear t.ro_ver;
  Vec.clear t.items;
  Vec.clear t.wregions;
  Vec.clear t.rregions;
  Vec.clear t.info_rid;
  Vec.clear t.infos;
  groups_clear t.primaries;
  groups_clear t.backups;
  accts_clear t.acct;
  groups_clear t.vgroups;
  Vec.clear t.rv_dst;
  Vec.clear t.rv_idx;
  Vec.clear t.ap_dst;
  Vec.clear t.ap_pay

(* {1 The per-machine pool} *)

type pool = { mutable free : t array; mutable n_free : int; reuse : bool }

let create_pool ~reuse = { free = [||]; n_free = 0; reuse }

let acquire pool =
  let ar =
    if pool.n_free > 0 then begin
      pool.n_free <- pool.n_free - 1;
      pool.free.(pool.n_free)
    end
    else create ()
  in
  reset ar;
  ar.refs <- 1;
  ar

let retain ar = ar.refs <- ar.refs + 1

let release pool ar =
  if ar.refs <= 0 then invalid_arg "Arena.release: refcount underflow";
  ar.refs <- ar.refs - 1;
  if ar.refs = 0 && pool.reuse then begin
    if pool.n_free = Array.length pool.free then begin
      let na = Array.make (max 4 (2 * Array.length pool.free)) ar in
      Array.blit pool.free 0 na 0 pool.n_free;
      pool.free <- na
    end;
    pool.free.(pool.n_free) <- ar;
    pool.n_free <- pool.n_free + 1
  end
