open Farm_sim
open Farm_net

(** Messaging helpers enforcing precise membership (§5.2): machines never
    issue requests to machines outside their configuration. *)

val send :
  ?prio:bool ->
  ?transport:[ `Rc | `Ud ] ->
  ?cpu_cost:Time.t ->
  ?flow:int ->
  State.t ->
  dst:int ->
  Wire.message ->
  unit
(** [flow] is the message's trace-context correlation id (see
    {!Fabric.send}); in-memory only, never on the wire. *)

val call :
  ?prio:bool -> ?timeout:Time.t -> ?flow:int -> State.t -> dst:int -> Wire.message ->
  (Wire.message, Fabric.error) result

val reply_to : (bytes:int -> Wire.message -> unit) -> Wire.message -> unit

val par_iter : State.t -> (unit -> unit) list -> unit
(** Run jobs concurrently as child processes of this machine and wait for
    all — how commit-protocol writes reach all participants in parallel. *)
