(* Pooled per-object version chains (see verchain.mli).

   Chains hang off a per-offset hash table; each node owns a reusable
   byte buffer sized to its high-water mark. Offsets are region-relative,
   and one [t] serves one replica, so no synchronisation is needed — all
   access happens on the owning machine's simulated CPU. *)

type node = {
  mutable n_version : int;
  mutable n_ts : int;
  mutable n_buf : Bytes.t;  (* capacity >= n_len; reused across pooling *)
  mutable n_len : int;
  mutable n_allocated : bool;
  mutable n_next : node option;  (* next older version *)
}

type t = {
  mutable floor : int;
  chains : (int, node) Hashtbl.t;  (* offset -> newest archived node *)
  head : (int, int) Hashtbl.t;  (* offset -> commit ts of the in-memory head *)
  mutable pool : node list;
  mutable live : int;
}

let create ~floor =
  { floor; chains = Hashtbl.create 64; head = Hashtbl.create 64; pool = []; live = 0 }

let floor t = t.floor
let raise_floor t f = if f > t.floor then t.floor <- f
let head_ts t ~off = match Hashtbl.find_opt t.head off with Some ts -> ts | None -> 0
let set_head_ts t ~off ts = Hashtbl.replace t.head off ts
let nodes_live t = t.live

let take_node t ~version ~ts ~allocated value =
  let len = Bytes.length value in
  let n =
    match t.pool with
    | n :: rest ->
        t.pool <- rest;
        if Bytes.length n.n_buf < len then n.n_buf <- Bytes.create len;
        n
    | [] ->
        {
          n_version = 0;
          n_ts = 0;
          n_buf = Bytes.create (max len 16);
          n_len = 0;
          n_allocated = false;
          n_next = None;
        }
  in
  Bytes.blit value 0 n.n_buf 0 len;
  n.n_version <- version;
  n.n_ts <- ts;
  n.n_len <- len;
  n.n_allocated <- allocated;
  n.n_next <- None;
  t.live <- t.live + 1;
  n

let recycle t n =
  n.n_next <- None;
  t.pool <- n :: t.pool;
  t.live <- t.live - 1

let archive t ~off ~version ~ts ~allocated value =
  match Hashtbl.find_opt t.chains off with
  | None -> Hashtbl.replace t.chains off (take_node t ~version ~ts ~allocated value)
  | Some head ->
      if version > head.n_version then begin
        let n = take_node t ~version ~ts ~allocated value in
        n.n_next <- Some head;
        Hashtbl.replace t.chains off n
      end
      else begin
        (* out-of-order arrival (backup truncation order can invert per
           object): walk to the sorted position, skipping duplicates *)
        let rec insert prev =
          match prev.n_next with
          | Some nx when version < nx.n_version -> insert nx
          | Some nx when version = nx.n_version -> ()
          | tail ->
              if version <> prev.n_version then begin
                let n = take_node t ~version ~ts ~allocated value in
                n.n_next <- tail;
                prev.n_next <- Some n
              end
        in
        insert head
      end

let find t ~off ~ts =
  let rec newest_at_or_below = function
    | None -> None
    | Some n -> if n.n_ts <= ts then Some n else newest_at_or_below n.n_next
  in
  match newest_at_or_below (Hashtbl.find_opt t.chains off) with
  | None -> None
  | Some n -> Some (n.n_version, Bytes.sub n.n_buf 0 n.n_len, n.n_allocated)

let trim t ~wm =
  if wm <= t.floor then 0
  else begin
    let dropped = ref 0 in
    Hashtbl.iter
      (fun _off head ->
        (* keep nodes with ts >= wm plus the newest older one (it serves
           reads in [wm, next newer ts)); recycle everything below it *)
        let rec cut n =
          if n.n_ts < wm then begin
            let rec drop = function
              | None -> ()
              | Some older ->
                  let next = older.n_next in
                  recycle t older;
                  incr dropped;
                  drop next
            in
            drop n.n_next;
            n.n_next <- None
          end
          else match n.n_next with None -> () | Some nx -> cut nx
        in
        cut head)
      t.chains;
    t.floor <- wm;
    !dropped
  end
