(** Per-commit scratch arenas: pooled, reference-counted flat structures
    reset — not reallocated — between transactions. The arena owns only
    coordinator-side scratch; wire payloads and write items stay freshly
    allocated because receivers retain them (see the allocation-discipline
    section of DESIGN.md). *)

(** Growable flat vector. [clear] is O(1) and does not null slots: stale
    references persist past [n] until overwritten, bounded by the
    high-water mark. *)
module Vec : sig
  type 'a t = { mutable a : 'a array; mutable n : int }

  val create : unit -> 'a t
  val length : 'a t -> int
  val clear : 'a t -> unit
  val get : 'a t -> int -> 'a
  val push : 'a t -> 'a -> unit
  val iter : ('a -> unit) -> 'a t -> unit
  val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

  val to_list : 'a t -> 'a list
  (** Fresh list of the live elements, for payloads the arena must not
      own. *)
end

val sort_uniq_ints : int Vec.t -> unit
(** In-place sort + dedup with explicit int comparison; no allocation. *)

(** {1 Destination groups} — items grouped by destination machine in
    first-touch order; group records and their item vectors recycle. *)

type 'a group = { mutable g_dst : int; g_items : 'a Vec.t }
type 'a groups = { gs : 'a group Vec.t; mutable live : int }

val groups_create : unit -> 'a groups
val groups_clear : 'a groups -> unit

val group : 'a groups -> int -> 'a group
(** The [i]th live group, [0 <= i < live]. *)

val group_add : 'a groups -> dst:int -> 'a -> unit

(** {1 Participant accounting} — per destination log: reserved bytes,
    consumed bytes, truncation-queued flag. *)

type acct = {
  mutable a_dst : int;
  mutable a_reserved : int;
  mutable a_consumed : int;
  mutable a_trunc_queued : bool;
}

type accts

val acct : accts -> int -> acct
val acct_for : accts -> int -> acct
(** Find or add the accounting entry for a destination. *)

val accts_sort : accts -> unit
(** Sort live entries by destination id (deterministic participant
    order). *)

val accts_iter : (acct -> unit) -> accts -> unit

(** {1 The arena} *)

type t = {
  mutable refs : int;
  ro_addr : Addr.t Vec.t;
  ro_ver : int Vec.t;
  items : Wire.write_item Vec.t;
  wregions : int Vec.t;
  rregions : int Vec.t;
  info_rid : int Vec.t;
  infos : Wire.region_info Vec.t;
  primaries : Wire.write_item groups;
  backups : Wire.write_item groups;
  acct : accts;
  vgroups : int groups;
  rv_dst : int Vec.t;
  rv_idx : int Vec.t;
  ap_dst : int Vec.t;
  ap_pay : Wire.record Vec.t;
}

(** {1 Pool} — per machine; workers acquire one arena per commit. *)

type pool

val create_pool : reuse:bool -> pool
(** With [reuse:false] released arenas are dropped, so every commit gets
    freshly-zeroed scratch — the state-leak-detector mode driven by
    {!Params.arena_reuse}. *)

val acquire : pool -> t
(** Pop (or create) an arena, reset, with refcount 1. *)

val retain : t -> unit
(** Take a reference before handing the arena to a background process that
    outlives the commit call. *)

val release : pool -> t -> unit
(** Drop a reference; on the last one the arena returns to the pool (or is
    dropped when the pool does not reuse). *)
