
(** Transaction state recovery (§5.3, Figure 6): drain logs, find
    recovering transactions, lock recovery (after which regions re-activate
    and normal transactions proceed in parallel), log-record replication,
    voting, and the coordinator's decide step.

    The vote rules: commit-primary if any replica saw COMMIT-PRIMARY or
    COMMIT-RECOVERY; else commit-backup if any saw COMMIT-BACKUP and none
    saw ABORT-RECOVERY; else lock if any saw LOCK and no ABORT-RECOVERY;
    else abort. The coordinator commits on any commit-primary vote, or when
    all written regions voted and at least one said commit-backup with the
    rest in {lock, commit-backup, truncated}. *)

val on_config_commit : State.t -> unit
(** Start recovery for the just-committed configuration (spawned from the
    NEW-CONFIG-COMMIT handler). *)

val vote_from_evidence : Wire.tx_evidence -> Wire.vote

val coordinator_for : State.t -> Txid.t -> int
(** The transaction's original coordinator if still a member, else the
    consistent-hash replacement every primary agrees on. *)

val merge_evidence : State.recovery_state -> Wire.tx_evidence -> Wire.tx_evidence

val rec_coord_of : State.t -> Txid.t -> regions:int list -> State.rec_coord
(** The (idempotent) recovery coordinator for [txid], created on first use
    with a vote requester driving the written [regions] to a decision. Also
    used by the coordinator's park watchdog: a transaction parked on a reply
    lost to a transient partition cannot rely on the ensuing reconfiguration
    to classify it as recovering (the suspect may heal, or the new
    configuration may keep every written region's replica set), so the
    watchdog drives the decision itself. *)

val coordinator_decide : State.t -> Txid.t -> regions:int list -> State.outcome -> unit
(** Record the outcome a live coordinator decided after a failed log append
    (abort before the commit point, commit once every COMMIT-BACKUP record
    is acked) and push it to the written [regions]' replicas until every one
    acknowledges. No votes are collected: pre-drain votes come from resident
    primary logs alone and cannot see the backups' COMMIT-BACKUP records.
    No-op if a decision for [txid] already exists. *)

(** {1 Message handlers (wired by Node)} *)

val on_need_recovery :
  State.t ->
  src:int ->
  reply:(bytes:int -> Wire.message -> unit) ->
  cfg:int ->
  rid:int ->
  txs:Wire.tx_evidence list ->
  unit

val on_vote :
  State.t -> cfg:int -> rid:int -> txid:Txid.t -> regions:int list -> vote:Wire.vote -> unit

val on_request_vote : State.t -> src:int -> cfg:int -> rid:int -> txid:Txid.t -> unit

val on_replicate_tx_state :
  State.t ->
  reply:(bytes:int -> Wire.message -> unit) ->
  cfg:int ->
  rid:int ->
  txid:Txid.t ->
  lock:Wire.lock_payload ->
  unit

val on_commit_recovery :
  State.t -> reply:(bytes:int -> Wire.message -> unit) -> cfg:int -> txid:Txid.t -> unit
(** Processed like COMMIT-PRIMARY at a primary (apply in place), like
    COMMIT-BACKUP at a backup. *)

val on_abort_recovery :
  State.t -> reply:(bytes:int -> Wire.message -> unit) -> cfg:int -> txid:Txid.t -> unit

val on_truncate_recovery : State.t -> cfg:int -> txid:Txid.t -> unit

val on_fetch_tx_state :
  State.t ->
  reply:(bytes:int -> Wire.message -> unit) ->
  cfg:int ->
  rid:int ->
  txids:Txid.t list ->
  unit
