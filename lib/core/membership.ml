(* Member-side application of a new configuration (§5.2 steps 6-7).

   Precise membership is the replacement for server-side lease checks that
   one-sided RDMA makes impossible: once a machine applies configuration c
   it stops issuing requests to non-members and ignores completions from
   them; writes to regions whose primary moved are blocked until lock
   recovery re-activates them. *)

let apply_new_config st (config : Config.t) (regions : Wire.region_info list) =
  (* A reincarnated machine must not resume membership in a configuration
     whose probe round predates its crash: stay silent so the CM's ack
     timeout suspects and evicts it, turning the failure into a
     configuration change that transaction recovery can observe. *)
  if st.State.rejoining && Config.is_member config st.State.id then ()
  else if config.Config.id >= st.State.config.Config.id then begin
    let first_time = config.Config.id > st.State.config.Config.id in
    if first_time then begin
      Farm_obs.Obs.incr st.State.obs Farm_obs.Obs.C_reconfig;
      Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_new_config ~a:config.Config.id
        ~b:(List.length config.Config.members) ~c:config.Config.cm;
      st.State.config <- config;
      Hashtbl.reset st.State.region_map;
      List.iter (fun (i : Wire.region_info) -> Hashtbl.replace st.State.region_map i.Wire.rid i) regions;
      (* start blocking requests from external clients until commit *)
      st.State.blocked <- true;
      List.iter
        (fun (info : Wire.region_info) ->
          let is_primary = info.Wire.primary = st.State.id in
          let is_backup = List.mem st.State.id info.Wire.backups in
          match State.replica st info.Wire.rid with
          | Some rep ->
              if is_primary then begin
                if rep.State.role = State.Backup then begin
                  (* promoted: block access until lock recovery completes
                     (§5.3 step 1) and schedule allocator recovery (§5.5) *)
                  rep.State.role <- State.Primary;
                  State.set_inactive rep;
                  rep.State.free_lists_valid <- false
                end
              end
              else if is_backup then rep.State.role <- State.Backup
          | None ->
              if is_primary || is_backup then begin
                (* a freshly-assigned replica: zeroed NVRAM, to be filled
                   by data recovery (§5.4) *)
                let role = if is_primary then State.Primary else State.Backup in
                let rep = State.add_replica st ~rid:info.Wire.rid ~role in
                rep.State.fresh_backup <- true;
                State.set_active rep
              end)
        regions;
      if config.Config.cm <> st.State.id then st.State.cm <- None;
      (* NEW-CONFIG acts as a lease reset from the (possibly new) CM *)
      st.State.lease.State.last_grant_from_cm <- State.now st;
      st.State.lease.State.cm_suspected <- false;
      st.State.reconfig_active <- false;
      Hashtbl.reset st.State.pending_suspects
    end;
    Comms.send st ~dst:config.Config.cm (Wire.New_config_ack { cfg = config.Config.id })
  end

(* NEW-CONFIG-COMMIT: unblock external requests; new primaries immediately
   synchronize block headers with their backups (§5.5). Transaction-state
   recovery proper is started by the caller (Node). *)
let on_config_commit st ~cfg =
  if cfg = st.State.config.Config.id then begin
    Farm_obs.Obs.event st.State.obs Farm_obs.Obs.K_config_commit ~a:cfg ~b:0 ~c:0;
    st.State.blocked <- false;
    Hashtbl.iter
      (fun _ (rep : State.replica) ->
        if rep.State.role = State.Primary && not rep.State.free_lists_valid then
          Allocmgr.sync_block_headers st rep)
      st.State.nv.replicas;
    true
  end
  else false
