type t = {
  engine : Engine.t;
  busy_until : Time.t array;
  mutable busy_total : Time.t;
  mutable slow_factor : int;
      (* gray-failure hook: every cost is multiplied by this factor, so the
         machine stays alive and correct but k x slower — a thermally
         throttled or contended host rather than a dead one *)
}

let create engine ~threads =
  if threads <= 0 then invalid_arg "Cpu.create: threads must be positive";
  {
    engine;
    busy_until = Array.make threads Time.zero;
    busy_total = Time.zero;
    slow_factor = 1;
  }

let set_slow_factor t k =
  if k < 1 then invalid_arg "Cpu.set_slow_factor: factor must be >= 1";
  t.slow_factor <- k

let slow_factor t = t.slow_factor

let threads t = Array.length t.busy_until

(* Index of the thread that frees up first: the central-queue FCFS policy of
   a G/G/k server. *)
let pick t =
  let best = ref 0 in
  for i = 1 to Array.length t.busy_until - 1 do
    if Time.( < ) t.busy_until.(i) t.busy_until.(!best) then best := i
  done;
  !best

let acquire t ~cost =
  let cost = if t.slow_factor = 1 then cost else Time.mul_int cost t.slow_factor in
  let i = pick t in
  let start = Time.max (Engine.now t.engine) t.busy_until.(i) in
  let finish = Time.add start cost in
  t.busy_until.(i) <- finish;
  t.busy_total <- Time.add t.busy_total cost;
  finish

let exec t ~cost =
  let finish = acquire t ~cost in
  Proc.suspend (fun resume ->
      Engine.schedule t.engine ~at:finish (fun () -> resume (Ok ())))

let exec_bg ?ctx t ~cost fn =
  let finish = acquire t ~cost in
  Engine.schedule t.engine ~at:finish (fun () ->
      match ctx with
      | Some c when Proc.Ctx.is_cancelled c -> ()
      | _ -> fn ())

let queue_delay t =
  let i = pick t in
  Time.max Time.zero (Time.sub t.busy_until.(i) (Engine.now t.engine))

let busy_total t = t.busy_total

(* Utilization over a window via snapshot-and-subtract: dividing lifetime
   [busy_total] by an arbitrary window would over-report for any window not
   starting at time zero, so the caller snapshots at the window's start and
   only the busy time accumulated since then is counted. *)

type snapshot = { snap_at : Time.t; snap_busy : Time.t }

let snapshot t = { snap_at = Engine.now t.engine; snap_busy = t.busy_total }

let utilization t ~since ~until =
  let window = Time.to_s_float (Time.sub until since.snap_at) in
  if window <= 0. then 0.
  else
    Time.to_s_float (Time.sub t.busy_total since.snap_busy)
    /. (window *. float_of_int (threads t))
