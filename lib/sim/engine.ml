type t = {
  heap : (unit -> unit) Heap.t;
  mutable now : Time.t;
  mutable seq : int;
  mutable stopped : bool;
  mutable events_processed : int;
  mutable tracer : (at:Time.t -> string -> unit) option;
}

let create () =
  {
    heap = Heap.create ();
    now = Time.zero;
    seq = 0;
    stopped = false;
    events_processed = 0;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer

let emit t msg = match t.tracer with Some f -> f ~at:t.now msg | None -> ()

let now t = t.now

let schedule t ~at fn =
  let at = Time.max at t.now in
  t.seq <- t.seq + 1;
  Heap.push t.heap ~key:at ~seq:t.seq fn

let schedule_in t ~after fn = schedule t ~at:(Time.add t.now after) fn

let stop t = t.stopped <- true

let events_processed t = t.events_processed

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    match Heap.peek_key t.heap with
    | None -> continue := false
    | Some at ->
        (match until with
        | Some limit when Time.( > ) at limit ->
            t.now <- limit;
            continue := false
        | _ -> (
            match Heap.pop t.heap with
            | None -> continue := false
            | Some (at, fn) ->
                t.now <- at;
                t.events_processed <- t.events_processed + 1;
                fn ()))
  done;
  match until with
  | Some limit when Time.( < ) t.now limit && not t.stopped -> t.now <- limit
  | _ -> ()

let pending t = Heap.length t.heap
