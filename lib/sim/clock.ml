(* Bounded-uncertainty clocks over the discrete-event engine.

   True time is the engine clock; a machine's handle perturbs it by a
   static offset |off| < eps and reports the interval [now+off-eps,
   now+off+eps], which therefore always contains true time. A static
   offset keeps the service deterministic and allocation-free: reading a
   clock never draws randomness or schedules events, so enabling the
   snapshot protocol cannot perturb an unrelated component's schedule. *)

type t = { engine : Engine.t; eps_ns : int }

let create engine ~eps =
  let eps_ns = Time.to_ns eps in
  if eps_ns < 0 then invalid_arg "Clock.create: negative eps";
  { engine; eps_ns }

let eps_ns t = t.eps_ns

let draw_offset t rng =
  if t.eps_ns = 0 then 0 else Rng.int rng ((2 * t.eps_ns) - 1) - (t.eps_ns - 1)

type handle = { c : t; off : int }

let handle t ~offset_ns =
  if t.eps_ns = 0 && offset_ns <> 0 then invalid_arg "Clock.handle: offset without eps";
  if t.eps_ns > 0 && abs offset_ns >= t.eps_ns then
    invalid_arg "Clock.handle: |offset| must be < eps";
  { c = t; off = offset_ns }

let offset_ns h = h.off

let lo h =
  let n = Time.to_ns (Engine.now h.c.engine) + h.off - h.c.eps_ns in
  if n < 0 then 0 else n

let hi h = Time.to_ns (Engine.now h.c.engine) + h.off + h.c.eps_ns

let commit_wait h ~ts =
  (* lo > ts + 2e  <=>  engine_now > ts + 3e - off; sleeping to that
     instant makes even a handle with off = -e show lo > ts. *)
  let target = ts + (3 * h.c.eps_ns) - h.off + 1 in
  let now = Time.to_ns (Engine.now h.c.engine) in
  if target > now then Proc.sleep (Time.ns (target - now))
