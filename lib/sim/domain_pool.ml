(* See the interface for the contract. Implementation notes:

   - Tasks are claimed from an [Atomic.t] cursor in [chunk]-sized runs, so
     assignment is dynamic (a slow schedule does not stall a whole static
     shard) while results stay index-addressed.
   - Workers publish each result into its slot under one mutex and
     broadcast; the calling domain is the coordinator, sleeping on the
     condition until the next in-order slot fills, then streaming it to
     [on_result]. All cross-domain reads of [results] happen under the
     mutex, which is what makes the publication well-synchronised under
     the OCaml memory model.
   - A task exception is captured into its slot as [Error e]; the worker
     moves on to its next claim. [Fun.protect] joins every domain even
     when the caller's [on_result] raises. *)

let default_jobs () = Domain.recommended_domain_count ()

let map (type a b) ?jobs ?(chunk = 1) ?on_result (f : a -> b) (tasks : a array) :
    (b, exn) result array =
  if chunk < 1 then invalid_arg "Domain_pool.map: chunk must be positive";
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let results : (b, exn) result option array = Array.make n None in
  let run i = match f tasks.(i) with v -> Ok v | exception e -> Error e in
  let emit = match on_result with Some g -> g | None -> fun _ _ -> () in
  if jobs = 1 || n <= 1 then
    (* Sequential reference path: same claims, same order, no domains. *)
    for i = 0 to n - 1 do
      let r = run i in
      results.(i) <- Some r;
      emit i r
    done
  else begin
    let next = Atomic.make 0 in
    let mu = Mutex.create () in
    let filled = Condition.create () in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else
          for i = lo to min n (lo + chunk) - 1 do
            let r = run i in
            Mutex.lock mu;
            results.(i) <- Some r;
            Condition.broadcast filled;
            Mutex.unlock mu
          done
      done
    in
    let domains = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
    Fun.protect
      ~finally:(fun () -> Array.iter Domain.join domains)
      (fun () ->
        for i = 0 to n - 1 do
          Mutex.lock mu;
          while Option.is_none results.(i) do
            Condition.wait filled mu
          done;
          let r = Option.get results.(i) in
          Mutex.unlock mu;
          emit i r
        done)
  end;
  Array.map Option.get results
