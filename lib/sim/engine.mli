(** Discrete-event simulation engine.

    The engine owns the virtual clock and an event queue of callbacks.
    Events scheduled at the same instant run in scheduling (FIFO) order, so a
    run is fully deterministic. Exceptions raised by an event callback
    propagate out of {!run}; the test-suite relies on this to surface
    protocol assertion failures. *)

type t

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule a callback at an absolute instant. Instants in the past are
    clamped to [now]. *)

val schedule_in : t -> after:Time.t -> (unit -> unit) -> unit
(** Schedule a callback after a relative delay. *)

val run : ?until:Time.t -> t -> unit
(** Process events in time order until the queue is empty, [stop] is called,
    or the clock would pass [until] (in which case the clock is set to
    [until] and remaining events stay queued for a later [run]). *)

val stop : t -> unit

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events executed since creation; a cheap progress/efficiency
    metric for benchmarks. *)

(** {1 Trace hooks}

    A tracer is an optional subscriber for timestamped diagnostic events.
    Any layer may {!emit} a line (the network fabric reports injected
    packet drops, the fault harness reports every fault it applies); with
    no tracer installed, emission is free. The fuzzer uses the collected
    trace to print a per-run event log that is byte-identical across
    replays of the same seed. *)

val set_tracer : t -> (at:Time.t -> string -> unit) option -> unit
val emit : t -> string -> unit
