(** A bounded pool of worker domains over an indexed task array.

    The pool exists to parallelise *independent* deterministic simulations
    (one cluster per task, nothing shared): tasks are claimed in chunks
    from an atomic cursor, run on [jobs] worker domains, and their results
    are surfaced to the calling domain strictly in task order, so anything
    the caller renders from them is byte-identical regardless of job
    count. Exceptions raised by a task are captured per task — one failing
    schedule never tears down the rest of a sweep — and can be re-raised
    by the caller in task order for parity with a sequential loop.

    Safety contract for tasks: a task must not touch mutable state shared
    with any other task or with the caller (the simulation library is
    audited for this — see DESIGN.md "Domain-parallel harness"). The pool
    itself synchronises result publication, so the caller may freely read
    returned values. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible job count for this
    machine. *)

val map :
  ?jobs:int ->
  ?chunk:int ->
  ?on_result:(int -> ('b, exn) result -> unit) ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** [map ~jobs f tasks] evaluates [f tasks.(i)] for every [i] on a pool of
    [jobs] worker domains (default {!default_jobs}; clamped to at least 1)
    and returns the results in task order. [jobs = 1] runs sequentially in
    the calling domain — no domain is spawned, making it the bitwise
    reference for determinism tests.

    [chunk] (default 1) is how many consecutive tasks a worker claims per
    cursor fetch; raise it when tasks are tiny relative to the claim cost.

    [on_result] is invoked from the *calling* domain, strictly in task
    order, streaming as the frontier of completed tasks advances — index
    [i] is delivered only after indices [0..i-1]. Use it for progress
    output that must not interleave or reorder. *)
