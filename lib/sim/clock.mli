(** Simulated clock-synchronisation service with bounded uncertainty.

    Every machine owns a {!handle} whose reading is an interval
    [\[lo, hi\]] of width 2ε guaranteed to contain true (engine) time:
    the handle carries a static per-machine offset [|off| < ε] drawn at
    cluster construction, and reads as [engine_now + off ± ε]. Timestamps
    are plain integers (nanoseconds), comparable across machines.

    The snapshot commit protocol (FaRMv2-style opacity via global time)
    uses it two ways: transactions take their read snapshot at [lo] when
    they begin, and writers {!commit_wait} until every machine's lower
    bound has provably passed their write timestamp before reporting
    success — the Spanner-style uncertainty wait, bounded by ~3ε of
    simulated time. *)

type t
(** The cluster-wide service: one engine, one ε. *)

val create : Engine.t -> eps:Time.t -> t

val eps_ns : t -> int

val draw_offset : t -> Rng.t -> int
(** A per-machine static offset in nanoseconds, uniform in
    [(-ε, ε)] (0 when ε = 0). Deterministic in the generator. *)

type handle
(** One machine's view of the service. *)

val handle : t -> offset_ns:int -> handle
(** Raises [Invalid_argument] unless [|offset_ns| < ε] (or both are 0). *)

val offset_ns : handle -> int

val lo : handle -> int
(** Lower bound of the current reading, clamped to [>= 0] (engine time
    starts at 0, so 0 is always a valid lower bound on true time). *)

val hi : handle -> int
(** Upper bound of the current reading: [>= ] true time, always. *)

val commit_wait : handle -> ts:int -> unit
(** Sleep (must run inside a process) until [ts] has passed every
    machine's lower bound: [lo > ts + 2ε] locally implies
    [engine_now - 2ε > ts], i.e. even the laggiest clock's [lo] exceeds
    [ts]. Returns immediately when already past. *)
