(** A machine's CPU modelled as [k] hardware threads fed from one FCFS
    queue (a G/G/k service center).

    Work items claim the earliest-free thread; when all threads are busy the
    item queues, which is what produces realistic saturation knees in the
    throughput-latency curves. One-sided RDMA bypasses this resource at the
    target machine entirely — the defining property the FaRM protocols
    exploit. *)

type t

val create : Engine.t -> threads:int -> t
val threads : t -> int

val set_slow_factor : t -> int -> unit
(** Gray-failure injection hook: multiply every subsequently claimed cost
    by this factor (default 1). The machine stays alive and correct but
    runs k x slower — a thermally throttled or noisy-neighbour host rather
    than a crashed one. [busy_total] accumulates the scaled cost (the
    threads really are busy that long). Raises on factors < 1. *)

val slow_factor : t -> int

val exec : t -> cost:Time.t -> unit
(** Run [cost] worth of CPU work; blocks the calling process until the work
    completes (including any queueing delay). *)

val exec_bg : ?ctx:Proc.Ctx.t -> t -> cost:Time.t -> (unit -> unit) -> unit
(** Schedule background CPU work; [fn] runs when the work completes, unless
    [ctx] was cancelled in the meantime. Usable outside a process. *)

val acquire : t -> cost:Time.t -> Time.t
(** Low-level: claim a slot and return its completion instant. *)

val queue_delay : t -> Time.t
(** Delay a zero-cost item would currently experience before starting. *)

val busy_total : t -> Time.t
(** Cumulative CPU time consumed across all threads. *)

type snapshot
(** Busy-time snapshot marking the start of a measurement window. *)

val snapshot : t -> snapshot

val utilization : t -> since:snapshot -> until:Time.t -> float
(** Fraction of thread-capacity consumed between the snapshot and [until]:
    only busy time accumulated after [since] counts, so windows that start
    mid-run report correctly. Work is charged in full when claimed, so a
    burst claimed just before [until] can report above 1. *)
