open Farm_sim
open Farm_core
open Farm_workloads

(* Ablations of the design choices DESIGN.md calls out:

   - the §6.4 suggested optimization (machines maintain CM-only state
     incrementally, removing the new-CM rebuild that dominates Figure 11);
   - the tr threshold that switches read validation from one-sided RDMA
     reads to RPC (§4 step 2);
   - the replication factor f, which sets the commit protocol's write
     fan-out Pw * (f + 3) (§4). *)

(* {1 Ablation 1: incremental CM state (§6.4)} *)

let cm_rebuild () =
  Bench_util.header "Ablation — incremental CM-state maintenance (§6.4)"
    "the paper attributes ~80 ms of the CM-failure recovery to the new CM \
     rebuilding CM-only data structures and suggests maintaining them \
     incrementally on every machine";
  let run ~incremental =
    let o =
      Failure_bench.run
        {
          Failure_bench.default_spec with
          label = "";
          quiet = true;
          params =
            {
              Failure_bench.default_spec.Failure_bench.params with
              Params.incremental_cm_state = incremental;
            };
          workload = Failure_bench.Wl_tatp 1_500;
          victim = Failure_bench.Kill_cm;
          measure_for = Time.ms 300;
          data_rec_limit = Time.ms 1;
        }
    in
    let commit_at =
      List.assoc_opt "config-commit" o.Failure_bench.milestones
    in
    (commit_at, o.Failure_bench.recovery_80)
  in
  let report name (commit_at, rec80) =
    Fmt.pr "  %-28s reconfiguration %-12s recovery to 80%% %s@." name
      (match commit_at with Some t -> Fmt.str "%a" Time.pp t | None -> "-")
      (match rec80 with Some t -> Fmt.str "%a" Time.pp t | None -> "(not in window)")
  in
  (* the two settings are independent clusters: shard them *)
  match Bench_util.shard_map (fun incremental -> run ~incremental) [ false; true ] with
  | [ baseline; incr ] ->
      report "baseline (rebuild)" baseline;
      report "incremental CM state" incr
  | _ -> assert false

(* {1 Ablation 2: the validation threshold tr} *)

(* A read-heavy transaction profile: read [reads] objects from one primary,
   write one object elsewhere, so commit needs read validation for all of
   them. Sweeping tr shows the RDMA-vs-RPC validation tradeoff. *)
let validation_threshold () =
  Bench_util.header "Ablation — read-validation threshold tr (§4)"
    "validation uses one-sided RDMA reads for <= tr objects per primary and \
     one RPC above it (paper default tr = 4): RDMA spends caller CPU and \
     NIC ops per object; RPC spends one round trip plus remote CPU";
  let reads = 8 in
  Fmt.pr "per-commit: %d validated reads from one primary + 1 write@.@." reads;
  Fmt.pr "%-14s %12s %14s %14s@." "tr" "tx/us" "median(us)" "99th(us)";
  Bench_util.shard_print
    (fun tr ->
      let params = { Params.default with Params.validate_rpc_threshold = tr } in
      let c = Cluster.create ~params ~machines:4 () in
      let r1 = Cluster.alloc_region_exn c in
      let r2 = Cluster.alloc_region_exn c in
      let read_cells =
        Cluster.run_on c ~machine:0 (fun st ->
            match
              Api.run_retry st ~thread:0 (fun tx ->
                  Array.init reads (fun _ -> Txn.alloc tx ~size:8 ~region:r1.Wire.rid ()))
            with
            | Ok a -> a
            | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
      in
      let write_cells =
        Cluster.run_on c ~machine:0 (fun st ->
            match
              Api.run_retry st ~thread:0 (fun tx ->
                  Array.init 64 (fun _ ->
                      let a = Txn.alloc tx ~size:8 ~region:r2.Wire.rid () in
                      Txn.write tx a (Bytes.make 8 '\000');
                      a))
            with
            | Ok a -> a
            | Error e -> Fmt.failwith "%a" Txn.pp_abort e)
      in
      let duration = Time.ms 30 in
      let stats =
        Driver.run c ~workers:6 ~warmup:(Time.ms 5) ~duration ~op:(fun ctx ->
            let st = ctx.Driver.st in
            match
              Api.run_retry ~attempts:8 st ~thread:ctx.Driver.thread (fun tx ->
                  Array.iter (fun a -> ignore (Txn.read tx a ~len:8)) read_cells;
                  let w = write_cells.(Rng.int ctx.Driver.rng 64) in
                  Txn.write tx w (Bytes.make 8 'x'))
            with
            | Ok () -> true
            | Error _ -> false)
      in
      Fmt.str "%-14s %12.3f %14.1f %14.1f@."
        (if tr = 0 then "0 (always RPC)"
         else if tr >= reads then Printf.sprintf "%d (all RDMA)" tr
         else string_of_int tr)
        (Driver.throughput_per_us stats ~duration)
        (float_of_int (Stats.Hist.percentile stats.Driver.latency 50.) /. 1e3)
        (float_of_int (Stats.Hist.percentile stats.Driver.latency 99.) /. 1e3))
    [ 0; 4; 16 ]

(* {1 Ablation 3: replication factor} *)

let replication_factor () =
  Bench_util.header "Ablation — replication factor f (§4)"
    "the commit phase costs Pw*(f+3) one-sided writes; FaRM runs f+1 copies \
     vs 2f+1 for Paxos-replicated designs like Spanner";
  Fmt.pr "%-8s %12s %14s %16s@." "f" "tx/us" "median(us)" "commit 99th(us)";
  Bench_util.shard_print
    (fun replication ->
      let params = { Params.default with Params.replication = replication } in
      let c = Cluster.create ~params ~machines:6 () in
      let t = Tatp.create c ~subscribers:1_500 ~regions_per_table:2 in
      Tatp.load c t;
      let duration = Time.ms 40 in
      let stats = Driver.run c ~workers:8 ~warmup:(Time.ms 5) ~duration ~op:(Tatp.op t) in
      let commit = Cluster.merged_latency c in
      ignore commit;
      let commit_h = Stats.Hist.create () in
      Array.iter
        (fun (st : State.t) -> Stats.Hist.merge ~into:commit_h st.State.metrics.State.commit_latency)
        c.Cluster.machines;
      Fmt.str "%-8d %12.3f %14.1f %16.1f@." (replication - 1)
        (Driver.throughput_per_us stats ~duration)
        (float_of_int (Stats.Hist.percentile stats.Driver.latency 50.) /. 1e3)
        (float_of_int (Stats.Hist.percentile commit_h 99.) /. 1e3))
    [ 1; 2; 3 ]

(* {1 Ablation 4: two-level lease hierarchy (§5.1 future work)} *)

let lease_hierarchy () =
  Bench_util.header "Ablation — two-level lease hierarchy (§5.1)"
    "the paper notes larger clusters may need a two-level hierarchy, at the \
     price of up to doubled failure detection; CM lease traffic drops from \
     O(n) to O(n / group size)";
  Fmt.pr "%-10s %22s %22s@." "machines" "CM lease msgs (flat)" "CM lease msgs (groups of 4)";
  Bench_util.shard_print
    (fun machines ->
      let run params =
        let c = Cluster.create ~params ~machines () in
        Cluster.run_for c ~d:(Time.ms 200);
        (Cluster.machine c 0).State.lease.State.grantor_messages
      in
      let flat = run Params.default in
      let hier = run { Params.default with Params.lease_group_size = 4 } in
      Fmt.str "%-10d %22d %22d@." machines flat hier)
    [ 8; 16; 32 ];
  (* detection latency comparison for a member failure *)
  let detect params =
    let c = Cluster.create ~params ~machines:16 () in
    ignore (Cluster.alloc_region_exn c);
    Cluster.run_for c ~d:(Time.ms 20);
    let at = Cluster.now c in
    Cluster.kill c 6 (* a non-leader member *);
    Cluster.run_for c ~d:(Time.ms 100);
    match Cluster.milestone_time c "suspect" with
    | Some t -> Time.to_ms_float (Time.sub t at)
    | None -> nan
  in
  match
    Bench_util.shard_map detect
      [ Params.default; { Params.default with Params.lease_group_size = 4 } ]
  with
  | [ flat; hier ] ->
      Fmt.pr "@.member-failure detection latency (lease 10 ms): flat %.1f ms vs \
         hierarchical %.1f ms@."
        flat hier
  | _ -> assert false

let run () =
  cm_rebuild ();
  validation_threshold ();
  replication_factor ();
  lease_hierarchy ()
