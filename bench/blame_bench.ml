open Farm_sim
open Farm_core
open Farm_workloads
open Farm_fault

(* Latency attribution: where does transaction time actually go?

   Four independent worlds exercise the blame layer (DESIGN.md §9) over
   its full surface:

     tatp           closed-loop TATP — the protocol-dominated steady
                    state: execute / propagation / poll split, plus the
                    top slowest transactions' cross-machine critical paths
     ycsb_zipf      a contended zipfian read-modify-write mix with the
                    hot keys packed into one region — the heat tracker
                    must rank that region first, and lock-wait blame must
                    show up
     kill_recovery  the Fig 9 failure: one machine killed mid-window —
                    the recovery era surfaces as lock-wait / propagation
     gray_nic       open-loop TATP while one machine's NIC degrades —
                    admission queueing and propagation dominate the tail

   Every scenario asserts the exclusivity invariant the layer is built on:
   with blame armed, the ns sum over the non-admission categories equals
   the ns sum of the commit-phase accumulators exactly (admission precedes
   the span, so it lives outside the phase clock). Scenarios shard over
   domains; BENCH_blame.json is byte-identical across reruns and --jobs. *)

let seed = 42
let machines = 6

(* ycsb_zipf: hot keys land in rs.(0) because cells map to regions in
   contiguous blocks, not round-robin — zipf skew then concentrates there. *)
let zipf_cells = 256
let zipf_regions = 4

type result = {
  r_label : string;
  r_committed : int;
  r_aborted : int;
  r_blame : (string * int) list;  (* exact ns per category, whole run *)
  r_phase : (string * int) list;  (* the reconciliation anchor *)
  r_tail : (string * int) list;  (* blame of the kept slowest exemplars *)
  r_heat : Cluster.heat list;  (* top regions, hottest first *)
  r_block : string;
}

let pct_line blame =
  let tot = List.fold_left (fun acc (_, v) -> acc + v) 0 blame in
  if tot = 0 then "n/a"
  else
    List.filter_map
      (fun (name, v) ->
        let pct = 100 * v / tot in
        if pct < 1 then None else Some (Printf.sprintf "%s %d%%" name pct))
      (List.stable_sort (fun (_, a) (_, b) -> compare b a) blame)
    |> String.concat "  "

(* The invariant the whole layer rests on, checked per scenario so a leak
   fails the bench loudly: every span nanosecond is claimed exactly once. *)
let check_exact ~label blame phase =
  let blame_ns =
    List.fold_left (fun acc (n, v) -> if n = "admission" then acc else acc + v) 0 blame
  in
  let phase_ns = List.fold_left (fun acc (_, v) -> acc + v) 0 phase in
  if blame_ns <> phase_ns then
    Fmt.failwith "blame/%s: blame sum %d ns <> phase sum %d ns" label blame_ns phase_ns;
  (blame_ns, phase_ns)

let render ~label ~committed ~aborted ~blame ~phase ~tail ~hists ~heat ~paths =
  let blame_ns, phase_ns = check_exact ~label blame phase in
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s: committed %d  aborted %d\n" label committed aborted;
  pf "  %-12s %12s %6s %10s %10s\n" "category" "total(us)" "n" "p50(us)" "p99(us)";
  List.iter
    (fun (name, ns) ->
      match List.assoc_opt name hists with
      | Some h ->
          pf "  %-12s %8d.%03d %6d %10.1f %10.1f\n" name (ns / 1000) (abs ns mod 1000)
            (Stats.Hist.count h)
            (float_of_int (Stats.Hist.percentile h 50.) /. 1e3)
            (float_of_int (Stats.Hist.percentile h 99.) /. 1e3)
      | None -> pf "  %-12s %8d.%03d\n" name (ns / 1000) (abs ns mod 1000))
    blame;
  pf "  exact: blame %d ns == phase %d ns (admission excluded)\n" blame_ns phase_ns;
  pf "  tail (slowest exemplars): %s\n" (pct_line tail);
  if heat <> [] then begin
    pf "  heat (hottest first):\n";
    List.iter
      (fun (h : Cluster.heat) ->
        pf "    r%-4d score %8d  access %8d  conflict %6d\n" h.Cluster.h_region
          h.Cluster.h_score h.Cluster.h_access h.Cluster.h_conflict)
      heat
  end;
  List.iter (fun p -> pf "%s\n" p) paths;
  Buffer.contents buf

let take k l = List.filteri (fun i _ -> i < k) l

let collect ~label ~paths c =
  let committed = Cluster.total_committed c and aborted = Cluster.total_aborted c in
  let blame = Cluster.blame_totals c in
  let phase = Cluster.phase_totals c in
  let tail = Cluster.tail_blame c in
  let hists = Cluster.merged_blame_hists c in
  let heat = take 5 (Cluster.heat_report c) in
  let block =
    render ~label ~committed ~aborted ~blame ~phase ~tail ~hists ~heat ~paths
  in
  {
    r_label = label;
    r_committed = committed;
    r_aborted = aborted;
    r_blame = blame;
    r_phase = phase;
    r_tail = tail;
    r_heat = heat;
    r_block = block;
  }

(* {1 Scenario 1: closed-loop TATP} *)

let run_tatp ~duration () =
  let c = Cluster.create ~seed ~machines () in
  let tatp = Tatp.create c ~subscribers:2_000 ~regions_per_table:2 in
  Tatp.load c tatp;
  (* armed after the bulk load so the exemplars — and the 4096-slot trace
     ring — cover the measured window, not the load phase *)
  Cluster.set_blame c true;
  Cluster.set_tracing c true;
  let _ = Driver.run c ~workers:4 ~warmup:(Time.ms 2) ~duration ~op:(Tatp.op tatp) in
  collect ~label:"tatp" ~paths:(take 1 (Cluster.critpaths c ~k:1)) c

(* {1 Scenario 2: contended zipf RMW — heat ranking} *)

let run_zipf ~duration () =
  let c = Cluster.create ~seed ~machines () in
  let rs = Array.init zipf_regions (fun _ -> Cluster.alloc_region_exn c) in
  let per_region = zipf_cells / zipf_regions in
  let addrs =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.init zipf_cells (fun i ->
                  let r = rs.(i / per_region) in
                  let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                  Txn.write tx a (Bytes.make 8 '\000');
                  a))
        with
        | Ok arr -> arr
        | Error e -> Fmt.failwith "blame/zipf setup: %a" Txn.pp_abort e)
  in
  Cluster.set_blame c true;
  let op (ctx : Driver.worker_ctx) =
    let rng = ctx.Driver.rng in
    match
      Api.run ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
          for _ = 1 to 2 do
            let a = addrs.(Ycsb.zipf rng zipf_cells) in
            let v = Int64.to_int (Bytes.get_int64_le (Txn.read tx a ~len:8) 0) in
            let b = Bytes.create 8 in
            Bytes.set_int64_le b 0 (Int64.of_int (v + 1));
            Txn.write tx a b
          done)
    with
    | Ok () -> true
    | Error _ -> false
  in
  let _ = Driver.run c ~workers:8 ~warmup:(Time.ms 2) ~duration ~op in
  let r = collect ~label:"ycsb_zipf" ~paths:[] c in
  (* the acceptance bar: skew must surface as a ranking, not just counts *)
  (match r.r_heat with
  | top :: _ when top.Cluster.h_region = rs.(0).Wire.rid -> ()
  | top :: _ ->
      Fmt.failwith "blame/ycsb_zipf: hot region r%d not ranked first (got r%d)"
        rs.(0).Wire.rid top.Cluster.h_region
  | [] -> Fmt.failwith "blame/ycsb_zipf: empty heat report");
  r

(* {1 Scenario 3: the Fig 9 failure — kill one machine mid-window}

   Where does latency go while the membership protocol detects, evicts and
   recovers? Committed-transaction blame over a window containing the kill
   shows the recovery era as lock-wait (transactions queued on regions
   whose primary died) and propagation (appends waiting out the
   reconfiguration), on top of the healthy baseline. *)

let run_kill ~window () =
  let c = Cluster.create ~seed ~machines () in
  let tatp = Tatp.create c ~subscribers:2_000 ~regions_per_table:2 in
  Tatp.load c tatp;
  Cluster.set_blame c true;
  let start = Cluster.now c in
  let ol =
    Openloop.start c ~queue_cap:64 ~workers:2 ~shape:Arrivals.Poisson ~rate:40_000.
      ~duration:window ~op:(Tatp.op tatp)
  in
  let events = [ { Schedule.at = Time.ms 10; fault = Schedule.Crash 1 } ] in
  Nemesis.run c ~start { Schedule.seed; machines; events };
  Cluster.run_until c ~at:(Time.add start window);
  Openloop.stop ol;
  Cluster.run_for c ~d:(Time.ms 40);
  ignore (Cluster.quiesce c);
  collect ~label:"kill_recovery" ~paths:[] c

(* {1 Scenario 4: open-loop TATP under a slow NIC} *)

let run_gray ~window () =
  let c = Cluster.create ~seed ~machines () in
  let tatp = Tatp.create c ~subscribers:2_000 ~regions_per_table:2 in
  Tatp.load c tatp;
  Cluster.set_blame c true;
  let start = Cluster.now c in
  let ol =
    Openloop.start c ~queue_cap:64 ~workers:2 ~shape:Arrivals.Poisson ~rate:40_000.
      ~duration:window ~op:(Tatp.op tatp)
  in
  let events =
    [
      { Schedule.at = Time.ms 10;
        fault = Schedule.Slow_nic { machine = 1; delay_factor = 4.; loss = 0.05 } };
      { Schedule.at = Time.div_int window 2; fault = Schedule.Nic_heal 1 };
    ]
  in
  Nemesis.run c ~start { Schedule.seed; machines; events };
  Cluster.run_until c ~at:(Time.add start window);
  Openloop.stop ol;
  Cluster.run_for c ~d:(Time.ms 40);
  Cluster.heal c;
  ignore (Cluster.quiesce c);
  collect ~label:"gray_nic" ~paths:[] c

(* {1 JSON artifact} *)

let json_ns kvs =
  String.concat ","
    (List.map
       (fun (name, ns) -> Printf.sprintf "\"%s\":%d" (Failure_bench.json_escape name) ns)
       kvs)

let write_json file results =
  let oc = open_out file in
  Printf.fprintf oc "{\"bench\":\"blame\",\"scenarios\":[";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "{\"label\":\"%s\",\"committed\":%d,\"aborted\":%d,\"blame_ns\":{%s},\"phase_ns\":{%s},\"tail_blame_ns\":{%s},\"heat\":[%s]}"
        (Failure_bench.json_escape r.r_label)
        r.r_committed r.r_aborted (json_ns r.r_blame) (json_ns r.r_phase)
        (json_ns r.r_tail)
        (String.concat ","
           (List.map
              (fun (h : Cluster.heat) ->
                Printf.sprintf
                  "{\"region\":%d,\"score\":%d,\"access\":%d,\"conflict\":%d}"
                  h.Cluster.h_region h.Cluster.h_score h.Cluster.h_access
                  h.Cluster.h_conflict)
              r.r_heat)))
    results;
  Printf.fprintf oc "]}\n";
  close_out oc

let run ?(smoke = false) () =
  Bench_util.header "Latency attribution (blame categories, heat, critical paths)"
    "every committed transaction's latency split exactly into exclusive \
     categories; decaying region heat ranks the contended data";
  let duration = if smoke then Time.ms 10 else Time.ms 30 in
  let window = if smoke then Time.ms 30 else Time.ms 60 in
  let scenarios =
    [
      (fun () -> run_tatp ~duration ());
      (fun () -> run_zipf ~duration ());
      (fun () -> run_kill ~window ());
      (fun () -> run_gray ~window ());
    ]
  in
  let results = Bench_util.shard_map (fun f -> f ()) scenarios in
  List.iter (fun r -> print_string r.r_block) results;
  Fmt.pr "exclusivity: blame sums match phase sums to the ns in all %d scenarios@."
    (List.length results);
  if not smoke then begin
    write_json "BENCH_blame.json" results;
    Fmt.pr "wrote BENCH_blame.json@."
  end
