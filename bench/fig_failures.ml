open Farm_sim
open Farm_core
open Farm_workloads

(* Figures 9, 10, 11, 13, 14, 15: failure timelines under load.
   All share the Failure_bench harness; what varies is the workload, the
   victim, and the data-recovery pacing. *)

let fig9 () =
  ignore
    (Failure_bench.run
       {
         Failure_bench.default_spec with
         label = "Figure 9 — TATP failure timeline (single non-CM machine)";
         paper =
           "back to peak throughput in < 40-50 ms; all regions active in ~40 ms; \
            paced data recovery takes far longer and does not dent throughput";
         machines = 90;  (* the paper's cluster size *)
         workers = 4;
         workload = Failure_bench.Wl_tatp 20_000;
         victim = Failure_bench.Kill_primary_of_first_region;
         json = Some "BENCH_fig9_timeline.json";
       })

let fig10 () =
  ignore
    (Failure_bench.run
       {
         Failure_bench.default_spec with
         label = "Figure 10 — TPC-C failure timeline";
         paper =
           "most throughput back in < 50 ms; slightly slower lock recovery than \
            TATP (bigger transactions); co-partitioned placement reduces data \
            recovery parallelism so re-replication takes much longer";
         workload =
           Failure_bench.Wl_tpcc
             { Tpcc.warehouses = 4; districts = 4; customers = 12; items = 60 };
         workers = 4;
         measure_for = Time.ms 400;
         victim = Failure_bench.Kill_primary_of_first_region;
         json = Some "BENCH_fig10_timeline.json";
       })

let fig11 () =
  ignore
    (Failure_bench.run
       {
         Failure_bench.default_spec with
         label = "Figure 11 — TATP timeline with CM failure";
         paper =
           "recovery ~110 ms, slower than a non-CM failure because the new CM \
            first rebuilds CM-only data structures (reconfiguration 97 ms vs 20 ms)";
         workload = Failure_bench.Wl_tatp 2_000;
         victim = Failure_bench.Kill_cm;
         measure_for = Time.ms 400;
         json = Some "BENCH_fig11_timeline.json";
       })

let fig13 () =
  ignore
    (Failure_bench.run
       {
         Failure_bench.default_spec with
         label = "Figure 13 — correlated failure: one whole failure domain";
         paper =
           "18 of 90 machines die at once; peak throughput back in < 400 ms \
            (dominated by ~17x more transactions to recover); re-replication of \
            ~1000 regions takes minutes, invisibly";
         machines = 90;  (* 5 failure domains of 18: the paper's 18-of-90 kill *)
         domains = (fun m -> m / 18);
         workers = 4;
         workload = Failure_bench.Wl_tatp 20_000;
         victim = Failure_bench.Kill_domain 0;
         measure_for = Time.ms 400;
         data_rec_limit = Time.s 4;
         json = Some "BENCH_fig13_timeline.json";
       })

(* Figures 14/15: aggressive data recovery — bigger blocks, concurrent
   fetches, no pacing interval. TATP throughput dips until re-replication
   finishes; TPC-C (local access pattern) is insensitive. *)
let aggressive params =
  {
    params with
    Params.recovery_block = 32 * 1024;
    recovery_concurrency = 4;
    recovery_interval = Time.us 100;
  }

let fig14 () =
  let spec =
    {
      Failure_bench.default_spec with
      label = "Figure 14 — TATP with aggressive data recovery";
      paper =
        "throughput recovers only after most regions are re-replicated (~800 ms), \
         but full data recovery takes just ~1.1 s instead of tens of seconds";
      params = aggressive Failure_bench.default_spec.Failure_bench.params;
      workload = Failure_bench.Wl_tatp 2_000;
      measure_for = Time.ms 300;
      json = Some "BENCH_fig14_timeline.json";
    }
  in
  let o = Failure_bench.run spec in
  (match o.Failure_bench.data_rec_done with
  | Some t -> Fmt.pr "@.aggressive re-replication finished in %a after the kill@." Time.pp t
  | None -> ());
  (* contrast with the paced default *)
  let paced =
    Failure_bench.run
      { spec with Failure_bench.label = ""; quiet = true; json = None;
        params = Failure_bench.default_spec.Failure_bench.params }
  in
  match (o.Failure_bench.data_rec_done, paced.Failure_bench.data_rec_done) with
  | Some fast, Some slow ->
      Fmt.pr "aggressive %a vs paced %a (%.1fx faster)@." Time.pp fast Time.pp slow
        (Time.to_ms_float slow /. Time.to_ms_float fast)
  | Some fast, None ->
      Fmt.pr "aggressive %a; paced recovery still running at cutoff@." Time.pp fast
  | _ -> ()

let fig15 () =
  ignore
    (Failure_bench.run
       {
         Failure_bench.default_spec with
         label = "Figure 15 — TPC-C with more aggressive data recovery";
         paper =
           "with 32 KB blocks every 2 ms, re-replication finishes 4x faster with \
            no throughput impact (TPC-C rarely reads remote data)";
         params =
           {
             Failure_bench.default_spec.Failure_bench.params with
             Params.recovery_block = 32 * 1024;
             recovery_interval = Time.ms 2;
           };
         workload =
           Failure_bench.Wl_tpcc
             { Tpcc.warehouses = 4; districts = 4; customers = 12; items = 60 };
         workers = 4;
         measure_for = Time.ms 400;
         json = Some "BENCH_fig15_timeline.json";
       })

(* Figure 12: distribution of TATP recovery times across seeds. The paper's
   heavy tail comes from draining ~7 500 in-flight transactions through lock
   recovery; [kill_burst] raises the in-flight population at the kill instant
   to hundreds per run so that drain exists here too (previously our scaled
   runs carried only tens in flight and the distribution was lease-bound). *)
let fig12 ?(runs = 10) () =
  Bench_util.header "Figure 12 — distribution of recovery times (TATP)"
    "median ~50 ms; >70% under 100 ms; all under 200 ms (time from suspicion \
     to 80% of pre-failure throughput)";
  let times = ref [] in
  for i = 1 to runs do
    let rng = Rng.create (i * 97) in
    let o =
      Failure_bench.run
        {
          Failure_bench.default_spec with
          label = "";
          quiet = true;
          seed = 1000 + (i * 17);
          (* the paper's lease duration, and a kill instant at a random
             phase of the lease/renewal cycle *)
          params = { Params.default with Params.lease_duration = Time.ms 10 };
          kill_at = Time.add (Time.ms 60) (Time.us (Rng.int rng 12_000));
          workload = Failure_bench.Wl_tatp 800;
          machines = 6;
          workers = 4;
          kill_burst = 64;
          measure_for = Time.ms 250;
          data_rec_limit = Time.ms 1;
        }
    in
    match o.Failure_bench.recovery_80 with
    | Some t ->
        times := Time.to_ms_float t :: !times;
        Fmt.pr "  run %2d: %6.1f ms@." i (Time.to_ms_float t)
    | None -> Fmt.pr "  run %2d: did not recover within window@." i
  done;
  let sorted = List.sort compare !times in
  let n = List.length sorted in
  if n > 0 then begin
    let pct p = List.nth sorted (min (n - 1) (p * n / 100)) in
    Fmt.pr "@.recovery time percentiles over %d runs:@." n;
    List.iter (fun p -> Fmt.pr "  p%-3d %6.1f ms@." p (pct p)) [ 10; 50; 70; 90 ];
    Fmt.pr "  max  %6.1f ms@." (List.nth sorted (n - 1))
  end
