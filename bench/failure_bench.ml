open Farm_sim
open Farm_core
open Farm_workloads

(* The failure-timeline harness behind Figures 9, 10, 11, 13, 14 and 15:
   run a workload at full load, kill one or more machines at a fixed
   instant, and report the recovery milestones, the 1 ms throughput
   timeline around the failure, and the progress of background data
   recovery. *)

type workload = Wl_tatp of int (* subscribers *) | Wl_tpcc of Tpcc.scale

type victim = Kill_primary_of_first_region | Kill_cm | Kill_domain of int

type spec = {
  label : string;
  paper : string;
  machines : int;
  domains : int -> int;
  params : Params.t;
  workload : workload;
  workers : int;
  kill_at : Time.t;  (* relative to measurement start *)
  measure_for : Time.t;
  victim : victim;
  seed : int;
  data_rec_limit : Time.t;  (* how long to wait for full data recovery *)
  kill_burst : int;
      (* extra unmeasured workers per machine, spawned 2 ms before the kill
         and stopped 10 ms after it: they raise the in-flight transaction
         population at the kill instant (the paper's runs carry ~7 500
         in-flight transactions into recovery, and that drain is where its
         recovery-time tail comes from) without polluting the throughput
         series the recovery analysis reads *)
  quiet : bool;
  json : string option;
      (* write the sampled cluster timeline (1 ms commits/aborts/one-sided
         ops/log occupancy/CPU series) plus the kill instant and the
         recovery-to-90% analysis to this file *)
}

let default_spec =
  {
    label = "";
    paper = "";
    machines = 8;
    domains = (fun m -> m);
    params = { Params.default with Params.lease_duration = Time.ms 5 };
    workload = Wl_tatp 2_000;
    workers = 6;
    kill_at = Time.ms 60;
    measure_for = Time.ms 300;
    victim = Kill_primary_of_first_region;
    seed = 42;
    data_rec_limit = Time.s 2;
    kill_burst = 0;
    quiet = false;
    json = None;
  }

type outcome = {
  recovery_80 : Time.t option;  (* time from kill to 80% of pre-kill rate *)
  milestones : (string * Time.t) list;  (* relative to kill *)
  regions_recovered : int;
  data_rec_done : Time.t option;
  stats : Driver.stats;
  cluster : Cluster.t;
}

(* {1 Timeline artifact}

   The sampled cluster timeline around the failure, written as JSON for the
   figure artifacts (BENCH_fig9_timeline.json etc). Everything is computed
   from integers sampled at engine instants, so a given seed produces a
   byte-identical file on every run and for any --jobs value. *)

(* The cluster-wide "commits" series: per-interval sums across machines,
   time-sorted. Timestamps are absolute sim ns, and every machine's sampler
   ticks at the same instants, so summing per timestamp is exact. *)
let merged_commits c =
  let tbl = Hashtbl.create 512 in
  Array.iter
    (fun (st : State.t) ->
      let tl = Farm_obs.Obs.timeline st.State.obs in
      let idx = ref (-1) in
      List.iteri
        (fun i n -> if n = "commits" then idx := i)
        (Farm_obs.Timeline.series_names tl);
      if !idx >= 0 then
        List.iter
          (fun (t, vals) ->
            let prev = match Hashtbl.find_opt tbl t with Some v -> v | None -> 0 in
            Hashtbl.replace tbl t (prev + vals.(!idx)))
          (Farm_obs.Timeline.rows tl))
    c.Cluster.machines;
  List.sort compare (Hashtbl.fold (fun t v acc -> (t, v) :: acc) tbl [])

(* Mean pre-kill commit rate over the 20 ms before the kill, and the first
   sampling interval after the kill that regains 90% of it. All-integer
   arithmetic: [v >= 0.9 * pre_sum / pre_bins] as [v * 10 * pre_bins >=
   pre_sum * 9]. *)
let recovery_analysis rows ~kill_ns =
  let pre = List.filter (fun (t, _) -> t <= kill_ns && t > kill_ns - 20_000_000) rows in
  let pre_sum = List.fold_left (fun a (_, v) -> a + v) 0 pre in
  let pre_bins = List.length pre in
  let rec90 =
    if pre_sum = 0 then None
    else List.find_opt (fun (t, v) -> t > kill_ns && v * 10 * pre_bins >= pre_sum * 9) rows
  in
  (pre_sum, pre_bins, Option.map (fun (t, _) -> t - kill_ns) rec90)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_timeline_json file spec c ~kill_abs =
  let rows = merged_commits c in
  let kill_ns = Time.to_ns kill_abs in
  let pre_sum, pre_bins, rec90 = recovery_analysis rows ~kill_ns in
  let oc = open_out file in
  Printf.fprintf oc
    "{\"bench\":\"failure_timeline\",\"label\":\"%s\",\"kill_ns\":%d,\"pre_failure_commits\":{\"window_bins\":%d,\"total\":%d},\"recovery_90_ns\":%s,\"timeline\":%s}\n"
    (json_escape spec.label) kill_ns pre_bins pre_sum
    (match rec90 with Some t -> string_of_int t | None -> "null")
    (String.trim (Cluster.timeline_dump c));
  close_out oc;
  rec90

let first_milestone c tag ~after =
  let rec find = function
    | [] -> None
    | (t, _, at) :: rest -> if t = tag && Time.( >= ) at after then Some at else find rest
  in
  find (Cluster.milestones c)

let run spec : outcome =
  let c = Cluster.create ~seed:spec.seed ~params:spec.params ~domains:spec.domains
      ~machines:spec.machines ()
  in
  let op =
    match spec.workload with
    | Wl_tatp subscribers ->
        let t = Tatp.create c ~subscribers ~regions_per_table:2 in
        Tatp.load c t;
        Tatp.op t
    | Wl_tpcc scale ->
        let t = Tpcc.create c ~scale () in
        Tpcc.load c t;
        Tpcc.op t
  in
  let start = Cluster.now c in
  (* the sampler's horizon caps its self-rescheduling, so a drained engine
     still quiesces and the data-recovery wait loop below terminates *)
  if spec.json <> None then
    Cluster.start_sampling c
      ~until:(Time.add (Time.add start spec.measure_for) spec.data_rec_limit);
  let kill_abs = Time.add start spec.kill_at in
  let victims = ref [] in
  Engine.schedule c.Cluster.engine ~at:kill_abs (fun () ->
      (match spec.victim with
      | Kill_primary_of_first_region ->
          (* the first data region (region 1 is a table region) *)
          let rec first_alive rid =
            if rid > 50 then None
            else
              match
                List.find_opt
                  (fun (m, (rep : State.replica)) ->
                    rep.State.role = State.Primary && (Cluster.machine c m).State.alive)
                  (Cluster.replicas_of c rid)
              with
              | Some (m, _) -> Some m
              | None -> first_alive (rid + 1)
          in
          (match first_alive 1 with
          | Some m when m <> (Cluster.machine c 0).State.config.Config.cm ->
              victims := [ m ]
          | _ ->
              (* avoid the CM for the non-CM experiments *)
              let cm = (Cluster.machine c 0).State.config.Config.cm in
              victims := [ (cm + 1) mod spec.machines ])
      | Kill_cm -> victims := [ (Cluster.machine c 0).State.config.Config.cm ]
      | Kill_domain d ->
          victims :=
            List.filter
              (fun m -> spec.domains m = d)
              (List.init spec.machines Fun.id));
      List.iter (fun m -> Cluster.kill c m) !victims);
  (* the in-flight burst: extra workers alive only across the kill window,
     so far more transactions are mid-commit when the victim dies *)
  if spec.kill_burst > 0 then begin
    let burst_stop = ref false in
    Engine.schedule c.Cluster.engine
      ~at:(Time.sub kill_abs (Time.ms 2))
      (fun () ->
        Array.iter
          (fun (st : State.t) ->
            if st.State.alive then
              for w = 0 to spec.kill_burst - 1 do
                let ctx =
                  {
                    Driver.st;
                    thread = w mod st.State.params.Params.threads_per_machine;
                    rng = Rng.split st.State.rng;
                    worker = 1000 + w;
                  }
                in
                Proc.spawn ~ctx:st.State.ctx c.Cluster.engine (fun () ->
                    while not !burst_stop do
                      Proc.check_cancelled ();
                      ignore (op ctx);
                      Proc.sleep (Time.us 1)
                    done)
              done)
          c.Cluster.machines);
    Engine.schedule c.Cluster.engine
      ~at:(Time.add kill_abs (Time.ms 10))
      (fun () -> burst_stop := true)
  end;
  let stats =
    Driver.run c ~workers:spec.workers ~duration:spec.measure_for ~op
      ~machines:
        (List.init spec.machines Fun.id
        |> List.filter (fun m ->
               (* workers only on machines that will survive *)
               match spec.victim with
               | Kill_domain d -> spec.domains m <> d
               | Kill_cm -> m <> (Cluster.machine c 0).State.config.Config.cm
               | Kill_primary_of_first_region -> true))
  in
  (* wait for background data recovery to finish *)
  let deadline = Time.add (Cluster.now c) spec.data_rec_limit in
  while
    Cluster.milestone_time c "data-rec-done" = None
    && Time.( < ) (Cluster.now c) deadline
    && Engine.pending c.Cluster.engine > 0
  do
    Cluster.run_for c ~d:(Time.ms 50)
  done;
  let milestones =
    List.filter_map
      (fun (tag, _, at) ->
        if Time.( >= ) at kill_abs && tag <> "region-recovered" then
          Some (tag, Time.sub at kill_abs)
        else None)
      (Cluster.milestones c)
  in
  let regions_recovered =
    List.length
      (List.filter (fun (tag, _, _) -> tag = "region-recovered") (Cluster.milestones c))
  in
  let data_rec_done =
    Option.map (fun at -> Time.sub at kill_abs) (first_milestone c "data-rec-done" ~after:kill_abs)
  in
  let recovery_80 = Driver.recovery_time stats ~failure_at:kill_abs ~fraction:0.8 in
  let o = { recovery_80; milestones; regions_recovered; data_rec_done; stats; cluster = c } in
  if not spec.quiet then begin
    Bench_util.header spec.label spec.paper;
    Fmt.pr "machines=%d workers/machine=%d killed=%a at t=%a@." spec.machines spec.workers
      Fmt.(list ~sep:(any ",") int)
      !victims Time.pp kill_abs;
    Fmt.pr "@.milestones after the failure:@.";
    List.iter
      (fun (tag, dt) ->
        if List.mem tag [ "killed"; "suspect"; "probe"; "zookeeper"; "new-config";
                          "config-commit"; "all-active"; "data-rec-start"; "data-rec-done" ]
        then Fmt.pr "  %-16s +%a@." tag Time.pp dt)
      milestones;
    (match recovery_80 with
    | Some t -> Fmt.pr "@.time to regain 80%% of pre-failure throughput: %a@." Time.pp t
    | None -> Fmt.pr "@.throughput did not regain 80%% in the window@.");
    (match data_rec_done with
    | Some t ->
        Fmt.pr "full data re-replication of %d region replicas: %a@." regions_recovered
          Time.pp t
    | None -> Fmt.pr "data recovery still running at cutoff (paced; expected)@.");
    let bins = Cluster.throughput_series c ~until:(Cluster.now c) in
    let k = Bench_util.ms_of kill_abs in
    Bench_util.print_timeline ~from_ms:(max 0 (k - 30)) ~to_ms:(k + 120) ~bins
      ~label:"throughput around the failure" ();
    Bench_util.print_latency "tx latency" stats.Driver.latency
  end;
  (match spec.json with
  | Some file ->
      let rec90 = write_timeline_json file spec c ~kill_abs in
      if not spec.quiet then begin
        (match rec90 with
        | Some dt ->
            Fmt.pr "@.sampled timeline: commits/interval back to 90%% of pre-failure %a \
                    after the kill@."
              Time.pp (Time.ns dt)
        | None -> Fmt.pr "@.sampled timeline: 90%% of pre-failure rate not regained@.");
        Fmt.pr "wrote %s@." file
      end
  | None -> ());
  o
