open Farm_sim
open Farm_core
let () =
  let params = { Params.default with Params.lease_duration = Time.ms 5; region_size = 1 lsl 18; recovery_interval = Time.us 50 } in
  let c = Cluster.create ~machines:6 ~params () in
  let r = Cluster.alloc_region_exn c in
  Cluster.run_for c ~d:(Time.ms 10);
  Cluster.kill c r.Wire.primary;
  let guard = ref 0 in
  while Cluster.milestone_time c "data-rec-done" = None && !guard < 400 do incr guard; Cluster.run_for c ~d:(Time.ms 10) done;
  List.iter (fun (tag, m, at) -> Fmt.pr "%-18s m%d %a@." tag m Time.pp at) (Cluster.milestones c)
