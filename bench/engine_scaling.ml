open Farm_sim
open Farm_core
open Farm_workloads

(* Paper-scale engine benchmark (ROADMAP item 1).

   The paper's headline numbers come from a 90-machine cluster; every other
   experiment in this repo runs 6-12 machines because the protocol layers
   used to allocate per transaction. This bench tracks the trajectory that
   makes paper scale affordable: for each cluster size it runs the standard
   TATP mix with a fixed worker count per machine and records

     machines x host wall-clock x sim-tx/s x host-heap bytes/op

   into BENCH_engine_scaling.json, alongside the commit-path micro numbers
   (bytes allocated per committed transaction, measured over GC-quiet
   windows with Farm_obs.Allocmeter) whose pre-refactor value is kept in
   the JSON as the regression baseline.

   Modes (set by bench/main.exe global flags):
     --smoke                run only the small sizes with a short duration
                            (CI: every push)
     --check-baseline FILE  compare bytes/op against the checked-in JSON
                            and exit non-zero on a >= 20 % regression. *)

type row = {
  machines : int;
  workers_total : int;
  sim_ms : int;  (* measured window, simulated time *)
  host_s : float;  (* host wall-clock for the measured window *)
  ops : int;  (* successful TATP operations *)
  committed : int;  (* transactions through the commit protocol *)
  sim_tx_per_s : float;  (* ops per simulated second *)
  host_tx_per_s : float;  (* ops per host second: the engine's speed *)
  bytes_per_op : float;  (* host heap bytes allocated per TATP op *)
}

(* Memory-scaled parameters: at 90 machines the default 1 MB regions x 4
   tables x 90 regions x 3 replicas would cost ~1 GB of host heap; 128 KB
   regions keep the fleet under 150 MB while leaving each table ~10 MB of
   capacity, plenty for the subscriber counts used here. *)
let params () =
  { Params.default with Params.region_size = 1 lsl 17; log_size = 1 lsl 20 }

let run_size ~machines ~workers_per_machine ~subscribers ~duration =
  let c = Cluster.create ~params:(params ()) ~machines () in
  let regions_per_table = max 2 machines in
  let t = Tatp.create c ~subscribers ~regions_per_table in
  Tatp.load c t;
  let host0 = Unix.gettimeofday () in
  let stats, alloc_bytes, _clean =
    Farm_obs.Allocmeter.measure (fun () ->
        Driver.run c ~workers:workers_per_machine ~warmup:(Time.ms 2) ~duration
          ~op:(Tatp.op t))
  in
  let host1 = Unix.gettimeofday () in
  let ops = Stats.Counter.get stats.Driver.ops in
  let committed = Cluster.total_committed c in
  let sim_s = Time.to_us_float duration /. 1e6 in
  {
    machines;
    workers_total = machines * workers_per_machine;
    sim_ms = int_of_float (Time.to_ms_float duration);
    host_s = host1 -. host0;
    ops;
    committed;
    sim_tx_per_s = float_of_int ops /. sim_s;
    host_tx_per_s = float_of_int ops /. (host1 -. host0);
    bytes_per_op = alloc_bytes /. float_of_int (max 1 ops);
  }

(* {1 Commit-path micro measurement}

   Bytes of host heap allocated per committed read-write transaction,
   measured over a batch of two-object cross-machine update transactions on
   a 3-machine cluster — the narrow number the allocation budget in
   DESIGN.md governs. *)

let micro_commit_bytes () =
  Farm_obs.Allocmeter.with_quiet_heap (fun () ->
      let c = Cluster.create ~machines:3 () in
      let r1 = Cluster.alloc_region_exn c in
      let r2 = Cluster.alloc_region_exn c in
      let a, b =
        Cluster.run_on c ~machine:0 (fun st ->
            match
              Api.run st ~thread:0 (fun tx ->
                  let a = Txn.alloc tx ~size:16 ~region:r1.Wire.rid () in
                  let b = Txn.alloc tx ~size:16 ~region:r2.Wire.rid () in
                  (a, b))
            with
            | Ok v -> v
            | Error e ->
                Fmt.failwith "engine_scaling: setup tx failed: %a" Txn.pp_abort e)
      in
      let payload = Bytes.make 16 'x' in
      let batch st n =
        for _ = 1 to n do
          match
            Api.run st ~thread:0 (fun tx ->
                ignore (Txn.read tx a ~len:16);
                Txn.write tx a payload;
                Txn.write tx b payload)
          with
          | Ok () -> ()
          | Error e ->
              Fmt.failwith "engine_scaling: micro tx failed: %a" Txn.pp_abort e
        done
      in
      let n = 512 in
      (* One engine pump per attempt: warm-up batch, then the measured
         batch inside a single GC-quiet window.  The measurement runs
         entirely inside [run_on] so background machinery (leases, log
         flushers) is charged to the transactions it serves, exactly as
         at scale. *)
      let rec attempt tries =
        let bytes_per_tx =
          Cluster.run_on c ~machine:0 (fun st ->
              batch st 32;
              let (), bytes, clean =
                Farm_obs.Allocmeter.measure (fun () -> batch st n)
              in
              if clean then Some (bytes /. float_of_int n) else None)
        in
        match bytes_per_tx with
        | Some v -> v
        | None when tries > 0 -> attempt (tries - 1)
        | None -> Fmt.failwith "engine_scaling: no GC-quiet micro window"
      in
      attempt 3)

(* {1 JSON} *)

let json_of_row r =
  Printf.sprintf
    "    { \"machines\": %d, \"workers_total\": %d, \"sim_ms\": %d, \
     \"host_s\": %.2f, \"ops\": %d, \"committed\": %d, \"sim_tx_per_s\": \
     %.0f, \"host_tx_per_s\": %.0f, \"bytes_per_op\": %.0f }"
    r.machines r.workers_total r.sim_ms r.host_s r.ops r.committed r.sim_tx_per_s
    r.host_tx_per_s r.bytes_per_op

(* The pre-refactor commit-path number, measured on the allocating pipeline
   (fresh hashtables, cons-lists and polymorphic sorts per commit) at the
   seed of this PR; kept as a constant so the ratio in the JSON and the CI
   budget check both refer to a fixed anchor. *)
let pre_refactor_micro_bytes_per_tx = 36_679.

let json ~smoke ~micro_bytes rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"bench\": \"engine_scaling\",\n";
  Buffer.add_string b (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string b
    (Printf.sprintf
       "  \"micro_commit\": { \"pre_refactor_bytes_per_tx\": %.0f, \
        \"bytes_per_tx\": %.0f, \"reduction_x\": %.1f },\n"
       pre_refactor_micro_bytes_per_tx micro_bytes
       (pre_refactor_micro_bytes_per_tx /. micro_bytes));
  Buffer.add_string b "  \"rows\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map json_of_row rows));
  Buffer.add_string b "\n  ]\n}";
  Buffer.contents b

(* {1 Baseline regression check (CI)}

   Reads bytes-per-op numbers out of the checked-in JSON with a tolerant
   scan: for every "machines": N ... "bytes_per_op": X pair, a fresh
   measurement at the same cluster size must stay under 1.2x X. *)

let baseline_rows file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let out = ref [] in
  let re_num = Str.regexp {|"machines": \([0-9]+\)|} in
  let re_tx = Str.regexp {|"sim_tx_per_s": \([0-9.]+\)|} in
  let re_bytes = Str.regexp {|"bytes_per_op": \([0-9.]+\)|} in
  let pos = ref 0 in
  (try
     while true do
       let m = Str.search_forward re_num s !pos in
       let machines = int_of_string (Str.matched_group 1 s) in
       let tpos = Str.search_forward re_tx s m in
       let tx = float_of_string (Str.matched_group 1 s) in
       let bpos = Str.search_forward re_bytes s tpos in
       let bytes = float_of_string (Str.matched_group 1 s) in
       out := (machines, (tx, bytes)) :: !out;
       pos := bpos + 1
     done
   with Not_found -> ());
  List.rev !out

let baseline_micro file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try
    let _ = Str.search_forward (Str.regexp {|"bytes_per_tx": \([0-9.]+\)|}) s 0 in
    Some (float_of_string (Str.matched_group 1 s))
  with Not_found -> None

let check_against ~baseline_file ~micro_bytes rows =
  let base = baseline_rows baseline_file in
  let failures = ref 0 in
  List.iter
    (fun r ->
      match List.assoc_opt r.machines base with
      | None -> ()
      | Some (tx_b, b) ->
          let limit = b *. 1.2 in
          if r.bytes_per_op > limit then begin
            incr failures;
            Fmt.pr
              "  REGRESSION: %d machines: %.0f bytes/op vs baseline %.0f (limit %.0f)@."
              r.machines r.bytes_per_op b limit
          end
          else
            Fmt.pr "  ok: %d machines: %.0f bytes/op (baseline %.0f, limit %.0f)@."
              r.machines r.bytes_per_op b limit;
          (* simulated commit throughput is a pure function of the seed, so
             a drop past the band means the protocol got slower, not noise *)
          let floor = tx_b /. 1.2 in
          if r.sim_tx_per_s < floor then begin
            incr failures;
            Fmt.pr
              "  REGRESSION: %d machines: %.3f commits/us vs baseline %.3f (floor %.3f)@."
              r.machines (r.sim_tx_per_s /. 1e6) (tx_b /. 1e6) (floor /. 1e6)
          end
          else
            Fmt.pr "  ok: %d machines: %.3f commits/us (baseline %.3f, floor %.3f)@."
              r.machines (r.sim_tx_per_s /. 1e6) (tx_b /. 1e6) (floor /. 1e6))
    rows;
  (match baseline_micro baseline_file with
  | Some b ->
      let limit = b *. 1.2 in
      if micro_bytes > limit then begin
        incr failures;
        Fmt.pr "  REGRESSION: commit micro: %.0f bytes/tx vs baseline %.0f (limit %.0f)@."
          micro_bytes b limit
      end
      else
        Fmt.pr "  ok: commit micro: %.0f bytes/tx (baseline %.0f, limit %.0f)@."
          micro_bytes b limit
  | None -> ());
  !failures = 0

(* {1 Entry point} *)

let run ?(smoke = false) ?check_baseline () =
  Bench_util.header "engine scaling — TATP at paper scale"
    "90 machines, Fig 7/9/13 cluster size; tracks engine speed and bytes/op";
  let sizes =
    (* (machines, workers_per_machine, subscribers, duration) *)
    if smoke then [ (3, 12, 2_000, Time.ms 40); (9, 12, 4_000, Time.ms 25) ]
    else
      [
        (3, 12, 2_000, Time.ms 60);
        (9, 12, 4_000, Time.ms 40);
        (30, 12, 6_000, Time.ms 25);
        (60, 12, 8_000, Time.ms 20);
        (90, 12, 10_000, Time.ms 20);
      ]
  in
  let micro_bytes = micro_commit_bytes () in
  Fmt.pr "commit micro: %.0f bytes/tx (pre-refactor %.0f, %.1fx reduction)@."
    micro_bytes pre_refactor_micro_bytes_per_tx
    (pre_refactor_micro_bytes_per_tx /. micro_bytes);
  let rows =
    Farm_obs.Allocmeter.with_quiet_heap @@ fun () ->
    List.map
      (fun (machines, workers_per_machine, subscribers, duration) ->
        let r = run_size ~machines ~workers_per_machine ~subscribers ~duration in
        Fmt.pr
          "%2d machines %5d workers: %7d ops in %dms sim (%.2fs host) = %.1f \
           Mtx/s sim, %.0f tx/s host, %.0f bytes/op@."
          r.machines r.workers_total r.ops r.sim_ms r.host_s
          (r.sim_tx_per_s /. 1e6) r.host_tx_per_s r.bytes_per_op;
        r)
      sizes
  in
  (match check_baseline with
  | Some file ->
      Fmt.pr "@.checking against baseline %s (fail at +20%%):@." file;
      if not (check_against ~baseline_file:file ~micro_bytes rows) then begin
        Fmt.epr "engine_scaling: bytes/op regression against %s@." file;
        exit 1
      end
  | None ->
      let json = json ~smoke ~micro_bytes rows in
      let oc = open_out "BENCH_engine_scaling.json" in
      output_string oc (json ^ "\n");
      close_out oc;
      Fmt.pr "wrote BENCH_engine_scaling.json@.")
