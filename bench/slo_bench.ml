open Farm_sim
open Farm_core
open Farm_workloads
open Farm_fault

(* SLO under gray failures: TATP driven open-loop through a bounded
   admission queue while one machine degrades — slow/lossy NIC, asymmetric
   partition, CPU throttling, lease flapping — with a healthy baseline for
   reference. Per scenario: goodput, sojourn percentiles (p50/p99/p999,
   queueing included — the open loop is what makes gray damage visible),
   shed load, and the longest cluster-wide commit stall from the 1 ms
   timeline sampler. The SLO probes gate each scenario: a stall must
   coincide with suspicion evidence, queues must drain after heal, nothing
   may stay parked.

   Everything derives from the per-scenario seed; scenarios are
   independent worlds sharded over domains, and the JSON artifact
   (BENCH_slo.json) is byte-identical across reruns and --jobs counts. *)

type scenario = {
  label : string;
  shape : Arrivals.shape;
  rate : float;  (* cluster-wide arrivals/s *)
  faults : Schedule.event list;  (* relative to the load window start *)
}

let machines = 6
let subscribers = 2_000
let queue_cap = 64
let serve_workers = 2
let seed = 42

let params = { Params.default with Params.lease_duration = Time.ms 5 }
let lease = params.Params.lease_duration

(* Fault window: degrade at 30 ms, heal at 80 ms, load stops at [window]. *)
let fault_at = Time.ms 30
let heal_at = Time.ms 80

let ev at fault = { Schedule.at; fault }

let scenarios ~window:_ =
  [
    { label = "baseline"; shape = Arrivals.Poisson; rate = 40_000.; faults = [] };
    {
      label = "slow_nic";
      shape = Arrivals.Self_similar { b = 0.72 };
      rate = 40_000.;
      faults =
        [
          ev fault_at (Schedule.Slow_nic { machine = 1; delay_factor = 4.; loss = 0.08 });
          ev heal_at (Schedule.Nic_heal 1);
        ];
    };
    {
      label = "asym_partition";
      shape = Arrivals.Poisson;
      rate = 40_000.;
      faults =
        [
          ev fault_at (Schedule.Asym_partition { srcs = [ 1 ]; dsts = [ 2 ] });
          ev heal_at Schedule.Heal;
        ];
    };
    {
      label = "cpu_slow";
      shape = Arrivals.Diurnal { trough = 0.4 };
      rate = 40_000.;
      faults =
        [
          ev fault_at (Schedule.Cpu_slow { machine = 1; factor = 4 });
          ev heal_at (Schedule.Cpu_heal 1);
        ];
    };
    {
      label = "lease_flap";
      shape = Arrivals.Flash { at = 0.45; magnitude = 5.; width = 0.3 };
      rate = 40_000.;
      faults =
        [
          ev fault_at
            (Schedule.Lease_flap
               { machine = 1; period = lease; count = 5;
                 stall = Time.div_int (Time.mul_int lease 3) 4 });
        ];
    };
  ]

type result = {
  r_label : string;
  r_shape : string;
  r_rate : float;
  r_offered : int;  (* submitted + shed = everything that arrived *)
  r_submitted : int;
  r_shed : int;
  r_completed : int;
  r_failed : int;
  r_stranded : int;  (* admitted but never served: lost to eviction/death *)
  r_goodput : float;  (* completed per second of load window *)
  r_p50_us : float;
  r_p99_us : float;
  r_p999_us : float;
  r_max_stall_ms : int;  (* longest cluster-wide zero-commit run, sampler bins *)
  r_blame : (string * int) list;  (* latency-blame ns totals, all tx *)
  r_tail : (string * int) list;  (* blame of the slowest exemplar tx only *)
  r_violations : string list;
  r_block : string;  (* rendered human-readable output *)
}

(* "cat 42% cat 30% ..." — categories by share, largest first, of one blame
   total list; sub-1% categories folded away. *)
let pct_line blame =
  let tot = List.fold_left (fun acc (_, v) -> acc + v) 0 blame in
  if tot = 0 then "n/a"
  else
    List.filter_map
      (fun (name, v) ->
        let pct = 100 * v / tot in
        if pct < 1 then None else Some (Printf.sprintf "%s %d%%" name pct))
      (List.stable_sort (fun (_, a) (_, b) -> compare b a) blame)
    |> String.concat "  "

(* Longest zero-run (ms) of the sampler's merged per-ms commits between the
   first and last nonzero bins. *)
let max_stall_ms rows =
  let vals = List.map snd rows in
  let arr = Array.of_list vals in
  let first = ref (-1) and last = ref (-1) in
  Array.iteri
    (fun i v ->
      if v > 0 then begin
        if !first < 0 then first := i;
        last := i
      end)
    arr;
  if !first < 0 then 0
  else begin
    let best = ref 0 and cur = ref 0 in
    for i = !first to !last do
      if arr.(i) = 0 then begin
        incr cur;
        if !cur > !best then best := !cur
      end
      else cur := 0
    done;
    !best
  end

let run_scenario ~window ~drain (sc : scenario) : result =
  let c = Cluster.create ~seed ~params ~machines () in
  let tatp = Tatp.create c ~subscribers ~regions_per_table:2 in
  Tatp.load c tatp;
  (* armed after load: the attribution below covers the open-loop window
     only. Determinism-inert — the history is identical either way. *)
  Cluster.set_blame c true;
  let op = Tatp.op tatp in
  let start = Cluster.now c in
  (* open loop first so its queue gauges join the sampler's standard set *)
  let ol =
    Openloop.start c ~queue_cap ~workers:serve_workers ~shape:sc.shape ~rate:sc.rate
      ~duration:window ~op
  in
  let horizon = Time.add (Time.add start window) (Time.add drain (Time.ms 200)) in
  Cluster.start_sampling c ~until:horizon;
  Nemesis.run c ~start { Schedule.seed; machines; events = sc.faults };
  Cluster.run_until c ~at:(Time.add start window);
  Openloop.stop ol;
  Cluster.run_for c ~d:drain;
  Cluster.heal c;
  let settled = Cluster.quiesce c in
  Cluster.run_for c ~d:(Time.ms 60);
  let st = Openloop.stats ol in
  let violations =
    (if settled then [] else [ "slo: cluster failed to quiesce" ])
    @ Probes.no_global_stall c @ Probes.no_parked_tx c
    @ Probes.queues_drained
        ~queues:(fun () -> Openloop.queue_depths ~members_only:true ol)
        ()
  in
  let submitted = Stats.Counter.get st.Openloop.submitted in
  let shed = Stats.Counter.get st.Openloop.shed in
  let completed = Stats.Counter.get st.Openloop.completed in
  let failed = Stats.Counter.get st.Openloop.failed in
  let pct p = float_of_int (Stats.Hist.percentile st.Openloop.sojourn p) /. 1e3 in
  let stall = max_stall_ms (Failure_bench.merged_commits c) in
  let goodput = float_of_int completed /. Time.to_s_float window in
  let stranded = Openloop.stranded ol in
  let blame = Cluster.blame_totals c in
  let tail = Cluster.tail_blame c in
  let block =
    Fmt.str "%-14s %-24s offered %6d  shed %5d  goodput %9.0f/s@.%s%s@.%s@.%a"
      sc.label
      (Fmt.str "%a" Arrivals.pp_shape sc.shape)
      (submitted + shed) shed goodput
      (Fmt.str
         "               sojourn p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  max-stall %d ms"
         (pct 50.) (pct 99.) (pct 99.9) stall)
      (if stranded = 0 then ""
       else Fmt.str "  stranded %d (evicted/dead machine)" stranded)
      (Fmt.str "               p999 attribution (slowest tx): %s" (pct_line tail))
      Fmt.(list ~sep:nop (fmt "               VIOLATION: %s@."))
      violations
  in
  {
    r_label = sc.label;
    r_shape = Fmt.str "%a" Arrivals.pp_shape sc.shape;
    r_rate = sc.rate;
    r_offered = submitted + shed;
    r_submitted = submitted;
    r_shed = shed;
    r_completed = completed;
    r_failed = failed;
    r_stranded = stranded;
    r_goodput = goodput;
    r_p50_us = pct 50.;
    r_p99_us = pct 99.;
    r_p999_us = pct 99.9;
    r_max_stall_ms = stall;
    r_blame = blame;
    r_tail = tail;
    r_violations = violations;
    r_block = block;
  }

let json_blame blame =
  String.concat ","
    (List.map
       (fun (name, ns) -> Printf.sprintf "\"%s\":%d" (Failure_bench.json_escape name) ns)
       blame)

let write_json file results =
  let oc = open_out file in
  Printf.fprintf oc "{\"bench\":\"slo\",\"scenarios\":[";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "{\"label\":\"%s\",\"shape\":\"%s\",\"rate_per_s\":%.0f,\"offered\":%d,\"submitted\":%d,\"shed\":%d,\"completed\":%d,\"failed\":%d,\"stranded\":%d,\"goodput_per_s\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,\"max_stall_ms\":%d,\"blame_ns\":{%s},\"tail_blame_ns\":{%s},\"violations\":[%s]}"
        (Failure_bench.json_escape r.r_label)
        (Failure_bench.json_escape r.r_shape)
        r.r_rate r.r_offered r.r_submitted r.r_shed r.r_completed r.r_failed
        r.r_stranded r.r_goodput
        r.r_p50_us r.r_p99_us r.r_p999_us r.r_max_stall_ms
        (json_blame r.r_blame) (json_blame r.r_tail)
        (String.concat ","
           (List.map (fun v -> "\"" ^ Failure_bench.json_escape v ^ "\"") r.r_violations)))
    results;
  Printf.fprintf oc "]}\n";
  close_out oc

(* {1 Baseline regression check (CI)}

   Key SLO fields of the checked-in BENCH_slo.json, matched per scenario
   label: fresh goodput must stay above baseline/1.2 and fresh p999 under
   baseline*1.2. Same tolerant Str scan as the engine-scaling check. *)

let baseline_slo file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let out = ref [] in
  let re_label = Str.regexp {|"label":"\([a-z_]+\)"|} in
  let re_goodput = Str.regexp {|"goodput_per_s":\([0-9.]+\)|} in
  let re_p999 = Str.regexp {|"p999_us":\([0-9.]+\)|} in
  let pos = ref 0 in
  (try
     while true do
       let m = Str.search_forward re_label s !pos in
       let label = Str.matched_group 1 s in
       let gpos = Str.search_forward re_goodput s m in
       let goodput = float_of_string (Str.matched_group 1 s) in
       let _ = Str.search_forward re_p999 s gpos in
       let p999 = float_of_string (Str.matched_group 1 s) in
       out := (label, (goodput, p999)) :: !out;
       pos := gpos + 1
     done
   with Not_found -> ());
  List.rev !out

let check_against ~baseline_file results =
  let base = baseline_slo baseline_file in
  let failures = ref 0 in
  List.iter
    (fun r ->
      match List.assoc_opt r.r_label base with
      | None -> ()
      | Some (goodput_b, p999_b) ->
          let goodput_floor = goodput_b /. 1.2 and p999_ceil = p999_b *. 1.2 in
          if r.r_goodput < goodput_floor then begin
            incr failures;
            Fmt.pr "  REGRESSION: %s: goodput %.1f/s vs baseline %.1f (floor %.1f)@."
              r.r_label r.r_goodput goodput_b goodput_floor
          end
          else
            Fmt.pr "  ok: %s: goodput %.1f/s (baseline %.1f, floor %.1f)@." r.r_label
              r.r_goodput goodput_b goodput_floor;
          if r.r_p999_us > p999_ceil then begin
            incr failures;
            Fmt.pr "  REGRESSION: %s: p999 %.1f us vs baseline %.1f (ceiling %.1f)@."
              r.r_label r.r_p999_us p999_b p999_ceil
          end
          else
            Fmt.pr "  ok: %s: p999 %.1f us (baseline %.1f, ceiling %.1f)@." r.r_label
              r.r_p999_us p999_b p999_ceil)
    results;
  !failures = 0

let run ?(smoke = false) ?check_baseline () =
  Bench_util.header "SLO under gray failures (open-loop TATP)"
    "graceful degradation: Fig 16's lease stack under slow-but-alive faults";
  (* the checked-in baseline is a full-window artifact; comparing a smoke
     run against it would always "regress" *)
  let smoke = smoke && check_baseline = None in
  let window = if smoke then Time.ms 60 else Time.ms 120 in
  let drain = Time.ms 40 in
  Fmt.pr
    "machines=%d  tatp subscribers=%d  open-loop rate=40000/s  queue cap=%d/machine  \
     window=%dms@.@."
    machines subscribers queue_cap
    (Bench_util.ms_of window);
  let results =
    Bench_util.shard_map (fun sc -> run_scenario ~window ~drain sc) (scenarios ~window)
  in
  List.iter (fun r -> Fmt.pr "%s@." r.r_block) results;
  let bad = List.concat_map (fun r -> r.r_violations) results in
  if bad = [] then Fmt.pr "slo probes: all scenarios clean@."
  else Fmt.pr "slo probes: %d violation(s) — see above@." (List.length bad);
  match check_baseline with
  | Some file ->
      Fmt.pr "@.checking against baseline %s (goodput floor /1.2, p999 ceiling *1.2):@."
        file;
      if not (check_against ~baseline_file:file results) then begin
        Fmt.epr "slo: SLO regression against %s@." file;
        exit 1
      end
  | None ->
      if not smoke then begin
        write_json "BENCH_slo.json" results;
        Fmt.pr "wrote BENCH_slo.json@."
      end
