open Farm_sim

(* Shared output helpers for the figure-regeneration harness. *)

let header fig paper =
  Fmt.pr "@.=== %s ===@." fig;
  Fmt.pr "paper: %s@.@." paper

(* {1 Sharded sweeps}

   Multi-config sweeps (load points, ablation settings, cluster sizes)
   build a fresh cluster per config, so configs are independent worlds and
   can run on worker domains. Each config renders its own output block
   off-screen; blocks print in config order from the calling domain, so a
   sharded sweep's output is byte-identical to the sequential one. *)

(* Worker-domain count for sharded sweeps. Set once at startup by
   bench/main.ml's --jobs, before any sweep spawns a domain; read-only
   thereafter. *)
let jobs = ref (Domain_pool.default_jobs ())

(* Global flags for the engine-scaling bench (set by bench/main.ml): run
   the short CI sizes only, and/or compare against a checked-in baseline
   JSON instead of writing a fresh one. *)
let smoke = ref false
let check_baseline : string option ref = ref None

(* Run [f] over [configs] on the domain pool; results come back in config
   order, and an exception from a config re-raises in config order, as the
   sequential loop's would have. *)
let shard_map f configs =
  Domain_pool.map ~jobs:!jobs f (Array.of_list configs)
  |> Array.to_list
  |> List.map (function Ok v -> v | Error e -> raise e)

(* Shard a sweep whose per-config result is a rendered output block. *)
let shard_print f configs = List.iter print_string (shard_map f configs)

let bar ?(scale = 1.0) v =
  let n = int_of_float (float_of_int v *. scale) in
  String.make (min 60 (max 0 n)) '#'

(* Print a 1 ms-binned series aggregated into [step]-ms rows. *)
let print_timeline ?(step = 5) ~from_ms ~to_ms ~bins ~label () =
  Fmt.pr "%s (tx per %d ms):@." label step;
  let maxv = ref 1 in
  let rows = ref [] in
  let i = ref from_ms in
  while !i < to_ms do
    let s = ref 0 in
    for j = !i to min (to_ms - 1) (!i + step - 1) do
      if j >= 0 && j < Array.length bins then s := !s + bins.(j)
    done;
    rows := (!i, !s) :: !rows;
    if !s > !maxv then maxv := !s;
    i := !i + step
  done;
  List.iter
    (fun (t, v) ->
      Fmt.pr "  t=%4dms %6d %s@." t v (bar ~scale:(55.0 /. float_of_int !maxv) v))
    (List.rev !rows)

let print_latency name (h : Stats.Hist.t) =
  Fmt.pr "  %-22s median %8.1f us   99th %8.1f us   mean %8.1f us  (n=%d)@." name
    (float_of_int (Stats.Hist.percentile h 50.) /. 1e3)
    (float_of_int (Stats.Hist.percentile h 99.) /. 1e3)
    (Stats.Hist.mean h /. 1e3)
    (Stats.Hist.count h)

let ms_of t = int_of_float (Time.to_ms_float t)
