open Bechamel
open Toolkit

(* Bechamel micro-benchmarks of the hot data structures: real wall-clock
   cost per operation for the pieces every simulated transaction touches.
   These are host-machine numbers, not simulated time.

   Each row also reports heap bytes allocated per operation, measured
   directly as the [Gc.allocated_bytes] delta over a fixed repetition
   count: the commit hot path is engineered to keep this low, and
   [commit.txn_commit] is the end-to-end figure the allocation test
   (test_alloc) holds to a budget. *)

let tests () =
  let rng = Farm_sim.Rng.create 1 in
  let hist = Farm_sim.Stats.Hist.create () in
  let heap = Farm_sim.Heap.create () in
  let seq = ref 0 in
  let mem = Bytes.make 4096 '\000' in
  let header = Farm_core.Obj_layout.make ~locked:false ~allocated:true ~version:3 in
  Farm_core.Obj_layout.set mem ~off:64 header;
  let engine = Farm_sim.Engine.create () in
  let record =
    {
      Farm_core.Wire.payload =
        Farm_core.Wire.Commit_primary
          { txid = Farm_core.Txid.make ~config:1 ~machine:0 ~thread:0 ~local:1; ts = 0 };
      truncations = [];
      low_bound = 0;
      cfg = 1;
    }
  in
  (* a private two-machine fabric for the verb benches *)
  let net = Farm_net.Fabric.create engine ~params:Farm_net.Params.default ~rng in
  Farm_net.Fabric.add_machine net ~id:0 ~cpu:(Farm_sim.Cpu.create engine ~threads:2);
  Farm_net.Fabric.add_machine net ~id:1 ~cpu:(Farm_sim.Cpu.create engine ~threads:2);
  (* a real 3-machine cluster for the end-to-end commit bench: one
     cross-region two-object update per operation, pumped to completion *)
  let open Farm_core in
  let c = Cluster.create ~machines:3 () in
  let r1 = Cluster.alloc_region_exn c in
  let r2 = Cluster.alloc_region_exn c in
  let a, b =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:16 ~region:r1.Wire.rid () in
              let b = Txn.alloc tx ~size:16 ~region:r2.Wire.rid () in
              (a, b))
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "micro: setup tx failed: %a" Txn.pp_abort e)
  in
  (* a second cluster running the snapshot protocol, for the read-only
     transaction rows: same shape, different commit path *)
  let cs =
    Cluster.create ~machines:3
      ~params:{ Params.default with Params.protocol = Params.Snapshot }
      ()
  in
  let rs = Cluster.alloc_region_exn cs in
  let sa, sb =
    Cluster.run_on cs ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              let a = Txn.alloc tx ~size:16 ~region:rs.Wire.rid () in
              let b = Txn.alloc tx ~size:16 ~region:rs.Wire.rid () in
              (a, b))
        with
        | Ok v -> v
        | Error e -> Fmt.failwith "micro: snapshot setup tx failed: %a" Txn.pp_abort e)
  in
  let ro_txn cl x y =
    Cluster.run_on cl ~machine:0 (fun st ->
        match
          Api.run st ~thread:0 (fun tx ->
              ignore (Txn.read tx x ~len:16);
              ignore (Txn.read tx y ~len:16))
        with
        | Ok () -> ()
        | Error e -> Fmt.failwith "micro: read-only tx failed: %a" Txn.pp_abort e)
  in
  let payload = Bytes.make 16 'x' in
  let fnv_key = Bytes.make 16 'k' in
  [
    ("rng.int", fun () -> ignore (Farm_sim.Rng.int rng 1024));
    ("hist.record", fun () -> Farm_sim.Stats.Hist.record hist 12345);
    ( "heap.push_pop",
      fun () ->
        incr seq;
        Farm_sim.Heap.push heap ~key:(Farm_sim.Rng.int rng 100000) ~seq:!seq ();
        ignore (Farm_sim.Heap.pop heap) );
    ( "objlayout.header_rmw",
      fun () ->
        let h = Farm_core.Obj_layout.get mem ~off:64 in
        Farm_core.Obj_layout.set mem ~off:64
          (Farm_core.Obj_layout.with_version h (Farm_core.Obj_layout.version h + 1)) );
    ( "engine.schedule_run",
      fun () ->
        Farm_sim.Engine.schedule engine ~at:(Farm_sim.Engine.now engine) (fun () -> ());
        Farm_sim.Engine.run engine );
    ( "proc.suspend_resume",
      fun () ->
        Farm_sim.Proc.spawn engine (fun () -> Farm_sim.Proc.yield ());
        Farm_sim.Engine.run engine );
    ( "fabric.one_sided_write",
      fun () ->
        Farm_sim.Proc.spawn engine (fun () ->
            ignore
              (Farm_net.Fabric.one_sided_write net ~src:0 ~dst:1 ~bytes:64 (fun () -> ())));
        Farm_sim.Engine.run engine );
    ("wire.record_bytes", fun () -> ignore (Farm_core.Wire.record_bytes record));
    ("codec.fnv1a_16B", fun () -> ignore (Farm_kv.Codec.fnv1a fnv_key));
    ( "commit.txn_commit",
      fun () ->
        Cluster.run_on c ~machine:0 (fun st ->
            match
              Api.run st ~thread:0 (fun tx ->
                  ignore (Txn.read tx a ~len:16);
                  Txn.write tx a payload;
                  Txn.write tx b payload)
            with
            | Ok () -> ()
            | Error e -> Fmt.failwith "micro: commit tx failed: %a" Txn.pp_abort e) );
    (* a two-object read-only transaction, both protocol variants: the
       baseline validates at commit, the snapshot protocol reads at its
       timestamp and commits locally *)
    ("commit.ro_txn_baseline", fun () -> ro_txn c a b);
    ("commit.ro_txn_snapshot", fun () -> ro_txn cs sa sb);
  ]

(* Bytes allocated per operation, measured over a GC-quiet window (see
   Farm_obs.Allocmeter) after a warm-up pass that fills caches, pools and
   mappings. *)
let bytes_per_op fn = Farm_obs.Allocmeter.bytes_per_op fn

let run () =
  Bench_util.header "Micro-benchmarks (host wall clock, via Bechamel)"
    "cost per operation of the simulator's hot paths";
  let named = tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped =
    Test.make_grouped ~name:"micro" ~fmt:"%s.%s"
      (List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) named)
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let allocs =
    List.map (fun (name, fn) -> ("micro." ^ name, bytes_per_op fn)) named
  in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  Fmt.pr "  %-32s %10s %12s@." "" "ns/op" "bytes/op";
  List.iter
    (fun (name, v) ->
      let bytes = List.assoc_opt name allocs in
      let pp_bytes ppf = function
        | Some b -> Fmt.pf ppf "%12.1f" b
        | None -> Fmt.pf ppf "%12s" "-"
      in
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> Fmt.pr "  %-32s %10.1f %a@." name ns pp_bytes bytes
      | _ -> Fmt.pr "  %-32s %10s %a@." name "-" pp_bytes bytes)
    (List.sort compare rows)
