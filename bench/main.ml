(* The figure-regeneration harness: one entry per table/figure of the
   paper's evaluation (see DESIGN.md §3 for the per-experiment index).

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- fig9    runs one experiment
     dune exec bench/main.exe -- list    lists experiment ids
     dune exec bench/main.exe -- --jobs 8 ablations
                                         shards multi-config sweeps over
                                         8 worker domains (output is
                                         byte-identical to --jobs 1)     *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig1", "energy to save DRAM to SSD (§2.1)", Fig_energy.run);
    ("fig2", "RDMA vs RPC read performance (§2.2)", Fig_netreads.run);
    ("fig7", "TATP throughput-latency", fun () -> Fig_curves.tatp ());
    ("fig8", "TPC-C throughput-latency", fun () -> Fig_curves.tpcc ());
    ("fig9", "TATP failure timeline", Fig_failures.fig9);
    ("fig10", "TPC-C failure timeline", Fig_failures.fig10);
    ("fig11", "CM failure timeline", Fig_failures.fig11);
    ("fig12", "distribution of recovery times", fun () -> Fig_failures.fig12 ());
    ("fig13", "correlated (failure-domain) failure", Fig_failures.fig13);
    ("fig14", "TATP with aggressive data recovery", Fig_failures.fig14);
    ("fig15", "TPC-C with aggressive data recovery", Fig_failures.fig15);
    ("fig16", "lease false positives by implementation", fun () -> Fig_lease.run ());
    ("readperf", "uniform KV lookups (§6.3)", fun () -> Readperf.run ());
    ("scaling", "FaRM vs single-machine engine (§6.3)", fun () -> Scaling.run ());
    ("ycsb", "YCSB core workloads (from [16])", fun () -> Ycsb_bench.run ());
    ("ablations", "design-choice ablations (CM rebuild, tr, f)", Ablations.run);
    ( "engine_scaling",
      "paper-scale TATP engine benchmark (3..90 machines, bytes/op)",
      fun () ->
        Engine_scaling.run ~smoke:!Bench_util.smoke
          ?check_baseline:!Bench_util.check_baseline () );
    ( "batching",
      "batched vs unbatched commit pipeline (doorbell batching)",
      fun () -> ignore (Commit_batching.run ()) );
    ( "opacity",
      "validate-at-commit vs snapshot protocol on contended YCSB-B/C",
      fun () -> ignore (Opacity_bench.run ()) );
    ( "slo",
      "SLO under gray failures: open-loop TATP, goodput/p999/max-stall",
      fun () ->
        Slo_bench.run ~smoke:!Bench_util.smoke
          ?check_baseline:!Bench_util.check_baseline () );
    ( "blame",
      "latency attribution: blame categories, heat ranking, critical paths",
      fun () -> Blame_bench.run ~smoke:!Bench_util.smoke () );
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --jobs N: worker domains for sharded sweeps; must be consumed before
     any experiment spawns a domain *)
  let rec strip_jobs = function
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> Bench_util.jobs := j
        | _ ->
            Fmt.epr "main: --jobs expects a positive integer, got %S@." n;
            exit 2);
        strip_jobs rest
    | [ "--jobs" ] ->
        Fmt.epr "main: --jobs expects a value@.";
        exit 2
    | "--smoke" :: rest ->
        Bench_util.smoke := true;
        strip_jobs rest
    | "--check-baseline" :: file :: rest ->
        Bench_util.check_baseline := Some file;
        strip_jobs rest
    | [ "--check-baseline" ] ->
        Fmt.epr "main: --check-baseline expects a file@.";
        exit 2
    | args -> args
  in
  let args = strip_jobs args in
  match args with
  | [ "list" ] ->
      List.iter (fun (id, what, _) -> Fmt.pr "%-10s %s@." id what) experiments
  | [] ->
      Fmt.pr "FaRM reproduction benchmark harness — running all experiments@.";
      Fmt.pr "(scaled-down cluster sizes; shapes, not absolute numbers — see EXPERIMENTS.md)@.";
      List.iter
        (fun (_, _, run) ->
          let t0 = Unix.gettimeofday () in
          run ();
          Fmt.pr "@.[%.1fs wall]@." (Unix.gettimeofday () -. t0))
        experiments
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some (_, _, run) -> run ()
          | None ->
              Fmt.epr "unknown experiment %S; try: dune exec bench/main.exe -- list@." id;
              exit 1)
        ids
