open Farm_sim
open Farm_core
open Farm_workloads

(* Ablation: doorbell-batched vs unbatched commit pipeline.

   A multi-participant mix in the TATP/YCSB-F mould: every transaction
   touches one cell in each of [spread] regions spread over the cluster —
   80 % read-modify-write (the full LOCK / COMMIT-BACKUP / COMMIT-PRIMARY
   pipeline against every distinct primary and backup machine), 20 %
   multi-region read-only (batched VALIDATE header reads only). Replication
   is raised to 5 so the per-transaction backup set spans the whole
   cluster: commit CPU is then dominated by per-participant verb issue,
   which is precisely what doorbell batching amortizes. Run at a saturating
   worker count in both modes; the only difference between the two runs is
   Params.doorbell_batching.

   Emits BENCH_commit_batching.json (machine-readable, one object per
   mode) so later PRs can track the perf trajectory. *)

let spread = 8
let cells_per_region = 32768
let replication = 5

(* Latency digest of one histogram, all in microseconds. *)
type digest = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
  mean : float;
}

let digest_of (h : Stats.Hist.t) =
  let pct p = float_of_int (Stats.Hist.percentile h p) /. 1e3 in
  {
    count = Stats.Hist.count h;
    p50 = pct 50.;
    p90 = pct 90.;
    p99 = pct 99.;
    p999 = pct 99.9;
    max = float_of_int (Stats.Hist.max_value h) /. 1e3;
    mean = Stats.Hist.mean h /. 1e3;
  }

type mode_result = {
  label : string;
  commits_per_us : float;
  latency : digest;
  committed : int;
  failed : int;
  phases : (string * digest) list;  (* committed tx only *)
}

let run_mode ~batching ~machines ~workers ~duration =
  let params =
    { Params.default with Params.doorbell_batching = batching; replication;
      region_size = 1 lsl 21 } in
  let c = Cluster.create ~seed:42 ~params ~machines () in
  let regions = Array.init spread (fun _ -> Cluster.alloc_region_exn c) in
  let chunk = 256 in
  let addrs =
    Cluster.run_on c ~machine:0 (fun st ->
        Array.map
          (fun (r : Wire.region_info) ->
            Array.init (cells_per_region / chunk) (fun _ ->
                match
                  Api.run_retry st ~thread:0 (fun tx ->
                      Array.init chunk (fun _ ->
                          let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                          Txn.write tx a (Bytes.make 8 '\000');
                          a))
                with
                | Ok arr -> arr
                | Error e -> Fmt.failwith "commit_batching setup: %a" Txn.pp_abort e)
            |> Array.to_list |> Array.concat)
          regions)
  in
  let op (ctx : Driver.worker_ctx) =
    let rng = ctx.Driver.rng in
    let ro = Rng.int rng 100 < 20 in
    match
      Api.run ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
          Array.iter
            (fun per_region ->
              let a = per_region.(Rng.int rng cells_per_region) in
              let v = Int64.to_int (Bytes.get_int64_le (Txn.read tx a ~len:8) 0) in
              if not ro then begin
                let b = Bytes.create 8 in
                Bytes.set_int64_le b 0 (Int64.of_int (v + 1));
                Txn.write tx a b
              end)
            addrs)
    with
    | Ok () -> true
    | Error _ -> false
  in
  let stats = Driver.run c ~workers ~warmup:(Time.ms 5) ~duration ~op in
  let phases =
    List.map (fun (name, h) -> (name, digest_of h)) (Cluster.merged_phase_hists c)
  in
  {
    label = (if batching then "batched" else "unbatched");
    commits_per_us = Driver.throughput_per_us stats ~duration;
    latency = digest_of stats.Driver.latency;
    committed = Stats.Counter.get stats.Driver.ops;
    failed = Stats.Counter.get stats.Driver.failures;
    phases;
  }

let digest_fields d =
  Printf.sprintf
    "\"count\": %d, \"p50_us\": %.2f, \"p90_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": \
     %.2f, \"max_us\": %.2f, \"mean_us\": %.2f"
    d.count d.p50 d.p90 d.p99 d.p999 d.max d.mean

let json_of ~machines ~workers ~duration batched unbatched =
  let mode m =
    let phase_fields =
      String.concat ", "
        (List.map
           (fun (name, d) -> Printf.sprintf "\"%s\": { %s }" name (digest_fields d))
           m.phases)
    in
    Printf.sprintf
      "    \"%s\": { \"commits_per_us\": %.4f, %s, \"committed\": %d, \"failed\": %d, \
       \"phases\": { %s } }"
      m.label m.commits_per_us (digest_fields m.latency) m.committed m.failed phase_fields
  in
  String.concat "\n"
    [
      "{";
      "  \"bench\": \"commit_batching\",";
      Printf.sprintf
        "  \"config\": { \"machines\": %d, \"workers_per_machine\": %d, \"duration_ms\": %d, \
         \"regions_per_tx\": %d, \"replication\": %d },"
        machines workers
        (int_of_float (Time.to_ms_float duration))
        spread replication;
      "  \"modes\": {";
      mode batched ^ ",";
      mode unbatched;
      "  },";
      Printf.sprintf "  \"speedup\": %.3f"
        (batched.commits_per_us /. unbatched.commits_per_us);
      "}";
    ]

let run ?(machines = 12) ?(workers = 256) ?(duration = Time.ms 30) () =
  Bench_util.header "Commit batching ablation (doorbell-batched one-sided verbs)"
    "Storm / FaRMv2 argument: batched verb issue and completion reaping move \
     multi-participant commits from verb-rate-bound to CPU-bound; each phase \
     rings the NIC once instead of once per participant";
  let batched = run_mode ~batching:true ~machines ~workers ~duration in
  let unbatched = run_mode ~batching:false ~machines ~workers ~duration in
  Fmt.pr "%-12s %14s %10s %10s %10s %10s %10s %10s@." "mode" "commits/us" "p50(us)"
    "p90(us)" "p99(us)" "p999(us)" "max(us)" "committed";
  List.iter
    (fun m ->
      Fmt.pr "%-12s %14.3f %10.1f %10.1f %10.1f %10.1f %10.1f %10d@." m.label
        m.commits_per_us m.latency.p50 m.latency.p90 m.latency.p99 m.latency.p999
        m.latency.max m.committed)
    [ batched; unbatched ];
  Fmt.pr "@.speedup (batched/unbatched): %.2fx commits/us@."
    (batched.commits_per_us /. unbatched.commits_per_us);
  Fmt.pr "@.commit-latency phase breakdown (committed tx, merged over machines):@.";
  Fmt.pr "%-12s %-16s %10s %10s %10s %10s %10s %10s %10s@." "mode" "phase" "count"
    "p50(us)" "p90(us)" "p99(us)" "p999(us)" "max(us)" "mean(us)";
  List.iter
    (fun m ->
      List.iter
        (fun (name, d) ->
          Fmt.pr "%-12s %-16s %10d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f@." m.label
            name d.count d.p50 d.p90 d.p99 d.p999 d.max d.mean)
        m.phases)
    [ batched; unbatched ];
  let json = json_of ~machines ~workers ~duration batched unbatched in
  let oc = open_out "BENCH_commit_batching.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Fmt.pr "wrote BENCH_commit_batching.json@.";
  (batched, unbatched)
