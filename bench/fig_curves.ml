open Farm_sim
open Farm_core
open Farm_workloads

(* Figures 7 and 8: throughput-latency curves. Load is varied exactly as in
   the paper — by the number of workers per machine — and each point reports
   aggregate throughput with median and 99th-percentile latency. The shape
   to reproduce: a flat latency floor at low load and a sharp knee as the
   machines' CPUs saturate. *)

(* Every load point builds its own cluster, so the sweep shards across
   worker domains; rows render off-screen and print in point order. *)
let sweep ?(bar_scale = 1.6) ~label ~paper ~mk_cluster ~mk_op ~points ~duration
    ~latency_of () =
  Bench_util.header label paper;
  Fmt.pr "%-10s %14s %12s %12s@." "workers/m" "ops/us" "median(us)" "99th(us)";
  Bench_util.shard_print
    (fun workers ->
      let cluster, op, finish = mk_cluster () in
      let stats = Driver.run cluster ~workers ~warmup:(Time.ms 10) ~duration ~op:(mk_op op) in
      let h = latency_of stats op in
      let tput = float_of_int (Stats.Counter.get stats.Driver.ops) /. Time.to_us_float duration in
      let row =
        Fmt.str "%-10d %14.3f %12.1f %12.1f  %s@." workers tput
          (float_of_int (Stats.Hist.percentile h 50.) /. 1e3)
          (float_of_int (Stats.Hist.percentile h 99.) /. 1e3)
          (Bench_util.bar ~scale:bar_scale (int_of_float (tput *. 10.)))
      in
      finish cluster;
      row)
    points

(* Figure 7: TATP, at the paper's cluster size. 90 machines make each load
   point expensive (every point is its own 90-machine world), so the sim
   window shrinks to keep the full sweep around a minute of host time; the
   knee shows up in workers-per-machine regardless of window length. *)
let tatp ?(machines = 90) ?subscribers ?(duration = Time.ms 10) () =
  (* the paper scales the database with the cluster; 500 subscribers per
     machine keeps the old 6-machine point (3 000) and stops a scaled-up
     worker count from turning the whole benchmark into one hot cell *)
  let subscribers =
    match subscribers with Some s -> s | None -> 500 * machines
  in
  let mk_cluster () =
    let c = Cluster.create ~machines () in
    (* tables span the cluster (one region per machine per table, as in the
       engine-scaling bench) — with a fixed region count the whole database
       lands on a couple of machines and saturates at the first point *)
    let t = Tatp.create c ~subscribers ~regions_per_table:(max 2 machines) in
    Tatp.load c t;
    (c, t, fun _ -> ())
  in
  sweep
    ~label:(Fmt.str "Figure 7 — TATP throughput vs latency (%d machines)" machines)
    ~paper:
      "140M tx/s at 90 machines; median 9->58 us and 99th 112->645 us as load grows; \
       multi-object commits in tens of us"
    ~mk_cluster
    ~mk_op:(fun t -> Tatp.op t)
    ~points:[ 1; 2; 4; 8; 16 ]
    ~duration
    ~latency_of:(fun stats _ -> stats.Driver.latency)
    ~bar_scale:0.22 ()

(* Figure 8: TPC-C; reported rate and latency are for "new order". *)
let tpcc ?(machines = 8) ?(duration = Time.ms 80) () =
  let scale = { Tpcc.warehouses = 16; districts = 10; customers = 12; items = 100 } in
  let mk_cluster () =
    let c = Cluster.create ~machines () in
    let t = Tpcc.create c ~scale () in
    Tpcc.load c t;
    (c, t, fun _ -> ())
  in
  Bench_util.header "Figure 8 — TPC-C throughput vs latency (new-order)"
    "4.5M new-order/s at 90 machines; median 808 us, 99th 1.9 ms at peak; \
     latency can be halved for ~10% throughput";
  Fmt.pr "%-10s %16s %12s %12s@." "workers/m" "new-order/us" "median(us)" "99th(us)";
  Bench_util.shard_print
    (fun workers ->
      let c, t, _ = mk_cluster () in
      let before = Stats.Counter.get t.Tpcc.new_orders in
      let t0 = Cluster.now c in
      ignore (Driver.run c ~workers ~warmup:(Time.ms 10) ~duration ~op:(Tpcc.op t));
      ignore t0;
      let count = Stats.Counter.get t.Tpcc.new_orders - before in
      let tput = float_of_int count /. Time.to_us_float duration in
      Fmt.str "%-10d %16.4f %12.1f %12.1f  %s@." workers tput
        (float_of_int (Stats.Hist.percentile t.Tpcc.no_latency 50.) /. 1e3)
        (float_of_int (Stats.Hist.percentile t.Tpcc.no_latency 99.) /. 1e3)
        (Bench_util.bar ~scale:1.0 (int_of_float (tput *. 1000.))))
    [ 1; 2; 4; 8 ]
