open Farm_sim
open Farm_core
open Farm_workloads

(* Protocol ablation: validate-at-commit baseline vs the snapshot (opacity
   via global time) protocol, on contended YCSB-B/C-shaped transaction
   mixes.

   The workload is deliberately hot: a small zipfian cell set shared by
   every worker, read in multi-object read-only transactions (4 cells) with
   an update fraction doing read-modify-write on 2 cells (B: 5 % updates,
   C: read-only). Under the baseline, every multi-object read-only
   transaction pays a VALIDATE round and aborts when a writer slips a
   version past it; under the snapshot protocol the same transaction reads
   at its global-time snapshot and commits locally — zero VALIDATE
   messages, zero read-only aborts, at the price of the writers'
   uncertainty wait (the commit-wait phase).

   Reported per (profile, mode): throughput, latency, the abort-cause
   split (lock-refused / validate-failed / timeout / other), read-only
   attempt/abort counts, the VALIDATE- and commit-wait-phase histograms,
   and the snapshot counters (local-commit, snapshot reads, chain reads,
   watermark trims). Emits BENCH_opacity.json. *)

let regions = 4
let cells = 256 (* total, across all regions: a contended hot set *)
let ro_reads = 4
let rw_writes = 2

type digest = { count : int; p50 : float; p99 : float; mean : float }

let digest_of (h : Stats.Hist.t) =
  let pct p = float_of_int (Stats.Hist.percentile h p) /. 1e3 in
  { count = Stats.Hist.count h; p50 = pct 50.; p99 = pct 99.; mean = Stats.Hist.mean h /. 1e3 }

let empty_digest = { count = 0; p50 = 0.; p99 = 0.; mean = 0. }

type mode_result = {
  label : string;
  profile : string;
  commits_per_us : float;
  latency : digest;
  committed : int;
  failed : int;
  ro_attempts : int;
  ro_aborts : int;
  abort_causes : (string * int) list;
  validate : digest;  (* VALIDATE phase of committed transactions *)
  commit_wait : digest;  (* snapshot protocol's uncertainty wait *)
  ro_commits : int;  (* read-only transactions committed locally *)
  snap_reads : int;
  snap_chain_reads : int;
  wm_trims : int;
}

let merged_counter (c : Cluster.t) counter =
  Array.fold_left
    (fun acc st -> acc + Farm_obs.Obs.counter st.State.obs counter)
    0 c.Cluster.machines

let phase_digest (c : Cluster.t) name =
  match List.assoc_opt name (Cluster.merged_phase_hists c) with
  | Some h -> digest_of h
  | None -> empty_digest

let run_mode ~snapshot ~update_pct ~profile ~machines ~workers ~duration =
  let protocol = if snapshot then Params.Snapshot else Params.Validate_at_commit in
  let params = { Params.default with Params.protocol } in
  let c = Cluster.create ~seed:42 ~params ~machines () in
  let rs = Array.init regions (fun _ -> Cluster.alloc_region_exn c) in
  let addrs =
    Cluster.run_on c ~machine:0 (fun st ->
        match
          Api.run_retry st ~thread:0 (fun tx ->
              Array.init cells (fun i ->
                  let r = rs.(i mod regions) in
                  let a = Txn.alloc tx ~size:8 ~region:r.Wire.rid () in
                  Txn.write tx a (Bytes.make 8 '\000');
                  a))
        with
        | Ok arr -> arr
        | Error e -> Fmt.failwith "opacity setup: %a" Txn.pp_abort e)
  in
  let ro_attempts = ref 0 and ro_aborts = ref 0 in
  let op (ctx : Driver.worker_ctx) =
    let rng = ctx.Driver.rng in
    let ro = Rng.int rng 100 >= update_pct in
    if ro then incr ro_attempts;
    let ok =
      match
        Api.run ctx.Driver.st ~thread:ctx.Driver.thread (fun tx ->
            if ro then
              for _ = 1 to ro_reads do
                ignore (Txn.read tx addrs.(Ycsb.zipf rng cells) ~len:8)
              done
            else
              for _ = 1 to rw_writes do
                let a = addrs.(Ycsb.zipf rng cells) in
                let v = Int64.to_int (Bytes.get_int64_le (Txn.read tx a ~len:8) 0) in
                let b = Bytes.create 8 in
                Bytes.set_int64_le b 0 (Int64.of_int (v + 1));
                Txn.write tx a b
              done)
      with
      | Ok () -> true
      | Error _ -> false
    in
    if ro && not ok then incr ro_aborts;
    ok
  in
  let stats = Driver.run c ~workers ~warmup:(Time.ms 5) ~duration ~op in
  {
    label = (if snapshot then "snapshot" else "baseline");
    profile;
    commits_per_us = Driver.throughput_per_us stats ~duration;
    latency = digest_of stats.Driver.latency;
    committed = Stats.Counter.get stats.Driver.ops;
    failed = Stats.Counter.get stats.Driver.failures;
    ro_attempts = !ro_attempts;
    ro_aborts = !ro_aborts;
    abort_causes = Cluster.abort_breakdown c;
    validate = phase_digest c "validate";
    commit_wait = phase_digest c "commit-wait";
    ro_commits = merged_counter c Farm_obs.Obs.C_ro_commit;
    snap_reads = merged_counter c Farm_obs.Obs.C_snap_read;
    snap_chain_reads = merged_counter c Farm_obs.Obs.C_snap_chain_read;
    wm_trims = merged_counter c Farm_obs.Obs.C_wm_trim;
  }

let digest_fields d =
  Printf.sprintf "\"count\": %d, \"p50_us\": %.2f, \"p99_us\": %.2f, \"mean_us\": %.2f"
    d.count d.p50 d.p99 d.mean

let json_of ~machines ~workers ~duration results =
  let mode m =
    let causes =
      String.concat ", "
        (List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" n v) m.abort_causes)
    in
    Printf.sprintf
      "    { \"profile\": \"%s\", \"mode\": \"%s\", \"commits_per_us\": %.4f, \
       \"latency\": { %s }, \"committed\": %d, \"failed\": %d, \"ro_attempts\": %d, \
       \"ro_aborts\": %d, \"abort_causes\": { %s }, \"validate_phase\": { %s }, \
       \"commit_wait_phase\": { %s }, \"ro_commits\": %d, \"snap_reads\": %d, \
       \"snap_chain_reads\": %d, \"wm_trims\": %d }"
      m.profile m.label m.commits_per_us (digest_fields m.latency) m.committed m.failed
      m.ro_attempts m.ro_aborts causes (digest_fields m.validate)
      (digest_fields m.commit_wait) m.ro_commits m.snap_reads m.snap_chain_reads m.wm_trims
  in
  String.concat "\n"
    [
      "{";
      "  \"bench\": \"opacity\",";
      Printf.sprintf
        "  \"config\": { \"machines\": %d, \"workers_per_machine\": %d, \"duration_ms\": \
         %d, \"cells\": %d, \"regions\": %d, \"ro_reads\": %d, \"rw_writes\": %d },"
        machines workers
        (int_of_float (Time.to_ms_float duration))
        cells regions ro_reads rw_writes;
      "  \"runs\": [";
      String.concat ",\n" (List.map mode results);
      "  ]";
      "}";
    ]

let run ?(machines = 6) ?(workers = 8) ?(duration = Time.ms 30) () =
  Bench_util.header "Opacity ablation: validate-at-commit vs snapshot reads (FaRMv2)"
    "multi-object read-only transactions on a contended zipfian set: the \
     baseline pays VALIDATE and aborts on racing writers; the snapshot \
     protocol reads at global time and commits read-only work locally";
  let results =
    List.concat_map
      (fun (profile, update_pct) ->
        List.map
          (fun snapshot ->
            run_mode ~snapshot ~update_pct ~profile ~machines ~workers ~duration)
          [ false; true ])
      [ ("ycsb-b", 5); ("ycsb-c", 0) ]
  in
  Fmt.pr "%-8s %-10s %11s %9s %9s %9s %9s %10s %10s@." "profile" "mode" "commits/us"
    "p50(us)" "p99(us)" "ro-tx" "ro-abort" "validate#" "ro-local#";
  List.iter
    (fun m ->
      Fmt.pr "%-8s %-10s %11.3f %9.1f %9.1f %9d %9d %10d %10d@." m.profile m.label
        m.commits_per_us m.latency.p50 m.latency.p99 m.ro_attempts m.ro_aborts
        m.validate.count m.ro_commits)
    results;
  Fmt.pr "@.abort-cause split:@.";
  List.iter
    (fun m ->
      Fmt.pr "  %-8s %-10s %a@." m.profile m.label
        Fmt.(list ~sep:(any "  ") (pair ~sep:(any "=") string int))
        m.abort_causes)
    results;
  Fmt.pr "@.VALIDATE / commit-wait phases (committed tx, merged over machines):@.";
  List.iter
    (fun m ->
      Fmt.pr "  %-8s %-10s validate: n=%-7d mean %6.1fus   commit-wait: n=%-7d mean %6.1fus@."
        m.profile m.label m.validate.count m.validate.mean m.commit_wait.count
        m.commit_wait.mean)
    results;
  (* the headline invariants, checked here so a regression fails the bench
     run loudly, not just quietly skews a figure *)
  List.iter
    (fun m ->
      if m.label = "snapshot" then begin
        if m.ro_aborts <> 0 then
          Fmt.failwith "opacity: %d read-only aborts under the snapshot protocol (%s)"
            m.ro_aborts m.profile;
        if m.validate.count <> 0 then
          Fmt.failwith "opacity: %d VALIDATE phases under the snapshot protocol (%s)"
            m.validate.count m.profile
      end)
    results;
  Fmt.pr "@.snapshot invariants: zero read-only aborts, zero VALIDATE phases — ok@.";
  let json = json_of ~machines ~workers ~duration results in
  let oc = open_out "BENCH_opacity.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Fmt.pr "wrote BENCH_opacity.json@.";
  results
