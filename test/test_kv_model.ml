open Farm_core
open Farm_kv
open Test_util

(* QCheck model-based testing of the kv structures: a generated operation
   sequence is applied both to the real structure (inside FaRM transactions
   on a small cluster) and to a [Map] reference; every operation's result
   must agree, and a full sweep at the end compares the final contents.
   Complements the fixed-seed random loops in [Test_kv] with shrinking:
   a failure reduces to a minimal operation sequence. *)

let qtest = QCheck_alcotest.to_alcotest

(* Small key space so sequences collide, split nodes, and chain buckets. *)
let key_gen = QCheck.Gen.int_range 0 40

type op = Ins of int * int | Del of int | Find of int | Range of int * int

let pp_op ppf = function
  | Ins (k, v) -> Fmt.pf ppf "Ins(%d,%d)" k v
  | Del k -> Fmt.pf ppf "Del %d" k
  | Find k -> Fmt.pf ppf "Find %d" k
  | Range (lo, hi) -> Fmt.pf ppf "Range(%d,%d)" lo hi

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Ins (k, v)) key_gen (int_range 1 1_000_000));
        (2, map (fun k -> Del k) key_gen);
        (2, map (fun k -> Find k) key_gen);
        (1, map2 (fun a b -> Range (min a b, max a b)) key_gen key_gen);
      ])

let ops_arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" (Fmt.Dump.list pp_op))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

module M = Map.Make (Int)

let btree_matches_map =
  QCheck.Test.make ~name:"btree agrees with Map reference" ~count:10 ops_arbitrary
    (fun ops ->
      let c = mk_cluster ~machines:3 () in
      let r1 = Cluster.alloc_region_exn c in
      let r2 = Cluster.alloc_region_exn c in
      let t =
        Cluster.run_on c ~machine:0 (fun st ->
            Btree.create st ~thread:0 ~regions:[| r1.Wire.rid; r2.Wire.rid |] ~fanout:5 ())
      in
      let model = ref M.empty in
      List.iteri
        (fun i op ->
          Cluster.run_on c ~machine:(i mod Cluster.n_machines c) (fun st ->
              Api.run_retry st ~thread:0 (fun tx ->
                  match op with
                  | Ins (k, v) ->
                      Btree.insert tx t k v;
                      model := M.add k v !model
                  | Del k ->
                      let deleted = Btree.delete tx t k in
                      if deleted <> M.mem k !model then
                        QCheck.Test.fail_reportf "op %d: delete %d returned %b" i k deleted;
                      model := M.remove k !model
                  | Find k ->
                      if Btree.find tx t k <> M.find_opt k !model then
                        QCheck.Test.fail_reportf "op %d: find %d mismatch" i k
                  | Range (lo, hi) ->
                      let got = Btree.range tx t ~lo ~hi in
                      let want =
                        M.bindings (M.filter (fun k _ -> lo <= k && k <= hi) !model)
                      in
                      if got <> want then
                        QCheck.Test.fail_reportf "op %d: range (%d,%d) mismatch" i lo hi)
              |> function
              | Ok () -> ()
              | Error r -> QCheck.Test.fail_reportf "op %d aborted: %a" i Txn.pp_abort r))
        ops;
      (* final sweep: structural invariants and exact contents *)
      Cluster.run_on c ~machine:0 (fun st ->
          match
            Api.run_retry st ~thread:0 (fun tx ->
                let violations, keys = Btree.check_invariants tx t in
                (violations, keys, Btree.range tx t ~lo:min_int ~hi:max_int))
          with
          | Ok (violations, keys, all) ->
              if violations <> [] then
                QCheck.Test.fail_reportf "invariants: %a" Fmt.(Dump.list string) violations;
              keys = M.cardinal !model && all = M.bindings !model
          | Error r -> QCheck.Test.fail_reportf "final sweep aborted: %a" Txn.pp_abort r))

(* {1 Hash table} *)

type hop = HIns of int * int | HDel of int | HFind of int

let pp_hop ppf = function
  | HIns (k, v) -> Fmt.pf ppf "Ins(%d,%d)" k v
  | HDel k -> Fmt.pf ppf "Del %d" k
  | HFind k -> Fmt.pf ppf "Find %d" k

let hop_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> HIns (k, v)) key_gen (int_range 1 1_000_000));
        (2, map (fun k -> HDel k) key_gen);
        (2, map (fun k -> HFind k) key_gen);
      ])

let hops_arbitrary =
  QCheck.make
    ~print:(Fmt.str "%a" (Fmt.Dump.list pp_hop))
    ~shrink:QCheck.Shrink.list
    QCheck.Gen.(list_size (int_range 1 60) hop_gen)

let key8 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let value16 v =
  let b = Bytes.make 16 '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let hashtable_matches_map =
  (* few buckets and slots so chains overflow *)
  QCheck.Test.make ~name:"hashtable agrees with Map reference" ~count:15 hops_arbitrary
    (fun ops ->
      let c = mk_cluster ~machines:3 () in
      let r1 = Cluster.alloc_region_exn c in
      let t =
        Cluster.run_on c ~machine:0 (fun st ->
            Hashtable.create st ~thread:0 ~regions:[| r1.Wire.rid |] ~buckets:8 ~ksize:8
              ~vsize:16 ~slots:2 ())
      in
      let model = ref M.empty in
      List.iteri
        (fun i op ->
          Cluster.run_on c ~machine:(i mod Cluster.n_machines c) (fun st ->
              Api.run_retry st ~thread:0 (fun tx ->
                  match op with
                  | HIns (k, v) ->
                      Hashtable.insert tx t (key8 k) (value16 v);
                      model := M.add k v !model
                  | HDel k ->
                      let deleted = Hashtable.delete tx t (key8 k) in
                      if deleted <> M.mem k !model then
                        QCheck.Test.fail_reportf "op %d: delete %d returned %b" i k deleted;
                      model := M.remove k !model
                  | HFind k -> (
                      match (Hashtable.lookup tx t (key8 k), M.find_opt k !model) with
                      | None, None -> ()
                      | Some got, Some v when Bytes.equal got (value16 v) -> ()
                      | _ -> QCheck.Test.fail_reportf "op %d: lookup %d mismatch" i k))
              |> function
              | Ok () -> ()
              | Error r -> QCheck.Test.fail_reportf "op %d aborted: %a" i Txn.pp_abort r))
        ops;
      (* final sweep over the whole key space, on both transactional and
         lock-free read paths *)
      Cluster.run_on c ~machine:1 (fun st ->
          List.for_all
            (fun k ->
              let want = Option.map value16 (M.find_opt k !model) in
              let tx_got =
                match Api.run_retry st ~thread:0 (fun tx -> Hashtable.lookup tx t (key8 k)) with
                | Ok r -> r
                | Error r -> QCheck.Test.fail_reportf "sweep aborted: %a" Txn.pp_abort r
              in
              let lf_got = Hashtable.lookup_lockfree st t (key8 k) in
              tx_got = want && lf_got = want)
            (List.init 41 Fun.id)))

(* Regression: re-inserting a key that overflowed into a chained bucket must
   update the chained entry, not grab a slot freed by a delete in an earlier
   bucket — the duplicate would survive a later delete and resurrect the old
   value. Shrunk from a [hashtable_matches_map] counterexample. *)
let hashtable_no_stale_duplicate () =
  let c = mk_cluster ~machines:3 () in
  let r1 = Cluster.alloc_region_exn c in
  let t =
    Cluster.run_on c ~machine:0 (fun st ->
        Hashtable.create st ~thread:0 ~regions:[| r1.Wire.rid |] ~buckets:8 ~ksize:8
          ~vsize:16 ~slots:2 ())
  in
  let ops =
    [ HIns (19, 79591); HIns (35, 154822); HIns (3, 83017); HIns (25, 893031); HDel 28;
      HFind 17; HDel 35; HIns (34, 347583); HFind 27; HIns (4, 21561); HDel 16; HDel 39;
      HIns (7, 956613); HIns (3, 956010); HFind 26; HIns (17, 475804); HIns (32, 610046);
      HDel 7; HIns (13, 532858); HIns (1, 907440); HDel 14; HFind 39; HIns (25, 104613);
      HDel 3; HDel 29; HDel 26; HDel 39; HFind 26; HIns (37, 855915); HDel 1; HDel 14 ]
  in
  let model = ref M.empty in
  List.iteri
    (fun i op ->
      Cluster.run_on c ~machine:(i mod Cluster.n_machines c) (fun st ->
          Api.run_retry st ~thread:0 (fun tx ->
              match op with
              | HIns (k, v) ->
                  Hashtable.insert tx t (key8 k) (value16 v);
                  model := M.add k v !model
              | HDel k ->
                  Alcotest.(check bool)
                    (Fmt.str "op %d: delete %d" i k)
                    (M.mem k !model)
                    (Hashtable.delete tx t (key8 k));
                  model := M.remove k !model
              | HFind k ->
                  Alcotest.(check (option bytes))
                    (Fmt.str "op %d: lookup %d" i k)
                    (Option.map value16 (M.find_opt k !model))
                    (Hashtable.lookup tx t (key8 k)))
          |> function
          | Ok () -> ()
          | Error r -> Alcotest.failf "op %d aborted: %a" i Txn.pp_abort r))
    ops;
  Cluster.run_on c ~machine:1 (fun st ->
      List.iter
        (fun k ->
          let want = Option.map value16 (M.find_opt k !model) in
          (match Api.run_retry st ~thread:0 (fun tx -> Hashtable.lookup tx t (key8 k)) with
          | Ok got -> Alcotest.(check (option bytes)) (Fmt.str "sweep tx %d" k) want got
          | Error r -> Alcotest.failf "sweep aborted: %a" Txn.pp_abort r);
          Alcotest.(check (option bytes))
            (Fmt.str "sweep lockfree %d" k)
            want
            (Hashtable.lookup_lockfree st t (key8 k)))
        (List.init 41 Fun.id))

let suites =
  [
    ( "kv-model",
      [
        qtest btree_matches_map;
        qtest hashtable_matches_map;
        Alcotest.test_case "hashtable overflow re-insert has no stale duplicate" `Quick
          hashtable_no_stale_duplicate;
      ] );
  ]
