open Farm_core

(* Round-trip and corruption properties of the binary message codec. *)

let qtest = QCheck_alcotest.to_alcotest
let test name fn = Alcotest.test_case name `Quick fn

(* {1 Generators} *)

open QCheck.Gen

let gen_small = int_range 0 1_000_000
let gen_addr = map2 (fun r o -> Addr.make ~region:r ~offset:o) (int_range 0 4096) gen_small

let gen_txid =
  map
    (fun (config, machine, thread, local) -> Txid.make ~config ~machine ~thread ~local)
    (quad (int_range 1 64) (int_range 0 63) (int_range 0 7) gen_small)

let gen_alloc_op = oneofl [ Wire.Alloc_none; Wire.Alloc_set; Wire.Alloc_clear ]

let gen_write_item =
  map
    (fun (addr, version, value, (alloc_op, ts)) ->
      { Wire.addr; version; value; alloc_op; ts })
    (quad gen_addr gen_small
       (map Bytes.of_string (string_size (int_range 0 32)))
       (pair gen_alloc_op gen_small))

let gen_lock_payload =
  map
    (fun (txid, regions_written, writes) -> { Wire.txid; regions_written; writes })
    (triple gen_txid
       (list_size (int_range 0 4) (int_range 0 64))
       (list_size (int_range 0 4) gen_write_item))

let gen_saw =
  map
    (fun m ->
      let bit i = m land (1 lsl i) <> 0 in
      {
        Wire.saw_lock = bit 0;
        saw_commit_backup = bit 1;
        saw_commit_primary = bit 2;
        saw_abort = bit 3;
        saw_commit_recovery = bit 4;
        saw_abort_recovery = bit 5;
      })
    (int_range 0 0x3f)

let gen_evidence =
  map
    (fun (ev_txid, ev_regions, ev_saw, ev_payload) ->
      { Wire.ev_txid; ev_regions; ev_saw; ev_payload })
    (quad gen_txid (list_size (int_range 0 3) (int_range 0 64)) gen_saw
       (opt gen_lock_payload))

let gen_vote =
  oneofl
    [
      Wire.Vote_commit_primary;
      Wire.Vote_commit_backup;
      Wire.Vote_lock;
      Wire.Vote_abort;
      Wire.Vote_truncated;
      Wire.Vote_unknown;
    ]

let gen_region_info =
  map
    (fun ((rid, primary, backups), (lpc, lrc, critical)) ->
      {
        Wire.rid;
        primary;
        backups;
        last_primary_change = lpc;
        last_replica_change = lrc;
        critical;
      })
    (pair
       (triple (int_range 0 4096)
          (int_range (-1) 63) (* -1 is the dead-primary sentinel *)
          (list_size (int_range 0 3) (int_range 0 63)))
       (triple (int_range 0 64) (int_range 0 64) bool))

let gen_config =
  (* a valid configuration: sorted duplicate-free members containing cm *)
  map
    (fun (members, cm_pick, domains, id) ->
      let members = List.sort_uniq Int.compare (cm_pick :: members) in
      Config.make ~id ~members ~domains ~cm:cm_pick)
    (quad
       (list_size (int_range 0 6) (int_range 0 63))
       (int_range 0 63)
       (list_size (int_range 0 4) (pair (int_range 0 63) (int_range 0 7)))
       (int_range 1 64))

let gen_message =
  let pure_ m = map (fun () -> m) unit in
  oneof
    [
      map (fun ((txid, ok), (cfg, head_ts)) -> Wire.Lock_reply { txid; ok; cfg; head_ts })
        (pair (pair gen_txid bool) (pair gen_small gen_small));
      map (fun (txid, items) -> Wire.Validate_req { txid; items })
        (pair gen_txid (list_size (int_range 0 4) (pair gen_addr gen_small)));
      map (fun (txid, ok) -> Wire.Validate_reply { txid; ok }) (pair gen_txid bool);
      map (fun (cfg, rid, txs) -> Wire.Need_recovery { cfg; rid; txs })
        (triple gen_small (int_range 0 4096) (list_size (int_range 0 3) gen_evidence));
      map (fun (cfg, rid, txids) -> Wire.Fetch_tx_state { cfg; rid; txids })
        (triple gen_small (int_range 0 4096) (list_size (int_range 0 4) gen_txid));
      map (fun (cfg, rid, states) -> Wire.Send_tx_state { cfg; rid; states })
        (triple gen_small (int_range 0 4096)
           (list_size (int_range 0 3) (pair gen_txid gen_lock_payload)));
      map (fun (cfg, rid, txid, lock) -> Wire.Replicate_tx_state { cfg; rid; txid; lock })
        (quad gen_small (int_range 0 4096) gen_txid gen_lock_payload);
      map
        (fun ((cfg, rid, txid), (regions, vote)) ->
          Wire.Recovery_vote { cfg; rid; txid; regions; vote })
        (pair
           (triple gen_small (int_range 0 4096) gen_txid)
           (pair (list_size (int_range 0 3) (int_range 0 64)) gen_vote));
      map (fun (cfg, rid, txid) -> Wire.Request_vote { cfg; rid; txid })
        (triple gen_small (int_range 0 4096) gen_txid);
      map (fun (cfg, txid) -> Wire.Commit_recovery { cfg; txid }) (pair gen_small gen_txid);
      map (fun (cfg, txid) -> Wire.Abort_recovery { cfg; txid }) (pair gen_small gen_txid);
      map (fun (cfg, txid) -> Wire.Truncate_recovery { cfg; txid }) (pair gen_small gen_txid);
      map (fun (cfg, suspect) -> Wire.Suspect_req { cfg; suspect })
        (pair gen_small (int_range 0 63));
      map (fun (config, regions, cm_changed) -> Wire.New_config { config; regions; cm_changed })
        (triple gen_config (list_size (int_range 0 3) gen_region_info) bool);
      map (fun cfg -> Wire.New_config_ack { cfg }) gen_small;
      map (fun cfg -> Wire.New_config_commit { cfg }) gen_small;
      map (fun cfg -> Wire.Regions_active { cfg }) gen_small;
      map (fun cfg -> Wire.All_regions_active { cfg }) gen_small;
      map (fun (cfg, rid) -> Wire.Region_recovered { cfg; rid })
        (pair gen_small (int_range 0 4096));
      map (fun (cfg, sent_ns) -> Wire.Lease_request { cfg; sent_ns }) (pair gen_small gen_small);
      map (fun (cfg, sent_ns) -> Wire.Lease_grant_and_request { cfg; sent_ns })
        (pair gen_small gen_small);
      map (fun (cfg, sent_ns) -> Wire.Lease_grant { cfg; sent_ns }) (pair gen_small gen_small);
      map (fun locality -> Wire.Alloc_region_req { locality }) (opt (int_range 0 63));
      map (fun info -> Wire.Alloc_region_reply { info }) (opt gen_region_info);
      map (fun info -> Wire.Prepare_region { info }) gen_region_info;
      map (fun (rid, ok) -> Wire.Prepare_region_ack { rid; ok })
        (pair (int_range 0 4096) bool);
      map (fun info -> Wire.Commit_region { info }) gen_region_info;
      map (fun rid -> Wire.Fetch_mapping { rid }) (int_range 0 4096);
      map (fun info -> Wire.Mapping_reply { info }) (opt gen_region_info);
      map (fun (rid, block, obj_size) -> Wire.Block_header { rid; block; obj_size })
        (triple (int_range 0 4096) gen_small gen_small);
      map (fun (rid, headers) -> Wire.Block_headers_sync { rid; headers })
        (pair (int_range 0 4096) (list_size (int_range 0 4) (pair gen_small gen_small)));
      map (fun (rid, size) -> Wire.Alloc_obj_req { rid; size })
        (pair (int_range 0 4096) gen_small);
      map (fun (addr, version) -> Wire.Alloc_obj_reply { addr; version })
        (pair (opt gen_addr) gen_small);
      map (fun addr -> Wire.Free_slot_hint { addr }) gen_addr;
      map (fun (tag, args) -> Wire.App_call { tag; args = Array.of_list args })
        (pair gen_small (list_size (int_range 0 4) gen_small));
      map (fun ok -> Wire.App_reply { ok }) bool;
      map (fun (cfg, wm) -> Wire.Watermark_report { cfg; wm }) (pair gen_small gen_small);
      map (fun wm -> Wire.Watermark_update { wm }) gen_small;
      pure_ Wire.Ack;
      pure_ Wire.Nack;
    ]

let arbitrary_message =
  QCheck.make ~print:(fun m -> Fmt.str "message of %d bytes" (Wire.message_bytes m)) gen_message

(* {1 Properties} *)

let roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips" ~count:1000 arbitrary_message (fun m ->
      Wirecodec.decode (Wirecodec.encode m) = Some m)

let truncation_rejected =
  (* every strict prefix of an encoded message must be rejected, without
     exception and without over-allocating on corrupt length prefixes *)
  QCheck.Test.make ~name:"every truncation rejected" ~count:100 arbitrary_message (fun m ->
      let b = Wirecodec.encode m in
      let n = Bytes.length b in
      let ok = ref true in
      for len = 0 to n - 1 do
        if Wirecodec.decode (Bytes.sub b 0 len) <> None then ok := false
      done;
      !ok)

let trailing_garbage_rejected =
  QCheck.Test.make ~name:"trailing bytes rejected" ~count:200 arbitrary_message (fun m ->
      let b = Wirecodec.encode m in
      Wirecodec.decode (Bytes.cat b (Bytes.make 1 '\042')) = None)

let bad_tag_rejected () =
  Alcotest.(check bool)
    "unknown tag" true
    (Wirecodec.decode (Bytes.make 1 '\200') = None);
  Alcotest.(check bool) "empty buffer" true (Wirecodec.decode Bytes.empty = None)

let corrupt_length_rejected () =
  (* a Validate_req whose item count claims more elements than the buffer
     holds: the bounded list reader must refuse, not allocate *)
  let txid = Txid.make ~config:1 ~machine:0 ~thread:0 ~local:7 in
  let b = Wirecodec.encode (Wire.Validate_req { txid; items = [] }) in
  let cut = Bytes.sub b 0 (Bytes.length b - 8) in
  let huge = Bytes.create 8 in
  Bytes.set_int64_le huge 0 Int64.max_int;
  Alcotest.(check bool)
    "huge count" true
    (Wirecodec.decode (Bytes.cat cut huge) = None)

let suites =
  [
    ( "wirecodec",
      [
        qtest roundtrip;
        qtest truncation_rejected;
        qtest trailing_garbage_rejected;
        test "invalid tags rejected" bad_tag_rejected;
        test "corrupt length prefix rejected" corrupt_length_rejected;
      ] );
  ]
